// Quickstart: run a tiny end-to-end study — join capture-enabled servers to
// the simulated NTP Pool, collect client addresses for a virtual week, scan
// them in real time, and print what was found.
#include <iostream>

#include "analysis/iid_classes.hpp"
#include "analysis/network_agg.hpp"
#include "analysis/ssh_analysis.hpp"
#include "core/study.hpp"
#include "util/format.hpp"

using namespace tts;

int main() {
  // kTiny keeps this under a few seconds; see bench/ for the full scale.
  core::Study study(core::make_study_config(core::StudyScale::kTiny));
  std::cout << "Running a one-week miniature of the study...\n";
  study.run();

  auto addresses = study.ntp_addresses();
  std::cout << "\nCollected " << util::grouped(addresses.size())
            << " distinct IPv6 addresses from "
            << study.collector().total_requests() << " NTP requests ("
            << study.events_executed() << " simulation events).\n";

  auto agg = analysis::aggregate(addresses, study.registry());
  std::cout << "Networks: " << util::grouped(agg.nets48) << " /48s, "
            << agg.ases << " ASes, " << agg.countries << " countries.\n";

  auto dist = analysis::classify_addresses(addresses);
  std::cout << "\nIID classes of collected addresses:\n";
  for (std::size_t i = 0; i < analysis::kIidClassCount; ++i) {
    auto cls = static_cast<analysis::IidClass>(i);
    std::cout << "  " << util::pad_right(std::string(to_string(cls)), 16)
              << util::percent(dist.fraction(cls)) << "\n";
  }

  std::cout << "\nReal-time scan results (NTP-fed campaign):\n";
  for (std::size_t p = 0; p < scan::kProtocolCount; ++p) {
    auto proto = static_cast<scan::Protocol>(p);
    auto hits = study.results().successes(scan::Dataset::kNtp, proto);
    std::cout << "  " << util::pad_right(std::string(to_string(proto)), 6)
              << " " << hits.size() << " responsive endpoints\n";
  }
  std::cout << "Hit rate: " << util::permille(study.ntp_hit_rate())
            << " of probes answered.\n";

  auto ssh_hosts =
      analysis::dedup_ssh_hosts(study.results(), scan::Dataset::kNtp);
  auto outdated = analysis::outdatedness(ssh_hosts);
  std::cout << "\nSSH: " << ssh_hosts.size() << " unique host keys, "
            << util::percent(outdated.outdated_share())
            << " of assessable hosts outdated.\n";
  return 0;
}
