#include "telescope/prober.hpp"

#include "ntp/ntp_server.hpp"

namespace tts::telescope {

PoolProber::PoolProber(simnet::Network& network, const ntp::NtpPool& pool,
                       ProberConfig config)
    : network_(network),
      pool_(pool),
      config_(std::move(config)),
      rng_(config_.seed),
      client_(network),
      category_(network.events().register_category("telescope")) {
  if (config_.registry) {
    config_.registry->enroll(queries_, "telescope_queries", {}, this);
    config_.registry->enroll(answered_, "telescope_answered", {}, this);
    config_.registry->enroll(captured_, "telescope_captures", {}, this);
    config_.registry->enroll(scattering_, "telescope_scattering", {}, this);
  }
}

PoolProber::~PoolProber() {
  if (config_.registry) config_.registry->drop_owner(this);
  if (tap_id_) network_.remove_tap(tap_id_);
}

void PoolProber::start() {
  if (started_) return;
  started_ = true;

  // Capture everything arriving in the monitored space. NTP responses to
  // our own queries (UDP from port 123) are not scans and are skipped.
  tap_id_ = network_.add_tap(
      config_.monitor_prefix, [this](const simnet::TapEvent& ev) {
        if (ev.proto == simnet::TransportProto::kUdp &&
            ev.src.port == ntp::kNtpPort)
          return;
        CapturedPacket pkt;
        pkt.at = ev.at;
        pkt.proto = ev.proto;
        pkt.scanner = ev.src.addr;
        pkt.scanner_port = ev.src.port;
        pkt.target = ev.dst.addr;
        pkt.port = ev.dst.port;
        pkt.in_probe_prefix = config_.probe_prefix.contains(ev.dst.addr);
        captured_.inc();
        if (!pkt.in_probe_prefix) scattering_.inc();
        captures_.push_back(pkt);
      });

  schedule_next();
}

net::Ipv6Address PoolProber::next_source() {
  // Sequential /64s inside the probe prefix, randomised IIDs: distinct,
  // never reused, and unremarkable to the queried server.
  std::uint64_t hi = config_.probe_prefix.address().hi64() | next_iid_;
  ++next_iid_;
  return net::Ipv6Address::from_halves(hi, rng_.next() | 0x1000000000ULL);
}

void PoolProber::schedule_next() {
  if (network_.now() >= config_.duration) return;
  network_.events().schedule_in(config_.query_interval, category_, [this] {
    run_query();
    schedule_next();
  });
}

void PoolProber::run_query() {
  const auto& servers = pool_.servers();
  if (servers.empty()) return;
  // Round-robin across the whole pool, like the paper's continuous survey
  // ("these servers served, on average, 86 % of responses").
  const ntp::PoolEntry& server = servers[next_server_ % servers.size()];
  ++next_server_;

  net::Ipv6Address source = next_source();
  std::size_t index = probes_.size();
  probes_.push_back(ProbeRecord{source, server.address, network_.now(),
                                false});
  by_source_[source] = index;
  queries_.inc();

  client_.query(source, 123, server.address,
                [this, index](std::optional<ntp::NtpQueryResult> result) {
                  if (result) {
                    probes_[index].answered = true;
                    answered_.inc();
                  }
                });
}

const ProbeRecord* PoolProber::probe_for(
    const net::Ipv6Address& source) const {
  auto it = by_source_.find(source);
  return it == by_source_.end() ? nullptr : &probes_[it->second];
}

double PoolProber::answered_share() const {
  if (probes_.empty()) return 0.0;
  std::uint64_t answered = 0;
  for (const auto& p : probes_)
    if (p.answered) ++answered;
  return static_cast<double>(answered) /
         static_cast<double>(probes_.size());
}

}  // namespace tts::telescope
