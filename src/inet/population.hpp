// Concrete device population: instantiates the catalogue into devices with
// origin ASes, customer prefixes, interface identifiers, MACs, service
// security parameters (certs, host keys, patch levels, auth), and dynamics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "inet/as_registry.hpp"
#include "inet/device.hpp"
#include "net/ipv6.hpp"
#include "net/mac.hpp"
#include "util/rng.hpp"

namespace tts::inet {

/// Stable identifier of a TLS certificate or SSH host key. Two services
/// presenting the same id are indistinguishable to the scanner's
/// fingerprint-based deduplication — exactly how key reuse manifests.
using KeyId = std::uint64_t;

struct Device {
  std::uint32_t id = 0;
  const DeviceProfile* profile = nullptr;
  net::AsNumber asn = 0;
  std::string country;

  /// The customer delegation this device numbers itself in (a /56 for
  /// eyeball/mobile customers, a /64 for hosted servers).
  net::Ipv6Prefix delegation;
  /// Initial primary address (the runtime mutates the *current* address).
  net::Ipv6Address initial_address;
  std::uint64_t current_iid = 0;  // runtime: survives prefix-only rotation
  net::MacAddress mac;        // meaningful iff iid mode is kEui64
  bool vendor_mac = false;    // globally unique (unique bit) vs randomised

  // ---- instantiated service configuration ----
  bool http_enabled = false;
  bool http_tls = false;
  bool sni_required = false;
  int http_status = 200;
  std::string http_title;     // "{ip}" placeholder still unexpanded
  std::string http_server_header;
  KeyId http_cert = 0;        // 0 = no TLS cert

  bool ssh_enabled = false;
  std::string ssh_os;
  std::size_t ssh_version_index = 0;  // into ssh_version_lineage(os)
  KeyId ssh_key = 0;

  bool mqtt_enabled = false;
  bool mqtt_tls = false;
  bool mqtt_auth = false;
  KeyId mqtt_cert = 0;

  bool amqp_enabled = false;
  bool amqp_tls = false;
  bool amqp_auth = false;
  KeyId amqp_cert = 0;

  bool coap_enabled = false;

  // ---- behaviour ----
  bool uses_pool = false;
  double ntp_interval_hours = 8.0;
  double daily_prefix_change = 0.0;
  double daily_iid_change = 0.0;
  bool in_dns_sources = false;   // discoverable by DNS-based hitlist sources
  bool in_traceroute = false;

  /// True when the SSH banner carries a patch level older than the latest
  /// in its lineage (the Figure 2 metric).
  bool ssh_outdated() const {
    return ssh_enabled &&
           ssh_version_index + 1 < ssh_version_lineage(ssh_os).size();
  }
  bool any_service() const {
    return http_enabled || ssh_enabled || mqtt_enabled || amqp_enabled ||
           coap_enabled;
  }
};

struct PopulationConfig {
  /// Global abundance multiplier (expected devices = weight * country units
  /// * this). 1.0 yields roughly 13k devices with the builtin tables.
  double device_scale = 1.0;
  /// Eyeball customers initially packed per /48 (clustering; Table 1's
  /// median-IPs-per-/48 metric reacts to this).
  int customers_per_48 = 4;
  /// Prefix rotation draws from a pool this many times larger than the
  /// currently-assigned customer base (ISPs hold spare space); larger
  /// values thin the per-/48 density of dynamic addresses.
  int rotation_pool_spread = 6;
  std::uint64_t seed = 0x715;
};

class Population {
 public:
  static Population generate(const AsRegistry& registry,
                             const PopulationConfig& config);

  const std::vector<Device>& devices() const { return devices_; }
  std::vector<Device>& devices() { return devices_; }
  const AsRegistry& registry() const { return *registry_; }
  const PopulationConfig& config() const { return config_; }

  /// Allocate a fresh customer delegation in `asn` (used for dynamic-prefix
  /// rotation at runtime; draws from the same sequential allocator).
  net::Ipv6Prefix allocate_delegation(net::AsNumber asn, bool eyeball,
                                      util::Rng& rng);

  /// A rotated delegation drawn from the AS's already-active pool (prefix
  /// churn recycles space; fresh /48s are not burned per rotation).
  net::Ipv6Prefix rotate_delegation(net::AsNumber asn, bool eyeball,
                                    util::Rng& rng);

  /// Build an address for `device` inside `delegation`, regenerating the
  /// IID if the device randomises it (privacy / MAC randomisation).
  net::Ipv6Address make_address(Device& device,
                                const net::Ipv6Prefix& delegation,
                                bool regenerate_iid, util::Rng& rng);

  std::uint64_t unique_key_count() const { return next_unique_key_; }

 private:
  Population(const AsRegistry& registry, PopulationConfig config)
      : registry_(&registry), config_(std::move(config)) {}

  KeyId assign_key(KeyProvisioning mode, const std::string& model,
                   int pool_size, const char* kind, util::Rng& rng);
  std::uint64_t iid_for(Device& device, bool regenerate, util::Rng& rng);
  void instantiate_services(Device& device, util::Rng& rng);

  const AsRegistry* registry_;
  PopulationConfig config_;
  std::vector<Device> devices_;

  // Sequential per-AS customer allocation cursors.
  std::unordered_map<net::AsNumber, std::uint64_t> next_customer_;
  std::uint64_t next_unique_key_ = 1;
};

}  // namespace tts::inet
