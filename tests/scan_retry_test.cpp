// Retry/backoff and per-prefix circuit breaking: the RetryPolicy schedule,
// the CircuitBreakerSet state machine, and both woven through the engine
// (conservation of probe records under retries and shedding).
#include <gtest/gtest.h>

#include <vector>

#include "scan/engine.hpp"
#include "scan/retry.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/fault.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace tts::scan {
namespace {

constexpr std::uint64_t kNetA = 0x20010db800010000ULL;
constexpr std::uint64_t kNetB = 0x20010db900010000ULL;

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_halves(hi, lo);
}

// ------------------------------------------------------------ RetryPolicy

TEST(RetryPolicy, DisabledByDefault) {
  RetryPolicy p;
  EXPECT_FALSE(p.enabled());
  RetryPolicy on;
  on.max_retries = 1;
  EXPECT_TRUE(on.enabled());
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.max_retries = 8;
  p.base_backoff = simnet::sec(4);
  p.multiplier = 2.0;
  p.max_backoff = simnet::minutes(4);
  p.jitter = 0.0;  // exact schedule
  util::Rng rng(1);
  EXPECT_EQ(p.backoff(1, rng), simnet::sec(4));
  EXPECT_EQ(p.backoff(2, rng), simnet::sec(8));
  EXPECT_EQ(p.backoff(3, rng), simnet::sec(16));
  // Far past the cap: clamped, not overflowed.
  EXPECT_EQ(p.backoff(30, rng), simnet::minutes(4));
}

TEST(RetryPolicy, JitterIsBoundedAndSeedDeterministic) {
  RetryPolicy p;
  p.max_retries = 4;
  p.base_backoff = simnet::sec(10);
  p.jitter = 0.25;
  std::vector<simnet::SimDuration> first, second;
  {
    util::Rng rng(7);
    for (std::uint32_t i = 0; i < 16; ++i) first.push_back(p.backoff(1, rng));
  }
  {
    util::Rng rng(7);
    for (std::uint32_t i = 0; i < 16; ++i) second.push_back(p.backoff(1, rng));
  }
  EXPECT_EQ(first, second);
  for (simnet::SimDuration d : first) {
    EXPECT_GE(d, simnet::sec(10));
    EXPECT_LT(d, simnet::sec(10) + simnet::sec(10) / 4);
  }
}

TEST(RetryPolicy, JitteredBackoffNeverExceedsMaxBackoff) {
  // Regression: jitter used to be added after the cap, so a base at or near
  // max_backoff overshot it by up to jitter x.
  RetryPolicy p;
  p.max_retries = 12;
  p.base_backoff = simnet::sec(10);
  p.multiplier = 2.0;
  p.max_backoff = simnet::sec(12);
  p.jitter = 0.5;
  util::Rng rng(99);
  for (std::uint32_t retry = 1; retry <= 12; ++retry) {
    for (int draw = 0; draw < 64; ++draw) {
      simnet::SimDuration d = p.backoff(retry, rng);
      EXPECT_LE(d, p.max_backoff) << "retry " << retry;
      EXPECT_GE(d, simnet::sec(10));
    }
  }
  // Once the un-jittered base already sits at the cap, every jittered draw
  // clamps to exactly max_backoff.
  for (int draw = 0; draw < 16; ++draw)
    EXPECT_EQ(p.backoff(10, rng), simnet::sec(12));
}

TEST(RetryPolicy, RetryIndexZeroDoesNotUnderflow) {
  // Regression: retry_index is 1-based; a 0 from a buggy caller used to
  // underflow to pow(multiplier, 2^32 - 1) = inf. It now behaves like the
  // first retry.
  RetryPolicy p;
  p.max_retries = 4;
  p.base_backoff = simnet::sec(4);
  p.multiplier = 2.0;
  p.max_backoff = simnet::minutes(4);
  p.jitter = 0.0;
  util::Rng rng(3);
  EXPECT_EQ(p.backoff(0, rng), simnet::sec(4));
  EXPECT_EQ(p.backoff(0, rng), p.backoff(1, rng));
}

// ------------------------------------------------------ CircuitBreakerSet

BreakerConfig breaker_config() {
  BreakerConfig c;
  c.enabled = true;
  c.prefix_len = 48;
  c.open_after = 3;
  c.open_for = simnet::minutes(1);
  c.half_open_probes = 1;
  return c;
}

TEST(CircuitBreaker, OpensAfterConsecutiveTimeoutsInOnePrefix) {
  CircuitBreakerSet b(breaker_config());
  auto t1 = addr(kNetA, 1), t2 = addr(kNetA, 2);
  ASSERT_EQ(b.key_of(t1), b.key_of(t2));  // same /48: one breaker

  EXPECT_TRUE(b.would_admit(t1, 0));
  b.on_outcome(t1, false, simnet::sec(1));
  b.on_outcome(t2, false, simnet::sec(2));
  EXPECT_EQ(b.state(t1), CircuitBreakerSet::State::kClosed);
  b.on_outcome(t1, false, simnet::sec(3));  // third in a row: trip
  EXPECT_EQ(b.state(t1), CircuitBreakerSet::State::kOpen);
  EXPECT_EQ(b.opens(), 1u);
  EXPECT_EQ(b.tripped_now(), 1);
  EXPECT_FALSE(b.would_admit(t2, simnet::sec(4)));
}

TEST(CircuitBreaker, ConclusiveOutcomeResetsTheStreak) {
  CircuitBreakerSet b(breaker_config());
  auto t = addr(kNetA, 1);
  b.on_outcome(t, false, 1);
  b.on_outcome(t, false, 2);
  b.on_outcome(t, true, 3);  // the path answered: forgive the streak
  b.on_outcome(t, false, 4);
  b.on_outcome(t, false, 5);
  EXPECT_EQ(b.state(t), CircuitBreakerSet::State::kClosed);
  EXPECT_EQ(b.opens(), 0u);
}

TEST(CircuitBreaker, PrefixesAreIndependent) {
  CircuitBreakerSet b(breaker_config());
  auto in = addr(kNetA, 1), out = addr(kNetB, 1);
  for (int i = 0; i < 3; ++i) b.on_outcome(in, false, i);
  EXPECT_EQ(b.state(in), CircuitBreakerSet::State::kOpen);
  EXPECT_EQ(b.state(out), CircuitBreakerSet::State::kClosed);
  EXPECT_TRUE(b.would_admit(out, simnet::sec(1)));
}

TEST(CircuitBreaker, HalfOpensAfterCooldownAndClosesOnSuccess) {
  CircuitBreakerSet b(breaker_config());
  auto t = addr(kNetA, 1);
  for (int i = 0; i < 3; ++i) b.on_outcome(t, false, i);
  ASSERT_EQ(b.state(t), CircuitBreakerSet::State::kOpen);

  EXPECT_FALSE(b.would_admit(t, simnet::sec(59)));
  simnet::SimTime after = simnet::minutes(1) + simnet::sec(1);
  EXPECT_TRUE(b.would_admit(t, after));

  b.note_launch(t, after);  // commits the open -> half-open transition
  EXPECT_EQ(b.state(t), CircuitBreakerSet::State::kHalfOpen);
  EXPECT_EQ(b.half_opens(), 1u);
  // One trial in flight: the trickle cap refuses a second probe.
  EXPECT_FALSE(b.would_admit(t, after));

  b.on_outcome(t, true, after + simnet::sec(1));
  EXPECT_EQ(b.state(t), CircuitBreakerSet::State::kClosed);
  EXPECT_EQ(b.closes(), 1u);
  EXPECT_EQ(b.tripped_now(), 0);
  EXPECT_TRUE(b.would_admit(t, after + simnet::sec(2)));
}

TEST(CircuitBreaker, TrialTimeoutReopens) {
  CircuitBreakerSet b(breaker_config());
  auto t = addr(kNetA, 1);
  for (int i = 0; i < 3; ++i) b.on_outcome(t, false, i);
  simnet::SimTime after = simnet::minutes(1) + simnet::sec(1);
  b.note_launch(t, after);
  ASSERT_EQ(b.state(t), CircuitBreakerSet::State::kHalfOpen);

  b.on_outcome(t, false, after + simnet::sec(8));  // trial also silent
  EXPECT_EQ(b.state(t), CircuitBreakerSet::State::kOpen);
  EXPECT_EQ(b.opens(), 2u);
  EXPECT_EQ(b.closes(), 0u);
  // The re-open restarts the cool-down from the trial's failure time.
  EXPECT_FALSE(b.would_admit(t, after + simnet::sec(30)));
  EXPECT_TRUE(
      b.would_admit(t, after + simnet::sec(8) + simnet::minutes(1) + 1));
}

// ------------------------------------------------------- AS escalation tier

BreakerConfig as_breaker_config() {
  BreakerConfig c = breaker_config();
  c.as_open_after = 2;  // two tripped /48s escalate their /32
  c.as_prefix_len = 32;
  return c;
}

// Three /48s inside one /32 (kNetA's AS), plus kNetB in another AS.
constexpr std::uint64_t kNetA2 = 0x20010db800020000ULL;
constexpr std::uint64_t kNetA3 = 0x20010db800030000ULL;

TEST(CircuitBreaker, AsTierEscalatesWhenEnoughChildrenTrip) {
  CircuitBreakerSet b(as_breaker_config());
  auto p1 = addr(kNetA, 1), p2 = addr(kNetA2, 1), p3 = addr(kNetA3, 1);
  ASSERT_EQ(b.as_key_of(p1), b.as_key_of(p3));

  for (int i = 0; i < 3; ++i) b.on_outcome(p1, false, i);
  EXPECT_FALSE(b.as_open(p1));  // one tripped child: below the threshold
  EXPECT_TRUE(b.would_admit(p3, simnet::sec(1)));
  for (int i = 0; i < 3; ++i) b.on_outcome(p2, false, i);
  EXPECT_TRUE(b.as_open(p1));
  EXPECT_EQ(b.as_opens(), 1u);
  EXPECT_EQ(b.as_open_now(), 1);
  // The untouched (closed) /48 inside the AS is now shed wholesale…
  EXPECT_FALSE(b.would_admit(p3, simnet::sec(1)));
  // …other ASes are unaffected…
  EXPECT_TRUE(b.would_admit(addr(kNetB, 1), simnet::sec(1)));
  // …and the tripped children's own recovery trials still flow, so the
  // escalated AS can heal itself.
  EXPECT_TRUE(b.would_admit(p1, simnet::minutes(1) + simnet::sec(3)));
}

TEST(CircuitBreaker, AsTierDeEscalatesAsChildrenRecover) {
  CircuitBreakerSet b(as_breaker_config());
  auto p1 = addr(kNetA, 1), p2 = addr(kNetA2, 1), p3 = addr(kNetA3, 1);
  for (int i = 0; i < 3; ++i) b.on_outcome(p1, false, i);
  for (int i = 0; i < 3; ++i) b.on_outcome(p2, false, i);
  ASSERT_TRUE(b.as_open(p1));

  // One child runs its half-open trial and the path answers: the child
  // closes, dropping the tripped count below the threshold.
  simnet::SimTime after = simnet::minutes(1) + simnet::sec(3);
  b.note_launch(p1, after);
  b.on_outcome(p1, true, after + simnet::sec(1));
  EXPECT_FALSE(b.as_open(p1));
  EXPECT_EQ(b.as_closes(), 1u);
  EXPECT_EQ(b.as_open_now(), 0);
  EXPECT_TRUE(b.would_admit(p3, after + simnet::sec(2)));
}

TEST(CircuitBreaker, AsTierObserverSeesEscalationEdges) {
  CircuitBreakerSet b(as_breaker_config());
  std::vector<bool> edges;
  b.set_as_transition_observer(
      [&](const net::Ipv6Address& as_key, bool open, simnet::SimTime) {
        EXPECT_EQ(as_key, b.as_key_of(addr(kNetA, 1)));
        edges.push_back(open);
      });
  auto p1 = addr(kNetA, 1), p2 = addr(kNetA2, 1);
  for (int i = 0; i < 3; ++i) b.on_outcome(p1, false, i);
  for (int i = 0; i < 3; ++i) b.on_outcome(p2, false, i);
  simnet::SimTime after = simnet::minutes(1) + simnet::sec(3);
  b.note_launch(p1, after);
  b.on_outcome(p1, true, after + simnet::sec(1));
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges[0]);
  EXPECT_FALSE(edges[1]);
}

TEST(CircuitBreaker, AsTierDisabledByDefault) {
  CircuitBreakerSet b(breaker_config());  // as_open_after = 0
  auto p1 = addr(kNetA, 1), p2 = addr(kNetA2, 1), p3 = addr(kNetA3, 1);
  for (int i = 0; i < 3; ++i) b.on_outcome(p1, false, i);
  for (int i = 0; i < 3; ++i) b.on_outcome(p2, false, i);
  EXPECT_FALSE(b.as_open(p1));
  EXPECT_EQ(b.as_opens(), 0u);
  EXPECT_TRUE(b.would_admit(p3, simnet::sec(1)));
}

// ----------------------------------------------------------- engine level

class RetryEngineTest : public ::testing::Test {
 protected:
  RetryEngineTest() : network_(events_) {}

  ScanEngineConfig fast_config() {
    ScanEngineConfig c;
    c.scanner_address = addr(kNetB, 0xbeef);
    c.min_protocol_delay = simnet::usec(10);
    c.max_protocol_delay = simnet::usec(20);
    c.max_pps = 100000;
    return c;
  }

  simnet::EventQueue events_;
  simnet::Network network_;
  ResultStore results_;
};

TEST_F(RetryEngineTest, TimedOutProbesAreRestagedThenRecordedOnce) {
  auto config = fast_config();
  config.retry.max_retries = 2;
  config.retry.base_backoff = simnet::sec(1);
  ScanEngine engine(network_, results_, config);

  // Three offline targets: every probe of every attempt times out.
  for (std::uint64_t i = 1; i <= 3; ++i) engine.submit(addr(kNetA, i));
  events_.run();

  const std::uint64_t chains = 3 * kProtocolCount;
  EXPECT_EQ(engine.retries_staged(), 2 * chains);
  EXPECT_EQ(engine.probes_launched(), 3 * chains);
  EXPECT_EQ(engine.probes_completed(), 3 * chains);
  EXPECT_EQ(engine.retries_dropped(), 0u);
  EXPECT_EQ(engine.retry_successes(), 0u);
  // Conservation: one record per target x protocol, attempts collapse.
  EXPECT_EQ(results_.total(config.dataset), chains);
  EXPECT_EQ(results_.total(config.dataset),
            engine.probes_completed() - engine.retries_staged());
}

TEST_F(RetryEngineTest, ConclusiveOutcomeStopsTheRetryLadder) {
  // A blackhole window covers the first attempt; retries land after it and
  // get an immediate RST (attached host, no listener) — conclusive, so the
  // remaining retry budget is never spent on the TCP protocols.
  simnet::FaultScenario scenario;
  scenario.rules.push_back({.prefix = net::Ipv6Prefix(addr(kNetA, 0), 32),
                            .kind = simnet::FaultKind::kBlackhole,
                            .from = 0,
                            .until = simnet::sec(10)});
  network_.install_faults(scenario);
  network_.attach(addr(kNetA, 1));

  auto config = fast_config();
  config.retry.max_retries = 5;
  config.retry.base_backoff = simnet::sec(15);
  config.retry.jitter = 0.0;
  ScanEngine engine(network_, results_, config);
  engine.submit(addr(kNetA, 1));
  events_.run();

  // 7 TCP protocols: first attempt blackholed, one retry refused. CoAP is
  // UDP-silent forever and burns its whole ladder.
  EXPECT_EQ(engine.retries_staged(), 7 + 5u);
  EXPECT_EQ(results_.total(config.dataset), kProtocolCount);
  std::uint64_t refused = 0;
  for (std::size_t p = 0; p < kProtocolCount; ++p)
    refused += results_.count(config.dataset, static_cast<Protocol>(p),
                              Outcome::kRefused);
  EXPECT_EQ(refused, 7u);
}

TEST_F(RetryEngineTest, BreakerShedsConservesRecordsAndRecloses) {
  // One /48 of dead-for-a-minute targets: the breaker opens on the timeout
  // streak, sheds the staggered later probes, then half-open trials close
  // it once the fault window ends and connects answer with RSTs.
  simnet::FaultScenario scenario;
  scenario.rules.push_back({.prefix = net::Ipv6Prefix(addr(kNetA, 0), 48),
                            .kind = simnet::FaultKind::kBlackhole,
                            .from = 0,
                            .until = simnet::sec(60)});
  network_.install_faults(scenario);
  for (std::uint64_t i = 1; i <= 6; ++i) network_.attach(addr(kNetA, i));

  auto config = fast_config();
  config.min_protocol_delay = simnet::sec(10);
  config.max_protocol_delay = simnet::sec(20);
  config.breaker.enabled = true;
  config.breaker.prefix_len = 48;
  config.breaker.open_after = 3;
  config.breaker.open_for = simnet::sec(30);
  ScanEngine engine(network_, results_, config);
  for (std::uint64_t i = 1; i <= 6; ++i) engine.submit(addr(kNetA, i));
  events_.run();

  ASSERT_NE(engine.breaker(), nullptr);
  EXPECT_GE(engine.breaker()->opens(), 1u);
  EXPECT_GE(engine.breaker()->closes(), 1u);
  EXPECT_GE(engine.breaker_shed(), 1u);
  // (No tripped_now assertion: the chain ends on CoAP, whose UDP silence
  // may deterministically leave the breaker's final state open.)
  // Every target x protocol produced exactly one record: launched probes
  // completed, shed probes synthesized their timeout.
  const std::uint64_t chains = 6 * kProtocolCount;
  EXPECT_EQ(results_.total(config.dataset), chains);
  EXPECT_EQ(results_.total(config.dataset),
            engine.probes_completed() + engine.breaker_shed());
}

TEST_F(RetryEngineTest, ValidatesTimeoutAndRetryConfig) {
  auto bad_connect = fast_config();
  bad_connect.connect_timeout = simnet::sec(30);  // exceeds probe guard
  EXPECT_THROW(ScanEngine(network_, results_, bad_connect),
               std::invalid_argument);

  auto bad_retries = fast_config();
  bad_retries.retry.max_retries = 1000;
  EXPECT_THROW(ScanEngine(network_, results_, bad_retries),
               std::invalid_argument);
}

}  // namespace
}  // namespace tts::scan
