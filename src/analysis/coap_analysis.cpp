#include "analysis/coap_analysis.hpp"

#include <unordered_set>

#include "util/format.hpp"

namespace tts::analysis {

std::string coap_resource_group(const std::vector<std::string>& resources) {
  if (resources.empty()) return "empty";
  for (const auto& r : resources) {
    if (util::icontains(r, "castDeviceSearch")) return "castdevice";
    if (util::istarts_with(r, "/qlink")) return "qlink";
    if (util::icontains(r, "efento")) return "efento";
    if (util::icontains(r, "nanoleaf")) return "nanoleaf";
  }
  return "other";
}

std::map<std::string, std::uint64_t> coap_group_counts(
    const scan::ResultStore& results, scan::Dataset dataset,
    unsigned prefix_len) {
  // One unit per address (or network); resource sets are stable per device,
  // so the first observation's grouping stands.
  std::map<std::string, std::uint64_t> counts;
  std::unordered_set<std::uint64_t> seen;
  for (const auto* r : results.successes(dataset, scan::Protocol::kCoap)) {
    std::uint64_t unit =
        prefix_len >= 128
            ? net::Ipv6AddressHash{}(r->target)
            : net::Ipv6PrefixHash{}(net::Ipv6Prefix(r->target, prefix_len));
    if (!seen.insert(unit).second) continue;
    ++counts[coap_resource_group(r->coap_resources)];
  }
  return counts;
}

}  // namespace tts::analysis
