// Order-stable drains for unordered containers.
//
// Iterating an unordered_{map,set} directly exposes hash order, which
// varies across libstdc++ versions and (for pointer keys) across runs.
// Whenever that order can escape — into a report, a vector, a tie-break —
// drain through one of these helpers instead. ttslint (tools/ttslint)
// recognises them and treats the resulting range as ordered.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace tts::util {

namespace detail {
template <class K, class V>
const K& key_of(const std::pair<const K, V>& p) {
  return p.first;
}
template <class K>
const K& key_of(const K& k) {
  return k;
}
}  // namespace detail

/// Copy a map's (key, value) pairs, sorted by key ascending.
template <class Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      out;
  out.reserve(m.size());
  for (const auto& item : m) out.emplace_back(item.first, item.second);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

/// Copy a set's elements (or a map's keys), sorted ascending.
template <class Container>
std::vector<typename Container::key_type> sorted_keys(const Container& c) {
  std::vector<typename Container::key_type> out;
  out.reserve(c.size());
  for (const auto& item : c) out.push_back(detail::key_of(item));
  std::sort(out.begin(), out.end());
  return out;
}

/// Pointers into a map's entries, sorted by key — no value copies, but the
/// pointers are invalidated by any rehash/erase on the source container.
template <class Map>
std::vector<const typename Map::value_type*> sorted_ptrs(const Map& m) {
  std::vector<const typename Map::value_type*> out;
  out.reserve(m.size());
  for (const auto& item : m) out.push_back(&item);
  std::sort(out.begin(), out.end(), [](const auto* a, const auto* b) {
    return a->first < b->first;
  });
  return out;
}

}  // namespace tts::util
