#include "proto/sshwire.hpp"

#include "net/packet.hpp"

namespace tts::proto {

namespace {
constexpr std::uint32_t kKexMagic = 0x5353484B;  // 'SSHK'
}

std::vector<std::uint8_t> ssh_id_string(const std::string& banner) {
  std::string line = banner + "\r\n";
  return std::vector<std::uint8_t>(line.begin(), line.end());
}

std::optional<std::string> parse_ssh_id(std::span<const std::uint8_t> wire) {
  std::string text(wire.begin(), wire.end());
  std::size_t eol = text.find_first_of("\r\n");
  if (eol != std::string::npos) text.resize(eol);
  if (text.rfind("SSH-", 0) != 0) return std::nullopt;
  if (text.size() > 255) return std::nullopt;  // RFC 4253 limit
  return text;
}

std::string ssh_software(const std::string& banner) {
  // banner = "SSH-protoversion-softwareversion SP comments"
  std::size_t second_dash = banner.find('-', 4);
  if (banner.rfind("SSH-", 0) != 0 || second_dash == std::string::npos)
    return {};
  return banner.substr(second_dash + 1);
}

std::string ssh_os_from_banner(const std::string& banner) {
  std::string software = ssh_software(banner);
  // The OS token is the word after the space (OpenSSH packaging style:
  // "OpenSSH_9.2p1 Debian-2+deb12u3") — trimmed at the first '-'.
  std::size_t space = software.find(' ');
  if (space == std::string::npos) return "";
  std::string comment = software.substr(space + 1);
  std::size_t dash = comment.find('-');
  std::string os = dash == std::string::npos ? comment : comment.substr(0, dash);
  // Keep only the distributions the paper tabulates; anything else is
  // "other/unknown" (Table 3's SSH panel).
  if (os == "Ubuntu" || os == "Debian" || os == "Raspbian" || os == "FreeBSD")
    return os;
  return "";
}

std::vector<std::uint8_t> ssh_kex_reply(std::uint64_t host_key_fingerprint) {
  net::PacketWriter w(13);
  w.u32(kKexMagic);
  w.u8(0);  // key type: ssh-ed25519 stand-in
  w.u64(host_key_fingerprint);
  return w.take();
}

std::optional<std::uint64_t> parse_ssh_kex_reply(
    std::span<const std::uint8_t> wire) {
  try {
    net::PacketReader r(wire);
    if (r.u32() != kKexMagic) return std::nullopt;
    r.u8();
    return r.u64();
  } catch (const net::ParseError&) {
    return std::nullopt;
  }
}

}  // namespace tts::proto
