// Address collection: the modified pool servers report every client source
// address here. The collector deduplicates, attributes addresses to the
// collecting server (Table 7, Figure 4), keeps a per-day timeline, and
// feeds subscribers in real time — the scan engine subscribes so scans
// start while collection is still running, exactly as in Section 4.1.
//
// All counts live in obs instruments (requests, dedup hits, distinct
// total, per-server distinct); the accessors below read those same cells,
// and passing a Registry exports them without any parallel bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ipv6.hpp"
#include "obs/metrics.hpp"
#include "simnet/time.hpp"
#include "util/stats.hpp"

namespace tts::ntp {

/// Identifies one of our pool servers; indexes into the deployment list.
using ServerId = std::uint32_t;

struct CollectedAddress {
  net::Ipv6Address addr;
  ServerId server = 0;
  simnet::SimTime first_seen = 0;
};

class AddressCollector {
 public:
  /// Subscribers run synchronously on first sight of a new address.
  using NewAddressFn = std::function<void(const CollectedAddress&)>;

  /// With a registry, all collection instruments (including the lazily
  /// created per-server counters) are exported. The registry must outlive
  /// the collector.
  explicit AddressCollector(obs::Registry* registry = nullptr);
  ~AddressCollector();
  AddressCollector(const AddressCollector&) = delete;
  AddressCollector& operator=(const AddressCollector&) = delete;

  /// Record a sighting. Returns true if the address was new.
  bool record(const net::Ipv6Address& addr, ServerId server,
              simnet::SimTime at);

  void subscribe(NewAddressFn fn) { subscribers_.push_back(std::move(fn)); }

  std::uint64_t total_requests() const { return requests_.value(); }
  std::uint64_t distinct_addresses() const { return addresses_.size(); }
  /// Requests whose source address had been seen before (dedup rate =
  /// dedup_hits / total_requests).
  std::uint64_t dedup_hits() const { return dedup_hits_.value(); }
  std::uint64_t server_distinct(ServerId server) const;

  /// Distinct addresses first seen on each day (day = floor(t / 1 day)).
  /// Ordered by day: consumers iterate this straight into timelines.
  const std::map<std::int64_t, std::uint64_t>& daily_new() const {
    return daily_new_;
  }

  const std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash>&
  addresses() const {
    return addresses_;
  }

  /// Snapshot of all collected addresses in first-seen order — a function
  /// of the event sequence only, never of hash layout.
  std::vector<net::Ipv6Address> snapshot() const;

 private:
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> addresses_;
  std::vector<net::Ipv6Address> order_;  // first-seen order of addresses_
  // Node-based map keeps counter addresses stable across rehashes.
  std::unordered_map<ServerId, obs::Counter> per_server_;
  std::map<std::int64_t, std::uint64_t> daily_new_;
  std::vector<NewAddressFn> subscribers_;
  obs::Counter requests_;
  obs::Counter distinct_;
  obs::Counter dedup_hits_;
  obs::Registry* registry_ = nullptr;
};

}  // namespace tts::ntp
