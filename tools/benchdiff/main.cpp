// benchdiff: compare two BENCH_*.json perf-trajectory samples (schema v1,
// emitted by bench/common.hpp) and fail on regressions.
//
//   benchdiff <baseline.json> <current.json> [--tolerance=R]
//             [--wall-tolerance=R] [--quiet]
//
// Metrics fall into two classes with separate tolerances:
//   * sim-deterministic counts (events_executed, addresses_collected, ...):
//     bit-stable for a given seed/scale, so any relative drift beyond
//     --tolerance (default 0.25) fails in EITHER direction — a silent
//     behaviour change is as suspect as a slowdown.
//   * wall metrics (dispatch_*_ns, wall_seconds, rss_peak_kb: lower is
//     better; *_per_sec_wall: higher is better): machine-noisy, compared
//     one-sided against --wall-tolerance (default 0.5; CI uses a looser
//     value across runner generations).
//
// Exit codes: 0 = within tolerance, 1 = regression/drift, 2 = usage or
// parse error.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Sample {
  int schema = 0;
  std::string name;
  std::string scale;
  // Ordered: the report lists metrics in emission order.
  std::vector<std::pair<std::string, double>> metrics;
  const double* find(const std::string& key) const {
    for (const auto& [k, v] : metrics)
      if (k == key) return &v;
    return nullptr;
  }
};

// Minimal parser for the exact JSON subset emit_bench_json writes: one
// object with scalar fields and one flat "metrics" object of numbers.
class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  bool parse(Sample& out) {
    skip_ws();
    if (!eat('{')) return false;
    while (true) {
      skip_ws();
      if (eat('}')) return true;
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (key == "metrics") {
        if (!parse_metrics(out)) return false;
      } else if (key == "schema") {
        double v;
        if (!parse_number(v)) return false;
        out.schema = static_cast<int>(v);
      } else if (key == "name") {
        if (!parse_string(out.name)) return false;
      } else if (key == "scale") {
        if (!parse_string(out.scale)) return false;
      } else {
        if (!skip_value()) return false;  // forward-compat: ignore
      }
      skip_ws();
      if (eat(',')) continue;
      skip_ws();
      if (eat('}')) return true;
      return false;
    }
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return false;  // emitter never escapes
      out += text_[pos_++];
    }
    return eat('"');
  }
  bool parse_number(double& out) {
    char* end = nullptr;
    out = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return true;
  }
  bool parse_metrics(Sample& out) {
    if (!eat('{')) return false;
    while (true) {
      skip_ws();
      if (eat('}')) return true;
      std::string key;
      double value;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!parse_number(value)) return false;
      out.metrics.emplace_back(std::move(key), value);
      skip_ws();
      if (eat(',')) continue;
      skip_ws();
      if (eat('}')) return true;
      return false;
    }
  }
  bool skip_value() {
    // Good enough for scalars (the only unknown fields a future schema
    // could add at the top level without bumping the version).
    if (text_[pos_] == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    double ignored;
    return parse_number(ignored);
  }

  std::string text_;
  std::size_t pos_ = 0;
};

bool load(const char* path, Sample& out, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = std::string("cannot open ") + path;
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  if (!Parser(buf.str()).parse(out)) {
    error = std::string("malformed sample: ") + path;
    return false;
  }
  if (out.schema != 1) {
    error = std::string(path) + ": unsupported schema " +
            std::to_string(out.schema);
    return false;
  }
  return true;
}

enum class Class { kSimCount, kWallLowerBetter, kWallHigherBetter };

Class classify(const std::string& key) {
  if (key.find("per_sec_wall") != std::string::npos)
    return Class::kWallHigherBetter;
  auto ends_with = [&key](const char* suffix) {
    std::size_t n = std::strlen(suffix);
    return key.size() >= n && key.compare(key.size() - n, n, suffix) == 0;
  };
  if (ends_with("_ns") || key == "wall_seconds" || key == "rss_peak_kb")
    return Class::kWallLowerBetter;
  return Class::kSimCount;
}

std::string pct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", ratio * 100.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.25;
  double wall_tolerance = 0.5;
  bool quiet = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      tolerance = std::strtod(arg + 12, nullptr);
    } else if (std::strncmp(arg, "--wall-tolerance=", 17) == 0) {
      wall_tolerance = std::strtod(arg + 17, nullptr);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "benchdiff: unknown flag %s\n", arg);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2 || tolerance <= 0 || wall_tolerance <= 0) {
    std::fprintf(stderr,
                 "usage: benchdiff <baseline.json> <current.json> "
                 "[--tolerance=R] [--wall-tolerance=R] [--quiet]\n");
    return 2;
  }

  Sample baseline, current;
  std::string error;
  if (!load(files[0], baseline, error) || !load(files[1], current, error)) {
    std::fprintf(stderr, "benchdiff: %s\n", error.c_str());
    return 2;
  }
  if (baseline.name != current.name || baseline.scale != current.scale) {
    std::fprintf(stderr,
                 "benchdiff: comparing different samples: %s/%s vs %s/%s\n",
                 baseline.name.c_str(), baseline.scale.c_str(),
                 current.name.c_str(), current.scale.c_str());
    return 2;
  }

  int failures = 0;
  if (!quiet)
    std::printf("%-24s %14s %14s %9s  %s\n", "metric", "baseline", "current",
                "change", "verdict");
  for (const auto& [key, base] : baseline.metrics) {
    const double* cur = current.find(key);
    if (!cur) {
      // A wall metric can legitimately vanish (e.g. dispatch histogram
      // empty when sampling saw no events); a sim count cannot.
      bool fatal = classify(key) == Class::kSimCount;
      if (fatal) ++failures;
      if (!quiet)
        std::printf("%-24s %14.6g %14s %9s  %s\n", key.c_str(), base, "-",
                    "-", fatal ? "MISSING" : "missing (ok)");
      continue;
    }
    double ratio = base != 0 ? (*cur - base) / std::fabs(base)
                   : (*cur == 0 ? 0.0 : HUGE_VAL);
    bool fail = false;
    const char* verdict = "ok";
    switch (classify(key)) {
      case Class::kSimCount:
        fail = std::fabs(ratio) > tolerance;
        if (fail) verdict = "DRIFT";
        break;
      case Class::kWallLowerBetter:
        fail = ratio > wall_tolerance;
        if (fail) verdict = "REGRESSED";
        break;
      case Class::kWallHigherBetter:
        fail = -ratio > wall_tolerance;
        if (fail) verdict = "REGRESSED";
        break;
    }
    if (fail) ++failures;
    if (!quiet)
      std::printf("%-24s %14.6g %14.6g %9s  %s\n", key.c_str(), base, *cur,
                  pct(ratio).c_str(), verdict);
  }
  for (const auto& [key, value] : current.metrics) {
    if (!baseline.find(key) && !quiet)
      std::printf("%-24s %14s %14.6g %9s  new metric\n", key.c_str(), "-",
                  value, "-");
  }

  if (failures) {
    std::fprintf(stderr, "benchdiff: %d metric(s) out of tolerance\n",
                 failures);
    return 1;
  }
  if (!quiet) std::printf("benchdiff: all metrics within tolerance\n");
  return 0;
}
