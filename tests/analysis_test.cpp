#include <gtest/gtest.h>

#include "analysis/broker_analysis.hpp"
#include "analysis/coap_analysis.hpp"
#include "analysis/iid_classes.hpp"
#include "analysis/key_reuse.hpp"
#include "analysis/network_agg.hpp"
#include "analysis/security_score.hpp"
#include "analysis/ssh_analysis.hpp"
#include "analysis/title_grouping.hpp"
#include "inet/device.hpp"

namespace tts::analysis {
namespace {

using scan::Dataset;
using scan::Outcome;
using scan::Protocol;
using scan::ScanRecord;

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x2400000000000000ULL | hi, lo);
}

// ------------------------------------------------------------- IID classes

TEST(IidClasses, Classification) {
  EXPECT_EQ(classify_iid(addr(1, 0)), IidClass::kZero);
  EXPECT_EQ(classify_iid(addr(1, 0x01)), IidClass::kLastByte);
  EXPECT_EQ(classify_iid(addr(1, 0xff)), IidClass::kLastByte);
  EXPECT_EQ(classify_iid(addr(1, 0x100)), IidClass::kLastTwoBytes);
  EXPECT_EQ(classify_iid(addr(1, 0xffff)), IidClass::kLastTwoBytes);
  EXPECT_EQ(classify_iid(addr(1, 0x021a4ffffe123456ULL)), IidClass::kEui64);
  // Random-looking privacy IID: all bytes distinct -> high entropy.
  EXPECT_EQ(classify_iid(addr(1, 0x1a2b3c4d5e6f7788ULL)),
            IidClass::kEntropyHigh);
  // Repetitive pattern: low entropy.
  EXPECT_EQ(classify_iid(addr(1, 0x0101010100000000ULL)),
            IidClass::kEntropyLow);
}

TEST(IidClasses, DistributionSumsToOne) {
  std::vector<net::Ipv6Address> addrs = {addr(1, 0), addr(1, 1),
                                         addr(1, 0x1234),
                                         addr(1, 0xa1b2c3d4e5f60718ULL)};
  auto dist = classify_addresses(addrs);
  EXPECT_EQ(dist.total, 4u);
  double sum = 0;
  for (std::size_t i = 0; i < kIidClassCount; ++i)
    sum += dist.fraction(static_cast<IidClass>(i));
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// ---------------------------------------------------------- title grouping

TEST(TitleGrouping, NormalizesEmbeddedIps) {
  EXPECT_EQ(normalize_title("1.2.3.4 was not found"), "(IP) was not found");
  EXPECT_EQ(normalize_title("Host Europe GmbH - 2a01:4f8:abc::17"),
            "Host Europe GmbH - (IP)");
  // Version numbers survive (too short / no separator run).
  EXPECT_EQ(normalize_title("Plesk Obsidian 18.0.34"),
            "Plesk Obsidian 18.0.34");
  EXPECT_EQ(normalize_title("FRITZ!Box 7590"), "FRITZ!Box 7590");
  EXPECT_EQ(normalize_title(""), "");
}

TEST(TitleGrouping, GroupsNearbyTitles) {
  std::vector<TitleObservation> obs = {
      {"FRITZ!Box 7590", Dataset::kNtp, 10},
      {"FRITZ!Box 7530", Dataset::kNtp, 5},
      {"FRITZ!Box 6660", Dataset::kHitlist, 2},
      {"D-LINK DIR-853", Dataset::kHitlist, 7},
      {"Welcome to nginx!", Dataset::kHitlist, 20},
  };
  auto groups = group_titles(obs);
  ASSERT_EQ(groups.size(), 3u);
  // Sorted by total desc: nginx(20), FRITZ(17), D-LINK(7).
  EXPECT_EQ(groups[0].representative, "Welcome to nginx!");
  EXPECT_EQ(groups[1].ntp, 15u);
  EXPECT_EQ(groups[1].hitlist, 2u);
  EXPECT_EQ(groups[2].hitlist, 7u);
}

TEST(TitleGrouping, IpVariantsCollapseToOneGroup) {
  std::vector<TitleObservation> obs = {
      {"2a01:4f8:1::1 was not found", Dataset::kHitlist, 1},
      {"2a01:4f8:2::99 was not found", Dataset::kHitlist, 1},
      {"93.184.216.34 was not found", Dataset::kHitlist, 1},
  };
  auto groups = group_titles(obs);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].hitlist, 3u);
  EXPECT_EQ(groups[0].representative, "(IP) was not found");
}

TEST(TitleGrouping, RespectsThreshold) {
  std::vector<TitleObservation> obs = {
      {"aaaaaaaaaa", Dataset::kNtp, 1},
      {"bbbbbbbbbb", Dataset::kNtp, 1},
  };
  EXPECT_EQ(group_titles(obs, 0.25).size(), 2u);
  EXPECT_EQ(group_titles(obs, 1.0).size(), 1u);
}

// ------------------------------------------------------------ SSH analysis

ScanRecord ssh_record(Dataset dataset, std::uint64_t key,
                      const std::string& banner, std::uint64_t target_lo) {
  ScanRecord r;
  r.dataset = dataset;
  r.protocol = Protocol::kSsh;
  r.outcome = Outcome::kSuccess;
  r.target = addr(target_lo >> 8, target_lo);
  r.ssh_hostkey = key;
  r.ssh_banner = banner;
  return r;
}

TEST(SshAnalysis, DedupByHostKey) {
  scan::ResultStore results;
  results.add(ssh_record(Dataset::kNtp, 1,
                         "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3", 1));
  results.add(ssh_record(Dataset::kNtp, 1,
                         "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3", 2));
  results.add(ssh_record(Dataset::kNtp, 2,
                         "SSH-2.0-OpenSSH_8.9p1 Ubuntu-3ubuntu0.1", 3));
  results.add(ssh_record(Dataset::kHitlist, 3,
                         "SSH-2.0-OpenSSH_9.6 FreeBSD-20240104", 4));

  auto hosts = dedup_ssh_hosts(results, Dataset::kNtp);
  ASSERT_EQ(hosts.size(), 2u);
  auto os = os_distribution(hosts);
  EXPECT_EQ(os["Debian"], 1u);
  EXPECT_EQ(os["Ubuntu"], 1u);

  // The key seen twice carries both addresses.
  for (const auto& h : hosts) {
    if (h.host_key == 1) {
      EXPECT_EQ(h.addresses.size(), 2u);
    }
  }
}

TEST(SshAnalysis, PatchLevelAssessment) {
  EXPECT_TRUE(assessable("SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3"));
  EXPECT_TRUE(assessable("SSH-2.0-OpenSSH_8.9p1 Ubuntu-3ubuntu0.1"));
  EXPECT_FALSE(assessable("SSH-2.0-OpenSSH_9.6 FreeBSD-20240104"));
  EXPECT_FALSE(assessable("SSH-2.0-dropbear_2022.83"));

  // Latest Debian lineage entry is up to date; earlier ones are not.
  const auto& lineage = inet::ssh_version_lineage("Debian");
  EXPECT_TRUE(banner_up_to_date("SSH-2.0-" + lineage.back()));
  EXPECT_FALSE(banner_up_to_date("SSH-2.0-" + lineage.front()));
}

TEST(SshAnalysis, OutdatednessCountsOnlyAssessable) {
  scan::ResultStore results;
  const auto& debian = inet::ssh_version_lineage("Debian");
  results.add(ssh_record(Dataset::kNtp, 1, "SSH-2.0-" + debian.back(), 1));
  results.add(ssh_record(Dataset::kNtp, 2, "SSH-2.0-" + debian.front(), 2));
  results.add(ssh_record(Dataset::kNtp, 3, "SSH-2.0-dropbear_2022.83", 3));
  auto hosts = dedup_ssh_hosts(results, Dataset::kNtp);
  auto stats = outdatedness(hosts);
  EXPECT_EQ(stats.assessable_hosts, 2u);
  EXPECT_EQ(stats.outdated, 1u);
  EXPECT_DOUBLE_EQ(stats.outdated_share(), 0.5);
}

TEST(SshAnalysis, ByNetworkCountsKeyReuseRepeatedly) {
  scan::ResultStore results;
  const auto& debian = inet::ssh_version_lineage("Debian");
  // One outdated key presented from three different /56s.
  std::string old_banner = "SSH-2.0-" + debian.front();
  for (std::uint64_t i = 0; i < 3; ++i) {
    ScanRecord r = ssh_record(Dataset::kNtp, 42, old_banner, 1);
    r.target = addr(i << 8, 0x99);
    results.add(r);
  }
  auto hosts = dedup_ssh_hosts(results, Dataset::kNtp);
  EXPECT_EQ(outdatedness(hosts).assessable_hosts, 1u);  // one key
  auto by_net = outdatedness_by_network(hosts, 56);
  EXPECT_EQ(by_net.assessable_hosts, 3u);  // three networks
  EXPECT_EQ(by_net.outdated, 3u);
}

// ----------------------------------------------------------------- brokers

ScanRecord broker_record(Dataset dataset, Protocol proto, bool auth,
                         std::uint64_t target_lo,
                         std::optional<std::uint64_t> cert = {}) {
  ScanRecord r;
  r.dataset = dataset;
  r.protocol = proto;
  r.outcome = Outcome::kSuccess;
  r.target = addr(target_lo >> 4, target_lo);
  r.broker_auth_required = auth;
  if (cert) {
    r.certificate = proto::Certificate{};
    r.certificate->fingerprint = *cert;
  }
  return r;
}

TEST(BrokerAnalysis, ByAddress) {
  scan::ResultStore results;
  results.add(broker_record(Dataset::kNtp, Protocol::kMqtt, true, 1));
  results.add(broker_record(Dataset::kNtp, Protocol::kMqtt, false, 2));
  results.add(broker_record(Dataset::kNtp, Protocol::kMqtt, false, 3));
  auto stats = access_control_by_address(results, Dataset::kNtp,
                                         BrokerKind::kMqtt);
  EXPECT_EQ(stats.total, 3u);
  EXPECT_EQ(stats.with_auth, 1u);
  EXPECT_NEAR(stats.auth_share(), 1.0 / 3.0, 1e-9);
}

TEST(BrokerAnalysis, OpenOnAnyPortMeansOpen) {
  scan::ResultStore results;
  // Same address: plain port enforces auth, TLS port is open.
  results.add(broker_record(Dataset::kNtp, Protocol::kMqtt, true, 7));
  results.add(broker_record(Dataset::kNtp, Protocol::kMqtts, false, 7, 5));
  auto stats = access_control_by_address(results, Dataset::kNtp,
                                         BrokerKind::kMqtt);
  EXPECT_EQ(stats.total, 1u);
  EXPECT_EQ(stats.with_auth, 0u);
}

TEST(BrokerAnalysis, ByCertificateOnlyCountsTls) {
  scan::ResultStore results;
  results.add(broker_record(Dataset::kNtp, Protocol::kMqtt, false, 1));
  results.add(broker_record(Dataset::kNtp, Protocol::kMqtts, true, 2, 100));
  results.add(broker_record(Dataset::kNtp, Protocol::kMqtts, true, 3, 100));
  auto stats = access_control_by_certificate(results, Dataset::kNtp,
                                             BrokerKind::kMqtt);
  EXPECT_EQ(stats.total, 1u);  // shared cert -> one unit
  EXPECT_EQ(stats.with_auth, 1u);
}

TEST(BrokerAnalysis, ByNetwork) {
  scan::ResultStore results;
  // Two brokers in the same /64, one in another.
  results.add(broker_record(Dataset::kNtp, Protocol::kAmqp, true, 0x10));
  results.add(broker_record(Dataset::kNtp, Protocol::kAmqp, true, 0x11));
  results.add(broker_record(Dataset::kNtp, Protocol::kAmqp, false, 0x100010));
  auto stats = access_control_by_network(results, Dataset::kNtp,
                                         BrokerKind::kAmqp, 64);
  EXPECT_EQ(stats.total, 2u);
  EXPECT_EQ(stats.with_auth, 1u);
}

// -------------------------------------------------------------------- CoAP

TEST(CoapAnalysis, ResourceGrouping) {
  EXPECT_EQ(coap_resource_group({"/castDeviceSearch"}), "castdevice");
  EXPECT_EQ(coap_resource_group({"/qlink/ping", "/qlink/stats"}), "qlink");
  EXPECT_EQ(coap_resource_group({"/efento/m"}), "efento");
  EXPECT_EQ(coap_resource_group({"/nanoleaf/state"}), "nanoleaf");
  EXPECT_EQ(coap_resource_group({}), "empty");
  EXPECT_EQ(coap_resource_group({"/maha", "/.well-known/core"}), "other");
}

TEST(CoapAnalysis, GroupCountsDedupByAddress) {
  scan::ResultStore results;
  for (int i = 0; i < 2; ++i) {
    ScanRecord r;
    r.dataset = Dataset::kNtp;
    r.protocol = Protocol::kCoap;
    r.outcome = Outcome::kSuccess;
    r.target = addr(1, 0x50);  // the same address twice
    r.coap_resources = {"/castDeviceSearch"};
    results.add(r);
  }
  auto counts = coap_group_counts(results, Dataset::kNtp);
  EXPECT_EQ(counts["castdevice"], 1u);
}

// ------------------------------------------------------------- network agg

TEST(NetworkAgg, AggregatesAndMedians) {
  inet::AsRegistry reg = inet::AsRegistry::generate({{}, 5});
  const auto& as0 = reg.all()[0];
  std::uint64_t base = as0.prefixes[0].address().hi64();
  std::vector<net::Ipv6Address> addrs = {
      net::Ipv6Address::from_halves(base | 0x0000, 1),
      net::Ipv6Address::from_halves(base | 0x0001, 2),  // same /48? no: /64 differs
      net::Ipv6Address::from_halves(base | 0x10000, 3),
  };
  auto agg = aggregate(addrs, reg);
  EXPECT_EQ(agg.addresses, 3u);
  EXPECT_EQ(agg.nets48, 2u);
  EXPECT_EQ(agg.nets64, 3u);
  EXPECT_EQ(agg.ases, 1u);
  EXPECT_EQ(agg.countries, 1u);
  EXPECT_DOUBLE_EQ(median_ips_per_net(addrs, 48), 1.5);
  EXPECT_DOUBLE_EQ(median_ips_per_as(addrs, reg), 3.0);
}

TEST(NetworkAgg, Overlaps) {
  std::vector<net::Ipv6Address> a = {addr(0x10000, 1), addr(0x20000, 2)};
  std::vector<net::Ipv6Address> b = {addr(0x10000, 9), addr(0x30000, 3)};
  EXPECT_EQ(overlap(prefixes_of(a, 48), prefixes_of(b, 48)), 1u);
  EXPECT_EQ(address_overlap(a, b), 0u);
  std::vector<net::Ipv6Address> c = {addr(0x10000, 1)};
  EXPECT_EQ(address_overlap(a, c), 1u);
}

// --------------------------------------------------------------- key reuse

TEST(KeyReuse, DetectsWideSpreadKeys) {
  inet::AsRegistry reg = inet::AsRegistry::generate({{}, 5});
  scan::ResultStore results;
  // One key presented from 4 different ASes, one key from a single AS.
  auto make = [&](std::uint64_t cert, const inet::AsInfo& as,
                  std::uint64_t lo) {
    ScanRecord r;
    r.dataset = Dataset::kNtp;
    r.protocol = Protocol::kHttps;
    r.outcome = Outcome::kSuccess;
    r.http_status = 200;
    r.target =
        net::Ipv6Address::from_halves(as.prefixes[0].address().hi64(), lo);
    r.certificate = proto::Certificate{};
    r.certificate->fingerprint = cert;
    results.add(r);
  };
  for (int i = 0; i < 4; ++i) make(111, reg.all()[static_cast<std::size_t>(i)], 50 + static_cast<std::uint64_t>(i));
  make(222, reg.all()[0], 99);

  auto stats = http_key_reuse(results, Dataset::kNtp, reg);
  EXPECT_EQ(stats.reused_keys, 1u);
  EXPECT_EQ(stats.ips_on_reused_keys, 4u);
  EXPECT_EQ(stats.most_used_key_ips, 4u);
  EXPECT_EQ(stats.most_widespread_key_ases, 4u);
}

// ---------------------------------------------------------- security score

TEST(SecurityScore, CombinesSshAndBrokers) {
  scan::ResultStore results;
  const auto& debian = inet::ssh_version_lineage("Debian");
  results.add(ssh_record(Dataset::kNtp, 1, "SSH-2.0-" + debian.back(), 1));
  results.add(ssh_record(Dataset::kNtp, 2, "SSH-2.0-" + debian.front(), 2));
  results.add(broker_record(Dataset::kNtp, Protocol::kMqtts, true, 3, 77));
  results.add(broker_record(Dataset::kNtp, Protocol::kAmqps, false, 4, 88));

  auto score = security_score(results, Dataset::kNtp);
  EXPECT_EQ(score.total_hosts(), 4u);
  EXPECT_EQ(score.ssh_hosts, 2u);
  EXPECT_EQ(score.ssh_secure, 1u);
  EXPECT_EQ(score.mqtt_secure, 1u);
  EXPECT_EQ(score.amqp_secure, 0u);
  EXPECT_DOUBLE_EQ(score.secure_share(), 0.5);
}

}  // namespace
}  // namespace tts::analysis
