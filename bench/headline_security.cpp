// The abstract's headline: secure share of SSH + IoT hosts drops from
// 43.5 % (854 704 hitlist hosts) to 28.4 % (73 975 NTP-sourced hosts).
#include "analysis/security_score.hpp"
#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();

  auto ntp = analysis::security_score(study.results(), scan::Dataset::kNtp);
  auto hit =
      analysis::security_score(study.results(), scan::Dataset::kHitlist);

  util::TextTable t("Headline: secure share of SSH and IoT hosts");
  t.set_header({"", "Our Data", "TUM IPv6 Hitlist"});
  t.add_row({"SSH host keys", util::grouped(ntp.ssh_hosts),
             util::grouped(hit.ssh_hosts)});
  t.add_row({"... up-to-date", util::grouped(ntp.ssh_secure),
             util::grouped(hit.ssh_secure)});
  t.add_row({"MQTT broker certs", util::grouped(ntp.mqtt_hosts),
             util::grouped(hit.mqtt_hosts)});
  t.add_row({"... with auth", util::grouped(ntp.mqtt_secure),
             util::grouped(hit.mqtt_secure)});
  t.add_row({"AMQP broker certs", util::grouped(ntp.amqp_hosts),
             util::grouped(hit.amqp_hosts)});
  t.add_row({"... with auth", util::grouped(ntp.amqp_secure),
             util::grouped(hit.amqp_secure)});
  t.add_rule();
  t.add_row({"total hosts",
             bench::vs_paper(util::grouped(ntp.total_hosts()), "73 975"),
             bench::vs_paper(util::grouped(hit.total_hosts()), "854 704")});
  t.add_row({"secure share",
             bench::vs_paper(util::percent(ntp.secure_share()), "28.4 %"),
             bench::vs_paper(util::percent(hit.secure_share()), "43.5 %")});
  bench::print_scale_note(t);
  t.render(std::cout);

  bool pass = hit.secure_share() > ntp.secure_share() &&
              hit.total_hosts() > ntp.total_hosts() &&
              ntp.total_hosts() > 100;
  std::cout << "\nShape check (hitlist-based scans overestimate security): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
