// Table 6 (Appendix C): device types counted by networks instead of unique
// keys — plain-HTTP devices (GPON, UFI, My Modem) become visible, and key
// reuse inflates counts, but the new-device-type finding persists.
#include <unordered_set>

#include "analysis/coap_analysis.hpp"
#include "analysis/title_grouping.hpp"
#include "common.hpp"

using namespace tts;

namespace {

/// Title observations counted once per (title-group precursor, /N net).
std::vector<analysis::TitleObservation> title_by_network(
    const scan::ResultStore& results, unsigned prefix_len) {
  std::vector<analysis::TitleObservation> out;
  for (auto dataset : {scan::Dataset::kNtp, scan::Dataset::kHitlist}) {
    std::unordered_set<std::uint64_t> seen;
    for (auto proto : {scan::Protocol::kHttp, scan::Protocol::kHttps}) {
      for (const auto* r : results.successes(dataset, proto)) {
        if (r->http_status != 200) continue;
        std::uint64_t unit =
            net::Ipv6PrefixHash{}(net::Ipv6Prefix(r->target, prefix_len)) ^
            (util::fnv1a(analysis::normalize_title(r->http_title)) << 1) ^
            (dataset == scan::Dataset::kNtp ? 0 : 1);
        if (!seen.insert(unit).second) continue;
        out.push_back({r->http_title, dataset, 1});
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  core::Study& study = bench::shared_study();

  util::TextTable t("Table 6: HTTP title groups by /64 network");
  t.set_header({"HTML title group", "NTP /64s", "Hitlist /64s"});
  auto groups = analysis::group_titles(title_by_network(study.results(), 64));
  std::size_t shown = 0;
  std::uint64_t plain_http_ntp = 0;
  for (const auto& g : groups) {
    if (shown++ >= 14) break;
    std::string label =
        g.representative.empty() ? "(no title present)" : g.representative;
    t.add_row({label, util::grouped(g.ntp), util::grouped(g.hitlist)});
  }
  for (const auto& g : groups) {
    // Plain-HTTP-only device types absent from the cert-keyed Table 3.
    if (g.representative.find("My Modem") != std::string::npos ||
        g.representative.find("UFI") != std::string::npos)
      plain_http_ntp += g.ntp;
  }
  t.add_note("Paper: FRITZ!Box 320 204 NTP /64s vs 25 718 hitlist;");
  t.add_note("GPON Home Gateway 0 NTP vs 31 006 hitlist.");
  bench::print_scale_note(t);
  t.render(std::cout);

  // CoAP by /48 networks.
  auto ntp48 =
      analysis::coap_group_counts(study.results(), scan::Dataset::kNtp, 48);
  auto hit48 = analysis::coap_group_counts(study.results(),
                                           scan::Dataset::kHitlist, 48);
  util::TextTable c("Table 6b: CoAP resource groups by /48");
  c.set_header({"resource group", "NTP /48s", "Hitlist /48s"});
  for (const std::string g :
       {"castdevice", "qlink", "efento", "nanoleaf", "empty", "other"})
    c.add_row({g, util::grouped(ntp48[g]), util::grouped(hit48[g])});
  c.render(std::cout);

  std::uint64_t gpon_ntp = 0, gpon_hit = 0;
  for (const auto& g : groups) {
    if (g.representative.find("GPON") != std::string::npos) {
      gpon_ntp += g.ntp;
      gpon_hit += g.hitlist;
    }
  }
  bool pass = plain_http_ntp > 0 && gpon_ntp == 0 && gpon_hit > 0 &&
              ntp48["castdevice"] > hit48["castdevice"];
  std::cout << "\nShape check (plain-HTTP types appear; GPON hitlist-only; "
               "castdevice NTP-only): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
