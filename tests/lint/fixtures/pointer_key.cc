// D3 fixture: raw pointer values as associative keys. Ordering and
// iteration then depend on allocation addresses, which vary run to run.
#include <map>
#include <set>
#include <string>
#include <unordered_map>

struct Node {
  int id = 0;
};

std::map<Node*, int> rank_by_addr;            // FINDING(pointer-key) FINDING(shared-state)
// (The two below skip shared-state: the conservative C3 check passes any
// statement mentioning `const`, even on a nested type.)
std::set<const Node*> visited;                // FINDING(pointer-key)
std::unordered_map<const Node*, int> degree;  // FINDING(pointer-key)

// Pointers as *values* are fine: nothing orders by them. (The globals
// themselves are still mutable namespace-scope state, hence C3.)
std::map<int, Node*> node_by_id;                      // FINDING(shared-state)
std::unordered_map<std::string, Node*> node_by_name;  // FINDING(shared-state)

// Non-pointer keys, including nested templates, are fine.
std::map<std::pair<int, int>, Node*> by_coord;     // FINDING(shared-state)
std::map<std::string, std::map<int, int>> nested;  // FINDING(shared-state)

// Comparisons are not template argument lists.
bool lt(int set_size, int map_size) {
  return set_size < map_size;
}
