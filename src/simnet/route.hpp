// Deterministic, scenario-scripted BGP-style reachability plane.
//
// A RouteScenario is a declarative script of announce/withdraw events over
// IPv6 prefixes (whole-AS /32s or any more-specific prefix) at sim times;
// each event takes effect one modeled `convergence` delay after its
// scripted origination, exactly as a real withdrawal/announcement needs to
// propagate before transit stops (or resumes) carrying packets. Network
// consults the installed RoutePlane *before* the FaultPlane on every UDP
// send and TCP connect — verdict precedence is route -> outage -> rules —
// and a destination whose longest-matching scripted prefix is withdrawn is
// blackholed: datagrams vanish, connects time out.
//
// Reachability is a pure function of (destination, now): all scripted
// events compile at construction into per-prefix sorted down-windows over
// a longest-prefix-match trie, so the data-path verdict takes no locks and
// draws no randomness, making it safe to evaluate from any shard executor
// and bit-identical at every shard count. A more-specific scripted prefix
// shadows a covering one (an announced /48 keeps its addresses reachable
// while the surrounding /32 is down) — standard LPM semantics.
//
// Control-plane *transitions* — the moments the adaptive stack reacts to —
// commit at window barriers: arm() schedules one domain-0 event per
// effective transition whose barrier commit bumps the route_* counters,
// records a typed FlightRecorder event, and invokes subscribers (scan
// engines re-staging quarantined targets, the pool monitor re-scoring
// servers). Barrier sequences are a pure function of simulation content,
// so sharded runs stay bit-identical at shard counts 1/2/4.
#pragma once

#include <bitset>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "net/ipv6.hpp"
#include "net/routing_table.hpp"
#include "obs/metrics.hpp"
#include "simnet/time.hpp"

namespace tts::obs {
class FlightRecorder;
}

namespace tts::simnet {

class EventQueue;

enum class RouteOp : std::uint8_t {
  kWithdraw,  ///< the prefix drops out of the global table
  kAnnounce,  ///< the prefix is (re-)announced and converges back
};

/// A withdraw that is never re-announced keeps its prefix down forever.
inline constexpr SimTime kRouteForever = std::numeric_limits<SimTime>::max();

/// One scripted routing event. `at` is the origination instant; the data
/// plane flips at `at + convergence` (the scenario-wide modeled BGP
/// propagation delay).
struct RouteEvent {
  net::Ipv6Prefix prefix;
  RouteOp op = RouteOp::kWithdraw;
  SimTime at = 0;
};

struct RouteScenario {
  std::vector<RouteEvent> events;
  /// Modeled convergence delay between an event's origination and the
  /// moment transit actually stops (or resumes) forwarding.
  SimDuration convergence = sec(30);

  void withdraw(const net::Ipv6Prefix& prefix, SimTime at) {
    events.push_back(RouteEvent{prefix, RouteOp::kWithdraw, at});
  }
  void announce(const net::Ipv6Prefix& prefix, SimTime at) {
    events.push_back(RouteEvent{prefix, RouteOp::kAnnounce, at});
  }
  bool empty() const { return events.empty(); }
};

class RoutePlane {
 public:
  /// Transition observer, invoked from the barrier commit of each
  /// effective transition. `effective` is the scripted flip instant (the
  /// commit itself runs at the following barrier), so staging decisions
  /// keyed on it are shard-count-invariant.
  using TransitionFn = std::function<void(
      const net::Ipv6Prefix& prefix, RouteOp op, SimTime effective)>;

  /// Instruments enroll into `registry` (may be null) under route_* names;
  /// the registry must outlive the plane. Redundant scripted events (a
  /// withdraw of an already-down prefix, an announce of a live one) are
  /// dropped here: only state-changing transitions are kept and counted.
  RoutePlane(RouteScenario scenario, obs::Registry* registry);
  ~RoutePlane();
  RoutePlane(const RoutePlane&) = delete;
  RoutePlane& operator=(const RoutePlane&) = delete;

  /// Pure reachability query: true when `dst`'s longest-matching scripted
  /// prefix is inside a down-window at `now`. Unscripted space is always
  /// routed. Lock-free and draw-free — callable from any shard executor.
  /// Inline fast path: scripted space is a sliver of the address space, so
  /// almost every query resolves "routed" on one prefilter bit test (the
  /// send/connect hot path pays no call and no LPM walk for it).
  bool withdrawn(const net::Ipv6Address& dst, SimTime now) const {
    if (!top16_[static_cast<std::size_t>(dst.hi64() >> 48)]) return false;
    return withdrawn_scripted(dst, now);
  }

  /// Data-path verdict: withdrawn(), plus one route_blackholed count when
  /// the packet dies. Call exactly once per datagram / connect attempt.
  bool blackholes(const net::Ipv6Address& dst, SimTime now) {
    if (!withdrawn(dst, now)) return false;
    blackholed_.inc();
    return true;
  }

  /// Schedule the barrier commits for every effective transition on
  /// `events` (domain 0, category "route"). Call once, at setup time;
  /// `events` must outlive the plane.
  void arm(EventQueue& events);

  /// Register a transition observer (setup-time only — before events run).
  void subscribe(TransitionFn fn) { subscribers_.push_back(std::move(fn)); }

  /// Report every committed transition to `recorder` as
  /// FlightKind::kRouteWithdrawn / kRouteAnnounced (a/b = prefix address
  /// halves); a withdrawal-burst trigger on the recorder then dumps
  /// context during route flaps. nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder);

  const RouteScenario& scenario() const { return scenario_; }
  /// Effective (state-changing) transitions compiled from the scenario.
  std::size_t transition_count() const { return transitions_.size(); }

  std::uint64_t withdrawals() const { return withdrawals_.value(); }
  std::uint64_t announcements() const { return announcements_.value(); }
  std::uint64_t blackholed() const { return blackholed_.value(); }

 private:
  /// Down while from <= now < until.
  struct DownWindow {
    SimTime from = 0;
    SimTime until = kRouteForever;
  };
  struct Route {
    net::Ipv6Prefix prefix;
    std::vector<DownWindow> down;  // sorted, non-overlapping
  };
  /// One effective transition, in (effective, route) order.
  struct Transition {
    SimTime effective = 0;
    std::uint32_t route = 0;  // index into routes_
    RouteOp op = RouteOp::kWithdraw;
  };

  /// Commit transition `index`: count it, record the flight event, invoke
  /// subscribers. Mutates cross-domain-read reaction state downstream, so
  /// it must run between windows.
  // ttslint: barrier_only
  void commit(std::size_t index);

  /// Slow half of withdrawn(): LPM walk + down-window probe, reached only
  /// when the prefilter says some scripted prefix may cover `dst`.
  bool withdrawn_scripted(const net::Ipv6Address& dst, SimTime now) const;

  RouteScenario scenario_;
  std::vector<Route> routes_;  // first-appearance order (deterministic)
  /// Coverage prefilter for the hot path: bit b set iff some scripted
  /// prefix covers addresses whose top 16 bits equal b. Scripted space is
  /// a sliver of the address space, so almost every verdict resolves to
  /// "routed" with one bit test instead of an LPM walk.
  std::bitset<1 << 16> top16_;
  /// Longest-prefix match over scripted prefixes; the stored "AS number"
  /// is the route's index into routes_.
  net::RoutingTable lpm_;
  std::vector<Transition> transitions_;
  std::vector<TransitionFn> subscribers_;
  obs::Registry* registry_;
  obs::FlightRecorder* flight_ = nullptr;
  std::uint32_t withdraw_note_ = 0;
  std::uint32_t announce_note_ = 0;
  bool armed_ = false;

  obs::Counter withdrawals_;    // transitions to down, at commit
  obs::Counter announcements_;  // transitions back to routed, at commit
  obs::Counter blackholed_;     // packets/connects killed on the data path
};

}  // namespace tts::simnet
