// C1 fixture: std:: thread primitives outside the dispatcher/instrument
// allowlist. The same file linted with --allow-thread=thread_confine.cc
// must come back clean (the allowlist test); pragma escapes for C-rules
// live in pragmas.cc so this file stays pragma-free for that test.
#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>

void spawn_worker() {
  std::thread t([] {});  // FINDING(thread-confine)
  t.join();
}

class Shared {
  std::mutex mu_;               // FINDING(thread-confine)
  std::condition_variable cv_;  // FINDING(thread-confine)
  std::atomic<int> hits_{0};    // FINDING(thread-confine)
};

int detached_result() {
  auto fut = std::async([] { return 1; });  // FINDING(thread-confine)
  return fut.get();
}

thread_local int tls_scratch = 0;  // FINDING(thread-confine) FINDING(shared-state)

// Identifiers merely containing the names are fine: members, non-std
// types, parameters.
struct mutex_stats {
  int thread_count = 0;
};
int thread_count(const mutex_stats& s) { return s.thread_count; }

// A non-std type named atomic is no thread primitive (C1), but a mutable
// namespace-scope instance of it is still shared state (C3).
namespace sim {
struct atomic {
  int value = 0;
};
}  // namespace sim
sim::atomic marker_value;  // FINDING(shared-state)
