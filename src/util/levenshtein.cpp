#include "util/levenshtein.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace tts::util {

std::size_t levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return b.size();

  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;

  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t cur = row[i];
      std::size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

std::size_t levenshtein_bounded(std::string_view a, std::string_view b,
                                std::size_t bound) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > bound) return bound + 1;
  if (a.empty()) return b.size();

  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  std::vector<std::size_t> row(a.size() + 1, kInf);
  for (std::size_t i = 0; i <= std::min(a.size(), bound); ++i) row[i] = i;

  for (std::size_t j = 1; j <= b.size(); ++j) {
    // Only cells with |i - j| <= bound can be <= bound.
    std::size_t lo = j > bound ? j - bound : 1;
    std::size_t hi = std::min(a.size(), j + bound);
    std::size_t prev_diag = row[lo - 1];
    if (lo == 1) {
      prev_diag = row[0];
      row[0] = (j <= bound) ? j : kInf;
    } else {
      row[lo - 1] = kInf;
    }
    std::size_t row_min = kInf;
    for (std::size_t i = lo; i <= hi; ++i) {
      std::size_t cur = row[i];
      std::size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      std::size_t ins = (i <= hi && row[i] != kInf) ? row[i] + 1 : kInf;
      std::size_t del = row[i - 1] != kInf ? row[i - 1] + 1 : kInf;
      row[i] = std::min({ins, del, sub});
      row_min = std::min(row_min, row[i]);
      prev_diag = cur;
    }
    if (hi < a.size()) row[hi + 1] = kInf;
    if (row_min > bound) return bound + 1;
  }
  return row[a.size()] > bound ? bound + 1 : row[a.size()];
}

double normalized_levenshtein(std::string_view a, std::string_view b) {
  std::size_t longer = std::max(a.size(), b.size());
  if (longer == 0) return 0.0;
  return static_cast<double>(levenshtein(a, b)) / static_cast<double>(longer);
}

bool within_normalized_distance(std::string_view a, std::string_view b,
                                double threshold) {
  std::size_t longer = std::max(a.size(), b.size());
  if (longer == 0) return true;
  auto bound =
      static_cast<std::size_t>(std::floor(threshold * static_cast<double>(longer)));
  return levenshtein_bounded(a, b, bound) <= bound;
}

}  // namespace tts::util
