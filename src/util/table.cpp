#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"

namespace tts::util {

namespace {
// Column width must count display characters, not bytes; our tables only
// ever contain ASCII plus the per-mille sign and box-drawing-free layout,
// so counting UTF-8 lead bytes is sufficient.
std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (unsigned char c : s)
    if ((c & 0xc0) != 0x80) ++w;
  return w;
}

std::string pad_display(const std::string& s, std::size_t width, Align a) {
  std::size_t w = display_width(s);
  if (w >= width) return s;
  std::string spaces(width - w, ' ');
  return a == Align::kLeft ? s + spaces : spaces + s;
}
}  // namespace

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header,
                           std::vector<Align> align) {
  header_ = std::move(header);
  if (align.empty()) {
    // Default: first column (labels) left, numeric columns right.
    align.assign(header_.size(), Align::kRight);
    if (!align.empty()) align[0] = Align::kLeft;
  }
  align.resize(header_.size(), Align::kRight);
  align_ = std::move(align);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

void TextTable::add_note(std::string note) {
  notes_.push_back(std::move(note));
}

void TextTable::render(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.cells.size());
  if (cols == 0) return;

  std::vector<std::size_t> widths(cols, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], display_width(cells[i]));
  };
  measure(header_);
  for (const auto& r : rows_)
    if (!r.rule) measure(r.cells);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 3 * (cols - 1);

  if (!title_.empty()) {
    os << title_ << '\n';
    os << std::string(std::max(total, display_width(title_)), '=') << '\n';
  }

  auto align_of = [&](std::size_t i) {
    if (i < align_.size()) return align_[i];
    return i == 0 ? Align::kLeft : Align::kRight;
  };

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string cell = i < cells.size() ? cells[i] : std::string{};
      os << pad_display(cell, widths[i], align_of(i));
      if (i + 1 < cols) os << " | ";
    }
    os << '\n';
  };

  if (!header_.empty()) {
    print_row(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) {
    if (r.rule)
      os << std::string(total, '-') << '\n';
    else
      print_row(r.cells);
  }
  for (const auto& note : notes_) os << "  " << note << '\n';
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace tts::util
