#include <gtest/gtest.h>

#include "ntp/pool.hpp"

namespace tts::ntp {
namespace {

net::Ipv6Address addr(std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x240000ff00000000ULL, lo);
}

TEST(Pool, ResolvesFromCountryZone) {
  NtpPool pool;
  pool.add_server({addr(1), "DE", 1000, 20, true, 0});
  pool.add_server({addr(2), "US", 1000, 20, false, 0});
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    auto picked = pool.resolve("DE", rng);
    ASSERT_TRUE(picked);
    EXPECT_EQ(*picked, addr(1));
  }
}

TEST(Pool, GlobalFallbackForEmptyZone) {
  NtpPool pool;
  pool.add_server({addr(1), "DE", 1000, 20, false, 0});
  util::Rng rng(2);
  auto picked = pool.resolve("JP", rng);  // no JP/asia zone -> global
  ASSERT_TRUE(picked);
  EXPECT_EQ(*picked, addr(1));
  EXPECT_FALSE(pool.zone_populated("JP"));
  EXPECT_TRUE(pool.zone_populated("DE"));
}

TEST(Pool, ContinentFallbackBeforeGlobal) {
  NtpPool pool;
  pool.add_server({addr(1), "DE", 1000, 20, false, 0});  // europe
  pool.add_server({addr(2), "JP", 1000, 20, false, 0});  // asia
  util::Rng rng(7);
  // India has no zone; Japan shares the asia continent zone.
  for (int i = 0; i < 50; ++i) {
    auto picked = pool.resolve("IN", rng);
    ASSERT_TRUE(picked);
    EXPECT_EQ(*picked, addr(2));
  }
  // France falls back to the European server.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(*pool.resolve("FR", rng), addr(1));
}

TEST(Pool, ContinentMapping) {
  EXPECT_EQ(continent_of("DE"), "europe");
  EXPECT_EQ(continent_of("IN"), "asia");
  EXPECT_EQ(continent_of("US"), "north-america");
  EXPECT_EQ(continent_of("BR"), "south-america");
  EXPECT_EQ(continent_of("ZA"), "africa");
  EXPECT_EQ(continent_of("AU"), "oceania");
  EXPECT_EQ(continent_of("??"), "global");
}

TEST(Pool, EmptyPoolResolvesToNothing) {
  NtpPool pool;
  util::Rng rng(3);
  EXPECT_FALSE(pool.resolve("DE", rng));
}

TEST(Pool, NetspeedWeightsSelection) {
  NtpPool pool;
  pool.add_server({addr(1), "DE", 3000, 20, true, 0});
  pool.add_server({addr(2), "DE", 1000, 20, false, 0});
  util::Rng rng(4);
  int ours = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    if (*pool.resolve("DE", rng) == addr(1)) ++ours;
  EXPECT_NEAR(ours / static_cast<double>(kTrials), 0.75, 0.02);
  EXPECT_NEAR(pool.our_zone_share("DE"), 0.75, 1e-9);
}

TEST(Pool, MonitorScoreGatesRotation) {
  NtpPool pool;
  pool.add_server({addr(1), "DE", 1000, 20, false, 0});
  pool.add_server({addr(2), "DE", 1000, 5, false, 0});  // below threshold
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(*pool.resolve("DE", rng), addr(1));

  pool.set_monitor_score(addr(2), 20);
  bool seen2 = false;
  for (int i = 0; i < 200; ++i)
    if (*pool.resolve("DE", rng) == addr(2)) seen2 = true;
  EXPECT_TRUE(seen2);
}

TEST(Pool, WithdrawRemovesFromRotation) {
  NtpPool pool;
  pool.add_server({addr(1), "DE", 1000, 20, false, 0});
  pool.withdraw(addr(1));
  util::Rng rng(6);
  EXPECT_FALSE(pool.resolve("DE", rng));
}

TEST(Pool, SetNetspeedChangesShare) {
  NtpPool pool;
  pool.add_server({addr(1), "DE", 100, 20, true, 0});
  pool.add_server({addr(2), "DE", 900, 20, false, 0});
  EXPECT_NEAR(pool.our_zone_share("DE"), 0.10, 1e-9);
  pool.set_netspeed(addr(1), 900);
  EXPECT_NEAR(pool.our_zone_share("DE"), 0.50, 1e-9);
}

TEST(Pool, OurServersSortedById) {
  NtpPool pool;
  pool.add_server({addr(3), "JP", 1, 20, true, 2});
  pool.add_server({addr(1), "DE", 1, 20, true, 0});
  pool.add_server({addr(9), "US", 1, 20, false, 0});
  pool.add_server({addr(2), "GB", 1, 20, true, 1});
  auto ours = pool.our_servers();
  ASSERT_EQ(ours.size(), 3u);
  EXPECT_EQ(ours[0].country, "DE");
  EXPECT_EQ(ours[1].country, "GB");
  EXPECT_EQ(ours[2].country, "JP");
}

TEST(Pool, DeploymentCountriesMatchPaper) {
  const auto& countries = deployment_countries();
  EXPECT_EQ(countries.size(), 11u);  // Section 3.1's 11 servers
  EXPECT_NE(std::find(countries.begin(), countries.end(), "IN"),
            countries.end());
  EXPECT_NE(std::find(countries.begin(), countries.end(), "NL"),
            countries.end());
}

}  // namespace
}  // namespace tts::ntp
