// Discrete-event engine: a time-ordered queue of callbacks.
//
// Determinism contract: events at equal timestamps fire in scheduling order
// (a monotonic sequence number breaks ties), so runs are reproducible
// regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "simnet/time.hpp"

namespace tts::simnet {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now if in the past).
  void schedule_at(SimTime at, Callback fn);
  /// Schedule `fn` after `delay`.
  void schedule_in(SimDuration delay, Callback fn);

  /// Run events until the queue drains or `until` is passed; the clock ends
  /// at the later of its current value and the last executed event (or
  /// `until` if given and reached). Returns the number of events executed.
  std::uint64_t run();
  std::uint64_t run_until(SimTime until);

  /// Execute at most one event; false when the queue is empty.
  bool step();

  std::size_t pending() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Total events executed over the queue's lifetime.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace tts::simnet
