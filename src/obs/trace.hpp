// Span tracing for pipeline stages, in both clocks at once: wall time
// (steady_clock, observational only — it never feeds back into the
// simulation) and virtual time (the simnet::EventQueue clock, so a span
// covering an async probe round-trip reports the simulated RTT).
//
// Completed spans land in a bounded ring buffer plus a per-name aggregate
// (count / total / max in each clock), so long runs keep the recent detail
// and never grow unbounded. Scoped spans handle synchronous stages; the
// open()/close() pair handles stages that finish in a later event-queue
// callback (probe launch -> completion).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simnet/event_queue.hpp"

namespace tts::obs {

struct SpanRecord {
  std::string name;
  simnet::SimTime sim_begin = 0;
  simnet::SimTime sim_end = 0;
  std::int64_t wall_ns = 0;
  std::uint32_t depth = 0;  // nesting level at open time (0 = top level)

  simnet::SimDuration sim_duration() const { return sim_end - sim_begin; }
};

struct SpanStats {
  std::uint64_t count = 0;
  simnet::SimDuration total_sim = 0;
  simnet::SimDuration max_sim = 0;
  std::int64_t total_wall_ns = 0;
  std::int64_t max_wall_ns = 0;
};

class Tracer {
 public:
  using SpanId = std::uint64_t;
  static constexpr SpanId kNoSpan = 0;

  explicit Tracer(std::size_t capacity = 4096);

  /// Virtual-time source; without one, spans record sim times of 0.
  void set_sim_clock(const simnet::EventQueue* events) { events_ = events; }

  /// A disabled tracer's open() is a no-op returning kNoSpan (no wall-clock
  /// reads on the hot path).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  SpanId open(std::string name);
  void close(SpanId id);

  /// RAII span for synchronous stages.
  class Scope {
   public:
    Scope(Tracer& tracer, std::string name)
        : tracer_(tracer), id_(tracer.open(std::move(name))) {}
    ~Scope() { tracer_.close(id_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer& tracer_;
    SpanId id_;
  };

  Scope span(std::string name) { return Scope(*this, std::move(name)); }

  /// The most recent completed spans in completion order (ring contents).
  std::vector<SpanRecord> records() const;
  /// Aggregates over *all* completed spans, keyed by span name (ordered so
  /// report output is stable).
  const std::map<std::string, SpanStats>& stats() const { return stats_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t open_spans() const { return open_count_; }

 private:
  // Open spans live in reusable slots (no per-span node allocation on the
  // hot path); a SpanId packs the slot index and a generation counter so a
  // stale close of a recycled slot is ignored.
  struct Active {
    std::string name;
    simnet::SimTime sim_begin = 0;
    std::int64_t wall_begin_ns = 0;
    std::uint32_t depth = 0;
    std::uint32_t gen = 0;
    bool in_use = false;
  };

  static std::int64_t wall_now_ns();
  simnet::SimTime sim_now() const { return events_ ? events_->now() : 0; }

  const simnet::EventQueue* events_ = nullptr;
  bool enabled_ = true;
  std::size_t capacity_;
  std::vector<SpanRecord> ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;  // records overwritten in the ring
  std::vector<Active> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t open_count_ = 0;
  std::map<std::string, SpanStats> stats_;
};

}  // namespace tts::obs
