// CoAP probe (UDP): confirmable GET /.well-known/core; the link-format
// payload yields the advertised resources grouped in Section 4.3.3.
#include "proto/coap.hpp"
#include "scan/probe_util.hpp"

namespace tts::scan {

namespace {

using detail::ProbeStatePtr;

class CoapScanner final : public ProtocolScanner {
 public:
  Protocol protocol() const override { return Protocol::kCoap; }

  void probe(simnet::Network& network, const simnet::Endpoint& src,
             ScanRecord base, DoneFn done) override {
    auto state = detail::make_probe_state(std::move(base), std::move(done));

    simnet::Endpoint dst{state->record.target, port_of(Protocol::kCoap)};
    auto message_id = static_cast<std::uint16_t>(next_message_id_++);
    std::uint64_t token = 0x9e3779b9u ^ (message_id * 2654435761u);
    auto request = proto::CoapMessage::well_known_core(message_id, token);

    // Bind the ephemeral UDP port for the reply. The unbind is the probe's
    // cleanup hook, so every completion path — reply, guard timeout — runs
    // it through ProbeState::finish exactly like the TCP scanners release
    // their sessions.
    state->cleanup = [&network, src] { network.unbind_udp(src); };
    network.bind_udp(src, [state, message_id](const simnet::Datagram& dg) {
      auto response = proto::CoapMessage::parse(dg.payload);
      if (!response || response->message_id != message_id) {
        state->finish(Outcome::kMalformed);
        return;
      }
      if (response->code != proto::kCoapContent) {
        state->finish(Outcome::kMalformed);
        return;
      }
      std::string payload(response->payload.begin(),
                          response->payload.end());
      state->record.coap_resources = proto::parse_link_format(payload);
      state->finish(Outcome::kSuccess);
    });
    network.send_udp(src, dst, request.serialize());

    // UDP silence (no listener, lost packet, filtered) = timeout.
    detail::arm_guard(network, state, probe_timeout_);
  }

 private:
  std::uint32_t next_message_id_ = 1;
};

}  // namespace

std::unique_ptr<ProtocolScanner> make_coap_scanner() {
  return std::make_unique<CoapScanner>();
}

}  // namespace tts::scan
