// Discrete-event engine: a time-ordered queue of callbacks.
//
// Determinism contract: events at equal timestamps fire in scheduling order
// (a monotonic sequence number breaks ties), so runs are reproducible
// regardless of heap internals.
//
// Sharded mode (configure_shards): the queue splits into per-domain heaps
// advanced in parallel between conservative time-window barriers. Each
// window executes every event with `at` strictly below a bound derived
// from the global minimum pending time plus the lookahead; cross-domain
// events travel through per-domain inboxes ingested at the barrier. The
// total order inside a domain is (at, sending domain, sender sequence) — a
// pure function of simulation content, never of thread interleaving — so
// the executed event sequence (and every digest downstream of it) is
// identical at any shard count. Events arriving below the committed
// barrier bound (a lookahead violation: only possible when a cross-domain
// delay undercuts the configured lookahead) are counted and clamped.
//
// Observability: the executed counter and pending-depth gauge are always
// live (they are the queue's own state); attach_metrics() additionally
// enrols them in an obs::Registry and can enable a wall-clock dispatch
// histogram (how long each callback runs) — wall readings are
// observational only and never influence the virtual clock. Sharded runs
// add window/violation counters and a per-shard barrier-stall histogram.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "simnet/shard.hpp"
#include "simnet/time.hpp"

namespace tts::obs {
class FlightRecorder;
}

namespace tts::simnet {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  /// Dispatch category for wall-time attribution (register_category).
  /// Category 0 is the pre-registered "other" bucket.
  using CategoryId = std::uint16_t;

  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Virtual time of the calling context: the executing domain's clock on
  /// a worker mid-window, the global clock otherwise.
  SimTime now() const;

  /// Split into `domain_count` deterministic domains run across
  /// `plan.shards` parallel heaps. Must be called before any event runs;
  /// `plan.shards` >= 1 and `plan.lookahead` >= 1 are required.
  void configure_shards(const ShardPlan& plan, DomainId domain_count);
  bool sharded() const { return shards_ > 0; }
  std::uint32_t shard_count() const { return shards_ ? shards_ : 1; }
  DomainId domain_count() const {
    return static_cast<DomainId>(domains_.size());
  }
  /// Domain of the calling context (0 outside event execution).
  DomainId current_domain() const;

  /// Schedule `fn` at absolute time `at` (clamped to now if in the past)
  /// on the calling context's domain.
  void schedule_at(SimTime at, Callback fn);
  /// Schedule `fn` after `delay`.
  void schedule_in(SimDuration delay, Callback fn);
  /// Category-attributed variants: the event's execution is counted (and,
  /// when dispatch timing is on, wall-timed) under `category`.
  void schedule_at(SimTime at, CategoryId category, Callback fn);
  void schedule_in(SimDuration delay, CategoryId category, Callback fn);
  /// Schedule on an explicit domain. Cross-domain events must respect the
  /// configured lookahead (at >= sender now + lookahead) or they surface
  /// as counted lookahead violations at the next barrier.
  void schedule_on(DomainId domain, SimTime at, CategoryId category,
                   Callback fn);

  /// Run `fn` at the next window barrier, when every domain is quiescent
  /// (deterministic commit point for cross-domain state). Commits run on
  /// the driving thread in (submitting domain, submission order). In
  /// legacy mode this runs `fn` immediately.
  void run_at_barrier(Callback fn);

  /// Run events until the queue drains or `until` is passed; the clock ends
  /// at the later of its current value and the last executed event (or
  /// `until` if given and reached). Returns the number of events executed.
  std::uint64_t run();
  std::uint64_t run_until(SimTime until);

  /// Execute at most one event; false when the queue is empty.
  /// Legacy mode only.
  bool step();

  std::size_t pending() const;
  bool empty() const { return pending() == 0; }

  /// Total events executed over the queue's lifetime.
  std::uint64_t executed() const { return executed_ctr_.value(); }

  /// Conservative windows run so far (0 in legacy mode).
  std::uint64_t shard_windows() const { return windows_ctr_.value(); }
  /// Cross-domain events that arrived below a committed barrier bound.
  /// Always 0 when every cross-domain delay honours the lookahead.
  std::uint64_t shard_violations() const { return violations_ctr_.value(); }
  SimDuration lookahead() const { return lookahead_; }

  /// Enrol the queue's instruments (events_executed, events_pending and —
  /// when `time_dispatch` — the dispatch_wall_ns histogram) in `registry`.
  /// The registry must outlive this queue.
  void attach_metrics(obs::Registry& registry, obs::Labels labels = {},
                      bool time_dispatch = true);

  void enable_dispatch_timing(bool on) { time_dispatch_ = on; }
  /// Time only every `every`-th event (rounded down to a power of two;
  /// default 1 = every event). Sampling keeps the two steady_clock reads
  /// off most dispatches — at study scale the full-timing cost dominates
  /// the whole observability overhead.
  void set_dispatch_sampling(std::uint32_t every);
  const obs::Histogram& dispatch_wall_ns() const { return dispatch_wall_; }
  /// Wall nanoseconds each shard spent waiting at window barriers for the
  /// slowest shard of its window (empty in legacy mode / timing off).
  const obs::Histogram& barrier_stall_ns() const { return barrier_stall_; }

  /// Register (or look up — idempotent by name) a dispatch category.
  /// Per-category executed counters are always live; per-category wall
  /// histograms fill on the same sampled timed dispatches as the aggregate
  /// simnet_dispatch_wall_ns. Register at setup time, schedule hot.
  CategoryId register_category(std::string_view name);
  const std::string& category_name(CategoryId id) const {
    return categories_[id].name;
  }
  std::size_t category_count() const { return categories_.size(); }
  /// Executed-event count attributed to `id` (deterministic).
  std::uint64_t category_executed(CategoryId id) const {
    return categories_[id].executed->value();
  }
  /// Wall histogram attributed to `id` (empty unless dispatch timing on).
  const obs::Histogram& category_wall_ns(CategoryId id) const {
    return *categories_[id].wall;
  }

  /// One timed dispatch that exceeded the flight-recorder threshold, kept
  /// in the top-K table.
  struct SlowDispatch {
    SimTime at = 0;
    std::int64_t wall_ns = 0;
    CategoryId category = 0;
  };
  /// Top-K slowest timed dispatches so far, slowest first.
  std::vector<SlowDispatch> slowest() const;

  /// Report timed dispatches over `threshold_ns` wall time to `recorder`
  /// (FlightKind::kSlowDispatch, detail = category name) and trigger a
  /// flight dump. nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder,
                           std::int64_t threshold_ns = 1'000'000);

 private:
  struct Entry {
    SimTime at;
    DomainId src;       // sending domain: second key of the total order
    std::uint64_t seq;  // sender-local sequence: third key
    CategoryId cat;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.src != b.src) return a.src > b.src;
      return a.seq > b.seq;
    }
  };

  // Counter/Histogram hold atomics (non-movable), so categories own them
  // through unique_ptr; the vector is append-only and ids stay stable.
  // Capacity is reserved up front so a (single-writer, domain-0) runtime
  // register_category never reallocates under concurrent element reads.
  struct Category {
    std::string name;
    std::unique_ptr<obs::Counter> executed;
    std::unique_ptr<obs::Histogram> wall;
    std::uint32_t flight_note = 0;  // interned category name, lazily set
  };

  /// One deterministic execution domain: its own heap, clock, sender
  /// sequence, and inbox for cross-domain arrivals. Deque-held (mutex is
  /// not movable).
  struct Domain {
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    SimTime now = 0;
    std::uint64_t next_seq = 0;
    mutable std::mutex inbox_mu;
    std::vector<Entry> inbox;
    std::vector<Callback> commits;
  };

  void enroll_category(Category& cat);
  void note_slow_dispatch(SimTime at, std::int64_t wall, CategoryId cat);
  void dispatch(Domain& dom, Entry e);

  SimTime global_min() const;
  void ingest_inboxes(SimTime committed_bound);
  void run_window(SimTime bound);
  void exec_shard(std::uint32_t shard, SimTime bound);
  void exec_domain(DomainId d, SimTime bound);
  void run_commits();
  std::uint64_t run_windows(bool bounded, SimTime until);
  void worker_loop();

  // domains_[0] is the sole queue in legacy mode.
  std::deque<Domain> domains_;
  SimTime now_ = 0;

  // -- sharded-mode state --
  std::uint32_t shards_ = 0;   // 0 = legacy
  std::uint32_t workers_n_ = 0;
  SimDuration lookahead_ = 0;
  SimTime committed_bound_ = 0;
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;
  SimTime window_bound_ = 0;
  std::atomic<std::uint32_t> next_shard_{0};
  std::uint32_t busy_executors_ = 0;  // guarded by pool_mu_
  std::vector<std::int64_t> shard_wall_;  // per-shard wall ns of the window

  obs::Counter executed_ctr_;
  obs::Gauge pending_gauge_;
  obs::Counter windows_ctr_;
  obs::Counter violations_ctr_;
  obs::Histogram dispatch_wall_{obs::Histogram::exponential(250, 4.0, 12)};
  obs::Histogram barrier_stall_{obs::Histogram::exponential(250, 4.0, 12)};
  bool time_dispatch_ = false;
  std::uint64_t dispatch_mask_ = 0;  // time when (executed & mask) == 0
  obs::Registry* registry_ = nullptr;
  obs::Labels labels_;
  std::vector<Category> categories_;
  std::mutex category_mu_;
  // Top-K slowest timed dispatches, kept as a min-heap on wall_ns so each
  // candidate costs one comparison against the current K-th place.
  static constexpr std::size_t kSlowTableSize = 16;
  std::vector<SlowDispatch> slow_;
  mutable std::mutex slow_mu_;
  obs::FlightRecorder* flight_ = nullptr;
  std::int64_t flight_threshold_ns_ = 1'000'000;
};

/// A re-schedulable one-shot timer slot: one logical deadline, at most one
/// *useful* heap entry, re-armable in both directions.
///
/// schedule_at() alone cannot model a deadline that moves: every re-arm
/// pushes a fresh entry and the superseded ones sit in the heap until their
/// (dead) time comes. A Timer keeps a single shared deadline instead:
/// re-arming earlier pushes one new entry and invalidates the old by
/// generation; re-arming *later* pushes nothing — the existing entry fires,
/// notices the deadline moved, and re-schedules itself. This is what lets
/// the scan pump coalesce its per-grant wake-ups into one slot per engine.
///
/// The callback only runs when the armed deadline is actually reached;
/// cancel() and destruction make any in-flight heap entries inert. The
/// EventQueue must outlive the Timer's pending entries (it owns them).
class Timer {
 public:
  Timer(EventQueue& queue, EventQueue::Callback fn,
        EventQueue::CategoryId category = 0);
  ~Timer();
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Move the deadline to `at` (clamped to now) and arm. Idempotent for an
  /// unchanged deadline.
  void arm(SimTime at);
  void cancel();

  bool armed() const { return state_->armed; }
  /// Deadline of the armed timer (meaningless when !armed()).
  SimTime deadline() const { return state_->target; }
  /// Heap entries pushed over the timer's lifetime — the cost a pump pays
  /// for its wake-ups; tests assert coalescing keeps it near the number of
  /// distinct deadlines actually reached.
  std::uint64_t entries_scheduled() const { return state_->entries; }

 private:
  struct State {
    EventQueue* queue;
    EventQueue::Callback fn;
    EventQueue::CategoryId category = 0;
    bool armed = false;
    SimTime target = 0;
    bool entry_live = false;  // a non-superseded heap entry exists
    SimTime entry_at = 0;
    std::uint64_t gen = 0;
    std::uint64_t entries = 0;
  };

  static void push_entry(const std::shared_ptr<State>& s);
  static void fire(const std::shared_ptr<State>& s, std::uint64_t gen);

  std::shared_ptr<State> state_;
};

}  // namespace tts::simnet
