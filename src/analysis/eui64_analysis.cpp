#include "analysis/eui64_analysis.hpp"

#include <algorithm>

#include "util/ordered.hpp"

namespace tts::analysis {

void Eui64Accumulator::attach(ntp::AddressCollector& collector) {
  // Batch subscription: one callback per ingest batch instead of one per
  // address; elements are processed in arrival order, so the tallies are
  // identical to the per-address path.
  collector.subscribe_batch([this](const ntp::CollectedBatch& batch) {
    for (const auto& addr : batch.addrs) add(addr, batch.server);
  });
}

void Eui64Accumulator::add(const net::Ipv6Address& addr,
                           ntp::ServerId server) {
  ++total_;
  auto embedding = db_->classify(addr);
  ++per_server_[server][static_cast<std::size_t>(embedding)];
  if (embedding == net::MacEmbedding::kNone) return;

  ++eui64_ips_;
  eui64_iids_.insert(addr.iid());
  auto mac = net::extract_mac(addr);
  if (!mac || mac->locally_administered()) return;

  ++unique_ips_;
  unique_macs_.insert(*mac);
  auto vendor = db_->lookup(*mac);
  if (!vendor) return;

  ++listed_ips_;
  listed_macs_.insert(*mac);
  auto& tally = vendors_[std::string(*vendor)];
  ++tally.ips;
  tally.macs.insert(*mac);
}

std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
Eui64Accumulator::vendor_ranking() const {
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
      out;
  out.reserve(vendors_.size());
  for (const auto* kv : util::sorted_ptrs(vendors_))
    out.emplace_back(kv->first,
                     std::make_pair(kv->second.macs.size(), kv->second.ips));
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second.first != b.second.first)
      return a.second.first > b.second.first;
    return a.first < b.first;
  });
  return out;
}

}  // namespace tts::analysis
