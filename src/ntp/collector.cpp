#include "ntp/collector.hpp"

#include "util/format.hpp"

namespace tts::ntp {

AddressCollector::AddressCollector(obs::Registry* registry)
    : registry_(registry) {
  if (!registry_) return;
  registry_->enroll(requests_, "ntp_requests", {}, this);
  registry_->enroll(distinct_, "ntp_distinct_addresses", {}, this);
  registry_->enroll(dedup_hits_, "ntp_dedup_hits", {}, this);
}

AddressCollector::~AddressCollector() {
  if (registry_) registry_->drop_owner(this);
}

bool AddressCollector::record(const net::Ipv6Address& addr, ServerId server,
                              simnet::SimTime at) {
  requests_.inc();
  auto [it, inserted] = addresses_.insert(addr);
  if (!inserted) {
    dedup_hits_.inc();
    return false;
  }
  distinct_.inc();
  order_.push_back(addr);
  auto [sit, fresh] = per_server_.try_emplace(server);
  if (fresh && registry_)
    registry_->enroll(sit->second, "ntp_server_distinct",
                      {{"server", util::cat(server)}}, this);
  sit->second.inc();
  ++daily_new_[at / simnet::days(1)];
  CollectedAddress rec{addr, server, at};
  for (const auto& fn : subscribers_) fn(rec);
  return true;
}

std::uint64_t AddressCollector::server_distinct(ServerId server) const {
  auto it = per_server_.find(server);
  return it == per_server_.end() ? 0 : it->second.value();
}

std::vector<net::Ipv6Address> AddressCollector::snapshot() const {
  return order_;
}

}  // namespace tts::ntp
