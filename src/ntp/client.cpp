#include "ntp/client.hpp"

#include <memory>

#include "ntp/ntp_server.hpp"

namespace tts::ntp {

simnet::SimDuration NtpQueryResult::offset() const {
  simnet::SimTime t1 = from_ntp_time(response.origin_time);
  simnet::SimTime t2 = from_ntp_time(response.receive_time);
  simnet::SimTime t3 = from_ntp_time(response.transmit_time);
  simnet::SimTime t4 = received_at;
  return ((t2 - t1) + (t3 - t4)) / 2;
}

simnet::SimDuration NtpQueryResult::delay() const {
  simnet::SimTime t1 = from_ntp_time(response.origin_time);
  simnet::SimTime t2 = from_ntp_time(response.receive_time);
  simnet::SimTime t3 = from_ntp_time(response.transmit_time);
  simnet::SimTime t4 = received_at;
  return (t4 - t1) - (t3 - t2);
}

namespace {

/// Shared between the reply handler and the timeout guard. Whichever fires
/// first flips `done`, releases the bindings and *moves the callback out*,
/// so a completed query holds nothing until the other closure fires — and
/// neither closure captures the NtpClient, so a client destroyed with a
/// query in flight leaves nothing dangling (the Network outlives both).
struct QueryState {
  bool done = false;
  NtpClient::ResultFn on_result;
};

NtpClient::ResultFn settle(simnet::Network& network,
                           const simnet::Endpoint& src_ep,
                           const std::shared_ptr<QueryState>& state) {
  state->done = true;
  network.unbind_udp(src_ep);
  network.detach(src_ep.addr);
  NtpClient::ResultFn fn = std::move(state->on_result);
  state->on_result = nullptr;
  return fn;
}

}  // namespace

void NtpClient::query(const net::Ipv6Address& src, std::uint16_t src_port,
                      const net::Ipv6Address& server, ResultFn on_result,
                      simnet::SimDuration timeout) {
  simnet::Endpoint src_ep{src, src_port};
  simnet::Endpoint dst_ep{server, kNtpPort};

  auto request = NtpPacket::client_request(network_.now());
  auto state = std::make_shared<QueryState>();
  state->on_result = std::move(on_result);
  auto sent_at = network_.now();
  simnet::Network& net = network_;

  network_.attach(src);
  network_.bind_udp(src_ep, [&net, src_ep, request, state,
                             sent_at](const simnet::Datagram& dg) {
    if (state->done) return;
    auto response = NtpPacket::parse(dg.payload);
    if (!response || !response->valid_response_to(request)) return;
    NtpQueryResult result{*response, sent_at, net.now()};
    settle(net, src_ep, state)(result);
  });
  ++sent_;
  network_.send_udp(src_ep, dst_ep, request.serialize());

  network_.events().schedule_in(timeout, category_, [&net, src_ep, state] {
    if (state->done) return;
    settle(net, src_ep, state)(std::nullopt);
  });
}

}  // namespace tts::ntp
