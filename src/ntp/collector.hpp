// Address collection: the modified pool servers report every client source
// address here. The collector deduplicates, attributes addresses to the
// collecting server (Table 7, Figure 4), keeps a per-day timeline, and
// feeds subscribers in real time — the scan engine subscribes so scans
// start while collection is still running, exactly as in Section 4.1.
//
// All counts live in obs instruments (requests, dedup hits, distinct
// total, per-server distinct); the accessors below read those same cells,
// and passing a Registry exports them without any parallel bookkeeping.
//
// The seen-store is a compact net::AddressStore (16 bytes per address
// steady state instead of an unordered_set node plus an order vector);
// its first-seen sequence numbers preserve snapshot() order, so
// the swap is invisible to every same-seed digest. Bulk feeds use
// record_batch(), which amortizes prefix lookups and fires batch
// subscribers once per batch (struct-of-arrays) alongside the per-address
// path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address_store.hpp"
#include "net/ipv6.hpp"
#include "obs/metrics.hpp"
#include "simnet/time.hpp"
#include "util/stats.hpp"

namespace tts::util {
class ByteWriter;
class ByteReader;
}  // namespace tts::util

namespace tts::ntp {

/// Identifies one of our pool servers; indexes into the deployment list.
using ServerId = std::uint32_t;

struct CollectedAddress {
  net::Ipv6Address addr;
  ServerId server = 0;
  simnet::SimTime first_seen = 0;
};

/// One ingest batch after dedup: the newly seen addresses in arrival
/// order, struct-of-arrays style (one server/timestamp for the batch
/// instead of per-element copies).
struct CollectedBatch {
  std::span<const net::Ipv6Address> addrs;
  ServerId server = 0;
  simnet::SimTime first_seen = 0;
};

/// Decoded collector section of a study snapshot (see core/snapshot.hpp):
/// everything needed to inspect a checkpointed collection offline.
struct CollectorState {
  net::AddressStore store;
  /// (server id, distinct count), ascending by id.
  std::vector<std::pair<ServerId, std::uint64_t>> per_server;
  std::map<std::int64_t, std::uint64_t> daily_new;
  std::uint64_t requests = 0;
  std::uint64_t dedup_hits = 0;
};

class AddressCollector {
 public:
  /// Subscribers run synchronously on first sight of a new address.
  using NewAddressFn = std::function<void(const CollectedAddress&)>;
  /// Batch subscribers run once per record/record_batch call that produced
  /// at least one new address, after the per-address subscribers.
  using NewBatchFn = std::function<void(const CollectedBatch&)>;

  /// With a registry, all collection instruments (including the lazily
  /// created per-server counters) are exported. The registry must outlive
  /// the collector.
  explicit AddressCollector(obs::Registry* registry = nullptr);
  ~AddressCollector();
  AddressCollector(const AddressCollector&) = delete;
  AddressCollector& operator=(const AddressCollector&) = delete;

  /// Record a sighting. Returns true if the address was new.
  bool record(const net::Ipv6Address& addr, ServerId server,
              simnet::SimTime at);
  /// Record a batch of sightings from one server at one instant —
  /// equivalent to record() in a loop (same counters, same subscriber
  /// order) but with amortized store lookups and one batch callback.
  /// Returns the number of addresses that were new.
  std::size_t record_batch(std::span<const net::Ipv6Address> addrs,
                           ServerId server, simnet::SimTime at);

  void subscribe(NewAddressFn fn) { subscribers_.push_back(std::move(fn)); }
  void subscribe_batch(NewBatchFn fn) {
    batch_subscribers_.push_back(std::move(fn));
  }

  std::uint64_t total_requests() const { return requests_.value(); }
  std::uint64_t distinct_addresses() const { return store_.size(); }
  /// Requests whose source address had been seen before (dedup rate =
  /// dedup_hits / total_requests).
  std::uint64_t dedup_hits() const { return dedup_hits_.value(); }
  std::uint64_t server_distinct(ServerId server) const;

  /// Distinct addresses first seen on each day (day = floor(t / 1 day)).
  /// Ordered by day: consumers iterate this straight into timelines.
  const std::map<std::int64_t, std::uint64_t>& daily_new() const {
    return daily_new_;
  }

  /// The deduplicating seen-store (membership tests, /64 structure,
  /// memory accounting).
  const net::AddressStore& addresses() const { return store_; }

  /// Snapshot of all collected addresses in first-seen order — a function
  /// of the event sequence only, never of hash layout.
  std::vector<net::Ipv6Address> snapshot() const { return store_.snapshot(); }

  /// Serialize the full collection state (store, per-server counts,
  /// daily timeline, request counters) into a snapshot section.
  void save_state(util::ByteWriter& w) const;
  /// Decode a section written by save_state().
  static CollectorState decode_state(util::ByteReader& r);

 private:
  net::AddressStore store_;
  // Node-based map keeps counter addresses stable across rehashes.
  std::unordered_map<ServerId, obs::Counter> per_server_;
  std::map<std::int64_t, std::uint64_t> daily_new_;
  std::vector<NewAddressFn> subscribers_;
  std::vector<NewBatchFn> batch_subscribers_;
  std::vector<net::Ipv6Address> fresh_scratch_;
  obs::Counter requests_;
  obs::Counter distinct_;
  obs::Counter dedup_hits_;
  obs::Registry* registry_ = nullptr;
};

}  // namespace tts::ntp
