// Table 3: device types the NTP sourcing finds that the hitlist misses —
// HTML title groups (by unique certificate), SSH OS distribution (by unique
// host key), CoAP resource groups (by address).
#include <unordered_set>

#include "analysis/coap_analysis.hpp"
#include "analysis/ssh_analysis.hpp"
#include "analysis/title_grouping.hpp"
#include "common.hpp"

using namespace tts;

namespace {

std::string share(std::uint64_t n, std::uint64_t total) {
  if (total == 0) return "0";
  return util::grouped(n) + " (" +
         util::percent(static_cast<double>(n) / static_cast<double>(total),
                       1) +
         ")";
}

}  // namespace

int main() {
  core::Study& study = bench::shared_study();
  const auto& results = study.results();

  // ---- HTTP title groups, one observation per unique certificate --------
  std::vector<analysis::TitleObservation> observations;
  std::uint64_t ntp_certs = 0, hit_certs = 0;
  for (auto dataset : {scan::Dataset::kNtp, scan::Dataset::kHitlist}) {
    std::unordered_set<std::uint64_t> seen;
    for (const auto* r :
         results.successes(dataset, scan::Protocol::kHttps)) {
      if (r->http_status != 200 || !r->certificate) continue;
      if (!seen.insert(r->certificate->fingerprint).second) continue;
      observations.push_back({r->http_title, dataset, 1});
      (dataset == scan::Dataset::kNtp ? ntp_certs : hit_certs) += 1;
    }
  }
  auto groups = analysis::group_titles(observations);

  util::TextTable http_table(
      "Table 3a: HTTP title groups by unique certificate");
  http_table.set_header({"HTML title group", "Our Data", "TUM IPv6 Hitlist"});
  std::size_t shown = 0;
  for (const auto& g : groups) {
    if (shown++ >= 12) break;
    std::string label = g.representative.empty() ? "(no title present)"
                                                 : g.representative;
    http_table.add_row(
        {label, share(g.ntp, ntp_certs), share(g.hitlist, hit_certs)});
  }
  http_table.add_note(
      "Paper: FRITZ!Box 257 195 (90.8 %) NTP vs 35 841 (3.96 %) hitlist;");
  http_table.add_note("D-LINK 0 NTP vs 46 548 hitlist.");
  http_table.render(std::cout);

  // ---- SSH OS distribution ----------------------------------------------
  auto ntp_hosts = analysis::dedup_ssh_hosts(results, scan::Dataset::kNtp);
  auto hit_hosts =
      analysis::dedup_ssh_hosts(results, scan::Dataset::kHitlist);
  auto ntp_os = analysis::os_distribution(ntp_hosts);
  auto hit_os = analysis::os_distribution(hit_hosts);

  util::TextTable ssh_table("Table 3b: SSH OS by unique host key");
  ssh_table.set_header({"OS", "Our Data", "TUM IPv6 Hitlist"});
  for (const std::string os : {"Ubuntu", "Debian", "Raspbian", "FreeBSD",
                               ""}) {
    ssh_table.add_row({os.empty() ? "other/unknown" : os,
                       share(ntp_os[os], ntp_hosts.size()),
                       share(hit_os[os], hit_hosts.size())});
  }
  ssh_table.add_note(
      "Paper: Raspbian 4 765 (6.4 %) NTP vs 658 (0.1 %) hitlist;");
  ssh_table.add_note("FreeBSD 140 (0.2 %) NTP vs 14 014 (1.6 %) hitlist.");
  ssh_table.render(std::cout);

  // ---- CoAP resource groups ----------------------------------------------
  auto ntp_coap = analysis::coap_group_counts(results, scan::Dataset::kNtp);
  auto hit_coap =
      analysis::coap_group_counts(results, scan::Dataset::kHitlist);
  std::uint64_t ntp_total = 0, hit_total = 0;
  for (const auto& [g, n] : ntp_coap) ntp_total += n;
  for (const auto& [g, n] : hit_coap) hit_total += n;

  util::TextTable coap_table("Table 3c: CoAP resource groups by address");
  coap_table.set_header({"resource group", "Our Data", "TUM IPv6 Hitlist"});
  for (const std::string g : {"castdevice", "qlink", "efento", "nanoleaf",
                              "empty", "other"}) {
    coap_table.add_row({g, share(ntp_coap[g], ntp_total),
                        share(hit_coap[g], hit_total)});
  }
  coap_table.add_note(
      "Paper: castdevice 2 967 (58.2 %) NTP vs 0 hitlist; qlink 2 088 vs "
      "1 352.");
  bench::print_scale_note(coap_table);
  coap_table.render(std::cout);

  // Shape checks from the paper's reading.
  std::uint64_t fritz_ntp = 0, fritz_hit = 0, dlink_ntp = 0, dlink_hit = 0;
  for (const auto& g : groups) {
    if (g.representative.find("FRITZ!Box") != std::string::npos) {
      fritz_ntp += g.ntp;
      fritz_hit += g.hitlist;
    }
    if (g.representative.find("D-LINK") != std::string::npos) {
      dlink_ntp += g.ntp;
      dlink_hit += g.hitlist;
    }
  }
  bool pass = fritz_ntp > 10 * std::max<std::uint64_t>(fritz_hit, 1) &&
              dlink_ntp == 0 && dlink_hit > 0 &&
              ntp_os["Raspbian"] > hit_os["Raspbian"] &&
              hit_os["FreeBSD"] > ntp_os["FreeBSD"] &&
              ntp_coap["castdevice"] > 0 && hit_coap["castdevice"] == 0;
  std::cout << "\nShape check (FRITZ!/D-LINK/Raspbian/FreeBSD/castdevice): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
