#include "simnet/event_queue.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "obs/flight.hpp"

namespace tts::simnet {

namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

/// Which queue+domain the calling thread is executing for. Set around
/// every domain's window slice; outside event execution it points nowhere
/// and every call resolves to domain 0.
struct TlsCtx {
  const void* queue = nullptr;
  DomainId domain = 0;
};
thread_local TlsCtx tls_ctx;

constexpr std::size_t kMaxCategories = 256;

}  // namespace

std::string format_duration(SimDuration d) {
  bool neg = d < 0;
  if (neg) d = -d;
  std::int64_t total_sec = d / 1000000;
  std::int64_t days = total_sec / 86400;
  int h = static_cast<int>(total_sec % 86400 / 3600);
  int m = static_cast<int>(total_sec % 3600 / 60);
  int s = static_cast<int>(total_sec % 60);
  char buf[64];
  if (days > 0)
    std::snprintf(buf, sizeof buf, "%s%lldd %02d:%02d:%02d", neg ? "-" : "",
                  static_cast<long long>(days), h, m, s);
  else
    std::snprintf(buf, sizeof buf, "%s%02d:%02d:%02d", neg ? "-" : "", h, m,
                  s);
  return buf;
}

EventQueue::EventQueue() {
  domains_.emplace_back();
  categories_.reserve(kMaxCategories);
  register_category("other");
}

EventQueue::~EventQueue() {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  if (registry_) registry_->drop_owner(this);
}

void EventQueue::configure_shards(const ShardPlan& plan,
                                  DomainId domain_count) {
  if (sharded())
    throw std::logic_error("EventQueue: already sharded");
  if (executed() > 0 || pending() > 0)
    throw std::logic_error("EventQueue: configure_shards before any events");
  if (plan.shards == 0)
    throw std::invalid_argument("EventQueue: shards must be >= 1");
  if (plan.lookahead <= 0)
    throw std::invalid_argument("EventQueue: lookahead must be positive");
  shards_ = plan.shards;
  lookahead_ = plan.lookahead;
  if (domain_count < 1) domain_count = 1;
  while (domains_.size() < domain_count) domains_.emplace_back();
  shard_wall_.assign(shards_, 0);
  std::uint32_t hw = std::thread::hardware_concurrency();
  std::uint32_t w = plan.workers
                        ? plan.workers
                        : std::min<std::uint32_t>(shards_, hw ? hw : 1);
  w = std::min(w, shards_);
  workers_n_ = w;
  // The driving thread is executor 0; spawn the rest. w <= 1 keeps the
  // whole run on the driver — byte-identical to any parallel schedule.
  for (std::uint32_t i = 1; i < w; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

DomainId EventQueue::current_domain() const {
  return tls_ctx.queue == this ? tls_ctx.domain : 0;
}

SimTime EventQueue::now() const {
  if (tls_ctx.queue == this) return domains_[tls_ctx.domain].now;
  if (!sharded()) return domains_[0].now;
  return now_;
}

void EventQueue::attach_metrics(obs::Registry& registry, obs::Labels labels,
                                bool time_dispatch) {
  registry_ = &registry;
  time_dispatch_ = time_dispatch;
  labels_ = labels;
  registry.enroll(executed_ctr_, "simnet_events_executed", labels, this);
  registry.enroll(pending_gauge_, "simnet_events_pending", labels, this);
  registry.enroll(windows_ctr_, "simnet_shard_windows", labels, this);
  registry.enroll(violations_ctr_, "simnet_shard_violations", labels, this);
  if (time_dispatch) {
    registry.enroll(dispatch_wall_, "simnet_dispatch_wall_ns", labels, this);
    registry.enroll(barrier_stall_, "simnet_barrier_stall_ns",
                    std::move(labels), this);
  }
  for (Category& cat : categories_) enroll_category(cat);
}

EventQueue::CategoryId EventQueue::register_category(std::string_view name) {
  std::lock_guard<std::mutex> lk(category_mu_);
  for (CategoryId id = 0; id < categories_.size(); ++id)
    if (categories_[id].name == name) return id;
  if (categories_.size() >= kMaxCategories)
    throw std::logic_error("EventQueue: category table full");
  Category cat;
  cat.name = name;
  cat.executed = std::make_unique<obs::Counter>();
  cat.wall = std::make_unique<obs::Histogram>(
      obs::Histogram::exponential(250, 4.0, 12));
  if (registry_) enroll_category(cat);
  if (flight_) cat.flight_note = flight_->note(cat.name);
  categories_.push_back(std::move(cat));
  return static_cast<CategoryId>(categories_.size() - 1);
}

void EventQueue::enroll_category(Category& cat) {
  // The per-category series carry a category= label; the unlabelled
  // aggregate instruments above stay as-is, so nothing double-enrols.
  obs::Labels labels = labels_;
  labels.emplace_back("category", cat.name);
  registry_->enroll(*cat.executed, "simnet_events_executed", labels, this);
  if (time_dispatch_)
    registry_->enroll(*cat.wall, "simnet_dispatch_wall_ns",
                      std::move(labels), this);
}

void EventQueue::set_flight_recorder(obs::FlightRecorder* recorder,
                                     std::int64_t threshold_ns) {
  flight_ = recorder;
  flight_threshold_ns_ = threshold_ns;
  if (!flight_) return;
  for (Category& cat : categories_)
    cat.flight_note = flight_->note(cat.name);
}

std::vector<EventQueue::SlowDispatch> EventQueue::slowest() const {
  std::vector<SlowDispatch> out;
  {
    std::lock_guard<std::mutex> lk(slow_mu_);
    out = slow_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowDispatch& a, const SlowDispatch& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              return a.at < b.at;
            });
  return out;
}

void EventQueue::note_slow_dispatch(SimTime at, std::int64_t wall,
                                    CategoryId cat) {
  // Keep the top-K table (min-heap on wall_ns: front() is the K-th place
  // to beat), independently of the flight-recorder threshold.
  auto lighter = [](const SlowDispatch& a, const SlowDispatch& b) {
    return a.wall_ns > b.wall_ns;
  };
  {
    std::lock_guard<std::mutex> lk(slow_mu_);
    if (slow_.size() < kSlowTableSize) {
      slow_.push_back(SlowDispatch{at, wall, cat});
      std::push_heap(slow_.begin(), slow_.end(), lighter);
    } else if (wall > slow_.front().wall_ns) {
      std::pop_heap(slow_.begin(), slow_.end(), lighter);
      slow_.back() = SlowDispatch{at, wall, cat};
      std::push_heap(slow_.begin(), slow_.end(), lighter);
    }
  }
  if (flight_ && wall >= flight_threshold_ns_) {
    flight_->record(obs::FlightKind::kSlowDispatch,
                    categories_[cat].flight_note,
                    /*trace=*/0, /*a=*/wall,
                    /*b=*/static_cast<std::int64_t>(cat), /*wall_ns=*/0);
    flight_->trigger("slow-dispatch");
  }
}

void EventQueue::schedule_at(SimTime at, Callback fn) {
  schedule_at(at, /*category=*/0, std::move(fn));
}

void EventQueue::schedule_at(SimTime at, CategoryId category, Callback fn) {
  schedule_on(current_domain(), at, category, std::move(fn));
}

void EventQueue::schedule_in(SimDuration delay, Callback fn) {
  schedule_in(delay, /*category=*/0, std::move(fn));
}

void EventQueue::schedule_in(SimDuration delay, CategoryId category,
                             Callback fn) {
  DomainId d = current_domain();
  SimTime base = domains_[d].now;
  schedule_on(d, base + (delay < 0 ? 0 : delay), category, std::move(fn));
}

void EventQueue::schedule_on(DomainId domain, SimTime at, CategoryId category,
                             Callback fn) {
  DomainId src = current_domain();
  Domain& sender = domains_[src];
  std::uint64_t seq = sender.next_seq++;
  if (domain == src) {
    if (at < sender.now) at = sender.now;
    sender.heap.push(Entry{at, src, seq, category, std::move(fn)});
    if (!sharded())
      pending_gauge_.set(static_cast<std::int64_t>(sender.heap.size()));
    return;
  }
  // Cross-domain: into the target's inbox, merged at the next barrier.
  // The (at, src, seq) key is allocated on the sender, so the merged order
  // is a function of content, not of inbox arrival interleaving.
  Domain& target = domains_[domain];
  std::lock_guard<std::mutex> lk(target.inbox_mu);
  target.inbox.push_back(Entry{at, src, seq, category, std::move(fn)});
}

void EventQueue::run_at_barrier(Callback fn) {
  if (!sharded() || tls_ctx.queue != this) {
    fn();
    return;
  }
  domains_[current_domain()].commits.push_back(std::move(fn));
}

void EventQueue::dispatch(Domain& dom, Entry e) {
  executed_ctr_.inc();
  categories_[e.cat].executed->inc();
  if (time_dispatch_ && (executed_ctr_.value() & dispatch_mask_) == 0) {
    std::int64_t t0 = wall_ns();
    e.fn();
    std::int64_t wall = wall_ns() - t0;
    dispatch_wall_.record(wall);
    categories_[e.cat].wall->record(wall);
    note_slow_dispatch(dom.now, wall, e.cat);
  } else {
    e.fn();
  }
}

bool EventQueue::step() {
  if (sharded()) return false;  // sharded runs advance window-wise only
  Domain& dom = domains_[0];
  if (dom.heap.empty()) return false;
  // priority_queue::top() is const; the callback must be moved out, so pop
  // via const_cast-free copy of the small fields and move of the function.
  Entry e = std::move(const_cast<Entry&>(dom.heap.top()));
  dom.heap.pop();
  pending_gauge_.set(static_cast<std::int64_t>(dom.heap.size()));
  dom.now = e.at;
  dispatch(dom, std::move(e));
  return true;
}

void EventQueue::set_dispatch_sampling(std::uint32_t every) {
  std::uint64_t mask = 0;
  while (((mask + 1) << 1) <= every) mask = (mask << 1) | 1;
  dispatch_mask_ = mask;
}

std::size_t EventQueue::pending() const {
  if (!sharded()) return domains_[0].heap.size();
  std::size_t n = 0;
  for (const Domain& dom : domains_) {
    n += dom.heap.size();
    std::lock_guard<std::mutex> lk(dom.inbox_mu);
    n += dom.inbox.size();
  }
  return n;
}

SimTime EventQueue::global_min() const {
  SimTime tmin = kNoEvent;
  for (const Domain& dom : domains_)
    if (!dom.heap.empty() && dom.heap.top().at < tmin)
      tmin = dom.heap.top().at;
  return tmin;
}

void EventQueue::ingest_inboxes(SimTime committed_bound) {
  std::vector<Entry> batch;
  for (Domain& dom : domains_) {
    {
      std::lock_guard<std::mutex> lk(dom.inbox_mu);
      batch.swap(dom.inbox);
    }
    for (Entry& e : batch) {
      if (e.at < committed_bound) {
        // Lookahead violation: the sender undercut the configured
        // lookahead and this event's time is already inside a committed
        // window. Count it and clamp — determinism over strict causality.
        violations_ctr_.inc();
        e.at = committed_bound;
      }
      dom.heap.push(std::move(e));
    }
    batch.clear();
  }
}

void EventQueue::exec_domain(DomainId d, SimTime bound) {
  Domain& dom = domains_[d];
  if (dom.heap.empty() || dom.heap.top().at >= bound) return;
  TlsCtx saved = tls_ctx;
  tls_ctx = TlsCtx{this, d};
  while (!dom.heap.empty() && dom.heap.top().at < bound) {
    Entry e = std::move(const_cast<Entry&>(dom.heap.top()));
    dom.heap.pop();
    dom.now = e.at;
    dispatch(dom, std::move(e));
  }
  tls_ctx = saved;
}

void EventQueue::exec_shard(std::uint32_t shard, SimTime bound) {
  std::int64_t t0 = time_dispatch_ ? wall_ns() : 0;
  for (DomainId d = shard; d < domains_.size(); d += shards_)
    exec_domain(d, bound);
  if (time_dispatch_) shard_wall_[shard] = wall_ns() - t0;
}

void EventQueue::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    SimTime bound;
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      bound = window_bound_;
    }
    for (;;) {
      std::uint32_t s = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards_) break;
      exec_shard(s, bound);
    }
    bool last;
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      last = --busy_executors_ == 0;
    }
    if (last) done_cv_.notify_all();
  }
}

void EventQueue::run_window(SimTime bound) {
  if (workers_.empty()) {
    for (std::uint32_t s = 0; s < shards_; ++s) exec_shard(s, bound);
  } else {
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      window_bound_ = bound;
      next_shard_.store(0, std::memory_order_relaxed);
      busy_executors_ = static_cast<std::uint32_t>(workers_.size());
      ++epoch_;
    }
    pool_cv_.notify_all();
    // The driver is an executor too.
    for (;;) {
      std::uint32_t s = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards_) break;
      exec_shard(s, bound);
    }
    std::unique_lock<std::mutex> lk(pool_mu_);
    done_cv_.wait(lk, [&] { return busy_executors_ == 0; });
  }
  if (time_dispatch_) {
    std::int64_t slowest = 0;
    for (std::uint32_t s = 0; s < shards_; ++s)
      slowest = std::max(slowest, shard_wall_[s]);
    for (std::uint32_t s = 0; s < shards_; ++s)
      barrier_stall_.record(slowest - shard_wall_[s]);
  }
}

void EventQueue::run_commits() {
  // Driver-thread, domains quiescent: the deterministic commit point.
  for (Domain& dom : domains_) {
    if (dom.commits.empty()) continue;
    std::vector<Callback> commits;
    commits.swap(dom.commits);
    for (Callback& fn : commits) fn();
  }
}

std::uint64_t EventQueue::run_windows(bool bounded, SimTime until) {
  std::uint64_t before = executed_ctr_.value();
  ingest_inboxes(committed_bound_);
  for (;;) {
    SimTime tmin = global_min();
    if (tmin == kNoEvent) break;
    if (bounded && tmin > until) break;
    // The conservative window bound: the first lookahead-grid point past
    // the earliest pending event. bound <= tmin + lookahead, so any
    // cross-domain send from t >= tmin with delay >= lookahead lands at or
    // past the bound — never inside a window a peer already executed.
    SimTime bound = (tmin / lookahead_ + 1) * lookahead_;
    if (bounded) bound = std::min(bound, until + 1);
    run_window(bound);
    windows_ctr_.inc();
    committed_bound_ = bound;
    now_ = bound - 1;
    ingest_inboxes(bound);
    run_commits();
  }
  pending_gauge_.set(static_cast<std::int64_t>(pending()));
  return executed_ctr_.value() - before;
}

std::uint64_t EventQueue::run() {
  if (!sharded()) {
    std::uint64_t n = 0;
    while (step()) ++n;
    return n;
  }
  std::uint64_t n = run_windows(/*bounded=*/false, 0);
  SimTime end = now_;
  for (Domain& dom : domains_) end = std::max(end, dom.now);
  now_ = end;
  return n;
}

std::uint64_t EventQueue::run_until(SimTime until) {
  if (!sharded()) {
    Domain& dom = domains_[0];
    std::uint64_t n = 0;
    while (!dom.heap.empty() && dom.heap.top().at <= until) {
      step();
      ++n;
    }
    if (dom.now < until) dom.now = until;
    return n;
  }
  std::uint64_t n = run_windows(/*bounded=*/true, until);
  for (Domain& dom : domains_) dom.now = std::max(dom.now, until);
  now_ = std::max(now_, until);
  return n;
}

// ------------------------------------------------------------------ Timer

Timer::Timer(EventQueue& queue, EventQueue::Callback fn,
             EventQueue::CategoryId category)
    : state_(std::make_shared<State>()) {
  state_->queue = &queue;
  state_->fn = std::move(fn);
  state_->category = category;
}

Timer::~Timer() {
  // Pending heap entries share the state; disarming makes them inert and
  // dropping the callback releases whatever it captured.
  state_->armed = false;
  state_->fn = nullptr;
}

void Timer::arm(SimTime at) {
  State& s = *state_;
  if (at < s.queue->now()) at = s.queue->now();
  s.armed = true;
  s.target = at;
  // An entry at or before the new deadline reaches it for free: when it
  // fires early it re-schedules itself to the (moved) target. Only an
  // earlier deadline needs a fresh entry.
  if (s.entry_live && s.entry_at <= at) return;
  push_entry(state_);
}

void Timer::cancel() { state_->armed = false; }

void Timer::push_entry(const std::shared_ptr<State>& s) {
  s->entry_at = s->target;
  s->entry_live = true;
  ++s->entries;
  std::uint64_t gen = ++s->gen;
  s->queue->schedule_at(s->target, s->category,
                        [s, gen] { fire(s, gen); });
}

void Timer::fire(const std::shared_ptr<State>& s, std::uint64_t gen) {
  if (gen != s->gen) return;  // superseded by a later (earlier-armed) entry
  s->entry_live = false;
  if (!s->armed) return;
  if (s->target > s->queue->now()) {
    // Deadline moved later since this entry was pushed; chase it.
    push_entry(s);
    return;
  }
  s->armed = false;
  // Copy: the callback may destroy the Timer (clearing s->fn) mid-call.
  EventQueue::Callback fn = s->fn;
  fn();
}

}  // namespace tts::simnet
