// End-to-end pipeline invariants at tiny scale: the study must reproduce
// the paper's qualitative findings even in miniature.
#include <gtest/gtest.h>

#include "analysis/coap_analysis.hpp"
#include "analysis/iid_classes.hpp"
#include "analysis/network_agg.hpp"
#include "analysis/security_score.hpp"
#include "analysis/ssh_analysis.hpp"
#include "analysis/title_grouping.hpp"
#include "core/study.hpp"

namespace tts::core {
namespace {

// One shared study run for all assertions (run() takes a second or two).
class StudyTest : public ::testing::Test {
 protected:
  static Study& study() {
    static Study* instance = [] {
      auto* s = new Study(make_study_config(StudyScale::kTiny));
      s->run();
      return s;
    }();
    return *instance;
  }
};

TEST_F(StudyTest, CollectsAddresses) {
  EXPECT_GT(study().collector().distinct_addresses(), 1000u);
  EXPECT_GT(study().collector().total_requests(),
            study().collector().distinct_addresses());
}

TEST_F(StudyTest, AllServersCollect) {
  auto per_server = study().per_server_counts();
  ASSERT_EQ(per_server.size(), 11u);
  for (const auto& [country, count] : per_server)
    EXPECT_GT(count, 0u) << country;
  // India dominates the per-server ranking (Table 7).
  std::uint64_t india = 0, max_other = 0;
  for (const auto& [country, count] : per_server) {
    if (country == "IN")
      india = count;
    else
      max_other = std::max(max_other, count);
  }
  EXPECT_GT(india, max_other);
}

TEST_F(StudyTest, NtpDataIsEyeballHeavy) {
  auto addrs = study().ntp_addresses();
  double eyeball =
      analysis::cable_dsl_isp_share(addrs, study().registry());
  auto hitlist_share = analysis::cable_dsl_isp_share(
      study().hitlist().public_list, study().registry());
  EXPECT_GT(eyeball, hitlist_share);  // Figure 1's AS panel
}

TEST_F(StudyTest, HitlistIsMoreStructured) {
  auto ntp_dist = analysis::classify_addresses(study().ntp_addresses());
  auto hit_dist =
      analysis::classify_addresses(study().hitlist().public_list);
  auto structured = [](const analysis::IidDistribution& d) {
    return d.fraction(analysis::IidClass::kZero) +
           d.fraction(analysis::IidClass::kLastByte) +
           d.fraction(analysis::IidClass::kLastTwoBytes);
  };
  EXPECT_GT(structured(hit_dist), structured(ntp_dist));
}

TEST_F(StudyTest, NtpScanFindsFritzButHitlistFindsDlink) {
  std::vector<analysis::TitleObservation> obs;
  for (auto dataset : {scan::Dataset::kNtp, scan::Dataset::kHitlist}) {
    for (auto proto : {scan::Protocol::kHttp, scan::Protocol::kHttps}) {
      for (const auto* r : study().results().successes(dataset, proto)) {
        if (r->http_status != 200 || !r->http_has_title) continue;
        obs.push_back({r->http_title, dataset, 1});
      }
    }
  }
  auto groups = analysis::group_titles(obs);
  std::uint64_t fritz_ntp = 0, fritz_hit = 0, dlink_ntp = 0, dlink_hit = 0;
  for (const auto& g : groups) {
    if (g.representative.find("FRITZ!Box") != std::string::npos) {
      fritz_ntp += g.ntp;
      fritz_hit += g.hitlist;
    }
    if (g.representative.find("D-LINK") != std::string::npos) {
      dlink_ntp += g.ntp;
      dlink_hit += g.hitlist;
    }
  }
  EXPECT_GT(fritz_ntp, fritz_hit);  // NTP unveils the FRITZ! fleet
  EXPECT_EQ(dlink_ntp, 0u);         // D-LINK never polls the pool
  EXPECT_GT(dlink_hit, 0u);         // ...but is rDNS-discoverable
}

TEST_F(StudyTest, CoapFavorsNtpSourcing) {
  auto ntp = analysis::coap_group_counts(study().results(),
                                         scan::Dataset::kNtp);
  auto hit = analysis::coap_group_counts(study().results(),
                                         scan::Dataset::kHitlist);
  std::uint64_t ntp_total = 0, hit_total = 0;
  for (const auto& [g, n] : ntp) ntp_total += n;
  for (const auto& [g, n] : hit) hit_total += n;
  EXPECT_GT(ntp_total, hit_total);  // Table 2's CoAP row flips the trend
  EXPECT_GT(ntp["castdevice"], 0u);
  EXPECT_EQ(hit["castdevice"], 0u);  // never in the hitlist (Table 3)
}

TEST_F(StudyTest, NtpSourcedHostsLessSecure) {
  auto ntp_score =
      analysis::security_score(study().results(), scan::Dataset::kNtp);
  auto hit_score =
      analysis::security_score(study().results(), scan::Dataset::kHitlist);
  ASSERT_GT(ntp_score.total_hosts(), 20u);
  ASSERT_GT(hit_score.total_hosts(), 20u);
  // The headline: hitlist-based scans overestimate security.
  EXPECT_GT(hit_score.secure_share(), ntp_score.secure_share());
}

TEST_F(StudyTest, RaspbianRidesNtpFreebsdRidesHitlist) {
  auto ntp_os = analysis::os_distribution(
      analysis::dedup_ssh_hosts(study().results(), scan::Dataset::kNtp));
  auto hit_os = analysis::os_distribution(
      analysis::dedup_ssh_hosts(study().results(), scan::Dataset::kHitlist));
  EXPECT_GT(ntp_os["Raspbian"], hit_os["Raspbian"]);
  EXPECT_GT(hit_os["FreeBSD"], ntp_os["FreeBSD"]);
}

TEST_F(StudyTest, HitRateIsLow) {
  double rate = study().ntp_hit_rate();
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 0.1);  // well under 10% — end-user space is dark
}

TEST_F(StudyTest, TelescopeSeesOurScansAndBothActors) {
  auto report = study().telescope_report();
  EXPECT_GT(report.total_captures, 0u);
  // All captured scan packets matched an NTP query (Section 5.2).
  EXPECT_EQ(report.matched_captures, report.total_captures);

  int research = 0, covert = 0;
  for (const auto& actor : report.actors) {
    if (actor.classification == telescope::ActorClass::kResearch) ++research;
    if (actor.classification == telescope::ActorClass::kCovert) ++covert;
  }
  // Our own scanner + the research actor are overt; the cloud actor hides.
  EXPECT_GE(research, 1);
  EXPECT_GE(covert, 1);
}

TEST_F(StudyTest, ScanStagingStaysBoundedAndSweepDrains) {
  const Study& s = study();
  // The pull-based pump keeps every engine's staging at O(max_pending)
  // even though the hitlist sweep covers thousands of targets (the eager
  // design peaked at one queue entry per probe of the whole sweep).
  ASSERT_NE(s.hitlist_engine(), nullptr);
  EXPECT_LE(s.hitlist_engine()->pending_peak(), s.config().scan_max_pending);
  ASSERT_NE(s.ntp_engine(), nullptr);
  EXPECT_LE(s.ntp_engine()->pending_peak(), s.config().scan_max_pending);
  // The chunked feeder handed over the full hitlist before the run ended.
  ASSERT_NE(s.hitlist_sweeper(), nullptr);
  EXPECT_TRUE(s.hitlist_sweeper()->drained());
  EXPECT_EQ(s.hitlist_sweeper()->fed(), s.hitlist_sweeper()->total());
  EXPECT_GT(s.hitlist_sweeper()->total(), 1000u);
}

TEST_F(StudyTest, HitlistOverlapIsPartial) {
  auto ntp = study().ntp_addresses();
  const auto& hitlist = study().hitlist().full;
  auto ntp48 = analysis::prefixes_of(ntp, 48);
  auto hit48 = analysis::prefixes_of(hitlist, 48);
  std::uint64_t shared = analysis::overlap(ntp48, hit48);
  EXPECT_GT(shared, 0u);               // some /48s seen by both
  EXPECT_LT(shared, ntp48.size());     // but NTP contributes new networks
}

TEST(StudyDeterminism, SameSeedSameOutcome) {
  auto config = make_study_config(StudyScale::kTiny);
  config.population.device_scale = 0.05;
  config.runtime.duration = simnet::days(3);
  config.hitlist_scan_start = simnet::days(2);
  config.drain = simnet::days(1);

  auto fingerprint = [&](Study& s) {
    std::uint64_t f = s.collector().distinct_addresses();
    f = f * 1000003 + s.collector().total_requests();
    f = f * 1000003 + s.results().size();
    f = f * 1000003 + s.events_executed();
    f = f * 1000003 + s.hitlist().full.size();
    return f;
  };
  Study a(config), b(config);
  a.run();
  b.run();
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(StudyDeterminism, DifferentSeedDifferentOutcome) {
  auto config = make_study_config(StudyScale::kTiny);
  config.population.device_scale = 0.05;
  config.runtime.duration = simnet::days(3);
  config.hitlist_scan_start = simnet::days(2);
  config.drain = simnet::days(1);
  Study a(config);
  config.seed ^= 0xdeadbeef;
  Study b(config);
  a.run();
  b.run();
  EXPECT_NE(a.collector().total_requests(), b.collector().total_requests());
}

TEST(StudyConfigTest, ScalePresets) {
  auto tiny = make_study_config(StudyScale::kTiny);
  auto small = make_study_config(StudyScale::kSmall);
  auto medium = make_study_config(StudyScale::kMedium);
  EXPECT_LT(tiny.population.device_scale, small.population.device_scale);
  EXPECT_LT(small.population.device_scale, medium.population.device_scale);
  EXPECT_EQ(small.server_countries.size(), 11u);
  EXPECT_LT(tiny.runtime.duration, small.runtime.duration);
}

TEST(StudyConfigTest, RunTwiceThrows) {
  Study study(make_study_config(StudyScale::kTiny));
  // Do not actually run at full length; just verify the guard with a
  // zero-duration config.
  auto config = make_study_config(StudyScale::kTiny);
  config.runtime.duration = simnet::sec(1);
  config.drain = simnet::sec(1);
  config.enable_telescope = false;
  config.enable_actors = false;
  Study quick(config);
  quick.run();
  EXPECT_THROW(quick.run(), std::logic_error);
}

}  // namespace
}  // namespace tts::core
