// Versioned binary snapshots of Study data-plane state: checkpoint,
// resume, and bisect long virtual studies.
//
// A snapshot is a small set of named, length-prefixed sections — clock,
// collector, hitlist, results, rng — each serialized with util::ByteWriter
// in a layout that is a pure function of simulation state (maps are walked
// in key order, unordered containers are sorted before encoding). Equal
// state therefore means byte-equal sections, which is what makes
// checkpoints verifiable and divergence bisectable: compare section bytes
// and the first differing name tells you which subsystem drifted.
//
// Resume semantics: simulation state includes live event-queue closures
// that cannot be serialized, so restore works by deterministic replay. A
// resumed Study re-runs the same seed to the checkpoint time (cheap —
// virtual time, no network), then *proves* it reached the identical state
// by comparing every live section against the snapshot, byte for byte,
// before continuing. A mismatch throws SnapshotDivergence naming the
// diverged sections instead of silently producing a forked timeline. The
// decoded payload accessors make the same sections loadable standalone for
// offline analysis of a half-finished study.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hitlist/hitlist.hpp"
#include "ntp/collector.hpp"
#include "scan/results.hpp"
#include "simnet/time.hpp"

namespace tts::core {

inline constexpr std::uint32_t kSnapshotMagic = 0x54545353;  // "SSTT"
inline constexpr std::uint32_t kSnapshotVersion = 1;

struct SnapshotSection {
  std::string name;
  std::string bytes;
};

/// A resumed run reached a different state than the checkpointed one.
class SnapshotDivergence : public std::runtime_error {
 public:
  explicit SnapshotDivergence(const std::string& what)
      : std::runtime_error(what) {}
};

struct StudySnapshot {
  std::uint64_t seed = 0;
  simnet::SimTime at = 0;
  std::vector<SnapshotSection> sections;

  const SnapshotSection* section(std::string_view name) const;

  /// Full wire form: magic, version, seed, time, then the sections.
  std::string serialize() const;
  /// Parse a serialized snapshot. Throws util::SerializeError on bad
  /// magic, unsupported version, or truncation.
  static StudySnapshot parse(std::string_view bytes);

  // ---- decoded payloads (offline analysis; each throws
  //      util::SerializeError when the section is missing/corrupt) ----
  std::uint64_t events_executed() const;
  ntp::CollectorState collector() const;
  hitlist::Hitlist hitlist() const;
  scan::ResultStore results() const;
};

}  // namespace tts::core
