// Shard-scaling bench: the same seed, the same study, at shard counts
// 1/2/4 — events are bit-identical (the equivalence harness enforces it;
// this bench re-asserts the executed-event count), only the wall clock may
// move. Emits a schema-1 perf sample with events/sec-wall per shard count
// and the wall-rate speedups; the perf-smoke lane diffs it against
// bench/baselines/BENCH_shard_scaling.json.
//
// The 4-shard speedup is hard-gated at >= 1.5x only when the host actually
// has >= 4 hardware threads: on the 1-core CI container the parallel
// schedule degenerates to (at best) the serial one and the gate would
// measure the scheduler, not the sharding.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/study.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace tts;

namespace {

struct ShardSample {
  std::uint32_t shards = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
};

ShardSample run_at(std::uint32_t shards) {
  auto config = core::make_study_config(bench::bench_scale());
  config.shards.shards = shards;  // workers default to min(shards, hw)
  core::Study study(std::move(config));
  std::int64_t t0 = bench::bench_wall_ns();
  study.run();
  ShardSample s;
  s.shards = shards;
  s.events = study.events_executed();
  s.wall_seconds =
      static_cast<double>(bench::bench_wall_ns() - t0) / 1e9;
  if (s.wall_seconds > 0)
    s.events_per_sec = static_cast<double>(s.events) / s.wall_seconds;
  return s;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

void emit_sample(
    const std::vector<std::pair<std::string, std::string>>& metrics) {
  const char* path = std::getenv("TTS_BENCH_JSON");
  if (!path || !*path) return;
  std::ofstream out(path);
  out << "{\n  \"schema\": 1,\n  \"name\": \"shard_scaling\",\n"
      << "  \"scale\": \"" << bench::scale_label(bench::bench_scale())
      << "\",\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i)
    out << "    \"" << metrics[i].first << "\": " << metrics[i].second
        << (i + 1 < metrics.size() ? ",\n" : "\n");
  out << "  }\n}\n";
  std::cerr << "[bench] wrote perf sample " << path << " (shard_scaling)\n";
}

}  // namespace

int main() {
  // ttslint: allow(thread-confine) reason=reads host parallelism for the bench banner; creates no threads
  const unsigned hw = std::thread::hardware_concurrency();
  std::cerr << "[bench] shard scaling (scale="
            << bench::scale_label(bench::bench_scale()) << ", hw_threads="
            << hw << ")...\n";

  std::vector<ShardSample> samples;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    samples.push_back(run_at(shards));
    const ShardSample& s = samples.back();
    std::cerr << "[bench] shards=" << s.shards << ": " << s.events
              << " events in " << fmt(s.wall_seconds) << " s ("
              << fmt(s.events_per_sec) << " events/s)\n";
  }

  util::TextTable table("Shard scaling (same seed, bit-identical events)");
  table.set_header({"shards", "events", "wall s", "events/s", "speedup"});
  for (const ShardSample& s : samples)
    table.add_row({std::to_string(s.shards), std::to_string(s.events),
                   fmt(s.wall_seconds), fmt(s.events_per_sec),
                   fmt(s.events_per_sec / samples.front().events_per_sec)});
  table.add_note("shard count is a perf knob: executed events (and every");
  table.add_note("report/checkpoint byte) are identical at every count.");
  table.render(std::cout);

  int rc = 0;
  // The equivalence claim, re-checked where the perf numbers are made.
  for (const ShardSample& s : samples) {
    if (s.events != samples.front().events) {
      std::cerr << "[bench] FAIL: event count diverged at shards="
                << s.shards << " (" << s.events << " vs "
                << samples.front().events << ")\n";
      rc = 1;
    }
  }

  double speedup2 = samples[1].events_per_sec / samples[0].events_per_sec;
  double speedup4 = samples[2].events_per_sec / samples[0].events_per_sec;
  if (hw >= 4) {
    if (speedup4 < 1.5) {
      std::cerr << "[bench] FAIL: 4-shard speedup " << fmt(speedup4)
                << "x < 1.5x on a " << hw << "-thread host\n";
      rc = 1;
    }
  } else {
    std::cerr << "[bench] note: " << hw << " hardware thread(s) — the "
              << "1.5x 4-shard gate needs >= 4; reporting only\n";
  }

  emit_sample({
      {"events_executed", std::to_string(samples[0].events)},
      {"events_per_sec_wall_shards1", fmt(samples[0].events_per_sec)},
      {"events_per_sec_wall_shards2", fmt(samples[1].events_per_sec)},
      {"events_per_sec_wall_shards4", fmt(samples[2].events_per_sec)},
      {"events_per_sec_wall_speedup_2x", fmt(speedup2)},
      {"events_per_sec_wall_speedup_4x", fmt(speedup4)},
  });
  return rc;
}
