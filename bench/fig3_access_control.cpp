// Figure 3: MQTT and AMQP broker access control, NTP vs hitlist —
// NTP-sourced MQTT brokers are far more often wide open.
#include "analysis/broker_analysis.hpp"
#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();
  const auto& results = study.results();

  util::TextTable t("Figure 3: broker access control by address");
  t.set_header({"Broker", "Dataset", "brokers", "with auth", "share"});
  analysis::AccessControlStats mqtt_ntp, mqtt_hit, amqp_ntp, amqp_hit;
  auto row = [&](const char* broker, analysis::BrokerKind kind,
                 scan::Dataset dataset) {
    auto stats = analysis::access_control_by_address(results, dataset, kind);
    t.add_row({broker, std::string(to_string(dataset)),
               util::grouped(stats.total), util::grouped(stats.with_auth),
               util::percent(stats.auth_share())});
    return stats;
  };
  mqtt_ntp = row("MQTT", analysis::BrokerKind::kMqtt, scan::Dataset::kNtp);
  mqtt_hit =
      row("MQTT", analysis::BrokerKind::kMqtt, scan::Dataset::kHitlist);
  amqp_ntp = row("AMQP", analysis::BrokerKind::kAmqp, scan::Dataset::kNtp);
  amqp_hit =
      row("AMQP", analysis::BrokerKind::kAmqp, scan::Dataset::kHitlist);
  t.add_note("Paper: more than half of NTP-found MQTT brokers lack access "
             "control vs ~80 % enabled in the hitlist;");
  t.add_note("AMQP access control is widely deployed in both datasets.");
  t.render(std::cout);

  bool pass = mqtt_ntp.auth_share() < mqtt_hit.auth_share() &&
              mqtt_ntp.auth_share() < 0.6 && mqtt_hit.auth_share() > 0.6 &&
              amqp_ntp.auth_share() > 0.6 && amqp_hit.auth_share() > 0.6;
  std::cout << "\nShape check (MQTT gap, AMQP broadly secured): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
