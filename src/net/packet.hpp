// Bounds-checked, byte-order-explicit packet serialisation.
//
// All wire formats in this repo (NTP, MQTT, AMQP, CoAP, the SSH/TLS/HTTP
// framings) are big-endian on the wire; PacketWriter/PacketReader are the
// single place where host values meet network byte order.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tts::net {

/// Thrown by PacketReader on any out-of-bounds read. Protocol parsers catch
/// this at their boundary and report a malformed message instead of dying.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

class PacketWriter {
 public:
  PacketWriter() = default;
  explicit PacketWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void str(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Length-prefixed string with a 16-bit length (MQTT-style).
  void str16(std::string_view s) {
    if (s.size() > 0xffff) throw std::length_error("str16 overflow");
    u16(static_cast<std::uint16_t>(s.size()));
    str(s);
  }

  /// Overwrite a previously written byte (for post-hoc length patching).
  void patch_u8(std::size_t offset, std::uint8_t v) { buf_.at(offset) = v; }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class PacketReader {
 public:
  explicit PacketReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    auto b = bytes(1);
    return b[0];
  }
  std::uint16_t u16() {
    auto b = bytes(2);
    return static_cast<std::uint16_t>((static_cast<std::uint16_t>(b[0]) << 8) |
                                      b[1]);
  }
  std::uint32_t u32() {
    std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::string str(std::size_t n) {
    auto b = bytes(n);
    return std::string(b.begin(), b.end());
  }
  /// 16-bit length-prefixed string.
  std::string str16() { return str(u16()); }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

 private:
  void require(std::size_t n) const {
    if (data_.size() - pos_ < n)
      throw ParseError("short read: need " + std::to_string(n) + ", have " +
                       std::to_string(data_.size() - pos_));
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convert a string to a byte vector (payload helper).
inline std::vector<std::uint8_t> to_bytes(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

inline std::string to_string_payload(std::span<const std::uint8_t> b) {
  return std::string(b.begin(), b.end());
}

}  // namespace tts::net
