// Network-level aggregation (Tables 1 and 5): distinct /32../64 networks,
// ASes and countries behind an address set, overlaps between datasets, and
// the median-density metrics that distinguish client-side networks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "inet/as_registry.hpp"
#include "net/ipv6.hpp"

namespace tts::analysis {

using PrefixSet = std::unordered_set<net::Ipv6Prefix, net::Ipv6PrefixHash>;
using AsSet = std::unordered_set<net::AsNumber>;

struct NetworkAggregates {
  std::uint64_t addresses = 0;
  std::uint64_t nets32 = 0;
  std::uint64_t nets48 = 0;
  std::uint64_t nets56 = 0;
  std::uint64_t nets64 = 0;
  std::uint64_t ases = 0;
  std::uint64_t countries = 0;
};

NetworkAggregates aggregate(std::span<const net::Ipv6Address> addresses,
                            const inet::AsRegistry& registry);

PrefixSet prefixes_of(std::span<const net::Ipv6Address> addresses,
                      unsigned prefix_len);
AsSet ases_of(std::span<const net::Ipv6Address> addresses,
              const inet::AsRegistry& registry);

/// |a ∩ b| without materialising the intersection.
std::uint64_t overlap(const PrefixSet& a, const PrefixSet& b);
std::uint64_t overlap(const AsSet& a, const AsSet& b);
std::uint64_t address_overlap(std::span<const net::Ipv6Address> lhs,
                              std::span<const net::Ipv6Address> rhs);

/// Median number of addresses per enclosing /N network (Table 1 bottom).
double median_ips_per_net(std::span<const net::Ipv6Address> addresses,
                          unsigned prefix_len);
/// Median number of addresses per origin AS.
double median_ips_per_as(std::span<const net::Ipv6Address> addresses,
                         const inet::AsRegistry& registry);

}  // namespace tts::analysis
