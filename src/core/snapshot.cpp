#include "core/snapshot.hpp"

#include "util/serialize.hpp"

namespace tts::core {

const SnapshotSection* StudySnapshot::section(std::string_view name) const {
  for (const auto& s : sections)
    if (s.name == name) return &s;
  return nullptr;
}

std::string StudySnapshot::serialize() const {
  util::ByteWriter w;
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.u64(seed);
  w.i64(at);
  w.u32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& s : sections) {
    w.str(s.name);
    w.str(s.bytes);
  }
  return w.take();
}

StudySnapshot StudySnapshot::parse(std::string_view bytes) {
  util::ByteReader r(bytes);
  if (r.u32() != kSnapshotMagic)
    throw util::SerializeError("snapshot: bad magic (not a study snapshot)");
  std::uint32_t version = r.u32();
  if (version != kSnapshotVersion)
    throw util::SerializeError("snapshot: unsupported version " +
                               std::to_string(version) + " (this build reads " +
                               std::to_string(kSnapshotVersion) + ")");
  StudySnapshot snap;
  snap.seed = r.u64();
  snap.at = r.i64();
  std::uint32_t n = r.u32();
  snap.sections.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SnapshotSection s;
    s.name = r.str();
    s.bytes = r.str();
    snap.sections.push_back(std::move(s));
  }
  if (!r.done())
    throw util::SerializeError("snapshot: trailing bytes after sections");
  return snap;
}

namespace {
util::ByteReader reader_for(const StudySnapshot& snap,
                            std::string_view name) {
  const SnapshotSection* s = snap.section(name);
  if (!s)
    throw util::SerializeError("snapshot: missing section '" +
                               std::string(name) + "'");
  return util::ByteReader(s->bytes);
}
}  // namespace

std::uint64_t StudySnapshot::events_executed() const {
  util::ByteReader r = reader_for(*this, "clock");
  r.i64();  // sim time (also in the header)
  return r.u64();
}

ntp::CollectorState StudySnapshot::collector() const {
  util::ByteReader r = reader_for(*this, "collector");
  return ntp::AddressCollector::decode_state(r);
}

hitlist::Hitlist StudySnapshot::hitlist() const {
  util::ByteReader r = reader_for(*this, "hitlist");
  return hitlist::Hitlist::decode_state(r);
}

scan::ResultStore StudySnapshot::results() const {
  util::ByteReader r = reader_for(*this, "results");
  return scan::ResultStore::decode_state(r);
}

}  // namespace tts::core
