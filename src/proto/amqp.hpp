// AMQP 0-9-1 connection-opening subset: the protocol header handshake plus
// simplified Connection.Start / Start-Ok / Tune / Close frames — enough for
// an access-control probe (does the broker accept the default guest
// credentials, as an unsecured RabbitMQ does?).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tts::proto {

/// "AMQP" 0 0 9 1
std::vector<std::uint8_t> amqp_protocol_header();
bool is_amqp_protocol_header(std::span<const std::uint8_t> wire);

enum class AmqpMethod : std::uint16_t {
  kStart = 10,    // connection.start (server -> client)
  kStartOk = 11,  // connection.start-ok (credentials)
  kTune = 30,     // connection.tune (server accepted)
  kClose = 50,    // connection.close (e.g. 403 ACCESS_REFUSED)
};

struct AmqpFrame {
  AmqpMethod method = AmqpMethod::kStart;
  // kStart: server product string; kStartOk: "PLAIN u p"; kClose: reason.
  std::string text;
  std::uint16_t close_code = 0;  // kClose only (403 = access refused)

  std::vector<std::uint8_t> serialize() const;
  static std::optional<AmqpFrame> parse(std::span<const std::uint8_t> wire);
};

}  // namespace tts::proto
