#include <gtest/gtest.h>

#include <vector>

#include "net/routing_table.hpp"
#include "util/rng.hpp"

namespace tts::net {
namespace {

TEST(RoutingTable, EmptyTable) {
  RoutingTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.lookup(*Ipv6Address::parse("2001:db8::1")));
}

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable table;
  table.announce(*Ipv6Prefix::parse("2001:db8::/32"), 100);
  table.announce(*Ipv6Prefix::parse("2001:db8:1::/48"), 200);
  table.announce(*Ipv6Prefix::parse("2001:db8:1:2::/64"), 300);

  EXPECT_EQ(table.lookup(*Ipv6Address::parse("2001:db8:ffff::1")), 100u);
  EXPECT_EQ(table.lookup(*Ipv6Address::parse("2001:db8:1:ffff::1")), 200u);
  EXPECT_EQ(table.lookup(*Ipv6Address::parse("2001:db8:1:2::1")), 300u);
  EXPECT_FALSE(table.lookup(*Ipv6Address::parse("2001:db9::1")));
}

TEST(RoutingTable, DefaultRoute) {
  RoutingTable table;
  table.announce(*Ipv6Prefix::parse("::/0"), 1);
  table.announce(*Ipv6Prefix::parse("2400::/12"), 2);
  EXPECT_EQ(table.lookup(*Ipv6Address::parse("9999::1")), 1u);
  EXPECT_EQ(table.lookup(*Ipv6Address::parse("2400:1::1")), 2u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(RoutingTable, ReplacementKeepsSize) {
  RoutingTable table;
  table.announce(*Ipv6Prefix::parse("2001::/16"), 1);
  table.announce(*Ipv6Prefix::parse("2001::/16"), 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(*Ipv6Address::parse("2001::1")), 2u);
}

TEST(RoutingTable, EntriesRoundTrip) {
  RoutingTable table;
  std::vector<std::pair<Ipv6Prefix, AsNumber>> announced = {
      {*Ipv6Prefix::parse("2400:10::/32"), 10},
      {*Ipv6Prefix::parse("2400:20::/32"), 20},
      {*Ipv6Prefix::parse("2400:10:1::/48"), 11},
  };
  for (const auto& [prefix, asn] : announced) table.announce(prefix, asn);
  auto entries = table.entries();
  ASSERT_EQ(entries.size(), announced.size());
  std::sort(announced.begin(), announced.end());
  EXPECT_EQ(entries, announced);
}

// Property check: the trie agrees with a brute-force linear oracle on
// random tables and random lookups.
TEST(RoutingTable, AgreesWithLinearOracle) {
  util::Rng rng(1234);
  RoutingTable table;
  std::vector<std::pair<Ipv6Prefix, AsNumber>> oracle;

  for (int i = 0; i < 300; ++i) {
    // Random prefixes in 2400::/12 with lengths 16..64.
    unsigned len = 16 + static_cast<unsigned>(rng.below(49));
    Ipv6Address addr = Ipv6Address::from_halves(
        0x2400000000000000ULL | (rng.next() >> 12), rng.next());
    Ipv6Prefix prefix(addr, len);
    auto asn = static_cast<AsNumber>(1000 + i);
    table.announce(prefix, asn);
    // Replace duplicates in the oracle the way the trie does.
    bool replaced = false;
    for (auto& [p, a] : oracle) {
      if (p == prefix) {
        a = asn;
        replaced = true;
      }
    }
    if (!replaced) oracle.emplace_back(prefix, asn);
  }

  auto oracle_lookup = [&](const Ipv6Address& a) -> std::optional<AsNumber> {
    std::optional<AsNumber> best;
    unsigned best_len = 0;
    for (const auto& [p, asn] : oracle) {
      if (p.contains(a) && (!best || p.length() >= best_len)) {
        if (!best || p.length() > best_len) {
          best = asn;
          best_len = p.length();
        }
      }
    }
    return best;
  };

  for (int i = 0; i < 2000; ++i) {
    Ipv6Address probe = Ipv6Address::from_halves(
        0x2400000000000000ULL | (rng.next() >> 12), rng.next());
    EXPECT_EQ(table.lookup(probe), oracle_lookup(probe))
        << probe.to_string();
    // Also probe addresses inside a random announced prefix to guarantee
    // positive lookups are covered: mask then OR random host bits.
    const auto& [p, asn] = oracle[rng.below(oracle.size())];
    std::uint64_t hi = p.address().hi64();
    std::uint64_t lo = p.address().lo64();
    if (p.length() < 64) {
      std::uint64_t host_mask =
          p.length() == 0 ? ~0ULL : (~0ULL >> p.length());
      hi |= rng.next() & host_mask;
      lo = rng.next();
    } else if (p.length() < 128) {
      std::uint64_t host_mask = p.length() == 64
                                    ? ~0ULL
                                    : (~0ULL >> (p.length() - 64));
      lo |= rng.next() & host_mask;
    }
    Ipv6Address target = Ipv6Address::from_halves(hi, lo);
    EXPECT_EQ(table.lookup(target), oracle_lookup(target))
        << target.to_string();
  }
}

TEST(RoutingTable, MoveSemantics) {
  RoutingTable a;
  a.announce(*Ipv6Prefix::parse("2001::/16"), 7);
  RoutingTable b = std::move(a);
  EXPECT_EQ(b.lookup(*Ipv6Address::parse("2001::1")), 7u);
}

}  // namespace
}  // namespace tts::net
