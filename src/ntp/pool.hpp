// NTP Pool model: country zones, operator-configurable netspeed weights,
// monitor scores, and the GeoDNS-style client mapping (after Moura et al.,
// "Deep Dive into NTP Pool's Popularity and Mapping").
//
// Clients resolve the pool from their country zone; the zone falls back to
// the global zone when empty. Within a zone, selection is netspeed-weighted
// among servers whose monitor score is above the rotation threshold. Our 11
// capture servers join zones alongside third-party background servers, so —
// as in Section 3.1 — the share of client traffic our servers see is
// controlled by raising their netspeed relative to the zone's total.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv6.hpp"
#include "ntp/collector.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace tts::ntp {

struct PoolEntry {
  net::Ipv6Address address;
  std::string country;     // ISO code zone, e.g. "IN"
  double netspeed = 1000;  // relative selection weight (pool "netspeed")
  int monitor_score = 20;  // -100..20; below threshold → out of rotation
  bool ours = false;       // one of the 11 capture servers
  ServerId id = 0;         // meaningful when ours
};

class NtpPool {
 public:
  /// Servers with a monitor score below this are not handed to clients
  /// (the pool uses 10).
  static constexpr int kRotationThreshold = 10;

  NtpPool() = default;
  ~NtpPool();
  NtpPool(const NtpPool&) = delete;
  NtpPool& operator=(const NtpPool&) = delete;

  /// Export per-server selection counters ("pool_selections{zone=..}") and
  /// the resolve totals. Servers already added are enrolled retroactively.
  /// The registry must outlive the pool.
  void set_registry(obs::Registry* registry);

  void add_server(PoolEntry entry);
  /// Stop advertising a server (it stays resolvable until removed by the
  /// zone rebuild; we model withdrawal as immediate de-rotation).
  void withdraw(const net::Ipv6Address& address);
  void set_netspeed(const net::Ipv6Address& address, double netspeed);
  /// Commits a monitor verdict into the rotation scores that every
  /// device's resolve() reads concurrently.
  // ttslint: barrier_only
  void set_monitor_score(const net::Ipv6Address& address, int score);

  /// GeoDNS resolution for a client in `country`, following the pool's
  /// zone hierarchy: country zone, else continent zone, else the global
  /// zone (Moura et al.'s mapping), else nullopt.
  std::optional<net::Ipv6Address> resolve(const std::string& country,
                                          util::Rng& rng) const;

  /// Expected fraction of `country` zone traffic landing on our servers —
  /// the quantity the paper tunes via netspeed (Section 3.1).
  double our_zone_share(const std::string& country) const;

  /// All servers (both ours and background).
  const std::vector<PoolEntry>& servers() const { return servers_; }
  std::vector<PoolEntry> our_servers() const;

  /// True when the zone has at least one rotation-eligible server.
  bool zone_populated(const std::string& country) const;

  /// Times resolve() handed out server `index` (parallel to servers()).
  std::uint64_t selections(std::size_t index) const {
    return index < selections_.size() ? selections_[index].value() : 0;
  }
  std::uint64_t resolve_calls() const { return resolve_total_.value(); }
  /// resolve() calls satisfied by the continent/global fallback.
  std::uint64_t resolve_fallbacks() const {
    return resolve_fallback_.value();
  }
  /// Rotation transitions driven by monitor-score updates: a server whose
  /// score crossed below kRotationThreshold (demotion, it stops being
  /// handed out) or recovered to at-or-above it (promotion).
  std::uint64_t demotions() const { return demotions_.value(); }
  std::uint64_t promotions() const { return promotions_.value(); }

 private:
  /// Netspeed-weighted pick; returns an index into servers_, or nullopt.
  std::optional<std::size_t> pick_from(const std::vector<std::size_t>& zone,
                                       util::Rng& rng) const;
  std::vector<std::size_t> eligible_in_zone(const std::string& country) const;
  void enroll_server(std::size_t index);

  std::vector<PoolEntry> servers_;
  std::unordered_map<std::string, std::vector<std::size_t>> zones_;
  // Deque keeps counter addresses stable as servers are appended; mutable
  // because resolve() is logically const but counts its selections.
  mutable std::deque<obs::Counter> selections_;
  mutable obs::Counter resolve_total_;
  mutable obs::Counter resolve_fallback_;
  obs::Counter demotions_;
  obs::Counter promotions_;
  obs::Registry* registry_ = nullptr;
};

/// The 11 deployment countries of Section 3.1 in the paper's order of
/// listing (Australia .. United States).
const std::vector<std::string>& deployment_countries();

/// Continent zone of an ISO country code ("europe", "asia", "north-america",
/// "south-america", "africa", "oceania"); unknown codes map to "global".
std::string_view continent_of(const std::string& country);

}  // namespace tts::ntp
