#include "ntp/ntp_server.hpp"

namespace tts::ntp {

NtpServer::NtpServer(simnet::Network& network, NtpServerConfig config,
                     AddressCollector* collector)
    : network_(network), config_(std::move(config)), collector_(collector) {
  network_.attach(config_.address);
  network_.bind_udp({config_.address, kNtpPort},
                    [this](const simnet::Datagram& dg) { on_datagram(dg); });
}

NtpServer::~NtpServer() {
  network_.unbind_udp({config_.address, kNtpPort});
  network_.detach(config_.address);
}

void NtpServer::on_datagram(const simnet::Datagram& dg) {
  auto request = NtpPacket::parse(dg.payload);
  if (!request || (request->mode != NtpMode::kClient &&
                   // ntpd also answers symmetric-active probes; the pool
                   // sees mostly mode 3, but don't drop mode 1 on the floor.
                   request->mode != NtpMode::kSymmetricActive)) {
    ++malformed_;
    return;
  }

  simnet::SimTime now = network_.now();
  if (collector_ && config_.capture)
    collector_->record(dg.src.addr, config_.id, now);

  // Reference ID: for stratum-2 servers this is the upstream IPv4-style id;
  // derive a stable one from the server id.
  std::uint32_t refid = 0x7f000001u + config_.id;
  NtpPacket response = NtpPacket::server_response(
      *request, now, now, config_.stratum, refid);
  ++served_;
  network_.send_udp(dg.dst, dg.src, response.serialize());
}

}  // namespace tts::ntp
