// C3 fixture: non-const namespace-scope variables and non-const
// function-local statics are cross-shard races and determinism hazards.
// The same file linted with --allow-thread=shared_state.cc must come back
// clean (the dispatcher/instrument exemption covers C3 too), so the
// pragma escape for this rule is demonstrated in pragmas.cc instead.
#include <cstdint>
#include <string>
#include <vector>

int g_hits = 0;                  // FINDING(shared-state)
std::uint64_t g_total;           // FINDING(shared-state)
std::vector<std::string> g_log;  // FINDING(shared-state)

// Const, constexpr and class-scope state is fine.
const int kLimit = 64;
constexpr double kRatio = 0.5;
struct Tally {
  int count = 0;
  static int shared_count;  // class-scope declaration, not a definition
};

namespace nested {
int g_nested = 1;  // FINDING(shared-state)
constexpr int kFine = 2;
}  // namespace nested

int bump() {
  static int calls = 0;  // FINDING(shared-state)
  return ++calls;
}

const std::string& name() {
  static const std::string cached = "tts";  // const local static is fine
  return cached;
}

// Function declarations and definitions at namespace scope are not
// variables.
int declared_elsewhere(int x);
int defined_here(int x) { return x + kLimit; }
