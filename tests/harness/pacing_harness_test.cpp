// Two real ScanEngines on one SharedBudget: the end-to-end pacing
// properties the study relies on — a sole busy engine borrows the whole
// shared cap (and sustains >= 95% of it), weighted shares converge under
// two-way saturation, a newly busy engine reclaims its share within a
// token gap or two, the aggregate launch rate never exceeds the cap in any
// 1-second window, and the coalesced pump keeps its wake-up count well
// under one event per probe.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness.hpp"
#include "scan/engine.hpp"
#include "simnet/network.hpp"

namespace tts::harness {
namespace {

using scan::Dataset;
using scan::ScanEngine;
using scan::ScanEngineConfig;
using scan::SharedBudget;
using scan::SharedBudgetConfig;

net::Ipv6Address addr(std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x2400003000000000ULL, lo);
}

std::vector<net::Ipv6Address> targets(std::uint64_t n, std::uint64_t base) {
  std::vector<net::Ipv6Address> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(addr(base + i));
  return out;
}

class PacingHarness : public ::testing::Test {
 protected:
  PacingHarness() : network_(events_) {}

  ScanEngineConfig engine_config(Dataset dataset, std::uint64_t scanner_lo,
                                 SharedBudget* budget, double weight) {
    ScanEngineConfig c;
    c.scanner_address = addr(scanner_lo);
    c.dataset = dataset;
    c.budget = budget;
    c.budget_weight = weight;
    // Near-zero protocol stagger keeps a fed engine continuously
    // backlogged, so the budget is the only pacing force.
    c.min_protocol_delay = simnet::usec(0);
    c.max_protocol_delay = simnet::usec(1);
    return c;
  }

  /// Endless-enough cursor feed into the engine's own dataset lane.
  static void feed(ScanEngine& engine, std::uint64_t n, std::uint64_t base) {
    struct Cursor {
      std::vector<net::Ipv6Address> list;
      std::size_t next = 0;
    };
    auto cursor = std::make_shared<Cursor>(Cursor{targets(n, base), 0});
    engine.add_source([cursor](std::size_t max_n) {
      std::size_t take = std::min(max_n, cursor->list.size() - cursor->next);
      std::vector<net::Ipv6Address> out(
          cursor->list.begin() + static_cast<std::ptrdiff_t>(cursor->next),
          cursor->list.begin() +
              static_cast<std::ptrdiff_t>(cursor->next + take));
      cursor->next += take;
      return out;
    });
  }

  simnet::EventQueue events_;
  simnet::Network network_;
  scan::ResultStore results_;
};

TEST_F(PacingHarness, SoleBusyEngineSustainsSharedCapAndCoalescesWakes) {
  SharedBudget budget(SharedBudgetConfig{1000, 2, nullptr});
  GrantLog log;
  log.attach(budget);
  ScanEngine ntp(network_, results_,
                 engine_config(Dataset::kNtp, 0xa1, &budget, 1.0));
  ScanEngine hitlist(network_, results_,
                     engine_config(Dataset::kHitlist, 0xa2, &budget, 1.0));

  hitlist.submit_bulk(targets(1000, 5000));
  events_.run();

  const std::uint64_t probes = 1000 * scan::kProtocolCount;
  ASSERT_EQ(hitlist.probes_launched(), probes);
  EXPECT_EQ(budget.grants(ntp.budget_client()), 0u);
  ASSERT_EQ(budget.grants(hitlist.budget_client()), probes);

  // Sustained >= 95% of the shared cap: the idle NTP engine's share was
  // fully lent, not reserved.
  const auto& grants = log.grants();
  simnet::SimDuration span = grants.back().at - grants.front().at;
  double achieved_pps =
      static_cast<double>(probes - 1) * 1e6 / static_cast<double>(span);
  EXPECT_GE(achieved_pps, 0.95 * budget.max_pps());
  // Nearly every grant past the contended share is a borrow.
  EXPECT_GT(budget.borrowed(hitlist.budget_client()), probes * 9 / 10);

  // Pump wake coalescing: one timer wake launches a banked batch (about
  // burst_slots + 1 probes), so wakes stay at most half the probe count —
  // the >= 2x event cut over a wake-per-grant pump.
  EXPECT_GE(hitlist.pump_wakes(), 1u);
  EXPECT_LE(hitlist.pump_wakes() * 2, hitlist.probes_launched());
}

TEST_F(PacingHarness, WeightedSharesConvergeUnderSaturation) {
  SharedBudget budget(SharedBudgetConfig{2000, 2, nullptr});
  ScanEngine ntp(network_, results_,
                 engine_config(Dataset::kNtp, 0xb1, &budget, 3.0));
  ScanEngine hitlist(network_, results_,
                     engine_config(Dataset::kHitlist, 0xb2, &budget, 1.0));
  feed(ntp, 2500, 10000);      // 20000 probes: saturated well past 5 s
  feed(hitlist, 1500, 50000);  // 12000 probes at a quarter share

  events_.run_until(simnet::sec(5));

  std::uint64_t ntp_grants = budget.grants(ntp.budget_client());
  std::uint64_t hit_grants = budget.grants(hitlist.budget_client());
  std::uint64_t total = ntp_grants + hit_grants;
  ASSERT_GT(total, 9000u);  // the shared cap was actually saturated
  double ntp_share =
      static_cast<double>(ntp_grants) / static_cast<double>(total);
  // Weights 3:1 -> shares 75% / 25%, within 5% relative.
  EXPECT_NEAR(ntp_share, 0.75, 0.75 * 0.05);
}

TEST_F(PacingHarness, LateJoinerReclaimsItsShareWithinAGap) {
  SharedBudget budget(SharedBudgetConfig{1000, 2, nullptr});
  GrantLog log;
  log.attach(budget);
  ScanEngine ntp(network_, results_,
                 engine_config(Dataset::kNtp, 0xc1, &budget, 1.0));
  ScanEngine hitlist(network_, results_,
                     engine_config(Dataset::kHitlist, 0xc2, &budget, 1.0));

  hitlist.submit_bulk(targets(800, 5000));  // saturates from t = 0
  const simnet::SimTime join = simnet::sec(2);
  events_.schedule_at(join, [&] { ntp.submit_bulk(targets(100, 90000)); });
  events_.run();

  // The NTP engine was granted its first token within ~one gap of turning
  // busy, despite the hitlist engine's long borrowing streak.
  simnet::SimTime first = log.first_at_or_after(ntp.budget_client(), join);
  ASSERT_GE(first, join);
  EXPECT_LE(first - join, 2 * budget.gap());

  // Aggregate invariant across the whole run, joins included: no 1-second
  // window of launches exceeds cap * window + burst + 1.
  std::size_t cap =
      static_cast<std::size_t>((simnet::sec(1) + budget.gap() - 1) /
                               budget.gap()) +
      static_cast<std::size_t>(budget.burst_slots()) + 1;
  EXPECT_LE(max_window_count(log.times(), simnet::sec(1)), cap);

  // Everything still completes: shared pacing delays probes, never drops
  // them.
  EXPECT_EQ(ntp.probes_launched() + hitlist.probes_launched(),
            900 * scan::kProtocolCount);
}

}  // namespace
}  // namespace tts::harness
