// Study-level harness: determinism of the whole pipeline down to the
// budget's grant sequence (same seed -> bit-identical probe order and
// totals; different seed -> different), and the capped collector-overflow
// buffer under deliberate scan-budget starvation.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/study.hpp"
#include "harness.hpp"

namespace tts::harness {
namespace {

core::StudyConfig mini_config() {
  auto config = core::make_study_config(core::StudyScale::kTiny);
  config.population.device_scale = 0.05;
  config.runtime.duration = simnet::days(1);
  config.hitlist_scan_start = simnet::hours(12);
  config.drain = simnet::hours(6);
  return config;
}

/// Fingerprint of everything the pacing work touches: the full grant
/// sequence (client, token slot, launch time per probe) plus the run's
/// headline totals.
std::uint64_t run_digest(const core::StudyConfig& config) {
  core::Study study(config);
  GrantLog log;
  log.attach(*study.scan_budget());
  study.run();
  Fnv64 f;
  for (const Grant& g : log.grants()) f.mix(g);
  f.mix(static_cast<std::uint64_t>(log.size()));
  f.mix(static_cast<std::uint64_t>(study.results().size()));
  f.mix(study.collector().total_requests());
  f.mix(study.collector().distinct_addresses());
  f.mix(study.events_executed());
  if (study.ntp_engine()) f.mix(study.ntp_engine()->probes_launched());
  if (study.hitlist_engine())
    f.mix(study.hitlist_engine()->probes_launched());
  return f.value();
}

/// Digest of the entire rendered study report, byte for byte: every
/// analysis table, every ranking, every percentage. This is the invariant
/// the ttslint rules (ordered iteration, no ambient clocks, seeded RNGs)
/// exist to protect — any hash-order or wall-clock leak anywhere in the
/// pipeline shows up here as a digest mismatch.
std::uint64_t report_digest(const core::StudyConfig& config) {
  core::Study study(config);
  study.run();
  std::string md = core::render_markdown(core::build_report(study));
  Fnv64 f;
  f.mix_bytes(md);
  f.mix(static_cast<std::uint64_t>(md.size()));
  return f.value();
}

TEST(StudyHarness, SameSeedBitIdenticalGrantSequenceAndTotals) {
  auto config = mini_config();
  EXPECT_EQ(run_digest(config), run_digest(config));
}

TEST(StudyHarness, DifferentSeedDifferentGrantSequence) {
  auto config = mini_config();
  std::uint64_t base = run_digest(config);
  config.seed ^= 0x9e3779b97f4a7c15ULL;
  EXPECT_NE(base, run_digest(config));
}

TEST(StudyHarness, SameSeedBitIdenticalFullReport) {
  auto config = mini_config();
  EXPECT_EQ(report_digest(config), report_digest(config));
}

TEST(StudyHarness, DifferentSeedDifferentFullReport) {
  auto config = mini_config();
  std::uint64_t base = report_digest(config);
  config.seed ^= 0x9e3779b97f4a7c15ULL;
  EXPECT_NE(base, report_digest(config));
}

TEST(StudyHarness, OverflowBufferIsCappedUnderBudgetStarvation) {
  // Starve the scan budget (about one probe slot per ~17 virtual minutes)
  // with a tiny staging lane and overflow cap: the NTP feed must hit the
  // cap, drop-and-count the excess, and never grow the buffer past it.
  auto config = mini_config();
  config.enable_telescope = false;
  config.enable_actors = false;
  config.enable_hitlist_scan = false;
  config.scan_pps = 0.001;
  config.scan_max_pending = 2;
  config.overflow_cap = 8;
  config.drain = simnet::hours(1);

  core::Study study(config);
  study.run();

  ASSERT_GT(study.collector().distinct_addresses(), 20u)
      << "population too small to exercise the overflow path";
  EXPECT_GT(study.ntp_engine()->backpressure_events(), 0u);
  EXPECT_GT(study.overflow_dropped(), 0u);
  EXPECT_LE(study.overflow_depth(), config.overflow_cap);
  EXPECT_LE(study.ntp_engine()->pending_peak(), config.scan_max_pending);
  // The counter is exported for the heartbeat/report path too.
  ASSERT_NE(study.metrics().find_counter("scan_overflow_dropped",
                                         {{"dataset", "ntp"}}),
            nullptr);
}

}  // namespace
}  // namespace tts::harness
