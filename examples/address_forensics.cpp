// Address forensics: feed captured IPv6 addresses (one per line on stdin,
// or a built-in demo set) through the library's classification stack —
// IID structure, EUI-64 extraction, vendor lookup, network aggregation.
//
//   ./address_forensics < addresses.txt
//   ./address_forensics            # runs on the demo set
#include <iostream>
#include <string>
#include <vector>

#include "analysis/eui64_analysis.hpp"
#include "analysis/iid_classes.hpp"
#include "net/address_io.hpp"
#include "net/ipv6.hpp"
#include "net/mac.hpp"
#include "net/oui_db.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace tts;

namespace {

std::vector<net::Ipv6Address> demo_addresses() {
  std::vector<net::Ipv6Address> out;
  const char* samples[] = {
      // SLAAC with an AVM MAC (FRITZ!Box):
      "2001:db8:17:4200:21a:4fff:fe12:3456",
      // SLAAC with a randomised (locally administered) MAC:
      "2001:db8:17:4200:f23a:11ff:fe98:7654",
      // Privacy extension (random IID):
      "2001:db8:9:1:78c1:2ab3:94de:5f10",
      // Manually numbered server:
      "2001:db8:100::1",
      "2001:db8:100::2",
      // Router with last-two-byte numbering:
      "2001:db8:200::1:5",
      // Raspberry Pi:
      "2001:db8:44:1100:ba27:ebff:fe01:0203",
  };
  for (const char* s : samples) out.push_back(*net::Ipv6Address::parse(s));
  return out;
}

}  // namespace

int main() {
  std::vector<net::Ipv6Address> addresses;
  if (!isatty(0)) {
    net::AddressReadStats stats;
    addresses = net::read_address_list(std::cin, &stats);
    if (stats.skipped)
      std::cerr << "(skipped " << stats.skipped
                << " comment/blank/unparsable lines)\n";
  }
  if (addresses.empty()) {
    std::cout << "(no stdin input; using the built-in demo set)\n\n";
    addresses = demo_addresses();
  }

  const auto& db = net::OuiDatabase::builtin();

  util::TextTable t("Per-address forensics");
  t.set_header({"address", "IID class", "MAC", "vendor"},
               {util::Align::kLeft, util::Align::kLeft, util::Align::kLeft,
                util::Align::kLeft});
  for (const auto& a : addresses) {
    std::string mac_text = "-", vendor = "-";
    if (auto mac = net::extract_mac(a)) {
      mac_text = mac->to_string();
      if (mac->locally_administered())
        vendor = "(locally administered)";
      else
        vendor = std::string(db.lookup(*mac).value_or("(unlisted OUI)"));
    }
    t.add_row({a.to_string(),
               std::string(to_string(analysis::classify_iid(a))), mac_text,
               vendor});
  }
  t.render(std::cout);

  auto dist = analysis::classify_addresses(addresses);
  std::cout << "\nIID class distribution over " << addresses.size()
            << " addresses:\n";
  for (std::size_t i = 0; i < analysis::kIidClassCount; ++i) {
    auto cls = static_cast<analysis::IidClass>(i);
    if (dist.counts[i] == 0) continue;
    std::cout << "  " << util::pad_right(std::string(to_string(cls)), 16)
              << dist.counts[i] << " (" << util::percent(dist.fraction(cls))
              << ")\n";
  }

  analysis::Eui64Accumulator acc;
  for (const auto& a : addresses) acc.add(a, 0);
  std::cout << "\nEUI-64 summary: " << acc.eui64_addresses() << " of "
            << acc.total_addresses() << " embed a MAC; "
            << acc.unique_bit_addresses()
            << " claim global uniqueness.\n";
  auto ranking = acc.vendor_ranking();
  if (!ranking.empty()) {
    std::cout << "Vendors:\n";
    for (const auto& [vendor, counts] : ranking)
      std::cout << "  " << vendor << ": " << counts.first << " MAC(s), "
                << counts.second << " IP(s)\n";
  }
  return 0;
}
