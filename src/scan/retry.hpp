// Graceful degradation for the scan engine: retry policies and per-prefix
// circuit breaking.
//
// RetryPolicy re-stages a timed-out probe through the PendingQueue with an
// exponentially backed-off not_before (seed-derived jitter keeps retries
// deterministic), so pacing and the SharedBudget govern retries exactly
// like first attempts. CircuitBreakerSet tracks one breaker per routed
// prefix (config-length mask of the target): a run of consecutive timeouts
// opens the breaker and probes to the prefix are shed at admission; after a
// cool-down the breaker half-opens and admits a trickle of trial probes — a
// conclusive outcome (anything proving the path answers: success, refusal,
// even a malformed reply) closes it, a trial timeout re-opens it. An
// optional AS-level tier escalates: when enough prefix breakers inside one
// AS aggregate are tripped at once, the whole AS sheds its still-closed
// prefixes too (the tripped children keep running their own recovery
// trials, so the tier de-escalates itself as they close).
//
// Both mechanisms are pure state machines over sim-time; all transitions
// and shed decisions are counted so the chaos harness can prove probe
// conservation and breaker convergence.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/ipv6.hpp"
#include "obs/metrics.hpp"
#include "simnet/time.hpp"
#include "util/rng.hpp"

namespace tts::scan {

/// Retry schedule for timed-out probes. Disabled by default (max_retries
/// 0): enabling it re-stages each timeout up to max_retries times with
/// exponential backoff before the final timeout is recorded.
struct RetryPolicy {
  std::uint32_t max_retries = 0;
  simnet::SimDuration base_backoff = simnet::sec(4);
  double multiplier = 2.0;
  simnet::SimDuration max_backoff = simnet::minutes(4);
  /// Uniform jitter as a fraction of the computed backoff, drawn from the
  /// engine's seeded stream: delay in [backoff, backoff * (1 + jitter)).
  double jitter = 0.25;

  bool enabled() const { return max_retries > 0; }

  /// Backoff before retry number `retry_index` (1-based), jittered.
  simnet::SimDuration backoff(std::uint32_t retry_index,
                              util::Rng& rng) const;
};

struct BreakerConfig {
  bool enabled = false;
  /// Breakers key on target & /prefix_len — the "routed prefix" the engine
  /// treats as one reachability domain.
  unsigned prefix_len = 48;
  /// Consecutive timeouts within a prefix that open its breaker.
  std::uint32_t open_after = 8;
  /// Cool-down before an open breaker half-opens.
  simnet::SimDuration open_for = simnet::minutes(5);
  /// Trial probes admitted while half-open (in flight at once).
  std::uint32_t half_open_probes = 1;
  /// AS-level escalation tier: when this many prefix breakers inside one
  /// AS aggregate (target & /as_prefix_len) are tripped at once, the whole
  /// AS trips and closed-prefix targets in it are shed wholesale. 0
  /// disables the tier. The AS breaker is derived state — it de-escalates
  /// automatically as its children recover, and it never blocks the
  /// open/half-open children's own trial probes, so recovery always flows.
  std::uint32_t as_open_after = 0;
  /// Aggregation mask for the AS tier (must be <= prefix_len to aggregate).
  unsigned as_prefix_len = 32;
};

/// The per-prefix breaker collection. Pure decision logic — the engine
/// calls would_admit() before spending a budget token, note_launch() when
/// the probe actually launches, shed() when it drops a refused intent, and
/// on_outcome() from every probe completion.
class CircuitBreakerSet {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreakerSet(BreakerConfig config);

  /// Would a probe to `target` be admitted at `now`? No state mutation —
  /// safe to call and then not launch (e.g. the budget refused a token).
  bool would_admit(const net::Ipv6Address& target,
                   simnet::SimTime now) const;
  /// Commit an admitted launch: performs the open -> half-open transition
  /// when the cool-down has expired and claims a trial slot while half-open.
  void note_launch(const net::Ipv6Address& target, simnet::SimTime now);
  /// Count one probe shed because would_admit() said no.
  void shed() { shed_.inc(); }
  /// Feed a probe outcome back. `conclusive` means the path answered
  /// (success, RST, TLS failure, malformed bytes) — only silence keeps a
  /// breaker unhappy.
  void on_outcome(const net::Ipv6Address& target, bool conclusive,
                  simnet::SimTime now);

  State state(const net::Ipv6Address& target) const;
  /// Breaker key of a target (target & /prefix_len).
  net::Ipv6Address key_of(const net::Ipv6Address& target) const {
    return target.masked(config_.prefix_len);
  }
  /// AS-tier key of a target (target & /as_prefix_len).
  net::Ipv6Address as_key_of(const net::Ipv6Address& target) const {
    return target.masked(config_.as_prefix_len);
  }
  /// Is the target's AS tier currently escalated (tripped children >=
  /// as_open_after)? Always false when the tier is disabled.
  bool as_open(const net::Ipv6Address& target) const;

  const BreakerConfig& config() const { return config_; }
  std::uint64_t opens() const { return opens_.value(); }
  std::uint64_t closes() const { return closes_.value(); }
  std::uint64_t half_opens() const { return half_opens_.value(); }
  std::uint64_t sheds() const { return shed_.value(); }
  /// Prefixes currently open or half-open (i.e. not admitting freely).
  std::int64_t tripped_now() const { return tripped_gauge_.value(); }
  std::uint64_t as_opens() const { return as_opens_.value(); }
  std::uint64_t as_closes() const { return as_closes_.value(); }
  /// AS aggregates currently escalated.
  std::int64_t as_open_now() const { return as_open_gauge_.value(); }

  /// Enroll the breaker instruments into `registry` under `labels`,
  /// attributed to `owner` (the engine enrolls these next to its own).
  void enroll(obs::Registry& registry, const obs::Labels& labels,
              const void* owner);

  /// Called on every state transition with the breaker's prefix key — the
  /// engine forwards these to the anomaly flight recorder. At most one
  /// observer; empty function detaches.
  using TransitionFn = std::function<void(
      const net::Ipv6Address& prefix, State from, State to,
      simnet::SimTime now)>;
  void set_transition_observer(TransitionFn fn) {
    on_transition_ = std::move(fn);
  }

  /// Called when an AS tier escalates (open=true) or de-escalates. At most
  /// one observer; empty function detaches.
  using AsTransitionFn = std::function<void(const net::Ipv6Address& as_key,
                                            bool open, simnet::SimTime now)>;
  void set_as_transition_observer(AsTransitionFn fn) {
    on_as_transition_ = std::move(fn);
  }

 private:
  struct Breaker {
    State state = State::kClosed;
    std::uint32_t timeout_streak = 0;
    simnet::SimTime open_until = 0;
    std::uint32_t trials_in_flight = 0;
  };
  struct AsTier {
    std::uint32_t tripped_children = 0;
    bool open = false;
  };

  void open(const net::Ipv6Address& prefix, Breaker& b, simnet::SimTime now);
  void notify(const net::Ipv6Address& prefix, State from, State to,
              simnet::SimTime now) {
    if (on_transition_) on_transition_(prefix, from, to, now);
  }
  /// A child prefix breaker tripped (closed -> open) / fully recovered
  /// (tripped -> closed): maintain the AS tier's derived open state.
  void child_tripped(const net::Ipv6Address& prefix, simnet::SimTime now);
  void child_restored(const net::Ipv6Address& prefix, simnet::SimTime now);

  BreakerConfig config_;
  TransitionFn on_transition_;
  AsTransitionFn on_as_transition_;
  /// Keyed lookups only — never iterated, so the unordered map cannot leak
  /// hash order into any observable behaviour.
  std::unordered_map<net::Ipv6Address, Breaker, net::Ipv6AddressHash>
      by_prefix_;
  /// Keyed lookups only (same rule as by_prefix_).
  std::unordered_map<net::Ipv6Address, AsTier, net::Ipv6AddressHash> by_as_;

  obs::Counter opens_;
  obs::Counter closes_;
  obs::Counter half_opens_;
  obs::Counter shed_;
  obs::Gauge tripped_gauge_;
  obs::Counter as_opens_;
  obs::Counter as_closes_;
  obs::Gauge as_open_gauge_;
};

}  // namespace tts::scan
