// Deterministic random number generation.
//
// Every stochastic decision in the library draws from a named stream derived
// from a single study seed, so two runs with the same configuration produce
// byte-identical results. Streams are independent: deriving "pool.selection"
// and "population.iids" from the same root seed yields uncorrelated
// sequences (SplitMix64 used as a seed mixer, Xoshiro256** as the generator,
// per Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace tts::util {

/// SplitMix64: tiny, fast seed-mixing PRNG. Used to expand a 64-bit seed
/// into generator state and to hash stream names into sub-seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// FNV-1a hash of a string, used to derive per-stream seeds from names.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Xoshiro256** — the library's workhorse generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed directly from a 64-bit value (expanded through SplitMix64).
  explicit Rng(std::uint64_t seed);

  /// Derive an independent child stream: seed ^ hash(name).
  Rng stream(std::string_view name) const;
  /// Derive an independent child stream keyed by an index.
  Rng stream(std::uint64_t index) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Bernoulli trial.
  bool chance(double p);
  /// Standard normal via Box-Muller (no cached spare: keeps streams simple).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Geometric-ish heavy-tail integer: floor(lognormal).
  std::uint64_t heavy_tail_count(double mu, double sigma, std::uint64_t cap);

  /// Sample an index from a discrete distribution given cumulative weights.
  /// `cumulative` must be non-empty and non-decreasing with positive back().
  std::size_t pick_cumulative(const std::vector<double>& cumulative);

  /// Sample an index proportional to `weights` (linear scan; fine for the
  /// small weight vectors used in the pool model).
  std::size_t pick_weighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  std::uint64_t root_seed() const { return seed_; }

  /// Raw Xoshiro256** state words, for study snapshots: two generators
  /// with equal state produce identical streams, so comparing states
  /// proves two runs' stochastic decisions have not diverged.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
};

/// Zipf(α) sampler over ranks 1..n via rejection-inversion (Hörmann).
/// Used for AS-size and device-popularity skew.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);
  /// Returns a rank in [1, n].
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double h(double x) const;
  double h_inv(double x) const;

  std::uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace tts::util
