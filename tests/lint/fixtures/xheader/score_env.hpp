// Cross-header container alias: a TU that includes this header iterates a
// ScoreIndex without ever spelling "unordered_map" itself. Single-TU mode
// cannot know the alias is unordered; only a compilation-database pass
// that seeds the environment from resolved includes catches the escape.
#pragma once

#include <unordered_map>

namespace demo {

using ScoreIndex = std::unordered_map<int, int>;

}  // namespace demo
