// Shared helpers for the scenario/soak harness (ctest -L harness).
//
// The harness proves the shared-budget pacing properties end to end:
// GrantLog taps SharedBudget's grant observer and answers the questions the
// invariants are phrased in (how many grants in the worst 1-second window,
// how many per client before some cutoff, is the whole sequence
// bit-identical between runs), FakePacer is a minimal budget client that
// follows the pump protocol (backlog flag, try_acquire loop, re-arm at
// suggested_wake) without dragging the full scan stack in, and Fnv64 folds
// arbitrary run artifacts into one fingerprint for determinism checks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "scan/budget.hpp"
#include "simnet/event_queue.hpp"

namespace tts::harness {

struct Grant {
  scan::SharedBudget::ClientId client;
  simnet::SimTime slot;  // consumed token's accrual time
  simnet::SimTime at;    // grant (launch) time

  bool operator==(const Grant& o) const {
    return client == o.client && slot == o.slot && at == o.at;
  }
};

/// Records every grant a SharedBudget hands out, in order.
class GrantLog {
 public:
  void attach(scan::SharedBudget& budget) {
    budget.set_grant_observer(
        [this](scan::SharedBudget::ClientId id, simnet::SimTime slot,
               simnet::SimTime at) { grants_.push_back({id, slot, at}); });
  }

  const std::vector<Grant>& grants() const { return grants_; }
  std::size_t size() const { return grants_.size(); }

  std::vector<simnet::SimTime> times() const {
    std::vector<simnet::SimTime> out;
    out.reserve(grants_.size());
    for (const Grant& g : grants_) out.push_back(g.at);
    return out;
  }

  std::uint64_t count(scan::SharedBudget::ClientId id) const {
    std::uint64_t n = 0;
    for (const Grant& g : grants_) n += g.client == id;
    return n;
  }
  /// Grants of `id` strictly before `cutoff` — per-client share over an
  /// interval where every client was still backlogged.
  std::uint64_t count_before(scan::SharedBudget::ClientId id,
                             simnet::SimTime cutoff) const {
    std::uint64_t n = 0;
    for (const Grant& g : grants_) n += g.client == id && g.at < cutoff;
    return n;
  }
  /// Grant time of `id`'s first grant at or after `t` (-1 when none).
  simnet::SimTime first_at_or_after(scan::SharedBudget::ClientId id,
                                    simnet::SimTime t) const {
    for (const Grant& g : grants_)
      if (g.client == id && g.at >= t) return g.at;
    return -1;
  }

 private:
  std::vector<Grant> grants_;
};

/// Largest number of events inside any half-open window [t, t + window):
/// the sliding-window rate the pacing invariant bounds.
inline std::size_t max_window_count(std::vector<simnet::SimTime> times,
                                    simnet::SimDuration window) {
  std::sort(times.begin(), times.end());
  std::size_t best = 0, lo = 0;
  for (std::size_t hi = 0; hi < times.size(); ++hi) {
    while (times[hi] - times[lo] >= window) ++lo;
    best = std::max(best, hi - lo + 1);
  }
  return best;
}

/// FNV-1a accumulator for determinism fingerprints.
class Fnv64 {
 public:
  Fnv64& mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
    return *this;
  }
  Fnv64& mix(std::int64_t v) { return mix(static_cast<std::uint64_t>(v)); }
  Fnv64& mix(const Grant& g) {
    return mix(static_cast<std::uint64_t>(g.client)).mix(g.slot).mix(g.at);
  }
  /// Straight FNV-1a over a byte string (whole-report digests).
  Fnv64& mix_bytes(std::string_view bytes) {
    for (unsigned char c : bytes) {
      h_ ^= c;
      h_ *= 0x100000001b3ULL;
    }
    return *this;
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Minimal SharedBudget client: `work` abstract sends, paced through the
/// same protocol the scan pump uses (one re-armable Timer, backlog flag
/// kept current, try_acquire until refused, sleep to suggested_wake).
class FakePacer {
 public:
  FakePacer(simnet::EventQueue& events, scan::SharedBudget& budget,
            std::string name, double weight)
      : events_(events),
        budget_(budget),
        timer_(events, [this] { pump(); }) {
    id_ = budget_.add_client(std::move(name), weight, [this] { arm(); });
  }
  ~FakePacer() { budget_.remove_client(id_); }

  void add_work(std::uint64_t n) {
    work_ += n;
    arm();
  }

  scan::SharedBudget::ClientId id() const { return id_; }
  std::uint64_t done() const { return done_; }
  std::uint64_t work_left() const { return work_; }

 private:
  void arm() {
    simnet::SimTime now = events_.now();
    budget_.set_backlog(id_, work_ > 0, now);
    if (work_ == 0) {
      timer_.cancel();
      return;
    }
    timer_.arm(budget_.suggested_wake(id_, now));
  }
  void pump() {
    simnet::SimTime now = events_.now();
    while (work_ > 0 && budget_.try_acquire(id_, now)) {
      --work_;
      ++done_;
    }
    arm();
  }

  simnet::EventQueue& events_;
  scan::SharedBudget& budget_;
  simnet::Timer timer_;
  scan::SharedBudget::ClientId id_;
  std::uint64_t work_ = 0;
  std::uint64_t done_ = 0;
};

}  // namespace tts::harness
