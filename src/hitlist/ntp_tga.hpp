// Target generation seeded by NTP-collected addresses — the "address
// generators trained on such addresses" the paper's Discussion leaves for
// future work.
//
// The generator learns, per observed /48, the density of sightings and the
// IID-class mix, then emits candidates: fresh /56 slots inside the hottest
// /48s with IIDs drawn from the learned class distribution. Because
// NTP-collected addresses are dominated by dynamic end-user space, the
// candidates alias onto *pools* rather than hosts — exactly why the paper
// argues static lists of NTP-sourced addresses rot immediately, while the
// /48-level structure stays informative.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.hpp"
#include "util/rng.hpp"

namespace tts::hitlist {

struct NtpTgaConfig {
  /// Candidates to emit.
  std::uint64_t candidates = 10000;
  /// Only /48s with at least this many observed sightings seed candidates.
  std::uint64_t min_sightings_per_48 = 2;
  std::uint64_t seed = 0x76a;
};

class NtpSeededTga {
 public:
  /// Learn the per-/48 densities and IID-class mix of the training set.
  void train(std::span<const net::Ipv6Address> observed);

  /// Emit candidate targets (requires train() first).
  std::vector<net::Ipv6Address> generate(const NtpTgaConfig& config) const;

  std::size_t hot_networks() const { return hot48_.size(); }

 private:
  struct Hot48 {
    std::uint64_t hi48 = 0;   // the /48's high bits (low 16 of hi64 zero)
    std::uint64_t weight = 0; // observed sightings
  };
  std::vector<Hot48> hot48_;
  // Learned IID-class mix: counts of [eui64, privacy-like, low-byte].
  std::uint64_t mix_eui64_ = 0;
  std::uint64_t mix_random_ = 0;
  std::uint64_t mix_low_ = 0;
};

}  // namespace tts::hitlist
