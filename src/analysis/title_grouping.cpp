#include "analysis/title_grouping.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "util/levenshtein.hpp"
#include "util/ordered.hpp"

namespace tts::analysis {

namespace {

bool ip_char(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) || c == ':' ||
         c == '.';
}

}  // namespace

std::string normalize_title(const std::string& title) {
  std::string out;
  out.reserve(title.size());
  std::size_t i = 0;
  while (i < title.size()) {
    if (!ip_char(title[i])) {
      out.push_back(title[i++]);
      continue;
    }
    std::size_t j = i;
    bool has_digit = false;
    int colons = 0, dots = 0;
    while (j < title.size() && ip_char(title[j])) {
      if (std::isdigit(static_cast<unsigned char>(title[j]))) has_digit = true;
      if (title[j] == ':') ++colons;
      if (title[j] == '.') ++dots;
      ++j;
    }
    // An address-looking run: at least two colons (IPv6, incl. "::") or
    // three dots (dotted-quad IPv4). Version numbers like "18.0.34" have
    // too few separators and survive untouched.
    if (j - i >= 7 && has_digit && (colons >= 2 || dots >= 3)) {
      out += "(IP)";
    } else {
      out.append(title, i, j - i);
    }
    i = j;
  }
  return out;
}

std::vector<TitleGroup> group_titles(
    const std::vector<TitleObservation>& observations, double max_distance) {
  // Pre-aggregate identical normalised titles (clustering is quadratic in
  // the number of *distinct* titles, which is small).
  struct Tally {
    std::uint64_t ntp = 0;
    std::uint64_t hitlist = 0;
  };
  std::unordered_map<std::string, Tally> distinct;
  for (const auto& obs : observations) {
    auto& tally = distinct[normalize_title(obs.title)];
    if (obs.dataset == scan::Dataset::kHitlist)
      tally.hitlist += obs.weight;
    else
      tally.ntp += obs.weight;
  }

  // Cluster seeds in descending frequency so the most common variant of a
  // family becomes its representative.
  auto ordered = util::sorted_items(distinct);
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    std::uint64_t ta = a.second.ntp + a.second.hitlist;
    std::uint64_t tb = b.second.ntp + b.second.hitlist;
    if (ta != tb) return ta > tb;
    return a.first < b.first;
  });

  std::vector<TitleGroup> groups;
  for (const auto& [title, tally] : ordered) {
    TitleGroup* home = nullptr;
    for (auto& g : groups) {
      if (util::within_normalized_distance(title, g.representative,
                                           max_distance)) {
        home = &g;
        break;
      }
    }
    if (!home) {
      groups.push_back(TitleGroup{title, 0, 0});
      home = &groups.back();
    }
    home->ntp += tally.ntp;
    home->hitlist += tally.hitlist;
  }

  std::sort(groups.begin(), groups.end(),
            [](const TitleGroup& a, const TitleGroup& b) {
              if (a.total() != b.total()) return a.total() > b.total();
              return a.representative < b.representative;
            });
  return groups;
}

}  // namespace tts::analysis
