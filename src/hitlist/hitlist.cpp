#include "hitlist/hitlist.hpp"

#include <unordered_map>

#include "util/serialize.hpp"

namespace tts::hitlist {

std::optional<Source> Hitlist::source_of(const net::Ipv6Address& addr) const {
  net::AddressStore::Seq seq = seen.seq_of(addr);
  if (seq == net::AddressStore::kNoSeq) return std::nullopt;
  return sources[seq];
}

std::map<Source, std::uint64_t> Hitlist::counts_by_source() const {
  std::map<Source, std::uint64_t> out;
  for (Source src : sources) ++out[src];
  return out;
}

void Hitlist::save_state(util::ByteWriter& w) const {
  seen.save(w);
  w.u32(static_cast<std::uint32_t>(sources.size()));
  for (Source src : sources) w.u8(static_cast<std::uint8_t>(src));
  w.u32(static_cast<std::uint32_t>(public_list.size()));
  for (const auto& a : public_list) {
    w.u64(a.hi64());
    w.u64(a.lo64());
  }
}

Hitlist Hitlist::decode_state(util::ByteReader& r) {
  Hitlist list;
  list.seen = net::AddressStore::load(r);
  std::uint32_t nsources = r.u32();
  if (nsources != list.seen.size())
    throw util::SerializeError("Hitlist: sources/store size mismatch");
  list.sources.reserve(nsources);
  for (std::uint32_t i = 0; i < nsources; ++i)
    list.sources.push_back(static_cast<Source>(r.u8()));
  // full is derived: the store's snapshot is exactly first-contribution
  // order, which is how build() populated it.
  list.full = list.seen.snapshot();
  std::uint32_t npublic = r.u32();
  list.public_list.reserve(npublic);
  for (std::uint32_t i = 0; i < npublic; ++i) {
    std::uint64_t hi = r.u64();
    std::uint64_t lo = r.u64();
    list.public_list.push_back(net::Ipv6Address::from_halves(hi, lo));
  }
  return list;
}

Hitlist HitlistBuilder::build(const inet::Population& pop,
                              const inet::InternetRuntime* runtime,
                              const SourceConfig& config) {
  util::Rng rng(config.seed);
  Hitlist list;

  AddressOf addr_of = initial_address_of();
  if (runtime) {
    addr_of = [runtime](const inet::Device& d) {
      return runtime->address_of(d.id);
    };
  }
  auto dns = dns_source(pop, addr_of);
  auto traceroute = traceroute_source(pop, config, rng, addr_of);
  auto tga = tga_source(dns, config, rng);
  auto aliased = aliased_source(pop.registry(), config, rng);
  auto stale = stale_source(pop, dns.size(), config, rng);

  // Index device initial addresses for the responsiveness check when no
  // runtime is available yet.
  std::unordered_map<net::Ipv6Address, const inet::Device*,
                     net::Ipv6AddressHash>
      initial;
  if (!runtime) {
    for (const auto& d : pop.devices()) initial[d.initial_address] = &d;
  }

  auto device_at = [&](const net::Ipv6Address& a) -> const inet::Device* {
    if (runtime) return runtime->device_at(a);
    auto it = initial.find(a);
    return it == initial.end() ? nullptr : it->second;
  };

  const auto& alias_region = pop.registry().cdn_alias_region();

  auto ingest = [&](const std::vector<SourcedAddress>& batch) {
    for (const auto& s : batch) {
      auto [seq, fresh] = list.seen.insert(s.addr);
      if (!fresh) continue;
      list.full.push_back(s.addr);
      list.sources.push_back(s.source);

      bool responsive = false;
      if (alias_region.contains(s.addr)) {
        responsive = true;  // every aliased address answers
      } else if (const inet::Device* d = device_at(s.addr)) {
        responsive = d->any_service();
      } else if (s.source == Source::kTraceroute) {
        // Synthetic router interfaces answer ICMP (ping-responsive), which
        // is enough for the public list's liveness filter.
        responsive = s.addr.lo64() < 256;
      }
      if (responsive) list.public_list.push_back(s.addr);
    }
  };

  ingest(dns);
  ingest(traceroute);
  ingest(tga);
  ingest(aliased);
  ingest(stale);
  return list;
}

}  // namespace tts::hitlist
