#include <gtest/gtest.h>

#include <set>

#include "net/ipv6.hpp"
#include "util/rng.hpp"

namespace tts::net {
namespace {

TEST(Ipv6Parse, CanonicalForms) {
  auto a = Ipv6Address::parse("2001:db8::1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->hi64(), 0x20010db800000000ULL);
  EXPECT_EQ(a->lo64(), 1ULL);

  EXPECT_EQ(Ipv6Address::parse("::")->to_string(), "::");
  EXPECT_EQ(Ipv6Address::parse("::1")->to_string(), "::1");
  EXPECT_EQ(Ipv6Address::parse("1::")->to_string(), "1::");
  EXPECT_EQ(Ipv6Address::parse("fe80::1:2:3:4")->to_string(),
            "fe80::1:2:3:4");
}

TEST(Ipv6Parse, FullUncompressedForm) {
  auto a = Ipv6Address::parse("2001:0db8:0000:0000:0000:ff00:0042:8329");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "2001:db8::ff00:42:8329");
}

TEST(Ipv6Parse, MixedCase) {
  auto a = Ipv6Address::parse("2001:DB8::A");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "2001:db8::a");
}

TEST(Ipv6Parse, RejectsMalformed) {
  EXPECT_FALSE(Ipv6Address::parse(""));
  EXPECT_FALSE(Ipv6Address::parse(":"));
  EXPECT_FALSE(Ipv6Address::parse(":::"));
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7"));        // 7 groups
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9"));    // 9 groups
  EXPECT_FALSE(Ipv6Address::parse("1::2::3"));              // two "::"
  EXPECT_FALSE(Ipv6Address::parse("12345::"));              // >4 digits
  EXPECT_FALSE(Ipv6Address::parse("g::1"));                 // non-hex
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:"));     // trailing :
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8::"));    // too long
}

TEST(Ipv6Format, Rfc5952LongestRunCompressed) {
  // First of two equal-length zero runs is compressed.
  auto a = Ipv6Address::parse("2001:0:0:1:0:0:0:1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "2001:0:0:1::1");
  // Single zero group is NOT compressed.
  auto b = Ipv6Address::parse("2001:db8:0:1:1:1:1:1");
  ASSERT_TRUE(b);
  EXPECT_EQ(b->to_string(), "2001:db8:0:1:1:1:1:1");
}

TEST(Ipv6Format, RoundTripsRandomAddresses) {
  util::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    Ipv6Address a = Ipv6Address::from_halves(rng.next(), rng.next());
    auto reparsed = Ipv6Address::parse(a.to_string());
    ASSERT_TRUE(reparsed) << a.to_string();
    EXPECT_EQ(*reparsed, a) << a.to_string();
  }
}

TEST(Ipv6Format, RoundTripsSparseAddresses) {
  // Sparse addresses exercise the zero-run compression aggressively.
  util::Rng rng(100);
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t hi = rng.next() & rng.next() & rng.next();
    std::uint64_t lo = rng.next() & rng.next() & rng.next();
    Ipv6Address a = Ipv6Address::from_halves(hi, lo);
    auto reparsed = Ipv6Address::parse(a.to_string());
    ASSERT_TRUE(reparsed) << a.to_string();
    EXPECT_EQ(*reparsed, a) << a.to_string();
  }
}

TEST(Ipv6, HalvesAndIid) {
  Ipv6Address a = Ipv6Address::from_halves(0x20010db812345678ULL,
                                           0xfedcba9876543210ULL);
  EXPECT_EQ(a.hi64(), 0x20010db812345678ULL);
  EXPECT_EQ(a.iid(), 0xfedcba9876543210ULL);
  EXPECT_EQ(a.with_iid(5).iid(), 5ULL);
  EXPECT_EQ(a.with_iid(5).hi64(), a.hi64());
}

TEST(Ipv6, MaskedZeroesHostBits) {
  Ipv6Address a = *Ipv6Address::parse("2001:db8:abcd:ef12:3456:789a:bcde:f012");
  EXPECT_EQ(a.masked(128), a);
  EXPECT_EQ(a.masked(64).to_string(), "2001:db8:abcd:ef12::");
  EXPECT_EQ(a.masked(48).to_string(), "2001:db8:abcd::");
  EXPECT_EQ(a.masked(32).to_string(), "2001:db8::");
  EXPECT_EQ(a.masked(0), Ipv6Address{});
  // Non-byte-aligned lengths.
  EXPECT_EQ(a.masked(33).bytes()[4] & 0x7f, 0);
}

struct PrefixCase {
  const char* text;
  bool valid;
};

class PrefixParse : public ::testing::TestWithParam<PrefixCase> {};

TEST_P(PrefixParse, ParsesOrRejects) {
  auto p = Ipv6Prefix::parse(GetParam().text);
  EXPECT_EQ(p.has_value(), GetParam().valid) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrefixParse,
    ::testing::Values(PrefixCase{"2001:db8::/32", true},
                      PrefixCase{"::/0", true},
                      PrefixCase{"2001:db8::1/128", true},
                      PrefixCase{"2001:db8::/129", false},
                      PrefixCase{"2001:db8::1/64", false},  // host bits set
                      PrefixCase{"2001:db8::", false},      // no length
                      PrefixCase{"junk/32", false},
                      PrefixCase{"2001:db8::/", false},
                      PrefixCase{"2001:db8::/3x", false}));

TEST(Ipv6Prefix, Containment) {
  auto p48 = *Ipv6Prefix::parse("2001:db8:1::/48");
  EXPECT_TRUE(p48.contains(*Ipv6Address::parse("2001:db8:1:ffff::1")));
  EXPECT_FALSE(p48.contains(*Ipv6Address::parse("2001:db8:2::1")));
  auto p56 = *Ipv6Prefix::parse("2001:db8:1:aa00::/56");
  EXPECT_TRUE(p48.contains(p56));
  EXPECT_FALSE(p56.contains(p48));
  EXPECT_TRUE(p48.contains(p48));
}

TEST(Ipv6Prefix, NetworkOfNormalizes) {
  auto a = *Ipv6Address::parse("2400:1:2:345:4:5:6:7");
  EXPECT_EQ(network_of(a, 48).to_string(), "2400:1:2::/48");
  EXPECT_EQ(network_of(a, 56).to_string(), "2400:1:2:300::/56");
  EXPECT_EQ(network_of(a, 64).to_string(), "2400:1:2:345::/64");
}

TEST(Ipv6, HashSpreadsStructuredAddresses) {
  // Sequential low-IID addresses (the hosting pattern) must not collide.
  std::set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    Ipv6Address a = Ipv6Address::from_halves(0x2400000000000000ULL, i);
    hashes.insert(Ipv6AddressHash{}(a));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Ipv6, OrderingIsLexicographic) {
  auto a = *Ipv6Address::parse("2001:db8::1");
  auto b = *Ipv6Address::parse("2001:db8::2");
  auto c = *Ipv6Address::parse("2001:db9::");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_TRUE(Ipv6Address{}.is_unspecified());
  EXPECT_FALSE(a.is_unspecified());
}

}  // namespace
}  // namespace tts::net
