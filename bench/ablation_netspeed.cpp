// Ablation: the netspeed tuning mechanic of Section 3.1. The paper raised
// the operator-configurable weight of its servers "until reaching, at peak
// times, a request rate close to our maximum scanning rate". Sweeping the
// target zone share shows collection scaling ~linearly with the share —
// the knob works, and the per-country skew (Table 7) is invariant to it.
#include <iostream>

#include "core/study.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace tts;

int main() {
  util::TextTable t("Ablation: pool netspeed share vs collection volume");
  t.set_header({"target zone share", "distinct addresses", "NTP requests",
                "IN : NL ratio"});

  std::vector<std::pair<double, std::uint64_t>> outcomes;
  for (double share : {0.05, 0.15, 0.35, 0.60}) {
    auto config = core::make_study_config(core::StudyScale::kTiny);
    config.pool_share = share;
    config.enable_ntp_scans = false;
    config.enable_hitlist_scan = false;
    config.enable_telescope = false;
    config.enable_actors = false;
    core::Study study(config);
    study.run();

    std::uint64_t in_count = 0, nl_count = 0;
    for (const auto& [country, count] : study.per_server_counts()) {
      if (country == "IN") in_count = count;
      if (country == "NL") nl_count = count;
    }
    outcomes.emplace_back(share, study.collector().distinct_addresses());
    t.add_row({util::percent(share, 0),
               util::grouped(study.collector().distinct_addresses()),
               util::grouped(study.collector().total_requests()),
               nl_count ? util::fixed(static_cast<double>(in_count) /
                                          static_cast<double>(nl_count),
                                      0)
                        : "-"});
  }
  t.add_note("Higher netspeed -> more zone traffic lands on our servers;");
  t.add_note("the geographic skew persists at every share.");
  t.render(std::cout);

  bool monotone = true;
  for (std::size_t i = 1; i < outcomes.size(); ++i)
    if (outcomes[i].second <= outcomes[i - 1].second) monotone = false;
  std::cout << "\nShape check (collection grows with netspeed share): "
            << (monotone ? "PASS" : "FAIL") << "\n";
  return monotone ? 0 : 1;
}
