// Microbenchmarks for the hot primitives: address codec, LPM trie, NTP and
// CoAP wire codecs, Levenshtein grouping, RNG, the event queue, and the
// obs instruments riding on every hot path.
#include <benchmark/benchmark.h>

#include "core/study.hpp"
#include "net/ipv6.hpp"
#include "net/routing_table.hpp"
#include "ntp/ntp_packet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/coap.hpp"
#include "proto/mqtt.hpp"
#include "simnet/event_queue.hpp"
#include "util/levenshtein.hpp"
#include "util/rng.hpp"

using namespace tts;

static void BM_Ipv6Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto a = net::Ipv6Address::parse("2001:db8:1234:5678::9abc:def0");
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Ipv6Parse);

static void BM_Ipv6Format(benchmark::State& state) {
  auto a = *net::Ipv6Address::parse("2400:cb00:2048:1::6814:55");
  for (auto _ : state) {
    auto s = a.to_string();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Ipv6Format);

static void BM_RoutingLookup(benchmark::State& state) {
  net::RoutingTable table;
  constexpr std::uint64_t kSeed = 1;
  util::Rng rng(kSeed);
  std::vector<net::Ipv6Address> probes;
  for (int i = 0; i < 1000; ++i) {
    auto addr = net::Ipv6Address::from_halves(
        0x2400000000000000ULL | (rng.next() >> 12), rng.next());
    table.announce(net::Ipv6Prefix(addr, 32 + i % 33), 64500u + i);
    probes.push_back(addr);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto r = table.lookup(probes[i++ % probes.size()]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RoutingLookup);

static void BM_NtpRoundTrip(benchmark::State& state) {
  auto request = ntp::NtpPacket::client_request(simnet::sec(100));
  for (auto _ : state) {
    auto wire = request.serialize();
    auto parsed = ntp::NtpPacket::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_NtpRoundTrip);

static void BM_CoapRoundTrip(benchmark::State& state) {
  auto request = proto::CoapMessage::well_known_core(42, 0x1234);
  for (auto _ : state) {
    auto wire = request.serialize();
    auto parsed = proto::CoapMessage::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_CoapRoundTrip);

static void BM_MqttConnectRoundTrip(benchmark::State& state) {
  proto::MqttConnect connect;
  for (auto _ : state) {
    auto wire = connect.serialize();
    auto parsed = proto::MqttConnect::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_MqttConnectRoundTrip);

static void BM_LevenshteinBounded(benchmark::State& state) {
  std::string a = "3CX Phone System Management Console";
  std::string b = "3CX Webclient Management Console v18";
  for (auto _ : state) {
    auto d = util::levenshtein_bounded(a, b, a.size() / 4);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_LevenshteinBounded);

static void BM_RngStream(benchmark::State& state) {
  constexpr std::uint64_t kSeed = 7;
  util::Rng rng(kSeed);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngStream);

static void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    simnet::EventQueue queue;
    int counter = 0;
    for (int i = 0; i < 1000; ++i)
      queue.schedule_at(simnet::msec(i % 37), [&counter] { ++counter; });
    queue.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_EventQueueChurn);

// ---- obs hot-path overhead -------------------------------------------
// Every pipeline counter is one of these increments; the acceptance bar is
// that they stay in the few-nanosecond range so the always-on instruments
// cost nothing measurable at study scale.

static void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) counter.inc();
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterInc);

static void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram hist{obs::Histogram::exponential(1000, 4.0, 14)};
  std::int64_t v = 1;
  for (auto _ : state) {
    hist.record(v);
    v = (v * 5 + 3) % 100000000;  // walk across the buckets
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_ObsHistogramRecord);

static void BM_TracerSpan(benchmark::State& state) {
  simnet::EventQueue events;
  obs::Tracer tracer(1024);
  tracer.set_sim_clock(&events);
  for (auto _ : state) {
    auto span = tracer.span("bench");
    benchmark::DoNotOptimize(span);
  }
  benchmark::DoNotOptimize(tracer.completed());
}
BENCHMARK(BM_TracerSpan);

static void BM_TracerSpanDisabled(benchmark::State& state) {
  obs::Tracer tracer(1024);
  tracer.set_enabled(false);
  for (auto _ : state) {
    auto span = tracer.span("bench");
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_TracerSpanDisabled);

// Full-pipeline regression check: a kTiny study with the obs block off vs
// on (dispatch timing, probe spans, daily heartbeat). The acceptance bar
// is < 5% wall-clock between the two.
static void BM_TinyStudy(benchmark::State& state) {
  for (auto _ : state) {
    auto config = core::make_study_config(core::StudyScale::kTiny);
    config.obs.enabled = state.range(0) != 0;
    core::Study study(std::move(config));
    study.run();
    benchmark::DoNotOptimize(study.events_executed());
  }
}
BENCHMARK(BM_TinyStudy)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK_MAIN();
