#include "util/stats.hpp"

#include <array>
#include <cassert>

namespace tts::util {

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  double lower = *std::max_element(values.begin(), values.begin() + mid);
  return (lower + upper) / 2.0;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double shannon_entropy(std::span<const std::uint8_t> data) {
  if (data.empty()) return 0.0;
  std::array<std::uint64_t, 256> freq{};
  for (std::uint8_t b : data) ++freq[b];
  double h = 0.0;
  auto n = static_cast<double>(data.size());
  for (std::uint64_t f : freq) {
    if (f == 0) continue;
    double p = static_cast<double>(f) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double normalized_entropy(std::span<const std::uint8_t> data) {
  return shannon_entropy(data) / 8.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double value, std::uint64_t n) {
  if (!std::isfinite(value)) {
    // Casting a NaN-derived index is UB, so non-finite values never reach
    // the cast: NaN is dropped, +-inf clamps to the end bins; both are
    // counted so callers can detect dirty inputs.
    nonfinite_ += n;
    if (std::isnan(value)) return;
    counts_[value < 0 ? 0 : counts_.size() - 1] += n;
    total_ += n;
    return;
  }
  double t = (value - lo_) / (hi_ - lo_);
  auto i = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
  if (i < 0) i = 0;
  if (i >= static_cast<std::int64_t>(counts_.size()))
    i = static_cast<std::int64_t>(counts_.size()) - 1;
  counts_[static_cast<std::size_t>(i)] += n;
  total_ += n;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

}  // namespace tts::util
