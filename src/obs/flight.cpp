#include "obs/flight.hpp"

#include "simnet/event_queue.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace tts::obs {
namespace {

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), kDigits[value & 0xf]);
    value >>= 4;
  } while (value != 0);
  return out;
}

}  // namespace

std::string_view to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kBreakerOpen:
      return "breaker_open";
    case FlightKind::kBreakerHalfOpen:
      return "breaker_half_open";
    case FlightKind::kBreakerClose:
      return "breaker_close";
    case FlightKind::kBreakerShed:
      return "breaker_shed";
    case FlightKind::kFaultInjected:
      return "fault_injected";
    case FlightKind::kSlowDispatch:
      return "slow_dispatch";
    case FlightKind::kRetryStaged:
      return "retry_staged";
    case FlightKind::kRetryDropped:
      return "retry_dropped";
    case FlightKind::kNote:
      return "note";
    case FlightKind::kFaultWindowOpen:
      return "fault_window_open";
    case FlightKind::kFaultWindowClose:
      return "fault_window_close";
    case FlightKind::kRouteWithdrawn:
      return "route_withdrawn";
    case FlightKind::kRouteAnnounced:
      return "route_announced";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {
  ring_.reserve(capacity_);
  notes_.emplace_back();  // NoteId 0 = ""
}

simnet::SimTime FlightRecorder::sim_now() const {
  return events_ ? events_->now() : 0;
}

FlightRecorder::NoteId FlightRecorder::note(std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  for (NoteId id = 0; id < notes_.size(); ++id)
    if (notes_[id] == text) return id;
  notes_.emplace_back(text);
  return static_cast<NoteId>(notes_.size() - 1);
}

void FlightRecorder::record(FlightKind kind, NoteId detail,
                            std::uint64_t trace, std::int64_t a,
                            std::int64_t b, std::int64_t wall_ns) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  FlightEvent ev;
  ev.sim = sim_now();
  ev.wall_ns = wall_ns ? wall_ns : (wall_clock_ ? wall_clock_() : 0);
  ev.trace = trace;
  ev.a = a;
  ev.b = b;
  ev.kind = kind;
  ev.detail = detail;
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[ring_next_] = ev;
    ++overwritten_;
  }
  ring_next_ = (ring_next_ + 1) % capacity_;

  for (TriggerRule& rule : rules_) {
    if (rule.kind != kind) continue;
    std::size_t slot = rule.next;
    rule.next = (rule.next + 1) % rule.burst;
    simnet::SimTime oldest = rule.recent[slot];
    rule.recent[slot] = ev.sim;
    ++rule.seen;
    // The slot we just overwrote held the (burst-1)-events-ago timestamp:
    // once the buffer has wrapped, a full burst inside the window fires.
    if (rule.seen >= rule.burst && ev.sim - oldest <= rule.window)
      trigger_locked(rule.reason);
  }
}

void FlightRecorder::add_trigger(FlightKind kind, std::uint32_t burst,
                                 simnet::SimDuration window,
                                 std::string reason) {
  if (burst == 0) burst = 1;
  TriggerRule rule{kind, burst, window, std::move(reason), {}, 0, 0};
  rule.recent.assign(burst, 0);
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

void FlightRecorder::trigger(std::string_view reason) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  trigger_locked(reason);
}

void FlightRecorder::trigger_locked(std::string_view reason) {
  ++triggers_;
  simnet::SimTime now = sim_now();
  if (dumps_.size() >= max_dumps_ ||
      (last_dump_at_ >= 0 && now - last_dump_at_ < min_dump_gap_)) {
    ++suppressed_;
    return;
  }
  last_dump_at_ = now;
  dumps_.emplace_back(std::string(reason), dump_locked(64));
  if (sink_) sink_(reason, dumps_.back().second);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_locked();
}

std::vector<FlightEvent> FlightRecorder::events_locked() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::dump(std::size_t max_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dump_locked(max_events);
}

std::string FlightRecorder::dump_locked(std::size_t max_events) const {
  std::vector<FlightEvent> all = events_locked();
  std::size_t first = all.size() > max_events ? all.size() - max_events : 0;
  util::TextTable table(util::cat("flight recorder (", all.size() - first,
                                  " of ", recorded_, " events)"));
  table.set_header({"t", "kind", "trace", "detail", "a", "b"},
                   {util::Align::kLeft, util::Align::kLeft,
                    util::Align::kRight, util::Align::kLeft,
                    util::Align::kRight, util::Align::kRight});
  for (std::size_t i = first; i < all.size(); ++i) {
    const FlightEvent& ev = all[i];
    table.add_row({simnet::format_duration(ev.sim),
                   std::string(to_string(ev.kind)),
                   ev.trace ? util::cat("0x", hex64(ev.trace))
                            : std::string("-"),
                   notes_[ev.detail], util::grouped(ev.a),
                   util::grouped(ev.b)});
  }
  if (overwritten_ > 0)
    table.add_note(util::cat("ring overwrote ", overwritten_,
                             " oldest events"));
  return table.to_string();
}

}  // namespace tts::obs
