// Observability: run the tiny study with the obs block enabled and show
// everything tts::obs records along the way — the heartbeat timeline (one
// row per virtual day), the final metrics table (per-protocol scan
// counters, per-server collection counts, event-queue dispatch histogram),
// the span aggregates, machine-readable JSONL / Prometheus dumps, a
// Perfetto-loadable causal trace of probe lifecycles, and the anomaly
// flight recorder's ring.
#include <fstream>
#include <iostream>

#include "core/study.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "util/format.hpp"

using namespace tts;

int main() {
  core::StudyConfig config = core::make_study_config(core::StudyScale::kTiny);
  config.obs.enabled = true;
  config.obs.heartbeat_interval = simnet::hours(24);

  core::Study study(std::move(config));
  std::cout << "Running the tiny study with observability enabled...\n\n";
  study.run();

  // The one-call report: timeline + final metrics + span aggregates.
  std::cout << study.observability_report() << "\n";

  // The same registry, read piecemeal: accessors and exported instruments
  // are the same cells, so these always agree.
  const obs::Registry& metrics = study.metrics();
  std::cout << "Spot checks (accessor == registry):\n";
  std::cout << "  collector.total_requests()  = "
            << study.collector().total_requests() << "\n";
  std::cout << "  ntp_requests (registry)     = "
            << metrics.find_counter("ntp_requests")->value() << "\n";
  const scan::ScanEngine* engine = study.ntp_engine();
  if (engine) {
    std::cout << "  ntp engine probes launched  = "
              << engine->probes_launched() << " (token-bucket wait p95 "
              << engine->token_wait().percentile(0.95) << " us)\n";
  }
  const obs::Histogram* dispatch =
      metrics.find_histogram("simnet_dispatch_wall_ns");
  if (dispatch) {
    std::cout << "  event dispatch wall p50/p95 = "
              << dispatch->percentile(0.5) << " / "
              << dispatch->percentile(0.95) << " ns over "
              << util::grouped(dispatch->count()) << " events\n";
  }

  // Machine-readable exports of the end-of-run snapshot, rolled up the
  // same way the report table is (per-server families keep their top_n
  // members plus one {series=other} aggregate, so cardinality is bounded).
  obs::TableRollup rollup;
  rollup.names = study.config().obs.rollup_names;
  rollup.top_n = study.config().obs.rollup_top_n;
  obs::RegistrySnapshot snap = obs::apply_rollup(
      metrics.snapshot(study.network().now()), rollup);
  std::string jsonl = obs::to_jsonl(snap);
  std::cout << "\nJSONL export: " << snap.values.size()
            << " instruments, " << jsonl.size() << " bytes. First lines:\n";
  std::size_t shown = 0, pos = 0;
  while (shown < 3 && pos < jsonl.size()) {
    std::size_t end = jsonl.find('\n', pos);
    std::cout << "  " << jsonl.substr(pos, end - pos) << "\n";
    pos = end + 1;
    ++shown;
  }
  if (!obs::parse_jsonl(jsonl).has_value()) {
    std::cerr << "JSONL round-trip failed!\n";
    return 1;
  }
  std::cout << "  ... (round-trips through obs::parse_jsonl)\n";

  std::string prom = obs::to_prometheus(snap);
  std::cout << "\nPrometheus export: " << prom.size()
            << " bytes. Sample:\n";
  pos = prom.find("# TYPE scan_probes_launched");
  if (pos != std::string::npos) {
    std::size_t stop = pos;
    for (int lines = 0; lines < 4 && stop != std::string::npos; ++lines)
      stop = prom.find('\n', stop + 1);
    std::cout << prom.substr(pos, stop - pos) << "\n";
  }

  // Causal probe-lifecycle traces on the virtual-time axis: load
  // tts_trace.json at ui.perfetto.dev (or chrome://tracing). Every probe
  // lifecycle (stage -> grant -> launch -> retry -> record) shares one
  // TraceId, so its spans stack on a single async track. Same seed, same
  // bytes: the export holds sim time only.
  std::string trace = obs::to_chrome_trace(study.tracer());
  std::ofstream("tts_trace.json") << trace;
  std::cout << "\nWrote tts_trace.json (" << trace.size()
            << " bytes, " << study.tracer().completed()
            << " spans completed; ring keeps the most recent "
            << study.config().obs.trace_capacity << ")\n";

  // The anomaly flight recorder appends typed, trace-linked events
  // (breaker transitions, sheds, retries, fault injections, slow
  // dispatches) into a bounded ring and dumps itself on trigger rules.
  // Nothing anomalous happens in the pristine tiny study, so trigger a
  // dump by hand — scan_campaign's fault scenarios show the automatic
  // breaker-open and fault-burst dumps.
  obs::FlightRecorder& flight = study.flight();
  flight.trigger("example-walkthrough");
  // ttslint: allow(barrier-only) reason=post-run walkthrough: the study finished before this report
  if (!flight.dumps().empty()) {
    // ttslint: allow(barrier-only) reason=post-run walkthrough: the study finished before this report
    const auto& [reason, text] = flight.dumps().back();
    std::ofstream("tts_flight.txt") << text;
    std::cout << "Wrote tts_flight.txt (trigger: " << reason << ", "
              << flight.recorded() << " events recorded, "
              << flight.overwritten() << " overwritten)\n";
  }
  return 0;
}
