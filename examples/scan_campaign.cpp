// Full study walkthrough: runs the complete pipeline (pool collection,
// real-time scans, hitlist sweep, telescope) and narrates the paper's main
// findings from the measured data. Pass "tiny"/"small"/"medium" to pick a
// scale (default: tiny, a few seconds).
#include <cstring>
#include <iostream>

#include <fstream>

#include "analysis/coap_analysis.hpp"
#include "analysis/security_score.hpp"
#include "analysis/ssh_analysis.hpp"
#include "analysis/title_grouping.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace tts;

int main(int argc, char** argv) {
  core::StudyScale scale = core::StudyScale::kTiny;
  if (argc > 1 && std::strcmp(argv[1], "small") == 0)
    scale = core::StudyScale::kSmall;
  if (argc > 1 && std::strcmp(argv[1], "medium") == 0)
    scale = core::StudyScale::kMedium;

  core::Study study(core::make_study_config(scale));
  std::cout << "Running the full study pipeline...\n";
  study.run();

  std::cout << "\n== Collection ==\n";
  std::cout << "Distinct addresses: "
            << util::grouped(study.collector().distinct_addresses())
            << " from " << util::grouped(study.collector().total_requests())
            << " NTP requests across 11 pool servers.\n";
  for (const auto& [country, count] : study.per_server_counts())
    std::cout << "  " << country << ": " << util::grouped(count) << "\n";

  std::cout << "\n== What only NTP-sourcing finds ==\n";
  std::vector<analysis::TitleObservation> obs;
  for (auto ds : {scan::Dataset::kNtp, scan::Dataset::kHitlist})
    for (auto proto : {scan::Protocol::kHttp, scan::Protocol::kHttps})
      for (const auto* r : study.results().successes(ds, proto))
        if (r->http_status == 200 && r->http_has_title)
          obs.push_back({r->http_title, ds, 1});
  auto groups = analysis::group_titles(obs);
  util::TextTable t;
  t.set_header({"HTTP title group", "NTP", "hitlist"});
  for (std::size_t i = 0; i < groups.size() && i < 8; ++i)
    t.add_row({groups[i].representative, util::grouped(groups[i].ntp),
               util::grouped(groups[i].hitlist)});
  t.render(std::cout);

  std::cout << "\n== Security comparison ==\n";
  auto ntp_score = analysis::security_score(study.results(),
                                            scan::Dataset::kNtp);
  auto hit_score = analysis::security_score(study.results(),
                                            scan::Dataset::kHitlist);
  std::cout << "Secure share: NTP-sourced "
            << util::percent(ntp_score.secure_share()) << " ("
            << util::grouped(ntp_score.total_hosts()) << " hosts) vs hitlist "
            << util::percent(hit_score.secure_share()) << " ("
            << util::grouped(hit_score.total_hosts()) << " hosts)\n";
  std::cout << "Paper: 28.4 % of 73 975 vs 43.5 % of 854 704.\n";

  std::cout << "\n== Who else is NTP-sourcing? ==\n";
  auto report = study.telescope_report();
  for (std::size_t i = 0; i < report.actors.size(); ++i) {
    const auto& a = report.actors[i];
    std::cout << "  actor " << (i + 1) << ": "
              << to_string(a.classification) << ", " << a.ports.size()
              << " ports, median delay "
              << simnet::format_duration(a.median_delay)
              << (a.identified ? ", identifies itself" : ", anonymous")
              << "\n";
  }

  // Second positional argument: write the full structured report there.
  if (argc > 2) {
    std::ofstream out(argv[2]);
    if (!out) {
      std::cerr << "cannot write " << argv[2] << "\n";
      return 1;
    }
    out << core::render_markdown(core::build_report(study));
    std::cout << "\nFull markdown report written to " << argv[2] << "\n";
  }
  return 0;
}
