#include "analysis/iid_classes.hpp"

#include "net/mac.hpp"
#include "util/stats.hpp"

namespace tts::analysis {

std::string_view to_string(IidClass c) {
  switch (c) {
    case IidClass::kZero: return "zero";
    case IidClass::kLastByte: return "last byte only";
    case IidClass::kLastTwoBytes: return "last two bytes";
    case IidClass::kEui64: return "EUI-64";
    case IidClass::kEntropyLow: return "low entropy";
    case IidClass::kEntropyMedium: return "medium entropy";
    case IidClass::kEntropyHigh: return "high entropy";
  }
  return "?";
}

IidClass classify_iid(const net::Ipv6Address& addr) {
  std::uint64_t iid = addr.iid();
  if (iid == 0) return IidClass::kZero;
  if (iid < 0x100) return IidClass::kLastByte;
  if (iid < 0x10000) return IidClass::kLastTwoBytes;
  if (net::iid_looks_like_eui64(iid)) return IidClass::kEui64;

  // Entropy of the 8 IID bytes, normalised by the 3-bit maximum an 8-byte
  // sample can reach (log2 8).
  double h = util::shannon_entropy(addr.iid_bytes()) / 3.0;
  if (h < 0.55) return IidClass::kEntropyLow;
  if (h < 0.85) return IidClass::kEntropyMedium;
  return IidClass::kEntropyHigh;
}

IidDistribution classify_addresses(
    std::span<const net::Ipv6Address> addresses) {
  IidDistribution dist;
  for (const auto& a : addresses) dist.add(classify_iid(a));
  return dist;
}

double cable_dsl_isp_share(std::span<const net::Ipv6Address> addresses,
                           const inet::AsRegistry& registry) {
  if (addresses.empty()) return 0.0;
  std::uint64_t eyeball = 0;
  for (const auto& a : addresses) {
    const inet::AsInfo* as = registry.origin(a);
    if (as && as->category == inet::AsCategory::kCableDslIsp) ++eyeball;
  }
  return static_cast<double>(eyeball) /
         static_cast<double>(addresses.size());
}

}  // namespace tts::analysis
