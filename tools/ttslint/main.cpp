// ttslint CLI: lint files or directory trees of C++ sources.
//
//   ttslint [--json] [--allow-wallclock=<path-suffix>]... <path>...
//
// Directories are walked recursively for .cpp/.cc/.hpp/.h files. When a
// .cpp/.cc has a same-named .hpp/.h next to it, that header's declarations
// seed the type environment (the header is also linted on its own).
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage/IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::string paired_header_for(const fs::path& p) {
  const std::string ext = p.extension().string();
  if (ext != ".cpp" && ext != ".cc") return {};
  for (const char* hext : {".hpp", ".h"}) {
    fs::path header = p;
    header.replace_extension(hext);
    std::string text;
    if (fs::exists(header) && read_file(header, text)) return text;
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  ttslint::Options options;
  bool json = false;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--allow-wallclock=", 0) == 0) {
      options.wallclock_allow.push_back(arg.substr(18));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ttslint [--json] [--allow-wallclock=<suffix>]... "
                   "<file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ttslint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "ttslint: no inputs (see --help)\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path()))
          files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "ttslint: cannot read '" << root.string() << "'\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  int total = 0;
  for (const fs::path& file : files) {
    std::string source;
    if (!read_file(file, source)) {
      std::cerr << "ttslint: cannot read '" << file.string() << "'\n";
      return 2;
    }
    const std::string path = file.generic_string();
    auto findings = ttslint::lint_source(path, source,
                                         paired_header_for(file), options);
    for (const auto& f : findings) {
      std::cout << (json ? ttslint::format_finding_json(f)
                         : ttslint::format_finding(f))
                << "\n";
      ++total;
    }
  }
  if (!json && total > 0)
    std::cerr << "ttslint: " << total << " finding(s)\n";
  return total == 0 ? 0 : 1;
}
