// D3 fixture: raw pointer values as associative keys. Ordering and
// iteration then depend on allocation addresses, which vary run to run.
#include <map>
#include <set>
#include <string>
#include <unordered_map>

struct Node {
  int id = 0;
};

std::map<Node*, int> rank_by_addr;                 // FINDING(pointer-key)
std::set<const Node*> visited;                     // FINDING(pointer-key)
std::unordered_map<const Node*, int> degree;       // FINDING(pointer-key)

// Pointers as *values* are fine: nothing orders by them.
std::map<int, Node*> node_by_id;
std::unordered_map<std::string, Node*> node_by_name;

// Non-pointer keys, including nested templates, are fine.
std::map<std::pair<int, int>, Node*> by_coord;
std::map<std::string, std::map<int, int>> nested;

// Comparisons are not template argument lists.
bool lt(int set_size, int map_size) {
  return set_size < map_size;
}
