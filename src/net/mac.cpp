#include "net/mac.hpp"

#include "util/format.hpp"

namespace tts::net {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  std::array<std::uint8_t, kBytes> bytes{};
  std::size_t pos = 0;
  for (std::size_t i = 0; i < kBytes; ++i) {
    if (pos + 2 > text.size()) return std::nullopt;
    int hi = hex_digit(text[pos]);
    int lo = hex_digit(text[pos + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
    pos += 2;
    if (i + 1 < kBytes) {
      if (pos >= text.size() || (text[pos] != ':' && text[pos] != '-'))
        return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return from_bytes(bytes);
}

std::string MacAddress::to_string() const {
  std::string out;
  out.reserve(17);
  for (std::size_t i = 0; i < kBytes; ++i) {
    if (i != 0) out.push_back(':');
    util::append_hex_byte(out, bytes_[i]);
  }
  return out;
}

std::uint64_t eui64_iid_from_mac(const MacAddress& mac) {
  const auto& b = mac.bytes();
  std::array<std::uint8_t, 8> iid = {
      static_cast<std::uint8_t>(b[0] ^ 0x02),  // flip U/L bit
      b[1], b[2], 0xff, 0xfe, b[3], b[4], b[5]};
  std::uint64_t v = 0;
  for (auto byte : iid) v = (v << 8) | byte;
  return v;
}

bool iid_looks_like_eui64(std::uint64_t iid) {
  return ((iid >> 24) & 0xffff) == 0xfffe;
}

std::optional<MacAddress> mac_from_eui64_iid(std::uint64_t iid) {
  if (!iid_looks_like_eui64(iid)) return std::nullopt;
  std::array<std::uint8_t, MacAddress::kBytes> b = {
      static_cast<std::uint8_t>(((iid >> 56) & 0xff) ^ 0x02),
      static_cast<std::uint8_t>((iid >> 48) & 0xff),
      static_cast<std::uint8_t>((iid >> 40) & 0xff),
      static_cast<std::uint8_t>((iid >> 16) & 0xff),
      static_cast<std::uint8_t>((iid >> 8) & 0xff),
      static_cast<std::uint8_t>(iid & 0xff)};
  return MacAddress::from_bytes(b);
}

std::optional<MacAddress> extract_mac(const Ipv6Address& addr) {
  return mac_from_eui64_iid(addr.iid());
}

std::string_view to_string(MacEmbedding e) {
  switch (e) {
    case MacEmbedding::kNone: return "none";
    case MacEmbedding::kGlobalListed: return "global, listed OUI";
    case MacEmbedding::kGlobalUnlisted: return "global, unlisted OUI";
    case MacEmbedding::kLocal: return "locally administered";
  }
  return "?";
}

}  // namespace tts::net
