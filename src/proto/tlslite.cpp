#include "proto/tlslite.hpp"

#include "net/packet.hpp"

namespace tts::proto {

namespace {

std::vector<std::uint8_t> wrap_record(std::uint8_t type,
                                      const std::vector<std::uint8_t>& body) {
  net::PacketWriter w(body.size() + 3);
  w.u8(type);
  w.u16(static_cast<std::uint16_t>(body.size()));
  w.bytes(body);
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> encode(const ClientHello& hello) {
  net::PacketWriter w;
  w.u8(0x01);  // handshake type: client_hello
  w.u16(hello.version);
  w.str16(hello.sni);
  return wrap_record(kRecordHandshake, w.data());
}

std::vector<std::uint8_t> encode(const ServerHello& hello) {
  net::PacketWriter w;
  w.u8(0x02);  // handshake type: server_hello
  w.u16(hello.version);
  w.u64(hello.cert.fingerprint);
  w.str16(hello.cert.subject);
  w.u8(hello.cert.self_signed ? 1 : 0);
  w.u32(hello.cert.not_before);
  w.u32(hello.cert.not_after);
  return wrap_record(kRecordHandshake, w.data());
}

std::vector<std::uint8_t> encode(const Alert& alert) {
  net::PacketWriter w;
  w.u8(alert.level);
  w.u8(alert.description);
  return wrap_record(kRecordAlert, w.data());
}

std::vector<std::uint8_t> encode_app_data(
    std::span<const std::uint8_t> data) {
  net::PacketWriter w(data.size() + 3);
  w.u8(kRecordAppData);
  w.u16(static_cast<std::uint16_t>(data.size()));
  w.bytes(data);
  return w.take();
}

std::optional<TlsMessage> decode(std::span<const std::uint8_t> wire) {
  try {
    net::PacketReader r(wire);
    std::uint8_t type = r.u8();
    std::uint16_t len = r.u16();
    auto body = r.bytes(len);
    TlsMessage msg;
    msg.wire_size = 3u + len;
    net::PacketReader br(body);
    switch (type) {
      case kRecordHandshake: {
        std::uint8_t hs = br.u8();
        if (hs == 0x01) {
          msg.kind = TlsMessage::Kind::kClientHello;
          msg.client_hello.version = br.u16();
          msg.client_hello.sni = br.str16();
        } else if (hs == 0x02) {
          msg.kind = TlsMessage::Kind::kServerHello;
          msg.server_hello.version = br.u16();
          msg.server_hello.cert.fingerprint = br.u64();
          msg.server_hello.cert.subject = br.str16();
          msg.server_hello.cert.self_signed = br.u8() != 0;
          msg.server_hello.cert.not_before = br.u32();
          msg.server_hello.cert.not_after = br.u32();
        } else {
          return std::nullopt;
        }
        return msg;
      }
      case kRecordAlert:
        msg.kind = TlsMessage::Kind::kAlert;
        msg.alert.level = br.u8();
        msg.alert.description = br.u8();
        return msg;
      case kRecordAppData:
        msg.kind = TlsMessage::Kind::kAppData;
        msg.app_data.assign(body.begin(), body.end());
        return msg;
      default:
        return std::nullopt;
    }
  } catch (const net::ParseError&) {
    return std::nullopt;
  }
}

}  // namespace tts::proto
