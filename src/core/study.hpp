// The end-to-end study pipeline (the paper's whole experimental setup).
//
// Study wires every substrate together: generates the synthetic Internet,
// joins 11 capture-enabled NTP servers to the pool (netspeed-tuned to a
// target zone share, Section 3.1), starts the device runtime, feeds every
// newly collected address into a real-time scan campaign, builds and sweeps
// the hitlist in the final week, and runs the telescope with the two
// third-party actors in parallel. After run(), the accessors expose the raw
// material every table/figure bench consumes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/eui64_analysis.hpp"
#include "core/snapshot.hpp"
#include "hitlist/hitlist.hpp"
#include "hitlist/sweep.hpp"
#include "inet/as_registry.hpp"
#include "inet/population.hpp"
#include "inet/services.hpp"
#include "ntp/collector.hpp"
#include "ntp/monitor.hpp"
#include "ntp/ntp_server.hpp"
#include "ntp/pool.hpp"
#include "obs/flight.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scan/engine.hpp"
#include "scan/results.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/network.hpp"
#include "telescope/actors.hpp"
#include "telescope/classifier.hpp"
#include "telescope/prober.hpp"

namespace tts::core {

/// Opt-in observability for a study run. The metrics registry and the
/// accessor-backing instruments are always live (they cost one atomic add
/// on their hot paths); `enabled` additionally turns on the wall-clock
/// dispatch histogram, span tracing, and the heartbeat timeline.
struct ObservabilityConfig {
  bool enabled = false;
  /// Virtual time between heartbeat snapshots.
  simnet::SimDuration heartbeat_interval = simnet::hours(24);
  std::size_t max_snapshots = 4096;
  /// Completed-span ring capacity (aggregates cover all spans regardless).
  std::size_t trace_capacity = 4096;
  /// Anomaly flight-recorder ring capacity (typed events, trace-linked).
  std::size_t flight_capacity = 2048;
  /// A timed dispatch whose wall time exceeds this is recorded in the
  /// flight ring and triggers a dump (the known ~9 ms tail trips this).
  std::int64_t slow_dispatch_ns = 1'000'000;
  /// Fault-injection burst trigger: this many injections inside the window
  /// dump the flight ring (a scenario's impairment wave in full context).
  std::uint32_t fault_burst = 64;
  simnet::SimDuration fault_burst_window = simnet::sec(1);
  /// Route-flap burst trigger: this many route withdrawals inside the
  /// window dump the flight ring (a flap storm in full context).
  std::uint32_t route_flap_burst = 8;
  simnet::SimDuration route_flap_window = simnet::minutes(1);
  /// Series families the final-metrics table rolls up to their top_n
  /// largest members plus one "other" row (population-proportional families
  /// would otherwise swamp the report).
  std::vector<std::string> rollup_names = {"pool_selections"};
  std::size_t rollup_top_n = 8;
};

struct StudyConfig {
  std::uint64_t seed = 20240720;

  ObservabilityConfig obs;

  inet::PopulationConfig population;
  inet::RuntimeConfig runtime;
  hitlist::SourceConfig hitlist;
  simnet::NetworkConfig network;
  /// Sharded event dispatch: shards > 0 partitions the synthetic Internet
  /// by routed prefix into per-shard queues advanced in parallel between
  /// conservative time-window barriers. Same seed + same shard plan =>
  /// bit-identical reports and checkpoints at EVERY shard count (the shard
  /// count is a performance knob, not a semantic one). 0 = the classic
  /// single-queue dispatcher. A zero lookahead defaults to the network's
  /// minimum latency.
  simnet::ShardPlan shards;
  /// Scripted impairments installed into the network before traffic starts
  /// (empty = pristine). See simnet/fault.hpp for the scenario grammar.
  simnet::FaultScenario faults;
  /// Scripted BGP-style reachability plane (empty = everything routed).
  /// Consulted before the fault plane on every send/connect; see
  /// simnet/route.hpp. Scenarios needing generated artifacts can instead
  /// install from on_built via network().install_routes(...).
  simnet::RouteScenario routes;

  /// Countries hosting our capture servers (default: the paper's 11).
  std::vector<std::string> server_countries;
  /// Target share of each zone's traffic our server receives after
  /// netspeed tuning.
  double pool_share = 0.35;
  /// Aggregate netspeed of third-party servers per zone.
  double background_netspeed = 3000;

  /// Aggregate probe budget across BOTH engines (one shared uplink, the
  /// paper's Section 3 setup): the NTP feed and the hitlist sweep draw
  /// weighted fair shares of this single rate.
  double scan_pps = 2000;
  /// Fair-share weights on the shared budget. An idle engine's share is
  /// lent to the busy one and reclaimed within about one token gap.
  double ntp_scan_weight = 1.0;
  double hitlist_scan_weight = 1.0;
  /// Per-dataset cap on each engine's staged probe intents: bounds the
  /// pending queue (and memory) regardless of hitlist size; a full lane
  /// pushes back on the feed instead of queueing (scan_backpressure_events).
  std::size_t scan_max_pending = 4096;
  /// Cap on the study-side buffer of collector addresses refused with
  /// kQueueFull. Beyond it addresses are dropped and counted
  /// (scan_overflow_dropped) instead of growing the deque without bound.
  std::size_t overflow_cap = 65536;
  simnet::SimTime hitlist_scan_start = simnet::days(21);
  /// Retry schedule for timed-out probes, applied to both engines
  /// (default: no retries — probes tally their first timeout).
  scan::RetryPolicy scan_retry;
  /// Per-routed-prefix circuit breaking on both engines (default off).
  scan::BreakerConfig scan_breaker;

  bool enable_ntp_scans = true;
  bool enable_hitlist_scan = true;
  bool enable_telescope = true;
  bool enable_actors = true;
  /// Run the pool-monitoring model against every pool server: misses decay
  /// a server's score out of rotation, recoveries promote it back
  /// (exercised end to end by the fault-injection harness).
  bool enable_pool_monitor = false;
  /// Monitor knobs (vantage is allocated by the study; duration is clamped
  /// to the collection window).
  ntp::PoolMonitorConfig pool_monitor;

  /// Runs after every component is built (registry, population, pool,
  /// engines), right before the event loop: fault-injection scenarios that
  /// need generated artifacts (an eyeball prefix, our servers' addresses)
  /// script themselves here via Study::network().install_faults(...).
  std::function<void(class Study&)> on_built;

  /// Virtual time allowed after the collection window for in-flight scans
  /// and delayed covert probes to finish.
  simnet::SimDuration drain = simnet::days(3);

  /// Sim time at which run() captures a data-plane checkpoint
  /// (checkpoint_bytes() after the run; 0 = no checkpoint). A resumed run
  /// (resume_from) must use the same checkpoint_at as the run that wrote
  /// the snapshot, so both runs schedule the identical event sequence.
  simnet::SimTime checkpoint_at = 0;
};

/// Ready-made scales. kTiny keeps unit tests fast; kSmall is the default
/// bench scale; kMedium trades minutes of runtime for tighter statistics.
enum class StudyScale { kTiny, kSmall, kMedium };
StudyConfig make_study_config(StudyScale scale);

class Study {
 public:
  explicit Study(StudyConfig config);
  ~Study();

  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  /// Execute the full pipeline. Call once.
  void run();

  /// Resume a checkpointed study: call before run() with the bytes a prior
  /// run's checkpoint_bytes() produced (same config, same seed). run()
  /// then replays deterministically to the checkpoint time, verifies every
  /// data-plane section against the snapshot byte for byte (throws
  /// SnapshotDivergence naming the diverged subsystems otherwise), and
  /// continues to the horizon — the final report is byte-identical to an
  /// uninterrupted run's.
  void resume_from(std::string_view snapshot_bytes);

  /// Serialized snapshot captured at config().checkpoint_at (empty until
  /// the run reaches that time, or when checkpointing is off).
  const std::string& checkpoint_bytes() const { return checkpoint_; }

  // ---- raw material for the analyses ----
  const StudyConfig& config() const { return config_; }
  const inet::AsRegistry& registry() const { return *registry_; }
  const inet::Population& population() const { return *population_; }
  const ntp::AddressCollector& collector() const { return collector_; }
  const ntp::NtpPool& pool() const { return pool_; }
  const hitlist::Hitlist& hitlist() const { return hitlist_; }
  const scan::ResultStore& results() const { return results_; }
  const analysis::Eui64Accumulator& eui64() const { return eui64_; }
  const simnet::Network& network() const { return *network_; }
  simnet::Network& network() { return *network_; }

  /// Snapshot of all NTP-collected addresses.
  std::vector<net::Ipv6Address> ntp_addresses() const {
    return collector_.snapshot();
  }

  /// Per-server distinct address counts in deployment order (Table 7).
  std::vector<std::pair<std::string, std::uint64_t>> per_server_counts()
      const;

  /// Overall NTP-campaign hit rate: successful probes / probes sent
  /// (Section 6 reports 0.42 permille at Internet scale).
  double ntp_hit_rate() const;

  /// Telescope outcome (empty when the telescope was disabled).
  telescope::ClassifierReport telescope_report() const;
  const telescope::PoolProber* prober() const { return prober_.get(); }
  const std::vector<std::unique_ptr<telescope::ScanningActor>>& actors()
      const {
    return actors_;
  }

  const scan::ScanEngine* ntp_engine() const { return ntp_engine_.get(); }
  const scan::ScanEngine* hitlist_engine() const {
    return hitlist_engine_.get();
  }
  /// The pool monitor (nullptr unless config().enable_pool_monitor).
  const ntp::PoolMonitor* pool_monitor() const { return monitor_.get(); }
  /// The shared pacing budget both engines draw from (nullptr when all
  /// scanning is disabled). Non-const so tests can attach a grant observer.
  scan::SharedBudget* scan_budget() { return scan_budget_.get(); }
  const scan::SharedBudget* scan_budget() const { return scan_budget_.get(); }
  /// Collector addresses dropped because the overflow buffer hit its cap.
  std::uint64_t overflow_dropped() const { return overflow_dropped_.value(); }
  /// Current depth of the collector-overflow buffer (<= overflow_cap).
  std::size_t overflow_depth() const { return ntp_overflow_.size(); }
  /// The chunked feeder driving the hitlist sweep (nullptr before the
  /// sweep starts or when the hitlist scan is disabled).
  const hitlist::SweepFeeder* hitlist_sweeper() const {
    return sweeper_.get();
  }

  std::uint64_t events_executed() const { return events_.executed(); }

  // ---- observability ----
  const obs::Registry& metrics() const { return metrics_; }
  obs::Registry& metrics() { return metrics_; }
  const obs::Tracer& tracer() const { return tracer_; }
  /// Anomaly flight recorder (disabled unless config().obs.enabled).
  /// Non-const so tests and tools can trigger an on-demand dump.
  const obs::FlightRecorder& flight() const { return flight_; }
  obs::FlightRecorder& flight() { return flight_; }
  /// Heartbeat timeline (nullptr unless config().obs.enabled).
  const obs::Heartbeat* heartbeat() const { return heartbeat_.get(); }

  /// Full human-readable report: final metrics table, heartbeat timeline
  /// (when enabled) and span aggregates.
  std::string observability_report() const;
  /// The key per-day progress columns the timeline table shows.
  static std::vector<std::string> timeline_columns();

 private:
  void build_pool();
  void build_telescope();
  void build_shards();
  net::Ipv6Address allocate_infra_address(const std::string& country,
                                          std::uint16_t tag);
  /// `at` is the nominal checkpoint time: at a sharded barrier the queue
  /// sits between windows, so the event's own timestamp is passed in
  /// rather than read back from the clock.
  // ttslint: barrier_only
  StudySnapshot capture_snapshot(simnet::SimTime at) const;
  /// Replays the snapshot against live state; only sound between windows.
  // ttslint: barrier_only
  void verify_restore(const StudySnapshot& live) const;

  StudyConfig config_;
  util::Rng rng_;

  // Declared before every instrumented component so the registry outlives
  // them all (members destroy in reverse order): a component's destructor
  // may drop its instruments from a still-live registry.
  obs::Registry metrics_;
  mutable obs::Tracer tracer_;
  obs::FlightRecorder flight_;

  simnet::EventQueue events_;
  std::unique_ptr<simnet::Network> network_;
  /// Address -> event-domain map (domain 1+i per AS, infra pinned to 0).
  /// Network holds a pointer; populated by build_shards().
  simnet::ShardMap shard_map_;
  std::optional<inet::AsRegistry> registry_;
  std::optional<inet::Population> population_;

  ntp::NtpPool pool_;
  ntp::AddressCollector collector_;
  std::vector<std::unique_ptr<ntp::NtpServer>> our_servers_;
  std::vector<std::unique_ptr<ntp::NtpServer>> background_servers_;
  std::unique_ptr<ntp::PoolMonitor> monitor_;

  std::unique_ptr<inet::InternetRuntime> runtime_;
  hitlist::Hitlist hitlist_;
  /// Per-AS build slices of a sharded hitlist build (index = as_index);
  /// each slot is written by exactly one domain, merged on domain 0.
  std::vector<std::vector<hitlist::PartialEntry>> hitlist_partials_;

  scan::ResultStore results_;
  /// One token source for both engines (created in the constructor so
  /// harness tests can attach a grant observer before run()); declared
  /// before the engines, which hold pointers into it.
  std::unique_ptr<scan::SharedBudget> scan_budget_;
  std::unique_ptr<scan::ScanEngine> ntp_engine_;
  std::unique_ptr<scan::ScanEngine> hitlist_engine_;
  std::unique_ptr<hitlist::SweepFeeder> sweeper_;
  /// Collector addresses refused with kQueueFull, drained back into the
  /// NTP engine via a pull source; bounded by config_.overflow_cap
  /// (drops beyond it are counted, not silent).
  std::deque<net::Ipv6Address> ntp_overflow_;
  bool ntp_overflow_active_ = false;
  obs::Counter overflow_dropped_;

  analysis::Eui64Accumulator eui64_;

  std::unique_ptr<telescope::PoolProber> prober_;
  std::vector<std::unique_ptr<telescope::ScanningActor>> actors_;

  std::unique_ptr<obs::Heartbeat> heartbeat_;

  /// Parsed snapshot a resumed run verifies against (set by resume_from).
  std::optional<StudySnapshot> restore_;
  /// Serialized snapshot captured at config_.checkpoint_at.
  std::string checkpoint_;

  std::uint32_t next_infra_ = 1;
  bool ran_ = false;
};

}  // namespace tts::core
