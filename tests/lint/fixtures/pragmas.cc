// Pragma-grammar fixture: suppression placement, malformed pragmas, and
// stale pragmas. (FINDING markers appear inside some pragma comments; the
// fixture harness reads markers textually, the linter does not care.)
#include <mutex>
#include <unordered_map>
#include <vector>

std::unordered_map<int, int> table;  // FINDING(shared-state)

// Own-line pragma covers the next code line.
std::vector<int> own_line_suppressed() {
  std::vector<int> out;
  // ttslint: allow(unordered-iter) reason=fixture exercises own-line pragmas
  for (const auto& [k, v] : table) {
    out.push_back(v);
  }
  return out;
}

// Trailing pragma covers its own line.
std::vector<int> trailing_suppressed() {
  std::vector<int> out;
  for (const auto& [k, v] : table) {  // ttslint: allow(unordered-iter) reason=fixture exercises trailing pragmas
    out.push_back(v);
  }
  return out;
}

// A multi-rule pragma is "used" if any listed rule fires on its line.
std::vector<int> multi_rule_suppressed() {
  std::vector<int> out;
  // ttslint: allow(unordered-iter, wall-clock) reason=fixture multi-rule list
  for (const auto& [k, v] : table) {
    out.push_back(v);
  }
  return out;
}

// Unknown rule id.
// ttslint: allow(made-up-rule) reason=will not parse FINDING(bad-pragma)
constexpr int x1 = 0;

// Missing reason clause entirely.
// ttslint: allow(wall-clock) FINDING(bad-pragma)
constexpr int x2 = 0;

// Empty reason text; the bad pragma sits on the next line. FINDING-NEXT(bad-pragma)
// ttslint: allow(wall-clock) reason=
constexpr int x3 = 0;

// Well-formed but suppresses nothing on its target line.
// ttslint: allow(pointer-key) reason=nothing fires here FINDING(unused-pragma)
constexpr int x4 = 0;

// A pragma does NOT cover findings two lines below.
// ttslint: allow(unordered-iter) reason=too far away FINDING(unused-pragma)
constexpr int spacer = 0;
std::vector<int> not_covered() {
  std::vector<int> out;
  for (const auto& [k, v] : table) {  // FINDING(unordered-iter)
    out.push_back(v);
  }
  return out;
}

// The concurrency rules participate in the same pragma grammar.
void confined_primitive() {
  std::mutex mu;  // ttslint: allow(thread-confine) reason=fixture exercises C-rule suppression
  // Both primitives on the line are flagged when nothing suppresses them.
  std::lock_guard<std::mutex> lk(mu);  // FINDING(thread-confine) FINDING(thread-confine)
}

int pragma_suppressed_static() {
  // ttslint: allow(shared-state) reason=fixture exercises C-rule suppression
  static int calls = 0;
  return ++calls;
}
