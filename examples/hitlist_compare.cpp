// Hitlist-methodology comparison ("Seeds of Scanning"-style): build the
// hitlist several times with individual sources disabled and measure what
// each source contributes — entries, responsive entries, structured IIDs,
// eyeball coverage. Shows why hitlists skew toward servers/infrastructure
// no matter how they are assembled, the premise of the paper.
#include <iostream>

#include "analysis/iid_classes.hpp"
#include "hitlist/hitlist.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace tts;

namespace {

struct Variant {
  const char* name;
  hitlist::SourceConfig config;
};

}  // namespace

int main() {
  auto registry = inet::AsRegistry::generate({{}, 2024});
  inet::PopulationConfig pc;
  pc.device_scale = 0.3;
  pc.seed = 51;
  auto population = inet::Population::generate(registry, pc);

  hitlist::SourceConfig base;
  base.routers_per_prefix = 12;
  base.aliased_samples = 3000;

  auto no_traceroute = base;
  no_traceroute.routers_per_prefix = 0;
  auto no_tga = base;
  no_tga.tga_per_seed = 0;
  auto no_alias = base;
  no_alias.aliased_samples = 0;
  auto no_stale = base;
  no_stale.stale_fraction = 0;

  const Variant variants[] = {
      {"all sources", base},          {"without traceroute", no_traceroute},
      {"without TGA", no_tga},        {"without aliased region", no_alias},
      {"without stale entries", no_stale},
  };

  util::TextTable t("Hitlist composition by source (ablated builds)");
  t.set_header({"variant", "entries", "responsive", "structured IIDs",
                "eyeball AS share"});
  for (const auto& variant : variants) {
    auto list =
        hitlist::HitlistBuilder::build(population, nullptr, variant.config);
    auto dist = analysis::classify_addresses(list.full);
    double structured = dist.fraction(analysis::IidClass::kZero) +
                        dist.fraction(analysis::IidClass::kLastByte) +
                        dist.fraction(analysis::IidClass::kLastTwoBytes);
    double eyeball =
        analysis::cable_dsl_isp_share(list.full, registry);
    t.add_row({variant.name, util::grouped(list.full.size()),
               util::grouped(list.public_list.size()),
               util::percent(structured), util::percent(eyeball)});
  }
  t.add_note("Traceroute injects structured router IIDs; the aliased region "
             "inflates responsive counts; none of the sources reach the "
             "dynamic end-user space NTP-sourcing sees.");
  t.render(std::cout);

  // Source provenance of the full build.
  auto list = hitlist::HitlistBuilder::build(population, nullptr, base);
  std::cout << "\nProvenance of the full build:\n";
  for (const auto& [source, count] : list.counts_by_source()) {
    std::cout << "  " << util::pad_right(std::string(to_string(source)), 12)
              << util::grouped(count) << "\n";
  }
  return 0;
}
