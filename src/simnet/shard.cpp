#include "simnet/shard.hpp"

namespace tts::simnet {

void ShardMap::pin(const net::Ipv6Address& addr, DomainId domain) {
  pins_[addr] = domain;
  note(domain);
}

void ShardMap::map_prefix(const net::Ipv6Prefix& prefix, DomainId domain) {
  table_.announce(prefix, static_cast<net::AsNumber>(domain));
  note(domain);
}

DomainId ShardMap::domain_of(const net::Ipv6Address& addr) const {
  auto pin = pins_.find(addr);
  if (pin != pins_.end()) return pin->second;
  if (auto hit = table_.lookup(addr)) return static_cast<DomainId>(*hit);
  return 0;
}

}  // namespace tts::simnet
