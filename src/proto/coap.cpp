#include "proto/coap.hpp"

#include <algorithm>

#include "net/packet.hpp"

namespace tts::proto {

std::vector<std::uint8_t> CoapMessage::serialize() const {
  net::PacketWriter w;
  w.u8(static_cast<std::uint8_t>(
      (1u << 6) |  // version 1
      (static_cast<std::uint8_t>(type) << 4) |
      (token.size() & 0x0f)));
  w.u8(code);
  w.u16(message_id);
  w.bytes(token);

  // Options must be emitted in ascending option-number order with delta
  // encoding; we only emit Uri-Path (11) then Content-Format (12).
  std::uint16_t last_option = 0;
  auto emit_option = [&](std::uint16_t number,
                         std::span<const std::uint8_t> value) {
    std::uint16_t delta = number - last_option;
    last_option = number;
    std::uint8_t delta_nibble = delta < 13 ? static_cast<std::uint8_t>(delta)
                                           : 13;
    std::uint8_t len_nibble =
        value.size() < 13 ? static_cast<std::uint8_t>(value.size()) : 13;
    w.u8(static_cast<std::uint8_t>((delta_nibble << 4) | len_nibble));
    if (delta_nibble == 13) w.u8(static_cast<std::uint8_t>(delta - 13));
    if (len_nibble == 13) w.u8(static_cast<std::uint8_t>(value.size() - 13));
    w.bytes(value);
  };

  for (const auto& segment : uri_path) {
    emit_option(kOptionUriPath,
                std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(segment.data()),
                    segment.size()));
  }
  if (code == kCoapContent) {
    const std::uint8_t cf = kContentFormatLinkFormat;
    emit_option(kOptionContentFormat, std::span<const std::uint8_t>(&cf, 1));
  }
  if (!payload.empty()) {
    w.u8(0xFF);
    w.bytes(payload);
  }
  return w.take();
}

std::optional<CoapMessage> CoapMessage::parse(
    std::span<const std::uint8_t> wire) {
  try {
    net::PacketReader r(wire);
    std::uint8_t head = r.u8();
    if ((head >> 6) != 1) return std::nullopt;  // version
    CoapMessage m;
    m.type = static_cast<CoapType>((head >> 4) & 0x3);
    std::uint8_t tkl = head & 0x0f;
    if (tkl > 8) return std::nullopt;
    m.code = r.u8();
    m.message_id = r.u16();
    auto tok = r.bytes(tkl);
    m.token.assign(tok.begin(), tok.end());

    std::uint16_t option = 0;
    while (r.remaining() > 0) {
      std::uint8_t byte = r.u8();
      if (byte == 0xFF) {
        auto rest = r.bytes(r.remaining());
        m.payload.assign(rest.begin(), rest.end());
        break;
      }
      std::uint16_t delta = byte >> 4;
      std::uint16_t len = byte & 0x0f;
      if (delta == 15 || len == 15) return std::nullopt;
      if (delta == 13) delta = 13 + r.u8();
      if (delta == 14) return std::nullopt;  // 16-bit deltas unused here
      if (len == 13) len = 13 + r.u8();
      option += delta;
      auto value = r.bytes(len);
      if (option == kOptionUriPath)
        m.uri_path.emplace_back(value.begin(), value.end());
      // Other options (Content-Format etc.) are tolerated and skipped.
    }
    return m;
  } catch (const net::ParseError&) {
    return std::nullopt;
  }
}

CoapMessage CoapMessage::well_known_core(std::uint16_t message_id,
                                         std::uint64_t token) {
  CoapMessage m;
  m.type = CoapType::kConfirmable;
  m.code = kCoapGet;
  m.message_id = message_id;
  for (int i = 0; i < 4; ++i)
    m.token.push_back(static_cast<std::uint8_t>(token >> (24 - 8 * i)));
  m.uri_path = {".well-known", "core"};
  return m;
}

std::string link_format(const std::vector<std::string>& resources) {
  std::string out;
  for (const auto& res : resources) {
    if (!out.empty()) out += ',';
    out += '<' + res + '>';
  }
  return out;
}

std::vector<std::string> parse_link_format(std::string_view payload) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t open = payload.find('<', pos);
    if (open == std::string_view::npos) break;
    std::size_t close = payload.find('>', open);
    if (close == std::string_view::npos) break;
    out.emplace_back(payload.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  return out;
}

}  // namespace tts::proto
