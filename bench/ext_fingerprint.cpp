// Extension (Section 6 future work): multi-signal host fingerprinting for
// tighter unique-host bounds than cert/key dedup alone.
#include "analysis/fingerprint.hpp"
#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();

  util::TextTable t("Extension: unique-host bounds (HTTP+SSH endpoints)");
  t.set_header({"Dataset", "addresses (upper)", "key dedup (lower)",
                "multi-signal estimate"});
  analysis::HostBounds ntp = analysis::estimate_hosts(
      study.results(), scan::Dataset::kNtp, study.registry());
  analysis::HostBounds hit = analysis::estimate_hosts(
      study.results(), scan::Dataset::kHitlist, study.registry());
  t.add_row({"Our Data", util::grouped(ntp.upper), util::grouped(ntp.lower),
             util::grouped(ntp.estimate)});
  t.add_row({"TUM IPv6 Hitlist", util::grouped(hit.upper),
             util::grouped(hit.lower), util::grouped(hit.estimate)});
  t.add_note("The paper bounds hosts below by unique certs/keys and above "
             "by addresses; this estimator splits fleet-shared keys per "
             "site and merges prefix-churned addresses via embedded MACs.");
  t.render(std::cout);

  double tightening =
      ntp.upper > ntp.lower
          ? 1.0 - static_cast<double>(ntp.upper - ntp.estimate) /
                      static_cast<double>(ntp.upper - ntp.lower)
          : 0.0;
  std::cout << "\nNTP-side estimate sits "
            << util::percent(1.0 - tightening)
            << " of the way from the upper toward the lower bound.\n";

  bool pass = ntp.lower <= ntp.estimate && ntp.estimate <= ntp.upper &&
              hit.lower <= hit.estimate && hit.estimate <= hit.upper &&
              ntp.lower > 0;
  std::cout << "Shape check (lower <= estimate <= upper): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
