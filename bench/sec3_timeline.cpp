// Section 3.2: "we see a constant rate of new addresses over the complete
// collection period" — the daily first-sighting timeline of the collector.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "core/study.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace tts;

int main() {
  auto config = core::make_study_config(core::StudyScale::kTiny);
  config.runtime.duration = simnet::days(14);
  config.hitlist_scan_start = simnet::days(12);
  config.enable_hitlist_scan = false;
  config.enable_telescope = false;
  config.enable_actors = false;
  // The perf-smoke lane compares this binary's sample against the
  // committed BENCH_sec3_timeline.json, so the dispatch profiler must be
  // on regardless of the epilogue setting.
  config.obs.enabled = true;
  core::Study study(config);
  std::int64_t t0 = bench::bench_wall_ns();
  study.run();
  double wall_seconds =
      static_cast<double>(bench::bench_wall_ns() - t0) / 1e9;
  bench::emit_bench_json("sec3_timeline", study, wall_seconds, "tiny");

  const auto& daily = study.collector().daily_new();
  std::vector<std::pair<std::int64_t, std::uint64_t>> days(daily.begin(),
                                                           daily.end());
  std::sort(days.begin(), days.end());

  util::TextTable t("Section 3.2: new distinct addresses per day");
  t.set_header({"day", "new addresses", "bar"});
  std::uint64_t peak = 1;
  for (const auto& [day, n] : days) peak = std::max(peak, n);
  for (const auto& [day, n] : days) {
    std::string bar(static_cast<std::size_t>(50.0 * static_cast<double>(n) /
                                             static_cast<double>(peak)),
                    '#');
    t.add_row({std::to_string(day), util::grouped(n), bar});
  }
  t.add_note("Paper: the rate of new addresses stays roughly constant over "
             "four weeks (dynamic readdressing keeps supplying fresh ones).");
  t.render(std::cout);

  // Shape: after the first day (cold start), daily new counts stay within
  // a factor of ~3 of each other — no collapse toward zero.
  std::uint64_t lo = ~0ULL, hi = 0;
  for (std::size_t i = 1; i + 1 < days.size(); ++i) {
    lo = std::min(lo, days[i].second);
    hi = std::max(hi, days[i].second);
  }
  bool pass = days.size() >= 10 && lo > 0 && hi < lo * 4;
  std::cout << "\nShape check (no diminishing-returns collapse within the "
               "window): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
