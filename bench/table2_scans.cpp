// Table 2: successful scans by protocol — responsive addresses, TLS share,
// and unique certificates / host keys, NTP-sourced vs TUM IPv6 Hitlist.
#include <unordered_set>

#include "common.hpp"

using namespace tts;

namespace {

struct ProtocolRow {
  std::string label;
  std::uint64_t addrs = 0;
  std::uint64_t addrs_tls = 0;
  std::uint64_t certs = 0;
};

// HTTP combines ports 80+443 (as the paper's row does); MQTT/AMQP combine
// plain+TLS ports; SSH counts host keys; CoAP has no TLS column.
ProtocolRow http_row(const scan::ResultStore& results, scan::Dataset ds) {
  ProtocolRow row{"HTTP (80, 443)"};
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> addrs, tls;
  std::unordered_set<std::uint64_t> certs;
  for (const auto* r : results.successes(ds, scan::Protocol::kHttp))
    addrs.insert(r->target);
  for (const auto* r : results.successes(ds, scan::Protocol::kHttps)) {
    addrs.insert(r->target);
    tls.insert(r->target);
    if (r->certificate) certs.insert(r->certificate->fingerprint);
  }
  // TLS-failed hosts on 443 still count as HTTP-responsive when port 80
  // answered; the tally above already covers that via the kHttp set.
  row.addrs = addrs.size();
  row.addrs_tls = tls.size();
  row.certs = certs.size();
  return row;
}

ProtocolRow broker_row(const scan::ResultStore& results, scan::Dataset ds,
                       scan::Protocol plain, scan::Protocol tls_proto,
                       std::string label) {
  ProtocolRow row{std::move(label)};
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> addrs, tls;
  std::unordered_set<std::uint64_t> certs;
  for (const auto* r : results.successes(ds, plain)) addrs.insert(r->target);
  for (const auto* r : results.successes(ds, tls_proto)) {
    addrs.insert(r->target);
    tls.insert(r->target);
    if (r->certificate) certs.insert(r->certificate->fingerprint);
  }
  row.addrs = addrs.size();
  row.addrs_tls = tls.size();
  row.certs = certs.size();
  return row;
}

ProtocolRow ssh_row(const scan::ResultStore& results, scan::Dataset ds) {
  ProtocolRow row{"SSH (22)"};
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> addrs;
  std::unordered_set<std::uint64_t> keys;
  for (const auto* r : results.successes(ds, scan::Protocol::kSsh)) {
    addrs.insert(r->target);
    if (r->ssh_hostkey) keys.insert(*r->ssh_hostkey);
  }
  row.addrs = addrs.size();
  row.certs = keys.size();
  return row;
}

ProtocolRow coap_row(const scan::ResultStore& results, scan::Dataset ds) {
  ProtocolRow row{"CoAP (5683 UDP)"};
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> addrs;
  for (const auto* r : results.successes(ds, scan::Protocol::kCoap))
    addrs.insert(r->target);
  row.addrs = addrs.size();
  return row;
}

std::string pct(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return util::percent(static_cast<double>(part) /
                       static_cast<double>(whole), 1);
}

}  // namespace

int main() {
  core::Study& study = bench::shared_study();
  const auto& results = study.results();

  util::TextTable t("Table 2: successful scans by protocol");
  t.set_header({"Protocol", "NTP #Addrs", "NTP w/TLS", "NTP #Certs/Keys",
                "Hitlist #Addrs", "Hit w/TLS", "Hit #Certs/Keys"});

  std::uint64_t overlap_checks = 0;
  auto add = [&](auto maker, auto&&... args) {
    ProtocolRow ntp = maker(results, scan::Dataset::kNtp, args...);
    ProtocolRow hit = maker(results, scan::Dataset::kHitlist, args...);
    t.add_row({ntp.label, util::grouped(ntp.addrs),
               ntp.addrs_tls ? pct(ntp.addrs_tls, ntp.addrs) : "-",
               ntp.certs ? util::grouped(ntp.certs) : "-",
               util::grouped(hit.addrs),
               hit.addrs_tls ? pct(hit.addrs_tls, hit.addrs) : "-",
               hit.certs ? util::grouped(hit.certs) : "-"});
    ++overlap_checks;
    return std::make_pair(ntp, hit);
  };

  auto http = add([](const scan::ResultStore& r, scan::Dataset d) {
    return http_row(r, d);
  });
  auto ssh = add([](const scan::ResultStore& r, scan::Dataset d) {
    return ssh_row(r, d);
  });
  auto mqtt = add(
      [](const scan::ResultStore& r, scan::Dataset d) {
        return broker_row(r, d, scan::Protocol::kMqtt,
                          scan::Protocol::kMqtts, "MQTT (1883, 8883)");
      });
  auto amqp = add(
      [](const scan::ResultStore& r, scan::Dataset d) {
        return broker_row(r, d, scan::Protocol::kAmqp,
                          scan::Protocol::kAmqps, "AMQP (5672, 5671)");
      });
  auto coap = add([](const scan::ResultStore& r, scan::Dataset d) {
    return coap_row(r, d);
  });

  t.add_note("Paper: HTTP 508 799 vs 379 136 782; SSH 293 229 vs 2 218 005;");
  t.add_note("MQTT 4 316 vs 48 987; AMQP 1 152 vs 3 083; CoAP 5 093 vs 1 511.");
  bench::print_scale_note(t);
  t.render(std::cout);

  // Shape checks: hitlist wins everywhere except CoAP (Section 4.2).
  bool shapes = http.second.addrs > http.first.addrs &&
                ssh.second.addrs > ssh.first.addrs &&
                mqtt.second.addrs > mqtt.first.addrs &&
                amqp.second.addrs > amqp.first.addrs &&
                coap.first.addrs > coap.second.addrs;
  std::cout << "\nShape check: hitlist leads all protocols except CoAP: "
            << (shapes ? "PASS" : "FAIL") << "\n";
  return shapes ? 0 : 1;
}
