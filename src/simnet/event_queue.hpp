// Discrete-event engine: a time-ordered queue of callbacks.
//
// Determinism contract: events at equal timestamps fire in scheduling order
// (a monotonic sequence number breaks ties), so runs are reproducible
// regardless of heap internals.
//
// Observability: the executed counter and pending-depth gauge are always
// live (they are the queue's own state); attach_metrics() additionally
// enrols them in an obs::Registry and can enable a wall-clock dispatch
// histogram (how long each callback runs) — wall readings are
// observational only and never influence the virtual clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "simnet/time.hpp"

namespace tts::obs {
class FlightRecorder;
}

namespace tts::simnet {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  /// Dispatch category for wall-time attribution (register_category).
  /// Category 0 is the pre-registered "other" bucket.
  using CategoryId = std::uint16_t;

  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now if in the past).
  void schedule_at(SimTime at, Callback fn);
  /// Schedule `fn` after `delay`.
  void schedule_in(SimDuration delay, Callback fn);
  /// Category-attributed variants: the event's execution is counted (and,
  /// when dispatch timing is on, wall-timed) under `category`.
  void schedule_at(SimTime at, CategoryId category, Callback fn);
  void schedule_in(SimDuration delay, CategoryId category, Callback fn);

  /// Run events until the queue drains or `until` is passed; the clock ends
  /// at the later of its current value and the last executed event (or
  /// `until` if given and reached). Returns the number of events executed.
  std::uint64_t run();
  std::uint64_t run_until(SimTime until);

  /// Execute at most one event; false when the queue is empty.
  bool step();

  std::size_t pending() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Total events executed over the queue's lifetime.
  std::uint64_t executed() const { return executed_ctr_.value(); }

  /// Enrol the queue's instruments (events_executed, events_pending and —
  /// when `time_dispatch` — the dispatch_wall_ns histogram) in `registry`.
  /// The registry must outlive this queue.
  void attach_metrics(obs::Registry& registry, obs::Labels labels = {},
                      bool time_dispatch = true);

  void enable_dispatch_timing(bool on) { time_dispatch_ = on; }
  /// Time only every `every`-th event (rounded down to a power of two;
  /// default 1 = every event). Sampling keeps the two steady_clock reads
  /// off most dispatches — at study scale the full-timing cost dominates
  /// the whole observability overhead.
  void set_dispatch_sampling(std::uint32_t every);
  const obs::Histogram& dispatch_wall_ns() const { return dispatch_wall_; }

  /// Register (or look up — idempotent by name) a dispatch category.
  /// Per-category executed counters are always live; per-category wall
  /// histograms fill on the same sampled timed dispatches as the aggregate
  /// simnet_dispatch_wall_ns. Register at setup time, schedule hot.
  CategoryId register_category(std::string_view name);
  const std::string& category_name(CategoryId id) const {
    return categories_[id].name;
  }
  std::size_t category_count() const { return categories_.size(); }
  /// Executed-event count attributed to `id` (deterministic).
  std::uint64_t category_executed(CategoryId id) const {
    return categories_[id].executed->value();
  }
  /// Wall histogram attributed to `id` (empty unless dispatch timing on).
  const obs::Histogram& category_wall_ns(CategoryId id) const {
    return *categories_[id].wall;
  }

  /// One timed dispatch that exceeded the flight-recorder threshold, kept
  /// in the top-K table.
  struct SlowDispatch {
    SimTime at = 0;
    std::int64_t wall_ns = 0;
    CategoryId category = 0;
  };
  /// Top-K slowest timed dispatches so far, slowest first.
  std::vector<SlowDispatch> slowest() const;

  /// Report timed dispatches over `threshold_ns` wall time to `recorder`
  /// (FlightKind::kSlowDispatch, detail = category name) and trigger a
  /// flight dump. nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder,
                           std::int64_t threshold_ns = 1'000'000);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    CategoryId cat;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Counter/Histogram hold atomics (non-movable), so categories own them
  // through unique_ptr; the vector is append-only and ids stay stable.
  struct Category {
    std::string name;
    std::unique_ptr<obs::Counter> executed;
    std::unique_ptr<obs::Histogram> wall;
    std::uint32_t flight_note = 0;  // interned category name, lazily set
  };

  void enroll_category(Category& cat);
  void note_slow_dispatch(std::int64_t wall, CategoryId cat);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;

  obs::Counter executed_ctr_;
  obs::Gauge pending_gauge_;
  obs::Histogram dispatch_wall_{obs::Histogram::exponential(250, 4.0, 12)};
  bool time_dispatch_ = false;
  std::uint64_t dispatch_mask_ = 0;  // time when (executed & mask) == 0
  obs::Registry* registry_ = nullptr;
  obs::Labels labels_;
  std::vector<Category> categories_;
  // Top-K slowest timed dispatches, kept as a min-heap on wall_ns so each
  // candidate costs one comparison against the current K-th place.
  static constexpr std::size_t kSlowTableSize = 16;
  std::vector<SlowDispatch> slow_;
  obs::FlightRecorder* flight_ = nullptr;
  std::int64_t flight_threshold_ns_ = 1'000'000;
};

/// A re-schedulable one-shot timer slot: one logical deadline, at most one
/// *useful* heap entry, re-armable in both directions.
///
/// schedule_at() alone cannot model a deadline that moves: every re-arm
/// pushes a fresh entry and the superseded ones sit in the heap until their
/// (dead) time comes. A Timer keeps a single shared deadline instead:
/// re-arming earlier pushes one new entry and invalidates the old by
/// generation; re-arming *later* pushes nothing — the existing entry fires,
/// notices the deadline moved, and re-schedules itself. This is what lets
/// the scan pump coalesce its per-grant wake-ups into one slot per engine.
///
/// The callback only runs when the armed deadline is actually reached;
/// cancel() and destruction make any in-flight heap entries inert. The
/// EventQueue must outlive the Timer's pending entries (it owns them).
class Timer {
 public:
  Timer(EventQueue& queue, EventQueue::Callback fn,
        EventQueue::CategoryId category = 0);
  ~Timer();
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Move the deadline to `at` (clamped to now) and arm. Idempotent for an
  /// unchanged deadline.
  void arm(SimTime at);
  void cancel();

  bool armed() const { return state_->armed; }
  /// Deadline of the armed timer (meaningless when !armed()).
  SimTime deadline() const { return state_->target; }
  /// Heap entries pushed over the timer's lifetime — the cost a pump pays
  /// for its wake-ups; tests assert coalescing keeps it near the number of
  /// distinct deadlines actually reached.
  std::uint64_t entries_scheduled() const { return state_->entries; }

 private:
  struct State {
    EventQueue* queue;
    EventQueue::Callback fn;
    EventQueue::CategoryId category = 0;
    bool armed = false;
    SimTime target = 0;
    bool entry_live = false;  // a non-superseded heap entry exists
    SimTime entry_at = 0;
    std::uint64_t gen = 0;
    std::uint64_t entries = 0;
  };

  static void push_entry(const std::shared_ptr<State>& s);
  static void fire(const std::shared_ptr<State>& s, std::uint64_t gen);

  std::shared_ptr<State> state_;
};

}  // namespace tts::simnet
