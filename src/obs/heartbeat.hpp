// Pipeline heartbeat: an event scheduled on the simnet::EventQueue that
// snapshots a Registry every N virtual hours into a bounded timeline —
// per-day collection/scan/telescope progress, like the paper's Section 3
// timeline, but for any enrolled instrument.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "simnet/event_queue.hpp"

namespace tts::obs {

struct HeartbeatConfig {
  /// Virtual time between snapshots.
  simnet::SimDuration interval = simnet::hours(24);
  /// No ticks are scheduled past this virtual time (so a drained event
  /// queue terminates); the Study sets it to its run horizon.
  simnet::SimTime until = std::numeric_limits<simnet::SimTime>::max();
  /// Timeline size cap; once reached the heartbeat stops rescheduling.
  std::size_t max_snapshots = 4096;
};

class Heartbeat {
 public:
  Heartbeat(simnet::EventQueue& events, const Registry& registry,
            HeartbeatConfig config);

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// Schedule the first tick (at now + interval). Idempotent.
  void start();
  /// Stop rescheduling; an already-queued tick becomes a no-op.
  void stop() { stopped_ = true; }

  /// Take one snapshot immediately (used for the final end-of-run reading).
  void snap_now();

  const std::vector<RegistrySnapshot>& timeline() const { return timeline_; }
  const HeartbeatConfig& config() const { return config_; }

 private:
  void arm();
  void tick();

  simnet::EventQueue& events_;
  const Registry& registry_;
  HeartbeatConfig config_;
  simnet::EventQueue::CategoryId category_;
  std::vector<RegistrySnapshot> timeline_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace tts::obs
