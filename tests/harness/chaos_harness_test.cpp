// Chaos harness: a full Study under scripted impairment — 20% loss plus a
// blackhole window on the eyeball prefixes, and a mid-run outage of one of
// our NTP pool servers — with retries, circuit breaking and the pool
// monitor all enabled. Asserts the run degrades gracefully: probe-record
// conservation under retries and shedding, breaker open AND re-close, the
// pool's demote/promote path exercised end to end, and bit-identical
// same-seed digests of the whole perturbed run.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/study.hpp"
#include "harness.hpp"
#include "inet/as_registry.hpp"
#include "simnet/fault.hpp"

namespace tts::harness {
namespace {

/// Script the scenario against generated artifacts: the eyeball (cable/DSL
/// ISP) prefixes and our first capture server's address only exist once the
/// study has built its Internet, so the faults install from on_built.
void install_chaos(core::Study& study) {
  simnet::FaultScenario scenario;
  for (const inet::AsInfo* as :
       study.registry().by_category(inet::AsCategory::kCableDslIsp)) {
    for (const net::Ipv6Prefix& prefix : as->prefixes) {
      // Steady impairment: 20% of everything into the eyeball space drops.
      scenario.rules.push_back({.prefix = prefix,
                                .kind = simnet::FaultKind::kLoss,
                                .probability = 0.2});
      // Hard window: the whole eyeball space goes dark for 10 hours, long
      // enough for every touched breaker to trip on its timeout streak.
      scenario.rules.push_back({.prefix = prefix,
                                .kind = simnet::FaultKind::kBlackhole,
                                .from = simnet::hours(6),
                                .until = simnet::hours(16)});
    }
  }
  // Mid-run outage of one of our capture servers: the pool monitor must
  // demote it out of rotation and promote it back after recovery.
  auto ours = study.pool().our_servers();
  ASSERT_FALSE(ours.empty());
  scenario.outages.push_back({.host = ours.front().address,
                              .from = simnet::hours(12),
                              .until = simnet::hours(18)});
  study.network().install_faults(scenario, &study.metrics());
}

core::StudyConfig chaos_config() {
  auto config = core::make_study_config(core::StudyScale::kTiny);
  config.population.device_scale = 0.05;
  config.runtime.duration = simnet::days(2);
  config.hitlist_scan_start = simnet::days(1);
  config.drain = simnet::hours(12);

  config.scan_retry.max_retries = 2;
  config.scan_retry.base_backoff = simnet::sec(30);

  config.scan_breaker.enabled = true;
  config.scan_breaker.prefix_len = 32;  // one breaker per eyeball AS
  config.scan_breaker.open_after = 6;
  config.scan_breaker.open_for = simnet::minutes(10);

  config.enable_pool_monitor = true;
  config.pool_monitor.check_interval = simnet::minutes(30);
  // Bound the outage's score damage so recovery fits the 2-day horizon.
  config.pool_monitor.min_score = -20;

  config.on_built = install_chaos;
  return config;
}

/// Per-engine record conservation. Every launched probe completes at most
/// once; a completion either records its outcome or re-stages a retry, and
/// every breaker shed synthesizes exactly one timeout record — so records
/// = completed + shed - retries, whatever is still in flight at horizon.
void expect_conserved(const scan::ScanEngine& engine,
                      const scan::ResultStore& results) {
  scan::Dataset ds = engine.config().dataset;
  EXPECT_EQ(results.total(ds), engine.probes_completed() +
                                   engine.breaker_shed() -
                                   engine.retries_staged())
      << "dataset " << to_string(ds);
  EXPECT_LE(engine.probes_completed(), engine.probes_launched());
}

std::uint64_t chaos_digest(const core::StudyConfig& config) {
  core::Study study(config);
  study.run();
  std::string md = core::render_markdown(core::build_report(study));
  Fnv64 f;
  f.mix_bytes(md);
  const simnet::FaultPlane* faults = study.network().faults();
  f.mix(faults->udp_dropped())
      .mix(faults->udp_host_down())
      .mix(faults->tcp_blackholed())
      .mix(faults->delays_injected());
  for (const scan::ScanEngine* engine :
       {study.ntp_engine(), study.hitlist_engine()}) {
    f.mix(engine->probes_launched())
        .mix(engine->retries_staged())
        .mix(engine->breaker_shed())
        .mix(engine->breaker()->opens())
        .mix(engine->breaker()->closes());
  }
  f.mix(study.pool().demotions()).mix(study.pool().promotions());
  f.mix(study.events_executed());
  return f.value();
}

TEST(ChaosHarness, StudyDegradesGracefullyUnderFaults) {
  core::Study study(chaos_config());
  study.run();

  const simnet::FaultPlane* faults = study.network().faults();
  ASSERT_NE(faults, nullptr);
  // The scenario actually bit: losses and blackholes were injected.
  EXPECT_GT(faults->udp_dropped(), 0u);
  EXPECT_GT(faults->tcp_blackholed(), 0u);
  EXPECT_GT(faults->udp_host_down(), 0u);

  // The run still completed and produced scan material.
  ASSERT_NE(study.ntp_engine(), nullptr);
  ASSERT_NE(study.hitlist_engine(), nullptr);
  EXPECT_GT(study.results().size(), 0u);
  EXPECT_GT(study.collector().distinct_addresses(), 0u);

  // Retries were exercised and every record is conserved.
  EXPECT_GT(study.ntp_engine()->retries_staged(), 0u);
  expect_conserved(*study.ntp_engine(), study.results());
  expect_conserved(*study.hitlist_engine(), study.results());

  // Breaker convergence: the blackhole window opened breakers, and the
  // post-window conclusive outcomes (RSTs from live hosts) re-closed them.
  std::uint64_t opens = 0, closes = 0;
  for (const scan::ScanEngine* engine :
       {study.ntp_engine(), study.hitlist_engine()}) {
    ASSERT_NE(engine->breaker(), nullptr);
    opens += engine->breaker()->opens();
    closes += engine->breaker()->closes();
  }
  EXPECT_GT(opens, 0u);
  EXPECT_GT(closes, 0u);

  // The pool monitor demoted the dark server and promoted it back.
  ASSERT_NE(study.pool_monitor(), nullptr);
  EXPECT_GT(study.pool_monitor()->checks_run(), 0u);
  EXPECT_GT(study.pool_monitor()->misses(), 0u);
  EXPECT_GE(study.pool().demotions(), 1u);
  EXPECT_GE(study.pool().promotions(), 1u);

  // Fault and breaker instruments reached the registry for the report.
  EXPECT_NE(study.metrics().find_counter("fault_udp_dropped", {}), nullptr);
  EXPECT_NE(study.metrics().find_counter("scan_breaker_opens",
                                         {{"dataset", "ntp"}}),
            nullptr);
  EXPECT_NE(study.metrics().find_counter("scan_retries",
                                         {{"dataset", "ntp"}}),
            nullptr);
}

TEST(ChaosHarness, SameSeedSameChaosBitIdentical) {
  auto config = chaos_config();
  EXPECT_EQ(chaos_digest(config), chaos_digest(config));
}

TEST(ChaosHarness, DifferentSeedDifferentChaos) {
  auto config = chaos_config();
  std::uint64_t base = chaos_digest(config);
  config.seed ^= 0x9e3779b97f4a7c15ULL;
  EXPECT_NE(base, chaos_digest(config));
}

TEST(ChaosHarness, ShardedChaosMatchesSingleShardDigest) {
  // The full perturbed pipeline — loss, a blackhole window, a pool-server
  // outage, retries, breakers, the monitor — must survive parallel shard
  // execution with the same-seed digest it produces on one shard. Fault
  // draws come from per-domain streams, so even the injected-fault counts
  // are shard-count-invariant.
  auto config = chaos_config();
  config.shards.shards = 1;
  std::uint64_t single = chaos_digest(config);
  config.shards.shards = 4;
  config.shards.workers = 2;
  EXPECT_EQ(single, chaos_digest(config));
}

}  // namespace
}  // namespace tts::harness
