#include "inet/as_registry.hpp"

#include <stdexcept>

#include "util/format.hpp"

namespace tts::inet {

std::string_view to_string(AsCategory c) {
  switch (c) {
    case AsCategory::kCableDslIsp: return "Cable/DSL/ISP";
    case AsCategory::kMobile: return "Mobile";
    case AsCategory::kHosting: return "Hosting";
    case AsCategory::kContent: return "Content";
    case AsCategory::kNsp: return "NSP";
    case AsCategory::kEducation: return "Education/Research";
  }
  return "?";
}

const std::vector<CountryParams>& builtin_countries() {
  // client_weight follows Table 7 (millions of collected addresses per
  // server country, which proxies for NTP client volume in that zone).
  // Non-deployment countries get weights on the same scale; their clients
  // only reach our servers through the global-zone fallback.
  static const std::vector<CountryParams> kCountries = {
      // -- the 11 deployment countries (Section 3.1) --
      {"IN", 2569.0, 4, 3, 2},
      {"BR", 224.0, 3, 2, 2},
      {"JP", 69.0, 3, 2, 2},
      {"ZA", 37.0, 2, 2, 1},
      {"ES", 33.0, 3, 2, 1},
      {"GB", 31.0, 3, 2, 2},
      {"DE", 26.0, 4, 2, 3},
      {"US", 24.0, 4, 3, 4},
      {"PL", 19.0, 2, 1, 1},
      {"AU", 10.0, 2, 2, 1},
      {"NL", 9.0, 2, 1, 3},
      // -- other populated zones (traffic stays with their own servers) --
      {"CN", 800.0, 3, 3, 2},
      {"ID", 150.0, 2, 2, 1},
      {"FR", 30.0, 3, 1, 2},
      {"IT", 25.0, 2, 1, 1},
      {"KR", 22.0, 2, 1, 1},
      {"CA", 15.0, 2, 1, 1},
      {"MX", 20.0, 2, 1, 1},
      {"TR", 18.0, 2, 1, 1},
      {"VN", 40.0, 2, 1, 1},
      {"TH", 25.0, 2, 1, 1},
      {"RU", 35.0, 3, 2, 2},
      {"SE", 8.0, 2, 1, 1},
      {"CH", 6.0, 2, 1, 1},
      {"AT", 5.0, 1, 1, 1},
      {"CZ", 6.0, 1, 1, 1},
      {"FI", 4.0, 1, 1, 1},
      {"AR", 12.0, 2, 1, 1},
      {"CL", 8.0, 1, 1, 1},
      {"EG", 14.0, 1, 1, 1},
  };
  return kCountries;
}

AsRegistry AsRegistry::generate(const AsRegistryConfig& config) {
  AsRegistry reg;
  reg.countries_ =
      config.countries.empty() ? builtin_countries() : config.countries;
  util::Rng rng(config.seed);
  util::Rng size_rng = rng.stream("as.sizes");

  net::AsNumber next_asn = 64500;  // synthetic range
  std::uint32_t next_block = 0;    // /32 index inside 2400::/12

  auto alloc_prefix32 = [&next_block]() {
    // 2400::/12 leaves 20 bits of /32 blocks: 2400:0000::/32, 2400:0001::/32…
    if (next_block >= (1u << 20))
      throw std::runtime_error("prefix space exhausted");
    std::uint64_t hi = (0x2400ULL << 48) |
                       (static_cast<std::uint64_t>(next_block++) << 32);
    return net::Ipv6Prefix(net::Ipv6Address::from_halves(hi, 0), 32);
  };

  auto add_as = [&](std::string name, AsCategory cat, std::string country,
                    double weight, int n_prefixes) -> AsInfo& {
    AsInfo info;
    info.number = next_asn++;
    info.name = std::move(name);
    info.category = cat;
    info.country = std::move(country);
    info.size_weight = weight;
    for (int i = 0; i < n_prefixes; ++i)
      info.prefixes.push_back(alloc_prefix32());
    reg.index_[info.number] = reg.ases_.size();
    reg.ases_.push_back(std::move(info));
    return reg.ases_.back();
  };

  for (const auto& c : reg.countries_) {
    // Eyeball ISPs: Zipf-ish size split so one incumbent dominates.
    for (int i = 0; i < c.eyeball_ases; ++i) {
      double w = 1.0 / static_cast<double>(i + 1);
      w *= size_rng.uniform(0.7, 1.3);
      add_as(util::cat(c.code, " Broadband ", i + 1), AsCategory::kCableDslIsp,
             c.code, w, i == 0 ? 2 : 1);
    }
    for (int i = 0; i < c.mobile_ases; ++i) {
      double w = (1.0 / static_cast<double>(i + 1)) * size_rng.uniform(0.6, 1.2);
      add_as(util::cat(c.code, " Mobile ", i + 1), AsCategory::kMobile, c.code,
             w, 1);
    }
    for (int i = 0; i < c.hosting_ases; ++i) {
      double w = (1.0 / static_cast<double>(i + 1)) * size_rng.uniform(0.5, 1.5);
      add_as(util::cat(c.code, " Hosting ", i + 1), AsCategory::kHosting,
             c.code, w, 1);
    }
    // One research/education network per country; tiny.
    add_as(util::cat(c.code, " NREN"), AsCategory::kEducation, c.code, 0.05, 1);
  }

  // Global hyperscalers. The first owns the fully aliased CDN edge region
  // (a /40 inside its first /32) that floods the hitlist HTTP results.
  AsInfo& cdn = add_as("Hyperscaler CDN (edge)", AsCategory::kContent, "ZZ",
                       3.0, 2);
  {
    net::Ipv6Address base = cdn.prefixes.front().address();
    reg.cdn_alias_ = net::Ipv6Prefix(base, 40);
    cdn.aliased_regions.push_back(reg.cdn_alias_);
    reg.cdn_asn_ = cdn.number;
  }
  add_as("Hyperscaler Cloud A", AsCategory::kContent, "ZZ", 2.0, 2);
  add_as("Hyperscaler Cloud B", AsCategory::kContent, "ZZ", 1.5, 1);
  add_as("Global Transit 1", AsCategory::kNsp, "ZZ", 0.2, 1);
  add_as("Global Transit 2", AsCategory::kNsp, "ZZ", 0.2, 1);

  for (const auto& as : reg.ases_)
    for (const auto& p : as.prefixes) reg.routes_.announce(p, as.number);

  return reg;
}

const AsInfo* AsRegistry::find(net::AsNumber asn) const {
  auto it = index_.find(asn);
  return it == index_.end() ? nullptr : &ases_[it->second];
}

const AsInfo* AsRegistry::origin(const net::Ipv6Address& addr) const {
  auto asn = routes_.lookup(addr);
  return asn ? find(*asn) : nullptr;
}

std::vector<const AsInfo*> AsRegistry::by_category(AsCategory cat) const {
  std::vector<const AsInfo*> out;
  for (const auto& as : ases_)
    if (as.category == cat) out.push_back(&as);
  return out;
}

std::vector<const AsInfo*> AsRegistry::in_country(
    const std::string& code) const {
  std::vector<const AsInfo*> out;
  for (const auto& as : ases_)
    if (as.country == code) out.push_back(&as);
  return out;
}

std::vector<const AsInfo*> AsRegistry::in_country(const std::string& code,
                                                  AsCategory cat) const {
  std::vector<const AsInfo*> out;
  for (const auto& as : ases_)
    if (as.country == code && as.category == cat) out.push_back(&as);
  return out;
}

const CountryParams* AsRegistry::country(const std::string& code) const {
  for (const auto& c : countries_)
    if (c.code == code) return &c;
  return nullptr;
}

}  // namespace tts::inet
