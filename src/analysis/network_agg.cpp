#include "analysis/network_agg.hpp"

#include <unordered_map>

#include "util/stats.hpp"

namespace tts::analysis {

NetworkAggregates aggregate(std::span<const net::Ipv6Address> addresses,
                            const inet::AsRegistry& registry) {
  NetworkAggregates out;
  out.addresses = addresses.size();
  PrefixSet n32, n48, n56, n64;
  AsSet ases;
  std::unordered_set<std::string> countries;
  for (const auto& a : addresses) {
    n32.insert(net::Ipv6Prefix(a, 32));
    n48.insert(net::Ipv6Prefix(a, 48));
    n56.insert(net::Ipv6Prefix(a, 56));
    n64.insert(net::Ipv6Prefix(a, 64));
    if (const inet::AsInfo* as = registry.origin(a)) {
      ases.insert(as->number);
      countries.insert(as->country);
    }
  }
  out.nets32 = n32.size();
  out.nets48 = n48.size();
  out.nets56 = n56.size();
  out.nets64 = n64.size();
  out.ases = ases.size();
  out.countries = countries.size();
  return out;
}

PrefixSet prefixes_of(std::span<const net::Ipv6Address> addresses,
                      unsigned prefix_len) {
  PrefixSet out;
  for (const auto& a : addresses) out.insert(net::Ipv6Prefix(a, prefix_len));
  return out;
}

AsSet ases_of(std::span<const net::Ipv6Address> addresses,
              const inet::AsRegistry& registry) {
  AsSet out;
  for (const auto& a : addresses)
    if (const inet::AsInfo* as = registry.origin(a)) out.insert(as->number);
  return out;
}

std::uint64_t overlap(const PrefixSet& a, const PrefixSet& b) {
  const PrefixSet& small = a.size() <= b.size() ? a : b;
  const PrefixSet& large = a.size() <= b.size() ? b : a;
  std::uint64_t n = 0;
  for (const auto& p : small)
    if (large.contains(p)) ++n;
  return n;
}

std::uint64_t overlap(const AsSet& a, const AsSet& b) {
  const AsSet& small = a.size() <= b.size() ? a : b;
  const AsSet& large = a.size() <= b.size() ? b : a;
  std::uint64_t n = 0;
  for (const auto& as : small)
    if (large.contains(as)) ++n;
  return n;
}

std::uint64_t address_overlap(std::span<const net::Ipv6Address> lhs,
                              std::span<const net::Ipv6Address> rhs) {
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> set(
      lhs.begin(), lhs.end());
  std::uint64_t n = 0;
  for (const auto& addr : rhs)
    if (set.contains(addr)) ++n;
  return n;
}

double median_ips_per_net(std::span<const net::Ipv6Address> addresses,
                          unsigned prefix_len) {
  std::unordered_map<net::Ipv6Prefix, std::uint64_t, net::Ipv6PrefixHash>
      counts;
  for (const auto& a : addresses) ++counts[net::Ipv6Prefix(a, prefix_len)];
  std::vector<double> values;
  values.reserve(counts.size());
  // ttslint: allow(unordered-iter) reason=median() sorts values, so the visit order cannot affect the result
  for (const auto& [prefix, n] : counts)
    values.push_back(static_cast<double>(n));
  return util::median(std::move(values));
}

double median_ips_per_as(std::span<const net::Ipv6Address> addresses,
                         const inet::AsRegistry& registry) {
  std::unordered_map<net::AsNumber, std::uint64_t> counts;
  for (const auto& a : addresses)
    if (const inet::AsInfo* as = registry.origin(a)) ++counts[as->number];
  std::vector<double> values;
  values.reserve(counts.size());
  // ttslint: allow(unordered-iter) reason=median() sorts values, so the visit order cannot affect the result
  for (const auto& [asn, n] : counts)
    values.push_back(static_cast<double>(n));
  return util::median(std::move(values));
}

}  // namespace tts::analysis
