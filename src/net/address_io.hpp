// Address-list I/O: the plain one-address-per-line text format hitlists
// and collection dumps use ('#' comments tolerated). Enables piping a
// collection out of one run and into the forensics tooling.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "net/ipv6.hpp"

namespace tts::net {

struct AddressReadStats {
  std::size_t parsed = 0;
  std::size_t skipped = 0;  // comments, blanks, malformed lines
};

/// Parse addresses from a stream; malformed lines are skipped and counted.
std::vector<Ipv6Address> read_address_list(std::istream& in,
                                           AddressReadStats* stats = nullptr);

/// Write one address per line in canonical RFC 5952 form.
void write_address_list(std::ostream& out,
                        std::span<const Ipv6Address> addresses);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
std::vector<Ipv6Address> load_address_file(const std::string& path,
                                           AddressReadStats* stats = nullptr);
void save_address_file(const std::string& path,
                       std::span<const Ipv6Address> addresses);

}  // namespace tts::net
