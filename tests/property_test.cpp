// Parameterised property sweeps (TEST_P) over the invariants the analyses
// rely on: IID classification boundaries, Levenshtein threshold geometry,
// NTP timestamp conversion across the whole study window, CoAP option
// encoding around its length boundaries, and device-catalogue sanity.
#include <gtest/gtest.h>

#include "analysis/iid_classes.hpp"
#include "inet/device.hpp"
#include "net/ipv6.hpp"
#include "ntp/ntp_packet.hpp"
#include "proto/coap.hpp"
#include "util/levenshtein.hpp"

namespace tts {
namespace {

// ------------------------------------------------- IID class boundaries

struct IidCase {
  std::uint64_t iid;
  analysis::IidClass expected;
};

class IidBoundary : public ::testing::TestWithParam<IidCase> {};

TEST_P(IidBoundary, ClassifiesExactly) {
  auto addr =
      net::Ipv6Address::from_halves(0x2400000100000000ULL, GetParam().iid);
  EXPECT_EQ(analysis::classify_iid(addr), GetParam().expected)
      << std::hex << GetParam().iid;
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, IidBoundary,
    ::testing::Values(
        IidCase{0x0, analysis::IidClass::kZero},
        IidCase{0x1, analysis::IidClass::kLastByte},
        IidCase{0xff, analysis::IidClass::kLastByte},
        IidCase{0x100, analysis::IidClass::kLastTwoBytes},
        IidCase{0xffff, analysis::IidClass::kLastTwoBytes},
        // 0x10000 is past the structured range: entropy path. Seven zero
        // bytes + one set byte -> low entropy.
        IidCase{0x10000, analysis::IidClass::kEntropyLow},
        // EUI-64 marker beats entropy regardless of surrounding bytes.
        IidCase{0x021a4ffffe000001ULL, analysis::IidClass::kEui64},
        IidCase{0xfffffffffe123456ULL, analysis::IidClass::kEui64},
        // Fully random-looking: all-distinct bytes -> high entropy.
        IidCase{0x0123456789abcdefULL, analysis::IidClass::kEntropyHigh}));

// -------------------------------------- Levenshtein threshold geometry

struct ThresholdCase {
  const char* a;
  const char* b;
  double threshold;
  bool within;
};

class LevenshteinThreshold
    : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(LevenshteinThreshold, MatchesExactComputation) {
  const auto& p = GetParam();
  EXPECT_EQ(util::within_normalized_distance(p.a, p.b, p.threshold),
            p.within)
      << p.a << " vs " << p.b;
  // The predicate must agree with the exact normalised distance.
  double exact = util::normalized_levenshtein(p.a, p.b);
  EXPECT_EQ(exact <= p.threshold + 1e-12 ||
                util::within_normalized_distance(p.a, p.b, p.threshold) ==
                    (exact <= p.threshold),
            true);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LevenshteinThreshold,
    ::testing::Values(
        // The paper's 0.25 threshold on typical title pairs.
        ThresholdCase{"FRITZ!Box 7590", "FRITZ!Box 7530", 0.25, true},
        ThresholdCase{"FRITZ!Box", "FRITZ!Repeater 6000", 0.25, false},
        ThresholdCase{"3CX Webclient", "3CX Phone System Mgmt.", 0.25,
                      false},
        ThresholdCase{"abcd", "abce", 0.25, true},   // 1/4 edit
        ThresholdCase{"abcd", "abef", 0.25, false},  // 2/4 edits
        ThresholdCase{"", "", 0.25, true},
        ThresholdCase{"x", "", 1.0, true},
        ThresholdCase{"x", "y", 0.99, false}));

// --------------------------------------- NTP timestamps across the window

class NtpTimestampSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(NtpTimestampSweep, RoundTripsWithinQuantum) {
  simnet::SimTime t = GetParam();
  auto ts = ntp::to_ntp_time(t);
  simnet::SimTime back = ntp::from_ntp_time(ts);
  EXPECT_NEAR(static_cast<double>(back), static_cast<double>(t), 1.0);
  // Monotonicity: one microsecond later never maps earlier.
  auto ts2 = ntp::to_ntp_time(t + 1);
  EXPECT_GE(ts2.to_u64(), ts.to_u64());
}

INSTANTIATE_TEST_SUITE_P(
    StudyWindow, NtpTimestampSweep,
    ::testing::Values(simnet::SimTime{0}, simnet::usec(1), simnet::sec(1),
                      simnet::minutes(90), simnet::hours(13),
                      simnet::days(1), simnet::days(7), simnet::days(28),
                      simnet::days(28) + simnet::usec(999999)));

// ----------------------------------- CoAP option length boundary encoding

class CoapSegmentLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CoapSegmentLength, RoundTripsAtBoundary) {
  // Option lengths 12/13/14 cross the extended-length encoding boundary.
  std::string segment(GetParam(), 's');
  proto::CoapMessage msg;
  msg.code = proto::kCoapGet;
  msg.message_id = 9;
  msg.uri_path = {segment, "x"};
  auto parsed = proto::CoapMessage::parse(msg.serialize());
  ASSERT_TRUE(parsed) << GetParam();
  ASSERT_EQ(parsed->uri_path.size(), 2u);
  EXPECT_EQ(parsed->uri_path[0], segment);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, CoapSegmentLength,
                         ::testing::Values(1, 11, 12, 13, 14, 20, 60));

// ----------------------------------------------- catalogue sanity sweeps

class CatalogueEntry : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CatalogueEntry, ProbabilitiesAndWeightsAreSane) {
  const auto& p = inet::device_catalogue().at(GetParam());
  SCOPED_TRACE(p.model);

  auto prob = [&](double v) { EXPECT_GE(v, 0.0); EXPECT_LE(v, 1.0); };
  EXPECT_GT(p.weight, 0.0);
  prob(p.http.enabled);
  prob(p.http.tls);
  prob(p.ssh.enabled);
  prob(p.ssh.outdated);
  prob(p.mqtt.enabled);
  prob(p.mqtt.tls);
  prob(p.mqtt.auth);
  prob(p.amqp.enabled);
  prob(p.amqp.tls);
  prob(p.amqp.auth);
  prob(p.coap.enabled);
  prob(p.ntp.uses_pool);
  prob(p.addr.vendor_mac);
  prob(p.addr.unlisted_oui);
  prob(p.addr.daily_prefix_change);
  prob(p.addr.daily_iid_change);
  prob(p.disc.dns);
  prob(p.disc.traceroute);
  EXPECT_GT(p.ntp.mean_interval_hours, 0.0);
  EXPECT_FALSE(p.model.empty());

  // EUI-64 devices that claim vendor MACs must offer candidate OUIs.
  if (p.addr.iid == inet::IidMode::kEui64 && p.addr.vendor_mac > 0 &&
      p.addr.unlisted_oui < 1.0) {
    EXPECT_FALSE(p.addr.ouis.empty());
  }
  // SSH-bearing profiles must reference a real lineage.
  if (p.ssh.enabled > 0) {
    EXPECT_FALSE(inet::ssh_version_lineage(p.ssh.os).empty());
  }
  // Country multipliers are non-negative.
  for (const auto& [code, mult] : p.country_mult) EXPECT_GE(mult, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, CatalogueEntry,
    ::testing::Range<std::size_t>(0, tts::inet::device_catalogue().size()));

}  // namespace
}  // namespace tts
