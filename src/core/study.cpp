#include "core/study.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "util/format.hpp"
#include "util/serialize.hpp"

namespace tts::core {

StudyConfig make_study_config(StudyScale scale) {
  StudyConfig config;
  config.server_countries = ntp::deployment_countries();
  switch (scale) {
    case StudyScale::kTiny:
      config.population.device_scale = 0.15;
      config.runtime.duration = simnet::days(7);
      config.hitlist_scan_start = simnet::days(4);
      config.hitlist.routers_per_prefix = 4;
      config.hitlist.aliased_samples = 300;
      config.scan_pps = 500;
      config.drain = simnet::days(1);
      break;
    case StudyScale::kSmall:
      config.population.device_scale = 1.0;
      config.runtime.duration = simnet::days(28);
      config.hitlist_scan_start = simnet::days(21);
      config.hitlist.aliased_samples = 30000;
      break;
    case StudyScale::kMedium:
      config.population.device_scale = 3.0;
      config.runtime.duration = simnet::days(28);
      config.hitlist_scan_start = simnet::days(21);
      config.hitlist.aliased_samples = 60000;
      config.scan_pps = 6000;
      break;
  }
  return config;
}

Study::Study(StudyConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      tracer_(config_.obs.trace_capacity),
      flight_(config_.obs.flight_capacity),
      collector_(&metrics_) {
  if (config_.server_countries.empty())
    config_.server_countries = ntp::deployment_countries();
  tracer_.set_sim_clock(&events_);
  tracer_.set_enabled(config_.obs.enabled);
  // The flight recorder shares the virtual clock; its wall stamps come
  // from the tracer's sanctioned clock (data only, never rendered).
  flight_.set_sim_clock(&events_);
  flight_.set_wall_clock(&obs::Tracer::wall_clock_ns);
  flight_.set_enabled(config_.obs.enabled);
  flight_.add_trigger(obs::FlightKind::kFaultInjected,
                      config_.obs.fault_burst, config_.obs.fault_burst_window,
                      "fault-burst");
  flight_.add_trigger(obs::FlightKind::kRouteWithdrawn,
                      config_.obs.route_flap_burst,
                      config_.obs.route_flap_window, "route-flap");
  // The accessor-backing instruments are always enrolled (enrolment is a
  // cold path); obs.enabled only adds wall-clock work on hot paths.
  events_.attach_metrics(metrics_, {}, /*time_dispatch=*/config_.obs.enabled);
  // Sampling keeps the dispatch histogram's wall-clock reads off most
  // events (two clock reads per timed dispatch dominate the obs cost).
  events_.set_dispatch_sampling(64);
  events_.set_flight_recorder(&flight_, config_.obs.slow_dispatch_ns);
  pool_.set_registry(&metrics_);
  metrics_.enroll(overflow_dropped_, "scan_overflow_dropped",
                  {{"dataset", "ntp"}}, this);
  // One token source for both engines: the aggregate rate is the paper's
  // scan budget, per-engine shares come from the weights. Built here (not
  // in run()) so tests can attach a grant observer up front.
  if (config_.enable_ntp_scans || config_.enable_hitlist_scan)
    scan_budget_ = std::make_unique<scan::SharedBudget>(
        scan::SharedBudgetConfig{config_.scan_pps, /*burst_slots=*/2,
                                 &metrics_});
}

Study::~Study() { metrics_.drop_owner(this); }

net::Ipv6Address Study::allocate_infra_address(const std::string& country,
                                               std::uint16_t tag) {
  // Infrastructure (NTP servers, scanners) gets addresses in a reserved
  // high /48 band of a hosting AS of its country, clear of customer space.
  auto hosting = registry_->in_country(country, inet::AsCategory::kHosting);
  if (hosting.empty()) hosting = registry_->in_country(country);
  if (hosting.empty())
    hosting = registry_->by_category(inet::AsCategory::kContent);
  if (hosting.empty()) throw std::logic_error("no AS for infra address");
  const inet::AsInfo* as = hosting.front();
  std::uint64_t hi = as->prefixes.front().address().hi64() |
                     (0xff00ULL << 16) | (static_cast<std::uint64_t>(tag) << 16);
  net::Ipv6Address addr =
      net::Ipv6Address::from_halves(hi, 0x1000 + next_infra_++);
  // Infra lives inside AS prefixes: without a pin the longest-prefix map
  // would place a pool server on its AS's domain instead of domain 0,
  // where all digest-feeding state (collector, results, engines) mutates.
  if (config_.shards.shards > 0) shard_map_.pin(addr, 0);
  return addr;
}

void Study::build_shards() {
  const auto& all = registry_->all();
  for (std::size_t i = 0; i < all.size(); ++i)
    for (const auto& prefix : all[i].prefixes)
      shard_map_.map_prefix(prefix, static_cast<simnet::DomainId>(1 + i));
  simnet::ShardPlan plan = config_.shards;
  if (plan.lookahead <= 0)
    plan.lookahead = std::max<simnet::SimDuration>(1, config_.network.min_latency);
  events_.configure_shards(plan,
                           static_cast<simnet::DomainId>(1 + all.size()));
  network_->set_shard_map(&shard_map_);
}

void Study::build_pool() {
  util::Rng pool_rng = rng_.stream("pool");

  // Third-party background servers in every country zone.
  for (const auto& country : registry_->countries()) {
    int n = 2 + static_cast<int>(pool_rng.below(3));
    double per_server = config_.background_netspeed / n;
    for (int i = 0; i < n; ++i) {
      net::Ipv6Address addr = allocate_infra_address(
          country.code, static_cast<std::uint16_t>(10 + i));
      ntp::NtpServerConfig server;
      server.address = addr;
      server.country = country.code;
      server.capture = false;
      background_servers_.push_back(std::make_unique<ntp::NtpServer>(
          *network_, server, nullptr));
      pool_.add_server(ntp::PoolEntry{addr, country.code, per_server, 20,
                                      /*ours=*/false, 0});
    }
  }

  // Our 11 capture servers, netspeed-tuned to the target zone share
  // (the paper raises netspeed until the request rate matches the scan
  // budget; the closed-form equivalent against a known zone total).
  double share = config_.pool_share;
  double our_netspeed =
      config_.background_netspeed * share / std::max(1e-9, 1.0 - share);
  ntp::ServerId id = 0;
  for (const auto& country : config_.server_countries) {
    net::Ipv6Address addr = allocate_infra_address(country, 1);
    ntp::NtpServerConfig server;
    server.address = addr;
    server.country = country;
    server.id = id++;
    server.capture = true;
    our_servers_.push_back(
        std::make_unique<ntp::NtpServer>(*network_, server, &collector_));
    pool_.add_server(
        ntp::PoolEntry{addr, country, our_netspeed, 20, /*ours=*/true,
                       server.id});
  }
}

void Study::build_telescope() {
  // Telescope prefix: documentation-range space outside the synthetic
  // registry, so captures cannot collide with population traffic.
  auto probe_prefix = *net::Ipv6Prefix::parse("3fff:909:aaaa::/48");
  auto monitor_prefix = *net::Ipv6Prefix::parse("3fff:909::/32");
  telescope::ProberConfig prober_config;
  prober_config.probe_prefix = probe_prefix;
  prober_config.monitor_prefix = monitor_prefix;
  prober_config.duration = config_.runtime.duration;
  prober_config.seed = rng_.stream("prober").root_seed();
  prober_config.registry = &metrics_;
  prober_ = std::make_unique<telescope::PoolProber>(*network_, pool_,
                                                    prober_config);

  if (!config_.enable_actors) return;

  // Actor 1: overt research scanner (Georgia-Tech-like). 15 pool servers,
  // 1011 ports, scans within the hour, identifies itself.
  {
    telescope::ActorConfig gt;
    gt.name = "research-university";
    gt.identifies_itself = true;
    gt.server_country = "US";
    gt.server_netspeed = 60;
    for (int i = 0; i < 15; ++i)
      gt.server_addresses.push_back(allocate_infra_address(
          "US", static_cast<std::uint16_t>(0x80 + i)));
    auto edu = registry_->in_country("US", inet::AsCategory::kEducation);
    net::Ipv6Address src =
        edu.empty()
            ? allocate_infra_address("US", 0x9f)
            : net::Ipv6Address::from_halves(
                  edu.front()->prefixes.front().address().hi64() |
                      (0xedULL << 16),
                  0x515);
    if (config_.shards.shards > 0) shard_map_.pin(src, 0);
    gt.scan_sources.push_back(src);
    gt.ports = telescope::research_actor_ports();
    gt.scan_delay_min = simnet::minutes(3);
    gt.scan_delay_max = simnet::minutes(55);
    gt.scan_spread = simnet::minutes(10);
    gt.seed = rng_.stream("actor-gt").root_seed();
    actors_.push_back(std::make_unique<telescope::ScanningActor>(
        *network_, pool_, gt));
  }

  // Actor 2: covert. Servers in one cloud provider, scan sources in
  // another, security-sensitive ports, multi-day spread, partial coverage.
  {
    telescope::ActorConfig covert;
    covert.name = "";
    covert.identifies_itself = false;
    covert.server_country = "US";
    covert.server_netspeed = 40;
    auto clouds = registry_->by_category(inet::AsCategory::kContent);
    const inet::AsInfo* cloud_a =
        clouds.size() > 1 ? clouds[1] : clouds.front();
    const inet::AsInfo* cloud_b =
        clouds.size() > 2 ? clouds[2] : clouds.front();
    for (int i = 0; i < 4; ++i) {
      covert.server_addresses.push_back(net::Ipv6Address::from_halves(
          cloud_a->prefixes.front().address().hi64() |
              (static_cast<std::uint64_t>(0xc0 + i) << 16),
          0x11));
    }
    for (int i = 0; i < 2; ++i) {
      covert.scan_sources.push_back(net::Ipv6Address::from_halves(
          cloud_b->prefixes.front().address().hi64() |
              (static_cast<std::uint64_t>(0xd0 + i) << 16),
          0x22));
    }
    if (config_.shards.shards > 0) {
      for (const auto& a : covert.server_addresses) shard_map_.pin(a, 0);
      for (const auto& a : covert.scan_sources) shard_map_.pin(a, 0);
    }
    covert.ports = telescope::covert_actor_ports();
    covert.scan_delay_min = simnet::hours(10);
    covert.scan_delay_max = simnet::hours(60);
    covert.scan_spread = simnet::days(2);
    covert.port_coverage = 0.6;
    covert.seed = rng_.stream("actor-covert").root_seed();
    actors_.push_back(std::make_unique<telescope::ScanningActor>(
        *network_, pool_, covert));
  }
}

void Study::run() {
  if (ran_) throw std::logic_error("Study::run called twice");
  ran_ = true;

  simnet::NetworkConfig net_config = config_.network;
  net_config.seed = rng_.stream("network").root_seed();
  network_ = std::make_unique<simnet::Network>(events_, net_config);
  if (!config_.faults.empty()) {
    simnet::FaultScenario scenario = config_.faults;
    scenario.seed = rng_.stream("faults").root_seed() ^ scenario.seed;
    network_->install_faults(std::move(scenario), &metrics_, &flight_);
  }
  // The route plane is draw-free (pure scripted windows), so no seed
  // mixing; transitions commit at barriers, counters enroll as route_*.
  if (!config_.routes.empty())
    network_->install_routes(config_.routes, &metrics_, &flight_);

  {
    auto span = tracer_.span("study/build_internet");
    inet::AsRegistryConfig reg_config;
    reg_config.seed = rng_.stream("registry").root_seed();
    registry_ = inet::AsRegistry::generate(reg_config);

    inet::PopulationConfig pop_config = config_.population;
    pop_config.seed = rng_.stream("population").root_seed();
    population_ = inet::Population::generate(*registry_, pop_config);
  }

  // Partition before anything allocates infra addresses (allocation pins
  // them to domain 0) or schedules events (configure_shards requires a
  // quiet queue).
  if (config_.shards.shards > 0) build_shards();

  {
    auto span = tracer_.span("study/build_pool");
    build_pool();
  }

  eui64_.attach(collector_);

  if (config_.enable_pool_monitor) {
    ntp::PoolMonitorConfig monitor_config = config_.pool_monitor;
    monitor_config.vantage = allocate_infra_address("US", 0x77);
    monitor_config.duration =
        std::min(monitor_config.duration, config_.runtime.duration);
    monitor_ =
        std::make_unique<ntp::PoolMonitor>(*network_, pool_, monitor_config);
    monitor_->start();
  }

  if (config_.enable_ntp_scans) {
    scan::ScanEngineConfig engine;
    engine.scanner_address = allocate_infra_address("DE", 0x51);
    engine.dataset = scan::Dataset::kNtp;
    engine.budget = scan_budget_.get();
    engine.budget_weight = config_.ntp_scan_weight;
    engine.max_pending = config_.scan_max_pending;
    // One source of truth for the connect give-up: the network default the
    // simnet blackhole path uses (instead of a silently different 5 s).
    engine.connect_timeout = config_.network.connect_timeout;
    engine.retry = config_.scan_retry;
    engine.breaker = config_.scan_breaker;
    engine.seed = rng_.stream("ntp-engine").root_seed();
    engine.registry = &metrics_;
    engine.tracer = config_.obs.enabled ? &tracer_ : nullptr;
    engine.flight = &flight_;
    ntp_engine_ =
        std::make_unique<scan::ScanEngine>(*network_, results_, engine);
    collector_.subscribe([this](const ntp::CollectedAddress& rec) {
      if (ntp_engine_->try_submit(rec.addr) != scan::SubmitResult::kQueueFull)
        return;
      // Backpressure: a collector-fed address must not be silently lost to
      // a momentarily full lane, so it overflows into a study-side buffer
      // the engine drains as a pull source once staging room frees up. The
      // buffer itself is capped: a feed that outruns the scan budget for
      // long enough drops (and counts) the excess instead of growing
      // without bound.
      if (ntp_overflow_.size() >= config_.overflow_cap) {
        overflow_dropped_.inc();
        return;
      }
      ntp_overflow_.push_back(rec.addr);
      if (ntp_overflow_active_) return;
      ntp_overflow_active_ = true;
      ntp_engine_->add_source([this](std::size_t max_n) {
        auto n = static_cast<std::ptrdiff_t>(
            std::min(max_n, ntp_overflow_.size()));
        std::vector<net::Ipv6Address> out(ntp_overflow_.begin(),
                                          ntp_overflow_.begin() + n);
        ntp_overflow_.erase(ntp_overflow_.begin(), ntp_overflow_.begin() + n);
        if (out.empty()) ntp_overflow_active_ = false;
        return out;
      });
    });
  }

  inet::RuntimeConfig runtime_config = config_.runtime;
  runtime_config.seed = rng_.stream("runtime").root_seed();
  runtime_ = std::make_unique<inet::InternetRuntime>(
      *network_, *population_, &pool_, runtime_config);
  runtime_->start();

  // The hitlist snapshot is roughly contemporaneous with the scan week
  // (the paper scanned the July '24 list in August '24): build it from the
  // live address state two days before the sweep starts. Dynamic devices
  // still rot out of it during those days plus the sweep itself.
  simnet::SimTime hitlist_build_at =
      std::max<simnet::SimTime>(0, config_.hitlist_scan_start -
                                       simnet::days(2));
  simnet::EventQueue::CategoryId hitlist_cat =
      events_.register_category("hitlist_build");
  if (events_.sharded()) {
    // Incremental build: one slice per AS on its home domain (killing the
    // monolithic build's dispatch tail), merged on domain 0 one lookahead
    // later. Any window containing a slice closes at a bound <= build
    // time + lookahead, so the merge always lands in a later window.
    std::size_t as_count = registry_->all().size();
    hitlist_partials_.resize(as_count);
    for (std::size_t i = 0; i < as_count; ++i) {
      events_.schedule_on(static_cast<simnet::DomainId>(1 + i),
                          hitlist_build_at, hitlist_cat, [this, i] {
                            hitlist_partials_[i] =
                                hitlist::HitlistBuilder::build_partial(
                                    *population_, runtime_.get(),
                                    config_.hitlist, i);
                          });
    }
    events_.schedule_on(0, hitlist_build_at + events_.lookahead(),
                        hitlist_cat, [this] {
                          auto span = tracer_.span("study/hitlist_build");
                          hitlist_ = hitlist::HitlistBuilder::merge_partials(
                              *registry_, config_.hitlist, hitlist_partials_);
                          hitlist_partials_.clear();
                          hitlist_partials_.shrink_to_fit();
                        });
  } else {
    events_.schedule_at(hitlist_build_at, hitlist_cat, [this] {
      auto span = tracer_.span("study/hitlist_build");
      hitlist_ = hitlist::HitlistBuilder::build(*population_, runtime_.get(),
                                                config_.hitlist);
    });
  }

  if (config_.enable_hitlist_scan) {
    scan::ScanEngineConfig engine;
    engine.scanner_address = allocate_infra_address("DE", 0x52);
    engine.dataset = scan::Dataset::kHitlist;
    engine.budget = scan_budget_.get();
    engine.budget_weight = config_.hitlist_scan_weight;
    engine.max_pending = config_.scan_max_pending;
    engine.connect_timeout = config_.network.connect_timeout;
    engine.retry = config_.scan_retry;
    engine.breaker = config_.scan_breaker;
    engine.seed = rng_.stream("hitlist-engine").root_seed();
    engine.registry = &metrics_;
    engine.tracer = config_.obs.enabled ? &tracer_ : nullptr;
    engine.flight = &flight_;
    hitlist_engine_ =
        std::make_unique<scan::ScanEngine>(*network_, results_, engine);
    events_.schedule_at(config_.hitlist_scan_start, hitlist_cat, [this] {
      // Chunked pull feed: the engine drains the hitlist as staging room
      // frees up, so pending_depth stays bounded by scan_max_pending
      // instead of one intent per probe of the whole sweep.
      sweeper_ = std::make_unique<hitlist::SweepFeeder>(*hitlist_engine_,
                                                        hitlist_.full);
      sweeper_->start();
    });
  }

  if (config_.enable_telescope) {
    build_telescope();
    prober_->start();
  }

  // Everything is built; scenarios that need generated artifacts (an
  // eyeball prefix, a pool server's address) script themselves now, before
  // the first event fires.
  if (config_.on_built) config_.on_built(*this);

  // Checkpoint / resume-verify. Both runs of a checkpointed study (the
  // one that writes the snapshot and the one resumed from it) schedule
  // the same capture event from this same spot, so their event sequences
  // — and therefore their reports — stay bit-identical.
  if (config_.checkpoint_at > 0 || restore_) {
    simnet::EventQueue::CategoryId snap_cat =
        events_.register_category("checkpoint");
    bool combined = restore_ && restore_->at == config_.checkpoint_at;
    if (restore_) {
      simnet::SimTime at = restore_->at;
      events_.schedule_at(at, snap_cat, [this, combined, at] {
        // At a barrier the whole data plane is quiesced, so the capture
        // sees the same bytes at every shard count (immediate on an
        // unsharded queue, where the event itself is the quiet point).
        events_.run_at_barrier([this, combined, at] {
          StudySnapshot live = capture_snapshot(at);
          verify_restore(live);
          if (combined) checkpoint_ = live.serialize();
        });
      });
    }
    if (config_.checkpoint_at > 0 && !combined) {
      simnet::SimTime at = config_.checkpoint_at;
      events_.schedule_at(at, snap_cat, [this, at] {
        events_.run_at_barrier(
            [this, at] { checkpoint_ = capture_snapshot(at).serialize(); });
      });
    }
  }

  simnet::SimTime horizon = config_.runtime.duration + config_.drain;
  if (config_.obs.enabled) {
    obs::HeartbeatConfig hb;
    hb.interval = config_.obs.heartbeat_interval;
    hb.until = horizon;
    hb.max_snapshots = config_.obs.max_snapshots;
    heartbeat_ = std::make_unique<obs::Heartbeat>(events_, metrics_, hb);
    heartbeat_->snap_now();  // t=0 baseline row
    heartbeat_->start();
  }

  {
    auto span = tracer_.span("study/event_loop");
    events_.run_until(horizon);
  }
  if (heartbeat_) heartbeat_->snap_now();  // final end-of-run reading
}

void Study::resume_from(std::string_view snapshot_bytes) {
  if (ran_) throw std::logic_error("Study::resume_from after run()");
  StudySnapshot snap = StudySnapshot::parse(snapshot_bytes);
  if (snap.seed != config_.seed)
    throw std::invalid_argument(
        "Study::resume_from: snapshot seed " + std::to_string(snap.seed) +
        " does not match config seed " + std::to_string(config_.seed));
  restore_ = std::move(snap);
}

StudySnapshot Study::capture_snapshot(simnet::SimTime at) const {
  StudySnapshot snap;
  snap.seed = config_.seed;
  snap.at = at;

  util::ByteWriter clock;
  clock.i64(at);
  clock.u64(events_.executed());
  snap.sections.push_back({"clock", clock.take()});

  util::ByteWriter collector;
  collector_.save_state(collector);
  snap.sections.push_back({"collector", collector.take()});

  util::ByteWriter hl;
  hitlist_.save_state(hl);
  snap.sections.push_back({"hitlist", hl.take()});

  util::ByteWriter res;
  results_.save_state(res);
  snap.sections.push_back({"results", res.take()});

  // RNG streams that mutate during the run (the study rng_ itself only
  // derives child streams at build time): the engines' retry/jitter
  // generators. Equal states prove the stochastic timelines match.
  util::ByteWriter rng;
  auto put_state = [&rng](const std::array<std::uint64_t, 4>& s) {
    for (std::uint64_t word : s) rng.u64(word);
  };
  put_state(rng_.state());
  rng.u8(ntp_engine_ ? 1 : 0);
  if (ntp_engine_) put_state(ntp_engine_->rng_state());
  rng.u8(hitlist_engine_ ? 1 : 0);
  if (hitlist_engine_) put_state(hitlist_engine_->rng_state());
  snap.sections.push_back({"rng", rng.take()});
  return snap;
}

void Study::verify_restore(const StudySnapshot& live) const {
  if (live.at != restore_->at)
    throw SnapshotDivergence("snapshot verify ran at t=" +
                             std::to_string(live.at) + ", checkpoint was t=" +
                             std::to_string(restore_->at));
  std::string diverged;
  for (const auto& s : live.sections) {
    const SnapshotSection* stored = restore_->section(s.name);
    if (stored && stored->bytes == s.bytes) continue;
    if (!diverged.empty()) diverged += ", ";
    diverged += stored ? s.name : s.name + " (missing from snapshot)";
  }
  if (!diverged.empty())
    throw SnapshotDivergence(
        "resumed study diverged from checkpoint at t=" +
        std::to_string(live.at) + " in section(s): " + diverged);
}

std::vector<std::pair<std::string, std::uint64_t>> Study::per_server_counts()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& server : our_servers_) {
    out.emplace_back(server->config().country,
                     collector_.server_distinct(server->config().id));
  }
  return out;
}

double Study::ntp_hit_rate() const {
  if (!ntp_engine_ || ntp_engine_->probes_launched() == 0) return 0.0;
  std::uint64_t successes = 0;
  for (std::size_t p = 0; p < scan::kProtocolCount; ++p)
    successes += results_.count(scan::Dataset::kNtp,
                                static_cast<scan::Protocol>(p),
                                scan::Outcome::kSuccess);
  return static_cast<double>(successes) /
         static_cast<double>(ntp_engine_->probes_launched());
}

telescope::ClassifierReport Study::telescope_report() const {
  if (!prober_) return {};
  auto identity = [this](const net::Ipv6Address& addr) -> std::string {
    for (const auto& actor : actors_) {
      if (actor->owns_scan_source(addr))
        return actor->config().identifies_itself
                   ? "research-scan." + actor->config().name + ".example"
                   : "";
    }
    // Our own scan engines identify themselves (Appendix A.2.2).
    if (ntp_engine_ && addr == ntp_engine_->config().scanner_address)
      return "research-scan.our-study.example";
    if (hitlist_engine_ && addr == hitlist_engine_->config().scanner_address)
      return "research-scan.our-study.example";
    return "";
  };
  return telescope::classify_actors(*prober_, *registry_, identity,
                                    &tracer_);
}

std::vector<std::string> Study::timeline_columns() {
  return {"ntp_requests",
          "ntp_distinct_addresses",
          "scan_probes_launched{dataset=ntp}",
          "scan_probes_completed{dataset=ntp}",
          "scan_probes_launched{dataset=hitlist}",
          "scan_pending_depth{dataset=hitlist}",
          "telescope_queries",
          "telescope_captures",
          "simnet_events_executed",
          // Per-category dispatch histogram (count column = sampled packet
          // dispatches): the per-day share of the hot packet path.
          "simnet_dispatch_wall_ns{category=packet}"};
}

std::string Study::observability_report() const {
  std::string out;
  if (heartbeat_) {
    // Delta columns turn the per-interval table into the paper's
    // collection-rate view: each row shows how much that interval added,
    // not just the running totals.
    obs::TimelineOptions timeline_options;
    timeline_options.deltas = true;
    out += obs::timeline_table(heartbeat_->timeline(), timeline_columns(),
                               "heartbeat timeline (per virtual " +
                                   simnet::format_duration(
                                       config_.obs.heartbeat_interval) +
                                   ")",
                               timeline_options)
               .to_string();
    out += "\n";
  }
  obs::TableRollup rollup;
  rollup.names = config_.obs.rollup_names;
  rollup.top_n = config_.obs.rollup_top_n;
  out += obs::to_table(metrics_.snapshot(events_.now()), "final metrics",
                       rollup)
             .to_string();
  if (!tracer_.stats().empty()) {
    out += "\n";
    out += obs::span_table(tracer_, "pipeline spans").to_string();
  }
  // Top-K slow dispatches: names the ~9 ms tail the dispatch histogram
  // only hints at (which category, at what sim time). Wall readings are
  // nondeterministic, so this table is for humans, not digests.
  auto slow = events_.slowest();
  if (!slow.empty()) {
    util::TextTable table("slowest timed dispatches");
    table.set_header({"sim t", "category", "wall"},
                     {util::Align::kLeft, util::Align::kLeft});
    for (const auto& s : slow) {
      table.add_row({simnet::format_duration(s.at),
                     events_.category_name(s.category),
                     util::cat(util::fixed(
                                   static_cast<double>(s.wall_ns) / 1e6, 3),
                               " ms")});
    }
    out += "\n";
    out += table.to_string();
  }
  if (flight_.recorded() > 0 || flight_.triggers() > 0) {
    out += util::cat("\nflight recorder: ", flight_.recorded(),
                     " events recorded (", flight_.overwritten(),
                     " overwritten), ", flight_.triggers(), " triggers (",
                     flight_.suppressed(), " suppressed), ",
                     flight_.dumps().size(), " dumps");  // ttslint: allow(barrier-only) reason=post-run report: run() has returned, appends quiesced
    // ttslint: allow(barrier-only) reason=post-run report: run() has returned, appends quiesced
    for (const auto& d : flight_.dumps())
      out += util::cat("\n  dump: ", d.first);
    out += "\n";
  }
  return out;
}

}  // namespace tts::core
