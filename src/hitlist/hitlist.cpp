#include "hitlist/hitlist.hpp"

#include <unordered_map>

#include "util/serialize.hpp"

namespace tts::hitlist {

std::optional<Source> Hitlist::source_of(const net::Ipv6Address& addr) const {
  net::AddressStore::Seq seq = seen.seq_of(addr);
  if (seq == net::AddressStore::kNoSeq) return std::nullopt;
  return sources[seq];
}

std::map<Source, std::uint64_t> Hitlist::counts_by_source() const {
  std::map<Source, std::uint64_t> out;
  for (Source src : sources) ++out[src];
  return out;
}

void Hitlist::save_state(util::ByteWriter& w) const {
  seen.save(w);
  w.u32(static_cast<std::uint32_t>(sources.size()));
  for (Source src : sources) w.u8(static_cast<std::uint8_t>(src));
  w.u32(static_cast<std::uint32_t>(public_list.size()));
  for (const auto& a : public_list) {
    w.u64(a.hi64());
    w.u64(a.lo64());
  }
}

Hitlist Hitlist::decode_state(util::ByteReader& r) {
  Hitlist list;
  list.seen = net::AddressStore::load(r);
  std::uint32_t nsources = r.u32();
  if (nsources != list.seen.size())
    throw util::SerializeError("Hitlist: sources/store size mismatch");
  list.sources.reserve(nsources);
  for (std::uint32_t i = 0; i < nsources; ++i)
    list.sources.push_back(static_cast<Source>(r.u8()));
  // full is derived: the store's snapshot is exactly first-contribution
  // order, which is how build() populated it.
  list.full = list.seen.snapshot();
  std::uint32_t npublic = r.u32();
  list.public_list.reserve(npublic);
  for (std::uint32_t i = 0; i < npublic; ++i) {
    std::uint64_t hi = r.u64();
    std::uint64_t lo = r.u64();
    list.public_list.push_back(net::Ipv6Address::from_halves(hi, lo));
  }
  return list;
}

Hitlist HitlistBuilder::build(const inet::Population& pop,
                              const inet::InternetRuntime* runtime,
                              const SourceConfig& config) {
  util::Rng rng(config.seed);
  Hitlist list;

  AddressOf addr_of = initial_address_of();
  if (runtime) {
    addr_of = [runtime](const inet::Device& d) {
      return runtime->address_of(d.id);
    };
  }
  auto dns = dns_source(pop, addr_of);
  auto traceroute = traceroute_source(pop, config, rng, addr_of);
  auto tga = tga_source(dns, config, rng);
  auto aliased = aliased_source(pop.registry(), config, rng);
  auto stale = stale_source(pop, dns.size(), config, rng);

  // Index device initial addresses for the responsiveness check when no
  // runtime is available yet.
  std::unordered_map<net::Ipv6Address, const inet::Device*,
                     net::Ipv6AddressHash>
      initial;
  if (!runtime) {
    for (const auto& d : pop.devices()) initial[d.initial_address] = &d;
  }

  auto device_at = [&](const net::Ipv6Address& a) -> const inet::Device* {
    if (runtime) return runtime->device_at(a);
    auto it = initial.find(a);
    return it == initial.end() ? nullptr : it->second;
  };

  const auto& alias_region = pop.registry().cdn_alias_region();

  auto ingest = [&](const std::vector<SourcedAddress>& batch) {
    for (const auto& s : batch) {
      auto [seq, fresh] = list.seen.insert(s.addr);
      if (!fresh) continue;
      list.full.push_back(s.addr);
      list.sources.push_back(s.source);

      bool responsive = false;
      if (alias_region.contains(s.addr)) {
        responsive = true;  // every aliased address answers
      } else if (const inet::Device* d = device_at(s.addr)) {
        responsive = d->any_service();
      } else if (s.source == Source::kTraceroute) {
        // Synthetic router interfaces answer ICMP (ping-responsive), which
        // is enough for the public list's liveness filter.
        responsive = s.addr.lo64() < 256;
      }
      if (responsive) list.public_list.push_back(s.addr);
    }
  };

  ingest(dns);
  ingest(traceroute);
  ingest(tga);
  ingest(aliased);
  ingest(stale);
  return list;
}

std::vector<PartialEntry> HitlistBuilder::build_partial(
    const inet::Population& pop, const inet::InternetRuntime* runtime,
    const SourceConfig& config, std::size_t as_index) {
  const inet::AsInfo& as = pop.registry().all().at(as_index);
  util::Rng rng =
      util::Rng(config.seed).stream("hitlist-domain").stream(as_index);

  AddressOf addr_of = initial_address_of();
  if (runtime) {
    addr_of = [runtime](const inet::Device& d) {
      return runtime->address_of(d.id);
    };
  }

  std::vector<const inet::Device*> own;
  for (const auto& d : pop.devices())
    if (d.asn == as.number) own.push_back(&d);

  std::vector<SourcedAddress> dns;
  for (const auto* d : own)
    if (d->in_dns_sources) dns.push_back({addr_of(*d), Source::kDns});

  std::vector<SourcedAddress> traceroute;
  for (const auto* d : own)
    if (d->in_traceroute)
      traceroute.push_back({addr_of(*d), Source::kTraceroute});
  // Synthetic router interfaces, as in traceroute_source but scoped to
  // this AS's prefixes (same draw shapes, per-AS stream).
  for (const auto& prefix : as.prefixes) {
    for (int i = 0; i < config.routers_per_prefix; ++i) {
      std::uint64_t idx48 = rng.below(4096);
      std::uint64_t hi = prefix.address().hi64() | (idx48 << 16);
      std::uint64_t iid = rng.chance(0.4) ? 0 : 1 + rng.below(254);
      traceroute.push_back(
          {net::Ipv6Address::from_halves(hi, iid), Source::kTraceroute});
    }
  }

  auto tga = tga_source(dns, config, rng);

  // Stale rotations of this AS's own devices (the global build samples
  // device-uniformly; per-AS sampling keeps every address in-prefix).
  std::vector<SourcedAddress> stale;
  auto nstale = static_cast<std::uint64_t>(
      static_cast<double>(dns.size()) * config.stale_fraction);
  if (!own.empty()) {
    for (std::uint64_t i = 0; i < nstale; ++i) {
      const inet::Device& d = *own[rng.below(own.size())];
      std::uint64_t hi =
          d.initial_address.hi64() ^ (rng.below(0xffff) << 16);
      stale.push_back(
          {net::Ipv6Address::from_halves(hi, rng.next()), Source::kStale});
    }
  }

  std::unordered_map<net::Ipv6Address, const inet::Device*,
                     net::Ipv6AddressHash>
      initial;
  if (!runtime) {
    for (const auto* d : own) initial[d->initial_address] = d;
  }
  auto device_at = [&](const net::Ipv6Address& a) -> const inet::Device* {
    if (runtime) return runtime->device_at(a);
    auto it = initial.find(a);
    return it == initial.end() ? nullptr : it->second;
  };

  const auto& alias_region = pop.registry().cdn_alias_region();
  std::vector<PartialEntry> out;
  out.reserve(dns.size() + traceroute.size() + tga.size() + stale.size());
  auto emit = [&](const std::vector<SourcedAddress>& batch) {
    for (const auto& s : batch) {
      bool responsive = false;
      if (alias_region.contains(s.addr)) {
        responsive = true;
      } else if (const inet::Device* d = device_at(s.addr)) {
        responsive = d->any_service();
      } else if (s.source == Source::kTraceroute) {
        responsive = s.addr.lo64() < 256;
      }
      out.push_back({s.addr, s.source, responsive});
    }
  };
  emit(dns);
  emit(traceroute);
  emit(tga);
  emit(stale);
  return out;
}

Hitlist HitlistBuilder::merge_partials(
    const inet::AsRegistry& registry, const SourceConfig& config,
    const std::vector<std::vector<PartialEntry>>& partials) {
  Hitlist list;
  auto ingest = [&](const net::Ipv6Address& addr, Source source,
                    bool responsive) {
    auto [seq, fresh] = list.seen.insert(addr);
    if (!fresh) return;
    list.full.push_back(addr);
    list.sources.push_back(source);
    if (responsive) list.public_list.push_back(addr);
  };
  for (const auto& slice : partials)
    for (const auto& e : slice) ingest(e.addr, e.source, e.responsive);

  // The aliased region belongs to no single AS slice: sample it here from
  // its own stream, after every slice (every aliased address answers).
  util::Rng rng = util::Rng(config.seed).stream("hitlist-merge");
  for (const auto& s : aliased_source(registry, config, rng))
    ingest(s.addr, s.source, true);
  return list;
}

}  // namespace tts::hitlist
