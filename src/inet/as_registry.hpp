// Synthetic AS-level Internet topology.
//
// Generates, per country, eyeball ISPs ("Cable/DSL/ISP" in PeeringDB
// terms), mobile carriers, and hosting providers — plus a handful of global
// hyperscalers, one of which owns a fully aliased CDN region. Each AS
// announces one or more /32 prefixes carved deterministically out of
// 2400::/12, so every generated address has exactly one origin AS and the
// RoutingTable join used by the analyses is exact.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv6.hpp"
#include "net/routing_table.hpp"
#include "util/rng.hpp"

namespace tts::inet {

/// PeeringDB-style network categories (Figure 1 keys on "Cable/DSL/ISP").
enum class AsCategory : std::uint8_t {
  kCableDslIsp,
  kMobile,
  kHosting,
  kContent,   // CDNs / hyperscalers
  kNsp,       // transit
  kEducation,
};

std::string_view to_string(AsCategory c);

struct AsInfo {
  net::AsNumber number = 0;
  std::string name;
  AsCategory category = AsCategory::kCableDslIsp;
  std::string country;  // ISO code; hyperscalers use "ZZ" (global)
  std::vector<net::Ipv6Prefix> prefixes;
  /// Relative share of the country's subscriber base (eyeball/mobile) or
  /// server base (hosting/content).
  double size_weight = 1.0;
  /// For content ASes: prefix regions that answer on every address.
  std::vector<net::Ipv6Prefix> aliased_regions;
};

/// Per-country parameters. `client_weight` controls how much NTP client
/// traffic the country emits (Table 7 skew); `device_scale` how many
/// simulated devices live there.
struct CountryParams {
  std::string code;
  double client_weight;  // proportional to paper Table 7 address counts
  int eyeball_ases;
  int mobile_ases;
  int hosting_ases;
};

struct AsRegistryConfig {
  std::vector<CountryParams> countries;  // empty -> builtin table
  std::uint64_t seed = 1;
};

class AsRegistry {
 public:
  static AsRegistry generate(const AsRegistryConfig& config);

  const std::vector<AsInfo>& all() const { return ases_; }
  const AsInfo* find(net::AsNumber asn) const;
  const net::RoutingTable& routes() const { return routes_; }

  /// Origin AS of an address (via longest-prefix match).
  const AsInfo* origin(const net::Ipv6Address& addr) const;

  /// ASes of a category within a country ("ZZ" for global).
  std::vector<const AsInfo*> by_category(AsCategory cat) const;
  std::vector<const AsInfo*> in_country(const std::string& code) const;
  std::vector<const AsInfo*> in_country(const std::string& code,
                                        AsCategory cat) const;

  /// The single fully aliased CDN region (hyperscaler edge).
  const net::Ipv6Prefix& cdn_alias_region() const { return cdn_alias_; }
  net::AsNumber cdn_asn() const { return cdn_asn_; }

  const std::vector<CountryParams>& countries() const { return countries_; }
  const CountryParams* country(const std::string& code) const;

 private:
  std::vector<AsInfo> ases_;
  std::unordered_map<net::AsNumber, std::size_t> index_;
  net::RoutingTable routes_;
  net::Ipv6Prefix cdn_alias_;
  net::AsNumber cdn_asn_ = 0;
  std::vector<CountryParams> countries_;
};

/// The builtin country table: the 11 deployment countries with client
/// weights proportional to the paper's Table 7, plus further countries
/// that emit NTP traffic our servers only see via the global zone.
const std::vector<CountryParams>& builtin_countries();

}  // namespace tts::inet
