#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tts::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.next();
  // All-zero state would be a fixed point; SplitMix64 cannot emit four
  // zeroes in a row from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::stream(std::string_view name) const {
  return Rng(seed_ ^ fnv1a(name));
}

Rng Rng::stream(std::uint64_t index) const {
  SplitMix64 mixer(index + 0x6a09e667f3bcc909ULL);
  return Rng(seed_ ^ mixer.next());
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t Rng::heavy_tail_count(double mu, double sigma,
                                    std::uint64_t cap) {
  double v = lognormal(mu, sigma);
  if (v < 0.0) v = 0.0;
  auto n = static_cast<std::uint64_t>(v);
  return n > cap ? cap : n;
}

std::size_t Rng::pick_cumulative(const std::vector<double>& cumulative) {
  if (cumulative.empty() || cumulative.back() <= 0.0)
    throw std::invalid_argument("pick_cumulative: empty or zero-mass");
  double x = uniform() * cumulative.back();
  std::size_t lo = 0, hi = cumulative.size() - 1;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (cumulative[mid] <= x)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

std::size_t Rng::pick_weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("pick_weighted: zero mass");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  if (alpha <= 0.0 || alpha == 1.0)
    throw std::invalid_argument("ZipfSampler: alpha must be > 0 and != 1");
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -alpha));
}

double ZipfSampler::h(double x) const {
  // Integral of x^-alpha (alpha != 1).
  return std::pow(x, 1.0 - alpha_) / (1.0 - alpha_);
}

double ZipfSampler::h_inv(double x) const {
  return std::pow((1.0 - alpha_) * x, 1.0 / (1.0 - alpha_));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  // Hörmann & Derflinger rejection-inversion.
  for (;;) {
    double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    double x = h_inv(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= h(static_cast<double>(k) + 0.5) -
                 std::pow(static_cast<double>(k), -alpha_)) {
      return k;
    }
  }
}

}  // namespace tts::util
