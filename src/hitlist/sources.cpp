#include "hitlist/sources.hpp"

namespace tts::hitlist {

std::string_view to_string(Source s) {
  switch (s) {
    case Source::kDns: return "DNS";
    case Source::kTraceroute: return "traceroute";
    case Source::kTga: return "TGA";
    case Source::kAliased: return "aliased";
    case Source::kStale: return "stale";
  }
  return "?";
}

AddressOf initial_address_of() {
  return [](const inet::Device& d) { return d.initial_address; };
}

std::vector<SourcedAddress> dns_source(const inet::Population& pop,
                                       const AddressOf& addr_of) {
  std::vector<SourcedAddress> out;
  for (const auto& d : pop.devices())
    if (d.in_dns_sources) out.push_back({addr_of(d), Source::kDns});
  return out;
}

std::vector<SourcedAddress> traceroute_source(const inet::Population& pop,
                                              const SourceConfig& config,
                                              util::Rng& rng,
                                              const AddressOf& addr_of) {
  std::vector<SourcedAddress> out;
  for (const auto& d : pop.devices())
    if (d.in_traceroute)
      out.push_back({addr_of(d), Source::kTraceroute});

  // Synthetic router interfaces: low-byte or zero IIDs scattered across the
  // /48s of every announced prefix — the structured-address mass that makes
  // hitlists look infrastructure-heavy (Figure 1).
  for (const auto& as : pop.registry().all()) {
    for (const auto& prefix : as.prefixes) {
      for (int i = 0; i < config.routers_per_prefix; ++i) {
        std::uint64_t idx48 = rng.below(4096);
        std::uint64_t hi = prefix.address().hi64() | (idx48 << 16);
        std::uint64_t iid = rng.chance(0.4) ? 0 : 1 + rng.below(254);
        out.push_back(
            {net::Ipv6Address::from_halves(hi, iid), Source::kTraceroute});
      }
    }
  }
  return out;
}

std::vector<SourcedAddress> tga_source(
    const std::vector<SourcedAddress>& seeds, const SourceConfig& config,
    util::Rng& rng) {
  std::vector<SourcedAddress> out;
  out.reserve(seeds.size() * static_cast<std::size_t>(config.tga_per_seed));
  for (const auto& seed : seeds) {
    std::uint64_t hi = seed.addr.hi64();
    std::uint64_t iid = seed.addr.lo64();
    for (int i = 0; i < config.tga_per_seed; ++i) {
      double pick = rng.uniform();
      net::Ipv6Address candidate;
      if (pick < 0.5) {
        // Nearby IIDs in the same /64 (::1, ::2, seed±1 ...).
        std::uint64_t delta = 1 + rng.below(8);
        candidate = net::Ipv6Address::from_halves(
            hi, rng.chance(0.5) ? iid + delta : delta);
      } else if (pick < 0.85) {
        // Adjacent /64 (next rack slot / VLAN) with the same IID; wraps
        // inside the /48 — TGAs extrapolate within the seed's site.
        std::uint64_t hi2 = (hi & ~0xffffULL) |
                            ((hi + ((1 + rng.below(4)) << 8)) & 0xffff);
        candidate = net::Ipv6Address::from_halves(hi2, iid);
      } else {
        // Same /48, random /64, structured IID.
        std::uint64_t hi2 = (hi & ~0xffffULL) | (rng.below(65536));
        candidate = net::Ipv6Address::from_halves(hi2, 1 + rng.below(16));
      }
      out.push_back({candidate, Source::kTga});
    }
  }
  return out;
}

std::vector<SourcedAddress> aliased_source(const inet::AsRegistry& registry,
                                           const SourceConfig& config,
                                           util::Rng& rng) {
  std::vector<SourcedAddress> out;
  const auto& region = registry.cdn_alias_region();
  std::uint64_t base_hi = region.address().hi64();
  // Region is a /40: randomise the low 24 bits of the high half + the IID.
  for (std::uint64_t i = 0; i < config.aliased_samples; ++i) {
    std::uint64_t hi = base_hi | rng.below(1ULL << 24);
    out.push_back(
        {net::Ipv6Address::from_halves(hi, rng.next()), Source::kAliased});
  }
  return out;
}

std::vector<SourcedAddress> stale_source(const inet::Population& pop,
                                         std::size_t live_dns_count,
                                         const SourceConfig& config,
                                         util::Rng& rng) {
  std::vector<SourcedAddress> out;
  auto n = static_cast<std::uint64_t>(
      static_cast<double>(live_dns_count) * config.stale_fraction);
  const auto& devices = pop.devices();
  if (devices.empty()) return out;
  for (std::uint64_t i = 0; i < n; ++i) {
    // A former address of a random device: same delegation pattern, IID
    // that no longer exists (rotated away long before the study).
    const auto& d = devices[rng.below(devices.size())];
    std::uint64_t hi = d.initial_address.hi64() ^ (rng.below(0xffff) << 16);
    out.push_back(
        {net::Ipv6Address::from_halves(hi, rng.next()), Source::kStale});
  }
  return out;
}

}  // namespace tts::hitlist
