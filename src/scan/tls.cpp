#include "scan/tls.hpp"

namespace tts::scan {

using simnet::TcpConnection;

std::shared_ptr<TlsClientSession> TlsClientSession::create(
    simnet::TcpConnectionPtr conn, std::string sni) {
  auto session = std::shared_ptr<TlsClientSession>(
      new TlsClientSession(std::move(conn), std::move(sni)));
  auto weak = std::weak_ptr<TlsClientSession>(session);
  session->conn_->set_on_data(TcpConnection::Side::kClient,
                              [weak](std::vector<std::uint8_t> data) {
                                if (auto self = weak.lock())
                                  self->on_record(std::move(data));
                              });
  return session;
}

void TlsClientSession::handshake(HandshakeFn on_done) {
  on_handshake_ = std::move(on_done);
  proto::ClientHello hello;
  hello.sni = sni_;
  conn_->send(TcpConnection::Side::kClient, proto::encode(hello));
}

void TlsClientSession::send(std::vector<std::uint8_t> data) {
  conn_->send(TcpConnection::Side::kClient, proto::encode_app_data(data));
}

void TlsClientSession::on_record(std::vector<std::uint8_t> data) {
  auto msg = proto::decode(data);
  if (!msg) return;  // garbage record: ignore, the probe timeout handles it
  switch (msg->kind) {
    case proto::TlsMessage::Kind::kServerHello:
      if (!established_ && on_handshake_) {
        established_ = true;
        TlsHandshakeResult result;
        result.ok = true;
        result.certificate = msg->server_hello.cert;
        auto fn = std::move(on_handshake_);
        on_handshake_ = nullptr;
        fn(result);
      }
      break;
    case proto::TlsMessage::Kind::kAlert:
      if (!established_ && on_handshake_) {
        TlsHandshakeResult result;
        result.ok = false;
        result.alert = msg->alert.description;
        auto fn = std::move(on_handshake_);
        on_handshake_ = nullptr;
        fn(result);
      }
      break;
    case proto::TlsMessage::Kind::kAppData:
      if (established_ && on_app_data_) {
        // Invoke a copy: the handler may finish the probe, which drops
        // on_app_data_ itself via drop_callbacks() mid-call.
        AppDataFn fn = on_app_data_;
        fn(std::move(msg->app_data));
      }
      break;
    case proto::TlsMessage::Kind::kClientHello:
      break;  // a client never receives a ClientHello; drop
  }
}

}  // namespace tts::scan
