// Route-plane harness: a full Study under a scripted reachability flap — a
// whole eyeball AS withdrawn mid-run and re-announced, one of our pool
// servers' /48 withdrawn alongside it, and an inbound-only loss window that
// trips prefix breakers hard enough to escalate their AS tier. Asserts the
// stack degrades and recovers end to end: probe-record conservation
// including the deferred term, the quarantine drains back through the
// queue, the AS breaker opens AND re-closes, the pool monitor demotes on
// withdrawal and re-promotes on convergence, and the whole perturbed run
// keeps bit-identical same-seed digests at shard counts 1, 2 and 4.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/report.hpp"
#include "core/study.hpp"
#include "harness.hpp"
#include "inet/as_registry.hpp"
#include "simnet/fault.hpp"
#include "simnet/route.hpp"

namespace tts::harness {
namespace {

/// The flap windows, in sim time. The loss window runs first so the AS
/// breaker escalates on real timeout streaks; the withdrawal follows so
/// quarantined targets are deferred without ever launching (no token spent,
/// no record synthesized), then drain back when the routes return.
constexpr simnet::SimTime kLossFrom = simnet::hours(6);
constexpr simnet::SimTime kLossUntil = simnet::hours(12);
constexpr simnet::SimTime kWithdrawAt = simnet::hours(13);
constexpr simnet::SimTime kAnnounceAt = simnet::hours(18);

/// Script both planes against generated artifacts: the eyeball prefixes
/// and our pool servers' addresses only exist once the study has built its
/// Internet, so everything installs from on_built (route subscriptions made
/// at engine construction are buffered until then).
void install_flap(core::Study& study) {
  auto eyeballs =
      study.registry().by_category(inet::AsCategory::kCableDslIsp);
  ASSERT_FALSE(eyeballs.empty());

  // Inbound-only total loss into the eyeball space for six hours: every
  // probe into it times out, tripping per-/40 breakers until their /32
  // AS tier escalates.
  simnet::FaultScenario faults;
  for (const inet::AsInfo* as : eyeballs) {
    for (const net::Ipv6Prefix& prefix : as->prefixes) {
      faults.rules.push_back({.prefix = prefix,
                              .kind = simnet::FaultKind::kLoss,
                              .from = kLossFrom,
                              .until = kLossUntil,
                              .probability = 1.0,
                              .direction = simnet::FaultDirection::kInbound});
    }
  }
  study.network().install_faults(std::move(faults), &study.metrics(),
                                 &study.flight());

  // The reachability flap: one whole eyeball AS vanishes from the routing
  // plane mid-scan, plus the /48 holding one of our own pool servers.
  simnet::RouteScenario routes;
  routes.convergence = simnet::minutes(2);
  for (const net::Ipv6Prefix& prefix : eyeballs.front()->prefixes) {
    routes.withdraw(prefix, kWithdrawAt);
    routes.announce(prefix, kAnnounceAt);
  }
  auto ours = study.pool().our_servers();
  ASSERT_FALSE(ours.empty());
  net::Ipv6Prefix server_net(ours.front().address.masked(48), 48);
  routes.withdraw(server_net, kWithdrawAt);
  routes.announce(server_net, kAnnounceAt);
  study.network().install_routes(std::move(routes), &study.metrics(),
                                 &study.flight());
}

core::StudyConfig flap_config() {
  auto config = core::make_study_config(core::StudyScale::kTiny);
  config.population.device_scale = 0.05;
  config.runtime.duration = simnet::days(2);
  config.hitlist_scan_start = simnet::days(1);
  config.drain = simnet::hours(12);

  config.scan_retry.max_retries = 2;
  config.scan_retry.base_backoff = simnet::sec(30);

  // Fine-grained breakers inside coarse AS tiers: /40 children under a /32
  // AS mask, escalating once two children trip.
  config.scan_breaker.enabled = true;
  config.scan_breaker.prefix_len = 40;
  config.scan_breaker.open_after = 3;
  config.scan_breaker.open_for = simnet::minutes(10);
  config.scan_breaker.as_open_after = 2;
  config.scan_breaker.as_prefix_len = 32;

  config.enable_pool_monitor = true;
  config.pool_monitor.check_interval = simnet::minutes(30);
  config.pool_monitor.min_score = -20;

  config.on_built = install_flap;
  return config;
}

/// Per-engine record conservation, extended for the route plane: deferred
/// launches never spent a token and never synthesized a record, so the
/// fault-harness identity (records = completed + shed - retries) still
/// holds — and every deferral is accounted for as either re-queued or
/// still quarantined.
void expect_conserved(const scan::ScanEngine& engine,
                      const scan::ResultStore& results) {
  scan::Dataset ds = engine.config().dataset;
  EXPECT_EQ(results.total(ds), engine.probes_completed() +
                                   engine.breaker_shed() -
                                   engine.retries_staged())
      << "dataset " << to_string(ds);
  EXPECT_EQ(engine.route_deferred(),
            engine.route_requeued() + engine.quarantine_depth())
      << "dataset " << to_string(ds);
  EXPECT_LE(engine.probes_completed(), engine.probes_launched());
}

std::uint64_t flap_digest(const core::StudyConfig& config) {
  core::Study study(config);
  study.run();
  std::string md = core::render_markdown(core::build_report(study));
  Fnv64 f;
  f.mix_bytes(md);
  const simnet::RoutePlane* routes = study.network().routes();
  f.mix(routes->withdrawals())
      .mix(routes->announcements())
      .mix(routes->blackholed());
  f.mix(study.network().faults()->udp_dropped());
  for (const scan::ScanEngine* engine :
       {study.ntp_engine(), study.hitlist_engine()}) {
    f.mix(engine->probes_launched())
        .mix(engine->retries_staged())
        .mix(engine->breaker_shed())
        .mix(engine->route_deferred())
        .mix(engine->route_requeued())
        .mix(engine->breaker()->opens())
        .mix(engine->breaker()->closes())
        .mix(engine->breaker()->as_opens())
        .mix(engine->breaker()->as_closes());
  }
  f.mix(study.pool_monitor()->route_demotions())
      .mix(study.pool_monitor()->route_promotions());
  f.mix(study.pool().demotions()).mix(study.pool().promotions());
  f.mix(study.events_executed());
  return f.value();
}

TEST(RouteHarness, StudyAdaptsToReachabilityFlap) {
  core::Study study(flap_config());
  study.run();

  // The flap actually committed and the data path saw it.
  const simnet::RoutePlane* routes = study.network().routes();
  ASSERT_NE(routes, nullptr);
  EXPECT_GT(routes->withdrawals(), 0u);
  EXPECT_GT(routes->announcements(), 0u);
  EXPECT_GT(routes->blackholed(), 0u);
  EXPECT_GT(study.network().faults()->udp_dropped(), 0u);

  // The run still completed and produced scan material.
  ASSERT_NE(study.ntp_engine(), nullptr);
  ASSERT_NE(study.hitlist_engine(), nullptr);
  EXPECT_GT(study.results().size(), 0u);
  EXPECT_GT(study.collector().distinct_addresses(), 0u);

  // Targets in the withdrawn AS were quarantined instead of launched, then
  // re-staged through the queue once the routes returned — and the
  // conservation law holds with the deferred term.
  EXPECT_GT(study.ntp_engine()->route_deferred(), 0u);
  EXPECT_GT(study.ntp_engine()->route_requeued(), 0u);
  expect_conserved(*study.ntp_engine(), study.results());
  expect_conserved(*study.hitlist_engine(), study.results());

  // The loss window tripped enough /40 children to escalate the /32 AS
  // tier, and post-window recovery trials de-escalated it again.
  std::uint64_t as_opens = 0, as_closes = 0;
  for (const scan::ScanEngine* engine :
       {study.ntp_engine(), study.hitlist_engine()}) {
    ASSERT_NE(engine->breaker(), nullptr);
    as_opens += engine->breaker()->as_opens();
    as_closes += engine->breaker()->as_closes();
  }
  EXPECT_GT(as_opens, 0u);
  EXPECT_GT(as_closes, 0u);

  // The pool monitor fast-demoted the server in the withdrawn /48 at the
  // withdrawal barrier and restored its score on re-announcement.
  ASSERT_NE(study.pool_monitor(), nullptr);
  EXPECT_GE(study.pool_monitor()->route_demotions(), 1u);
  EXPECT_GE(study.pool_monitor()->route_promotions(), 1u);

  // Route instruments reached the registry for the report.
  EXPECT_NE(study.metrics().find_counter("route_withdrawals", {}), nullptr);
  EXPECT_NE(study.metrics().find_counter("route_blackholed", {}), nullptr);
  EXPECT_NE(study.metrics().find_counter("scan_route_deferred",
                                         {{"dataset", "ntp"}}),
            nullptr);
}

TEST(RouteHarness, SameSeedSameFlapBitIdentical) {
  auto config = flap_config();
  EXPECT_EQ(flap_digest(config), flap_digest(config));
}

TEST(RouteHarness, ShardedFlapMatchesSingleShardDigest) {
  // Route transitions commit at window barriers and the verdict itself is
  // draw-free, so the full flap pipeline — blackholes, quarantine and
  // re-staging, AS escalation, the monitor's demote/promote — must be
  // shard-count-invariant.
  auto config = flap_config();
  config.shards.shards = 1;
  std::uint64_t single = flap_digest(config);
  config.shards.shards = 2;
  config.shards.workers = 2;
  EXPECT_EQ(single, flap_digest(config));
  config.shards.shards = 4;
  config.shards.workers = 2;
  EXPECT_EQ(single, flap_digest(config));
}

}  // namespace
}  // namespace tts::harness
