// A pool NTP server modified to capture client addresses (Section 3.1).
//
// The server binds UDP port 123 on its address, answers every well-formed
// mode-3 request with a mode-4 response, and reports the client source
// address to the AddressCollector. Malformed datagrams are dropped and
// counted, mirroring a hardened production server.
#pragma once

#include <cstdint>
#include <string>

#include "net/ipv6.hpp"
#include "ntp/collector.hpp"
#include "ntp/ntp_packet.hpp"
#include "simnet/network.hpp"

namespace tts::ntp {

inline constexpr std::uint16_t kNtpPort = 123;

struct NtpServerConfig {
  net::Ipv6Address address;
  std::string country;       // ISO code, e.g. "IN" — the pool zone
  ServerId id = 0;
  std::uint8_t stratum = 2;
  /// Whether client addresses are captured (our 11 servers: yes;
  /// third-party pool servers: no).
  bool capture = true;
};

class NtpServer {
 public:
  NtpServer(simnet::Network& network, NtpServerConfig config,
            AddressCollector* collector);
  ~NtpServer();

  NtpServer(const NtpServer&) = delete;
  NtpServer& operator=(const NtpServer&) = delete;

  const NtpServerConfig& config() const { return config_; }
  const net::Ipv6Address& address() const { return config_.address; }

  std::uint64_t requests_served() const { return served_; }
  std::uint64_t malformed_dropped() const { return malformed_; }

 private:
  void on_datagram(const simnet::Datagram& dg);

  simnet::Network& network_;
  NtpServerConfig config_;
  AddressCollector* collector_;  // may be null for third-party servers
  std::uint64_t served_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace tts::ntp
