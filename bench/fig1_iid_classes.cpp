// Figure 1: proportion of addresses per IID class and the share of
// addresses in Cable/DSL/ISP ASes, across datasets.
#include "analysis/iid_classes.hpp"
#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();

  auto ntp = study.ntp_addresses();
  const auto& hit_public = study.hitlist().public_list;
  const auto& hit_full = study.hitlist().full;

  auto ntp_dist = analysis::classify_addresses(ntp);
  auto pub_dist = analysis::classify_addresses(hit_public);
  auto full_dist = analysis::classify_addresses(hit_full);

  util::TextTable t("Figure 1: addresses grouped by IID class");
  t.set_header({"IID class", "Our Data", "TUM public", "TUM full"});
  for (std::size_t i = 0; i < analysis::kIidClassCount; ++i) {
    auto cls = static_cast<analysis::IidClass>(i);
    t.add_row({std::string(to_string(cls)),
               util::percent(ntp_dist.fraction(cls)),
               util::percent(pub_dist.fraction(cls)),
               util::percent(full_dist.fraction(cls))});
  }
  t.add_rule();
  double ntp_eyeball = analysis::cable_dsl_isp_share(ntp, study.registry());
  double pub_eyeball =
      analysis::cable_dsl_isp_share(hit_public, study.registry());
  double full_eyeball =
      analysis::cable_dsl_isp_share(hit_full, study.registry());
  t.add_row({"AS = Cable/DSL/ISP", util::percent(ntp_eyeball),
             util::percent(pub_eyeball), util::percent(full_eyeball)});
  t.add_note("Paper: hitlists carry more structured (zero/low-byte) IIDs;");
  t.add_note("NTP data skews to EUI-64/high-entropy and eyeball ASes.");
  t.render(std::cout);

  auto structured = [](const analysis::IidDistribution& d) {
    return d.fraction(analysis::IidClass::kZero) +
           d.fraction(analysis::IidClass::kLastByte) +
           d.fraction(analysis::IidClass::kLastTwoBytes);
  };
  bool pass = structured(pub_dist) > structured(ntp_dist) &&
              structured(full_dist) > structured(ntp_dist) &&
              ntp_eyeball > pub_eyeball;
  std::cout << "\nShape check (hitlist structured, NTP eyeball-heavy): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
