#include "scan/pending_queue.hpp"

namespace tts::scan {

PendingQueue::PendingQueue(std::size_t lane_capacity)
    : lane_capacity_(lane_capacity) {}

bool PendingQueue::push(ScanIntent intent) {
  Lane& lane = lanes_[static_cast<std::size_t>(intent.dataset)];
  if (lane.size() >= lane_capacity_) return false;
  lane.push(Entry{std::move(intent), next_seq_++});
  ++size_;
  if (size_ > peak_) peak_ = size_;
  return true;
}

std::size_t PendingQueue::free_slots(Dataset lane) const {
  std::size_t used = lanes_[static_cast<std::size_t>(lane)].size();
  return used >= lane_capacity_ ? 0 : lane_capacity_ - used;
}

std::size_t PendingQueue::lane_size(Dataset lane) const {
  return lanes_[static_cast<std::size_t>(lane)].size();
}

std::optional<simnet::SimTime> PendingQueue::next_not_before() const {
  std::optional<simnet::SimTime> earliest;
  for (const Lane& lane : lanes_) {
    if (lane.empty()) continue;
    simnet::SimTime t = lane.top().intent.not_before;
    if (!earliest || t < *earliest) earliest = t;
  }
  return earliest;
}

bool PendingQueue::has_due(simnet::SimTime now) const {
  for (const Lane& lane : lanes_)
    if (!lane.empty() && lane.top().intent.not_before <= now) return true;
  return false;
}

const ScanIntent* PendingQueue::peek_due(simnet::SimTime now) const {
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    std::size_t li = (rr_next_ + i) % lanes_.size();
    const Lane& lane = lanes_[li];
    if (lane.empty() || lane.top().intent.not_before > now) continue;
    return &lane.top().intent;
  }
  return nullptr;
}

std::optional<ScanIntent> PendingQueue::pull_due(simnet::SimTime now) {
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    std::size_t li = (rr_next_ + i) % lanes_.size();
    Lane& lane = lanes_[li];
    if (lane.empty() || lane.top().intent.not_before > now) continue;
    ScanIntent intent = lane.top().intent;
    lane.pop();
    --size_;
    rr_next_ = (li + 1) % lanes_.size();
    return intent;
  }
  return std::nullopt;
}

}  // namespace tts::scan
