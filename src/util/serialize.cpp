#include "util/serialize.hpp"

#include <bit>
#include <cstring>

namespace tts::util {

// Doubles travel as their IEEE-754 bit pattern. std::bit_cast keeps the
// exact value (including the sign of zero); snapshots never round-trip
// through text.
void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

}  // namespace tts::util
