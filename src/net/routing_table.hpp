// Longest-prefix-match routing table: IPv6 prefix -> AS number.
//
// The analyses join every address against its origin AS (Table 1 AS counts,
// Figure 1's Cable/DSL/ISP share, Table 5 per-AS aggregation). A binary trie
// gives O(128) lookups independent of table size; an exhaustive linear oracle
// exists in the tests to validate it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv6.hpp"

namespace tts::net {

using AsNumber = std::uint32_t;

class RoutingTable {
 public:
  RoutingTable();
  ~RoutingTable();
  RoutingTable(RoutingTable&&) noexcept;
  RoutingTable& operator=(RoutingTable&&) noexcept;
  RoutingTable(const RoutingTable&) = delete;
  RoutingTable& operator=(const RoutingTable&) = delete;

  /// Insert or replace an announcement. More-specific prefixes win lookups.
  void announce(const Ipv6Prefix& prefix, AsNumber asn);

  /// Longest-prefix-match; nullopt when no covering prefix exists.
  std::optional<AsNumber> lookup(const Ipv6Address& addr) const;

  /// All announcements, in insertion-independent (prefix-sorted) order.
  std::vector<std::pair<Ipv6Prefix, AsNumber>> entries() const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace tts::net
