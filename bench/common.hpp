// Shared bench scaffolding: every table/figure binary runs one full study
// and prints a paper-vs-measured table. The scale defaults to kSmall
// (roughly 25k devices, ~30 s); set TTS_BENCH_SCALE=tiny|small|medium to
// trade statistics for time.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/study.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace tts::bench {

inline core::StudyScale bench_scale() {
  const char* env = std::getenv("TTS_BENCH_SCALE");
  if (!env) return core::StudyScale::kSmall;
  std::string v = env;
  if (v == "tiny") return core::StudyScale::kTiny;
  if (v == "medium") return core::StudyScale::kMedium;
  return core::StudyScale::kSmall;
}

/// Metrics epilogue (heartbeat timeline + final metrics + spans) after the
/// shared study; set TTS_BENCH_METRICS=0 to suppress it.
inline bool bench_metrics_enabled() {
  const char* env = std::getenv("TTS_BENCH_METRICS");
  return !(env && std::string(env) == "0");
}

/// Run the standard study once (shared by the whole binary).
inline core::Study& shared_study() {
  static core::Study* study = [] {
    auto config = core::make_study_config(bench_scale());
    config.obs.enabled = bench_metrics_enabled();
    auto* s = new core::Study(std::move(config));
    std::cerr << "[bench] running study (scale="
              << (bench_scale() == core::StudyScale::kTiny     ? "tiny"
                  : bench_scale() == core::StudyScale::kMedium ? "medium"
                                                               : "small")
              << ")...\n";
    s->run();
    std::cerr << "[bench] study done: " << s->events_executed()
              << " events, "
              << s->collector().distinct_addresses()
              << " addresses collected\n";
    if (const auto* budget = s->scan_budget()) {
      std::cerr << "[bench] shared scan budget: " << budget->max_pps()
                << " pps cap";
      if (const auto* ntp = s->ntp_engine())
        std::cerr << ", ntp " << budget->grants(ntp->budget_client())
                  << " grants (" << budget->borrowed(ntp->budget_client())
                  << " borrowed, " << ntp->pump_wakes() << " pump wakes)";
      if (const auto* hit = s->hitlist_engine())
        std::cerr << ", hitlist " << budget->grants(hit->budget_client())
                  << " grants (" << budget->borrowed(hit->budget_client())
                  << " borrowed, " << hit->pump_wakes() << " pump wakes)";
      std::cerr << ", " << s->overflow_dropped() << " overflow drops\n";
    }
    if (s->config().obs.enabled)
      std::cerr << "\n[bench] observability epilogue "
                   "(TTS_BENCH_METRICS=0 to silence)\n"
                << s->observability_report() << "\n";
    return s;
  }();
  return *study;
}

/// "measured (paper: X)" cell helper.
inline std::string vs_paper(const std::string& measured,
                            const std::string& paper) {
  return measured + "  [paper: " + paper + "]";
}

inline void print_scale_note(util::TextTable& table) {
  table.add_note(
      "Populations are scaled down by orders of magnitude vs the paper;");
  table.add_note(
      "compare shapes (ordering, ratios, crossovers), not absolute counts.");
}

}  // namespace tts::bench
