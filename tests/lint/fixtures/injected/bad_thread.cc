// Injected C1 violation for the WILL_FAIL lane: a worker thread spawned
// outside the dispatcher, with no allowlist and no pragma. The ctest
// inverts the exit code, proving the compile-commands lane actually
// fails when confinement is broken.
#include <thread>

void rogue() {
  std::thread worker([] {});
  worker.join();
}
