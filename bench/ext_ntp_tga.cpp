// Extension: a target generator trained on NTP-sourced addresses
// (Section 6 future work). Candidates are scanned like any hitlist; the
// bench contrasts the address-level hit rate (poor: dynamic space rots)
// with the /48-level coverage (good: the structure is real).
#include <unordered_set>

#include "analysis/network_agg.hpp"
#include "hitlist/ntp_tga.hpp"
#include "common.hpp"

using namespace tts;

int main() {
  // A dedicated study so we can scan the generated targets afterwards.
  auto config = core::make_study_config(core::StudyScale::kTiny);
  config.enable_hitlist_scan = false;
  config.enable_telescope = false;
  config.enable_actors = false;
  config.runtime.duration = simnet::days(10);
  config.drain = simnet::days(1);
  core::Study study(config);
  std::cerr << "[bench] running collection phase...\n";
  study.run();

  auto observed = study.ntp_addresses();
  hitlist::NtpSeededTga tga;
  tga.train(observed);

  hitlist::NtpTgaConfig tga_config;
  tga_config.candidates = 5000;
  auto candidates = tga.generate(tga_config);

  // Address-level aliasing: how many candidates are addresses that exist
  // right now? (devices moved on — expect almost none)
  std::uint64_t live = 0;
  for (const auto& c : candidates)
    if (study.network().online(c)) ++live;

  // Network-level coverage: do candidates fall into /48s that actually
  // house active devices?
  std::unordered_set<net::Ipv6Prefix, net::Ipv6PrefixHash> device48;
  for (const auto& d : study.population().devices())
    device48.insert(net::Ipv6Prefix(d.initial_address, 48));
  std::uint64_t in_live_48 = 0;
  for (const auto& c : candidates)
    if (device48.contains(net::Ipv6Prefix(c, 48))) ++in_live_48;

  util::TextTable t("Extension: NTP-seeded target generation");
  t.set_header({"metric", "value"});
  t.add_row({"training addresses", util::grouped(observed.size())});
  t.add_row({"hot /48s learned", util::grouped(tga.hot_networks())});
  t.add_row({"candidates emitted", util::grouped(candidates.size())});
  t.add_row({"candidates alive as addresses",
             util::grouped(live) + " (" +
                 util::percent(static_cast<double>(live) /
                               static_cast<double>(candidates.size())) +
                 ")"});
  t.add_row({"candidates inside device-holding /48s",
             util::grouped(in_live_48) + " (" +
                 util::percent(static_cast<double>(in_live_48) /
                               static_cast<double>(candidates.size())) +
                 ")"});
  t.add_note("The paper: 'aggregating NTP-sourced addresses into a list is "
             "not useful, as such a list would be outdated almost "
             "immediately' — but the network-level structure persists.");
  t.render(std::cout);

  double addr_rate =
      static_cast<double>(live) / static_cast<double>(candidates.size());
  double net_rate = static_cast<double>(in_live_48) /
                    static_cast<double>(candidates.size());
  // Address-level hits should be essentially zero while a solid minority
  // of candidates still land in device-holding /48s (the denominator only
  // counts *initial* device /48s; rotations use a 6x larger pool, so even
  // perfectly learned structure tops out well below 100 %).
  bool pass = addr_rate < 0.02 && net_rate > 0.25;
  std::cout << "\nShape check (address-level rot, network-level structure): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
