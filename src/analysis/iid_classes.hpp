// Interface-identifier classification (Figure 1).
//
// Following Rye & Levin and Section 3.2.1, addresses are grouped by whether
// the IID is all zeroes, has only the last byte / last two bytes set
// ("structured", typical of manually numbered servers and routers), embeds
// an EUI-64 marker, or — for everything else — by the entropy of its bytes.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "inet/as_registry.hpp"
#include "net/ipv6.hpp"

namespace tts::analysis {

enum class IidClass : std::uint8_t {
  kZero,          // ::
  kLastByte,      // ::1 .. ::ff
  kLastTwoBytes,  // ::100 .. ::ffff
  kEui64,         // ff:fe marker
  kEntropyLow,    // few distinct bytes (structured-ish)
  kEntropyMedium,
  kEntropyHigh,   // random-looking (privacy addresses)
};
inline constexpr std::size_t kIidClassCount = 7;

std::string_view to_string(IidClass c);

IidClass classify_iid(const net::Ipv6Address& addr);

struct IidDistribution {
  std::array<std::uint64_t, kIidClassCount> counts{};
  std::uint64_t total = 0;

  void add(IidClass c) {
    ++counts[static_cast<std::size_t>(c)];
    ++total;
  }
  double fraction(IidClass c) const {
    return total == 0 ? 0.0
                      : static_cast<double>(
                            counts[static_cast<std::size_t>(c)]) /
                            static_cast<double>(total);
  }
};

IidDistribution classify_addresses(
    std::span<const net::Ipv6Address> addresses);

/// Share of addresses whose origin AS is labelled Cable/DSL/ISP — the
/// PeeringDB-based eyeball indicator plotted alongside Figure 1.
double cable_dsl_isp_share(std::span<const net::Ipv6Address> addresses,
                           const inet::AsRegistry& registry);

}  // namespace tts::analysis
