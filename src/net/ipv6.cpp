#include "net/ipv6.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace tts::net {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Parse one hextet group (1-4 hex digits). Returns -1 on error.
int parse_group(std::string_view g) {
  if (g.empty() || g.size() > 4) return -1;
  int v = 0;
  for (char c : g) {
    int d = hex_digit(c);
    if (d < 0) return -1;
    v = (v << 4) | d;
  }
  return v;
}

}  // namespace

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  // Split on "::" (at most one occurrence).
  std::size_t dc = text.find("::");
  if (dc != std::string_view::npos &&
      text.find("::", dc + 1) != std::string_view::npos)
    return std::nullopt;

  auto split_groups = [](std::string_view part,
                         std::vector<int>& out) -> bool {
    if (part.empty()) return true;
    std::size_t start = 0;
    for (;;) {
      std::size_t colon = part.find(':', start);
      std::string_view g = colon == std::string_view::npos
                               ? part.substr(start)
                               : part.substr(start, colon - start);
      int v = parse_group(g);
      if (v < 0) return false;
      out.push_back(v);
      if (colon == std::string_view::npos) break;
      start = colon + 1;
      if (start >= part.size() && colon != std::string_view::npos)
        return false;  // trailing single colon
    }
    return true;
  };

  std::vector<int> head, tail;
  if (dc == std::string_view::npos) {
    if (!split_groups(text, head) || head.size() != 8) return std::nullopt;
  } else {
    if (!split_groups(text.substr(0, dc), head)) return std::nullopt;
    if (!split_groups(text.substr(dc + 2), tail)) return std::nullopt;
    if (head.size() + tail.size() > 7) return std::nullopt;
  }

  std::array<std::uint8_t, kBytes> bytes{};
  for (std::size_t i = 0; i < head.size(); ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(head[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(head[i] & 0xff);
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    std::size_t g = 8 - tail.size() + i;
    bytes[2 * g] = static_cast<std::uint8_t>(tail[i] >> 8);
    bytes[2 * g + 1] = static_cast<std::uint8_t>(tail[i] & 0xff);
  }
  return from_bytes(bytes);
}

std::string Ipv6Address::to_string() const {
  std::array<std::uint16_t, 8> groups;
  for (std::size_t i = 0; i < 8; ++i)
    groups[i] = static_cast<std::uint16_t>((bytes_[2 * i] << 8) |
                                           bytes_[2 * i + 1]);

  // Find longest run of zero groups (length >= 2) for "::" compression;
  // RFC 5952: first of equal-length runs wins.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  auto join = [&](int from, int to) {
    std::string part;
    char buf[8];
    for (int i = from; i < to; ++i) {
      if (i != from) part += ':';
      std::snprintf(buf, sizeof buf, "%x",
                    groups[static_cast<std::size_t>(i)]);
      part += buf;
    }
    return part;
  };

  if (best_start < 0) return join(0, 8);
  return join(0, best_start) + "::" + join(best_start + best_len, 8);
}

Ipv6Address Ipv6Address::masked(unsigned prefix_len) const {
  if (prefix_len >= 128) return *this;
  std::array<std::uint8_t, kBytes> out = bytes_;
  std::size_t full = prefix_len / 8;
  unsigned rem = prefix_len % 8;
  if (full < kBytes && rem != 0) {
    out[full] &= static_cast<std::uint8_t>(0xff00 >> rem);
    ++full;
  }
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(full), out.end(),
            std::uint8_t{0});
  return from_bytes(out);
}

Ipv6Prefix::Ipv6Prefix(const Ipv6Address& addr, unsigned len) : len_(len) {
  if (len > 128) throw std::invalid_argument("prefix length > 128");
  addr_ = addr.masked(len);
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) {
  std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv6Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 3) return std::nullopt;
  unsigned len = 0;
  for (char c : len_text) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + static_cast<unsigned>(c - '0');
  }
  if (len > 128) return std::nullopt;
  if (addr->masked(len) != *addr) return std::nullopt;  // host bits set
  return Ipv6Prefix(*addr, len);
}

bool Ipv6Prefix::contains(const Ipv6Address& a) const {
  return a.masked(len_) == addr_;
}

bool Ipv6Prefix::contains(const Ipv6Prefix& other) const {
  return other.len_ >= len_ && contains(other.addr_);
}

std::string Ipv6Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

Ipv6Prefix network_of(const Ipv6Address& a, unsigned prefix_len) {
  return Ipv6Prefix(a, prefix_len);
}

}  // namespace tts::net
