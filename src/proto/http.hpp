// Minimal HTTP/1.1 request/response codec — enough for a zgrab2-style
// banner grab: request line, Host header, status line, Server header, and
// an HTML body whose <title> the analysis extracts (Section 4.3.1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tts::proto {

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string host;        // Host header (empty = omitted)
  std::string user_agent = "Mozilla/5.0 (research scan)";

  std::vector<std::uint8_t> serialize() const;
  static std::optional<HttpRequest> parse(std::span<const std::uint8_t> wire);
};

struct HttpResponse {
  int status = 200;
  std::string server;      // Server header
  std::string body;        // HTML

  std::vector<std::uint8_t> serialize() const;
  static std::optional<HttpResponse> parse(
      std::span<const std::uint8_t> wire);
};

/// Build a tiny HTML page with the given <title>. An empty title produces a
/// page without a <title> element (the "(no title present)" group).
std::string html_page(const std::string& title);

/// Extract the <title> text from an HTML body; nullopt when absent.
std::optional<std::string> extract_title(const std::string& html);

}  // namespace tts::proto
