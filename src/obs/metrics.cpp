#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

namespace tts::obs {

namespace {

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

bool labels_equal(const Labels& a, const Labels& b) { return a == b; }

}  // namespace

// ------------------------------------------------------------- Histogram

Histogram::Histogram() : Histogram(exponential(1, 4.0, 16)) {}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.size() > kMaxBuckets - 1) bounds_.resize(kMaxBuckets - 1);
  counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  min_.store(std::numeric_limits<std::int64_t>::max(),
             std::memory_order_relaxed);
  max_.store(std::numeric_limits<std::int64_t>::min(),
             std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::exponential(std::int64_t first,
                                                 double factor,
                                                 std::size_t count) {
  std::vector<std::int64_t> bounds;
  bounds.reserve(count);
  double edge = static_cast<double>(first);
  for (std::size_t i = 0; i < count && i < kMaxBuckets - 1; ++i) {
    auto rounded = static_cast<std::int64_t>(edge);
    if (!bounds.empty() && rounded <= bounds.back()) rounded = bounds.back() + 1;
    bounds.push_back(rounded);
    edge *= factor;
  }
  return bounds;
}

void Histogram::record(std::int64_t v) {
  std::size_t bucket = bounds_.size();  // overflow unless a bound fits
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::int64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::int64_t Histogram::percentile(double p) const {
  std::uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  auto rank = static_cast<std::uint64_t>(p * static_cast<double>(total));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i].load(std::memory_order_relaxed);
    if (cum >= rank)
      return i < bounds_.size() ? bounds_[i] : max();
  }
  return max();
}

// ------------------------------------------------------------------ misc

std::string_view to_string(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

std::string SnapshotValue::full_name() const {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

const SnapshotValue* RegistrySnapshot::find(std::string_view full_name) const {
  for (const auto& v : values)
    if (v.full_name() == full_name) return &v;
  return nullptr;
}

// -------------------------------------------------------------- Registry

void Registry::add(Kind kind, const void* ptr, std::string name,
                   Labels labels, const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(
      Entry{std::move(name), sorted(std::move(labels)), kind, ptr, owner});
}

void Registry::enroll(const Counter& c, std::string name, Labels labels,
                      const void* owner) {
  add(Kind::kCounter, &c, std::move(name), std::move(labels), owner);
}

void Registry::enroll(const Gauge& g, std::string name, Labels labels,
                      const void* owner) {
  add(Kind::kGauge, &g, std::move(name), std::move(labels), owner);
}

void Registry::enroll(const Histogram& h, std::string name, Labels labels,
                      const void* owner) {
  add(Kind::kHistogram, &h, std::move(name), std::move(labels), owner);
}

void Registry::drop_owner(const void* owner) {
  if (!owner) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(entries_,
                [owner](const Entry& e) { return e.owner == owner; });
}

const Registry::Entry* Registry::find_entry(std::string_view name,
                                            const Labels& labels,
                                            Kind kind) const {
  Labels want = sorted(labels);
  for (const auto& e : entries_)
    if (e.kind == kind && e.name == name && labels_equal(e.labels, want))
      return &e;
  return nullptr;
}

const Counter* Registry::find_counter(std::string_view name,
                                      const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find_entry(name, labels, Kind::kCounter);
  return e ? static_cast<const Counter*>(e->ptr) : nullptr;
}

const Gauge* Registry::find_gauge(std::string_view name,
                                  const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find_entry(name, labels, Kind::kGauge);
  return e ? static_cast<const Gauge*>(e->ptr) : nullptr;
}

const Histogram* Registry::find_histogram(std::string_view name,
                                          const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find_entry(name, labels, Kind::kHistogram);
  return e ? static_cast<const Histogram*>(e->ptr) : nullptr;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

RegistrySnapshot Registry::snapshot(std::int64_t at) const {
  RegistrySnapshot snap;
  snap.at = at;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.values.reserve(entries_.size());
    for (const auto& e : entries_) {
      SnapshotValue v;
      v.name = e.name;
      v.labels = e.labels;
      v.kind = e.kind;
      switch (e.kind) {
        case Kind::kCounter:
          v.count = static_cast<const Counter*>(e.ptr)->value();
          break;
        case Kind::kGauge:
          v.value = static_cast<const Gauge*>(e.ptr)->value();
          break;
        case Kind::kHistogram: {
          const auto* h = static_cast<const Histogram*>(e.ptr);
          v.count = h->count();
          v.value = h->sum();
          v.min = h->count() ? h->min() : 0;
          v.max = h->count() ? h->max() : 0;
          v.bounds = h->bounds();
          v.bucket_counts.reserve(h->buckets());
          for (std::size_t i = 0; i < h->buckets(); ++i)
            v.bucket_counts.push_back(h->bucket_count(i));
          break;
        }
      }
      snap.values.push_back(std::move(v));
    }
  }
  std::sort(snap.values.begin(), snap.values.end(),
            [](const SnapshotValue& a, const SnapshotValue& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

}  // namespace tts::obs
