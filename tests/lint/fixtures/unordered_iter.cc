// D1 fixture: unordered-container iteration whose order can escape.
// Lines expected to be flagged carry a FINDING marker naming the rule;
// everything else must lint clean.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::unordered_map<std::string, int> counts;  // FINDING(shared-state)
std::unordered_set<int> ids;                  // FINDING(shared-state)

// Hash order lands in a vector: order escapes.
std::vector<int> escape_to_vector() {
  std::vector<int> out;
  for (const auto& [key, value] : counts) {  // FINDING(unordered-iter)
    out.push_back(value);
  }
  return out;
}

// Pure counting fold: mechanically order-insensitive, no finding.
long total() {
  long sum = 0;
  for (const auto& [key, value] : counts) {
    sum += value;
  }
  return sum;
}

// Min/max folding in the self-update form is order-insensitive.
int largest_id() {
  int best = 0;
  for (int id : ids) {
    best = std::max(best, id);
  }
  return best;
}

// Set-semantics insertion commutes.
std::unordered_set<int> doubled() {
  std::unordered_set<int> twice;
  for (int id : ids) {
    twice.insert(id * 2);
  }
  return twice;
}

// Handing out iterators exposes hash order to the caller.
auto first_entry() {
  return counts.begin();  // FINDING(unordered-iter)
}

// Draining through util::sorted_items() is ordered by construction.
namespace tts::util {
template <class M> int sorted_items(const M& m);
}
std::vector<int> drained_sorted() {
  std::vector<int> out;
  for (const auto& kv : tts::util::sorted_items(counts)) {
    out.push_back(kv);
  }
  return out;
}

// Aliases of unordered types are tracked through `using`.
using CountsByName = std::unordered_map<std::string, long>;
CountsByName by_name;  // FINDING(shared-state)
std::vector<long> escape_via_alias() {
  std::vector<long> out;
  for (const auto& [name, n] : by_name) {  // FINDING(unordered-iter)
    out.push_back(n);
  }
  return out;
}

// Conditional counting stays commutative.
int count_positive() {
  int n = 0;
  for (int id : ids) {
    if (id > 0) {
      ++n;
    } else {
      continue;
    }
  }
  return n;
}

// Early exit makes the result depend on visitation order.
int first_positive() {
  int hit = 0;
  for (int id : ids) {  // FINDING(unordered-iter)
    if (id > 0) {
      hit = id;
      break;
    }
  }
  return hit;
}

// Member access on another object that happens to share a name with an
// unordered global resolves to that object, not the global: no finding.
struct Wrapper {
  std::vector<int> counts;
};
int wrapper_front(const Wrapper& w) {
  return *w.counts.begin();
}

// Appending to a string is concatenation, not arithmetic: order-sensitive.
std::string joined() {
  std::string all;
  for (const auto& [key, value] : counts) {  // FINDING(unordered-iter)
    all += key;
  }
  return all;
}
