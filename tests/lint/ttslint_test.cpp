// ttslint's own test suite: tokenizer behaviour, rule semantics over the
// fixture corpus, and the pragma/allowlist escape hatches.
//
// Fixtures are asserted line-exact in both directions: every `FINDING(rule)`
// marker must be matched by a finding on that line, and every finding must
// land on a marked line. `FINDING-NEXT(rule)` expects the finding one line
// below the marker (for findings that sit on pragma lines the marker cannot
// share).
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

using Expectation = std::multiset<std::pair<int, std::string>>;

std::string fixture_path(const std::string& name) {
  return std::string(TTSLINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name));
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Collect (line, rule) expectations from FINDING / FINDING-NEXT markers.
Expectation parse_markers(const std::string& source) {
  Expectation expected;
  std::istringstream lines(source);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    for (std::size_t at = 0; (at = line.find("FINDING", at)) != std::string::npos;
         ++at) {
      std::size_t open = at + 7;
      int target = lineno;
      if (line.compare(open, 5, "-NEXT") == 0) {
        open += 5;
        target = lineno + 1;
      }
      if (open >= line.size() || line[open] != '(') continue;
      std::size_t close = line.find(')', open);
      if (close == std::string::npos) continue;
      expected.emplace(target, line.substr(open + 1, close - open - 1));
    }
  }
  return expected;
}

Expectation as_expectation(const std::vector<ttslint::Finding>& findings) {
  Expectation got;
  for (const auto& f : findings) got.emplace(f.line, f.rule);
  return got;
}

std::string describe(const Expectation& e) {
  std::ostringstream out;
  for (const auto& [line, rule] : e) out << "  line " << line << ": " << rule << "\n";
  return out.str();
}

std::vector<ttslint::Finding> lint_fixture(const std::string& name,
                                           const ttslint::Options& options = {}) {
  return ttslint::lint_source(name, read_fixture(name), "", options);
}

void check_fixture(const std::string& name,
                   const ttslint::Options& options = {}) {
  const std::string source = read_fixture(name);
  const Expectation expected = parse_markers(source);
  const Expectation got =
      as_expectation(ttslint::lint_source(name, source, "", options));
  EXPECT_EQ(expected, got) << "expected:\n"
                           << describe(expected) << "got:\n"
                           << describe(got);
}

TEST(Tokenizer, KindsAndPositions) {
  auto toks = ttslint::tokenize("int x = 42;\nauto s = \"hi\"; // note\n");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_TRUE(toks[0].ident("int"));
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_TRUE(toks[3].is(ttslint::Tok::kNumber, "42"));
  EXPECT_TRUE(toks.back().is(ttslint::Tok::kComment, " note"));
  EXPECT_EQ(toks.back().line, 2);
}

TEST(Tokenizer, RawStringsAndDigitSeparators) {
  auto toks = ttslint::tokenize("auto r = R\"x(a \"b\" c)x\"; int n = 1'000;");
  bool saw_raw = false;
  for (const auto& t : toks)
    if (t.kind == ttslint::Tok::kString) {
      EXPECT_EQ(t.text, "a \"b\" c");
      saw_raw = true;
    }
  EXPECT_TRUE(saw_raw);
  // The digit separator must not open a char literal.
  for (const auto& t : toks) EXPECT_NE(t.kind, ttslint::Tok::kChar);
}

TEST(Tokenizer, PreprocessorLinesFoldContinuations) {
  auto toks = ttslint::tokenize("#define ADD(a, b) \\\n  ((a) + (b))\nint x;");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, ttslint::Tok::kPreproc);
  EXPECT_NE(toks[0].text.find("((a) + (b))"), std::string::npos);
  EXPECT_TRUE(toks[1].ident("int"));
}

TEST(Tokenizer, MultiCharOperators) {
  auto toks = ttslint::tokenize("a <<= b; c && d; e->f; g::h;");
  int hits = 0;
  for (const auto& t : toks)
    if (t.punct("<<=") || t.punct("&&") || t.punct("->") || t.punct("::"))
      ++hits;
  EXPECT_EQ(hits, 4);
}

TEST(Rules, KnownRuleIds) {
  for (const char* r :
       {"unordered-iter", "wall-clock", "pointer-key", "rng-seed",
        "thread-confine", "barrier-only", "shared-state", "scoped-lock",
        "bad-pragma", "unused-pragma"})
    EXPECT_TRUE(ttslint::known_rule(r)) << r;
  EXPECT_FALSE(ttslint::known_rule("made-up-rule"));
  EXPECT_FALSE(ttslint::known_rule(""));
}

TEST(Fixtures, UnorderedIter) { check_fixture("unordered_iter.cc"); }
TEST(Fixtures, WallClock) { check_fixture("wall_clock.cc"); }
TEST(Fixtures, PointerKey) { check_fixture("pointer_key.cc"); }
TEST(Fixtures, RngSeed) { check_fixture("rng_seed.cc"); }
TEST(Fixtures, Pragmas) { check_fixture("pragmas.cc"); }
TEST(Fixtures, ThreadConfine) { check_fixture("thread_confine.cc"); }
TEST(Fixtures, BarrierOnly) { check_fixture("barrier_only.cc"); }
TEST(Fixtures, SharedState) { check_fixture("shared_state.cc"); }

TEST(Fixtures, ScopedLock) {
  // The thread allowlist keeps the fixture's own mutex declarations (C1)
  // out of the way: the expectations are purely C4.
  ttslint::Options options;
  options.thread_allow = {"scoped_lock.cc"};
  check_fixture("scoped_lock.cc", options);
}

TEST(Allowlist, WallClockSuffixSilencesFile) {
  ttslint::Options options;
  options.wallclock_allow = {"wall_clock.cc"};
  EXPECT_TRUE(lint_fixture("wall_clock.cc", options).empty());
}

TEST(Allowlist, SuffixMustMatchEnd) {
  ttslint::Options options;
  options.wallclock_allow = {"other_file.cc"};
  EXPECT_FALSE(lint_fixture("wall_clock.cc", options).empty());
}

TEST(Allowlist, ThreadSuffixSilencesConfinementAndSharedState) {
  ttslint::Options options;
  options.thread_allow = {"thread_confine.cc", "shared_state.cc"};
  EXPECT_TRUE(lint_fixture("thread_confine.cc", options).empty());
  EXPECT_TRUE(lint_fixture("shared_state.cc", options).empty());
}

TEST(PairedHeader, SeedsTypeEnvironment) {
  // The member is declared in the "header"; the "source" iterates it and
  // leaks hash order into a vector.
  const char* header =
      "class Registry {\n"
      "  std::unordered_map<int, int> weights_;\n"
      "};\n";
  const char* source =
      "std::vector<int> Registry::drain() {\n"
      "  std::vector<int> out;\n"
      "  for (const auto& [k, v] : weights_) {\n"
      "    out.push_back(v);\n"
      "  }\n"
      "  return out;\n"
      "}\n";
  auto with_header = ttslint::lint_source("registry.cpp", source, header, {});
  ASSERT_EQ(with_header.size(), 1u);
  EXPECT_EQ(with_header[0].rule, "unordered-iter");
  EXPECT_EQ(with_header[0].line, 3);
  // Without the header the member's type is unknown: no finding.
  EXPECT_TRUE(ttslint::lint_source("registry.cpp", source, "", {}).empty());
}

TEST(CompileCommands, ParsesCommandAndArgumentsForms) {
  const char* db = R"([
    {
      "directory": "/work/build",
      "command": "c++ -std=c++20 -I/work/src -I ../inc -isystem /opt/inc -c a.cc",
      "file": "a.cc"
    },
    {
      "directory": "/work",
      "arguments": ["c++", "-Isrc", "-isystem", "third_party", "-c", "b.cpp"],
      "file": "b.cpp",
      "output": "b.o"
    }
  ])";
  auto commands = ttslint::parse_compile_commands(db);
  ASSERT_EQ(commands.size(), 2u);
  EXPECT_EQ(commands[0].file, "a.cc");
  EXPECT_EQ(commands[0].directory, "/work/build");
  EXPECT_EQ(commands[0].includes,
            (std::vector<std::string>{"/work/src", "../inc", "/opt/inc"}));
  EXPECT_EQ(commands[1].file, "b.cpp");
  EXPECT_EQ(commands[1].includes,
            (std::vector<std::string>{"src", "third_party"}));
}

TEST(CompileCommands, NonDatabaseTextYieldsNothing) {
  EXPECT_TRUE(ttslint::parse_compile_commands("").empty());
  EXPECT_TRUE(ttslint::parse_compile_commands("{\"a\": 1}").empty());
  EXPECT_TRUE(ttslint::parse_compile_commands("[1, \"x\", {}]").empty());
}

TEST(CompileCommands, QuotedIncludesInOrderIgnoringAngled) {
  const char* source =
      "#include <vector>\n"
      "  #include \"first.hpp\"\n"
      "#include\t\"sub/second.h\"\n"
      "// #include \"not_this_one.hpp\" — inside a comment, still a line\n"
      "int x;\n";
  // Line-based extraction is deliberately preprocessor-naive: it sees the
  // two real quoted includes and nothing angled.
  auto includes = ttslint::quoted_includes(source);
  ASSERT_GE(includes.size(), 2u);
  EXPECT_EQ(includes[0], "first.hpp");
  EXPECT_EQ(includes[1], "sub/second.h");
}

TEST(EnvSources, CrossHeaderAliasIsOnlyCaughtWithEnv) {
  // The xheader fixture: score_use.cc iterates a ScoreIndex whose
  // unordered-ness lives in score_env.hpp. Single-TU mode misses it —
  // the compilation-database mode's env_sources is what catches it.
  const std::string source = read_fixture("xheader/score_use.cc");
  EXPECT_TRUE(
      ttslint::lint_source("xheader/score_use.cc", source, "", {}).empty());

  ttslint::Options options;
  options.env_sources.push_back(read_fixture("xheader/score_env.hpp"));
  auto findings =
      ttslint::lint_source("xheader/score_use.cc", source, "", options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 14);  // the range-for over `scores`
}

TEST(EnvSources, BarrierMarkerCrossesHeaders) {
  // The marker lives in a header the TU includes; env_sources is what
  // makes the call site a finding in compile-commands mode. Single-TU
  // mode cannot see the marker, so the same source lints clean.
  const char* header =
      "// ttslint: barrier_only\n"
      "void commit_scores(int score);\n";
  const char* source =
      "void tick() {\n"
      "  commit_scores(4);\n"
      "}\n"
      "void at_barrier(Queue& q) {\n"
      "  q.run_at_barrier([] { commit_scores(5); });\n"
      "}\n";
  EXPECT_TRUE(ttslint::lint_source("tick.cpp", source, "", {}).empty());

  ttslint::Options options;
  options.env_sources.push_back(header);
  auto findings = ttslint::lint_source("tick.cpp", source, "", options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "barrier-only");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(Formatting, TextAndJson) {
  ttslint::Finding f{"src/a.cpp", 12, 3, "wall-clock", "uses \"time\""};
  EXPECT_EQ(ttslint::format_finding(f),
            "src/a.cpp:12:3: [wall-clock] uses \"time\"");
  EXPECT_EQ(ttslint::format_finding_json(f),
            "{\"file\":\"src/a.cpp\",\"line\":12,\"col\":3,"
            "\"rule\":\"wall-clock\",\"message\":\"uses \\\"time\\\"\"}");
}

}  // namespace
