// SharedBudget property harness: randomised (weights, pps, work sizes)
// scenarios driven through FakePacer clients, asserting the three pacing
// invariants — no 1-second window exceeds the shared cap, saturated
// clients converge to their weighted shares (and none starves), and the
// whole grant sequence is bit-identical between same-configuration runs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "scan/budget.hpp"
#include "simnet/event_queue.hpp"
#include "util/rng.hpp"

namespace tts::harness {
namespace {

using scan::SharedBudget;
using scan::SharedBudgetConfig;

struct Scenario {
  double pps = 1000;
  std::vector<double> weights;
  std::vector<std::uint64_t> work;
};

Scenario random_scenario(util::Rng& rng) {
  Scenario s;
  s.pps = rng.uniform(200.0, 5000.0);
  std::size_t clients = 2 + rng.below(2);
  for (std::size_t i = 0; i < clients; ++i) {
    s.weights.push_back(rng.uniform(0.5, 4.0));
    s.work.push_back(500 + rng.below(1500));
  }
  return s;
}

/// Run a scenario to completion: all clients start backlogged at t = 0.
std::vector<Grant> run_scenario(const Scenario& s, SharedBudget& budget,
                                simnet::EventQueue& events) {
  GrantLog log;
  log.attach(budget);
  std::vector<std::unique_ptr<FakePacer>> pacers;
  for (std::size_t i = 0; i < s.weights.size(); ++i)
    pacers.push_back(std::make_unique<FakePacer>(
        events, budget, "c" + std::to_string(i), s.weights[i]));
  for (std::size_t i = 0; i < pacers.size(); ++i)
    pacers[i]->add_work(s.work[i]);
  events.run();
  for (std::size_t i = 0; i < pacers.size(); ++i)
    EXPECT_EQ(pacers[i]->done(), s.work[i]) << "client " << i;
  return log.grants();
}

/// Launches inside any window of length W consume tokens whose accrual
/// times span at most W + burst * gap, so the count is bounded by
/// ceil(W / gap) + burst + 1 whatever the weights or client mix.
std::size_t window_cap(const SharedBudget& budget, simnet::SimDuration w) {
  return static_cast<std::size_t>((w + budget.gap() - 1) / budget.gap()) +
         static_cast<std::size_t>(budget.burst_slots()) + 1;
}

TEST(BudgetHarness, RandomisedScenariosNeverExceedCapInAnyWindow) {
  util::Rng rng(0x70cbad5e11);
  for (int iter = 0; iter < 12; ++iter) {
    Scenario s = random_scenario(rng);
    simnet::EventQueue events;
    SharedBudget budget(SharedBudgetConfig{s.pps, 2, nullptr});
    auto grants = run_scenario(s, budget, events);

    std::uint64_t total = 0;
    for (auto w : s.work) total += w;
    ASSERT_EQ(grants.size(), total) << "iter " << iter;

    std::vector<simnet::SimTime> times;
    times.reserve(grants.size());
    for (const Grant& g : grants) times.push_back(g.at);
    EXPECT_LE(max_window_count(times, simnet::sec(1)),
              window_cap(budget, simnet::sec(1)))
        << "iter " << iter << " pps=" << s.pps;
    // Every consumed token was accrued, never future-dated, and within the
    // burst bank of its launch.
    for (const Grant& g : grants) {
      EXPECT_LE(g.slot, g.at);
      EXPECT_LE(g.at - g.slot, budget.burst_slots() * budget.gap());
    }
  }
}

TEST(BudgetHarness, SaturatedSharesConvergeToWeightsAndNobodyStarves) {
  util::Rng rng(0x5fa1c0de);
  for (int iter = 0; iter < 12; ++iter) {
    Scenario s = random_scenario(rng);
    simnet::EventQueue events;
    SharedBudget budget(SharedBudgetConfig{s.pps, 2, nullptr});
    auto grants = run_scenario(s, budget, events);

    // All clients are backlogged until the earliest last-grant time; the
    // weighted-share property is asserted over that fully contended prefix.
    std::vector<simnet::SimTime> last(s.weights.size(), 0);
    for (const Grant& g : grants) last[g.client] = g.at;
    simnet::SimTime cutoff = *std::min_element(last.begin(), last.end());

    std::vector<std::uint64_t> before(s.weights.size(), 0);
    std::uint64_t total_before = 0;
    for (const Grant& g : grants)
      if (g.at < cutoff) {
        ++before[g.client];
        ++total_before;
      }
    ASSERT_GT(total_before, 200u) << "iter " << iter;

    double weight_sum = 0;
    for (double w : s.weights) weight_sum += w;
    for (std::size_t i = 0; i < s.weights.size(); ++i) {
      double share = s.weights[i] / weight_sum;
      double expected = share * static_cast<double>(total_before);
      // Within 5% of the weighted share (plus a constant few-grant slack
      // for the SFQ quantisation at the interval edges)...
      EXPECT_NEAR(static_cast<double>(before[i]), expected,
                  0.05 * expected + 4.0)
          << "iter " << iter << " client " << i;
      // ...and in particular never starved below it.
      EXPECT_GE(static_cast<double>(before[i]), 0.95 * expected - 4.0)
          << "iter " << iter << " client " << i;
    }
  }
}

TEST(BudgetHarness, SameScenarioGivesBitIdenticalGrantSequences) {
  util::Rng rng(0xd37e2317);
  Scenario s = random_scenario(rng);
  auto run_once = [&] {
    simnet::EventQueue events;
    SharedBudget budget(SharedBudgetConfig{s.pps, 2, nullptr});
    return run_scenario(s, budget, events);
  };
  auto a = run_once();
  auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b);  // same clients, same slots, same launch times
}

TEST(BudgetHarness, IdleShareIsLentAndReclaimedWithinOneGap) {
  simnet::EventQueue events;
  SharedBudget budget(SharedBudgetConfig{1000, 2, nullptr});  // gap = 1 ms
  GrantLog log;
  log.attach(budget);
  FakePacer a(events, budget, "a", 1.0);
  FakePacer b(events, budget, "b", 1.0);
  a.add_work(4000);  // 4 s of work at the full (borrowed) rate
  events.schedule_at(simnet::sec(1), [&] { b.add_work(500); });
  events.run();

  EXPECT_EQ(a.done(), 4000u);
  EXPECT_EQ(b.done(), 500u);
  // While b was idle, a took b's share too: borrowing is the common case,
  // not the exception.
  EXPECT_GT(budget.borrowed(a.id()), 2000u);
  // b only ever ran against a backlogged peer, so none of its grants are
  // borrows.
  EXPECT_EQ(budget.borrowed(b.id()), 0u);
  // b turned busy at t = 1 s and re-entered at the current virtual time:
  // its first grant (the reclaim) landed within a token gap or two, not
  // after a's banked history.
  simnet::SimTime first = log.first_at_or_after(b.id(), simnet::sec(1));
  ASSERT_GE(first, simnet::sec(1));
  EXPECT_LE(first - simnet::sec(1), 2 * budget.gap());
  ASSERT_GE(budget.reclaim(b.id()).count(), 1u);
  EXPECT_LE(budget.reclaim(b.id()).max(), 2 * budget.gap());
}

TEST(BudgetHarness, FractionalGapRateIsExactOverLongWindows) {
  // Regression: truncating the token gap to whole microseconds overshot the
  // cap for non-divisor rates (max_pps = 4096 -> gap 244 us = 4098.4 pps,
  // ~0.06% hot). With integer error-feedback accrual the long-run rate is
  // exact: 4096 pps x 600 s = 2 457 600 tokens, and token k accrues at
  // floor(k x 244.140625) us, so exactly 2 457 600 accrual slots fall in
  // [0, 600 s).
  auto run_once = [] {
    simnet::EventQueue events;
    SharedBudget budget(SharedBudgetConfig{4096, 2, nullptr});
    GrantLog log;
    log.attach(budget);
    FakePacer pacer(events, budget, "solo", 1.0);
    pacer.add_work(2'460'000);  // saturated past the 600 s window
    events.run();
    return log.grants();
  };
  auto grants = run_once();
  ASSERT_EQ(grants.size(), 2'460'000u);
  std::uint64_t in_window = 0;
  for (const Grant& g : grants) in_window += g.slot < simnet::sec(600);
  EXPECT_EQ(in_window, 2'457'600u);
  // Accrual slots are strictly increasing (no two tokens share a slot even
  // though the fractional carry stretches some gaps by 1 us).
  for (std::size_t i = 1; i < grants.size(); ++i)
    ASSERT_GT(grants[i].slot, grants[i - 1].slot) << "grant " << i;
  // And the error-fed sequence is bit-identical between runs.
  EXPECT_TRUE(grants == run_once());
}

TEST(BudgetHarness, ConfigValidation) {
  EXPECT_THROW(SharedBudget(SharedBudgetConfig{0, 2, nullptr}),
               std::invalid_argument);
  EXPECT_THROW(SharedBudget(SharedBudgetConfig{-5, 2, nullptr}),
               std::invalid_argument);
  EXPECT_THROW(SharedBudget(SharedBudgetConfig{100, -1, nullptr}),
               std::invalid_argument);
  SharedBudget ok(SharedBudgetConfig{100, 0, nullptr});
  EXPECT_THROW(ok.add_client("bad", 0.0), std::invalid_argument);
  EXPECT_THROW(ok.add_client("bad", -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace tts::harness
