// Pull-based pacing pump: bounded staging, lane fairness, backpressure,
// token-wait semantics, and config validation.
#include <gtest/gtest.h>

#include <vector>

#include "scan/engine.hpp"
#include "scan/pending_queue.hpp"

namespace tts::scan {
namespace {

net::Ipv6Address addr(std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x2400003000000000ULL, lo);
}

std::vector<net::Ipv6Address> targets(std::uint64_t n,
                                      std::uint64_t base = 1000) {
  std::vector<net::Ipv6Address> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(addr(base + i));
  return out;
}

class ScanPumpTest : public ::testing::Test {
 protected:
  ScanPumpTest() : network_(events_) {}

  ScanEngineConfig fast_config() {
    ScanEngineConfig c;
    c.scanner_address = addr(0xbeef);
    c.min_protocol_delay = simnet::usec(10);
    c.max_protocol_delay = simnet::usec(20);
    c.max_pps = 100000;
    return c;
  }

  simnet::EventQueue events_;
  simnet::Network network_;
  ResultStore results_;
};

// ------------------------------------------------------------ PendingQueue

TEST(PendingQueue, PerLaneCapAndPeak) {
  PendingQueue q(2);
  auto intent = [](simnet::SimTime at, Dataset lane, net::Ipv6Address target) {
    return ScanIntent{.not_before = at, .dataset = lane, .target = target};
  };
  EXPECT_TRUE(q.push(intent(0, Dataset::kNtp, addr(1))));
  EXPECT_TRUE(q.push(intent(0, Dataset::kNtp, addr(2))));
  EXPECT_FALSE(q.push(intent(0, Dataset::kNtp, addr(3))));  // ntp lane full
  EXPECT_TRUE(q.full(Dataset::kNtp));
  EXPECT_TRUE(
      q.push(intent(0, Dataset::kHitlist, addr(3))));  // other lane free
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.peak(), 3u);
  EXPECT_EQ(q.free_slots(Dataset::kNtp), 0u);
  EXPECT_EQ(q.free_slots(Dataset::kHitlist), 1u);
  q.pull_due(0);
  q.pull_due(0);
  q.pull_due(0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peak(), 3u);  // high-water mark sticks
}

TEST(PendingQueue, PullsEarliestDueAndRoundRobinsLanes) {
  PendingQueue q(8);
  auto intent = [](simnet::SimTime at, Dataset lane, net::Ipv6Address target) {
    return ScanIntent{.not_before = at, .dataset = lane, .target = target};
  };
  q.push(intent(50, Dataset::kNtp, addr(1)));
  q.push(intent(10, Dataset::kNtp, addr(2)));
  q.push(intent(20, Dataset::kHitlist, addr(3)));
  q.push(intent(90, Dataset::kNtp, addr(4)));  // not due yet

  auto a = q.pull_due(60);
  auto b = q.pull_due(60);
  auto c = q.pull_due(60);
  ASSERT_TRUE(a && b && c);
  // One pull per lane before revisiting (fairness), earliest-first inside
  // a lane.
  EXPECT_NE(a->dataset, b->dataset);
  EXPECT_EQ(a->not_before + b->not_before + c->not_before, 10 + 20 + 50);
  EXPECT_FALSE(q.pull_due(60));  // the t=90 intent is not due at t=60
  EXPECT_EQ(*q.next_not_before(), 90);
}

// ------------------------------------------------------------- ScanEngine

TEST_F(ScanPumpTest, BulkSubmitKeepsPendingBounded) {
  auto config = fast_config();
  config.max_pending = 256;
  ScanEngine engine(network_, results_, config);

  engine.submit_bulk(targets(10000));
  EXPECT_EQ(engine.sources_pending(), 1u);
  // Submission staged nothing beyond the cap: no O(total) queue build-up.
  EXPECT_LE(engine.pending_depth(), config.max_pending);

  events_.run();
  EXPECT_EQ(engine.sources_pending(), 0u);
  EXPECT_EQ(engine.submitted(), 10000u);
  EXPECT_EQ(engine.probes_launched(), 10000 * kProtocolCount);
  EXPECT_EQ(engine.probes_completed(), 10000 * kProtocolCount);
  EXPECT_LE(engine.pending_peak(), config.max_pending);
  EXPECT_EQ(engine.pending_depth(), 0u);
}

TEST_F(ScanPumpTest, LanesShareTheBudgetFairly) {
  auto config = fast_config();
  config.max_pps = 100;  // 10 ms per slot
  config.max_pending = 64;
  config.min_protocol_delay = simnet::usec(0);
  config.max_protocol_delay = simnet::usec(1);
  ScanEngine engine(network_, results_, config);

  struct Feed {
    std::vector<net::Ipv6Address> list;
    std::size_t next = 0;
  };
  for (auto [lane, base] :
       {std::pair{Dataset::kNtp, std::uint64_t{1000}},
        std::pair{Dataset::kHitlist, std::uint64_t{9000}}}) {
    auto feed = std::make_shared<Feed>(Feed{targets(200, base), 0});
    engine.add_source(
        [feed](std::size_t max_n) {
          std::size_t n = std::min(max_n, feed->list.size() - feed->next);
          std::vector<net::Ipv6Address> out(
              feed->list.begin() + static_cast<std::ptrdiff_t>(feed->next),
              feed->list.begin() +
                  static_cast<std::ptrdiff_t>(feed->next + n));
          feed->next += n;
          return out;
        },
        lane);
  }

  // Mid-sweep snapshot: launches before t-8s have recorded their timeout.
  events_.run_until(simnet::sec(18));
  auto ntp = results_.total(Dataset::kNtp);
  auto hitlist = results_.total(Dataset::kHitlist);
  ASSERT_GT(ntp + hitlist, 600u);
  // Round-robin pulls keep both datasets progressing at the same rate.
  EXPECT_GT(ntp, (ntp + hitlist) * 2 / 5);
  EXPECT_GT(hitlist, (ntp + hitlist) * 2 / 5);
}

TEST_F(ScanPumpTest, BackpressureAtCapThenRecovery) {
  auto config = fast_config();
  config.max_pending = 4;
  ScanEngine engine(network_, results_, config);

  std::vector<Dataset> pushed_back;
  engine.set_backpressure_callback(
      [&](Dataset lane) { pushed_back.push_back(lane); });

  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(engine.try_submit(addr(1 + i)), SubmitResult::kAccepted);
  EXPECT_EQ(engine.try_submit(addr(5)), SubmitResult::kQueueFull);
  EXPECT_FALSE(engine.submit(addr(5)));
  EXPECT_EQ(engine.backpressure_events(), 2u);
  ASSERT_EQ(pushed_back.size(), 2u);
  EXPECT_EQ(pushed_back[0], Dataset::kNtp);
  // Backpressure did not consume the blackout: the refused target is
  // accepted once the lane drains.
  events_.run();
  EXPECT_EQ(engine.try_submit(addr(5)), SubmitResult::kAccepted);
  events_.run();
  EXPECT_EQ(engine.submitted(), 5u);
  EXPECT_EQ(engine.probes_completed(), 5 * kProtocolCount);
}

TEST_F(ScanPumpTest, TokenWaitMeasuresPacingNotBacklog) {
  // kTiny-style budget: 500 pps = 2000 us token gap. Under the old eager
  // reservation a 1000-target bulk submit put the mean token wait at
  // minutes (backlog position); the pump must keep it within its slack
  // window of 2 gaps.
  auto config = fast_config();
  config.max_pps = 500;
  config.min_protocol_delay = simnet::usec(0);
  config.max_protocol_delay = simnet::usec(1);
  ScanEngine engine(network_, results_, config);
  engine.submit_bulk(targets(1000));
  events_.run();

  const double gap_us = 1e6 / config.max_pps;
  ASSERT_EQ(engine.token_wait().count(), 1000 * kProtocolCount);
  EXPECT_LT(engine.token_wait().mean(), 2 * gap_us);
  EXPECT_LE(engine.token_wait().max(), 2 * static_cast<std::int64_t>(gap_us));
  // The backlog delay is visible in the queue-delay histogram instead.
  EXPECT_EQ(engine.queue_delay().count(), engine.token_wait().count());
  EXPECT_GT(engine.queue_delay().mean(), engine.token_wait().mean());
}

TEST_F(ScanPumpTest, ExplicitLaneTagsResults) {
  ScanEngine engine(network_, results_, fast_config());
  EXPECT_EQ(engine.try_submit(addr(1), Dataset::kHitlist),
            SubmitResult::kAccepted);
  events_.run();
  EXPECT_EQ(results_.total(Dataset::kHitlist), kProtocolCount);
  EXPECT_EQ(results_.total(Dataset::kNtp), 0u);
}

TEST_F(ScanPumpTest, EqualMinAndMaxDelayIsValid) {
  // Degenerate-but-legal stagger range (used to hit rng.below(0)).
  auto config = fast_config();
  config.min_protocol_delay = simnet::sec(10);
  config.max_protocol_delay = simnet::sec(10);
  ScanEngine engine(network_, results_, config);
  engine.submit(addr(1));
  events_.run();
  EXPECT_EQ(engine.probes_completed(), kProtocolCount);
  EXPECT_GE(events_.now(), (kProtocolCount - 1) * simnet::sec(10));
}

TEST_F(ScanPumpTest, ConfigValidationRejectsBadRanges) {
  auto inverted = fast_config();
  inverted.min_protocol_delay = simnet::minutes(10);
  inverted.max_protocol_delay = simnet::sec(10);
  EXPECT_THROW(ScanEngine(network_, results_, inverted),
               std::invalid_argument);

  auto no_budget = fast_config();
  no_budget.max_pps = 0;
  EXPECT_THROW(ScanEngine(network_, results_, no_budget),
               std::invalid_argument);

  auto negative_delay = fast_config();
  negative_delay.min_protocol_delay = -simnet::sec(1);
  EXPECT_THROW(ScanEngine(network_, results_, negative_delay),
               std::invalid_argument);

  auto no_staging = fast_config();
  no_staging.max_pending = 0;
  EXPECT_THROW(ScanEngine(network_, results_, no_staging),
               std::invalid_argument);
}

}  // namespace
}  // namespace tts::scan
