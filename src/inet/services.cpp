#include "inet/services.hpp"

#include <string>

#include "ntp/ntp_packet.hpp"
#include "ntp/ntp_server.hpp"
#include "proto/amqp.hpp"
#include "proto/coap.hpp"
#include "proto/http.hpp"
#include "proto/mqtt.hpp"
#include "proto/ports.hpp"
#include "proto/sshwire.hpp"
#include "util/format.hpp"

namespace tts::inet {

using simnet::Endpoint;
using simnet::TcpConnection;
using simnet::TcpConnectionPtr;

proto::Certificate make_certificate(KeyId key, const std::string& subject,
                                    bool self_signed,
                                    std::uint32_t lifetime_days) {
  proto::Certificate cert;
  cert.fingerprint = key;
  cert.subject = subject;
  cert.self_signed = self_signed;
  // Issued deterministically some months before the simulation epoch.
  std::uint64_t epoch = ntp::kDefaultSimEpochUnix;
  std::uint32_t age_days = 30 + key % 200;
  cert.not_before =
      static_cast<std::uint32_t>(epoch - age_days * 86400ULL);
  cert.not_after = static_cast<std::uint32_t>(
      cert.not_before + static_cast<std::uint64_t>(lifetime_days) * 86400ULL);
  return cert;
}

// ------------------------------------------------------------- DeviceRuntime

/// Owns one device's online presence. All handlers capture `this`; the
/// object lives as long as the InternetRuntime.
class DeviceRuntime {
 public:
  DeviceRuntime(InternetRuntime& world, Device& device, util::Rng rng)
      : world_(world), device_(device), rng_(rng) {}

  void start() {
    current_ = device_.initial_address;
    claim_address(current_);
    for (int i = 0; i < device_.profile->addr.extra_addresses; ++i) {
      auto extra = world_.population().make_address(
          device_, device_.delegation, true, rng_);
      extras_.push_back(extra);
      claim_address(extra);
    }
    // Re-derive the primary IID (make_address for extras clobbered
    // current_iid); primary stays the initial address.
    device_.current_iid = current_.iid();

    if (device_.any_service()) bind_services(current_);

    if (world_.config_.enable_churn && has_churn()) schedule_churn();
    if (device_.uses_pool && world_.pool_) schedule_poll(true);
  }

  const net::Ipv6Address& address() const { return current_; }
  const std::vector<net::Ipv6Address>& history() const { return history_; }

 private:
  bool has_churn() const {
    return device_.daily_prefix_change > 0 || device_.daily_iid_change > 0;
  }

  void claim_address(const net::Ipv6Address& addr) {
    history_.push_back(addr);
    {
      std::lock_guard<std::mutex> lock(world_.owner_mu_);  // ttslint: allow(thread-confine) reason=owner_mu_ protocol: address claim/release races across shards
      world_.address_owner_[addr] = device_.id;
    }
    if (device_.any_service()) world_.network_.attach(addr);
  }

  void release_address(const net::Ipv6Address& addr) {
    {
      std::lock_guard<std::mutex> lock(world_.owner_mu_);  // ttslint: allow(thread-confine) reason=owner_mu_ protocol: address claim/release races across shards
      auto it = world_.address_owner_.find(addr);
      if (it != world_.address_owner_.end() && it->second == device_.id)
        world_.address_owner_.erase(it);
    }
    if (device_.any_service()) world_.network_.detach(addr);
  }

  // ---- churn ----

  void schedule_churn() {
    world_.network_.events().schedule_in(
        simnet::days(1), world_.churn_cat_, [this] {
      do_churn();
      if (world_.network_.now() < world_.config_.duration) schedule_churn();
    });
  }

  void do_churn() {
    bool new_prefix = rng_.chance(device_.daily_prefix_change);
    bool new_iid = rng_.chance(device_.daily_iid_change);
    if (!new_prefix && !new_iid) return;
    world_.churn_events_.fetch_add(1, std::memory_order_relaxed);

    release_address(current_);
    for (const auto& extra : extras_) release_address(extra);
    extras_.clear();

    net::Ipv6Prefix delegation = device_.delegation;
    if (new_prefix) {
      bool eyeball = delegation.length() >= 56;
      delegation = world_.population().rotate_delegation(device_.asn,
                                                         eyeball, rng_);
      device_.delegation = delegation;
    }
    current_ =
        world_.population().make_address(device_, delegation, new_iid, rng_);
    claim_address(current_);
    for (int i = 0; i < device_.profile->addr.extra_addresses; ++i) {
      auto extra =
          world_.population().make_address(device_, delegation, true, rng_);
      extras_.push_back(extra);
      claim_address(extra);
    }
    device_.current_iid = current_.iid();

    if (device_.any_service()) bind_services(current_);
  }

  // ---- NTP client ----

  void schedule_poll(bool first) {
    double mean_us = device_.ntp_interval_hours * 3600.0 * 1e6;
    // First poll lands uniformly inside one interval so the fleet is
    // desynchronised from t = 0.
    double wait = first ? rng_.uniform() * mean_us
                        : rng_.exponential(1.0 / mean_us);
    world_.network_.events().schedule_in(
        static_cast<simnet::SimDuration>(wait), world_.poll_cat_, [this] {
          if (world_.network_.now() >= world_.config_.duration) return;
          do_poll();
          schedule_poll(false);
        });
  }

  void do_poll() {
    if (world_.config_.poll_thinning > 0 &&
        rng_.chance(world_.config_.poll_thinning))
      return;
    auto server = world_.pool_->resolve(device_.country, rng_);
    if (!server) return;
    world_.ntp_polls_sent_.fetch_add(1, std::memory_order_relaxed);

    // Source address: primary, or one of the temporary addresses.
    net::Ipv6Address src = current_;
    if (!extras_.empty() && rng_.chance(0.5))
      src = extras_[rng_.below(extras_.size())];

    Endpoint src_ep{src, next_ephemeral_++};
    if (next_ephemeral_ == 0) next_ephemeral_ = 33000;
    Endpoint dst_ep{*server, ntp::kNtpPort};

    auto request = ntp::NtpPacket::client_request(world_.network_.now());
    auto expected_origin = request.transmit_time;
    world_.network_.bind_udp(src_ep, [this, src_ep, expected_origin](
                                         const simnet::Datagram& dg) {
      auto response = ntp::NtpPacket::parse(dg.payload);
      // RFC 5905 sanity tests: drop and keep waiting on mismatch.
      if (response && response->origin_time == expected_origin &&
          response->mode == ntp::NtpMode::kServer) {
        world_.network_.unbind_udp(src_ep);
      }
    });
    world_.network_.send_udp(src_ep, dst_ep, request.serialize());
    // Reclaim the ephemeral port even if the response never arrives.
    world_.network_.events().schedule_in(
        simnet::sec(8), world_.poll_cat_,
        [this, src_ep] { world_.network_.unbind_udp(src_ep); });
  }

  // ---- service binding ----

  void bind_services(const net::Ipv6Address& addr) {
    const Device& d = device_;
    auto& net = world_.network_;
    if (d.http_enabled) {
      net.listen_tcp({addr, proto::kHttpPort},
                     [this](TcpConnectionPtr c) { serve_http(c, false); });
      if (d.http_tls)
        net.listen_tcp({addr, proto::kHttpsPort},
                       [this](TcpConnectionPtr c) { serve_http(c, true); });
    }
    if (d.ssh_enabled)
      net.listen_tcp({addr, proto::kSshPort},
                     [this](TcpConnectionPtr c) { serve_ssh(c); });
    if (d.mqtt_enabled) {
      net.listen_tcp({addr, proto::kMqttPort},
                     [this](TcpConnectionPtr c) { serve_mqtt(c, false); });
      if (d.mqtt_tls)
        net.listen_tcp({addr, proto::kMqttsPort},
                       [this](TcpConnectionPtr c) { serve_mqtt(c, true); });
    }
    if (d.amqp_enabled) {
      net.listen_tcp({addr, proto::kAmqpPort},
                     [this](TcpConnectionPtr c) { serve_amqp(c, false); });
      if (d.amqp_tls)
        net.listen_tcp({addr, proto::kAmqpsPort},
                       [this](TcpConnectionPtr c) { serve_amqp(c, true); });
    }
    if (d.coap_enabled)
      net.bind_udp({addr, proto::kCoapPort},
                   [this](const simnet::Datagram& dg) { serve_coap(dg); });
  }

  // TLS policy shared by all TLS-fronted services: answer the ClientHello
  // with a certificate (or an unrecognized_name alert when SNI is required
  // but absent), then hand app-data records to `app`.
  template <typename AppFn>
  bool handle_tls_record(const TcpConnectionPtr& conn,
                         const std::vector<std::uint8_t>& data, KeyId cert_key,
                         bool& established, AppFn&& app) {
    auto msg = proto::decode(data);
    if (!msg) {
      conn->close(TcpConnection::Side::kServer);
      return false;
    }
    if (msg->kind == proto::TlsMessage::Kind::kClientHello) {
      if (device_.sni_required && msg->client_hello.sni.empty()) {
        conn->send(TcpConnection::Side::kServer,
                   proto::encode(proto::Alert{
                       2, proto::kAlertUnrecognizedName}));
        conn->close(TcpConnection::Side::kServer);
        return false;
      }
      proto::ServerHello hello;
      bool self_signed = device_.profile->placement != Placement::kHosting;
      hello.cert = make_certificate(
          cert_key, tls_subject(), self_signed,
          world_.config_.cert_lifetime_days);
      conn->send(TcpConnection::Side::kServer, proto::encode(hello));
      established = true;
      return true;
    }
    if (msg->kind == proto::TlsMessage::Kind::kAppData && established) {
      app(msg->app_data);
      return true;
    }
    conn->close(TcpConnection::Side::kServer);
    return false;
  }

  std::string tls_subject() const {
    return "CN=" + device_.profile->model + "." +
           util::to_lower(device_.country);
  }

  void serve_http(const TcpConnectionPtr& conn, bool tls) {
    auto established = std::make_shared<bool>(false);
    auto self = this;
    conn->set_on_data(
        TcpConnection::Side::kServer,
        [self, conn, tls, established](std::vector<std::uint8_t> data) {
          auto respond = [self, conn, tls](std::span<const std::uint8_t> req) {
            auto request = proto::HttpRequest::parse(req);
            if (!request) {
              conn->close(TcpConnection::Side::kServer);
              return;
            }
            proto::HttpResponse resp;
            resp.status = self->device_.http_status;
            resp.server = self->device_.http_server_header;
            std::string title = self->device_.http_title;
            // Expand the {ip} placeholder (parking pages embed the address).
            std::size_t ph = title.find("{ip}");
            if (ph != std::string::npos)
              title.replace(ph, 4, conn->server().addr.to_string());
            resp.body = proto::html_page(title);
            auto wire = resp.serialize();
            if (tls)
              conn->send(TcpConnection::Side::kServer,
                         proto::encode_app_data(wire));
            else
              conn->send(TcpConnection::Side::kServer, std::move(wire));
            conn->close(TcpConnection::Side::kServer);
          };
          if (tls) {
            self->handle_tls_record(conn, data, self->device_.http_cert,
                                    *established, respond);
          } else {
            respond(data);
          }
        });
  }

  void serve_ssh(const TcpConnectionPtr& conn) {
    // Server speaks first: identification string, then (after the client's
    // id) the condensed KEX reply with the host-key fingerprint.
    conn->send(TcpConnection::Side::kServer,
               proto::ssh_id_string(
                   ssh_banner(device_.ssh_os, device_.ssh_version_index)));
    auto self = this;
    conn->set_on_data(TcpConnection::Side::kServer,
                      [self, conn](std::vector<std::uint8_t> data) {
                        if (!proto::parse_ssh_id(data)) {
                          conn->close(TcpConnection::Side::kServer);
                          return;
                        }
                        conn->send(TcpConnection::Side::kServer,
                                   proto::ssh_kex_reply(self->device_.ssh_key));
                        conn->close(TcpConnection::Side::kServer);
                      });
  }

  void serve_mqtt(const TcpConnectionPtr& conn, bool tls) {
    auto established = std::make_shared<bool>(false);
    auto self = this;
    conn->set_on_data(
        TcpConnection::Side::kServer,
        [self, conn, tls, established](std::vector<std::uint8_t> data) {
          auto respond = [self, conn, tls](std::span<const std::uint8_t> req) {
            auto connect = proto::MqttConnect::parse(req);
            if (!connect) {
              conn->close(TcpConnection::Side::kServer);
              return;
            }
            proto::MqttConnack ack;
            bool anonymous = connect->username.empty();
            ack.code = (self->device_.mqtt_auth && anonymous)
                           ? proto::MqttConnectReturn::kNotAuthorized
                           : proto::MqttConnectReturn::kAccepted;
            auto wire = ack.serialize();
            if (tls)
              conn->send(TcpConnection::Side::kServer,
                         proto::encode_app_data(wire));
            else
              conn->send(TcpConnection::Side::kServer, std::move(wire));
            conn->close(TcpConnection::Side::kServer);
          };
          if (tls) {
            self->handle_tls_record(conn, data, self->device_.mqtt_cert,
                                    *established, respond);
          } else {
            respond(data);
          }
        });
  }

  void serve_amqp(const TcpConnectionPtr& conn, bool tls) {
    auto established = std::make_shared<bool>(false);
    auto started = std::make_shared<bool>(false);
    auto self = this;
    conn->set_on_data(
        TcpConnection::Side::kServer,
        [self, conn, tls, established,
         started](std::vector<std::uint8_t> data) {
          auto respond = [self, conn, tls,
                          started](std::span<const std::uint8_t> req) {
            auto send = [conn, tls](std::vector<std::uint8_t> wire) {
              if (tls)
                conn->send(TcpConnection::Side::kServer,
                           proto::encode_app_data(wire));
              else
                conn->send(TcpConnection::Side::kServer, std::move(wire));
            };
            if (!*started) {
              if (!proto::is_amqp_protocol_header(req)) {
                conn->close(TcpConnection::Side::kServer);
                return;
              }
              *started = true;
              proto::AmqpFrame start;
              start.method = proto::AmqpMethod::kStart;
              start.text = "RabbitMQ 3.12";
              send(start.serialize());
              return;
            }
            auto frame = proto::AmqpFrame::parse(req);
            if (!frame || frame->method != proto::AmqpMethod::kStartOk) {
              conn->close(TcpConnection::Side::kServer);
              return;
            }
            proto::AmqpFrame reply;
            if (self->device_.amqp_auth) {
              reply.method = proto::AmqpMethod::kClose;
              reply.close_code = 403;
              reply.text = "ACCESS_REFUSED";
            } else {
              reply.method = proto::AmqpMethod::kTune;
              reply.text = "";
            }
            send(reply.serialize());
            conn->close(TcpConnection::Side::kServer);
          };
          if (tls) {
            self->handle_tls_record(conn, data, self->device_.amqp_cert,
                                    *established, respond);
          } else {
            respond(data);
          }
        });
  }

  void serve_coap(const simnet::Datagram& dg) {
    auto request = proto::CoapMessage::parse(dg.payload);
    if (!request || request->code != proto::kCoapGet) return;
    proto::CoapMessage resp;
    resp.type = proto::CoapType::kAck;
    resp.message_id = request->message_id;
    resp.token = request->token;
    if (request->uri_path.size() == 2 &&
        request->uri_path[0] == ".well-known" &&
        request->uri_path[1] == "core") {
      resp.code = proto::kCoapContent;
      std::string links =
          proto::link_format(device_.profile->coap.resources);
      resp.payload.assign(links.begin(), links.end());
    } else {
      resp.code = proto::kCoapNotFound;
    }
    world_.network_.send_udp(dg.dst, dg.src, resp.serialize());
  }

  InternetRuntime& world_;
  Device& device_;
  util::Rng rng_;
  net::Ipv6Address current_;
  std::vector<net::Ipv6Address> extras_;
  std::vector<net::Ipv6Address> history_;
  std::uint16_t next_ephemeral_ = 33000;
};

// ----------------------------------------------------------- InternetRuntime

InternetRuntime::InternetRuntime(simnet::Network& network,
                                 Population& population,
                                 const ntp::NtpPool* pool,
                                 RuntimeConfig config)
    : network_(network),
      population_(population),
      pool_(pool),
      config_(config),
      rng_(config.seed),
      start_cat_(network.events().register_category("device_start")),
      churn_cat_(network.events().register_category("churn")),
      poll_cat_(network.events().register_category("ntp_poll")) {}

InternetRuntime::~InternetRuntime() = default;

void InternetRuntime::start() {
  if (started_) return;
  started_ = true;

  for (auto& device : population_.devices()) {
    auto runtime = std::make_unique<DeviceRuntime>(
        *this, device, rng_.stream("device-runtime").stream(device.id));
    if (network_.sharded()) {
      // Bring the device up on its home domain so its churn and poll
      // chains (schedule_in from inside the event) stay shard-local.
      // Every draw below comes from the device's own stream, so the
      // concurrent bring-up order never shows in the results.
      DeviceRuntime* raw = runtime.get();
      network_.events().schedule_on(
          network_.shard_map()->domain_of(device.initial_address),
          network_.now(), start_cat_, [raw] { raw->start(); });
    } else {
      runtime->start();
    }
    devices_.push_back(std::move(runtime));
  }

  // The aliased CDN region: every address answers HTTP with an untitled
  // 200 page; HTTPS handshakes fail without SNI (Section 4.2's Cloudfront
  // observation). One shared "device" personality serves the whole region.
  const auto& region = population_.registry().cdn_alias_region();
  auto serve_cdn = [this](TcpConnectionPtr conn, bool tls) {
    auto established = std::make_shared<bool>(false);
    conn->set_on_data(
        TcpConnection::Side::kServer,
        [this, conn, tls, established](std::vector<std::uint8_t> data) {
          auto respond = [conn, tls](std::span<const std::uint8_t> wire) {
            auto request = proto::HttpRequest::parse(wire);
            if (!request) {
              conn->close(TcpConnection::Side::kServer);
              return;
            }
            proto::HttpResponse resp;
            resp.status = 200;
            resp.server = "CloudFront";
            resp.body = proto::html_page("");
            auto bytes = resp.serialize();
            conn->send(TcpConnection::Side::kServer,
                       tls ? proto::encode_app_data(bytes)
                           : std::move(bytes));
            conn->close(TcpConnection::Side::kServer);
          };
          if (!tls) {
            respond(data);
            return;
          }
          auto msg = proto::decode(data);
          if (!msg) {
            conn->close(TcpConnection::Side::kServer);
            return;
          }
          if (msg->kind == proto::TlsMessage::Kind::kClientHello) {
            if (msg->client_hello.sni.empty()) {
              // Address-based probes carry no hostname: the region rejects
              // them (Section 4.2's failed-handshake flood).
              conn->send(TcpConnection::Side::kServer,
                         proto::encode(proto::Alert{
                             2, proto::kAlertUnrecognizedName}));
              conn->close(TcpConnection::Side::kServer);
              return;
            }
            *established = true;
            proto::ServerHello hello;
            hello.cert =
                make_certificate(util::fnv1a("cdn-wildcard-cert"),
                                 "CN=*.cdn.example", false, 365);
            conn->send(TcpConnection::Side::kServer, proto::encode(hello));
            return;
          }
          if (msg->kind == proto::TlsMessage::Kind::kAppData &&
              *established) {
            respond(msg->app_data);
            return;
          }
          conn->close(TcpConnection::Side::kServer);
        });
  };
  network_.listen_tcp_prefix(region, proto::kHttpPort,
                             [serve_cdn](TcpConnectionPtr c) {
                               serve_cdn(c, false);
                             });
  network_.listen_tcp_prefix(region, proto::kHttpsPort,
                             [serve_cdn](TcpConnectionPtr c) {
                               serve_cdn(c, true);
                             });
}

const net::Ipv6Address& InternetRuntime::address_of(
    std::uint32_t device_id) const {
  return devices_.at(device_id - 1)->address();
}

const std::vector<net::Ipv6Address>& InternetRuntime::address_history(
    std::uint32_t device_id) const {
  return devices_.at(device_id - 1)->history();
}

const Device* InternetRuntime::device_at(const net::Ipv6Address& addr) const {
  std::uint32_t id = 0;
  {
    std::lock_guard<std::mutex> lock(owner_mu_);  // ttslint: allow(thread-confine) reason=owner_mu_ protocol: device_at() resolves owners from every domain
    auto it = address_owner_.find(addr);
    if (it == address_owner_.end()) return nullptr;
    id = it->second;
  }
  return &population_.devices().at(id - 1);
}

}  // namespace tts::inet
