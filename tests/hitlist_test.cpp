#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/iid_classes.hpp"
#include "hitlist/hitlist.hpp"

namespace tts::hitlist {
namespace {

class HitlistTest : public ::testing::Test {
 protected:
  HitlistTest()
      : registry_(inet::AsRegistry::generate({{}, 11})),
        population_([this] {
          inet::PopulationConfig config;
          config.device_scale = 0.1;
          config.seed = 31;
          return inet::Population::generate(registry_, config);
        }()) {}

  SourceConfig config() {
    SourceConfig c;
    c.routers_per_prefix = 4;
    c.aliased_samples = 500;
    c.seed = 77;
    return c;
  }

  inet::AsRegistry registry_;
  inet::Population population_;
};

TEST_F(HitlistTest, DnsSourceFindsOnlyFlaggedDevices) {
  auto found = dns_source(population_);
  ASSERT_FALSE(found.empty());
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> addrs;
  for (const auto& s : found) {
    EXPECT_EQ(s.source, Source::kDns);
    addrs.insert(s.addr);
  }
  for (const auto& d : population_.devices()) {
    EXPECT_EQ(addrs.contains(d.initial_address), d.in_dns_sources)
        << d.initial_address.to_string();
  }
}

TEST_F(HitlistTest, DnsSourceIsServerBiased) {
  auto found = dns_source(population_);
  std::uint64_t hosting = 0;
  for (const auto& s : found) {
    const inet::AsInfo* as = registry_.origin(s.addr);
    if (as && as->category == inet::AsCategory::kHosting) ++hosting;
  }
  // Most DNS-visible hosts sit in hosting networks (the hitlist bias the
  // paper critiques).
  EXPECT_GT(static_cast<double>(hosting) / static_cast<double>(found.size()),
            0.5);
}

TEST_F(HitlistTest, TracerouteYieldsStructuredIids) {
  auto cfg = config();
  util::Rng rng(cfg.seed);
  auto found = traceroute_source(population_, cfg, rng);
  ASSERT_FALSE(found.empty());
  std::uint64_t structured = 0;
  for (const auto& s : found)
    if (s.addr.iid() < 0x100) ++structured;
  EXPECT_GT(static_cast<double>(structured) /
                static_cast<double>(found.size()),
            0.6);
}

TEST_F(HitlistTest, TgaStaysNearSeeds) {
  auto seeds = dns_source(population_);
  ASSERT_FALSE(seeds.empty());
  auto cfg = config();
  util::Rng rng(cfg.seed);
  auto generated = tga_source(seeds, cfg, rng);
  EXPECT_EQ(generated.size(),
            seeds.size() * static_cast<std::size_t>(cfg.tga_per_seed));
  // Every candidate shares a /48 with some seed (the seed-bias property).
  std::unordered_set<net::Ipv6Prefix, net::Ipv6PrefixHash> seed48;
  for (const auto& s : seeds) seed48.insert(net::Ipv6Prefix(s.addr, 48));
  for (const auto& g : generated) {
    EXPECT_TRUE(seed48.contains(net::Ipv6Prefix(g.addr, 48)))
        << g.addr.to_string();
  }
}

TEST_F(HitlistTest, AliasedSamplesLieInRegion) {
  auto cfg = config();
  util::Rng rng(cfg.seed);
  auto found = aliased_source(registry_, cfg, rng);
  EXPECT_EQ(found.size(), cfg.aliased_samples);
  for (const auto& s : found)
    EXPECT_TRUE(registry_.cdn_alias_region().contains(s.addr));
}

TEST_F(HitlistTest, BuildDeduplicatesAndSplitsPublic) {
  auto list = HitlistBuilder::build(population_, nullptr, config());
  ASSERT_FALSE(list.full.empty());
  // No duplicates in the full list.
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> seen(
      list.full.begin(), list.full.end());
  EXPECT_EQ(seen.size(), list.full.size());
  // Public subset of full.
  EXPECT_LT(list.public_list.size(), list.full.size());
  for (const auto& a : list.public_list) EXPECT_TRUE(seen.contains(a));
  // Provenance covers everything.
  EXPECT_EQ(list.sources.size(), list.full.size());
  EXPECT_EQ(list.seen.size(), list.full.size());
  // The dedup store indexes full[] by first-seen sequence number.
  for (std::size_t i = 0; i < list.full.size(); ++i)
    EXPECT_EQ(list.seen.seq_of(list.full[i]), i);
  auto by_source = list.counts_by_source();
  EXPECT_GT(by_source[Source::kDns], 0u);
  EXPECT_GT(by_source[Source::kTraceroute], 0u);
  EXPECT_GT(by_source[Source::kAliased], 0u);
  EXPECT_GT(by_source[Source::kStale], 0u);
}

TEST_F(HitlistTest, PublicListIncludesAliasedAndLiveServices) {
  auto list = HitlistBuilder::build(population_, nullptr, config());
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> pub(
      list.public_list.begin(), list.public_list.end());
  std::uint64_t live_checked = 0;
  for (const auto& d : population_.devices()) {
    if (d.in_dns_sources && d.any_service()) {
      EXPECT_TRUE(pub.contains(d.initial_address));
      ++live_checked;
    }
  }
  EXPECT_GT(live_checked, 10u);
  // Aliased addresses are all "responsive".
  for (std::size_t i = 0; i < list.full.size(); ++i) {
    if (list.sources[i] == Source::kAliased) {
      EXPECT_TRUE(pub.contains(list.full[i]));
      EXPECT_EQ(list.source_of(list.full[i]), Source::kAliased);
    }
  }
}

TEST_F(HitlistTest, HitlistIsMoreStructuredThanPopulation) {
  // Figure 1's core claim, seen from the generator side: hitlist addresses
  // carry more structured IIDs than the (eyeball-heavy) device population.
  auto list = HitlistBuilder::build(population_, nullptr, config());
  auto hitlist_dist = analysis::classify_addresses(list.public_list);

  std::vector<net::Ipv6Address> pop_addrs;
  for (const auto& d : population_.devices())
    pop_addrs.push_back(d.initial_address);
  auto pop_dist = analysis::classify_addresses(pop_addrs);

  double hitlist_structured =
      hitlist_dist.fraction(analysis::IidClass::kZero) +
      hitlist_dist.fraction(analysis::IidClass::kLastByte) +
      hitlist_dist.fraction(analysis::IidClass::kLastTwoBytes);
  double pop_structured = pop_dist.fraction(analysis::IidClass::kZero) +
                          pop_dist.fraction(analysis::IidClass::kLastByte) +
                          pop_dist.fraction(analysis::IidClass::kLastTwoBytes);
  EXPECT_GT(hitlist_structured, pop_structured);
}

TEST_F(HitlistTest, DeterministicForSameSeed) {
  auto a = HitlistBuilder::build(population_, nullptr, config());
  auto b = HitlistBuilder::build(population_, nullptr, config());
  EXPECT_EQ(a.full, b.full);
  EXPECT_EQ(a.public_list, b.public_list);
}

}  // namespace
}  // namespace tts::hitlist
