// HTML title grouping (Section 4.3.1, Tables 3/6/8).
//
// Titles are normalised (embedded IP addresses replaced by an "(IP)"
// placeholder, as the paper's published tables do), then clustered
// greedily: a title joins the first existing group whose representative is
// within a normalised Levenshtein distance of 0.25; otherwise it founds a
// new group. Observations carry a dataset tag and a weight so the same
// machinery counts by unique certificate (Table 3) or by address/network
// (Table 6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scan/results.hpp"

namespace tts::analysis {

struct TitleObservation {
  std::string title;
  scan::Dataset dataset = scan::Dataset::kNtp;
  std::uint64_t weight = 1;
};

struct TitleGroup {
  std::string representative;  // normalised form of the founding title
  std::uint64_t ntp = 0;
  std::uint64_t hitlist = 0;
  std::uint64_t total() const { return ntp + hitlist; }
};

/// Replace embedded IPv4/IPv6 literals with "(IP)".
std::string normalize_title(const std::string& title);

/// Cluster observations; groups are returned sorted by total desc.
/// `max_distance` is the normalised Levenshtein threshold (paper: 0.25).
std::vector<TitleGroup> group_titles(
    const std::vector<TitleObservation>& observations,
    double max_distance = 0.25);

}  // namespace tts::analysis
