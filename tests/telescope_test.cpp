#include <gtest/gtest.h>

#include <unordered_set>

#include "ntp/ntp_server.hpp"
#include "telescope/actors.hpp"
#include "telescope/classifier.hpp"
#include "telescope/prober.hpp"

namespace tts::telescope {
namespace {

net::Ipv6Address addr(std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x2400003000000000ULL, lo);
}

class TelescopeTest : public ::testing::Test {
 protected:
  TelescopeTest() : network_(events_), registry_(inet::AsRegistry::generate({{}, 2})) {}

  ProberConfig prober_config(simnet::SimDuration duration = simnet::days(2)) {
    ProberConfig c;
    c.probe_prefix = *net::Ipv6Prefix::parse("3fff:909:aaaa::/48");
    c.monitor_prefix = *net::Ipv6Prefix::parse("3fff:909::/32");
    c.query_interval = simnet::minutes(30);
    c.duration = duration;
    return c;
  }

  simnet::EventQueue events_;
  simnet::Network network_;
  inet::AsRegistry registry_;
  ntp::NtpPool pool_;
};

TEST_F(TelescopeTest, ProberUsesFreshSourcesAndGetsAnswers) {
  ntp::NtpServerConfig server_config;
  server_config.address = addr(1);
  server_config.country = "DE";
  ntp::NtpServer server(network_, server_config, nullptr);
  pool_.add_server({addr(1), "DE", 1000, 20, false, 0});

  PoolProber prober(network_, pool_, prober_config());
  prober.start();
  events_.run_until(simnet::days(2) + simnet::minutes(1));

  ASSERT_GT(prober.probes().size(), 50u);
  EXPECT_GT(prober.answered_share(), 0.95);
  // Every probe used a distinct source address inside the probe prefix.
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> sources;
  for (const auto& p : prober.probes()) {
    EXPECT_TRUE(prober_config().probe_prefix.contains(p.source));
    EXPECT_TRUE(sources.insert(p.source).second);
    EXPECT_EQ(prober.probe_for(p.source)->server, addr(1));
  }
  // NTP responses were filtered out of the capture.
  EXPECT_TRUE(prober.captures().empty());
}

TEST_F(TelescopeTest, ActorScansSightedAddressesAndProberMatchesThem) {
  // Actor-operated pool server.
  ActorConfig config;
  config.name = "test-research";
  config.identifies_itself = true;
  config.server_addresses = {addr(10)};
  config.server_country = "DE";
  config.scan_sources = {addr(20)};
  config.ports = {22, 80, 443};
  config.scan_delay_min = simnet::minutes(1);
  config.scan_delay_max = simnet::minutes(5);
  config.scan_spread = simnet::minutes(2);
  ScanningActor actor(network_, pool_, config);

  PoolProber prober(network_, pool_, prober_config());
  prober.start();
  events_.run_until(simnet::days(2) + simnet::hours(1));

  EXPECT_GT(actor.sightings(), 10u);
  EXPECT_GT(actor.probes_sent(), 30u);
  ASSERT_FALSE(prober.captures().empty());

  auto report = classify_actors(prober, registry_, [&](const net::Ipv6Address& a) {
    return actor.owns_scan_source(a) ? std::string("research.example")
                                     : std::string();
  });
  ASSERT_EQ(report.actors.size(), 1u);
  const auto& observed = report.actors[0];
  EXPECT_EQ(observed.classification, ActorClass::kResearch);
  EXPECT_TRUE(observed.identified);
  EXPECT_EQ(observed.ports.size(), 3u);
  EXPECT_TRUE(observed.ntp_servers.contains(addr(10)));
  EXPECT_LE(observed.median_delay, simnet::minutes(6));
  EXPECT_EQ(report.matched_captures, report.total_captures);
}

TEST_F(TelescopeTest, CovertActorClassifiedCovert) {
  ActorConfig config;
  config.identifies_itself = false;
  config.server_addresses = {addr(30), addr(31)};
  config.server_country = "DE";
  config.scan_sources = {addr(40), addr(41)};
  config.ports = covert_actor_ports();
  config.scan_delay_min = simnet::hours(10);
  config.scan_delay_max = simnet::hours(40);
  config.scan_spread = simnet::days(1);
  config.port_coverage = 0.6;
  ScanningActor actor(network_, pool_, config);

  PoolProber prober(network_, pool_, prober_config(simnet::days(4)));
  prober.start();
  events_.run_until(simnet::days(6));

  auto report = classify_actors(prober, registry_,
                                [](const net::Ipv6Address&) { return std::string(); });
  ASSERT_EQ(report.actors.size(), 1u);
  const auto& observed = report.actors[0];
  EXPECT_EQ(observed.classification, ActorClass::kCovert);
  EXPECT_FALSE(observed.identified);
  EXPECT_GE(observed.median_delay, simnet::hours(6));
  // Both scan sources clustered into one actor via shared servers.
  EXPECT_EQ(observed.scan_sources.size(), 2u);
  EXPECT_EQ(observed.ntp_servers.size(), 2u);
  // Covert port set only.
  for (std::uint16_t port : observed.ports) {
    auto ports = covert_actor_ports();
    EXPECT_NE(std::find(ports.begin(), ports.end(), port), ports.end());
  }
}

TEST_F(TelescopeTest, TwoActorsSeparateCleanly) {
  ActorConfig overt;
  overt.name = "research";
  overt.identifies_itself = true;
  overt.server_addresses = {addr(50)};
  overt.server_country = "DE";
  overt.scan_sources = {addr(60)};
  overt.ports = {22, 80};
  overt.scan_delay_min = simnet::minutes(1);
  overt.scan_delay_max = simnet::minutes(10);
  overt.scan_spread = simnet::minutes(5);
  ScanningActor research(network_, pool_, overt);

  ActorConfig covert;
  covert.identifies_itself = false;
  covert.server_addresses = {addr(51)};
  covert.server_country = "DE";
  covert.scan_sources = {addr(61)};
  covert.ports = covert_actor_ports();
  covert.scan_delay_min = simnet::hours(12);
  covert.scan_delay_max = simnet::hours(48);
  covert.scan_spread = simnet::days(1);
  covert.port_coverage = 0.7;
  ScanningActor hidden(network_, pool_, covert);

  PoolProber prober(network_, pool_, prober_config(simnet::days(5)));
  prober.start();
  events_.run_until(simnet::days(8));

  auto report = classify_actors(
      prober, registry_, [&](const net::Ipv6Address& a) {
        return research.owns_scan_source(a) ? std::string("research.example")
                                            : std::string();
      });
  ASSERT_EQ(report.actors.size(), 2u);
  int research_count = 0, covert_count = 0;
  for (const auto& observed : report.actors) {
    if (observed.classification == ActorClass::kResearch) ++research_count;
    if (observed.classification == ActorClass::kCovert) ++covert_count;
  }
  EXPECT_EQ(research_count, 1);
  EXPECT_EQ(covert_count, 1);
}

TEST_F(TelescopeTest, ResearchPortListHas1011Entries) {
  auto ports = research_actor_ports();
  EXPECT_EQ(ports.size(), 1011u);
  EXPECT_NE(std::find(ports.begin(), ports.end(), 179), ports.end());  // BGP
  EXPECT_NE(std::find(ports.begin(), ports.end(), 5432), ports.end()); // PG
  EXPECT_NE(std::find(ports.begin(), ports.end(), 21), ports.end());   // FTP
  EXPECT_EQ(covert_actor_ports().size(), 10u);
}

}  // namespace
}  // namespace tts::telescope
