// Small statistics helpers used by the analyses: medians, percentiles,
// Shannon entropy, and counters keyed by arbitrary values.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace tts::util {

/// Median of an unsorted copy of `values`. Even-sized inputs average the two
/// middle elements. Empty input returns 0.
double median(std::vector<double> values);

/// p-th percentile (0..100) by linear interpolation. Empty input returns 0.
double percentile(std::vector<double> values, double p);

double mean(std::span<const double> values);

/// Shannon entropy in bits of the byte distribution of `data`.
double shannon_entropy(std::span<const std::uint8_t> data);

/// Shannon entropy in bits per byte, normalised to [0, 1] (divided by 8).
double normalized_entropy(std::span<const std::uint8_t> data);

/// Counter over keys; convenience around unordered_map<K, uint64_t> with
/// sorted "top-k" extraction, used everywhere in the analyses.
template <typename Key, typename Hash = std::hash<Key>>
class Counter {
 public:
  void add(const Key& k, std::uint64_t n = 1) { counts_[k] += n; }

  std::uint64_t count(const Key& k) const {
    auto it = counts_.find(k);
    return it == counts_.end() ? 0 : it->second;
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [k, v] : counts_) t += v;
    return t;
  }

  std::size_t distinct() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }

  /// Entries sorted by descending count, ties broken by ascending key — a
  /// total order, so the result is independent of hash layout.
  std::vector<std::pair<Key, std::uint64_t>> sorted_desc() const {
    // ttslint: allow(unordered-iter) reason=snapshot is fully sorted below under a total (count, key) order
    std::vector<std::pair<Key, std::uint64_t>> v(counts_.begin(),
                                                 counts_.end());
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    return v;
  }

  std::vector<std::pair<Key, std::uint64_t>> top(std::size_t k) const {
    auto v = sorted_desc();
    if (v.size() > k) v.resize(k);
    return v;
  }

  const std::unordered_map<Key, std::uint64_t, Hash>& raw() const {
    return counts_;
  }

 private:
  std::unordered_map<Key, std::uint64_t, Hash> counts_;
};

/// Fixed-bin histogram over [lo, hi); values outside clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t n = 1);
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  /// Non-finite inputs seen: NaN (dropped) and +-inf (clamped to the end
  /// bins). total() excludes the dropped NaNs.
  std::uint64_t nonfinite() const { return nonfinite_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Fraction of mass in bin i (0 if empty histogram).
  double fraction(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nonfinite_ = 0;
};

}  // namespace tts::util
