#include "proto/amqp.hpp"

#include "net/packet.hpp"

namespace tts::proto {

std::vector<std::uint8_t> amqp_protocol_header() {
  return {'A', 'M', 'Q', 'P', 0, 0, 9, 1};
}

bool is_amqp_protocol_header(std::span<const std::uint8_t> wire) {
  static const auto kHeader = amqp_protocol_header();
  if (wire.size() < kHeader.size()) return false;
  for (std::size_t i = 0; i < kHeader.size(); ++i)
    if (wire[i] != kHeader[i]) return false;
  return true;
}

std::vector<std::uint8_t> AmqpFrame::serialize() const {
  // AMQP frame: type(1)=method, channel u16, size u32, payload, 0xCE end.
  net::PacketWriter payload;
  payload.u16(10);  // class-id: connection
  payload.u16(static_cast<std::uint16_t>(method));
  payload.u16(close_code);
  payload.str16(text);

  net::PacketWriter w;
  w.u8(1);   // frame type: method
  w.u16(0);  // channel 0
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload.data());
  w.u8(0xCE);  // frame-end
  return w.take();
}

std::optional<AmqpFrame> AmqpFrame::parse(
    std::span<const std::uint8_t> wire) {
  try {
    net::PacketReader r(wire);
    if (r.u8() != 1) return std::nullopt;
    if (r.u16() != 0) return std::nullopt;
    std::uint32_t size = r.u32();
    auto payload = r.bytes(size);
    if (r.u8() != 0xCE) return std::nullopt;
    net::PacketReader pr(payload);
    if (pr.u16() != 10) return std::nullopt;
    std::uint16_t method = pr.u16();
    if (method != 10 && method != 11 && method != 30 && method != 50)
      return std::nullopt;
    AmqpFrame f;
    f.method = static_cast<AmqpMethod>(method);
    f.close_code = pr.u16();
    f.text = pr.str16();
    return f;
  } catch (const net::ParseError&) {
    return std::nullopt;
  }
}

}  // namespace tts::proto
