// The simulated IPv6 Internet data plane.
//
// Endpoints bind UDP ports or TCP listeners on addresses; senders address
// datagrams / connections to (address, port). Delivery is scheduled on the
// shared EventQueue with a deterministic per-pair latency plus jitter, and
// optional loss. Addresses must be brought online (`attach`) before they
// accept anything; traffic to offline addresses times out silently, traffic
// to online addresses without a matching listener is refused (RST/ICMP) —
// exactly the distinction an Internet scanner observes.
//
// Sharded runs (set_shard_map): deliveries are scheduled on the destination
// address's domain, stochastic draws (loss, jitter, fault verdicts) come
// from the sending domain's own RNG stream, and the binding tables are
// mutex-guarded — the lock protects map *structure* only, since all content
// accesses for a given address happen on its home domain. The minimum
// one-way latency is the cross-shard lookahead the EventQueue's barrier
// protocol relies on.
//
// Taps: a tap observes every UDP datagram and TCP connection attempt whose
// destination falls inside a prefix, whether or not anything is bound there.
// The telescope experiment (Section 5) uses taps as its darknet capture.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv6.hpp"
#include "obs/metrics.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/fault.hpp"
#include "simnet/route.hpp"
#include "simnet/shard.hpp"
#include "util/rng.hpp"

namespace tts::simnet {

enum class TransportProto : std::uint8_t { kUdp, kTcp };

struct Endpoint {
  net::Ipv6Address addr;
  std::uint16_t port = 0;

  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const {
    return net::Ipv6AddressHash{}(e.addr) * 40503 + e.port;
  }
};

struct Datagram {
  Endpoint src;
  Endpoint dst;
  std::vector<std::uint8_t> payload;
};

/// Observed by taps for both UDP payloads and TCP connection attempts.
struct TapEvent {
  SimTime at = 0;
  TransportProto proto = TransportProto::kUdp;
  Endpoint src;
  Endpoint dst;
  std::size_t payload_size = 0;  // 0 for bare TCP connection attempts
};

class Network;

/// A bidirectional session-level TCP connection. Both sides hold a shared
/// handle; sends are delivered to the peer's on_data callback after the
/// path latency. Closing either side delivers on_close to the peer.
///
/// In sharded mode each side's state (its open flag and handlers) lives on
/// that side's domain: deliveries and close notifications hop domains like
/// any other packet, so each flag is only ever touched by its home domain.
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  using DataFn = std::function<void(std::vector<std::uint8_t>)>;
  using CloseFn = std::function<void()>;

  /// Which side of the connection the caller is.
  enum class Side : int { kClient = 0, kServer = 1 };

  void send(Side from, std::vector<std::uint8_t> data);
  void close(Side from);
  /// Client-side view of the connection (the single shared flag in legacy
  /// mode; the client domain's own flag in sharded mode).
  bool open() const { return open_[0]; }

  void set_on_data(Side side, DataFn fn);
  void set_on_close(Side side, CloseFn fn);

  const Endpoint& client() const { return client_; }
  const Endpoint& server() const { return server_; }

  /// True when a FaultPlane stall rule hit this connection at establishment:
  /// it looks open to both sides, but no data (or close notification) ever
  /// crosses it.
  bool stalled() const { return stalled_; }

 private:
  friend class Network;
  TcpConnection(Network* net, Endpoint client, Endpoint server,
                SimDuration latency, DomainId client_dom, DomainId server_dom,
                bool sharded);

  /// Drop both sides' callbacks. User callbacks routinely capture the
  /// connection's own shared_ptr, which forms a reference cycle
  /// (connection -> callback -> connection); resetting the handlers when
  /// the close delivers — or from ~Network for connections still open when
  /// the simulation is torn down — breaks the cycle so LeakSanitizer runs
  /// clean.
  void drop_handlers();
  void drop_side(int side);

  Network* net_;
  Endpoint client_;
  Endpoint server_;
  SimDuration latency_;
  // Legacy mode uses open_[0] as the one shared open flag (exact original
  // semantics); sharded mode keeps one flag per side, each touched only on
  // its own domain.
  bool open_[2] = {true, true};
  bool stalled_ = false;
  bool sharded_ = false;
  DomainId dom_[2] = {0, 0};
  DataFn on_data_[2];
  CloseFn on_close_[2];
};

using TcpConnectionPtr = std::shared_ptr<TcpConnection>;

struct NetworkConfig {
  /// Base one-way latency range; the per-pair base is a deterministic
  /// function of the address pair, jitter is sampled per packet.
  SimDuration min_latency = msec(5);
  SimDuration max_latency = msec(150);
  SimDuration jitter = msec(3);
  double loss_rate = 0.0;  // applied to UDP datagrams only
  /// How long a blackholed TCP connect waits before giving up — the
  /// network-wide default for connect_tcp callers that do not override it.
  SimDuration connect_timeout = sec(5);
  std::uint64_t seed = 0x7715c4a11ULL;
};

class Network {
 public:
  using UdpHandler = std::function<void(const Datagram&)>;
  /// Accept callback: receives the established connection (server side).
  using TcpAcceptor = std::function<void(TcpConnectionPtr)>;
  /// Connect result: the connection on success, nullptr + `refused` flag.
  using ConnectResult =
      std::function<void(TcpConnectionPtr, bool refused)>;
  using TapFn = std::function<void(const TapEvent&)>;

  Network(EventQueue& events, NetworkConfig config = {});
  /// Drops the callback handlers of every connection still open so their
  /// capture cycles cannot outlive the network (see
  /// TcpConnection::drop_handlers).
  ~Network();

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }
  SimTime now() const { return events_.now(); }

  /// Partition the data plane by destination domain. The map must outlive
  /// the network and be set before any traffic flows; per-domain RNG
  /// streams are derived from the network seed so stochastic draws are a
  /// function of the sending domain, never of shard count.
  void set_shard_map(const ShardMap* map);
  const ShardMap* shard_map() const { return map_; }
  bool sharded() const { return map_ != nullptr; }

  // -- address lifecycle ----------------------------------------------------
  /// Bring an address online. Online addresses refuse unmatched traffic;
  /// offline ones blackhole it.
  void attach(const net::Ipv6Address& addr);
  /// Take an address offline and drop all its bindings.
  void detach(const net::Ipv6Address& addr);
  bool online(const net::Ipv6Address& addr) const;
  std::size_t online_count() const;

  // -- UDP -------------------------------------------------------------------
  void bind_udp(const Endpoint& ep, UdpHandler handler);
  void unbind_udp(const Endpoint& ep);
  /// Fire-and-forget send; lost/blackholed datagrams vanish.
  void send_udp(const Endpoint& src, const Endpoint& dst,
                std::vector<std::uint8_t> payload);

  // -- TCP -------------------------------------------------------------------
  void listen_tcp(const Endpoint& ep, TcpAcceptor acceptor);
  void unlisten_tcp(const Endpoint& ep);
  /// Attempt a connection; result callback fires after one RTT on success
  /// or refusal. Blackholed attempts fire with (nullptr, refused=false)
  /// after `connect_timeout` (nullopt = the NetworkConfig default).
  void connect_tcp(const Endpoint& src, const Endpoint& dst,
                   ConnectResult result,
                   std::optional<SimDuration> connect_timeout = std::nullopt);

  // -- fault injection --------------------------------------------------------
  /// Install (or replace) the fault plane driving scripted impairments; see
  /// simnet/fault.hpp. Instruments enroll into `registry` when given;
  /// injections are reported to `flight` when given (see
  /// FaultPlane::set_flight_recorder).
  void install_faults(FaultScenario scenario,
                      obs::Registry* registry = nullptr,
                      obs::FlightRecorder* flight = nullptr);
  /// The installed plane (nullptr when no scenario is active).
  const FaultPlane* faults() const { return fault_.get(); }

  // -- routing signal plane ---------------------------------------------------
  /// Install the scripted BGP-style reachability plane (see
  /// simnet/route.hpp). Consulted before the FaultPlane on every UDP send
  /// and TCP connect — verdict precedence route -> outage -> rules — and
  /// its transitions commit at window barriers. Install-once, at setup
  /// time (before traffic flows); buffered subscribe_routes() callbacks
  /// attach here.
  void install_routes(RouteScenario scenario,
                      obs::Registry* registry = nullptr,
                      obs::FlightRecorder* flight = nullptr);
  /// The installed plane (nullptr when no route scenario is active).
  const RoutePlane* routes() const { return route_.get(); }
  /// True when `dst` sits in withdrawn (unrouted) space at `now`; always
  /// false without an installed plane. Pure — no counting, no draws.
  bool route_withdrawn(const net::Ipv6Address& dst, SimTime now) const {
    return route_ && route_->withdrawn(dst, now);
  }
  /// Observe route transitions at their barrier commits. Callable before
  /// install_routes (components subscribe at construction; the scenario
  /// often installs later, e.g. from Study on_built): subscriptions made
  /// early are buffered and attached on install.
  void subscribe_routes(RoutePlane::TransitionFn fn);

  // -- wildcard (aliased-region) listeners ------------------------------------
  /// Accept TCP to *every* address inside `prefix` on `port`. Models fully
  /// aliased hyperscaler regions where each address responds (the paper's
  /// 356 M Cloudfront responses). Exact-endpoint listeners take precedence.
  void listen_tcp_prefix(const net::Ipv6Prefix& prefix, std::uint16_t port,
                         TcpAcceptor acceptor);
  /// UDP counterpart (unused by the CDN model but symmetric).
  void bind_udp_prefix(const net::Ipv6Prefix& prefix, std::uint16_t port,
                       UdpHandler handler);

  // -- taps ------------------------------------------------------------------
  /// Observe all traffic destined into `prefix`. Returns a tap id.
  /// Setup-time only: taps are read concurrently once a sharded run starts.
  std::uint64_t add_tap(const net::Ipv6Prefix& prefix, TapFn fn);
  void remove_tap(std::uint64_t id);

  // -- introspection ----------------------------------------------------------
  std::uint64_t udp_sent() const {
    return udp_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t udp_delivered() const {
    return udp_delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t tcp_attempts() const {
    return tcp_attempts_.load(std::memory_order_relaxed);
  }
  std::uint64_t tcp_established() const {
    return tcp_established_.load(std::memory_order_relaxed);
  }

  /// One-way latency for a src/dst pair (deterministic base component).
  SimDuration base_latency(const net::Ipv6Address& a,
                           const net::Ipv6Address& b) const;

 private:
  friend class TcpConnection;

  /// The sending domain's RNG stream (rngs_[0] — the legacy stream — when
  /// unsharded).
  util::Rng& domain_rng();
  SimDuration sample_latency(const net::Ipv6Address& a,
                             const net::Ipv6Address& b, util::Rng& rng);
  void run_taps(TransportProto proto, const Endpoint& src,
                const Endpoint& dst, std::size_t payload_size);
  void track_connection(const TcpConnectionPtr& conn);
  void connect_tcp_sharded(const Endpoint& src, const Endpoint& dst,
                           ConnectResult result, SimDuration timeout,
                           SimDuration lat, bool stalled);

  EventQueue& events_;
  NetworkConfig config_;
  /// rngs_[0] is the legacy stream (seeded exactly as before sharding
  /// existed); rngs_[d] for d > 0 are per-domain derived streams.
  std::vector<util::Rng> rngs_;
  const ShardMap* map_ = nullptr;
  /// Dispatch category for every delivery the network schedules (UDP
  /// deliveries, TCP connect outcomes, connection data/close).
  EventQueue::CategoryId packet_cat_;
  /// Scripted impairments (null = pristine network). Consulted on every
  /// UDP send and TCP connect; stalled connections swallow data through it.
  std::unique_ptr<FaultPlane> fault_;
  /// Scripted reachability (null = everything routed). Consulted before
  /// the fault plane; withdrawn destinations blackhole regardless of rules.
  std::unique_ptr<RoutePlane> route_;
  /// Transition subscriptions made before install_routes, attached then.
  std::vector<RoutePlane::TransitionFn> route_subs_;

  /// Guards the structure of the binding tables below. Content accesses
  /// for an address always happen on its home domain, so the lock only
  /// defends against concurrent rehash/insert from other domains.
  mutable std::mutex maps_mu_;  // ttslint: allow(thread-confine) reason=guards binding-table structure against cross-domain rehash (documented above)
  std::unordered_map<net::Ipv6Address, std::uint32_t, net::Ipv6AddressHash>
      online_;  // refcount: a device may attach an address it already owns
  std::unordered_map<Endpoint, UdpHandler, EndpointHash> udp_;
  std::unordered_map<Endpoint, TcpAcceptor, EndpointHash> tcp_;

  struct Tap {
    std::uint64_t id;
    net::Ipv6Prefix prefix;
    TapFn fn;
  };
  std::vector<Tap> taps_;

  struct PrefixTcp {
    net::Ipv6Prefix prefix;
    std::uint16_t port;
    TcpAcceptor acceptor;
  };
  struct PrefixUdp {
    net::Ipv6Prefix prefix;
    std::uint16_t port;
    UdpHandler handler;
  };
  std::vector<PrefixTcp> prefix_tcp_;
  std::vector<PrefixUdp> prefix_udp_;
  std::uint64_t next_tap_id_ = 1;

  /// Weak handles on every established connection, pruned amortised; used
  /// only by ~Network to break callback cycles of never-closed connections
  /// (e.g. probes still in flight when a run is truncated at its horizon).
  std::mutex live_mu_;  // ttslint: allow(thread-confine) reason=guards the live-connection roster appended from any domain
  std::vector<std::weak_ptr<TcpConnection>> live_tcp_;
  std::size_t live_tcp_prune_at_ = 64;

  // ttslint: allow(thread-confine) reason=relaxed delivery counter bumped on any domain, read post-run
  std::atomic<std::uint64_t> udp_sent_{0};
  // ttslint: allow(thread-confine) reason=relaxed delivery counter bumped on any domain, read post-run
  std::atomic<std::uint64_t> udp_delivered_{0};
  // ttslint: allow(thread-confine) reason=relaxed delivery counter bumped on any domain, read post-run
  std::atomic<std::uint64_t> tcp_attempts_{0};
  // ttslint: allow(thread-confine) reason=relaxed delivery counter bumped on any domain, read post-run
  std::atomic<std::uint64_t> tcp_established_{0};
};

}  // namespace tts::simnet
