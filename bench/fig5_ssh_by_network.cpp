// Figure 5: outdated SSH servers counted by network instead of unique key —
// key reuse makes the by-network view even bleaker, and the NTP/hitlist gap
// widens.
#include "analysis/ssh_analysis.hpp"
#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();
  auto ntp_hosts =
      analysis::dedup_ssh_hosts(study.results(), scan::Dataset::kNtp);
  auto hit_hosts =
      analysis::dedup_ssh_hosts(study.results(), scan::Dataset::kHitlist);

  util::TextTable t("Figure 5: outdated SSH servers by network counting");
  t.set_header(
      {"Aggregation", "NTP outdated", "Hitlist outdated", "gap (pp)"});

  auto by_key_ntp = analysis::outdatedness(ntp_hosts);
  auto by_key_hit = analysis::outdatedness(hit_hosts);
  t.add_row({"unique host keys", util::percent(by_key_ntp.outdated_share()),
             util::percent(by_key_hit.outdated_share()),
             util::fixed((by_key_ntp.outdated_share() -
                          by_key_hit.outdated_share()) *
                             100,
                         1)});

  double gap_key =
      by_key_ntp.outdated_share() - by_key_hit.outdated_share();
  double gap_64 = 0;
  for (unsigned len : {48u, 56u, 64u}) {
    auto n = analysis::outdatedness_by_network(ntp_hosts, len);
    auto h = analysis::outdatedness_by_network(hit_hosts, len);
    t.add_row({util::cat("/", len, " networks"),
               util::percent(n.outdated_share()),
               util::percent(h.outdated_share()),
               util::fixed((n.outdated_share() - h.outdated_share()) * 100,
                           1)});
    if (len == 64) gap_64 = n.outdated_share() - h.outdated_share();
  }
  t.add_note("Paper: counting networks instead of keys yields much more "
             "outdated hosts, and the NTP/hitlist gap widens.");
  t.render(std::cout);

  bool pass = gap_key > 0 && gap_64 > 0;
  std::cout << "\nShape check (gap positive at every granularity): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
