#include "ntp/pool.hpp"

#include <algorithm>

#include "util/format.hpp"

namespace tts::ntp {

NtpPool::~NtpPool() {
  if (registry_) registry_->drop_owner(this);
}

void NtpPool::set_registry(obs::Registry* registry) {
  if (registry_ == registry) return;
  if (registry_) registry_->drop_owner(this);
  registry_ = registry;
  if (!registry_) return;
  registry_->enroll(resolve_total_, "pool_resolve_total", {}, this);
  registry_->enroll(resolve_fallback_, "pool_resolve_fallback", {}, this);
  registry_->enroll(demotions_, "pool_demotions", {}, this);
  registry_->enroll(promotions_, "pool_promotions", {}, this);
  for (std::size_t i = 0; i < servers_.size(); ++i) enroll_server(i);
}

void NtpPool::enroll_server(std::size_t index) {
  if (!registry_) return;
  const PoolEntry& s = servers_[index];
  registry_->enroll(selections_[index], "pool_selections",
                    {{"zone", s.country},
                     {"server", util::cat(index)},
                     {"ours", s.ours ? "1" : "0"}},
                    this);
}

void NtpPool::add_server(PoolEntry entry) {
  zones_[entry.country].push_back(servers_.size());
  servers_.push_back(std::move(entry));
  selections_.emplace_back();
  enroll_server(servers_.size() - 1);
}

void NtpPool::withdraw(const net::Ipv6Address& address) {
  for (auto& s : servers_)
    if (s.address == address) s.monitor_score = -100;
}

void NtpPool::set_netspeed(const net::Ipv6Address& address, double netspeed) {
  for (auto& s : servers_)
    if (s.address == address) s.netspeed = netspeed;
}

void NtpPool::set_monitor_score(const net::Ipv6Address& address, int score) {
  for (auto& s : servers_) {
    if (s.address != address) continue;
    // Count rotation-eligibility flips: this is the pool's demote/promote
    // path (Appendix A.1.1) the chaos harness asserts end to end.
    bool was = s.monitor_score >= kRotationThreshold;
    bool is = score >= kRotationThreshold;
    if (was && !is) demotions_.inc();
    if (!was && is) promotions_.inc();
    s.monitor_score = score;
  }
}

std::vector<std::size_t> NtpPool::eligible_in_zone(
    const std::string& country) const {
  std::vector<std::size_t> out;
  auto it = zones_.find(country);
  if (it == zones_.end()) return out;
  for (std::size_t i : it->second)
    if (servers_[i].monitor_score >= kRotationThreshold) out.push_back(i);
  return out;
}

std::optional<std::size_t> NtpPool::pick_from(
    const std::vector<std::size_t>& zone, util::Rng& rng) const {
  if (zone.empty()) return std::nullopt;
  std::vector<double> weights;
  weights.reserve(zone.size());
  for (std::size_t i : zone) weights.push_back(servers_[i].netspeed);
  std::size_t index = zone[rng.pick_weighted(weights)];
  selections_[index].inc();
  return index;
}

std::optional<net::Ipv6Address> NtpPool::resolve(const std::string& country,
                                                 util::Rng& rng) const {
  resolve_total_.inc();
  auto zone = eligible_in_zone(country);
  if (zone.empty()) {
    resolve_fallback_.inc();
    // Continent-zone fallback: eligible servers in any country sharing the
    // client's continent.
    std::string_view continent = continent_of(country);
    if (continent != "global") {
      std::vector<std::size_t> regional;
      for (std::size_t i = 0; i < servers_.size(); ++i) {
        if (servers_[i].monitor_score >= kRotationThreshold &&
            continent_of(servers_[i].country) == continent)
          regional.push_back(i);
      }
      if (auto pick = pick_from(regional, rng))
        return servers_[*pick].address;
    }
    // Global-zone fallback: every eligible server worldwide.
    std::vector<std::size_t> all;
    for (std::size_t i = 0; i < servers_.size(); ++i)
      if (servers_[i].monitor_score >= kRotationThreshold) all.push_back(i);
    auto pick = pick_from(all, rng);
    if (!pick) return std::nullopt;
    return servers_[*pick].address;
  }
  auto pick = pick_from(zone, rng);
  if (!pick) return std::nullopt;
  return servers_[*pick].address;
}

double NtpPool::our_zone_share(const std::string& country) const {
  double ours = 0, total = 0;
  for (std::size_t i : eligible_in_zone(country)) {
    total += servers_[i].netspeed;
    if (servers_[i].ours) ours += servers_[i].netspeed;
  }
  return total > 0 ? ours / total : 0.0;
}

std::vector<PoolEntry> NtpPool::our_servers() const {
  std::vector<PoolEntry> out;
  for (const auto& s : servers_)
    if (s.ours) out.push_back(s);
  std::sort(out.begin(), out.end(),
            [](const PoolEntry& a, const PoolEntry& b) { return a.id < b.id; });
  return out;
}

bool NtpPool::zone_populated(const std::string& country) const {
  return !eligible_in_zone(country).empty();
}

const std::vector<std::string>& deployment_countries() {
  static const std::vector<std::string> kCountries = {
      "AU", "BR", "DE", "IN", "JP", "PL", "ZA", "ES", "NL", "GB", "US"};
  return kCountries;
}

std::string_view continent_of(const std::string& country) {
  struct Zone {
    const char* continent;
    const char* codes[18];
  };
  static const Zone kZones[] = {
      {"europe",
       {"DE", "ES", "NL", "GB", "PL", "FR", "IT", "SE", "CH", "AT", "CZ",
        "FI", "PT", "GR", "RO", "HU", "DK", nullptr}},
      {"asia",
       {"IN", "JP", "CN", "ID", "KR", "VN", "TH", "TW", "RU", "TR", nullptr}},
      {"north-america", {"US", "CA", "MX", nullptr}},
      {"south-america", {"BR", "AR", "CL", "CO", nullptr}},
      {"africa", {"ZA", "EG", "NG", nullptr}},
      {"oceania", {"AU", "NZ", nullptr}},
  };
  for (const auto& zone : kZones)
    for (const char* const* code = zone.codes; *code; ++code)
      if (country == *code) return zone.continent;
  return "global";
}

}  // namespace tts::ntp
