#include "telescope/classifier.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/ordered.hpp"
#include "util/stats.hpp"

namespace tts::telescope {

std::string_view to_string(ActorClass c) {
  switch (c) {
    case ActorClass::kResearch: return "research (overt)";
    case ActorClass::kCovert: return "covert";
    case ActorClass::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

// Union-find over scan-source indices.
struct DisjointSet {
  std::vector<std::size_t> parent;
  explicit DisjointSet(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

}  // namespace

ClassifierReport classify_actors(
    const PoolProber& prober, const inet::AsRegistry& registry,
    const std::function<std::string(const net::Ipv6Address&)>& identity_of,
    obs::Tracer* tracer) {
  obs::Tracer::SpanId span = obs::Tracer::kNoSpan;
  if (tracer) span = tracer->open("telescope/classify");
  struct CloseOnExit {
    obs::Tracer* tracer;
    obs::Tracer::SpanId span;
    ~CloseOnExit() {
      if (tracer) tracer->close(span);
    }
  } closer{tracer, span};

  ClassifierReport report;
  report.total_captures = prober.captures().size();

  // Attribute each capture to its probe record (matched = NTP-sourced).
  struct Attributed {
    const CapturedPacket* packet;
    const ProbeRecord* probe;
  };
  std::vector<Attributed> matched;
  for (const auto& pkt : prober.captures()) {
    if (!pkt.in_probe_prefix) {
      ++report.scattering;
      continue;
    }
    const ProbeRecord* probe = prober.probe_for(pkt.target);
    if (!probe) continue;
    matched.push_back({&pkt, probe});
    ++report.matched_captures;
  }
  if (matched.empty()) return report;

  // Index scan sources; cluster sources that received leaks from the same
  // NTP server (one operation runs several scan hosts).
  std::vector<net::Ipv6Address> sources;
  std::unordered_map<net::Ipv6Address, std::size_t, net::Ipv6AddressHash>
      source_index;
  for (const auto& m : matched) {
    if (source_index.emplace(m.packet->scanner, sources.size()).second)
      sources.push_back(m.packet->scanner);
  }
  DisjointSet clusters(sources.size());
  std::unordered_map<net::Ipv6Address, std::size_t, net::Ipv6AddressHash>
      first_source_for_server;
  for (const auto& m : matched) {
    std::size_t src = source_index[m.packet->scanner];
    auto [it, inserted] =
        first_source_for_server.emplace(m.probe->server, src);
    if (!inserted) clusters.unite(src, it->second);
  }

  // Build per-actor aggregates.
  struct Working {
    ObservedActor actor;
    std::vector<double> delays;
    std::map<net::Ipv6Address, std::pair<simnet::SimTime, simnet::SimTime>>
        target_span;
  };
  std::unordered_map<std::size_t, Working> actors;

  for (const auto& m : matched) {
    std::size_t root = clusters.find(source_index[m.packet->scanner]);
    Working& w = actors[root];
    w.actor.ntp_servers.insert(m.probe->server);
    w.actor.ports.insert(m.packet->port);
    ++w.actor.packets;
    if (const inet::AsInfo* as = registry.origin(m.packet->scanner))
      w.actor.source_ases.insert(as->number);
    w.delays.push_back(
        static_cast<double>(m.packet->at - m.probe->queried_at));
    auto [it, inserted] = w.target_span.emplace(
        m.packet->target, std::make_pair(m.packet->at, m.packet->at));
    if (!inserted) {
      it->second.first = std::min(it->second.first, m.packet->at);
      it->second.second = std::max(it->second.second, m.packet->at);
    }
  }

  for (std::size_t i = 0; i < sources.size(); ++i) {
    auto it = actors.find(clusters.find(i));
    if (it != actors.end()) it->second.actor.scan_sources.push_back(sources[i]);
  }

  // Drain actors in sorted root order so the report (and the tie order of
  // the popularity sort below) never depends on hash layout.
  for (std::size_t root : util::sorted_keys(actors)) {
    Working& w = actors.at(root);
    ObservedActor& a = w.actor;
    a.targets = w.target_span.size();
    a.median_delay =
        static_cast<simnet::SimDuration>(util::median(w.delays));
    std::vector<double> spans;
    spans.reserve(w.target_span.size());
    for (const auto& [target, window] : w.target_span)
      spans.push_back(static_cast<double>(window.second - window.first));
    a.median_target_span =
        static_cast<simnet::SimDuration>(util::median(std::move(spans)));
    for (const auto& src : a.scan_sources)
      if (!identity_of(src).empty()) a.identified = true;

    // Characterisation (Section 5.2): research scanners start within the
    // hour, sweep many ports quickly, and identify themselves; covert
    // actors spread few, security-sensitive ports over days from anonymous
    // cloud hosts.
    bool fast = a.median_delay <= simnet::hours(2);
    bool short_burst = a.median_target_span <= simnet::hours(1);
    bool broad = a.ports.size() >= 100;
    if (a.identified || (fast && short_burst && broad)) {
      a.classification = ActorClass::kResearch;
    } else if (a.median_delay > simnet::hours(6) ||
               a.median_target_span > simnet::hours(12) ||
               (!a.identified && a.source_ases.size() >= 1 && !broad)) {
      a.classification = ActorClass::kCovert;
    } else {
      a.classification = ActorClass::kUnknown;
    }
    report.actors.push_back(std::move(a));
  }

  // stable_sort over the root-ordered list: actors tied on packet count
  // keep a deterministic relative order.
  std::stable_sort(report.actors.begin(), report.actors.end(),
                   [](const ObservedActor& x, const ObservedActor& y) {
                     return x.packets > y.packets;
                   });
  return report;
}

}  // namespace tts::telescope
