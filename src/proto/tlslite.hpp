// Simplified TLS handshake wire model.
//
// The study's analyses consume handshake *outcomes* (did TLS complete, and
// which certificate was presented), never key material. This codec keeps
// the TLS 1.3-ish message flow — ClientHello (optionally with SNI) answered
// by either a ServerHello carrying the certificate or a fatal alert — on a
// compact record framing:
//
//   record := type:u8 length:u16 body
//   type 0x16 handshake, 0x15 alert, 0x17 application data
//   ClientHello  := hs_type 0x01, client_version u16, sni str16 (may be "")
//   ServerHello  := hs_type 0x02, version u16, cert {fingerprint u64,
//                   subject str16, flags u8, not_before u32, not_after u32}
//   Alert        := level u8, description u8
//
// SNI-dependent failure (the Cloudfront effect of Table 2) is a server
// policy: without SNI the server answers alert 112 (unrecognized_name).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tts::proto {

inline constexpr std::uint8_t kRecordHandshake = 0x16;
inline constexpr std::uint8_t kRecordAlert = 0x15;
inline constexpr std::uint8_t kRecordAppData = 0x17;

inline constexpr std::uint8_t kAlertHandshakeFailure = 40;
inline constexpr std::uint8_t kAlertUnrecognizedName = 112;

struct Certificate {
  std::uint64_t fingerprint = 0;  // stands in for the SHA-256 of the DER
  std::string subject;
  bool self_signed = false;
  std::uint32_t not_before = 0;  // unix seconds
  std::uint32_t not_after = 0;

  bool valid_at(std::uint32_t unix_now) const {
    return unix_now >= not_before && unix_now <= not_after;
  }
};

struct ClientHello {
  std::uint16_t version = 0x0303;
  std::string sni;  // empty = no server_name extension
};

struct ServerHello {
  std::uint16_t version = 0x0303;
  Certificate cert;
};

struct Alert {
  std::uint8_t level = 2;  // fatal
  std::uint8_t description = kAlertHandshakeFailure;
};

std::vector<std::uint8_t> encode(const ClientHello& hello);
std::vector<std::uint8_t> encode(const ServerHello& hello);
std::vector<std::uint8_t> encode(const Alert& alert);
/// Wrap plaintext in an application-data record.
std::vector<std::uint8_t> encode_app_data(std::span<const std::uint8_t> data);

/// What a peer read from one TLS record.
struct TlsMessage {
  enum class Kind { kClientHello, kServerHello, kAlert, kAppData } kind;
  ClientHello client_hello;    // kClientHello
  ServerHello server_hello;    // kServerHello
  Alert alert;                 // kAlert
  std::vector<std::uint8_t> app_data;  // kAppData
  std::size_t wire_size = 0;   // bytes consumed
};

/// Decode the first record in `wire`; nullopt on malformed/incomplete input.
std::optional<TlsMessage> decode(std::span<const std::uint8_t> wire);

}  // namespace tts::proto
