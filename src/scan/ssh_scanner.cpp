// SSH probe: read the server identification string (OS + patch level
// extraction feeds Figure 2), send ours, and capture the host-key
// fingerprint from the condensed KEX (host-key dedup feeds Table 2).
#include "proto/sshwire.hpp"
#include "scan/probe_util.hpp"

namespace tts::scan {

namespace {

using detail::ProbeStatePtr;
using simnet::TcpConnection;

class SshScanner final : public ProtocolScanner {
 public:
  Protocol protocol() const override { return Protocol::kSsh; }

  void probe(simnet::Network& network, const simnet::Endpoint& src,
             ScanRecord base, DoneFn done) override {
    auto state = detail::make_probe_state(std::move(base), std::move(done));
    detail::arm_guard(network, state, probe_timeout_);

    simnet::Endpoint dst{state->record.target, port_of(Protocol::kSsh)};
    network.connect_tcp(
        src, dst,
        [state](simnet::TcpConnectionPtr conn, bool refused) {
          if (!conn) {
            state->finish(refused ? Outcome::kRefused : Outcome::kTimeout);
            return;
          }
          state->conn = conn;
          conn->set_on_close(TcpConnection::Side::kClient, [state] {
            if (!state->finished) {
              // Banner without key still counts as a successful grab when
              // the peer hangs up after identification.
              state->finish(state->record.ssh_banner.empty()
                                ? Outcome::kMalformed
                                : Outcome::kSuccess);
            }
          });
          conn->set_on_data(
              TcpConnection::Side::kClient,
              [state, conn](std::vector<std::uint8_t> data) {
                if (state->record.ssh_banner.empty()) {
                  auto banner = proto::parse_ssh_id(data);
                  if (!banner) {
                    state->finish(Outcome::kMalformed);
                    return;
                  }
                  state->record.ssh_banner = *banner;
                  conn->send(TcpConnection::Side::kClient,
                             proto::ssh_id_string(
                                 "SSH-2.0-tts_scan_0.1 research-scan"));
                  return;
                }
                auto key = proto::parse_ssh_kex_reply(data);
                if (!key) {
                  state->finish(Outcome::kMalformed);
                  return;
                }
                state->record.ssh_hostkey = *key;
                state->finish(Outcome::kSuccess);
              });
        },
        connect_timeout_);
  }
};

}  // namespace

std::unique_ptr<ProtocolScanner> make_ssh_scanner() {
  return std::make_unique<SshScanner>();
}

}  // namespace tts::scan
