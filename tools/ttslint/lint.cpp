#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

namespace ttslint {

namespace {

constexpr std::string_view kRules[] = {
    "unordered-iter", "wall-clock",    "pointer-key",
    "rng-seed",       "thread-confine", "barrier-only",
    "shared-state",   "scoped-lock",   "bad-pragma",
    "unused-pragma",
};

const std::set<std::string, std::less<>> kUnorderedBases = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string, std::less<>> kAssociativeBases = {
    "map",           "set",           "multimap",
    "multiset",      "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset"};

// Sequence-ish types whose insert/append order is meaningful: pushing into
// one from an unordered loop is the canonical order escape.
const std::set<std::string, std::less<>> kSequenceBases = {
    "vector", "deque", "list", "basic_string", "string", "ostringstream",
    "stringstream", "ostream"};

// util/ordered.hpp's sorted-drain helpers: a range expression routed through
// one of these is ordered by construction.
const std::set<std::string, std::less<>> kSortedDrains = {
    "sorted_items", "sorted_keys", "sorted_ptrs"};

// Wall-clock / ambient-entropy identifiers flagged wherever they appear.
const std::set<std::string, std::less<>> kClockIdents = {
    "system_clock", "steady_clock",  "high_resolution_clock",
    "random_device", "srand",        "gettimeofday",
    "clock_gettime", "localtime",    "gmtime",
    "mktime",        "timespec_get", "mt19937",
    "mt19937_64",    "default_random_engine"};

// Flagged only when called (identifier immediately followed by '(').
const std::set<std::string, std::less<>> kClockCalls = {"rand", "time",
                                                        "clock"};

// Calls that may appear inside a mechanically order-insensitive loop body:
// pure lookups/queries and set-semantics insertion.
const std::set<std::string, std::less<>> kCommutativeCalls = {
    "insert", "emplace", "try_emplace", "find",  "count", "contains",
    "at",     "size",    "empty",       "min",   "max",   "abs",
    "first",  "second"};

// Casts: ident '<' ... '>' '(' — allowed.
const std::set<std::string, std::less<>> kCasts = {
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast"};

// C1: std::-qualified thread primitives. Construction *or* use of any of
// these outside the dispatcher/instrument allowlist means concurrency has
// leaked out of the barrier protocol. Matched only when the identifier is
// written as std::<name>, so a local variable named `barrier` or a
// project type called `Latch` never trips the rule.
const std::set<std::string, std::less<>> kThreadPrimitives = {
    "thread",
    "jthread",
    "mutex",
    "timed_mutex",
    "recursive_mutex",
    "recursive_timed_mutex",
    "shared_mutex",
    "shared_timed_mutex",
    "condition_variable",
    "condition_variable_any",
    "atomic",
    "atomic_flag",
    "atomic_ref",
    "lock_guard",
    "unique_lock",
    "scoped_lock",
    "shared_lock",
    "once_flag",
    "call_once",
    "future",
    "shared_future",
    "promise",
    "packaged_task",
    "async",
    "counting_semaphore",
    "binary_semaphore",
    "latch",
    "barrier",
    "stop_token",
    "stop_source"};

// C4 / declaration scan: types whose .lock()/.unlock() is a manual mutex
// operation. weak_ptr deliberately absent — weak_ptr::lock() is a
// different protocol entirely (simnet/network.cpp's live-connection sweep).
const std::set<std::string, std::less<>> kMutexBases = {
    "mutex",        "timed_mutex",  "recursive_mutex",
    "recursive_timed_mutex",        "shared_mutex",
    "shared_timed_mutex"};

// C3: a namespace-scope statement containing one of these is a type alias,
// template, function or other non-variable construct — never a mutable
// global. `static` is deliberately NOT here: `static int hits;` at
// namespace scope is exactly the hazard.
const std::set<std::string, std::less<>> kNamespaceDeclSkips = {
    "using",     "typedef",  "template", "namespace", "class",
    "struct",    "enum",     "union",    "friend",    "static_assert",
    "extern",    "operator", "concept",  "requires",  "const",
    "constexpr", "constinit", "consteval"};

// C2: keywords that may legitimately precede a call expression; any other
// preceding identifier means the name is being *declared*, not called.
const std::set<std::string, std::less<>> kCallPrefixKeywords = {
    "return", "co_return", "co_yield", "co_await", "throw",
    "case",   "else",      "do",       "not"};

bool contains_ci(std::string_view haystack, std::string_view needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    std::size_t j = 0;
    while (j < needle.size() &&
           std::tolower(static_cast<unsigned char>(haystack[i + j])) ==
               std::tolower(static_cast<unsigned char>(needle[j])))
      ++j;
    if (j == needle.size()) return true;
  }
  return false;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool type_like(std::string_view name) {
  return !name.empty() &&
         std::isupper(static_cast<unsigned char>(name.front()));
}

// --------------------------------------------------------------- pragmas

struct Pragma {
  int comment_line = 0;    // where the pragma itself sits
  int target_line = 0;     // the code line it suppresses
  int col = 0;
  std::vector<std::string> rules;
  bool used = false;
};

// ------------------------------------------------------- declaration scan

/// File-local type environment: names whose declared type makes iteration
/// order a hazard (unordered), names that are strings (so "+=" on them is
/// concatenation, not arithmetic), and names of sequence containers (so
/// "insert" on them is order-sensitive).
struct DeclEnv {
  std::set<std::string, std::less<>> unordered;  // vars, aliases, functions
  std::set<std::string, std::less<>> strings;
  std::set<std::string, std::less<>> sequences;
  /// Names declared with a mutex type (C4: their .lock()/.unlock() is a
  /// manual mutex operation; everything else's lock() is not).
  std::set<std::string, std::less<>> mutexes;
  /// Functions declared under a `// ttslint: barrier_only` marker (C2).
  std::set<std::string, std::less<>> barrier_only;
};

/// Skip a balanced template argument list starting at tokens[i] == '<'.
/// Returns the index one past the closing '>'. Treats ">>" as two closes.
/// Bails (returns i) if the list does not look like template args.
std::size_t skip_template_args(const std::vector<Token>& code,
                               std::size_t i) {
  if (i >= code.size() || !code[i].punct("<")) return i;
  int depth = 0;
  std::size_t j = i;
  while (j < code.size()) {
    const Token& t = code[j];
    if (t.punct("<")) {
      ++depth;
    } else if (t.punct(">")) {
      if (--depth == 0) return j + 1;
    } else if (t.punct(">>")) {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t.punct(";") || t.punct("{")) {
      return i;  // was a comparison, not template args
    }
    ++j;
  }
  return i;
}

void scan_declarations(const std::vector<Token>& code, DeclEnv& env) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != Tok::kIdent) continue;

    // using Alias = ... unordered ... ;
    if (t.text == "using" && i + 2 < code.size() &&
        code[i + 1].kind == Tok::kIdent && code[i + 2].punct("=")) {
      const std::string& alias = code[i + 1].text;
      bool unordered = false;
      std::size_t j = i + 3;
      while (j < code.size() && !code[j].punct(";")) {
        if (code[j].kind == Tok::kIdent &&
            (kUnorderedBases.count(code[j].text) ||
             env.unordered.count(code[j].text)))
          unordered = true;
        ++j;
      }
      if (unordered) env.unordered.insert(alias);
      i = j;
      continue;
    }

    bool is_unordered = kUnorderedBases.count(t.text) > 0 ||
                        env.unordered.count(t.text) > 0;
    bool is_string = t.text == "string" || t.text == "ostringstream" ||
                     t.text == "stringstream";
    bool is_sequence = kSequenceBases.count(t.text) > 0;
    bool is_mutex = kMutexBases.count(t.text) > 0;
    if (!is_unordered && !is_string && !is_sequence && !is_mutex) continue;

    // Skip template args, then an optional ref/const, then take the
    // declared name. "unordered_map<...> name" / "string name".
    std::size_t j = skip_template_args(code, i + 1);
    while (j < code.size() &&
           (code[j].punct("&") || code[j].punct("*") ||
            code[j].ident("const")))
      ++j;
    if (j < code.size() && code[j].kind == Tok::kIdent &&
        code[j].text != "operator") {
      const std::string& name = code[j].text;
      if (is_unordered) env.unordered.insert(name);
      if (is_string) env.strings.insert(name);
      if (is_sequence) env.sequences.insert(name);
      if (is_mutex) env.mutexes.insert(name);
    }
  }
}

// ------------------------------------------------- barrier_only markers

/// Is this comment the declaration-site marker `ttslint: barrier_only`?
/// (Anything else after `ttslint:` goes through the allow(...) grammar.)
bool is_barrier_marker(std::string_view comment) {
  std::size_t at = comment.find("ttslint:");
  if (at == std::string_view::npos) return false;
  std::string_view body = comment.substr(at + 8);
  std::size_t i = 0;
  while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i])))
    ++i;
  if (body.compare(i, 12, "barrier_only") != 0) return false;
  for (i += 12; i < body.size(); ++i)
    if (!std::isspace(static_cast<unsigned char>(body[i]))) return false;
  return true;
}

struct BarrierMarker {
  int comment_line = 0;
  int col = 0;
  int target_line = 0;
  bool bound = false;  // a function declaration was found on target_line
};

/// Find every barrier_only marker in `comments`, resolve its target line
/// (own line if it carries code, next code line otherwise), and register
/// the first identifier-followed-by-'(' on that line — the declared
/// function — into `env.barrier_only`. Unbound markers are returned for
/// the caller to report (only when linting the file itself; a header
/// scanned for its environment reports them on its own standalone pass).
std::vector<BarrierMarker> collect_barrier_markers(
    const std::vector<Token>& code, const std::vector<Token>& comments,
    DeclEnv& env) {
  std::vector<BarrierMarker> markers;
  std::set<int> code_lines;
  for (const Token& t : code) code_lines.insert(t.line);
  for (const Token& c : comments) {
    if (!is_barrier_marker(c.text)) continue;
    BarrierMarker m;
    m.comment_line = c.line;
    m.col = c.col;
    if (code_lines.count(c.line)) {
      m.target_line = c.line;
    } else {
      auto next = code_lines.upper_bound(c.line);
      m.target_line = next == code_lines.end() ? -1 : *next;
    }
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
      if (code[i].line != m.target_line) continue;
      if (code[i].kind == Tok::kIdent && code[i + 1].punct("(")) {
        env.barrier_only.insert(code[i].text);
        m.bound = true;
        break;
      }
    }
    markers.push_back(m);
  }
  return markers;
}

// ------------------------------------------------------------ lint pass

class Linter {
 public:
  Linter(std::string path, std::string_view source,
         std::string_view paired_header, const Options& options)
      : path_(std::move(path)), options_(options) {
    auto all = tokenize(source);
    for (auto& t : all) {
      if (t.kind == Tok::kComment) {
        comments_.push_back(std::move(t));
      } else if (t.kind != Tok::kPreproc) {
        code_.push_back(std::move(t));
      }
    }
    // Environment seeding order: compile-commands headers first, then the
    // paired header, then the file itself — later scans may resolve
    // aliases the earlier ones introduced.
    for (const std::string& extra : options_.env_sources)
      scan_external(extra);
    if (!paired_header.empty()) scan_external(paired_header);
    scan_declarations(code_, env_);
  }

  std::vector<Finding> run() {
    parse_pragmas();
    rule_unordered_iter();
    rule_wall_clock();
    rule_pointer_key();
    rule_rng_seed();
    rule_thread_confine();
    rule_barrier_only();
    rule_shared_state();
    rule_scoped_lock();
    flush_suppressed();
    return std::move(findings_);
  }

 private:
  /// Scan a header text's declarations into the environment (the header
  /// itself is linted as its own input, never here). Comments are kept
  /// long enough to pick up barrier_only markers: a commit API declared in
  /// a header must confine this TU's call sites too. Unbound markers are
  /// ignored here — the header's own standalone pass reports them.
  void scan_external(std::string_view text) {
    auto toks = tokenize(text);
    std::vector<Token> code;
    std::vector<Token> comments;
    for (auto& t : toks) {
      if (t.kind == Tok::kComment)
        comments.push_back(std::move(t));
      else if (t.kind != Tok::kPreproc)
        code.push_back(std::move(t));
    }
    scan_declarations(code, env_);
    collect_barrier_markers(code, comments, env_);
  }

  const Token& tok(std::size_t i) const { return code_[i]; }
  bool have(std::size_t i) const { return i < code_.size(); }

  void report(const Token& at, std::string rule, std::string message) {
    raw_.push_back(
        {path_, at.line, at.col, std::move(rule), std::move(message)});
  }

  // ---- pragmas ----

  void parse_pragmas() {
    // Lines that carry code, for "pragma on its own line covers the next
    // code line" resolution.
    std::set<int> code_lines;
    for (const Token& t : code_) code_lines.insert(t.line);

    // barrier_only declaration markers first: they share the `ttslint:`
    // prefix but are not allow(...) pragmas. A marker that binds no
    // function declaration is dead annotation — a bad-pragma finding.
    for (const BarrierMarker& m :
         collect_barrier_markers(code_, comments_, env_)) {
      if (!m.bound)
        findings_.push_back(
            {path_, m.comment_line, m.col, "bad-pragma",
             "barrier_only marker precedes no function declaration; place "
             "it on (or directly above) the line declaring the commit "
             "API"});
    }

    for (const Token& c : comments_) {
      if (is_barrier_marker(c.text)) continue;
      std::size_t at = c.text.find("ttslint:");
      if (at == std::string::npos) continue;
      std::string body = c.text.substr(at + 8);
      Pragma p;
      p.comment_line = c.line;
      p.col = c.col;
      if (!parse_allow(body, p.rules)) {
        findings_.push_back(
            {path_, c.line, c.col, "bad-pragma",
             "malformed pragma; expected 'ttslint: allow(rule[, rule...]) "
             "reason=<text>' with a known rule and a non-empty reason"});
        continue;
      }
      bool own_line = !code_lines.count(c.line);
      if (own_line) {
        auto next = code_lines.upper_bound(c.line);
        p.target_line = next == code_lines.end() ? -1 : *next;
      } else {
        p.target_line = c.line;
      }
      pragmas_.push_back(std::move(p));
    }
  }

  bool parse_allow(std::string_view body, std::vector<std::string>& rules) {
    auto skip_ws = [&](std::size_t i) {
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i])))
        ++i;
      return i;
    };
    std::size_t i = skip_ws(0);
    if (body.compare(i, 5, "allow") != 0) return false;
    i = skip_ws(i + 5);
    if (i >= body.size() || body[i] != '(') return false;
    ++i;
    std::string current;
    for (; i < body.size() && body[i] != ')'; ++i) {
      char ch = body[i];
      if (ch == ',') {
        if (!current.empty()) rules.push_back(current);
        current.clear();
      } else if (!std::isspace(static_cast<unsigned char>(ch))) {
        current += ch;
      }
    }
    if (i >= body.size()) return false;  // no ')'
    if (!current.empty()) rules.push_back(current);
    if (rules.empty()) return false;
    for (const auto& r : rules)
      if (!known_rule(r)) return false;
    i = skip_ws(i + 1);
    if (body.compare(i, 7, "reason=") != 0) return false;
    i = skip_ws(i + 7);
    return i < body.size();  // non-empty reason
  }

  void flush_suppressed() {
    for (Finding& f : raw_) {
      bool suppressed = false;
      for (Pragma& p : pragmas_) {
        if (p.target_line != f.line) continue;
        if (std::find(p.rules.begin(), p.rules.end(), f.rule) !=
            p.rules.end()) {
          p.used = true;
          suppressed = true;
        }
      }
      if (!suppressed) findings_.push_back(std::move(f));
    }
    for (const Pragma& p : pragmas_) {
      if (p.used) continue;
      findings_.push_back({path_, p.comment_line, p.col, "unused-pragma",
                           "pragma suppresses nothing on its target line; "
                           "remove it or move it next to the finding"});
    }
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                if (a.col != b.col) return a.col < b.col;
                return a.rule < b.rule;
              });
  }

  // ---- D2: wall clock ----

  void rule_wall_clock() {
    for (const auto& suffix : options_.wallclock_allow)
      if (ends_with(path_, suffix)) return;
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != Tok::kIdent) continue;
      bool hit = kClockIdents.count(t.text) > 0;
      if (!hit && kClockCalls.count(t.text) && have(i + 1) &&
          tok(i + 1).punct("("))
        hit = true;
      if (hit)
        report(t, "wall-clock",
               "'" + t.text +
                   "' reads ambient time/entropy; derive from the simulated "
                   "clock or a seeded Rng (allowlist: observational "
                   "wall-profiling only)");
    }
  }

  // ---- D3: pointer keys ----

  void rule_pointer_key() {
    for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != Tok::kIdent || !kAssociativeBases.count(t.text)) continue;
      if (!tok(i + 1).punct("<")) continue;
      // Walk the first template argument (depth 1, up to ',' or close).
      int depth = 0;
      std::size_t j = i + 1;
      std::size_t last_arg_tok = 0;
      bool closed = false;
      while (j < code_.size()) {
        const Token& u = tok(j);
        if (u.punct("<")) {
          ++depth;
        } else if (u.punct(">") || u.punct(">>")) {
          depth -= u.text == ">>" ? 2 : 1;
          if (depth <= 0) {
            closed = true;
            break;
          }
        } else if (u.punct(",") && depth == 1) {
          break;
        } else if (u.punct(";") || u.punct("{")) {
          break;  // comparison, not a template
        } else if (depth >= 1) {
          last_arg_tok = j;
        }
        ++j;
      }
      (void)closed;
      if (last_arg_tok && tok(last_arg_tok).punct("*"))
        report(t, "pointer-key",
               "raw pointer as associative key: iteration and ordering "
               "depend on allocation addresses; key by a stable id instead");
    }
  }

  // ---- D4: Rng seeds ----

  void rule_rng_seed() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!tok(i).ident("Rng")) continue;
      // Skip type mentions and member declarations: `class Rng`,
      // `explicit Rng(...)`, `~Rng()`, `Rng::stream`.
      if (i > 0 && (tok(i - 1).ident("class") || tok(i - 1).ident("struct") ||
                    tok(i - 1).ident("explicit") || tok(i - 1).punct("~")))
        continue;
      if (have(i + 1) && tok(i + 1).punct("::")) continue;
      std::size_t open = 0;
      if (have(i + 1) && (tok(i + 1).punct("(") || tok(i + 1).punct("{"))) {
        open = i + 1;  // Rng(expr) — direct construction
      } else if (have(i + 2) && tok(i + 1).kind == Tok::kIdent &&
                 (tok(i + 2).punct("(") || tok(i + 2).punct("{"))) {
        open = i + 2;  // Rng name(expr) — declaration with init
      } else {
        continue;
      }
      std::string close = tok(open).text == "(" ? ")" : "}";
      int depth = 0;
      bool ok = false;
      bool any_arg = false;
      bool param_list = false;  // declaration, not a construction
      bool prev_ident = false;
      std::size_t j = open;
      for (; j < code_.size(); ++j) {
        const Token& u = tok(j);
        if (u.text == tok(open).text && u.kind == Tok::kPunct) ++depth;
        if (u.kind == Tok::kPunct && u.text == close && --depth == 0) break;
        if (j == open) continue;
        any_arg = true;
        if (u.kind == Tok::kIdent) {
          // An argument tracing to a seed satisfies the rule; two adjacent
          // identifiers ("uint64_t n") or a const only occur in parameter
          // lists, which are declarations, not constructions.
          if (contains_ci(u.text, "seed")) ok = true;
          if (u.text == "const" || prev_ident) param_list = true;
          prev_ident = true;
        } else {
          prev_ident = false;
        }
      }
      // `) const` / `) {` trail member declarations and function
      // definitions; constructions are followed by ; , ) or an operator.
      if (have(j + 1) && (tok(j + 1).ident("const") || tok(j + 1).punct("{")))
        param_list = true;
      if (any_arg && !ok && !param_list)
        report(tok(i), "rng-seed",
               "Rng constructed from a value that does not trace to a "
               "seed; derive via StudyConfig::seed or Rng::stream()");
    }
  }

  // ---- C1: thread-primitive confinement ----

  bool thread_allowed() const {
    for (const auto& suffix : options_.thread_allow)
      if (ends_with(path_, suffix)) return true;
    return false;
  }

  void rule_thread_confine() {
    if (thread_allowed()) return;
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != Tok::kIdent) continue;
      bool hit = false;
      if (t.text == "thread_local") {
        hit = true;
      } else if (kThreadPrimitives.count(t.text) && i >= 2 &&
                 tok(i - 2).ident("std") && tok(i - 1).punct("::")) {
        hit = true;
      }
      if (hit)
        report(t, "thread-confine",
               "'" + (t.text == "thread_local"
                          ? t.text
                          : "std::" + t.text) +
                   "' escapes the concurrency confinement: threads, locks "
                   "and atomics live inside the simnet dispatcher and obs "
                   "instruments only — route work through EventQueue "
                   "domains / run_at_barrier, or suppress with a reason");
    }
  }

  // ---- C2: barrier-only commit APIs ----

  /// Token ranges lexically inside a run_at_barrier(...) argument list —
  /// the deterministic commit scope where barrier_only calls are legal.
  std::vector<std::pair<std::size_t, std::size_t>> barrier_scopes() const {
    std::vector<std::pair<std::size_t, std::size_t>> scopes;
    for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
      if (!tok(i).ident("run_at_barrier") || !tok(i + 1).punct("("))
        continue;
      scopes.emplace_back(i + 1, match(i + 1));
    }
    return scopes;
  }

  /// Does `name(` at position i declare/define rather than call? A
  /// preceding type identifier or '~' marks a declaration; a ')' followed
  /// by a body/brace-introducing token marks a definition or prototype
  /// trailer. Keywords like `return` still introduce calls.
  bool is_declaration_site(std::size_t i) const {
    if (i > 0) {
      const Token& prev = tok(i - 1);
      if (prev.punct("~")) return true;
      if (prev.kind == Tok::kIdent && !kCallPrefixKeywords.count(prev.text))
        return true;
    }
    std::size_t after = match(i + 1);  // one past the matching ')'
    if (after < code_.size()) {
      const Token& u = tok(after);
      if (u.punct("{") || u.punct("->") || u.ident("const") ||
          u.ident("noexcept") || u.ident("override") || u.ident("final") ||
          u.ident("delete") || u.ident("default"))
        return true;
    }
    return false;
  }

  void rule_barrier_only() {
    if (env_.barrier_only.empty()) return;
    auto scopes = barrier_scopes();
    auto in_scope = [&](std::size_t i) {
      for (const auto& [b, e] : scopes)
        if (i > b && i < e) return true;
      return false;
    };
    for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != Tok::kIdent || !env_.barrier_only.count(t.text))
        continue;
      if (!tok(i + 1).punct("(")) continue;
      if (is_declaration_site(i)) continue;
      if (in_scope(i)) continue;
      report(t, "barrier-only",
             "'" + t.text +
                 "' is a barrier_only commit API: call it from inside an "
                 "EventQueue::run_at_barrier callback (domains quiescent) "
                 "or suppress with a reasoned allow(barrier-only)");
    }
  }

  // ---- C3: mutable shared state ----

  /// Classify every brace: 'n' namespace body, 'c' class/struct/enum/union
  /// body, 'b' anything else (function bodies, control blocks,
  /// initializers). kinds[i] is the classification of code_[i] when it is
  /// an opening '{'.
  std::vector<char> classify_braces() const {
    std::vector<char> kinds(code_.size(), 'b');
    std::size_t head = 0;  // first token of the current statement head
    std::vector<std::size_t> open_stack;
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (t.kind == Tok::kPunct && t.text == "{") {
        char kind = 'b';
        bool has_eq = false, has_ns = false, has_class = false;
        bool init_ctx =
            i > head && (code_[i - 1].punct("=") || code_[i - 1].punct(",") ||
                         code_[i - 1].punct("(") || code_[i - 1].punct("{") ||
                         code_[i - 1].ident("return"));
        for (std::size_t j = head; j < i; ++j) {
          const Token& u = code_[j];
          if (u.punct("=")) has_eq = true;
          if (u.ident("namespace") ||
              (u.ident("extern") && j + 1 < i &&
               code_[j + 1].kind == Tok::kString))
            has_ns = true;
          if (u.ident("class") || u.ident("struct") || u.ident("union") ||
              u.ident("enum"))
            has_class = true;
        }
        if (!has_eq && !init_ctx) {
          if (has_ns)
            kind = 'n';
          else if (has_class)
            kind = 'c';
        }
        kinds[i] = kind;
        open_stack.push_back(i);
        head = i + 1;
      } else if (t.kind == Tok::kPunct && t.text == "}") {
        if (!open_stack.empty()) open_stack.pop_back();
        head = i + 1;
      } else if (t.kind == Tok::kPunct && t.text == ";") {
        head = i + 1;
      }
    }
    return kinds;
  }

  void rule_shared_state() {
    if (thread_allowed()) return;
    std::vector<char> kinds = classify_braces();
    // Walk statements tracking the scope stack.
    std::vector<char> stack;
    std::size_t stmt = 0;  // first token of the current statement
    auto at_namespace_scope = [&] {
      for (char k : stack)
        if (k != 'n') return false;
      return true;
    };
    auto in_function_body = [&] {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it)
        if (*it == 'b') return true;
      return false;
    };
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (t.kind == Tok::kPunct && t.text == "{") {
        // A namespace-scope statement ending in a brace (function body,
        // class body, namespace body) is not a variable unless it was an
        // initializer brace — handled by the '=' check below first.
        if (kinds[i] == 'b' && at_namespace_scope())
          check_namespace_decl(stmt, i);
        stack.push_back(kinds[i]);
        stmt = i + 1;
        continue;
      }
      if (t.kind == Tok::kPunct && t.text == "}") {
        if (!stack.empty()) stack.pop_back();
        stmt = i + 1;
        continue;
      }
      if (t.kind == Tok::kPunct && t.text == ";") {
        if (at_namespace_scope()) check_namespace_decl(stmt, i);
        stmt = i + 1;
        continue;
      }
      // Function-local static: mutable state shared across every event
      // that runs the function — a cross-shard race by construction.
      if (t.kind == Tok::kIdent && t.text == "static" && i == stmt &&
          in_function_body()) {
        bool is_const = false;
        for (std::size_t j = i + 1; j < code_.size(); ++j) {
          const Token& u = code_[j];
          if (u.kind == Tok::kPunct &&
              (u.text == ";" || u.text == "=" || u.text == "{"))
            break;
          if (u.ident("const") || u.ident("constexpr")) is_const = true;
        }
        if (!is_const)
          report(t, "shared-state",
                 "non-const function-local static: shared mutable state "
                 "across shards and runs; hoist it into the owning "
                 "component or make it constexpr");
      }
    }
  }

  /// Does code_[stmt..end) declare a mutable namespace-scope variable?
  /// Conservative: statements with '(' (functions), alias/type/template
  /// keywords, or const/constexpr are never findings.
  void check_namespace_decl(std::size_t stmt, std::size_t end) {
    if (end <= stmt) return;
    // Initializer braces: `int xs[] = {...}` ends at '{' with '=' before.
    bool saw_eq = false;
    std::size_t name_tok = 0;
    int idents = 0;
    for (std::size_t j = stmt; j < end; ++j) {
      const Token& u = code_[j];
      if (u.kind == Tok::kPunct && u.text == "=") {
        saw_eq = true;
        break;
      }
      if (u.kind == Tok::kPunct &&
          (u.text == "(" || u.text == ":" || u.text == "::")) {
        if (u.text == "(") return;  // function declaration / macro call
        continue;
      }
      if (u.kind == Tok::kPreproc || u.kind == Tok::kComment) continue;
      if (u.kind == Tok::kIdent) {
        if (kNamespaceDeclSkips.count(u.text)) return;
        if (u.text == "inline" || u.text == "static" ||
            u.text == "thread_local" || u.text == "mutable" ||
            u.text == "volatile" || u.text == "unsigned" ||
            u.text == "signed" || u.text == "long" || u.text == "short")
          continue;
        ++idents;
        name_tok = j;
      }
    }
    (void)saw_eq;
    // A variable needs at least a type and a name; a lone expression
    // statement or label never has two plain identifiers.
    if (idents < 2 || name_tok == 0) return;
    report(code_[name_tok], "shared-state",
           "mutable namespace-scope variable '" + code_[name_tok].text +
               "': cross-shard data race and determinism hazard; make it "
               "const/constexpr or move it into the owning component");
  }

  // ---- C4: scoped locking ----

  void rule_scoped_lock() {
    if (env_.mutexes.empty()) return;
    for (std::size_t i = 0; i + 3 < code_.size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != Tok::kIdent || !env_.mutexes.count(t.text)) continue;
      if (!(tok(i + 1).punct(".") || tok(i + 1).punct("->"))) continue;
      const Token& member = tok(i + 2);
      if (!(member.ident("lock") || member.ident("unlock"))) continue;
      if (!tok(i + 3).punct("(")) continue;
      report(t, "scoped-lock",
             "manual ." + member.text + "() on mutex '" + t.text +
                 "'; use std::lock_guard/std::scoped_lock so the unlock is "
                 "scoped and exception-safe");
    }
  }

  // ---- D1: unordered iteration ----

  bool in_unordered_env(std::size_t begin, std::size_t end) const {
    bool unordered = false;
    for (std::size_t i = begin; i < end; ++i) {
      if (code_[i].kind != Tok::kIdent) continue;
      if (kSortedDrains.count(code_[i].text)) return false;
      if (env_.unordered.count(code_[i].text)) unordered = true;
    }
    return unordered;
  }

  /// Index one past the matching close for the open paren/brace at `open`.
  std::size_t match(std::size_t open) const {
    std::string_view o = code_[open].text;
    std::string_view c = o == "(" ? ")" : o == "{" ? "}" : "]";
    int depth = 0;
    for (std::size_t i = open; i < code_.size(); ++i) {
      if (code_[i].kind != Tok::kPunct) continue;
      if (code_[i].text == o) ++depth;
      if (code_[i].text == c && --depth == 0) return i + 1;
    }
    return code_.size();
  }

  void rule_unordered_iter() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != Tok::kIdent) continue;

      // x.begin() / x.cbegin() on an unordered container: hands hash order
      // to whatever consumes the iterators. A name preceded by . or -> is
      // a member of some other object, not the tracked variable.
      if (i > 0 && (tok(i - 1).punct(".") || tok(i - 1).punct("->")))
        continue;
      if (env_.unordered.count(t.text) && have(i + 3) &&
          (tok(i + 1).punct(".") || tok(i + 1).punct("->")) &&
          (tok(i + 2).ident("begin") || tok(i + 2).ident("cbegin") ||
           tok(i + 2).ident("rbegin")) &&
          tok(i + 3).punct("(")) {
        report(t, "unordered-iter",
               "iterators over unordered '" + t.text +
                   "' expose hash order; drain via util::sorted_items()/"
                   "sorted_ptrs() or annotate with a reason");
        continue;
      }

      // Range-for over an unordered container.
      if (!t.ident("for") || !have(i + 1) || !tok(i + 1).punct("(")) continue;
      std::size_t close = match(i + 1) - 1;
      if (close >= code_.size()) continue;
      // Find the range-for ':' at paren depth 1.
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        const Token& u = tok(j);
        if (u.kind != Tok::kPunct) continue;
        if (u.text == "(" || u.text == "[" || u.text == "{") ++depth;
        if (u.text == ")" || u.text == "]" || u.text == "}") --depth;
        if (u.text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (!colon) continue;
      if (!in_unordered_env(colon + 1, close)) continue;

      // Body: next statement or block after the ')'.
      std::size_t body_begin = close + 1;
      std::size_t body_end;
      if (have(body_begin) && tok(body_begin).punct("{")) {
        body_end = match(body_begin);
      } else {
        body_end = body_begin;
        int d = 0;
        while (body_end < code_.size()) {
          const Token& u = tok(body_end);
          if (u.kind == Tok::kPunct) {
            if (u.text == "(" || u.text == "[" || u.text == "{") ++d;
            if (u.text == ")" || u.text == "]" || u.text == "}") --d;
            if (u.text == ";" && d == 0) {
              ++body_end;
              break;
            }
          }
          ++body_end;
        }
      }
      if (!body_commutative(body_begin, body_end))
        report(t, "unordered-iter",
               "range-for over an unordered container with an "
               "order-sensitive body; drain via util::sorted_items()/"
               "sorted_ptrs(), use std::map, or annotate with a reason");
    }
  }

  /// Conservative commutativity check over a loop body: every effect must
  /// be insensitive to visitation order (counting, summing, min/max
  /// folding, set-semantics insertion). Anything unrecognised fails.
  bool body_commutative(std::size_t begin, std::size_t end) const {
    bool stmt_start = true;
    bool stmt_is_decl = false;         // statement began with auto/const
    std::vector<std::string> lhs;      // tokens before '=' in this stmt
    bool capturing_lhs = true;
    std::size_t for_header_end = 0;    // '=' exemption inside for(;;)

    for (std::size_t i = begin; i < end; ++i) {
      const Token& t = code_[i];
      if (t.kind == Tok::kPunct &&
          (t.text == ";" || t.text == "{" || t.text == "}")) {
        stmt_start = true;
        stmt_is_decl = false;
        lhs.clear();
        capturing_lhs = true;
        continue;
      }

      if (t.kind == Tok::kIdent) {
        if (stmt_start && (t.text == "auto" || t.text == "const"))
          stmt_is_decl = true;
        stmt_start = false;

        // Structural keywords.
        if (t.text == "if" || t.text == "else" || t.text == "continue") {
          lhs.clear();
          capturing_lhs = true;
          continue;
        }
        if (t.text == "for") {
          // Classic-for headers may assign their induction variable; nested
          // range-fors over unordered containers are reported separately.
          if (i + 1 < end && code_[i + 1].punct("("))
            for_header_end = match(i + 1);
          lhs.clear();
          capturing_lhs = true;
          continue;
        }
        if (t.text == "return" || t.text == "break" || t.text == "goto" ||
            t.text == "throw" || t.text == "co_return" ||
            t.text == "co_yield")
          return false;

        // Calls.
        if (i + 1 < end && code_[i + 1].punct("(")) {
          if (!kCommutativeCalls.count(t.text) && !type_like(t.text))
            return false;
          if (kSequenceBases.count(t.text)) return false;
          // insert/emplace into a sequence is order-sensitive.
          if ((t.text == "insert" || t.text == "emplace") && i >= 2 &&
              (code_[i - 1].punct(".") || code_[i - 1].punct("->")) &&
              code_[i - 2].kind == Tok::kIdent &&
              env_.sequences.count(code_[i - 2].text))
            return false;
          continue;
        }
        if (kCasts.count(t.text)) continue;
        if (capturing_lhs) lhs.push_back(t.text);
        continue;
      }

      if (t.kind == Tok::kString || t.kind == Tok::kChar ||
          t.kind == Tok::kNumber) {
        stmt_start = false;
        if (capturing_lhs && t.kind == Tok::kNumber) lhs.push_back(t.text);
        continue;
      }

      // Punctuation.
      stmt_start = false;
      const std::string& p = t.text;
      if (p == "<<" || p == ">>") return false;  // streaming / shifts
      if (p == "<<=" || p == ">>=") return false;
      if (p == "[") {
        // Subscript after a value is fine; anything else is a lambda.
        if (i == begin || !(code_[i - 1].kind == Tok::kIdent ||
                            code_[i - 1].punct(")") ||
                            code_[i - 1].punct("]")))
          return false;
        if (capturing_lhs) lhs.push_back(p);
        continue;
      }
      if (p == "+=" || p == "-=" || p == "|=" || p == "&=" || p == "^=") {
        // Compound adds commute — unless the target is a string.
        if (!lhs.empty() && env_.strings.count(lhs.front())) return false;
        // String-literal append.
        for (std::size_t j = i + 1; j < end; ++j) {
          if (code_[j].punct(";")) break;
          if (code_[j].kind == Tok::kString) return false;
        }
        capturing_lhs = false;
        continue;
      }
      if (p == "=") {
        if (i < for_header_end) continue;
        if (stmt_is_decl) {
          capturing_lhs = false;
          continue;
        }
        // x = std::max(x, ...) / x = std::min(x, ...) folding.
        std::size_t j = i + 1;
        if (j < end && code_[j].ident("std")) j += 2;  // std ::
        if (!(j < end &&
              (code_[j].ident("max") || code_[j].ident("min")) &&
              j + 1 < end && code_[j + 1].punct("(")))
          return false;
        std::size_t k = j + 2;
        for (const std::string& part : lhs) {
          // Compare ignoring access punctuation.
          while (k < end && code_[k].kind == Tok::kPunct &&
                 (code_[k].text == "." || code_[k].text == "->" ||
                  code_[k].text == "[" || code_[k].text == "]"))
            ++k;
          if (k >= end || code_[k].text != part) return false;
          ++k;
        }
        capturing_lhs = false;
        continue;
      }
      if (p == "++" || p == "--") continue;
      if (p == "." || p == "->" || p == "]") {
        continue;  // member access chains stay in lhs via idents
      }
      if (p == "(" || p == ")" || p == "," || p == "<" || p == ">" ||
          p == "<=" || p == ">=" || p == "==" || p == "!=" || p == "&&" ||
          p == "||" || p == "!" || p == "+" || p == "-" || p == "*" ||
          p == "/" || p == "%" || p == "&" || p == "?" || p == ":" ||
          p == "::" || p == "~" || p == "^" || p == "|")
        continue;
      return false;  // anything unrecognised
    }
    return true;
  }

  std::string path_;
  Options options_;
  DeclEnv env_;
  std::vector<Token> code_;
  std::vector<Token> comments_;
  std::vector<Pragma> pragmas_;
  std::vector<Finding> raw_;       // pre-suppression
  std::vector<Finding> findings_;  // final
};

// ---------------------------------------- compilation database parsing

std::size_t skip_json_ws(std::string_view s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Parse the JSON string starting at s[i] == '"'; appends the unescaped
/// value to `out` and returns one past the closing quote.
std::size_t parse_json_string(std::string_view s, std::size_t i,
                              std::string& out) {
  ++i;
  while (i < s.size() && s[i] != '"') {
    char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      char e = s[++i];
      switch (e) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: out += e; break;  // \" \\ \/ and anything exotic
      }
    } else {
      out += c;
    }
    ++i;
  }
  return i < s.size() ? i + 1 : i;
}

/// Skip any JSON value starting at s[i] (nested containers included).
std::size_t skip_json_value(std::string_view s, std::size_t i) {
  i = skip_json_ws(s, i);
  if (i >= s.size()) return i;
  if (s[i] == '"') {
    std::string sink;
    return parse_json_string(s, i, sink);
  }
  if (s[i] == '[' || s[i] == '{') {
    int depth = 0;
    while (i < s.size()) {
      char c = s[i];
      if (c == '"') {
        std::string sink;
        i = parse_json_string(s, i, sink);
        continue;
      }
      if (c == '[' || c == '{') ++depth;
      if ((c == ']' || c == '}') && --depth == 0) return i + 1;
      ++i;
    }
    return i;
  }
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']') ++i;
  return i;
}

/// -I / -isystem extraction, both joined ("-Ifoo") and split ("-I foo").
void collect_include_args(const std::vector<std::string>& args,
                          std::vector<std::string>& out) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    for (std::string_view flag : {std::string_view("-I"),
                                  std::string_view("-isystem")}) {
      if (a.compare(0, flag.size(), flag) != 0) continue;
      if (a.size() > flag.size()) {
        out.push_back(a.substr(flag.size()));
      } else if (i + 1 < args.size()) {
        out.push_back(args[++i]);
      }
      break;
    }
  }
}

}  // namespace

std::vector<CompileCommand> parse_compile_commands(std::string_view json) {
  std::vector<CompileCommand> out;
  std::size_t i = skip_json_ws(json, 0);
  if (i >= json.size() || json[i] != '[') return out;
  ++i;
  while (true) {
    i = skip_json_ws(json, i);
    if (i >= json.size() || json[i] == ']') break;
    if (json[i] == ',') {
      ++i;
      continue;
    }
    if (json[i] != '{') {
      i = skip_json_value(json, i);
      continue;
    }
    ++i;  // into the entry object
    CompileCommand cmd;
    std::vector<std::string> args;
    while (true) {
      i = skip_json_ws(json, i);
      if (i >= json.size() || json[i] == '}') {
        if (i < json.size()) ++i;
        break;
      }
      if (json[i] == ',') {
        ++i;
        continue;
      }
      if (json[i] != '"') {
        i = skip_json_value(json, i);
        continue;
      }
      std::string key;
      i = parse_json_string(json, i, key);
      i = skip_json_ws(json, i);
      if (i >= json.size() || json[i] != ':') continue;
      i = skip_json_ws(json, i + 1);
      if (i >= json.size()) break;
      if (json[i] == '"') {
        std::string value;
        i = parse_json_string(json, i, value);
        if (key == "file") {
          cmd.file = std::move(value);
        } else if (key == "directory") {
          cmd.directory = std::move(value);
        } else if (key == "command") {
          // Whitespace-split is enough for include extraction; quoted
          // paths with spaces are out of scope for this minimal parser.
          std::istringstream split(value);
          std::string word;
          while (split >> word) args.push_back(word);
        }
      } else if (json[i] == '[' && key == "arguments") {
        ++i;
        while (true) {
          i = skip_json_ws(json, i);
          if (i >= json.size() || json[i] == ']') {
            if (i < json.size()) ++i;
            break;
          }
          if (json[i] == ',') {
            ++i;
            continue;
          }
          if (json[i] == '"') {
            std::string arg;
            i = parse_json_string(json, i, arg);
            args.push_back(std::move(arg));
          } else {
            i = skip_json_value(json, i);
          }
        }
      } else {
        i = skip_json_value(json, i);
      }
    }
    collect_include_args(args, cmd.includes);
    if (!cmd.file.empty()) out.push_back(std::move(cmd));
  }
  return out;
}

std::vector<std::string> quoted_includes(std::string_view source) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    std::size_t i = 0;
    auto ws = [&] {
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    };
    ws();
    if (i < line.size() && line[i] == '#') {
      ++i;
      ws();
      if (line.compare(i, 7, "include") == 0) {
        i += 7;
        ws();
        if (i < line.size() && line[i] == '"') {
          std::size_t close = line.find('"', i + 1);
          if (close != std::string_view::npos && close > i + 1)
            out.emplace_back(line.substr(i + 1, close - i - 1));
        }
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return out;
}

bool known_rule(std::string_view rule) {
  for (std::string_view r : kRules)
    if (r == rule) return true;
  return false;
}

std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view source,
                                 std::string_view paired_header,
                                 const Options& options) {
  return Linter(path, source, paired_header, options).run();
}

std::string format_finding(const Finding& f) {
  std::ostringstream out;
  out << f.file << ":" << f.line << ":" << f.col << ": [" << f.rule << "] "
      << f.message;
  return out.str();
}

std::string format_finding_json(const Finding& f) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::ostringstream out;
  out << "{\"file\":\"" << escape(f.file) << "\",\"line\":" << f.line
      << ",\"col\":" << f.col << ",\"rule\":\"" << escape(f.rule)
      << "\",\"message\":\"" << escape(f.message) << "\"}";
  return out.str();
}

}  // namespace ttslint
