#include "net/address_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/serialize.hpp"

namespace tts::net {

namespace {

/// Positional insert with tight (9/8) geometric growth instead of vector's
/// 2x: the store's bytes/address figure counts capacities, and doubling
/// would waste up to half of it. The extra reallocation every ~8 growth
/// steps is amortized noise next to the positional move the sorted insert
/// already pays.
template <typename T>
void insert_tight(std::vector<T>& v, std::size_t pos, T value) {
  if (v.size() < v.capacity()) {
    v.insert(v.begin() + static_cast<std::ptrdiff_t>(pos), value);
    return;
  }
  std::vector<T> grown;
  grown.reserve(v.size() + v.size() / 8 + 8);
  grown.insert(grown.end(), v.begin(),
               v.begin() + static_cast<std::ptrdiff_t>(pos));
  grown.push_back(value);
  grown.insert(grown.end(), v.begin() + static_cast<std::ptrdiff_t>(pos),
               v.end());
  v = std::move(grown);
}

std::uint32_t block_of(const Ipv6Address& addr) {
  return static_cast<std::uint32_t>(addr.hi64() >> 32);
}
std::uint32_t rem_of(const Ipv6Address& addr) {
  return static_cast<std::uint32_t>(addr.hi64());
}

}  // namespace

AddressStore::Bucket* AddressStore::find_bucket(std::uint32_t block) {
  auto it = std::lower_bound(index_.begin(), index_.end(), block,
                             [this](std::uint32_t id, std::uint32_t key) {
                               return buckets_[id].block < key;
                             });
  insert_pos_ = static_cast<std::size_t>(it - index_.begin());
  if (it != index_.end() && buckets_[*it].block == block)
    return &buckets_[*it];
  return nullptr;
}

const AddressStore::Bucket* AddressStore::find_bucket(
    std::uint32_t block) const {
  auto it = std::lower_bound(index_.begin(), index_.end(), block,
                             [this](std::uint32_t id, std::uint32_t key) {
                               return buckets_[id].block < key;
                             });
  if (it != index_.end() && buckets_[*it].block == block)
    return &buckets_[*it];
  return nullptr;
}

AddressStore::Bucket& AddressStore::bucket_for(std::uint32_t block) {
  if (Bucket* b = find_bucket(block)) return *b;
  auto id = static_cast<std::uint32_t>(buckets_.size());
  buckets_.emplace_back();
  buckets_.back().block = block;
  index_.insert(index_.begin() + static_cast<std::ptrdiff_t>(insert_pos_),
                id);
  return buckets_.back();
}

AddressStore::Inserted AddressStore::insert_into(Bucket& b, std::uint32_t rem,
                                                 std::uint64_t iid) {
  // Lower bound over the parallel (rem, iid) arrays, lexicographic.
  std::size_t lo = 0, hi = b.rems.size();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (b.rems[mid] < rem || (b.rems[mid] == rem && b.iids[mid] < iid))
      lo = mid + 1;
    else
      hi = mid;
  }
  std::size_t n = b.rems.size();
  if (lo < n && b.rems[lo] == rem && b.iids[lo] == iid)
    return {b.seqs[lo], false};
  if (size_ >= static_cast<std::size_t>(kNoSeq))
    throw std::length_error("AddressStore: 2^32-1 address cap reached");
  // Equal rems are contiguous, so the /64 is new iff neither neighbour of
  // the insertion point shares it.
  bool fresh64 = !(lo > 0 && b.rems[lo - 1] == rem) &&
                 !(lo < n && b.rems[lo] == rem);
  auto seq = static_cast<Seq>(size_++);
  if (fresh64) ++prefix_count_;
  insert_tight(b.rems, lo, rem);
  insert_tight(b.iids, lo, iid);
  insert_tight(b.seqs, lo, seq);
  return {seq, true};
}

AddressStore::Inserted AddressStore::insert(const Ipv6Address& addr) {
  return insert_into(bucket_for(block_of(addr)), rem_of(addr), addr.lo64());
}

std::size_t AddressStore::insert_batch(std::span<const Ipv6Address> batch,
                                       std::vector<Ipv6Address>* fresh) {
  std::size_t added = 0;
  Bucket* cached = nullptr;
  std::uint32_t cached_block = 0;
  for (const auto& addr : batch) {
    // Collected batches run in bursts from one network (one device's
    // temporary addresses, one sweep chunk): reuse the last bucket across
    // the run instead of re-searching the index. Bucket creation may
    // reallocate buckets_, so re-find after a cache miss.
    std::uint32_t block = block_of(addr);
    Bucket* b;
    if (cached && cached_block == block) {
      b = cached;
    } else {
      b = &bucket_for(block);
      cached = b;
      cached_block = block;
    }
    Inserted r = insert_into(*b, rem_of(addr), addr.lo64());
    if (r.fresh) {
      ++added;
      if (fresh) fresh->push_back(addr);
    }
  }
  return added;
}

AddressStore::Seq AddressStore::seq_of(const Ipv6Address& addr) const {
  const Bucket* b = find_bucket(block_of(addr));
  if (!b) return kNoSeq;
  std::uint32_t rem = rem_of(addr);
  std::uint64_t iid = addr.lo64();
  std::size_t lo = 0, hi = b->rems.size();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (b->rems[mid] < rem || (b->rems[mid] == rem && b->iids[mid] < iid))
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo < b->rems.size() && b->rems[lo] == rem && b->iids[lo] == iid)
    return b->seqs[lo];
  return kNoSeq;
}

std::vector<Ipv6Address> AddressStore::snapshot() const {
  // Sequence numbers are a dense permutation of 0..size-1: scatter each
  // address straight into its first-seen slot.
  std::vector<Ipv6Address> out(size_);
  for (const Bucket& b : buckets_) {
    std::uint64_t block_hi = static_cast<std::uint64_t>(b.block) << 32;
    for (std::size_t i = 0; i < b.iids.size(); ++i)
      out[b.seqs[i]] =
          Ipv6Address::from_halves(block_hi | b.rems[i], b.iids[i]);
  }
  return out;
}

std::size_t AddressStore::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += buckets_.capacity() * sizeof(Bucket);
  bytes += index_.capacity() * sizeof(std::uint32_t);
  for (const Bucket& b : buckets_) {
    bytes += b.rems.capacity() * sizeof(std::uint32_t);
    bytes += b.iids.capacity() * sizeof(std::uint64_t);
    bytes += b.seqs.capacity() * sizeof(Seq);
  }
  return bytes;
}

void AddressStore::save(util::ByteWriter& w) const {
  w.u64(size_);
  w.u64(buckets_.size());
  // Creation order, so load() rebuilds byte-identical state (index_ and
  // prefix_count_ are derived). Per bucket: block, count, then the
  // rem/iid/seq columns.
  for (const Bucket& b : buckets_) {
    w.u32(b.block);
    w.u64(b.rems.size());
    for (std::uint32_t rem : b.rems) w.u32(rem);
    for (std::uint64_t iid : b.iids) w.u64(iid);
    for (Seq s : b.seqs) w.u32(s);
  }
}

AddressStore AddressStore::load(util::ByteReader& r) {
  AddressStore store;
  std::uint64_t total = r.u64();
  std::uint64_t nbuckets = r.u64();
  store.buckets_.reserve(nbuckets);
  for (std::uint64_t i = 0; i < nbuckets; ++i) {
    Bucket b;
    b.block = r.u32();
    std::uint64_t n = r.u64();
    b.rems.reserve(n);
    b.iids.reserve(n);
    b.seqs.reserve(n);
    for (std::uint64_t j = 0; j < n; ++j) b.rems.push_back(r.u32());
    for (std::uint64_t j = 0; j < n; ++j) b.iids.push_back(r.u64());
    for (std::uint64_t j = 0; j < n; ++j) b.seqs.push_back(r.u32());
    for (std::uint64_t j = 0; j < n; ++j) {
      if (j > 0 && (b.rems[j - 1] > b.rems[j] ||
                    (b.rems[j - 1] == b.rems[j] && b.iids[j - 1] >= b.iids[j])))
        throw util::SerializeError(
            "AddressStore: bucket entries not sorted by (rem, iid)");
      if (j == 0 || b.rems[j - 1] != b.rems[j]) ++store.prefix_count_;
    }
    store.size_ += n;
    store.buckets_.push_back(std::move(b));
  }
  if (store.size_ != total)
    throw util::SerializeError("AddressStore: size mismatch in snapshot");
  store.index_.resize(store.buckets_.size());
  for (std::uint32_t i = 0; i < store.index_.size(); ++i) store.index_[i] = i;
  std::sort(store.index_.begin(), store.index_.end(),
            [&store](std::uint32_t a, std::uint32_t b) {
              return store.buckets_[a].block < store.buckets_[b].block;
            });
  return store;
}

}  // namespace tts::net
