// Microbenchmarks for the hot primitives: address codec, LPM trie, NTP and
// CoAP wire codecs, Levenshtein grouping, RNG, and the event queue.
#include <benchmark/benchmark.h>

#include "net/ipv6.hpp"
#include "net/routing_table.hpp"
#include "ntp/ntp_packet.hpp"
#include "proto/coap.hpp"
#include "proto/mqtt.hpp"
#include "simnet/event_queue.hpp"
#include "util/levenshtein.hpp"
#include "util/rng.hpp"

using namespace tts;

static void BM_Ipv6Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto a = net::Ipv6Address::parse("2001:db8:1234:5678::9abc:def0");
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Ipv6Parse);

static void BM_Ipv6Format(benchmark::State& state) {
  auto a = *net::Ipv6Address::parse("2400:cb00:2048:1::6814:55");
  for (auto _ : state) {
    auto s = a.to_string();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Ipv6Format);

static void BM_RoutingLookup(benchmark::State& state) {
  net::RoutingTable table;
  util::Rng rng(1);
  std::vector<net::Ipv6Address> probes;
  for (int i = 0; i < 1000; ++i) {
    auto addr = net::Ipv6Address::from_halves(
        0x2400000000000000ULL | (rng.next() >> 12), rng.next());
    table.announce(net::Ipv6Prefix(addr, 32 + i % 33), 64500u + i);
    probes.push_back(addr);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto r = table.lookup(probes[i++ % probes.size()]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RoutingLookup);

static void BM_NtpRoundTrip(benchmark::State& state) {
  auto request = ntp::NtpPacket::client_request(simnet::sec(100));
  for (auto _ : state) {
    auto wire = request.serialize();
    auto parsed = ntp::NtpPacket::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_NtpRoundTrip);

static void BM_CoapRoundTrip(benchmark::State& state) {
  auto request = proto::CoapMessage::well_known_core(42, 0x1234);
  for (auto _ : state) {
    auto wire = request.serialize();
    auto parsed = proto::CoapMessage::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_CoapRoundTrip);

static void BM_MqttConnectRoundTrip(benchmark::State& state) {
  proto::MqttConnect connect;
  for (auto _ : state) {
    auto wire = connect.serialize();
    auto parsed = proto::MqttConnect::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_MqttConnectRoundTrip);

static void BM_LevenshteinBounded(benchmark::State& state) {
  std::string a = "3CX Phone System Management Console";
  std::string b = "3CX Webclient Management Console v18";
  for (auto _ : state) {
    auto d = util::levenshtein_bounded(a, b, a.size() / 4);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_LevenshteinBounded);

static void BM_RngStream(benchmark::State& state) {
  util::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngStream);

static void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    simnet::EventQueue queue;
    int counter = 0;
    for (int i = 0; i < 1000; ++i)
      queue.schedule_at(simnet::msec(i % 37), [&counter] { ++counter; });
    queue.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_EventQueueChurn);

BENCHMARK_MAIN();
