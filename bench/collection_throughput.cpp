// Collection data-plane bench: memory per collected address and ingest
// throughput of the /64-keyed net::AddressStore behind the collector's
// seen-store, against the legacy layout it replaced (unordered_set node
// per address plus a first-seen order vector).
//
// The perf-smoke lane compares the emitted sample against the committed
// BENCH_collection_throughput.json; store_bytes_per_address,
// legacy_bytes_per_address and compaction_ratio are sim-deterministic
// (capacities are a pure function of the insert sequence), the
// *_per_sec_wall rates are machine-dependent.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <unordered_set>
#include <vector>

#include "common.hpp"
#include "core/study.hpp"
#include "net/address_store.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace tts;

namespace {

/// Heap + object footprint of the legacy seen-store, measured on the real
/// containers: a libstdc++ unordered_set node carries a next pointer and
/// the cached hash around the 16-byte address, the allocator adds a
/// 16-byte header per node, the table itself is one pointer per bucket,
/// and the first-seen order vector holds a second copy of every address.
std::size_t legacy_bytes(
    const std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash>& seen,
    const std::vector<net::Ipv6Address>& order) {
  constexpr std::size_t kNode = 8 /*next*/ + sizeof(net::Ipv6Address) +
                                8 /*cached hash*/;
  constexpr std::size_t kMallocHeader = 16;
  return seen.size() * (kNode + kMallocHeader) +
         seen.bucket_count() * sizeof(void*) +
         order.capacity() * sizeof(net::Ipv6Address) +
         sizeof(seen) + sizeof(order);
}

void emit_sample(
    const std::vector<std::pair<std::string, std::string>>& metrics) {
  const char* path = std::getenv("TTS_BENCH_JSON");
  if (!path || !*path) return;
  std::ofstream out(path);
  out << "{\n  \"schema\": 1,\n  \"name\": \"collection_throughput\",\n"
      << "  \"scale\": \"tiny\",\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i)
    out << "    \"" << metrics[i].first << "\": " << metrics[i].second
        << (i + 1 < metrics.size() ? ",\n" : "\n");
  out << "  }\n}\n";
  std::cerr << "[bench] wrote perf sample " << path
            << " (collection_throughput)\n";
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

int main() {
  // Collection-only kTiny study: same shape as the sec3 timeline lane, so
  // the address stream has the realistic /64 clustering (privacy-extension
  // IID churn inside stable delegations) the store exploits.
  auto config = core::make_study_config(core::StudyScale::kTiny);
  config.runtime.duration = simnet::days(14);
  config.hitlist_scan_start = simnet::days(12);
  config.enable_hitlist_scan = false;
  config.enable_telescope = false;
  config.enable_actors = false;
  core::Study study(config);
  std::int64_t t0 = bench::bench_wall_ns();
  study.run();

  const net::AddressStore& store = study.collector().addresses();
  std::vector<net::Ipv6Address> stream = store.snapshot();
  std::size_t n = stream.size();

  // Legacy layout, actually constructed from the same stream (bucket count
  // and vector capacity measured, not assumed).
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> legacy_seen;
  std::vector<net::Ipv6Address> legacy_order;
  for (const auto& a : stream)
    if (legacy_seen.insert(a).second) legacy_order.push_back(a);

  double store_bpa = static_cast<double>(store.memory_bytes()) /
                     static_cast<double>(n);
  double legacy_bpa =
      static_cast<double>(legacy_bytes(legacy_seen, legacy_order)) /
      static_cast<double>(n);
  double ratio = legacy_bpa / store_bpa;

  // Ingest throughput: replay the stream into a fresh store in
  // collector-sized batches (the record_batch path), then a full
  // membership sweep (the dedup-hit path).
  constexpr std::size_t kBatch = 64;
  net::AddressStore replay;
  std::int64_t t_insert = bench::bench_wall_ns();
  for (std::size_t pos = 0; pos < n; pos += kBatch)
    replay.insert_batch(std::span<const net::Ipv6Address>(
        stream.data() + pos, std::min(kBatch, n - pos)));
  double insert_s =
      static_cast<double>(bench::bench_wall_ns() - t_insert) / 1e9;
  std::int64_t t_lookup = bench::bench_wall_ns();
  std::size_t hits = 0;
  for (const auto& a : stream) hits += replay.contains(a);
  double lookup_s =
      static_cast<double>(bench::bench_wall_ns() - t_lookup) / 1e9;
  double wall_seconds =
      static_cast<double>(bench::bench_wall_ns() - t0) / 1e9;

  util::TextTable t("Collection data plane: seen-store footprint");
  t.set_header({"metric", "value"});
  t.add_row({"addresses collected", util::grouped(std::uint64_t{n})});
  t.add_row({"distinct /64 prefixes",
             util::grouped(std::uint64_t{store.prefix_count()})});
  t.add_row({"store bytes/address", fmt(store_bpa)});
  t.add_row({"legacy bytes/address", fmt(legacy_bpa)});
  t.add_row({"compaction ratio", fmt(ratio)});
  t.add_row({"insert rate (addr/s)",
             insert_s > 0 ? fmt(static_cast<double>(n) / insert_s) : "-"});
  t.add_row({"lookup rate (addr/s)",
             lookup_s > 0 ? fmt(static_cast<double>(n) / lookup_s) : "-"});
  t.render(std::cout);

  std::vector<std::pair<std::string, std::string>> metrics;
  metrics.emplace_back("addresses_collected", std::to_string(n));
  metrics.emplace_back("store_prefixes",
                       std::to_string(store.prefix_count()));
  metrics.emplace_back("store_bytes_per_address", fmt(store_bpa));
  metrics.emplace_back("legacy_bytes_per_address", fmt(legacy_bpa));
  metrics.emplace_back("compaction_ratio", fmt(ratio));
  metrics.emplace_back("wall_seconds", fmt(wall_seconds));
  if (insert_s > 0)
    metrics.emplace_back("insert_addresses_per_sec_wall",
                         fmt(static_cast<double>(n) / insert_s));
  if (lookup_s > 0)
    metrics.emplace_back("lookup_addresses_per_sec_wall",
                         fmt(static_cast<double>(n) / lookup_s));
  metrics.emplace_back("rss_peak_kb",
                       std::to_string(bench::bench_rss_peak_kb()));
  emit_sample(metrics);

  // The acceptance bar this bench exists to hold: the compact store is at
  // least 4x smaller per address than the legacy layout at kTiny scale,
  // and every replayed address was found again.
  bool pass = n > 1000 && hits == n && ratio >= 4.0;
  std::cout << "\nFootprint check (compaction ratio >= 4x, all " << n
            << " addresses found on replay): " << (pass ? "PASS" : "FAIL")
            << "\n";
  return pass ? 0 : 1;
}
