#include "hitlist/ntp_tga.hpp"

#include <algorithm>
#include <unordered_map>

#include "net/mac.hpp"
#include "util/ordered.hpp"

namespace tts::hitlist {

void NtpSeededTga::train(std::span<const net::Ipv6Address> observed) {
  hot48_.clear();
  mix_eui64_ = mix_random_ = mix_low_ = 0;

  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  for (const auto& addr : observed) {
    ++counts[addr.hi64() & ~0xffffULL];
    std::uint64_t iid = addr.iid();
    if (net::iid_looks_like_eui64(iid))
      ++mix_eui64_;
    else if (iid < 0x10000)
      ++mix_low_;
    else
      ++mix_random_;
  }
  hot48_.reserve(counts.size());
  for (const auto& [hi48, weight] : util::sorted_items(counts))
    hot48_.push_back(Hot48{hi48, weight});
  std::sort(hot48_.begin(), hot48_.end(),
            [](const Hot48& a, const Hot48& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.hi48 < b.hi48;
            });
}

std::vector<net::Ipv6Address> NtpSeededTga::generate(
    const NtpTgaConfig& config) const {
  std::vector<net::Ipv6Address> out;
  util::Rng rng(config.seed);

  std::vector<double> weights;
  std::vector<const Hot48*> eligible;
  for (const auto& h : hot48_) {
    if (h.weight < config.min_sightings_per_48) continue;
    eligible.push_back(&h);
    weights.push_back(static_cast<double>(h.weight));
  }
  if (eligible.empty()) return out;

  std::uint64_t total_mix = mix_eui64_ + mix_random_ + mix_low_;
  out.reserve(config.candidates);
  for (std::uint64_t i = 0; i < config.candidates; ++i) {
    const Hot48& h = *eligible[rng.pick_weighted(weights)];
    // Fresh /56 slot and /64 segment 0, matching the delegation layout the
    // sightings exhibit.
    std::uint64_t hi = h.hi48 | (rng.below(256) << 8);
    std::uint64_t iid;
    std::uint64_t dice = total_mix ? rng.below(total_mix) : 0;
    if (dice < mix_eui64_) {
      // EUI-64-shaped candidate with a plausible (random) MAC.
      iid = net::eui64_iid_from_mac(
          net::MacAddress::from_u64(rng.below(1ULL << 48)));
    } else if (dice < mix_eui64_ + mix_low_) {
      iid = 1 + rng.below(255);
    } else {
      iid = rng.next() | 0x100000ULL;
    }
    out.push_back(net::Ipv6Address::from_halves(hi, iid));
  }
  return out;
}

}  // namespace tts::hitlist
