// Hitlist assembly: combine the source simulators, deduplicate, and derive
// the "public" (responsive-only) variant — mirroring the TUM IPv6 Hitlist's
// full and public lists compared in Table 1.
//
// Dedup runs through the compact net::AddressStore; its dense
// first-seen sequence numbers index the parallel `sources` vector, which
// replaces the old per-address provenance hash map (one byte per address
// instead of a 16-byte key plus node overhead).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hitlist/sources.hpp"
#include "inet/population.hpp"
#include "inet/services.hpp"
#include "net/address_store.hpp"

namespace tts::util {
class ByteWriter;
class ByteReader;
}  // namespace tts::util

namespace tts::hitlist {

struct Hitlist {
  /// Deduplicated full list (everything the sources produced), in
  /// first-contribution order; full[i] has sequence number i in `seen`.
  std::vector<net::Ipv6Address> full;
  /// Subset verified responsive at build time (ICMP/any-probe model):
  /// live service hosts, aliased-region addresses, and router interfaces.
  std::vector<net::Ipv6Address> public_list;
  /// Dedup store; seq_of(addr) indexes `sources` (and `full`).
  net::AddressStore seen;
  /// Provenance: sources[seen.seq_of(addr)] is the first source that
  /// contributed the address.
  std::vector<Source> sources;

  bool contains(const net::Ipv6Address& addr) const {
    return seen.contains(addr);
  }
  /// First source that contributed `addr` (nullopt when not listed).
  std::optional<Source> source_of(const net::Ipv6Address& addr) const;

  /// Ordered by source id so direct iteration renders deterministically.
  std::map<Source, std::uint64_t> counts_by_source() const;

  void save_state(util::ByteWriter& w) const;
  static Hitlist decode_state(util::ByteReader& r);
};

/// One sourced address plus its responsiveness verdict, produced by a
/// per-AS build slice. Responsiveness is evaluated inside the slice (on
/// the AS's home domain, where its devices churn), so the merge never has
/// to look at live state.
struct PartialEntry {
  net::Ipv6Address addr;
  Source source = Source::kDns;
  bool responsive = false;
};

class HitlistBuilder {
 public:
  /// Build against the population *before* the runtime starts: addresses
  /// are the devices' initial ones, so entries for churning devices rot by
  /// the time the scan runs — the dynamic-address problem of Section 6.
  ///
  /// `runtime` is optional; when provided, responsiveness is evaluated
  /// against live ownership instead of initial addresses.
  static Hitlist build(const inet::Population& pop,
                       const inet::InternetRuntime* runtime,
                       const SourceConfig& config);

  /// Sharded build, step 1: everything AS `as_index` contributes — its
  /// DNS-listed devices, traceroute interfaces inside its prefixes, TGA
  /// extrapolations of its DNS seeds, and stale rotations of its devices.
  /// Draws come from a per-AS stream, so the result is independent of the
  /// shard count and of every other AS's slice. Every emitted address lies
  /// inside the AS's own prefixes, which keeps responsiveness lookups on
  /// the AS's home domain.
  static std::vector<PartialEntry> build_partial(
      const inet::Population& pop, const inet::InternetRuntime* runtime,
      const SourceConfig& config, std::size_t as_index);

  /// Sharded build, step 2 (one event on domain 0): deduplicate the
  /// slices in AS order, then sample the aliased region from its own
  /// stream. Slice order is fixed by as_index, so the merged list is
  /// bit-identical at every shard count.
  static Hitlist merge_partials(
      const inet::AsRegistry& registry, const SourceConfig& config,
      const std::vector<std::vector<PartialEntry>>& partials);
};

}  // namespace tts::hitlist
