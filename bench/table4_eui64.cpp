// Table 4 / Appendix B: EUI-64 analysis of the collected addresses —
// vendor ranking by recovered MACs, with the AVM dominance the paper found.
#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();
  const auto& acc = study.eui64();

  std::cout << "Appendix B headline numbers\n";
  std::cout << "===========================\n";
  std::cout << "addresses collected:        "
            << util::grouped(acc.total_addresses()) << "\n";
  std::cout << "with EUI-64 IIDs:           "
            << util::grouped(acc.eui64_addresses()) << "  [paper: 903 M of"
            << " 3 040 M]\n";
  std::cout << "distinct EUI-64 IIDs:       "
            << util::grouped(acc.distinct_eui64_iids())
            << "  [paper: 675 M]\n";
  std::cout << "with the unique bit set:    "
            << util::grouped(acc.unique_bit_addresses())
            << " IPs / " << util::grouped(acc.distinct_unique_macs())
            << " MACs  [paper: 20 M IPs / 9.2 M MACs]\n";
  std::cout << "OUI listed in IEEE registry:"
            << util::grouped(acc.listed_oui_addresses()) << " IPs / "
            << util::grouped(acc.distinct_listed_macs())
            << " MACs  [paper: 19 M IPs / 9.1 M MACs]\n\n";

  util::TextTable t("Table 4: vendors by recovered MAC addresses");
  t.set_header({"Manufacturer", "#MACs", "#IPs"});
  auto ranking = acc.vendor_ranking();
  std::size_t shown = 0;
  std::uint64_t avm_macs = 0, top_macs = 0;
  for (const auto& [vendor, counts] : ranking) {
    if (shown < 20)
      t.add_row({vendor, util::grouped(counts.first),
                 util::grouped(counts.second)});
    ++shown;
    if (vendor.find("AVM") != std::string::npos) avm_macs += counts.first;
    top_macs = std::max(top_macs, counts.first);
  }
  t.add_note("Paper: AVM tops the ranking with 6 008 344 MACs / "
             "14 751 238 IPs, followed by Amazon, Samsung, Sonos, vivo.");
  bench::print_scale_note(t);
  t.render(std::cout);

  bool avm_dominates =
      !ranking.empty() &&
      ranking.front().first.find("AVM") != std::string::npos;
  bool ips_at_least_macs = true;
  for (const auto& [vendor, counts] : ranking)
    if (counts.second < counts.first) ips_at_least_macs = false;
  std::cout << "\nShape check: AVM leads the vendor ranking: "
            << (avm_dominates ? "PASS" : "FAIL")
            << "; #IPs >= #MACs per vendor: "
            << (ips_at_least_macs ? "PASS" : "FAIL") << "\n";
  return (avm_dominates && ips_at_least_macs) ? 0 : 1;
}
