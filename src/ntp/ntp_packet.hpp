// RFC 5905 NTPv4 wire format (the 48-byte header used by mode-3 client
// requests and mode-4 server responses).
//
// Address sourcing rides entirely on genuine NTP traffic: simulated clients
// serialise real mode-3 packets, pool servers parse them, log the client
// address, and answer with well-formed mode-4 responses whose timestamps
// come from the simulation clock mapped into the NTP era-0 timescale.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "simnet/time.hpp"

namespace tts::ntp {

/// 64-bit NTP timestamp: 32 bits of seconds since 1900-01-01, 32 bits of
/// fractional seconds (RFC 5905 section 6).
struct NtpTimestamp {
  std::uint32_t seconds = 0;
  std::uint32_t fraction = 0;

  std::uint64_t to_u64() const {
    return (static_cast<std::uint64_t>(seconds) << 32) | fraction;
  }
  static NtpTimestamp from_u64(std::uint64_t v) {
    return {static_cast<std::uint32_t>(v >> 32),
            static_cast<std::uint32_t>(v)};
  }

  bool is_zero() const { return seconds == 0 && fraction == 0; }

  friend auto operator<=>(const NtpTimestamp&, const NtpTimestamp&) = default;
};

/// Offset between the NTP era-0 epoch (1900-01-01) and the Unix epoch.
inline constexpr std::uint64_t kNtpUnixOffset = 2208988800ULL;

/// The simulation epoch expressed as Unix seconds. The study's collection
/// window opens 2024-07-20 00:00:00 UTC (Section 3.1), so SimTime 0 maps
/// there by default.
inline constexpr std::uint64_t kDefaultSimEpochUnix = 1721433600ULL;

/// Map simulation time to an NTP timestamp and back.
NtpTimestamp to_ntp_time(simnet::SimTime t,
                         std::uint64_t sim_epoch_unix = kDefaultSimEpochUnix);
simnet::SimTime from_ntp_time(
    const NtpTimestamp& ts,
    std::uint64_t sim_epoch_unix = kDefaultSimEpochUnix);

enum class NtpMode : std::uint8_t {
  kReserved = 0,
  kSymmetricActive = 1,
  kSymmetricPassive = 2,
  kClient = 3,
  kServer = 4,
  kBroadcast = 5,
  kControl = 6,
  kPrivate = 7,
};

enum class LeapIndicator : std::uint8_t {
  kNoWarning = 0,
  kLastMinute61 = 1,
  kLastMinute59 = 2,
  kUnsynchronized = 3,
};

struct NtpPacket {
  LeapIndicator leap = LeapIndicator::kNoWarning;
  std::uint8_t version = 4;  // 3 bits, 1..7
  NtpMode mode = NtpMode::kClient;
  std::uint8_t stratum = 0;
  std::int8_t poll = 0;        // log2 seconds
  std::int8_t precision = 0;   // log2 seconds
  std::uint32_t root_delay = 0;       // 16.16 fixed-point seconds
  std::uint32_t root_dispersion = 0;  // 16.16 fixed-point seconds
  std::uint32_t reference_id = 0;
  NtpTimestamp reference_time;
  NtpTimestamp origin_time;    // T1 echoed back by the server
  NtpTimestamp receive_time;   // T2
  NtpTimestamp transmit_time;  // T3

  static constexpr std::size_t kWireSize = 48;

  std::vector<std::uint8_t> serialize() const;

  /// Strict parse of the 48-byte header. Extension fields/MACs after the
  /// header are tolerated and ignored (real pool traffic carries them).
  static std::optional<NtpPacket> parse(std::span<const std::uint8_t> wire);

  /// A well-formed client (mode 3) request transmitted at `t`.
  static NtpPacket client_request(simnet::SimTime t);

  /// A server (mode 4) response to `request`, with T2 = `received_at` and
  /// T3 = `transmitted_at`, advertised at `stratum`.
  static NtpPacket server_response(const NtpPacket& request,
                                   simnet::SimTime received_at,
                                   simnet::SimTime transmitted_at,
                                   std::uint8_t stratum,
                                   std::uint32_t reference_id);

  /// Sanity checks a client applies before trusting a response
  /// (RFC 5905 sanity tests subset: mode, stratum, origin echo).
  bool valid_response_to(const NtpPacket& request) const;
};

}  // namespace tts::ntp
