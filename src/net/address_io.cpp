#include "net/address_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tts::net {

std::vector<Ipv6Address> read_address_list(std::istream& in,
                                           AddressReadStats* stats) {
  std::vector<Ipv6Address> out;
  AddressReadStats local;
  std::string line;
  while (std::getline(in, line)) {
    // Trim whitespace and trailing comments.
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      ++local.skipped;
      continue;
    }
    std::size_t end = line.find_last_not_of(" \t\r");
    std::string_view token(line.data() + begin, end - begin + 1);
    if (auto addr = Ipv6Address::parse(token)) {
      out.push_back(*addr);
      ++local.parsed;
    } else {
      ++local.skipped;
    }
  }
  if (stats) *stats = local;
  return out;
}

void write_address_list(std::ostream& out,
                        std::span<const Ipv6Address> addresses) {
  for (const auto& a : addresses) out << a.to_string() << '\n';
}

std::vector<Ipv6Address> load_address_file(const std::string& path,
                                           AddressReadStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_address_list(in, stats);
}

void save_address_file(const std::string& path,
                       std::span<const Ipv6Address> addresses) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_address_list(out, addresses);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace tts::net
