#include "obs/export.hpp"

#include <algorithm>
#include <cctype>

#include "simnet/time.hpp"
#include "util/format.hpp"

namespace tts::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

std::string histogram_detail(const SnapshotValue& v) {
  if (v.count == 0) return "(empty)";
  // Percentiles off the bucket edges, same rule as Histogram::percentile.
  auto pct = [&](double p) -> std::int64_t {
    auto rank = static_cast<std::uint64_t>(p * static_cast<double>(v.count));
    if (rank == 0) rank = 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < v.bucket_counts.size(); ++i) {
      cum += v.bucket_counts[i];
      if (cum >= rank) return i < v.bounds.size() ? v.bounds[i] : v.max;
    }
    return v.max;
  };
  double mean =
      static_cast<double>(v.value) / static_cast<double>(v.count);
  return util::cat("mean=", util::fixed(mean, 1), " p50<=", pct(0.5),
                   " p95<=", pct(0.95), " max=", v.max);
}

// ------------------------------------------------- minimal JSON reading
// Just enough for what to_jsonl emits: flat objects with string keys,
// string / integer / string-map / integer-array values.

struct Cursor {
  const char* p;
  const char* end;
  bool ok = true;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
  }
  bool eat(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    ok = false;
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
};

std::string parse_string(Cursor& c) {
  std::string out;
  if (!c.eat('"')) return out;
  while (c.p < c.end && *c.p != '"') {
    if (*c.p == '\\' && c.p + 1 < c.end) ++c.p;
    out += *c.p++;
  }
  if (!c.eat('"')) c.ok = false;
  return out;
}

std::int64_t parse_int(Cursor& c) {
  c.skip_ws();
  bool neg = false;
  if (c.p < c.end && *c.p == '-') {
    neg = true;
    ++c.p;
  }
  if (c.p >= c.end || !std::isdigit(static_cast<unsigned char>(*c.p))) {
    c.ok = false;
    return 0;
  }
  std::int64_t v = 0;
  while (c.p < c.end && std::isdigit(static_cast<unsigned char>(*c.p)))
    v = v * 10 + (*c.p++ - '0');
  return neg ? -v : v;
}

Labels parse_labels(Cursor& c) {
  Labels out;
  if (!c.eat('{')) return out;
  if (c.peek('}')) {
    c.eat('}');
    return out;
  }
  do {
    std::string key = parse_string(c);
    if (!c.eat(':')) break;
    std::string value = parse_string(c);
    out.emplace_back(std::move(key), std::move(value));
  } while (c.ok && c.eat(','));
  c.ok = true;  // the failed ',' probe above is how the loop ends
  c.eat('}');
  return out;
}

template <typename T>
std::vector<T> parse_int_array(Cursor& c) {
  std::vector<T> out;
  if (!c.eat('[')) return out;
  if (c.peek(']')) {
    c.eat(']');
    return out;
  }
  do {
    out.push_back(static_cast<T>(parse_int(c)));
  } while (c.ok && c.eat(','));
  c.ok = true;
  c.eat(']');
  return out;
}

void add_value_row(util::TextTable& table, const SnapshotValue& v,
                   const std::string& extra_detail) {
  switch (v.kind) {
    case Kind::kCounter:
      table.add_row(
          {v.full_name(), "counter", util::grouped(v.count), extra_detail});
      break;
    case Kind::kGauge:
      table.add_row(
          {v.full_name(), "gauge", util::grouped(v.value), extra_detail});
      break;
    case Kind::kHistogram: {
      std::string detail = histogram_detail(v);
      if (!extra_detail.empty()) detail += util::cat("  ", extra_detail);
      table.add_row(
          {v.full_name(), "histogram", util::grouped(v.count), detail});
      break;
    }
  }
}

/// Ranking key for rollup: how "big" a series is.
std::uint64_t series_magnitude(const SnapshotValue& v) {
  if (v.kind == Kind::kGauge)
    return v.value < 0 ? 0 : static_cast<std::uint64_t>(v.value);
  return v.count;
}

/// One post-rollup output value. `folded` is how many series a synthetic
/// {series=other} aggregate absorbed (0 = the value passed through as-is).
struct RolledValue {
  SnapshotValue value;
  std::size_t folded = 0;
};

/// The shared rollup pass behind to_table/to_jsonl/to_prometheus: keep the
/// top_n largest members of each listed family, fold the rest into one
/// {series=other} aggregate.
std::vector<RolledValue> roll_values(const RegistrySnapshot& snapshot,
                                     const TableRollup& rollup) {
  std::vector<RolledValue> out;
  out.reserve(snapshot.values.size());
  auto rolled = [&](const std::string& name) {
    for (const auto& n : rollup.names)
      if (n == name) return true;
    return false;
  };
  // Snapshots are sorted by (name, labels), so a series family is one
  // contiguous run.
  for (std::size_t i = 0; i < snapshot.values.size();) {
    const SnapshotValue& v = snapshot.values[i];
    std::size_t end = i + 1;
    while (end < snapshot.values.size() &&
           snapshot.values[end].name == v.name)
      ++end;
    std::size_t family = end - i;
    if (!rolled(v.name) || family <= rollup.top_n + 1) {
      for (std::size_t j = i; j < end; ++j)
        out.push_back({snapshot.values[j], 0});
      i = end;
      continue;
    }
    std::vector<const SnapshotValue*> group;
    group.reserve(family);
    for (std::size_t j = i; j < end; ++j) group.push_back(&snapshot.values[j]);
    std::stable_sort(group.begin(), group.end(),
                     [](const SnapshotValue* a, const SnapshotValue* b) {
                       return series_magnitude(*a) > series_magnitude(*b);
                     });
    for (std::size_t k = 0; k < rollup.top_n; ++k)
      out.push_back({*group[k], 0});

    SnapshotValue other;
    other.name = v.name;
    other.labels = {{"series", "other"}};
    other.kind = v.kind;
    bool first_data = true;
    bool bounds_match = true;
    for (std::size_t k = rollup.top_n; k < group.size(); ++k) {
      const SnapshotValue& g = *group[k];
      other.count += g.count;
      other.value += g.value;
      if (g.kind == Kind::kHistogram && g.count > 0) {
        if (first_data) {
          other.min = g.min;
          other.max = g.max;
          first_data = false;
        } else {
          other.min = std::min(other.min, g.min);
          other.max = std::max(other.max, g.max);
        }
      }
      if (k == rollup.top_n) {
        other.bounds = g.bounds;
        other.bucket_counts = g.bucket_counts;
      } else if (g.bounds != other.bounds) {
        bounds_match = false;
      } else {
        for (std::size_t b = 0; b < g.bucket_counts.size() &&
                                b < other.bucket_counts.size();
             ++b)
          other.bucket_counts[b] += g.bucket_counts[b];
      }
    }
    if (!bounds_match) {
      // Mixed shapes: keep totals, drop the (incomparable) buckets.
      other.bounds.clear();
      other.bucket_counts.clear();
    }
    out.push_back({std::move(other), family - rollup.top_n});
    i = end;
  }
  return out;
}

}  // namespace

// ----------------------------------------------------------------- table

util::TextTable to_table(const RegistrySnapshot& snapshot,
                         std::string title) {
  return to_table(snapshot, std::move(title), TableRollup{});
}

util::TextTable to_table(const RegistrySnapshot& snapshot, std::string title,
                         const TableRollup& rollup) {
  util::TextTable table(std::move(title));
  table.set_header({"instrument", "kind", "value", "detail"},
                   {util::Align::kLeft, util::Align::kLeft,
                    util::Align::kRight, util::Align::kLeft});
  for (const RolledValue& rv : roll_values(snapshot, rollup))
    add_value_row(table, rv.value,
                  rv.folded ? util::cat("rollup of ", rv.folded, " series")
                            : std::string());
  table.add_note(util::cat("snapshot at virtual t = ",
                           simnet::format_duration(snapshot.at)));
  return table;
}

RegistrySnapshot apply_rollup(const RegistrySnapshot& snapshot,
                              const TableRollup& rollup) {
  RegistrySnapshot out;
  out.at = snapshot.at;
  std::vector<RolledValue> rolled = roll_values(snapshot, rollup);
  out.values.reserve(rolled.size());
  for (RolledValue& rv : rolled) out.values.push_back(std::move(rv.value));
  return out;
}

// ----------------------------------------------------------------- jsonl

std::string to_jsonl(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& v : snapshot.values) {
    out += util::cat("{\"at\":", snapshot.at, ",\"name\":");
    append_json_string(out, v.name);
    out += ",\"labels\":{";
    for (std::size_t i = 0; i < v.labels.size(); ++i) {
      if (i) out += ',';
      append_json_string(out, v.labels[i].first);
      out += ':';
      append_json_string(out, v.labels[i].second);
    }
    out += util::cat("},\"kind\":\"", to_string(v.kind), "\"");
    switch (v.kind) {
      case Kind::kCounter:
        out += util::cat(",\"value\":", v.count);
        break;
      case Kind::kGauge:
        out += util::cat(",\"value\":", v.value);
        break;
      case Kind::kHistogram: {
        out += util::cat(",\"count\":", v.count, ",\"sum\":", v.value,
                         ",\"min\":", v.min, ",\"max\":", v.max,
                         ",\"bounds\":[");
        for (std::size_t i = 0; i < v.bounds.size(); ++i)
          out += util::cat(i ? "," : "", v.bounds[i]);
        out += "],\"counts\":[";
        for (std::size_t i = 0; i < v.bucket_counts.size(); ++i)
          out += util::cat(i ? "," : "", v.bucket_counts[i]);
        out += "]";
        break;
      }
    }
    out += "}\n";
  }
  return out;
}

std::string to_jsonl(const RegistrySnapshot& snapshot,
                     const TableRollup& rollup) {
  return to_jsonl(apply_rollup(snapshot, rollup));
}

std::optional<RegistrySnapshot> parse_jsonl(const std::string& text) {
  RegistrySnapshot snap;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (eol == pos) {
      ++pos;
      continue;
    }
    Cursor c{text.data() + pos, text.data() + eol};
    pos = eol + 1;

    SnapshotValue v;
    std::string kind;
    if (!c.eat('{')) return std::nullopt;
    do {
      std::string key = parse_string(c);
      if (!c.eat(':')) return std::nullopt;
      if (key == "at") {
        snap.at = parse_int(c);
      } else if (key == "name") {
        v.name = parse_string(c);
      } else if (key == "labels") {
        v.labels = parse_labels(c);
      } else if (key == "kind") {
        kind = parse_string(c);
      } else if (key == "value") {
        std::int64_t raw = parse_int(c);
        v.value = raw;
        v.count = static_cast<std::uint64_t>(raw < 0 ? 0 : raw);
      } else if (key == "count") {
        v.count = static_cast<std::uint64_t>(parse_int(c));
      } else if (key == "sum") {
        v.value = parse_int(c);
      } else if (key == "min") {
        v.min = parse_int(c);
      } else if (key == "max") {
        v.max = parse_int(c);
      } else if (key == "bounds") {
        v.bounds = parse_int_array<std::int64_t>(c);
      } else if (key == "counts") {
        v.bucket_counts = parse_int_array<std::uint64_t>(c);
      } else {
        return std::nullopt;
      }
      if (!c.ok) return std::nullopt;
    } while (c.eat(','));
    c.ok = true;
    if (!c.eat('}')) return std::nullopt;

    if (kind == "counter") {
      v.kind = Kind::kCounter;
      v.value = 0;
    } else if (kind == "gauge") {
      v.kind = Kind::kGauge;
      v.count = 0;
    } else if (kind == "histogram") {
      v.kind = Kind::kHistogram;
    } else {
      return std::nullopt;
    }
    snap.values.push_back(std::move(v));
  }
  return snap;
}

// ------------------------------------------------------------ prometheus

std::string to_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  auto labels_text = [](const Labels& labels,
                        const std::string& extra = {}) -> std::string {
    if (labels.empty() && extra.empty()) return "";
    std::string s = "{";
    bool first = true;
    for (const auto& [k, val] : labels) {
      if (!first) s += ',';
      first = false;
      s += util::cat(k, "=\"", val, "\"");
    }
    if (!extra.empty()) {
      if (!first) s += ',';
      s += extra;
    }
    s += '}';
    return s;
  };
  std::string last_typed;
  for (const auto& v : snapshot.values) {
    if (v.name != last_typed) {
      out += util::cat("# TYPE ", v.name, " ", to_string(v.kind), "\n");
      last_typed = v.name;
    }
    switch (v.kind) {
      case Kind::kCounter:
        out += util::cat(v.name, labels_text(v.labels), " ", v.count, "\n");
        break;
      case Kind::kGauge:
        out += util::cat(v.name, labels_text(v.labels), " ", v.value, "\n");
        break;
      case Kind::kHistogram: {
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < v.bucket_counts.size(); ++i) {
          cum += v.bucket_counts[i];
          std::string le =
              i < v.bounds.size() ? util::cat("le=\"", v.bounds[i], "\"")
                                  : std::string("le=\"+Inf\"");
          out += util::cat(v.name, "_bucket", labels_text(v.labels, le), " ",
                           cum, "\n");
        }
        out += util::cat(v.name, "_sum", labels_text(v.labels), " ", v.value,
                         "\n");
        out += util::cat(v.name, "_count", labels_text(v.labels), " ",
                         v.count, "\n");
        break;
      }
    }
  }
  return out;
}

std::string to_prometheus(const RegistrySnapshot& snapshot,
                          const TableRollup& rollup) {
  return to_prometheus(apply_rollup(snapshot, rollup));
}

// -------------------------------------------------------------- timeline

util::TextTable timeline_table(const std::vector<RegistrySnapshot>& timeline,
                               const std::vector<std::string>& columns,
                               std::string title, TimelineOptions options) {
  // A column's kind comes from its first appearance in the timeline; the
  // delta/rate views only apply to monotone counters (a delta of a gauge
  // level reading is noise, so gauges keep a single absolute column).
  auto is_counter = [&timeline](const std::string& column) {
    for (const auto& snap : timeline)
      if (const SnapshotValue* v = snap.find(column))
        return v->kind != Kind::kGauge;
    return true;
  };

  util::TextTable table(std::move(title));
  std::vector<std::string> header{"t"};
  std::vector<util::Align> align{util::Align::kLeft};
  for (const auto& c : columns) {
    header.push_back(c);
    align.push_back(util::Align::kRight);
    if (!is_counter(c)) continue;
    if (options.deltas) {
      header.push_back(util::cat("Δ", c));
      align.push_back(util::Align::kRight);
    }
    if (options.rates) {
      header.push_back(util::cat(c, "/s"));
      align.push_back(util::Align::kRight);
    }
  }
  table.set_header(std::move(header), std::move(align));
  const RegistrySnapshot* prev = nullptr;
  for (const auto& snap : timeline) {
    std::vector<std::string> row{simnet::format_duration(snap.at)};
    for (const auto& c : columns) {
      const SnapshotValue* v = snap.find(c);
      bool counter = is_counter(c);
      if (!v) {
        row.push_back("-");
      } else if (!counter) {
        row.push_back(util::grouped(v->value));
      } else {
        row.push_back(util::grouped(v->count));
      }
      if (!counter) continue;
      const SnapshotValue* pv = prev ? prev->find(c) : nullptr;
      bool have_delta = v && pv && v->count >= pv->count;
      std::uint64_t delta = have_delta ? v->count - pv->count : 0;
      if (options.deltas)
        row.push_back(have_delta ? util::grouped(delta) : std::string("-"));
      if (options.rates) {
        double interval_s =
            prev ? static_cast<double>(snap.at - prev->at) / 1e6 : 0.0;
        row.push_back(have_delta && interval_s > 0
                          ? util::fixed(static_cast<double>(delta) /
                                            interval_s,
                                        2)
                          : std::string("-"));
      }
    }
    prev = &snap;
    table.add_row(std::move(row));
  }
  return table;
}

// ----------------------------------------------------------------- spans

util::TextTable span_table(const Tracer& tracer, std::string title) {
  util::TextTable table(std::move(title));
  table.set_header({"span", "count", "sim total", "sim max", "wall total",
                    "wall max"},
                   {util::Align::kLeft});
  auto wall_ms = [](std::int64_t ns) {
    return util::cat(util::fixed(static_cast<double>(ns) / 1e6, 2), " ms");
  };
  for (const auto& [name, s] : tracer.stats()) {
    table.add_row({name, util::grouped(s.count),
                   simnet::format_duration(s.total_sim),
                   simnet::format_duration(s.max_sim),
                   wall_ms(s.total_wall_ns), wall_ms(s.max_wall_ns)});
  }
  if (tracer.dropped() > 0)
    table.add_note(util::cat("ring dropped ", tracer.dropped(),
                             " oldest records (aggregates are complete)"));
  return table;
}

// ---------------------------------------------------------- chrome trace

namespace {

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), kDigits[value & 0xf]);
    value >>= 4;
  } while (value != 0);
  return out;
}

}  // namespace

std::string to_chrome_trace(const Tracer& tracer,
                            const ChromeTraceOptions& options) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto event = [&](const SpanRecord& rec, char ph, simnet::SimTime ts) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, rec.name);
    out += util::cat(",\"ph\":\"", std::string(1, ph),
                     "\",\"pid\":1,\"tid\":0,\"ts\":", ts);
    if (ph == 'X') out += util::cat(",\"dur\":", rec.sim_duration());
    if (ph == 'i') out += ",\"s\":\"t\"";
    if (rec.trace != 0)
      out += util::cat(",\"cat\":\"trace\",\"id\":\"0x", hex64(rec.trace),
                       "\"");
    if (options.include_wall && !rec.instant)
      out += util::cat(",\"args\":{\"wall_ns\":", rec.wall_ns, "}");
    out += '}';
  };
  for (const SpanRecord& rec : tracer.records()) {
    if (rec.trace != 0 && !rec.instant) {
      // Async pair on the TraceId's track: stages of one probe lifecycle
      // share an id and nest by timestamp.
      event(rec, 'b', rec.sim_begin);
      event(rec, 'e', rec.sim_end);
    } else if (rec.trace != 0) {
      event(rec, 'n', rec.sim_begin);
    } else if (!rec.instant) {
      event(rec, 'X', rec.sim_begin);
    } else {
      event(rec, 'i', rec.sim_begin);
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace tts::obs
