// Integration: the device runtime binds real byte-level services that the
// protocol scanners can talk to, churn rotates addresses, and NTP polling
// reaches pool servers.
#include <gtest/gtest.h>

#include "inet/services.hpp"
#include "ntp/ntp_server.hpp"
#include "proto/ports.hpp"
#include "scan/engine.hpp"
#include "scan/results.hpp"

namespace tts::inet {
namespace {

class ServicesTest : public ::testing::Test {
 protected:
  ServicesTest()
      : network_(events_),
        registry_(AsRegistry::generate({{}, 3})),
        population_([this] {
          PopulationConfig config;
          config.device_scale = 0.08;
          config.seed = 21;
          return Population::generate(registry_, config);
        }()) {}

  /// Runtime config for address-stable tests (no churn).
  static RuntimeConfig stable() {
    RuntimeConfig c;
    c.enable_churn = false;
    return c;
  }

  /// Finds a device of a class that has the wanted service.
  const Device* find_device(DeviceClass cls) {
    for (const auto& d : population_.devices())
      if (d.profile->cls == cls && d.any_service()) return &d;
    return nullptr;
  }

  /// Probes a target with a fresh engine; returns the success record for
  /// `proto` (outcome left untouched on failure) and the store's outcome
  /// counters via `outcome_of`.
  void probe(scan::Protocol proto, const net::Ipv6Address& target,
             scan::ScanRecord& out) {
    scan::Outcome ignored;
    probe(proto, target, out, ignored);
  }

  void probe(scan::Protocol proto, const net::Ipv6Address& target,
             scan::ScanRecord& out, scan::Outcome& outcome) {
    scan::ResultStore results;
    scan::ScanEngineConfig config;
    config.scanner_address =
        net::Ipv6Address::from_halves(0x3fff000000000000ULL, 1);
    config.min_protocol_delay = simnet::usec(1);
    config.max_protocol_delay = simnet::usec(2);
    scan::ScanEngine engine(network_, results, config);
    engine.submit(target);
    events_.run();
    for (const auto& r : results.records())
      if (r.protocol == proto && r.target == target) out = r;
    // Reconstruct the single probe's outcome from the counters (failure
    // outcomes are tallied, not stored).
    for (auto o : {scan::Outcome::kSuccess, scan::Outcome::kRefused,
                   scan::Outcome::kTimeout, scan::Outcome::kTlsFailed,
                   scan::Outcome::kMalformed}) {
      if (results.count(scan::Dataset::kNtp, proto, o) > 0) outcome = o;
    }
  }

  simnet::EventQueue events_;
  simnet::Network network_;
  AsRegistry registry_;
  Population population_;
};

TEST_F(ServicesTest, FritzBoxServesTitledHttpsWithUniqueCert) {
  ntp::NtpPool pool;
  InternetRuntime runtime(network_, population_, &pool, stable());
  runtime.start();

  const Device* fritz = find_device(DeviceClass::kFritzBox);
  ASSERT_NE(fritz, nullptr);
  ASSERT_TRUE(fritz->http_enabled);

  scan::ScanRecord https{};
  probe(scan::Protocol::kHttps, fritz->initial_address, https);
  EXPECT_EQ(https.outcome, scan::Outcome::kSuccess);
  EXPECT_EQ(https.http_status, 200);
  EXPECT_EQ(https.http_title, "FRITZ!Box");
  ASSERT_TRUE(https.certificate);
  EXPECT_EQ(https.certificate->fingerprint, fritz->http_cert);
  EXPECT_TRUE(https.certificate->self_signed);  // consumer device
}

TEST_F(ServicesTest, SshServerSpeaksBannerAndHostKey) {
  ntp::NtpPool pool;
  InternetRuntime runtime(network_, population_, &pool, stable());
  runtime.start();

  const Device* server = find_device(DeviceClass::kUbuntuServer);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->ssh_enabled);

  scan::ScanRecord ssh{};
  probe(scan::Protocol::kSsh, server->initial_address, ssh);
  EXPECT_EQ(ssh.outcome, scan::Outcome::kSuccess);
  EXPECT_EQ(ssh.ssh_banner,
            ssh_banner(server->ssh_os, server->ssh_version_index));
  ASSERT_TRUE(ssh.ssh_hostkey);
  EXPECT_EQ(*ssh.ssh_hostkey, server->ssh_key);
}

TEST_F(ServicesTest, MqttBrokerReportsAuthPolicy) {
  ntp::NtpPool pool;
  InternetRuntime runtime(network_, population_, &pool, stable());
  runtime.start();

  const Device* open_broker = nullptr;
  const Device* auth_broker = nullptr;
  for (const auto& d : population_.devices()) {
    if (!d.mqtt_enabled) continue;
    if (d.mqtt_auth && !auth_broker) auth_broker = &d;
    if (!d.mqtt_auth && !open_broker) open_broker = &d;
  }
  ASSERT_NE(open_broker, nullptr);
  ASSERT_NE(auth_broker, nullptr);

  scan::ScanRecord open_record{};
  probe(scan::Protocol::kMqtt, open_broker->initial_address, open_record);
  EXPECT_EQ(open_record.outcome, scan::Outcome::kSuccess);
  EXPECT_EQ(open_record.broker_auth_required, std::optional<bool>(false));

  scan::ScanRecord auth_record{};
  probe(scan::Protocol::kMqtt, auth_broker->initial_address, auth_record);
  EXPECT_EQ(auth_record.outcome, scan::Outcome::kSuccess);
  EXPECT_EQ(auth_record.broker_auth_required, std::optional<bool>(true));
}

TEST_F(ServicesTest, CoapDeviceAdvertisesItsResources) {
  ntp::NtpPool pool;
  InternetRuntime runtime(network_, population_, &pool, stable());
  runtime.start();

  const Device* cast = find_device(DeviceClass::kCastDevice);
  ASSERT_NE(cast, nullptr);
  scan::ScanRecord coap{};
  probe(scan::Protocol::kCoap, cast->initial_address, coap);
  EXPECT_EQ(coap.outcome, scan::Outcome::kSuccess);
  ASSERT_EQ(coap.coap_resources.size(), 1u);
  EXPECT_EQ(coap.coap_resources[0], "/castDeviceSearch");
}

TEST_F(ServicesTest, CdnAliasRegionAnswersEverywhereButFailsTlsWithoutSni) {
  ntp::NtpPool pool;
  InternetRuntime runtime(network_, population_, &pool, stable());
  runtime.start();

  auto region = registry_.cdn_alias_region();
  auto random_addr = net::Ipv6Address::from_halves(
      region.address().hi64() | 0x12345, 0x998877);

  scan::ScanRecord http{};
  probe(scan::Protocol::kHttp, random_addr, http);
  EXPECT_EQ(http.outcome, scan::Outcome::kSuccess);
  EXPECT_EQ(http.http_status, 200);
  EXPECT_FALSE(http.http_has_title);  // the "(no title)" flood

  scan::ScanRecord https{};
  scan::Outcome https_outcome = scan::Outcome::kSuccess;
  probe(scan::Protocol::kHttps, random_addr, https, https_outcome);
  EXPECT_EQ(https_outcome, scan::Outcome::kTlsFailed);
}

TEST_F(ServicesTest, ChurnRotatesDynamicAddresses) {
  ntp::NtpPool pool;
  RuntimeConfig config;
  config.duration = simnet::days(10);
  InternetRuntime runtime(network_, population_, &pool, config);
  runtime.start();
  events_.run_until(simnet::days(10));

  std::uint64_t rotated = 0, dynamic_devices = 0;
  for (const auto& d : population_.devices()) {
    if (d.profile->addr.daily_prefix_change <= 0 &&
        d.profile->addr.daily_iid_change <= 0)
      continue;
    ++dynamic_devices;
    if (runtime.address_history(d.id).size() > 1) ++rotated;
  }
  ASSERT_GT(dynamic_devices, 50u);
  // With per-day change probabilities >= 0.25 over 10 days, the
  // overwhelming majority must have rotated at least once.
  EXPECT_GT(static_cast<double>(rotated) /
                static_cast<double>(dynamic_devices),
            0.75);
  EXPECT_GT(runtime.churn_events(), 0u);
}

TEST_F(ServicesTest, ChurnedDeviceServesOnNewAddressNotOld) {
  ntp::NtpPool pool;
  RuntimeConfig config;
  config.duration = simnet::days(10);
  InternetRuntime runtime(network_, population_, &pool, config);
  runtime.start();
  events_.run_until(simnet::days(10));

  // Find a FRITZ!Box that rotated.
  for (const auto& d : population_.devices()) {
    if (d.profile->cls != DeviceClass::kFritzBox || !d.http_enabled) continue;
    const auto& history = runtime.address_history(d.id);
    if (history.size() < 2) continue;
    net::Ipv6Address current = runtime.address_of(d.id);
    net::Ipv6Address old = history.front();
    ASSERT_NE(current, old);

    scan::ScanRecord fresh{};
    probe(scan::Protocol::kHttp, current, fresh);
    EXPECT_EQ(fresh.outcome, scan::Outcome::kSuccess);

    scan::ScanRecord stale{};
    scan::Outcome stale_outcome = scan::Outcome::kSuccess;
    probe(scan::Protocol::kHttp, old, stale, stale_outcome);
    EXPECT_NE(stale_outcome, scan::Outcome::kSuccess);
    return;
  }
  GTEST_SKIP() << "no rotated FRITZ!Box in this tiny population";
}

TEST_F(ServicesTest, DevicesPollPoolServers) {
  ntp::NtpPool pool;
  ntp::AddressCollector collector;
  ntp::NtpServerConfig server_config;
  server_config.address = net::Ipv6Address::from_halves(0x3fff0000000000ffULL, 1);
  server_config.country = "DE";
  ntp::NtpServer server(network_, server_config, &collector);
  pool.add_server(
      {server_config.address, "DE", 1000, 20, true, 0});

  RuntimeConfig config;
  config.duration = simnet::days(2);
  InternetRuntime runtime(network_, population_, &pool, config);
  runtime.start();
  events_.run_until(simnet::days(2) + simnet::minutes(1));

  EXPECT_GT(runtime.ntp_polls_sent(), 100u);
  EXPECT_GT(collector.distinct_addresses(), 50u);
  // Only pool-using devices appear.
  for (const auto& d : population_.devices()) {
    if (d.profile->cls == DeviceClass::kDlinkCpe) {
      EXPECT_FALSE(collector.addresses().contains(d.initial_address));
    }
  }
}

TEST(Certificate, DeterministicFromKeyId) {
  auto a = make_certificate(42, "CN=x", false, 365);
  auto b = make_certificate(42, "CN=x", false, 365);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.not_before, b.not_before);
  EXPECT_EQ(a.not_after, b.not_after);
  EXPECT_GT(a.not_after, a.not_before);
}

}  // namespace
}  // namespace tts::inet
