#include "net/routing_table.hpp"

#include <algorithm>

namespace tts::net {

namespace {
// Bit i (0 = most significant) of a 16-byte address.
inline bool bit_at(const Ipv6Address& a, unsigned i) {
  return (a.bytes()[i / 8] >> (7 - i % 8)) & 1;
}
}  // namespace

struct RoutingTable::Node {
  std::unique_ptr<Node> child[2];
  std::optional<AsNumber> asn;  // set when a prefix terminates here
};

RoutingTable::RoutingTable() : root_(std::make_unique<Node>()) {}
RoutingTable::~RoutingTable() = default;
RoutingTable::RoutingTable(RoutingTable&&) noexcept = default;
RoutingTable& RoutingTable::operator=(RoutingTable&&) noexcept = default;

void RoutingTable::announce(const Ipv6Prefix& prefix, AsNumber asn) {
  Node* node = root_.get();
  for (unsigned i = 0; i < prefix.length(); ++i) {
    int b = bit_at(prefix.address(), i) ? 1 : 0;
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (!node->asn) ++size_;
  node->asn = asn;
}

std::optional<AsNumber> RoutingTable::lookup(const Ipv6Address& addr) const {
  const Node* node = root_.get();
  std::optional<AsNumber> best = node->asn;
  for (unsigned i = 0; i < 128 && node; ++i) {
    int b = bit_at(addr, i) ? 1 : 0;
    node = node->child[b].get();
    if (node && node->asn) best = node->asn;
  }
  return best;
}

std::vector<std::pair<Ipv6Prefix, AsNumber>> RoutingTable::entries() const {
  std::vector<std::pair<Ipv6Prefix, AsNumber>> out;
  out.reserve(size_);

  struct Frame {
    const Node* node;
    std::array<std::uint8_t, 16> bits;
    unsigned depth;
  };
  std::vector<Frame> stack;
  stack.push_back({root_.get(), {}, 0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.node->asn) {
      out.emplace_back(Ipv6Prefix(Ipv6Address::from_bytes(f.bits), f.depth),
                       *f.node->asn);
    }
    for (int b = 1; b >= 0; --b) {
      if (!f.node->child[b]) continue;
      Frame next = f;
      next.node = f.node->child[b].get();
      if (b)
        next.bits[f.depth / 8] |=
            static_cast<std::uint8_t>(1u << (7 - f.depth % 8));
      ++next.depth;
      stack.push_back(next);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tts::net
