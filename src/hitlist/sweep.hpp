// Chunked hitlist sweep feeder.
//
// Bridges a prebuilt address list (the TUM-style hitlist of Table 1) into
// the scan engine's pull-based pump: instead of handing the engine every
// target up front — which is exactly what used to balloon the pending
// queue to one entry per probe of the whole sweep — the feeder registers a
// pull source the pump drains chunk-by-chunk as staging room frees up.
// Progress accessors expose how far the sweep has advanced so the study
// and benches can report it.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/ipv6.hpp"
#include "scan/engine.hpp"

namespace tts::hitlist {

struct SweepConfig {
  /// Upper bound on targets handed over per pull. The engine already caps
  /// pulls at its free staging slots; this additionally smooths very large
  /// staging windows into several pulls.
  std::size_t chunk = 512;
  scan::Dataset dataset = scan::Dataset::kHitlist;
};

class SweepFeeder {
 public:
  SweepFeeder(scan::ScanEngine& engine, std::vector<net::Ipv6Address> targets,
              SweepConfig config = {});

  /// Register the pull source with the engine. Call once; the engine pulls
  /// from then on. Safe to destroy the feeder afterwards — the source owns
  /// the target list via shared state.
  void start();
  bool started() const { return started_; }

  /// Targets handed to the engine so far.
  std::size_t fed() const { return state_->next; }
  std::size_t remaining() const { return state_->targets.size() - state_->next; }
  std::size_t total() const { return state_->targets.size(); }
  bool drained() const { return remaining() == 0; }

 private:
  struct State {
    std::vector<net::Ipv6Address> targets;
    std::size_t next = 0;
  };

  scan::ScanEngine& engine_;
  SweepConfig config_;
  std::shared_ptr<State> state_;
  bool started_ = false;
};

}  // namespace tts::hitlist
