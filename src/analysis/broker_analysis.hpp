// MQTT/AMQP broker security analyses (Figures 3 and 6): what share of
// reachable brokers enforce access control, deduplicated by certificate
// (TLS brokers), by address, or by network.
#pragma once

#include <cstdint>

#include "scan/results.hpp"

namespace tts::analysis {

struct AccessControlStats {
  std::uint64_t total = 0;
  std::uint64_t with_auth = 0;

  double auth_share() const {
    return total == 0 ? 0.0
                      : static_cast<double>(with_auth) /
                            static_cast<double>(total);
  }
};

enum class BrokerKind { kMqtt, kAmqp };

/// Figure 3 style: one unit per distinct address (plain + TLS ports of one
/// host collapse onto the same address).
AccessControlStats access_control_by_address(const scan::ResultStore& results,
                                             scan::Dataset dataset,
                                             BrokerKind kind);

/// Dedup by TLS certificate (only TLS-enabled brokers contribute).
AccessControlStats access_control_by_certificate(
    const scan::ResultStore& results, scan::Dataset dataset, BrokerKind kind);

/// Figure 6 style: one unit per /N network.
AccessControlStats access_control_by_network(const scan::ResultStore& results,
                                             scan::Dataset dataset,
                                             BrokerKind kind,
                                             unsigned prefix_len);

}  // namespace tts::analysis
