#include "proto/mqtt.hpp"

#include "net/packet.hpp"

namespace tts::proto {

void mqtt_write_varint(std::vector<std::uint8_t>& out, std::uint32_t value) {
  do {
    std::uint8_t byte = value % 128;
    value /= 128;
    if (value > 0) byte |= 0x80;
    out.push_back(byte);
  } while (value > 0);
}

std::optional<std::pair<std::uint32_t, std::size_t>> mqtt_read_varint(
    std::span<const std::uint8_t> wire) {
  std::uint32_t value = 0;
  std::uint32_t multiplier = 1;
  for (std::size_t i = 0; i < wire.size() && i < 4; ++i) {
    value += (wire[i] & 0x7f) * multiplier;
    if ((wire[i] & 0x80) == 0) return std::make_pair(value, i + 1);
    multiplier *= 128;
  }
  return std::nullopt;
}

std::vector<std::uint8_t> MqttConnect::serialize() const {
  net::PacketWriter var;
  var.str16("MQTT");
  var.u8(4);  // protocol level 3.1.1
  std::uint8_t flags = 0x02;  // clean session
  if (!username.empty()) flags |= 0x80;
  if (!password.empty()) flags |= 0x40;
  var.u8(flags);
  var.u16(keep_alive);
  var.str16(client_id);
  if (!username.empty()) var.str16(username);
  if (!password.empty()) var.str16(password);

  std::vector<std::uint8_t> out;
  out.push_back(0x10);  // CONNECT
  mqtt_write_varint(out, static_cast<std::uint32_t>(var.size()));
  out.insert(out.end(), var.data().begin(), var.data().end());
  return out;
}

std::optional<MqttConnect> MqttConnect::parse(
    std::span<const std::uint8_t> wire) {
  try {
    if (wire.empty() || wire[0] != 0x10) return std::nullopt;
    auto len = mqtt_read_varint(wire.subspan(1));
    if (!len) return std::nullopt;
    auto body = wire.subspan(1 + len->second);
    if (body.size() < len->first) return std::nullopt;
    net::PacketReader r(body.first(len->first));
    if (r.str16() != "MQTT") return std::nullopt;
    if (r.u8() != 4) return std::nullopt;
    std::uint8_t flags = r.u8();
    MqttConnect c;
    c.keep_alive = r.u16();
    c.client_id = r.str16();
    if (flags & 0x80) c.username = r.str16();
    if (flags & 0x40) c.password = r.str16();
    return c;
  } catch (const net::ParseError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> MqttConnack::serialize() const {
  return {0x20, 0x02, static_cast<std::uint8_t>(session_present ? 1 : 0),
          static_cast<std::uint8_t>(code)};
}

std::optional<MqttConnack> MqttConnack::parse(
    std::span<const std::uint8_t> wire) {
  if (wire.size() < 4 || wire[0] != 0x20 || wire[1] != 0x02)
    return std::nullopt;
  MqttConnack a;
  a.session_present = (wire[2] & 0x01) != 0;
  if (wire[3] > 5) return std::nullopt;
  a.code = static_cast<MqttConnectReturn>(wire[3]);
  return a;
}

}  // namespace tts::proto
