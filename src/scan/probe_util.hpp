// Shared plumbing for protocol scanners: a once-only completion latch that
// owns the ScanRecord under construction, plus the overall probe guard
// timer. Every probe path — refusal, timeout, malformed reply, success —
// funnels through ProbeState::finish, which guarantees exactly one
// ScanRecord per probe.
#pragma once

#include <memory>
#include <utility>

#include "scan/engine.hpp"

namespace tts::scan::detail {

struct ProbeState {
  ScanRecord record;
  ProtocolScanner::DoneFn done;
  simnet::TcpConnectionPtr conn;  // kept so finish() can close it
  /// Releases probe-owned helpers (a TLS session's callbacks) whose
  /// closures form shared_ptr cycles with this state. Runs exactly once.
  std::function<void()> cleanup;
  bool finished = false;

  void finish(Outcome outcome) {
    if (finished) return;
    finished = true;
    record.outcome = outcome;
    if (conn && conn->open())
      conn->close(simnet::TcpConnection::Side::kClient);
    conn = nullptr;
    if (cleanup) {
      auto release = std::move(cleanup);
      cleanup = nullptr;
      release();
    }
    // Hand `done` off to the stack so everything it keeps alive (the TLS
    // session anchored via `cleanup`/`done` closures) dies with this call
    // instead of cycling back to the state.
    auto fn = std::move(done);
    done = nullptr;
    fn(std::move(record));
  }
};

using ProbeStatePtr = std::shared_ptr<ProbeState>;

inline ProbeStatePtr make_probe_state(ScanRecord base,
                                      ProtocolScanner::DoneFn done) {
  auto state = std::make_shared<ProbeState>();
  state->record = std::move(base);
  state->done = std::move(done);
  return state;
}

/// Arm the per-probe guard: if nothing finished the probe by `timeout`,
/// record a timeout.
inline void arm_guard(simnet::Network& network, const ProbeStatePtr& state,
                      simnet::SimDuration timeout) {
  // register_category is idempotent (a short linear name scan), so the
  // guard self-categorises without threading an id through every scanner.
  simnet::EventQueue::CategoryId cat =
      network.events().register_category("scan_probe");
  network.events().schedule_in(timeout,
                               cat,
                               [state] { state->finish(Outcome::kTimeout); });
}

}  // namespace tts::scan::detail
