// D2 fixture: ambient time/entropy reads. Every flagged line carries a
// FINDING marker; the same file linted with --allow-wallclock=wall_clock.cc
// must come back clean (the allowlist test).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double ambient_jitter() {
  return static_cast<double>(rand()) / 32768.0;  // FINDING(wall-clock)
}

long long stamp_micros() {
  auto now = std::chrono::system_clock::now();  // FINDING(wall-clock)
  return now.time_since_epoch().count();
}

long long mono_now() {
  return std::chrono::steady_clock::now()  // FINDING(wall-clock)
      .time_since_epoch()
      .count();
}

long unix_seconds() {
  return time(nullptr);  // FINDING(wall-clock)
}

unsigned entropy_seed() {
  std::random_device rd;  // FINDING(wall-clock)
  std::mt19937 gen(rd());  // FINDING(wall-clock)
  return gen();
}

// Identifiers merely containing the banned names are fine.
bool fresh(long timestamp, int randomish) {
  return timestamp > 0 && randomish != 0;
}

// Member access named .count() / a variable named clock_skew: fine.
struct Sim {
  long clock_skew = 0;
  long count() const { return clock_skew; }
};
