#include "ntp/client.hpp"

#include <memory>

#include "ntp/ntp_server.hpp"

namespace tts::ntp {

simnet::SimDuration NtpQueryResult::offset() const {
  simnet::SimTime t1 = from_ntp_time(response.origin_time);
  simnet::SimTime t2 = from_ntp_time(response.receive_time);
  simnet::SimTime t3 = from_ntp_time(response.transmit_time);
  simnet::SimTime t4 = received_at;
  return ((t2 - t1) + (t3 - t4)) / 2;
}

simnet::SimDuration NtpQueryResult::delay() const {
  simnet::SimTime t1 = from_ntp_time(response.origin_time);
  simnet::SimTime t2 = from_ntp_time(response.receive_time);
  simnet::SimTime t3 = from_ntp_time(response.transmit_time);
  simnet::SimTime t4 = received_at;
  return (t4 - t1) - (t3 - t2);
}

void NtpClient::query(const net::Ipv6Address& src, std::uint16_t src_port,
                      const net::Ipv6Address& server, ResultFn on_result,
                      simnet::SimDuration timeout) {
  simnet::Endpoint src_ep{src, src_port};
  simnet::Endpoint dst_ep{server, kNtpPort};

  auto request = NtpPacket::client_request(network_.now());
  auto done = std::make_shared<bool>(false);
  auto sent_at = network_.now();

  network_.attach(src);
  network_.bind_udp(src_ep, [this, src_ep, src, request, done, on_result,
                             sent_at](const simnet::Datagram& dg) {
    if (*done) return;
    auto response = NtpPacket::parse(dg.payload);
    if (!response || !response->valid_response_to(request)) return;
    *done = true;
    network_.unbind_udp(src_ep);
    network_.detach(src);
    NtpQueryResult result{*response, sent_at, network_.now()};
    on_result(result);
  });
  ++sent_;
  network_.send_udp(src_ep, dst_ep, request.serialize());

  network_.events().schedule_in(timeout, [this, src_ep, src, done,
                                          on_result] {
    if (*done) return;
    *done = true;
    network_.unbind_udp(src_ep);
    network_.detach(src);
    on_result(std::nullopt);
  });
}

}  // namespace tts::ntp
