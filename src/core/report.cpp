#include "core/report.hpp"

#include <sstream>
#include <unordered_set>

#include "analysis/title_grouping.hpp"
#include "util/format.hpp"

namespace tts::core {

namespace {

DatasetScanSummary summarize_scans(const Study& study, scan::Dataset ds) {
  const auto& results = study.results();
  DatasetScanSummary out;
  out.dataset = std::string(to_string(ds));

  auto add_pair = [&](const std::string& label, scan::Protocol plain,
                      std::optional<scan::Protocol> tls_proto,
                      bool keys_from_ssh) {
    DatasetScanSummary::Row row;
    row.protocol = label;
    std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> addrs, tls;
    std::unordered_set<std::uint64_t> creds;
    for (const auto* r : results.successes(ds, plain)) {
      addrs.insert(r->target);
      if (keys_from_ssh && r->ssh_hostkey) creds.insert(*r->ssh_hostkey);
    }
    if (tls_proto) {
      for (const auto* r : results.successes(ds, *tls_proto)) {
        addrs.insert(r->target);
        tls.insert(r->target);
        if (r->certificate) creds.insert(r->certificate->fingerprint);
      }
    }
    row.addresses = addrs.size();
    row.tls_addresses = tls.size();
    row.certs_or_keys = creds.size();
    out.rows.push_back(row);
  };

  add_pair("HTTP", scan::Protocol::kHttp, scan::Protocol::kHttps, false);
  add_pair("SSH", scan::Protocol::kSsh, std::nullopt, true);
  add_pair("MQTT", scan::Protocol::kMqtt, scan::Protocol::kMqtts, false);
  add_pair("AMQP", scan::Protocol::kAmqp, scan::Protocol::kAmqps, false);
  add_pair("CoAP", scan::Protocol::kCoap, std::nullopt, false);
  return out;
}

}  // namespace

StudyReport build_report(const Study& study) {
  StudyReport report;
  const auto& registry = study.registry();

  auto ntp_addrs = study.ntp_addresses();
  const auto& hit_full = study.hitlist().full;

  report.collected_addresses = study.collector().distinct_addresses();
  report.ntp_requests = study.collector().total_requests();
  report.ntp_aggregates = analysis::aggregate(ntp_addrs, registry);
  report.hitlist_full_aggregates = analysis::aggregate(hit_full, registry);
  report.median_ips_per_48_ntp =
      analysis::median_ips_per_net(ntp_addrs, 48);
  report.median_ips_per_48_hitlist =
      analysis::median_ips_per_net(hit_full, 48);
  report.per_server = study.per_server_counts();

  report.ntp_iids = analysis::classify_addresses(ntp_addrs);
  report.hitlist_iids =
      analysis::classify_addresses(study.hitlist().public_list);
  report.ntp_eyeball_share =
      analysis::cable_dsl_isp_share(ntp_addrs, registry);
  report.hitlist_eyeball_share =
      analysis::cable_dsl_isp_share(study.hitlist().public_list, registry);

  report.ntp_scans = summarize_scans(study, scan::Dataset::kNtp);
  report.hitlist_scans = summarize_scans(study, scan::Dataset::kHitlist);

  // Top title groups by unique certificate.
  std::vector<analysis::TitleObservation> obs;
  for (auto ds : {scan::Dataset::kNtp, scan::Dataset::kHitlist}) {
    std::unordered_set<std::uint64_t> seen;
    for (const auto* r :
         study.results().successes(ds, scan::Protocol::kHttps)) {
      if (r->http_status != 200 || !r->certificate) continue;
      if (!seen.insert(r->certificate->fingerprint).second) continue;
      obs.push_back({r->http_title, ds, 1});
    }
  }
  for (const auto& g : analysis::group_titles(obs)) {
    if (report.title_groups.size() >= 15) break;
    report.title_groups.push_back(
        {g.representative.empty() ? "(no title present)" : g.representative,
         g.ntp, g.hitlist});
  }

  auto ntp_hosts =
      analysis::dedup_ssh_hosts(study.results(), scan::Dataset::kNtp);
  auto hit_hosts =
      analysis::dedup_ssh_hosts(study.results(), scan::Dataset::kHitlist);
  report.ntp_ssh_outdated = analysis::outdatedness(ntp_hosts);
  report.hitlist_ssh_outdated = analysis::outdatedness(hit_hosts);
  report.ntp_mqtt_auth = analysis::access_control_by_address(
      study.results(), scan::Dataset::kNtp, analysis::BrokerKind::kMqtt);
  report.hitlist_mqtt_auth = analysis::access_control_by_address(
      study.results(), scan::Dataset::kHitlist, analysis::BrokerKind::kMqtt);
  report.ntp_security =
      analysis::security_score(study.results(), scan::Dataset::kNtp);
  report.hitlist_security =
      analysis::security_score(study.results(), scan::Dataset::kHitlist);

  report.ntp_host_bounds = analysis::estimate_hosts(
      study.results(), scan::Dataset::kNtp, registry);

  report.telescope = study.telescope_report();
  report.hit_rate = study.ntp_hit_rate();
  return report;
}

std::string render_markdown(const StudyReport& r) {
  std::ostringstream md;
  md << "# NTP-based IPv6 scanning — study report\n\n";

  md << "## Collection\n\n";
  md << "- distinct addresses: **" << util::grouped(r.collected_addresses)
     << "** from " << util::grouped(r.ntp_requests) << " NTP requests\n";
  md << "- networks: " << util::grouped(r.ntp_aggregates.nets48)
     << " /48s across " << r.ntp_aggregates.ases << " ASes, "
     << r.ntp_aggregates.countries << " countries\n";
  md << "- median addresses per /48: "
     << util::fixed(r.median_ips_per_48_ntp, 1) << " (hitlist: "
     << util::fixed(r.median_ips_per_48_hitlist, 1) << ")\n\n";

  md << "| server | collected |\n|---|---|\n";
  for (const auto& [country, count] : r.per_server)
    md << "| " << country << " | " << util::grouped(count) << " |\n";
  md << "\n";

  md << "## Address structure (Figure 1)\n\n";
  md << "| IID class | NTP | hitlist (public) |\n|---|---|---|\n";
  for (std::size_t i = 0; i < analysis::kIidClassCount; ++i) {
    auto cls = static_cast<analysis::IidClass>(i);
    md << "| " << to_string(cls) << " | "
       << util::percent(r.ntp_iids.fraction(cls)) << " | "
       << util::percent(r.hitlist_iids.fraction(cls)) << " |\n";
  }
  md << "| Cable/DSL/ISP AS share | "
     << util::percent(r.ntp_eyeball_share) << " | "
     << util::percent(r.hitlist_eyeball_share) << " |\n\n";

  md << "## Scans (Table 2)\n\n";
  for (const auto* summary : {&r.ntp_scans, &r.hitlist_scans}) {
    md << "**" << summary->dataset << "**\n\n";
    md << "| protocol | addresses | w/ TLS | certs/keys |\n|---|---|---|---|\n";
    for (const auto& row : summary->rows) {
      md << "| " << row.protocol << " | " << util::grouped(row.addresses)
         << " | " << util::grouped(row.tls_addresses) << " | "
         << util::grouped(row.certs_or_keys) << " |\n";
    }
    md << "\n";
  }

  md << "## Device types (Table 3, HTTPS by certificate)\n\n";
  md << "| title group | NTP | hitlist |\n|---|---|---|\n";
  for (const auto& g : r.title_groups)
    md << "| " << g.title << " | " << util::grouped(g.ntp) << " | "
       << util::grouped(g.hitlist) << " |\n";
  md << "\n";

  md << "## Security\n\n";
  md << "- outdated SSH: NTP "
     << util::percent(r.ntp_ssh_outdated.outdated_share()) << " vs hitlist "
     << util::percent(r.hitlist_ssh_outdated.outdated_share()) << "\n";
  md << "- MQTT access control: NTP "
     << util::percent(r.ntp_mqtt_auth.auth_share()) << " vs hitlist "
     << util::percent(r.hitlist_mqtt_auth.auth_share()) << "\n";
  md << "- secure share: NTP **"
     << util::percent(r.ntp_security.secure_share()) << "** ("
     << util::grouped(r.ntp_security.total_hosts()) << " hosts) vs hitlist **"
     << util::percent(r.hitlist_security.secure_share()) << "** ("
     << util::grouped(r.hitlist_security.total_hosts()) << " hosts)\n";
  md << "- unique-host bounds (NTP, HTTP+SSH): "
     << util::grouped(r.ntp_host_bounds.lower) << " <= "
     << util::grouped(r.ntp_host_bounds.estimate) << " <= "
     << util::grouped(r.ntp_host_bounds.upper) << "\n";
  md << "- hit rate: " << util::permille(r.hit_rate) << "\n\n";

  md << "## Telescope (Section 5)\n\n";
  md << "| actor | class | ports | median delay | identified |\n"
     << "|---|---|---|---|---|\n";
  for (std::size_t i = 0; i < r.telescope.actors.size(); ++i) {
    const auto& a = r.telescope.actors[i];
    md << "| " << (i + 1) << " | " << to_string(a.classification) << " | "
       << a.ports.size() << " | " << simnet::format_duration(a.median_delay)
       << " | " << (a.identified ? "yes" : "no") << " |\n";
  }
  md << "\nAll " << r.telescope.matched_captures << " of "
     << r.telescope.total_captures
     << " captured packets matched an NTP query.\n";
  return md.str();
}

}  // namespace tts::core
