#include "analysis/ssh_analysis.hpp"

#include <unordered_set>

#include "inet/device.hpp"
#include "proto/sshwire.hpp"
#include "util/ordered.hpp"

namespace tts::analysis {

std::vector<SshHost> dedup_ssh_hosts(const scan::ResultStore& results,
                                     scan::Dataset dataset) {
  std::unordered_map<std::uint64_t, SshHost> by_key;
  for (const auto* r : results.successes(dataset, scan::Protocol::kSsh)) {
    if (!r->ssh_hostkey) continue;
    auto& host = by_key[*r->ssh_hostkey];
    if (host.addresses.empty()) {
      host.host_key = *r->ssh_hostkey;
      host.banner = r->ssh_banner;
      host.os = proto::ssh_os_from_banner(r->ssh_banner);
    }
    host.addresses.push_back(r->target);
  }
  // Drain in host-key order: the output feeds reports and distributions,
  // so its order must not depend on hash layout.
  std::vector<SshHost> out;
  out.reserve(by_key.size());
  for (std::uint64_t key : util::sorted_keys(by_key))
    out.push_back(std::move(by_key.at(key)));
  return out;
}

std::map<std::string, std::uint64_t> os_distribution(
    const std::vector<SshHost>& hosts) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& h : hosts) ++out[h.os];
  return out;
}

bool assessable(const std::string& banner) {
  std::string os = proto::ssh_os_from_banner(banner);
  return os == "Ubuntu" || os == "Debian" || os == "Raspbian";
}

bool banner_up_to_date(const std::string& banner) {
  std::string os = proto::ssh_os_from_banner(banner);
  const auto& lineage = inet::ssh_version_lineage(os);
  std::string software = proto::ssh_software(banner);
  return !lineage.empty() && software == lineage.back();
}

OutdatednessStats outdatedness(const std::vector<SshHost>& hosts) {
  OutdatednessStats stats;
  for (const auto& h : hosts) {
    if (!assessable(h.banner)) continue;
    ++stats.assessable_hosts;
    if (!banner_up_to_date(h.banner)) ++stats.outdated;
  }
  return stats;
}

OutdatednessStats outdatedness_by_network(const std::vector<SshHost>& hosts,
                                          unsigned prefix_len) {
  // Count each (network) once; a network is outdated when any outdated
  // assessable host key was seen inside it. Key reuse makes the same key
  // count in several networks — exactly the inflation Figure 5 shows.
  std::unordered_set<net::Ipv6Prefix, net::Ipv6PrefixHash> assessable_nets;
  std::unordered_set<net::Ipv6Prefix, net::Ipv6PrefixHash> outdated_nets;
  for (const auto& h : hosts) {
    if (!assessable(h.banner)) continue;
    bool outdated = !banner_up_to_date(h.banner);
    for (const auto& addr : h.addresses) {
      auto prefix = net::Ipv6Prefix(addr, prefix_len);
      assessable_nets.insert(prefix);
      if (outdated) outdated_nets.insert(prefix);
    }
  }
  OutdatednessStats stats;
  stats.assessable_hosts = assessable_nets.size();
  stats.outdated = outdated_nets.size();
  return stats;
}

}  // namespace tts::analysis
