#include "simnet/event_queue.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/flight.hpp"

namespace tts::simnet {

namespace {
std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

std::string format_duration(SimDuration d) {
  bool neg = d < 0;
  if (neg) d = -d;
  std::int64_t total_sec = d / 1000000;
  std::int64_t days = total_sec / 86400;
  int h = static_cast<int>(total_sec % 86400 / 3600);
  int m = static_cast<int>(total_sec % 3600 / 60);
  int s = static_cast<int>(total_sec % 60);
  char buf[64];
  if (days > 0)
    std::snprintf(buf, sizeof buf, "%s%lldd %02d:%02d:%02d", neg ? "-" : "",
                  static_cast<long long>(days), h, m, s);
  else
    std::snprintf(buf, sizeof buf, "%s%02d:%02d:%02d", neg ? "-" : "", h, m,
                  s);
  return buf;
}

EventQueue::EventQueue() { register_category("other"); }

EventQueue::~EventQueue() {
  if (registry_) registry_->drop_owner(this);
}

void EventQueue::attach_metrics(obs::Registry& registry, obs::Labels labels,
                                bool time_dispatch) {
  registry_ = &registry;
  time_dispatch_ = time_dispatch;
  labels_ = labels;
  registry.enroll(executed_ctr_, "simnet_events_executed", labels, this);
  registry.enroll(pending_gauge_, "simnet_events_pending", labels, this);
  if (time_dispatch)
    registry.enroll(dispatch_wall_, "simnet_dispatch_wall_ns",
                    std::move(labels), this);
  for (Category& cat : categories_) enroll_category(cat);
}

EventQueue::CategoryId EventQueue::register_category(std::string_view name) {
  for (CategoryId id = 0; id < categories_.size(); ++id)
    if (categories_[id].name == name) return id;
  Category cat;
  cat.name = name;
  cat.executed = std::make_unique<obs::Counter>();
  cat.wall = std::make_unique<obs::Histogram>(
      obs::Histogram::exponential(250, 4.0, 12));
  if (registry_) enroll_category(cat);
  if (flight_) cat.flight_note = flight_->note(cat.name);
  categories_.push_back(std::move(cat));
  return static_cast<CategoryId>(categories_.size() - 1);
}

void EventQueue::enroll_category(Category& cat) {
  // The per-category series carry a category= label; the unlabelled
  // aggregate instruments above stay as-is, so nothing double-enrols.
  obs::Labels labels = labels_;
  labels.emplace_back("category", cat.name);
  registry_->enroll(*cat.executed, "simnet_events_executed", labels, this);
  if (time_dispatch_)
    registry_->enroll(*cat.wall, "simnet_dispatch_wall_ns",
                      std::move(labels), this);
}

void EventQueue::set_flight_recorder(obs::FlightRecorder* recorder,
                                     std::int64_t threshold_ns) {
  flight_ = recorder;
  flight_threshold_ns_ = threshold_ns;
  if (!flight_) return;
  for (Category& cat : categories_)
    cat.flight_note = flight_->note(cat.name);
}

std::vector<EventQueue::SlowDispatch> EventQueue::slowest() const {
  std::vector<SlowDispatch> out = slow_;
  std::sort(out.begin(), out.end(),
            [](const SlowDispatch& a, const SlowDispatch& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              return a.at < b.at;
            });
  return out;
}

void EventQueue::note_slow_dispatch(std::int64_t wall, CategoryId cat) {
  // Keep the top-K table (min-heap on wall_ns: front() is the K-th place
  // to beat), independently of the flight-recorder threshold.
  auto lighter = [](const SlowDispatch& a, const SlowDispatch& b) {
    return a.wall_ns > b.wall_ns;
  };
  if (slow_.size() < kSlowTableSize) {
    slow_.push_back(SlowDispatch{now_, wall, cat});
    std::push_heap(slow_.begin(), slow_.end(), lighter);
  } else if (wall > slow_.front().wall_ns) {
    std::pop_heap(slow_.begin(), slow_.end(), lighter);
    slow_.back() = SlowDispatch{now_, wall, cat};
    std::push_heap(slow_.begin(), slow_.end(), lighter);
  }
  if (flight_ && wall >= flight_threshold_ns_) {
    flight_->record(obs::FlightKind::kSlowDispatch,
                    categories_[cat].flight_note,
                    /*trace=*/0, /*a=*/wall,
                    /*b=*/static_cast<std::int64_t>(cat), /*wall_ns=*/0);
    flight_->trigger("slow-dispatch");
  }
}

void EventQueue::schedule_at(SimTime at, Callback fn) {
  schedule_at(at, /*category=*/0, std::move(fn));
}

void EventQueue::schedule_at(SimTime at, CategoryId category, Callback fn) {
  if (at < now_) at = now_;
  heap_.push(Entry{at, next_seq_++, category, std::move(fn)});
  pending_gauge_.set(static_cast<std::int64_t>(heap_.size()));
}

void EventQueue::schedule_in(SimDuration delay, Callback fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), /*category=*/0, std::move(fn));
}

void EventQueue::schedule_in(SimDuration delay, CategoryId category,
                             Callback fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), category, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the callback must be moved out, so pop
  // via const_cast-free copy of the small fields and move of the function.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_gauge_.set(static_cast<std::int64_t>(heap_.size()));
  now_ = e.at;
  executed_ctr_.inc();
  categories_[e.cat].executed->inc();
  if (time_dispatch_ &&
      (executed_ctr_.value() & dispatch_mask_) == 0) {
    std::int64_t t0 = wall_ns();
    e.fn();
    std::int64_t wall = wall_ns() - t0;
    dispatch_wall_.record(wall);
    categories_[e.cat].wall->record(wall);
    note_slow_dispatch(wall, e.cat);
  } else {
    e.fn();
  }
  return true;
}

void EventQueue::set_dispatch_sampling(std::uint32_t every) {
  std::uint64_t mask = 0;
  while (((mask + 1) << 1) <= every) mask = (mask << 1) | 1;
  dispatch_mask_ = mask;
}

std::uint64_t EventQueue::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t EventQueue::run_until(SimTime until) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

// ------------------------------------------------------------------ Timer

Timer::Timer(EventQueue& queue, EventQueue::Callback fn,
             EventQueue::CategoryId category)
    : state_(std::make_shared<State>()) {
  state_->queue = &queue;
  state_->fn = std::move(fn);
  state_->category = category;
}

Timer::~Timer() {
  // Pending heap entries share the state; disarming makes them inert and
  // dropping the callback releases whatever it captured.
  state_->armed = false;
  state_->fn = nullptr;
}

void Timer::arm(SimTime at) {
  State& s = *state_;
  if (at < s.queue->now()) at = s.queue->now();
  s.armed = true;
  s.target = at;
  // An entry at or before the new deadline reaches it for free: when it
  // fires early it re-schedules itself to the (moved) target. Only an
  // earlier deadline needs a fresh entry.
  if (s.entry_live && s.entry_at <= at) return;
  push_entry(state_);
}

void Timer::cancel() { state_->armed = false; }

void Timer::push_entry(const std::shared_ptr<State>& s) {
  s->entry_at = s->target;
  s->entry_live = true;
  ++s->entries;
  std::uint64_t gen = ++s->gen;
  s->queue->schedule_at(s->target, s->category,
                        [s, gen] { fire(s, gen); });
}

void Timer::fire(const std::shared_ptr<State>& s, std::uint64_t gen) {
  if (gen != s->gen) return;  // superseded by a later (earlier-armed) entry
  s->entry_live = false;
  if (!s->armed) return;
  if (s->target > s->queue->now()) {
    // Deadline moved later since this entry was pushed; chase it.
    push_entry(s);
    return;
  }
  s->armed = false;
  // Copy: the callback may destroy the Timer (clearing s->fn) mid-call.
  EventQueue::Callback fn = s->fn;
  fn();
}

}  // namespace tts::simnet
