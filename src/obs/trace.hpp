// Span tracing for pipeline stages, in both clocks at once: wall time
// (steady_clock, observational only — it never feeds back into the
// simulation) and virtual time (the simnet::EventQueue clock, so a span
// covering an async probe round-trip reports the simulated RTT).
//
// Span names are interned once (name -> NameId) and the hot path carries
// only the 32-bit id: open(NameId) does no string work at all, and repeat
// open(string_view) calls cost one hash lookup, not an allocation. Per-name
// aggregates (count / total / max in each clock, plus a log-scale
// sim-duration histogram) are a flat vector indexed by NameId.
//
// Completed spans land in a bounded ring buffer, so long runs keep the
// recent detail and never grow unbounded. Scoped spans handle synchronous
// stages; the open()/close() pair handles stages that finish in a later
// event-queue callback (probe launch -> completion).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simnet/event_queue.hpp"

namespace tts::obs {

struct SpanRecord {
  std::string name;
  simnet::SimTime sim_begin = 0;
  simnet::SimTime sim_end = 0;
  std::int64_t wall_ns = 0;
  std::uint32_t depth = 0;  // nesting level at open time (0 = top level)
  /// Causal trace this span belongs to (0 = not trace-linked). All spans
  /// of one probe lifecycle carry the same TraceId, so an exporter can
  /// group stage/grant/launch/retry/record onto one timeline.
  std::uint64_t trace = 0;
  /// Zero-duration marker (Tracer::instant) rather than an open/close pair.
  bool instant = false;

  simnet::SimDuration sim_duration() const { return sim_end - sim_begin; }
};

struct SpanStats {
  /// Sim-duration histogram: bucket b counts spans with
  /// 2^(b-1) <= duration < 2^b time units (bucket 0 = zero-length spans);
  /// the last bucket absorbs everything longer.
  static constexpr std::size_t kHistBuckets = 24;

  std::uint64_t count = 0;
  simnet::SimDuration total_sim = 0;
  simnet::SimDuration max_sim = 0;
  std::int64_t total_wall_ns = 0;
  std::int64_t max_wall_ns = 0;
  std::array<std::uint64_t, kHistBuckets> sim_hist{};

  static std::size_t bucket_of(simnet::SimDuration d);
};

class Tracer {
 public:
  using SpanId = std::uint64_t;
  using NameId = std::uint32_t;
  /// Causal trace identity threaded through every stage of one logical
  /// operation (a probe lifecycle). Minted by the producer (seed-stable —
  /// e.g. ScanEngine derives it from the staging sequence, never from a
  /// clock), 0 means "no trace".
  using TraceId = std::uint64_t;
  static constexpr SpanId kNoSpan = 0;

  explicit Tracer(std::size_t capacity = 4096);

  /// The wall clock every obs component shares (steady_clock, ns). This is
  /// the one sanctioned ambient-time read outside the event queue: callers
  /// (FlightRecorder, bench emitters) take the value as data instead of
  /// reading clocks themselves, keeping the ttslint wall-clock allowlist
  /// at exactly two files.
  static std::int64_t wall_clock_ns();

  /// Virtual-time source; without one, spans record sim times of 0.
  void set_sim_clock(const simnet::EventQueue* events) { events_ = events; }

  /// A disabled tracer's open() is a no-op returning kNoSpan (no wall-clock
  /// reads on the hot path).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Intern a span name once (idempotent); open(NameId) is then free of
  /// string hashing entirely. Enrol at setup time, trace on the hot path.
  NameId intern(std::string_view name);
  const std::string& name_of(NameId name) const { return names_[name]; }

  SpanId open(NameId name) { return open(name, /*trace=*/0); }
  SpanId open(std::string_view name) { return open(intern(name)); }
  /// Open a span linked to a causal trace: the completed record carries
  /// `trace`, so exporters can reassemble one probe's whole lifecycle.
  SpanId open(NameId name, TraceId trace);
  void close(SpanId id);

  /// Record a zero-duration marker (grant, retry, shed, record...) on a
  /// trace. Counted in the per-name stats and the ring like any span; a
  /// disabled tracer ignores it.
  void instant(NameId name, TraceId trace);

  /// RAII span for synchronous stages.
  class Scope {
   public:
    Scope(Tracer& tracer, std::string_view name)
        : tracer_(tracer), id_(tracer.open(name)) {}
    Scope(Tracer& tracer, NameId name)
        : tracer_(tracer), id_(tracer.open(name)) {}
    ~Scope() { tracer_.close(id_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer& tracer_;
    SpanId id_;
  };

  Scope span(std::string_view name) { return Scope(*this, name); }
  Scope span(NameId name) { return Scope(*this, name); }

  /// The most recent completed spans in completion order (ring contents).
  std::vector<SpanRecord> records() const;
  /// Aggregates over *all* completed spans, keyed by span name (an ordered
  /// map, so report output is stable). Built on demand from the per-id
  /// vector; bind it to a local when reading more than one entry.
  std::map<std::string, SpanStats> stats() const;
  /// Aggregate for one interned name (hot-path-shaped accessor).
  const SpanStats& stats_of(NameId name) const { return stats_[name]; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t open_spans() const { return open_count_; }

 private:
  // Open spans live in reusable slots (no per-span node allocation on the
  // hot path); a SpanId packs the slot index and a generation counter so a
  // stale close of a recycled slot is ignored.
  struct Active {
    NameId name = 0;
    simnet::SimTime sim_begin = 0;
    std::int64_t wall_begin_ns = 0;
    std::uint32_t depth = 0;
    std::uint32_t gen = 0;
    std::uint64_t trace = 0;
    bool in_use = false;
  };

  void commit(SpanRecord rec, NameId name);
  simnet::SimTime sim_now() const { return events_ ? events_->now() : 0; }

  const simnet::EventQueue* events_ = nullptr;
  bool enabled_ = true;
  std::size_t capacity_;
  std::vector<SpanRecord> ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;  // records overwritten in the ring
  std::vector<Active> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t open_count_ = 0;
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, NameId, StringHash, std::equal_to<>> ids_;
  std::vector<std::string> names_;     // NameId -> name
  std::vector<SpanStats> stats_;       // NameId -> aggregate
};

}  // namespace tts::obs
