#include "hitlist/hitlist.hpp"

namespace tts::hitlist {

std::map<Source, std::uint64_t> Hitlist::counts_by_source() const {
  std::map<Source, std::uint64_t> out;
  for (const auto& [addr, src] : provenance) ++out[src];
  return out;
}

Hitlist HitlistBuilder::build(const inet::Population& pop,
                              const inet::InternetRuntime* runtime,
                              const SourceConfig& config) {
  util::Rng rng(config.seed);
  Hitlist list;

  AddressOf addr_of = initial_address_of();
  if (runtime) {
    addr_of = [runtime](const inet::Device& d) {
      return runtime->address_of(d.id);
    };
  }
  auto dns = dns_source(pop, addr_of);
  auto traceroute = traceroute_source(pop, config, rng, addr_of);
  auto tga = tga_source(dns, config, rng);
  auto aliased = aliased_source(pop.registry(), config, rng);
  auto stale = stale_source(pop, dns.size(), config, rng);

  // Index device initial addresses for the responsiveness check when no
  // runtime is available yet.
  std::unordered_map<net::Ipv6Address, const inet::Device*,
                     net::Ipv6AddressHash>
      initial;
  if (!runtime) {
    for (const auto& d : pop.devices()) initial[d.initial_address] = &d;
  }

  auto device_at = [&](const net::Ipv6Address& a) -> const inet::Device* {
    if (runtime) return runtime->device_at(a);
    auto it = initial.find(a);
    return it == initial.end() ? nullptr : it->second;
  };

  const auto& alias_region = pop.registry().cdn_alias_region();

  auto ingest = [&](const std::vector<SourcedAddress>& batch) {
    for (const auto& s : batch) {
      auto [it, inserted] = list.provenance.emplace(s.addr, s.source);
      if (!inserted) continue;
      list.full.push_back(s.addr);

      bool responsive = false;
      if (alias_region.contains(s.addr)) {
        responsive = true;  // every aliased address answers
      } else if (const inet::Device* d = device_at(s.addr)) {
        responsive = d->any_service();
      } else if (s.source == Source::kTraceroute) {
        // Synthetic router interfaces answer ICMP (ping-responsive), which
        // is enough for the public list's liveness filter.
        responsive = s.addr.lo64() < 256;
      }
      if (responsive) list.public_list.push_back(s.addr);
    }
  };

  ingest(dns);
  ingest(traceroute);
  ingest(tga);
  ingest(aliased);
  ingest(stale);
  return list;
}

}  // namespace tts::hitlist
