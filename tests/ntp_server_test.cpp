#include <gtest/gtest.h>

#include "ntp/client.hpp"
#include "ntp/collector.hpp"
#include "ntp/ntp_server.hpp"

namespace tts::ntp {
namespace {

net::Ipv6Address addr(std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x2400001000000000ULL, lo);
}

class NtpServerTest : public ::testing::Test {
 protected:
  NtpServerTest() : network_(events_) {}

  NtpServerConfig server_config(std::uint64_t lo, ServerId id) {
    NtpServerConfig c;
    c.address = addr(lo);
    c.country = "DE";
    c.id = id;
    return c;
  }

  simnet::EventQueue events_;
  simnet::Network network_;
  AddressCollector collector_;
};

TEST_F(NtpServerTest, AnswersValidRequestAndCapturesClient) {
  NtpServer server(network_, server_config(1, 7), &collector_);
  NtpClient client(network_);

  bool got = false;
  client.query(addr(100), 3333, addr(1),
               [&](std::optional<NtpQueryResult> result) {
                 ASSERT_TRUE(result);
                 EXPECT_EQ(result->response.stratum, 2);
                 EXPECT_TRUE(result->delay() > 0);
                 got = true;
               });
  events_.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(collector_.distinct_addresses(), 1u);
  EXPECT_EQ(collector_.server_distinct(7), 1u);
  EXPECT_TRUE(collector_.addresses().contains(addr(100)));
}

TEST_F(NtpServerTest, DeduplicatesRepeatedClients) {
  NtpServer server(network_, server_config(1, 0), &collector_);
  NtpClient client(network_);
  for (int i = 0; i < 5; ++i)
    client.query(addr(100), static_cast<std::uint16_t>(4000 + i), addr(1),
                 [](std::optional<NtpQueryResult>) {});
  events_.run();
  EXPECT_EQ(server.requests_served(), 5u);
  EXPECT_EQ(collector_.distinct_addresses(), 1u);
  EXPECT_EQ(collector_.total_requests(), 5u);
}

TEST_F(NtpServerTest, DropsMalformedAndNonClientModes) {
  NtpServer server(network_, server_config(1, 0), &collector_);
  network_.attach(addr(100));
  // Garbage payload.
  network_.send_udp({addr(100), 5000}, {addr(1), kNtpPort}, {1, 2, 3});
  // A mode-4 (server) packet must not be answered.
  auto response_packet = NtpPacket::server_response(
      NtpPacket::client_request(0), 0, 0, 2, 1);
  network_.send_udp({addr(100), 5000}, {addr(1), kNtpPort},
                    response_packet.serialize());
  events_.run();
  EXPECT_EQ(server.requests_served(), 0u);
  EXPECT_EQ(server.malformed_dropped(), 2u);
  EXPECT_EQ(collector_.distinct_addresses(), 0u);
}

TEST_F(NtpServerTest, NoCaptureWhenDisabled) {
  auto config = server_config(1, 0);
  config.capture = false;
  NtpServer server(network_, config, &collector_);
  NtpClient client(network_);
  bool answered = false;
  client.query(addr(100), 3333, addr(1),
               [&](std::optional<NtpQueryResult> r) { answered = r.has_value(); });
  events_.run();
  EXPECT_TRUE(answered);  // still serves time
  EXPECT_EQ(collector_.distinct_addresses(), 0u);  // but logs nothing
}

TEST_F(NtpServerTest, ClientTimesOutAgainstDeadServer) {
  NtpClient client(network_);
  bool timed_out = false;
  client.query(addr(100), 3333, addr(99),
               [&](std::optional<NtpQueryResult> r) { timed_out = !r; },
               simnet::sec(2));
  events_.run();
  EXPECT_TRUE(timed_out);
}

TEST_F(NtpServerTest, CollectorSubscribersFireOnNewOnly) {
  int fired = 0;
  collector_.subscribe([&](const CollectedAddress&) { ++fired; });
  collector_.record(addr(1), 0, 0);
  collector_.record(addr(1), 0, simnet::sec(1));
  collector_.record(addr(2), 1, simnet::sec(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(collector_.daily_new().at(0), 2u);
}

TEST_F(NtpServerTest, CollectorBatchEqualsRecordLoop) {
  // record_batch must be observably identical to a record() loop: same
  // counters, same per-address subscriber order, same store state — plus
  // exactly one batch callback carrying only the fresh addresses.
  std::vector<net::Ipv6Address> stream = {addr(1), addr(2), addr(1),
                                          addr(3), addr(2), addr(4)};
  AddressCollector loop;
  std::vector<net::Ipv6Address> loop_seen;
  loop.subscribe([&](const CollectedAddress& a) { loop_seen.push_back(a.addr); });
  for (const auto& a : stream) loop.record(a, 3, simnet::sec(5));

  std::vector<net::Ipv6Address> batch_seen;
  std::vector<net::Ipv6Address> batch_fresh;
  int batch_calls = 0;
  collector_.subscribe(
      [&](const CollectedAddress& a) { batch_seen.push_back(a.addr); });
  collector_.subscribe_batch([&](const CollectedBatch& b) {
    ++batch_calls;
    EXPECT_EQ(b.server, 3u);
    EXPECT_EQ(b.first_seen, simnet::sec(5));
    batch_fresh.insert(batch_fresh.end(), b.addrs.begin(), b.addrs.end());
  });
  std::size_t fresh = collector_.record_batch(stream, 3, simnet::sec(5));

  EXPECT_EQ(fresh, 4u);
  EXPECT_EQ(batch_calls, 1);
  EXPECT_EQ(batch_seen, loop_seen);
  EXPECT_EQ(batch_fresh, loop_seen);
  EXPECT_EQ(collector_.total_requests(), loop.total_requests());
  EXPECT_EQ(collector_.dedup_hits(), loop.dedup_hits());
  EXPECT_EQ(collector_.server_distinct(3), loop.server_distinct(3));
  EXPECT_EQ(collector_.snapshot(), loop.snapshot());
  EXPECT_EQ(collector_.daily_new(), loop.daily_new());
  // An all-duplicate batch produces no batch callback.
  collector_.record_batch(stream, 3, simnet::sec(6));
  EXPECT_EQ(batch_calls, 1);
}

TEST_F(NtpServerTest, CollectorDailyTimeline) {
  collector_.record(addr(1), 0, simnet::days(0) + 5);
  collector_.record(addr(2), 0, simnet::days(1) + 5);
  collector_.record(addr(3), 0, simnet::days(1) + 50);
  EXPECT_EQ(collector_.daily_new().at(0), 1u);
  EXPECT_EQ(collector_.daily_new().at(1), 2u);
}

TEST_F(NtpServerTest, QueryResultOffsetReasonable) {
  NtpServer server(network_, server_config(1, 0), &collector_);
  NtpClient client(network_);
  client.query(addr(100), 3333, addr(1),
               [&](std::optional<NtpQueryResult> result) {
                 ASSERT_TRUE(result);
                 // Client and server share the simulation clock, so the
                 // measured offset must be small relative to the RTT.
                 EXPECT_LT(std::abs(result->offset()), result->delay());
               });
  events_.run();
}

}  // namespace
}  // namespace tts::ntp
