// The zgrab2-style scan engine (Section 4.1).
//
// Targets arrive either in real time (the AddressCollector feeds every new
// NTP-sourced address) or in bulk (the hitlist sweep). The engine enforces
// the study's ethical-scanning mechanics: a global packet budget (token
// bucket), randomised 10 s - 10 min delays between the per-protocol probes
// of one target, and a 3-day blackout before any address is scanned again.
// Each protocol probe performs a full byte-level exchange through the
// protocol scanners and records one ScanRecord.
//
// All campaign counters (submitted / skipped / launched / completed, the
// per-protocol splits, the token-bucket wait histogram and pending-queue
// depth) are obs instruments; the accessors read the same cells, and a
// Registry in the config exports them labelled with the campaign dataset.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scan/results.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace tts::scan {

/// One protocol prober. Implementations live in *_scanner.cpp.
class ProtocolScanner {
 public:
  using DoneFn = std::function<void(ScanRecord)>;

  virtual ~ProtocolScanner() = default;
  virtual Protocol protocol() const = 0;

  /// Run one probe. `base` carries dataset/target/time tags; fill outcome
  /// and payloads, then invoke `done` exactly once.
  virtual void probe(simnet::Network& network, const simnet::Endpoint& src,
                     ScanRecord base, DoneFn done) = 0;

 protected:
  static constexpr simnet::SimDuration kProbeTimeout = simnet::sec(8);
};

struct ScanEngineConfig {
  /// Probe budget per second of virtual time. The paper scans at up to
  /// 100 kpps; the simulation defaults lower since its populations are
  /// scaled down by orders of magnitude.
  double max_pps = 2000;
  simnet::SimDuration min_protocol_delay = simnet::sec(10);
  simnet::SimDuration max_protocol_delay = simnet::minutes(10);
  simnet::SimDuration rescan_blackout = simnet::days(3);
  net::Ipv6Address scanner_address;
  Dataset dataset = Dataset::kNtp;
  /// SNI offered in TLS probes ("" = none: we scan addresses, not names).
  std::string sni;
  std::uint64_t seed = 0x5ca9;

  /// Export the engine's instruments (labelled dataset=...); must outlive
  /// the engine. Optional.
  obs::Registry* registry = nullptr;
  /// Span per probe round-trip ("probe/<proto>", virtual launch->done).
  /// Optional.
  obs::Tracer* tracer = nullptr;
};

class ScanEngine {
 public:
  ScanEngine(simnet::Network& network, ResultStore& results,
             ScanEngineConfig config);
  ~ScanEngine();

  ScanEngine(const ScanEngine&) = delete;
  ScanEngine& operator=(const ScanEngine&) = delete;

  /// Queue a target for a full multi-protocol scan. Returns false when the
  /// target is inside its rescan blackout and was skipped.
  bool submit(const net::Ipv6Address& target);

  /// Queue many targets (hitlist sweep); paced by the token bucket.
  void submit_bulk(const std::vector<net::Ipv6Address>& targets);

  std::uint64_t submitted() const { return submitted_.value(); }
  std::uint64_t skipped_blackout() const { return skipped_blackout_.value(); }
  std::uint64_t probes_launched() const { return probes_launched_.value(); }
  std::uint64_t probes_completed() const { return probes_completed_.value(); }
  std::uint64_t probes_launched(Protocol proto) const {
    return launched_by_proto_[static_cast<std::size_t>(proto)].value();
  }
  std::uint64_t probes_completed(Protocol proto) const {
    return completed_by_proto_[static_cast<std::size_t>(proto)].value();
  }

  /// Virtual-time wait imposed by the token bucket per allocated slot (us).
  const obs::Histogram& token_wait() const { return token_wait_; }
  /// Virtual launch-to-completion time per probe (us), all protocols.
  const obs::Histogram& probe_rtt() const { return probe_rtt_; }
  std::size_t pending_depth() const { return pending_.size(); }

  const ScanEngineConfig& config() const { return config_; }

 private:
  static constexpr simnet::SimDuration kPumpWindow = simnet::sec(1);

  struct Pending {
    simnet::SimTime at;
    Protocol protocol;
    net::Ipv6Address target;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.at > b.at;
    }
  };

  /// Reserve the next token-bucket slot (absolute virtual time).
  simnet::SimTime allocate_slot();
  void launch(Protocol proto, const net::Ipv6Address& target,
              simnet::SimTime at);
  void arm_pump();
  void pump();
  void enroll_metrics();

  simnet::Network& network_;
  ResultStore& results_;
  ScanEngineConfig config_;
  util::Rng rng_;
  std::vector<std::unique_ptr<ProtocolScanner>> scanners_;

  std::unordered_map<net::Ipv6Address, simnet::SimTime, net::Ipv6AddressHash>
      last_scan_;
  std::priority_queue<Pending, std::vector<Pending>, PendingLater> pending_;
  bool pump_armed_ = false;
  simnet::SimTime next_token_ = 0;
  std::uint64_t next_ephemeral_ = 40000;

  obs::Counter submitted_;
  obs::Counter skipped_blackout_;
  obs::Counter probes_launched_;
  obs::Counter probes_completed_;
  std::array<obs::Counter, kProtocolCount> launched_by_proto_;
  std::array<obs::Counter, kProtocolCount> completed_by_proto_;
  obs::Histogram token_wait_{obs::Histogram::exponential(1000, 4.0, 14)};
  obs::Histogram probe_rtt_{obs::Histogram::exponential(1000, 4.0, 14)};
  obs::Gauge pending_gauge_;
  // Prebuilt "probe/<proto>" span names (building one per launch would
  // dominate the span cost).
  std::array<std::string, kProtocolCount> span_names_;
};

/// Factories for the built-in protocol scanners (one per Table 2 protocol).
std::unique_ptr<ProtocolScanner> make_http_scanner(bool tls, std::string sni);
std::unique_ptr<ProtocolScanner> make_ssh_scanner();
std::unique_ptr<ProtocolScanner> make_mqtt_scanner(bool tls, std::string sni);
std::unique_ptr<ProtocolScanner> make_amqp_scanner(bool tls, std::string sni);
std::unique_ptr<ProtocolScanner> make_coap_scanner();

}  // namespace tts::scan
