// RoutePlane: scripted down-window compilation (convergence delay,
// redundant-event dropping, zero-width windows), longest-prefix-match
// shadowing, barrier-committed transitions (counters, subscribers, flight
// events) and the Network integration (UDP blackhole, TCP connect timeout,
// verdict precedence over the fault plane).
#include <gtest/gtest.h>

#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/network.hpp"
#include "simnet/route.hpp"

namespace tts::simnet {
namespace {

net::Ipv6Address addr(std::uint64_t hi, std::uint64_t lo) {
  return net::Ipv6Address::from_halves(hi, lo);
}

constexpr std::uint64_t kAsNet = 0x20010db800000000ULL;
constexpr std::uint64_t kOtherNet = 0x2400cb0000000000ULL;

net::Ipv6Prefix as_prefix() { return net::Ipv6Prefix(addr(kAsNet, 0), 32); }
net::Ipv6Prefix site_prefix() {
  // A /48 inside the /32 (site bits live in the third 16-bit group).
  return net::Ipv6Prefix(addr(kAsNet | 0x00420000ULL, 0), 48);
}

TEST(RoutePlane, DownWindowFollowsConvergenceDelay) {
  RouteScenario scenario;
  scenario.convergence = sec(30);
  scenario.withdraw(as_prefix(), sec(10));   // effective at 40
  scenario.announce(as_prefix(), sec(50));   // effective at 80
  RoutePlane plane(std::move(scenario), nullptr);

  auto target = addr(kAsNet, 7);
  EXPECT_FALSE(plane.withdrawn(target, sec(39)));
  EXPECT_TRUE(plane.withdrawn(target, sec(40)));   // from is inclusive
  EXPECT_TRUE(plane.withdrawn(target, sec(79)));
  EXPECT_FALSE(plane.withdrawn(target, sec(80)));  // until is exclusive
  EXPECT_EQ(plane.transition_count(), 2u);
}

TEST(RoutePlane, UnscriptedSpaceIsAlwaysRouted) {
  RouteScenario scenario;
  scenario.withdraw(as_prefix(), 0);
  RoutePlane plane(std::move(scenario), nullptr);

  EXPECT_TRUE(plane.withdrawn(addr(kAsNet, 1), sec(60)));
  EXPECT_FALSE(plane.withdrawn(addr(kOtherNet, 1), sec(60)));
}

TEST(RoutePlane, MoreSpecificScriptedPrefixShadowsCoveringWithdrawal) {
  RouteScenario scenario;
  scenario.convergence = 0;
  scenario.withdraw(as_prefix(), sec(10));
  // The /48 is scripted (so it exists in the LPM trie) but only goes down
  // much later: while the covering /32 is withdrawn, the /48's addresses
  // stay reachable — standard longest-prefix-match semantics.
  scenario.withdraw(site_prefix(), sec(1000));
  RoutePlane plane(std::move(scenario), nullptr);

  auto inside_site = addr(kAsNet | 0x00420000ULL, 5);
  auto outside_site = addr(kAsNet | 0x00990000ULL, 5);
  EXPECT_TRUE(plane.withdrawn(outside_site, sec(20)));
  EXPECT_FALSE(plane.withdrawn(inside_site, sec(20)));
  EXPECT_TRUE(plane.withdrawn(inside_site, sec(1000)));
}

TEST(RoutePlane, RedundantEventsAreDropped) {
  RouteScenario scenario;
  scenario.convergence = 0;
  scenario.withdraw(as_prefix(), sec(10));
  scenario.withdraw(as_prefix(), sec(20));   // already down: dropped
  scenario.announce(as_prefix(), sec(30));
  scenario.announce(as_prefix(), sec(40));   // already up: dropped
  RoutePlane plane(std::move(scenario), nullptr);

  EXPECT_EQ(plane.transition_count(), 2u);
  EXPECT_TRUE(plane.withdrawn(addr(kAsNet, 1), sec(25)));
  EXPECT_FALSE(plane.withdrawn(addr(kAsNet, 1), sec(35)));
}

TEST(RoutePlane, ZeroWidthWindowCommitsNothing) {
  RouteScenario scenario;
  scenario.convergence = sec(30);
  scenario.withdraw(as_prefix(), sec(10));  // both effective at 40
  scenario.announce(as_prefix(), sec(10));
  RoutePlane plane(std::move(scenario), nullptr);

  EXPECT_EQ(plane.transition_count(), 0u);
  EXPECT_FALSE(plane.withdrawn(addr(kAsNet, 1), sec(40)));
}

TEST(RoutePlane, BlackholesCountsDataPathKills) {
  obs::Registry registry;
  RouteScenario scenario;
  scenario.convergence = 0;
  scenario.withdraw(as_prefix(), sec(10));
  RoutePlane plane(std::move(scenario), &registry);

  EXPECT_FALSE(plane.blackholes(addr(kAsNet, 1), sec(5)));
  EXPECT_TRUE(plane.blackholes(addr(kAsNet, 1), sec(15)));
  EXPECT_TRUE(plane.blackholes(addr(kAsNet, 2), sec(20)));
  EXPECT_EQ(plane.blackholed(), 2u);
  auto snapshot = registry.snapshot(0);
  const obs::SnapshotValue* cell = snapshot.find("route_blackholed");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->count, 2u);
}

TEST(RoutePlane, ArmedTransitionsCommitCountersSubscribersAndFlight) {
  EventQueue events;
  obs::FlightRecorder flight;
  flight.set_sim_clock(&events);
  RouteScenario scenario;
  scenario.convergence = sec(30);
  scenario.withdraw(as_prefix(), sec(10));   // effective 40
  scenario.announce(as_prefix(), sec(50));   // effective 80
  RoutePlane plane(std::move(scenario), nullptr);
  plane.set_flight_recorder(&flight);

  std::vector<std::pair<RouteOp, SimTime>> seen;
  plane.subscribe([&](const net::Ipv6Prefix& prefix, RouteOp op,
                      SimTime effective) {
    EXPECT_EQ(prefix, as_prefix());
    seen.emplace_back(op, effective);
  });
  plane.arm(events);
  events.run();

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, RouteOp::kWithdraw);
  EXPECT_EQ(seen[0].second, sec(40));
  EXPECT_EQ(seen[1].first, RouteOp::kAnnounce);
  EXPECT_EQ(seen[1].second, sec(80));
  EXPECT_EQ(plane.withdrawals(), 1u);
  EXPECT_EQ(plane.announcements(), 1u);

  int withdrawn_events = 0, announced_events = 0;
  for (const obs::FlightEvent& ev : flight.events()) {
    if (ev.kind == obs::FlightKind::kRouteWithdrawn) ++withdrawn_events;
    if (ev.kind == obs::FlightKind::kRouteAnnounced) ++announced_events;
  }
  EXPECT_EQ(withdrawn_events, 1);
  EXPECT_EQ(announced_events, 1);
}

// ------------------------------------------------- network integration

class RouteNetworkTest : public ::testing::Test {
 protected:
  RouteNetworkTest() : network_(events_, config()) {}
  static NetworkConfig config() {
    NetworkConfig c;
    c.min_latency = msec(10);
    c.max_latency = msec(20);
    c.jitter = 0;
    c.connect_timeout = sec(3);
    return c;
  }

  EventQueue events_;
  Network network_;
};

TEST_F(RouteNetworkTest, UdpIntoWithdrawnSpaceVanishesAndReturns) {
  RouteScenario scenario;
  scenario.convergence = 0;
  scenario.withdraw(as_prefix(), sec(10));
  scenario.announce(as_prefix(), sec(20));
  network_.install_routes(std::move(scenario));

  int delivered = 0;
  network_.bind_udp({addr(kAsNet, 1), 123},
                    [&](const Datagram&) { ++delivered; });
  auto send = [&] {
    network_.send_udp({addr(kOtherNet, 2), 1}, {addr(kAsNet, 1), 123}, {1});
  };
  send();                                // before the withdrawal: delivered
  events_.schedule_at(sec(15), send);    // during: blackholed
  events_.schedule_at(sec(25), send);    // after re-announce: delivered
  events_.run();

  EXPECT_EQ(delivered, 2);
  ASSERT_NE(network_.routes(), nullptr);
  EXPECT_EQ(network_.routes()->blackholed(), 1u);
  EXPECT_EQ(network_.routes()->withdrawals(), 1u);
  EXPECT_EQ(network_.routes()->announcements(), 1u);
}

TEST_F(RouteNetworkTest, TcpConnectIntoWithdrawnSpaceTimesOut) {
  RouteScenario scenario;
  scenario.convergence = 0;
  scenario.withdraw(as_prefix(), 0);
  network_.install_routes(std::move(scenario));
  network_.attach(addr(kAsNet, 1));
  network_.listen_tcp({addr(kAsNet, 1), 80}, [](TcpConnectionPtr) {});

  bool called = false;
  network_.connect_tcp({addr(kOtherNet, 2), 1}, {addr(kAsNet, 1), 80},
                       [&](TcpConnectionPtr conn, bool refused) {
                         called = true;
                         EXPECT_EQ(conn, nullptr);
                         EXPECT_FALSE(refused);  // timeout, not RST
                       });
  events_.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(events_.now(), sec(3));  // the configured connect_timeout
}

TEST_F(RouteNetworkTest, RouteVerdictPrecedesFaultRules) {
  // An inbound loss rule on the same prefix: while the route is withdrawn
  // the fault plane must never see (or count, or draw for) the packet.
  FaultScenario faults;
  faults.rules.push_back({.prefix = as_prefix(),
                          .kind = FaultKind::kLoss,
                          .probability = 1.0});
  network_.install_faults(std::move(faults));
  RouteScenario scenario;
  scenario.convergence = 0;
  scenario.withdraw(as_prefix(), 0);
  network_.install_routes(std::move(scenario));

  network_.send_udp({addr(kOtherNet, 2), 1}, {addr(kAsNet, 1), 123}, {1});
  events_.run();
  EXPECT_EQ(network_.routes()->blackholed(), 1u);
  EXPECT_EQ(network_.faults()->udp_dropped(), 0u);
}

TEST_F(RouteNetworkTest, SubscriptionsBeforeInstallAreBuffered) {
  int calls = 0;
  network_.subscribe_routes(
      [&](const net::Ipv6Prefix&, RouteOp, SimTime) { ++calls; });
  RouteScenario scenario;
  scenario.convergence = 0;
  scenario.withdraw(as_prefix(), sec(5));
  network_.install_routes(std::move(scenario));
  events_.run();
  EXPECT_EQ(calls, 1);
}

TEST_F(RouteNetworkTest, WithoutAPlaneEverythingIsRouted) {
  EXPECT_EQ(network_.routes(), nullptr);
  EXPECT_FALSE(network_.route_withdrawn(addr(kAsNet, 1), sec(1)));
}

}  // namespace
}  // namespace tts::simnet
