// Route-plane churn bench: verdict-lookup throughput against a RoutePlane
// compiled from 1,000 scripted flap events over 64 prefixes, and the
// end-to-end cost of the reachability check on the UDP hot path — the same
// scripted send schedule driven through a Network with and without the
// plane installed.
//
// The perf-smoke lane compares the emitted sample against the committed
// BENCH_route_churn.json; the flap/transition/blackhole counts are
// sim-deterministic (the plane is a pure function of the script), the
// *_per_sec_wall rates are machine-dependent. The binary also self-gates:
// installing the plane must keep at least 95% of the plane-off send
// throughput (nonzero exit otherwise) — the verdict runs before any RNG
// draw, so the only admissible cost is the LPM probe itself.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/network.hpp"
#include "simnet/route.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace tts;

namespace {

constexpr std::size_t kPrefixes = 64;      // flapped /32 aggregates
constexpr std::size_t kFlapEvents = 1000;  // scripted withdraw/announce ops
constexpr std::size_t kLookups = 2'000'000;
constexpr std::size_t kSendBatches = 500;  // scripted send schedule
constexpr std::size_t kSendsPerBatch = 1200;
constexpr int kSendReps = 16;  // interleaved off/on pairs (noise rejection)

/// The i-th flapped /32 (2001:100+i::/32) — scripted space.
net::Ipv6Prefix flapped(std::size_t i) {
  std::uint64_t hi = 0x2001000000000000ULL |
                     (static_cast<std::uint64_t>(0x100 + i) << 32);
  return net::Ipv6Prefix(net::Ipv6Address::from_halves(hi, 0), 32);
}

/// An address inside the i-th flapped /32.
net::Ipv6Address flapped_addr(std::size_t i, std::uint64_t lo) {
  return net::Ipv6Address::from_halves(flapped(i).address().hi64() | 0x7,
                                       lo);
}

/// Unscripted, always-routed space (the realistic hot path: most targets
/// are not withdrawn, so the verdict is one LPM miss).
net::Ipv6Address routed_addr(std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x2400cb0000000000ULL, lo);
}

/// 1,000 flap events round-robin over the 64 prefixes: each prefix keeps
/// alternating withdraw/announce, one event every 10 s of sim time.
simnet::RouteScenario churn_scenario() {
  simnet::RouteScenario scenario;
  scenario.convergence = simnet::sec(30);
  std::vector<bool> down(kPrefixes, false);
  for (std::size_t e = 0; e < kFlapEvents; ++e) {
    std::size_t p = e % kPrefixes;
    simnet::SimTime at = simnet::sec(10) * static_cast<std::int64_t>(e);
    if (down[p])
      scenario.announce(flapped(p), at);
    else
      scenario.withdraw(flapped(p), at);
    down[p] = !down[p];
  }
  return scenario;
}

/// Horizon of the flap script (the last event plus convergence slack).
simnet::SimTime churn_horizon() {
  return simnet::sec(10) * static_cast<std::int64_t>(kFlapEvents) +
         simnet::minutes(2);
}

struct SendRun {
  double sends_per_sec = 0;
  double wall_seconds = 0;
  std::uint64_t delivered = 0;
  std::uint64_t blackholed = 0;
};

/// Drive the scripted send schedule through a Network, with or without the
/// churn scenario installed: kSendBatches events spread across the flap
/// timeline, each sending kSendsPerBatch datagrams into always-routed
/// space plus one into the flapped space (so the with-plane run also
/// exercises the down-window probe, deterministically). The plane-off run
/// schedules a no-op tick at each of the plane's transition instants, so
/// both configurations execute the identical event schedule and the
/// measured ratio isolates the per-send verdict cost — not the event-queue
/// population effect of 1k extra pending events, which at study scale
/// (millions of probes per flap) is noise.
SendRun run_sends(bool with_plane) {
  simnet::EventQueue events;
  simnet::Network network(events);
  if (with_plane) {
    network.install_routes(churn_scenario());
  } else {
    for (std::size_t e = 0; e < kFlapEvents; ++e)
      events.schedule_at(simnet::sec(10) * static_cast<std::int64_t>(e) +
                             simnet::sec(30),
                         [] {});
  }

  SendRun out;
  net::Ipv6Address sink = routed_addr(1);
  network.bind_udp({sink, 123}, [&out](const simnet::Datagram&) {
    ++out.delivered;
  });
  simnet::SimTime span = churn_horizon();
  for (std::size_t b = 0; b < kSendBatches; ++b) {
    simnet::SimTime at =
        span / static_cast<std::int64_t>(kSendBatches) *
        static_cast<std::int64_t>(b);
    events.schedule_at(at, [&network, &sink, b] {
      for (std::size_t s = 0; s < kSendsPerBatch; ++s)
        network.send_udp({routed_addr(2), 1}, {sink, 123}, {1});
      network.send_udp({routed_addr(2), 1},
                       {flapped_addr(b % kPrefixes, 9), 123}, {1});
    });
  }
  std::int64_t t0 = bench::bench_wall_ns();
  events.run();
  out.wall_seconds =
      static_cast<double>(bench::bench_wall_ns() - t0) / 1e9;
  auto total =
      static_cast<double>(kSendBatches * (kSendsPerBatch + 1));
  out.sends_per_sec =
      out.wall_seconds > 0 ? total / out.wall_seconds : 0;
  if (with_plane) out.blackholed = network.routes()->blackholed();
  return out;
}

void emit_sample(
    const std::vector<std::pair<std::string, std::string>>& metrics) {
  const char* path = std::getenv("TTS_BENCH_JSON");
  if (!path || !*path) return;
  std::ofstream out(path);
  out << "{\n  \"schema\": 1,\n  \"name\": \"route_churn\",\n"
      << "  \"scale\": \"micro\",\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i)
    out << "    \"" << metrics[i].first << "\": " << metrics[i].second
        << (i + 1 < metrics.size() ? ",\n" : "\n");
  out << "  }\n}\n";
  std::cerr << "[bench] wrote perf sample " << path << " (route_churn)\n";
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

int main() {
  std::int64_t t0 = bench::bench_wall_ns();

  // Raw verdict throughput: the compiled plane answered directly, over a
  // deterministic mix of flapped and unscripted targets at times spanning
  // the whole churn window.
  simnet::RoutePlane plane(churn_scenario(), nullptr);
  constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ULL;
  util::Rng rng(kSeed);
  std::vector<std::pair<net::Ipv6Address, simnet::SimTime>> probes;
  probes.reserve(kLookups);
  auto span = static_cast<std::uint64_t>(churn_horizon());
  for (std::size_t i = 0; i < kLookups; ++i) {
    net::Ipv6Address a = (i & 1) ? flapped_addr(rng.below(kPrefixes), i)
                                 : routed_addr(i);
    probes.emplace_back(
        a, static_cast<simnet::SimTime>(rng.below(span)));
  }
  std::uint64_t withdrawn_hits = 0;
  std::int64_t t_lookup = bench::bench_wall_ns();
  for (const auto& [a, at] : probes) withdrawn_hits += plane.withdrawn(a, at);
  double lookup_s =
      static_cast<double>(bench::bench_wall_ns() - t_lookup) / 1e9;
  double lookups_per_sec =
      lookup_s > 0 ? static_cast<double>(kLookups) / lookup_s : 0;

  // End-to-end hot-path overhead: kSendReps interleaved off/on runs per
  // configuration. Scheduler/co-tenant noise on shared runners swings a
  // single run by 10%+, so the gate uses the better of two noise-robust
  // estimators — the minimum-wall ratio (noise only ever *adds* wall time,
  // so per-config minima converge on clean run times) and the median-wall
  // ratio (order statistics shrug off outlier runs) — either of which a
  // genuine hot-path regression drags down.
  SendRun on, off;
  std::vector<double> off_walls, on_walls;
  for (int rep = 0; rep < kSendReps; ++rep) {
    SendRun o = run_sends(/*with_plane=*/false);
    SendRun w = run_sends(/*with_plane=*/true);
    off_walls.push_back(o.wall_seconds);
    on_walls.push_back(w.wall_seconds);
    if (o.sends_per_sec > off.sends_per_sec) off = o;
    if (w.sends_per_sec > on.sends_per_sec) on = w;
  }
  std::sort(off_walls.begin(), off_walls.end());
  std::sort(on_walls.begin(), on_walls.end());
  double min_ratio = on_walls.front() > 0
                         ? off_walls.front() / on_walls.front()
                         : 0;
  double median_ratio = on_walls[on_walls.size() / 2] > 0
                            ? off_walls[off_walls.size() / 2] /
                                  on_walls[on_walls.size() / 2]
                            : 0;
  double ratio = std::max(min_ratio, median_ratio);
  double wall_seconds =
      static_cast<double>(bench::bench_wall_ns() - t0) / 1e9;

  util::TextTable t("Route-plane churn: verdicts under 1k scripted flaps");
  t.set_header({"metric", "value"});
  t.add_row({"flap events scripted", std::to_string(kFlapEvents)});
  t.add_row({"transitions compiled",
             std::to_string(plane.transition_count())});
  t.add_row({"verdict lookups/s", fmt(lookups_per_sec)});
  t.add_row({"withdrawn verdicts", std::to_string(withdrawn_hits)});
  t.add_row({"sends/s (plane off)", fmt(off.sends_per_sec)});
  t.add_row({"sends/s (plane on)", fmt(on.sends_per_sec)});
  t.add_row({"on/off throughput ratio", fmt(ratio)});
  t.add_row({"datagrams blackholed", std::to_string(on.blackholed)});
  t.render(std::cout);

  std::vector<std::pair<std::string, std::string>> metrics;
  metrics.emplace_back("flap_events", std::to_string(kFlapEvents));
  metrics.emplace_back("route_transitions",
                       std::to_string(plane.transition_count()));
  metrics.emplace_back("withdrawn_verdicts",
                       std::to_string(withdrawn_hits));
  metrics.emplace_back("datagrams_blackholed",
                       std::to_string(on.blackholed));
  metrics.emplace_back("datagrams_delivered", std::to_string(on.delivered));
  metrics.emplace_back("verdict_lookups_per_sec_wall",
                       fmt(lookups_per_sec));
  metrics.emplace_back("sends_plane_on_per_sec_wall",
                       fmt(on.sends_per_sec));
  metrics.emplace_back("sends_plane_off_per_sec_wall",
                       fmt(off.sends_per_sec));
  metrics.emplace_back("wall_seconds", fmt(wall_seconds));
  metrics.emplace_back("rss_peak_kb",
                       std::to_string(bench::bench_rss_peak_kb()));
  emit_sample(metrics);

  // The acceptance bar: the reachability check costs <= 5% of plane-off
  // UDP throughput, and the scripted churn actually exercised both verdict
  // outcomes.
  bool pass = ratio >= 0.95 && withdrawn_hits > 0 && on.blackholed > 0;
  std::cout << "\nRoute-plane overhead check (>= 0.95x plane-off"
            << " throughput, both verdicts exercised): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
