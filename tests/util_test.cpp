#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <array>
#include <algorithm>

#include "util/format.hpp"
#include "util/levenshtein.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tts::util {
namespace {

// ---------------------------------------------------------------- format

TEST(Format, GroupedMatchesPaperStyle) {
  EXPECT_EQ(grouped(std::uint64_t{0}), "0");
  EXPECT_EQ(grouped(std::uint64_t{7}), "7");
  EXPECT_EQ(grouped(std::uint64_t{999}), "999");
  EXPECT_EQ(grouped(std::uint64_t{1000}), "1 000");
  EXPECT_EQ(grouped(std::uint64_t{3040325302}), "3 040 325 302");
  EXPECT_EQ(grouped(std::int64_t{-1234567}), "-1 234 567");
}

TEST(Format, PercentAndPermille) {
  EXPECT_EQ(percent(0.284), "28.4 %");
  EXPECT_EQ(percent(1.0, 0), "100 %");
  EXPECT_EQ(permille(0.00042), "0.42‰");
}

TEST(Format, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Format, CaseHelpers) {
  EXPECT_TRUE(istarts_with("FRITZ!Box 7590", "fritz"));
  EXPECT_FALSE(istarts_with("abc", "abcd"));
  EXPECT_TRUE(icontains("Welcome to nginx!", "NGINX"));
  EXPECT_FALSE(icontains("abc", "xyz"));
  EXPECT_TRUE(icontains("anything", ""));
}

TEST(Format, Hex) {
  const std::uint8_t data[] = {0x00, 0xff, 0x1a};
  EXPECT_EQ(hex(data, 3), "00ff1a");
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NamedStreamsAreIndependent) {
  Rng root(42);
  Rng s1 = root.stream("population");
  Rng s2 = root.stream("pool");
  // Streams differ from each other and the root.
  EXPECT_NE(s1.next(), s2.next());
  // Re-derivation yields the identical stream.
  Rng s1b = root.stream("population");
  Rng s1c = root.stream("population");
  EXPECT_EQ(s1b.next(), s1c.next());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0};
  int hi = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.pick_weighted(weights) == 1) ++hi;
  EXPECT_NEAR(hi / 10000.0, 0.75, 0.03);
}

TEST(Rng, PickCumulativeBinarySearch) {
  Rng rng(19);
  std::vector<double> cumulative = {0.1, 0.1, 0.6, 1.0};  // repeated mass
  std::array<int, 4> counts{};
  for (int i = 0; i < 10000; ++i) ++counts[rng.pick_cumulative(cumulative)];
  EXPECT_NEAR(counts[0] / 10000.0, 0.1, 0.02);
  EXPECT_EQ(counts[1], 0);  // zero-mass bucket never selected
  EXPECT_NEAR(counts[2] / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(counts[3] / 10000.0, 0.4, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Zipf, RankOneDominates) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.2);
  std::uint64_t rank1 = 0, rank10 = 0;
  for (int i = 0; i < 20000; ++i) {
    auto r = zipf.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 100u);
    if (r == 1) ++rank1;
    if (r == 10) ++rank10;
  }
  // P(1)/P(10) should be about 10^1.2 ~ 15.8.
  EXPECT_GT(rank1, rank10 * 8);
}

TEST(Zipf, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.2), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

// ------------------------------------------------------------ levenshtein

TEST(Levenshtein, KnownDistances) {
  EXPECT_EQ(levenshtein("", ""), 0u);
  EXPECT_EQ(levenshtein("abc", ""), 3u);
  EXPECT_EQ(levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(levenshtein("FRITZ!Box 7590", "FRITZ!Box 7530"), 1u);
}

TEST(Levenshtein, MetricAxiomsHoldOnSamples) {
  const std::vector<std::string> words = {"", "a", "ab", "abc", "acb",
                                          "xbc", "FRITZ!Box", "D-LINK"};
  for (const auto& a : words) {
    for (const auto& b : words) {
      std::size_t dab = levenshtein(a, b);
      EXPECT_EQ(dab, levenshtein(b, a)) << a << " / " << b;  // symmetry
      EXPECT_EQ(dab == 0, a == b);  // identity of indiscernibles
      for (const auto& c : words) {  // triangle inequality
        EXPECT_LE(levenshtein(a, c), dab + levenshtein(b, c));
      }
    }
  }
}

TEST(Levenshtein, BoundedAgreesWithExactWithinBound) {
  const std::vector<std::string> words = {"abcdef", "abcxef", "xxxxxx",
                                          "abc", "abcdefgh"};
  for (const auto& a : words) {
    for (const auto& b : words) {
      std::size_t exact = levenshtein(a, b);
      for (std::size_t bound = 0; bound <= 8; ++bound) {
        std::size_t bounded = levenshtein_bounded(a, b, bound);
        if (exact <= bound)
          EXPECT_EQ(bounded, exact) << a << "/" << b << " bound " << bound;
        else
          EXPECT_GT(bounded, bound) << a << "/" << b << " bound " << bound;
      }
    }
  }
}

TEST(Levenshtein, NormalizedThreshold) {
  EXPECT_TRUE(within_normalized_distance("FRITZ!Box 7590", "FRITZ!Box 7530",
                                         0.25));
  EXPECT_FALSE(within_normalized_distance("FRITZ!Box", "D-LINK", 0.25));
  EXPECT_TRUE(within_normalized_distance("", "", 0.25));
}

// ------------------------------------------------------------------ stats

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 4.0, 2.0, 3.0}), 3.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Stats, ShannonEntropyBounds) {
  std::vector<std::uint8_t> constant(64, 0xaa);
  EXPECT_DOUBLE_EQ(shannon_entropy(constant), 0.0);
  std::vector<std::uint8_t> all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<std::uint8_t>(i));
  EXPECT_NEAR(shannon_entropy(all), 8.0, 1e-9);
  EXPECT_NEAR(normalized_entropy(all), 1.0, 1e-9);
}

TEST(Stats, CounterTopK) {
  Counter<std::string> counter;
  counter.add("a", 5);
  counter.add("b", 7);
  counter.add("c");
  EXPECT_EQ(counter.total(), 13u);
  EXPECT_EQ(counter.distinct(), 3u);
  auto top = counter.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "b");
  EXPECT_EQ(top[1].first, "a");
  EXPECT_EQ(counter.count("missing"), 0u);
}

TEST(Stats, HistogramBinningAndClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.3);
  h.add(0.9);
  h.add(-5.0);  // clamps to first bin
  h.add(5.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(3), 2u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 0.5);
}

TEST(Stats, HistogramNonFiniteInputs) {
  // Regression: casting NaN to an index is UB; histograms fed from latency
  // ratios occasionally see NaN/inf and must stay well-defined.
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  h.add(std::numeric_limits<double>::quiet_NaN());  // dropped, counted
  h.add(std::numeric_limits<double>::infinity());   // clamps to last bin
  h.add(-std::numeric_limits<double>::infinity());  // clamps to first bin
  EXPECT_EQ(h.nonfinite(), 3u);
  // total() excludes the dropped NaN but includes the clamped infinities.
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  // Weighted NaNs count their weight too.
  h.add(std::numeric_limits<double>::quiet_NaN(), 5);
  EXPECT_EQ(h.nonfinite(), 8u);
  EXPECT_EQ(h.total(), 3u);
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAlignedColumns) {
  TextTable t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  t.add_rule();
  t.add_note("note line");
  std::string out = t.to_string();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("note line"), std::string::npos);
  // Right-aligned numeric column: "22" under " 1".
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(Table, HandlesRaggedRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.to_string());
}

}  // namespace
}  // namespace tts::util
