// Lightweight string formatting helpers.
//
// GCC 12's libstdc++ ships no <format>, so the library uses these small
// helpers instead. They cover the handful of shapes the benches and reports
// need: concatenation, grouped integers ("3 040 325 302" as the paper prints
// them), fixed-precision doubles, and percentages.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace tts::util {

/// Concatenate any streamable values into a std::string.
template <typename... Ts>
std::string cat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

/// Format an unsigned integer with thin-space digit grouping in groups of
/// three, matching the paper's table style: 3040325302 -> "3 040 325 302".
std::string grouped(std::uint64_t value);

/// Signed counterpart of grouped().
std::string grouped(std::int64_t value);

/// Format a double with the given number of fractional digits.
std::string fixed(double value, int digits);

/// Format a ratio in [0,1] as a percentage string, e.g. 0.284 -> "28.4 %".
std::string percent(double ratio, int digits = 1);

/// Format a ratio in [0,1] as per-mille, e.g. 0.00042 -> "0.42‰".
std::string permille(double ratio, int digits = 2);

/// Left/right pad `s` with spaces to at least `width` characters.
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

/// Lower-case an ASCII string (non-ASCII bytes pass through untouched).
std::string to_lower(std::string_view s);

/// True if `s` starts with / contains `needle` (ASCII case-insensitive).
bool istarts_with(std::string_view s, std::string_view prefix);
bool icontains(std::string_view s, std::string_view needle);

/// Render a byte as two lowercase hex characters appended to `out`.
void append_hex_byte(std::string& out, std::uint8_t byte);

/// Hex-encode a byte span.
std::string hex(const std::uint8_t* data, std::size_t len);

}  // namespace tts::util
