// EUI-64 / vendor analysis (Appendix B, Table 4, Figure 4).
//
// Subscribes to the AddressCollector and incrementally tallies, for every
// newly collected address: whether its IID embeds a MAC, whether that MAC
// claims global uniqueness, whether the OUI is registered, the vendor, and
// which of our NTP servers collected it (the geographic signal of
// Figure 4).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/mac.hpp"
#include "net/oui_db.hpp"
#include "ntp/collector.hpp"
#include "util/stats.hpp"

namespace tts::analysis {

struct VendorTally {
  std::uint64_t ips = 0;
  std::unordered_set<net::MacAddress, net::MacAddressHash> macs;
};

class Eui64Accumulator {
 public:
  explicit Eui64Accumulator(const net::OuiDatabase& db =
                                net::OuiDatabase::builtin())
      : db_(&db) {}

  /// Subscribe to a collector (counts only NTP-sourced addresses).
  void attach(ntp::AddressCollector& collector);

  /// Feed one address (also usable standalone, e.g. over a hitlist).
  void add(const net::Ipv6Address& addr, ntp::ServerId server);

  // -- Appendix B headline numbers --
  std::uint64_t total_addresses() const { return total_; }
  std::uint64_t eui64_addresses() const { return eui64_ips_; }
  std::uint64_t distinct_eui64_iids() const { return eui64_iids_.size(); }
  std::uint64_t unique_bit_addresses() const { return unique_ips_; }
  std::uint64_t distinct_unique_macs() const { return unique_macs_.size(); }
  std::uint64_t listed_oui_addresses() const { return listed_ips_; }
  std::uint64_t distinct_listed_macs() const { return listed_macs_.size(); }

  /// Table 4: vendor -> (#MACs, #IPs), sorted by #MACs desc.
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
  vendor_ranking() const;

  /// Figure 4: per-server counts for each MAC-embedding class. Ordered by
  /// server id so direct iteration renders deterministically (a handful of
  /// servers; the tree map costs nothing).
  const std::map<ntp::ServerId, std::array<std::uint64_t, 4>>&
  per_server_embedding() const {
    return per_server_;
  }

 private:
  const net::OuiDatabase* db_;
  std::uint64_t total_ = 0;
  std::uint64_t eui64_ips_ = 0;
  std::uint64_t unique_ips_ = 0;
  std::uint64_t listed_ips_ = 0;
  std::unordered_set<std::uint64_t> eui64_iids_;
  std::unordered_set<net::MacAddress, net::MacAddressHash> unique_macs_;
  std::unordered_set<net::MacAddress, net::MacAddressHash> listed_macs_;
  std::unordered_map<std::string, VendorTally> vendors_;
  std::map<ntp::ServerId, std::array<std::uint64_t, 4>> per_server_;
};

}  // namespace tts::analysis
