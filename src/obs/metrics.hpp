// Observability instruments: named counters, gauges and fixed-bucket
// histograms, plus the Registry that exports them.
//
// Design: instruments are plain value types *owned by the component they
// measure* (a ScanEngine owns its probe counters), so the accessor methods
// the benches already use read the very same cell the exporters see — one
// source of truth, no drift. A Registry holds non-owning references
// enrolled under a name and a label set ("probes_launched{proto=ssh}") and
// turns them into snapshots for the heartbeat timeline and the exporters.
//
// Hot-path cost: one relaxed atomic add per counter increment and a short
// linear bucket scan per histogram record (bucket counts are measured in
// bench/micro_benchmarks.cpp). Relaxed atomics keep the instruments
// data-race free under TSan/ASan without fences the simulator (single
// threaded) would pay for.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tts::obs {

/// Instrument labels, e.g. {{"proto","ssh"},{"dataset","ntp"}}. Enrolment
/// sorts them by key so equal label sets compare equal.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts samples <= bounds[i] (bounds are
/// sorted, inclusive upper edges); one implicit overflow bucket follows.
class Histogram {
 public:
  static constexpr std::size_t kMaxBuckets = 32;

  /// Default shape: exponential microsecond buckets 1us .. ~1000s.
  Histogram();
  explicit Histogram(std::vector<std::int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// `count` bounds starting at `first`, each `factor` times the previous.
  static std::vector<std::int64_t> exponential(std::int64_t first,
                                               double factor,
                                               std::size_t count);

  void record(std::int64_t v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// Bucket count including the overflow bucket (== bounds().size() + 1).
  std::size_t buckets() const { return bounds_.size() + 1; }
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Approximate percentile (p in [0,1]) read off the bucket edges; the
  /// overflow bucket reports the observed max.
  std::int64_t percentile(double p) const;

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
};

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
std::string_view to_string(Kind kind);

/// One exported value, decoupled from the live instrument: what a heartbeat
/// tick or exporter sees.
struct SnapshotValue {
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;  // counter value / histogram sample count
  std::int64_t value = 0;   // gauge value / histogram sum
  std::int64_t min = 0, max = 0;               // histogram only
  std::vector<std::int64_t> bounds;            // histogram only
  std::vector<std::uint64_t> bucket_counts;    // histogram only

  /// "name{k=v,...}" (just "name" without labels).
  std::string full_name() const;
};

struct RegistrySnapshot {
  std::int64_t at = 0;  // virtual time (simnet microseconds) of the snapshot
  std::vector<SnapshotValue> values;

  /// First value whose full_name() matches, else nullptr.
  const SnapshotValue* find(std::string_view full_name) const;
};

/// Non-owning directory of instruments. Enrolment is the cold path (guarded
/// by a mutex); reads happen only in snapshot(). Components that may die
/// before the registry drop their entries by owner tag.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void enroll(const Counter& c, std::string name, Labels labels = {},
              const void* owner = nullptr);
  void enroll(const Gauge& g, std::string name, Labels labels = {},
              const void* owner = nullptr);
  void enroll(const Histogram& h, std::string name, Labels labels = {},
              const void* owner = nullptr);

  /// Remove every instrument enrolled under `owner`.
  void drop_owner(const void* owner);

  const Counter* find_counter(std::string_view name,
                              const Labels& labels = {}) const;
  const Gauge* find_gauge(std::string_view name,
                          const Labels& labels = {}) const;
  const Histogram* find_histogram(std::string_view name,
                                  const Labels& labels = {}) const;

  std::size_t size() const;

  /// Copy every instrument's current value, sorted by (name, labels) so the
  /// output is stable regardless of enrolment order. `at` stamps the
  /// snapshot with the virtual time it was taken.
  RegistrySnapshot snapshot(std::int64_t at = 0) const;

  /// Process-wide default registry for ad-hoc instrumentation; Study and
  /// tests use their own instances to stay hermetic.
  static Registry& global();

 private:
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    const void* ptr;
    const void* owner;
  };

  const Entry* find_entry(std::string_view name, const Labels& labels,
                          Kind kind) const;
  void add(Kind kind, const void* ptr, std::string name, Labels labels,
           const void* owner);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace tts::obs
