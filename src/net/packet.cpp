// PacketWriter/PacketReader are fully inline; this TU exists so the module
// has a home for future out-of-line additions and to anchor the vtable-free
// ParseError type in one object file.
#include "net/packet.hpp"

namespace tts::net {}
