#include <gtest/gtest.h>

#include "net/mac.hpp"
#include "net/oui_db.hpp"
#include "util/rng.hpp"

namespace tts::net {
namespace {

TEST(Mac, ParseAndFormat) {
  auto m = MacAddress::parse("00:1a:4f:12:34:56");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->to_string(), "00:1a:4f:12:34:56");
  EXPECT_EQ(m->oui(), 0x001A4Fu);
  auto dash = MacAddress::parse("00-1A-4F-12-34-56");
  ASSERT_TRUE(dash);
  EXPECT_EQ(*dash, *m);
}

TEST(Mac, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse(""));
  EXPECT_FALSE(MacAddress::parse("00:1a:4f:12:34"));
  EXPECT_FALSE(MacAddress::parse("00:1a:4f:12:34:56:78"));
  EXPECT_FALSE(MacAddress::parse("0g:1a:4f:12:34:56"));
  EXPECT_FALSE(MacAddress::parse("001a4f123456x"));
}

TEST(Mac, FlagBits) {
  auto global = MacAddress::from_u64(0x001A4F123456ULL);
  EXPECT_FALSE(global.locally_administered());
  EXPECT_FALSE(global.multicast());
  auto local = MacAddress::from_u64(0x021A4F123456ULL);
  EXPECT_TRUE(local.locally_administered());
  auto mcast = MacAddress::from_u64(0x011A4F123456ULL);
  EXPECT_TRUE(mcast.multicast());
}

TEST(Eui64, KnownExpansion) {
  // RFC 4291 Appendix A example: 34-56-78-9A-BC-DE ->
  // 3656:78ff:fe9a:bcde (U/L bit flipped: 0x34 ^ 0x02 = 0x36).
  auto mac = *MacAddress::parse("34:56:78:9a:bc:de");
  EXPECT_EQ(eui64_iid_from_mac(mac), 0x365678fffe9abcdeULL);
}

TEST(Eui64, RoundTripsRandomMacs) {
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    MacAddress mac = MacAddress::from_u64(rng.below(1ULL << 48));
    std::uint64_t iid = eui64_iid_from_mac(mac);
    EXPECT_TRUE(iid_looks_like_eui64(iid));
    auto back = mac_from_eui64_iid(iid);
    ASSERT_TRUE(back);
    EXPECT_EQ(*back, mac);
  }
}

TEST(Eui64, MarkerDetection) {
  EXPECT_TRUE(iid_looks_like_eui64(0x021a4ffffe123456ULL));
  EXPECT_FALSE(iid_looks_like_eui64(0x021a4ffeff123456ULL));
  EXPECT_FALSE(iid_looks_like_eui64(0));
  EXPECT_FALSE(mac_from_eui64_iid(0x1234567890abcdefULL));
}

TEST(Eui64, ExtractFromAddress) {
  auto mac = *MacAddress::parse("00:1a:4f:aa:bb:cc");
  Ipv6Address addr = Ipv6Address::from_halves(0x20010db800000000ULL,
                                              eui64_iid_from_mac(mac));
  auto extracted = extract_mac(addr);
  ASSERT_TRUE(extracted);
  EXPECT_EQ(*extracted, mac);
  // Privacy-style IID yields nothing.
  EXPECT_FALSE(extract_mac(addr.with_iid(0xdeadbeefcafef00dULL)));
}

TEST(OuiDb, BuiltinLookups) {
  const auto& db = OuiDatabase::builtin();
  auto avm = db.lookup(0x001A4F);
  ASSERT_TRUE(avm);
  EXPECT_NE(avm->find("AVM"), std::string_view::npos);
  EXPECT_FALSE(db.lookup(0xFFFFFF));
  EXPECT_GT(db.size(), 30u);
  // Multiple OUIs per vendor resolve.
  auto ouis = db.ouis_for("Raspberry Pi Foundation");
  EXPECT_EQ(ouis.size(), 1u);
}

TEST(OuiDb, ClassifyEmbedding) {
  const auto& db = OuiDatabase::builtin();
  auto base = Ipv6Address::from_halves(0x24000001000000ULL << 8, 0);

  // Listed vendor MAC with the unique bit.
  auto listed = *MacAddress::parse("00:1a:4f:01:02:03");
  EXPECT_EQ(db.classify(base.with_iid(eui64_iid_from_mac(listed))),
            MacEmbedding::kGlobalListed);

  // Unlisted vendor-style MAC.
  auto unlisted = *MacAddress::parse("f8:99:aa:01:02:03");
  EXPECT_EQ(db.classify(base.with_iid(eui64_iid_from_mac(unlisted))),
            MacEmbedding::kGlobalUnlisted);

  // Locally administered (randomised) MAC.
  auto local = *MacAddress::parse("02:99:aa:01:02:03");
  EXPECT_EQ(db.classify(base.with_iid(eui64_iid_from_mac(local))),
            MacEmbedding::kLocal);

  // No marker at all.
  EXPECT_EQ(db.classify(base.with_iid(0x1234567890abcdefULL)),
            MacEmbedding::kNone);
}

TEST(OuiDb, CustomDatabase) {
  OuiDatabase db;
  db.add(0xAABBCC, "TestVendor");
  EXPECT_EQ(db.lookup(0xAABBCC).value_or(""), "TestVendor");
  db.add(0xAABBCC, "Renamed");
  EXPECT_EQ(db.lookup(0xAABBCC).value_or(""), "Renamed");
  EXPECT_EQ(db.size(), 1u);
}

}  // namespace
}  // namespace tts::net
