// The headline security comparison (abstract / Section 4.4 takeaway):
// "only 28.4 % of 73 975 NTP-sourced SSH and IoT-related hosts appear to be
// securely configured, compared to 43.5 % of 854 704 hosts in the hitlist".
//
// A host unit is a distinct SSH host key or a distinct MQTT/AMQP broker
// certificate. A unit counts as secure when:
//   - SSH: the banner is Debian-derived and carries the latest patch level
//     (non-assessable banners count as units but not as secure — the
//     conservative reading the paper's aggregate implies), or
//   - broker: access control is enforced on every observed port.
#pragma once

#include <cstdint>

#include "scan/results.hpp"

namespace tts::analysis {

struct SecurityScore {
  std::uint64_t ssh_hosts = 0;
  std::uint64_t ssh_secure = 0;
  std::uint64_t mqtt_hosts = 0;
  std::uint64_t mqtt_secure = 0;
  std::uint64_t amqp_hosts = 0;
  std::uint64_t amqp_secure = 0;

  std::uint64_t total_hosts() const {
    return ssh_hosts + mqtt_hosts + amqp_hosts;
  }
  std::uint64_t total_secure() const {
    return ssh_secure + mqtt_secure + amqp_secure;
  }
  double secure_share() const {
    return total_hosts() == 0
               ? 0.0
               : static_cast<double>(total_secure()) /
                     static_cast<double>(total_hosts());
  }
};

SecurityScore security_score(const scan::ResultStore& results,
                             scan::Dataset dataset);

}  // namespace tts::analysis
