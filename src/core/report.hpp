// StudyReport: every paper artefact as one structured value.
//
// The bench binaries print individual tables; downstream users of the
// library usually want the whole picture at once. build_report() runs all
// analyses over a finished Study and returns plain data; render_markdown()
// turns it into a shareable document.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/broker_analysis.hpp"
#include "analysis/fingerprint.hpp"
#include "analysis/iid_classes.hpp"
#include "analysis/network_agg.hpp"
#include "analysis/security_score.hpp"
#include "analysis/ssh_analysis.hpp"
#include "core/study.hpp"

namespace tts::core {

struct DatasetScanSummary {
  std::string dataset;
  // Per Table 2: unique responsive addresses / TLS addresses / unique
  // certs-or-keys, in protocol order HTTP, SSH, MQTT, AMQP, CoAP.
  struct Row {
    std::string protocol;
    std::uint64_t addresses = 0;
    std::uint64_t tls_addresses = 0;
    std::uint64_t certs_or_keys = 0;
  };
  std::vector<Row> rows;
};

struct TitleGroupEntry {
  std::string title;
  std::uint64_t ntp = 0;
  std::uint64_t hitlist = 0;
};

struct StudyReport {
  // Collection (Tables 1/7, Section 3)
  std::uint64_t collected_addresses = 0;
  std::uint64_t ntp_requests = 0;
  analysis::NetworkAggregates ntp_aggregates;
  analysis::NetworkAggregates hitlist_full_aggregates;
  double median_ips_per_48_ntp = 0;
  double median_ips_per_48_hitlist = 0;
  std::vector<std::pair<std::string, std::uint64_t>> per_server;

  // Figure 1
  analysis::IidDistribution ntp_iids;
  analysis::IidDistribution hitlist_iids;
  double ntp_eyeball_share = 0;
  double hitlist_eyeball_share = 0;

  // Table 2
  DatasetScanSummary ntp_scans;
  DatasetScanSummary hitlist_scans;

  // Table 3 (top HTTP title groups by certificate)
  std::vector<TitleGroupEntry> title_groups;

  // Figures 2/3 + headline
  analysis::OutdatednessStats ntp_ssh_outdated;
  analysis::OutdatednessStats hitlist_ssh_outdated;
  analysis::AccessControlStats ntp_mqtt_auth;
  analysis::AccessControlStats hitlist_mqtt_auth;
  analysis::SecurityScore ntp_security;
  analysis::SecurityScore hitlist_security;

  // Extension
  analysis::HostBounds ntp_host_bounds;

  // Section 5
  telescope::ClassifierReport telescope;

  double hit_rate = 0;
};

/// Run all analyses over a finished study.
StudyReport build_report(const Study& study);

/// Render the report as GitHub-flavoured markdown.
std::string render_markdown(const StudyReport& report);

}  // namespace tts::core
