// Sharded simulation primitives: the domain/shard split and the routed-
// prefix partition of the synthetic Internet.
//
// A *domain* is the unit of sequential execution and of determinism: every
// event runs inside exactly one domain, and everything a domain touches is
// (by construction) owned by that domain. Domains are assigned by content —
// one per origin AS plus domain 0 for infrastructure — so the domain of an
// address never depends on how many shards a run uses. A *shard* is the
// unit of parallelism: shard = domain % shards, a pure thread-placement
// decision that is invisible to event keys, RNG streams, and therefore to
// every digest (the contract the shard_equivalence harness enforces).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/ipv6.hpp"
#include "net/routing_table.hpp"
#include "simnet/time.hpp"

namespace tts::simnet {

/// Identifies a deterministic execution domain. Domain 0 is the
/// infrastructure/default domain (collector, scan engines, pool servers).
using DomainId = std::uint32_t;

/// How a run is sharded. Default-constructed (shards == 0) means legacy
/// single-queue execution — the mode every pre-existing test runs in.
struct ShardPlan {
  /// Number of parallel event queues; 0 = unsharded legacy mode.
  std::uint32_t shards = 0;
  /// Worker threads; 0 = min(shards, hardware_concurrency). A resolved
  /// value of <= 1 executes shards serially on the driving thread, with
  /// results identical to any parallel schedule.
  std::uint32_t workers = 0;
  /// Conservative lookahead: every cross-domain event must be scheduled at
  /// least this far in the future. 0 = the caller derives it (the Study
  /// uses the network's minimum one-way latency).
  SimDuration lookahead = 0;
};

/// Routed-prefix partition: address -> domain. Longest-prefix match over
/// announced prefixes, with exact-address pins overriding (infrastructure
/// addresses carved out of AS space but driven by domain-0 subsystems),
/// and domain 0 as the default for unrouted space (e.g. the telescope).
class ShardMap {
 public:
  /// Pin one exact address to a domain (wins over any prefix).
  void pin(const net::Ipv6Address& addr, DomainId domain);
  /// Map every address under `prefix` to `domain` (longest prefix wins).
  void map_prefix(const net::Ipv6Prefix& prefix, DomainId domain);

  DomainId domain_of(const net::Ipv6Address& addr) const;

  /// 1 + highest domain id ever assigned (>= 1: domain 0 always exists).
  DomainId domain_count() const { return count_; }

 private:
  void note(DomainId domain) {
    if (domain + 1 > count_) count_ = domain + 1;
  }

  std::unordered_map<net::Ipv6Address, DomainId, net::Ipv6AddressHash> pins_;
  net::RoutingTable table_;
  DomainId count_ = 1;
};

}  // namespace tts::simnet
