// Shared pacing budget across scan engines.
//
// The paper's scanner shares one uplink between the real-time NTP feed and
// the hitlist sweep (Section 3); the aggregate send rate is what passive
// observers see and classify, so it must be a first-class invariant rather
// than an emergent property of per-engine token buckets. SharedBudget is
// that single token source: clients (scan engines) register with a weight,
// and tokens are granted by start-time fair queuing over the *backlogged*
// clients, which makes the budget
//
//   - work-conserving: an idle client's share is lendable — the sole busy
//     client takes every token (counted in scan_budget_borrowed_slots);
//   - weighted: under saturation, grants converge to the configured weight
//     ratios (each client's virtual finish tag advances by 1/weight per
//     grant, and the smallest start tag wins the next token);
//   - promptly reclaimable: a client going idle->busy re-enters at the
//     current virtual time (no credit for the idle period, no banked debt
//     against it), so its first grant arrives within about one token gap —
//     scan_budget_reclaim_us measures the realized latency.
//
// Tokens accrue one global gap (1e6/max_pps us) apart and at most
// burst_slots gaps' worth may be banked; older tokens evaporate. The bank
// is what lets a pump wake once per batch instead of once per grant (see
// ScanEngine's coalesced pump) while bounding any burst to burst_slots + 1
// launches.
//
// Clients pull: try_acquire() consumes a token or refuses (token not yet
// accrued, or a backlogged peer's turn), suggested_wake() says when to try
// again, and the budget nudges armed-and-waiting peers via their WakeFn
// when capacity frees up early (a peer drained or deregistered).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "simnet/time.hpp"

namespace tts::scan {

struct SharedBudgetConfig {
  /// Aggregate probe budget per second of virtual time, across all clients.
  double max_pps = 2000;
  /// Token gaps' worth of unused capacity that may be banked (and thus the
  /// largest burst a single wake may launch, minus one).
  std::int64_t burst_slots = 2;
  /// Export per-client instruments (scan_budget_grants,
  /// scan_budget_borrowed_slots, scan_budget_reclaim_us, labelled
  /// client=<name>); must outlive the budget. Optional.
  obs::Registry* registry = nullptr;
};

class SharedBudget {
 public:
  using ClientId = std::size_t;
  /// Nudge: the client's earliest acquirable slot moved earlier (a peer
  /// drained or left); re-arm the pump.
  using WakeFn = std::function<void()>;
  /// Observer invoked on every grant: client, the consumed token's accrual
  /// time (slot <= at), and the grant time. Test harnesses and send-log
  /// style instrumentation hook here.
  using GrantFn = std::function<void(ClientId id, simnet::SimTime slot,
                                     simnet::SimTime at)>;

  /// Throws std::invalid_argument on non-positive max_pps or negative
  /// burst_slots.
  explicit SharedBudget(SharedBudgetConfig config);
  ~SharedBudget();

  SharedBudget(const SharedBudget&) = delete;
  SharedBudget& operator=(const SharedBudget&) = delete;

  /// Register a client. Weight must be positive; ties in the fair-queue
  /// arbitration break towards earlier registrations. The WakeFn may be
  /// empty for clients that poll anyway (tests).
  ClientId add_client(std::string name, double weight, WakeFn wake = {});
  /// Deregister: drops the client's instruments and wakes waiting peers.
  void remove_client(ClientId id);

  /// Declare whether `id` has due work blocked only on tokens. Accurate
  /// flags are what peers' fair shares are computed against; a client that
  /// sets true must keep pumping (acquire or re-flag) until it sets false.
  void set_backlog(ClientId id, bool backlogged, simnet::SimTime now);

  /// Consume one token at `now`. Returns the token's accrual time
  /// (in (now - burst_slots * gap, now]), or nullopt when the next token
  /// has not accrued yet or a backlogged peer with an earlier fair-queue
  /// tag owns it.
  std::optional<simnet::SimTime> try_acquire(ClientId id, simnet::SimTime now);

  /// Earliest future time a try_acquire(id) could succeed given current
  /// state (>= now). Peers' grants can move it later; set_backlog(false) /
  /// remove_client move it earlier and fire the waiters' WakeFns.
  simnet::SimTime next_slot(ClientId id, simnet::SimTime now) const;
  /// next_slot(), plus the burst-bank slack when no backlogged peer is
  /// contending: an uncontended pump may oversleep by burst_slots gaps and
  /// launch the banked batch in one wake (the coalescing that cuts pump
  /// event counts); a contended pump must not, or banked tokens would
  /// evaporate unused.
  simnet::SimTime suggested_wake(ClientId id, simnet::SimTime now) const;

  simnet::SimDuration gap() const { return gap_; }
  double max_pps() const { return config_.max_pps; }
  std::int64_t burst_slots() const { return config_.burst_slots; }

  std::size_t clients() const { return clients_.size(); }
  std::uint64_t grants(ClientId id) const { return clients_[id]->grants.value(); }
  /// Grants taken beyond the client's contended share while some peer was
  /// idle — lent capacity actually used.
  std::uint64_t borrowed(ClientId id) const {
    return clients_[id]->borrowed.value();
  }
  /// Virtual-time latency from a client turning busy (set_backlog true) to
  /// its first grant.
  const obs::Histogram& reclaim(ClientId id) const {
    return clients_[id]->reclaim;
  }

  void set_grant_observer(GrantFn fn) { on_grant_ = std::move(fn); }

 private:
  struct Client {
    std::string name;
    double weight = 1.0;
    WakeFn wake;
    bool active = false;
    bool backlogged = false;
    /// SFQ finish tag: advances 1/weight per grant; max(finish, vtime_) is
    /// the start tag arbitration compares.
    double finish = 0.0;
    /// Time the client turned busy; -1 when idle or already served.
    simnet::SimTime wanted_since = -1;
    obs::Counter grants;
    obs::Counter borrowed;
    obs::Histogram reclaim{obs::Histogram::exponential(100, 4.0, 12)};
  };

  double start_tag(const Client& c) const {
    return c.finish > vtime_ ? c.finish : vtime_;
  }
  /// True when a backlogged peer of `id` holds an earlier (winning) tag.
  bool deferred_to_peer(ClientId id) const;
  void wake_waiting_peers(ClientId except);

  SharedBudgetConfig config_;
  /// Whole-microsecond floor of the exact token gap 1e6/max_pps.
  simnet::SimDuration gap_;
  /// Fractional gap remainder in 2^-32 us units, error-fed into frac_acc_
  /// per grant: each carry out of the low 32 bits stretches that step by
  /// 1 us, so the long-run grant rate equals max_pps exactly even for
  /// non-divisor rates (no floats in the steady state).
  std::uint64_t frac_step_ = 0;
  std::uint64_t frac_acc_ = 0;
  /// Accrual time of the next unconsumed token (tokens older than
  /// burst_slots gaps evaporate — the bank floor is now - burst*gap).
  simnet::SimTime next_accrual_ = 0;
  /// SFQ virtual time: start tag of the last granted token. Freshly busy
  /// clients re-enter here, which is exactly the no-banked-credit rule.
  double vtime_ = 0.0;
  std::vector<std::unique_ptr<Client>> clients_;
  GrantFn on_grant_;
};

}  // namespace tts::scan
