#include "analysis/fingerprint.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/mac.hpp"

namespace tts::analysis {

namespace {

class UnionFind {
 public:
  std::size_t make() {
    parent_.push_back(parent_.size());
    return parent_.size() - 1;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }
  std::size_t components() {
    std::unordered_set<std::size_t> roots;
    for (std::size_t i = 0; i < parent_.size(); ++i) roots.insert(find(i));
    return roots.size();
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

HostBounds estimate_hosts(const scan::ResultStore& results,
                          scan::Dataset dataset,
                          const inet::AsRegistry& registry) {
  // One observation per (address, key-ish signal source).
  struct Observation {
    net::Ipv6Address addr;
    std::uint64_t key = 0;  // cert fingerprint or host key; 0 = none
  };
  std::vector<Observation> observations;
  std::unordered_map<net::Ipv6Address, std::size_t, net::Ipv6AddressHash>
      node_of_addr;

  auto note = [&](const net::Ipv6Address& addr, std::uint64_t key) {
    observations.push_back({addr, key});
  };
  for (auto proto : {scan::Protocol::kHttp, scan::Protocol::kHttps,
                     scan::Protocol::kSsh}) {
    for (const auto* r : results.successes(dataset, proto)) {
      std::uint64_t key = 0;
      if (r->certificate) key = r->certificate->fingerprint;
      if (r->ssh_hostkey) key = *r->ssh_hostkey;
      note(r->target, key);
    }
  }

  // Key spread: a key seen in more than two ASes is considered reused
  // firmware/image material (Section 6) — a weak identity signal.
  std::unordered_map<std::uint64_t, std::unordered_set<net::AsNumber>>
      key_ases;
  for (const auto& obs : observations) {
    if (!obs.key) continue;
    if (const inet::AsInfo* as = registry.origin(obs.addr))
      key_ases[obs.key].insert(as->number);
  }
  auto weak = [&](std::uint64_t key) {
    auto it = key_ases.find(key);
    return it != key_ases.end() && it->second.size() > 2;
  };

  auto run = [&](bool signal_aware) {
    UnionFind uf;
    node_of_addr.clear();
    auto node = [&](const net::Ipv6Address& a) {
      auto [it, inserted] = node_of_addr.emplace(a, 0);
      if (inserted) it->second = uf.make();
      return it->second;
    };
    // Pass 1: nodes per address; merge by embedded unique-bit MAC (strong:
    // survives prefix rotation).
    std::unordered_map<net::MacAddress, std::size_t, net::MacAddressHash>
        mac_node;
    for (const auto& obs : observations) {
      std::size_t n = node(obs.addr);
      if (auto mac = net::extract_mac(obs.addr);
          mac && !mac->locally_administered()) {
        auto [it, inserted] = mac_node.emplace(*mac, n);
        if (!inserted) uf.unite(n, it->second);
      }
    }
    // Pass 2: merge by key — globally for strong keys; within a /48 for
    // weak (reused) keys in the signal-aware run.
    std::unordered_map<std::uint64_t, std::size_t> key_node;
    std::unordered_map<std::uint64_t, std::size_t> site_key_node;
    for (const auto& obs : observations) {
      if (!obs.key) continue;
      std::size_t n = node(obs.addr);
      if (signal_aware && weak(obs.key)) {
        std::uint64_t site =
            obs.key ^ (net::Ipv6PrefixHash{}(net::Ipv6Prefix(obs.addr, 48)) *
                       0x9e3779b97f4a7c15ULL);
        auto [it, inserted] = site_key_node.emplace(site, n);
        if (!inserted) uf.unite(n, it->second);
      } else {
        auto [it, inserted] = key_node.emplace(obs.key, n);
        if (!inserted) uf.unite(n, it->second);
      }
    }
    return uf.components();
  };

  HostBounds bounds;
  {
    std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> addrs;
    for (const auto& obs : observations) addrs.insert(obs.addr);
    bounds.upper = addrs.size();
  }
  bounds.lower = run(/*signal_aware=*/false);
  bounds.estimate = run(/*signal_aware=*/true);
  return bounds;
}

}  // namespace tts::analysis
