#include "scan/results.hpp"

#include "proto/ports.hpp"
#include "util/serialize.hpp"

namespace tts::scan {

std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::kHttp: return "HTTP";
    case Protocol::kHttps: return "HTTPS";
    case Protocol::kSsh: return "SSH";
    case Protocol::kMqtt: return "MQTT";
    case Protocol::kMqtts: return "MQTTS";
    case Protocol::kAmqp: return "AMQP";
    case Protocol::kAmqps: return "AMQPS";
    case Protocol::kCoap: return "CoAP";
  }
  return "?";
}

std::string_view label(Protocol p) {
  switch (p) {
    case Protocol::kHttp: return "http";
    case Protocol::kHttps: return "https";
    case Protocol::kSsh: return "ssh";
    case Protocol::kMqtt: return "mqtt";
    case Protocol::kMqtts: return "mqtts";
    case Protocol::kAmqp: return "amqp";
    case Protocol::kAmqps: return "amqps";
    case Protocol::kCoap: return "coap";
  }
  return "?";
}

std::uint16_t port_of(Protocol p) {
  switch (p) {
    case Protocol::kHttp: return proto::kHttpPort;
    case Protocol::kHttps: return proto::kHttpsPort;
    case Protocol::kSsh: return proto::kSshPort;
    case Protocol::kMqtt: return proto::kMqttPort;
    case Protocol::kMqtts: return proto::kMqttsPort;
    case Protocol::kAmqp: return proto::kAmqpPort;
    case Protocol::kAmqps: return proto::kAmqpsPort;
    case Protocol::kCoap: return proto::kCoapPort;
  }
  return 0;
}

bool is_tls(Protocol p) {
  return p == Protocol::kHttps || p == Protocol::kMqtts ||
         p == Protocol::kAmqps;
}

std::string_view to_string(Dataset d) {
  switch (d) {
    case Dataset::kNtp: return "Our Data";
    case Dataset::kHitlist: return "TUM IPv6 Hitlist";
    case Dataset::kRyeLevin: return "Rye and Levin";
  }
  return "?";
}

std::string_view label(Dataset d) {
  switch (d) {
    case Dataset::kNtp: return "ntp";
    case Dataset::kHitlist: return "hitlist";
    case Dataset::kRyeLevin: return "rye-levin";
  }
  return "?";
}

std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::kSuccess: return "success";
    case Outcome::kRefused: return "refused";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kTlsFailed: return "tls-failed";
    case Outcome::kMalformed: return "malformed";
  }
  return "?";
}

void ResultStore::add(ScanRecord record) {
  ++counts_[static_cast<std::size_t>(record.dataset)]
           [static_cast<std::size_t>(record.protocol)]
           [static_cast<std::size_t>(record.outcome)];
  if (record.outcome == Outcome::kSuccess)
    records_.push_back(std::move(record));
}

std::vector<const ScanRecord*> ResultStore::successes(
    Dataset dataset, Protocol protocol) const {
  std::vector<const ScanRecord*> out;
  for (const auto& r : records_)
    if (r.dataset == dataset && r.protocol == protocol) out.push_back(&r);
  return out;
}

std::uint64_t ResultStore::count(Dataset dataset, Protocol protocol,
                                 Outcome outcome) const {
  return counts_[static_cast<std::size_t>(dataset)]
                [static_cast<std::size_t>(protocol)]
                [static_cast<std::size_t>(outcome)];
}

std::uint64_t ResultStore::total(Dataset dataset, Protocol protocol) const {
  std::uint64_t n = 0;
  for (std::size_t o = 0; o < kOutcomeCount; ++o)
    n += counts_[static_cast<std::size_t>(dataset)]
                [static_cast<std::size_t>(protocol)][o];
  return n;
}

std::uint64_t ResultStore::total(Dataset dataset) const {
  std::uint64_t n = 0;
  for (std::size_t p = 0; p < kProtocolCount; ++p)
    n += total(dataset, static_cast<Protocol>(p));
  return n;
}

namespace {

void save_record(util::ByteWriter& w, const ScanRecord& r) {
  w.u8(static_cast<std::uint8_t>(r.dataset));
  w.u8(static_cast<std::uint8_t>(r.protocol));
  w.u64(r.target.hi64());
  w.u64(r.target.lo64());
  w.i64(r.at);
  w.u8(static_cast<std::uint8_t>(r.outcome));
  w.u8(r.certificate.has_value() ? 1 : 0);
  if (r.certificate) {
    w.u64(r.certificate->fingerprint);
    w.str(r.certificate->subject);
    w.u8(r.certificate->self_signed ? 1 : 0);
    w.u32(r.certificate->not_before);
    w.u32(r.certificate->not_after);
  }
  w.i64(r.http_status);
  w.str(r.http_title);
  w.u8(r.http_has_title ? 1 : 0);
  w.str(r.http_server);
  w.str(r.ssh_banner);
  w.u8(r.ssh_hostkey.has_value() ? 1 : 0);
  if (r.ssh_hostkey) w.u64(*r.ssh_hostkey);
  w.u8(r.broker_auth_required.has_value()
           ? (*r.broker_auth_required ? 2 : 1)
           : 0);
  w.u32(static_cast<std::uint32_t>(r.coap_resources.size()));
  for (const auto& res : r.coap_resources) w.str(res);
}

ScanRecord load_record(util::ByteReader& rd) {
  ScanRecord r;
  r.dataset = static_cast<Dataset>(rd.u8());
  r.protocol = static_cast<Protocol>(rd.u8());
  std::uint64_t hi = rd.u64();
  std::uint64_t lo = rd.u64();
  r.target = net::Ipv6Address::from_halves(hi, lo);
  r.at = rd.i64();
  r.outcome = static_cast<Outcome>(rd.u8());
  if (rd.u8()) {
    proto::Certificate cert;
    cert.fingerprint = rd.u64();
    cert.subject = rd.str();
    cert.self_signed = rd.u8() != 0;
    cert.not_before = rd.u32();
    cert.not_after = rd.u32();
    r.certificate = std::move(cert);
  }
  r.http_status = static_cast<int>(rd.i64());
  r.http_title = rd.str();
  r.http_has_title = rd.u8() != 0;
  r.http_server = rd.str();
  r.ssh_banner = rd.str();
  if (rd.u8()) r.ssh_hostkey = rd.u64();
  std::uint8_t broker = rd.u8();
  if (broker) r.broker_auth_required = broker == 2;
  std::uint32_t ncoap = rd.u32();
  r.coap_resources.reserve(ncoap);
  for (std::uint32_t i = 0; i < ncoap; ++i)
    r.coap_resources.push_back(rd.str());
  return r;
}

}  // namespace

void ResultStore::save_state(util::ByteWriter& w) const {
  for (std::size_t d = 0; d < kDatasetCount; ++d)
    for (std::size_t p = 0; p < kProtocolCount; ++p)
      for (std::size_t o = 0; o < kOutcomeCount; ++o) w.u64(counts_[d][p][o]);
  w.u32(static_cast<std::uint32_t>(records_.size()));
  for (const auto& r : records_) save_record(w, r);
}

ResultStore ResultStore::decode_state(util::ByteReader& r) {
  ResultStore store;
  for (std::size_t d = 0; d < kDatasetCount; ++d)
    for (std::size_t p = 0; p < kProtocolCount; ++p)
      for (std::size_t o = 0; o < kOutcomeCount; ++o)
        store.counts_[d][p][o] = r.u64();
  std::uint32_t n = r.u32();
  store.records_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    store.records_.push_back(load_record(r));
  return store;
}

}  // namespace tts::scan
