# Run clang-tidy over src/ using the build tree's compile_commands.json.
# Invoked as a ctest (lint.clang_tidy); fails on any warning.
file(GLOB_RECURSE TIDY_SOURCES "${SOURCE_DIR}/src/*.cpp")
list(SORT TIDY_SOURCES)

set(failed 0)
foreach(source IN LISTS TIDY_SOURCES)
  execute_process(
    COMMAND "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet
            --warnings-as-errors=* "${source}"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE errout)
  if(NOT result EQUAL 0)
    message(STATUS "clang-tidy: ${source}")
    message(STATUS "${output}")
    set(failed 1)
  endif()
endforeach()

if(failed)
  message(FATAL_ERROR "clang-tidy reported warnings")
endif()
