#include "scan/engine.hpp"

#include <cmath>

namespace tts::scan {

ScanEngine::ScanEngine(simnet::Network& network, ResultStore& results,
                       ScanEngineConfig config)
    : network_(network),
      results_(results),
      config_(std::move(config)),
      rng_(config_.seed) {
  network_.attach(config_.scanner_address);
  scanners_.push_back(make_http_scanner(false, config_.sni));
  scanners_.push_back(make_http_scanner(true, config_.sni));
  scanners_.push_back(make_ssh_scanner());
  scanners_.push_back(make_mqtt_scanner(false, config_.sni));
  scanners_.push_back(make_mqtt_scanner(true, config_.sni));
  scanners_.push_back(make_amqp_scanner(false, config_.sni));
  scanners_.push_back(make_amqp_scanner(true, config_.sni));
  scanners_.push_back(make_coap_scanner());
}

ScanEngine::~ScanEngine() { network_.detach(config_.scanner_address); }

simnet::SimTime ScanEngine::allocate_slot() {
  auto gap = static_cast<simnet::SimDuration>(1e6 / config_.max_pps);
  if (gap < 1) gap = 1;
  simnet::SimTime now = network_.now();
  if (next_token_ < now) next_token_ = now;
  next_token_ += gap;
  return next_token_;
}

bool ScanEngine::submit(const net::Ipv6Address& target) {
  simnet::SimTime now = network_.now();
  auto it = last_scan_.find(target);
  if (it != last_scan_.end() && now - it->second < config_.rescan_blackout) {
    ++skipped_blackout_;
    return false;
  }
  last_scan_[target] = now;
  ++submitted_;

  // One token per protocol probe, plus the staggered inter-protocol delay
  // (Appendix A.2.1: 10 s to 10 min between protocols of one target).
  simnet::SimDuration stagger = 0;
  for (const auto& scanner : scanners_) {
    simnet::SimTime at = allocate_slot() + stagger;
    pending_.push(Pending{at, scanner->protocol(), target});
    stagger += config_.min_protocol_delay +
               static_cast<simnet::SimDuration>(rng_.below(
                   static_cast<std::uint64_t>(config_.max_protocol_delay -
                                              config_.min_protocol_delay)));
  }
  arm_pump();
  return true;
}

void ScanEngine::submit_bulk(const std::vector<net::Ipv6Address>& targets) {
  for (const auto& t : targets) submit(t);
}

void ScanEngine::arm_pump() {
  if (pump_armed_ || pending_.empty()) return;
  pump_armed_ = true;
  simnet::SimTime next = pending_.top().at;
  network_.events().schedule_at(next, [this] {
    pump_armed_ = false;
    pump();
  });
}

void ScanEngine::pump() {
  // Launch everything due within the next pump window; keeping the window
  // short bounds the number of in-flight probe closures.
  simnet::SimTime horizon = network_.now() + kPumpWindow;
  while (!pending_.empty() && pending_.top().at <= horizon) {
    Pending p = pending_.top();
    pending_.pop();
    launch(p.protocol, p.target, p.at);
  }
  arm_pump();
}

void ScanEngine::launch(Protocol proto, const net::Ipv6Address& target,
                        simnet::SimTime at) {
  ProtocolScanner* scanner = nullptr;
  for (const auto& s : scanners_)
    if (s->protocol() == proto) scanner = s.get();
  if (!scanner) return;

  ++probes_launched_;
  auto src_port =
      static_cast<std::uint16_t>(1024 + (next_ephemeral_++ % 60000));

  network_.events().schedule_at(
      at, [this, scanner, proto, target, src_port] {
        ScanRecord base;
        base.dataset = config_.dataset;
        base.protocol = proto;
        base.target = target;
        base.at = network_.now();
        simnet::Endpoint src{config_.scanner_address, src_port};
        scanner->probe(network_, src, std::move(base), [this](ScanRecord r) {
          ++probes_completed_;
          results_.add(std::move(r));
        });
      });
}

}  // namespace tts::scan
