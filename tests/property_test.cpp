// Parameterised property sweeps (TEST_P) over the invariants the analyses
// rely on: IID classification boundaries, Levenshtein threshold geometry,
// NTP timestamp conversion across the whole study window, CoAP option
// encoding around its length boundaries, device-catalogue sanity, and the
// sharded event queue's conservative-barrier safety property.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "analysis/iid_classes.hpp"
#include "inet/device.hpp"
#include "net/ipv6.hpp"
#include "ntp/ntp_packet.hpp"
#include "proto/coap.hpp"
#include "simnet/event_queue.hpp"
#include "util/levenshtein.hpp"
#include "util/rng.hpp"

namespace tts {
namespace {

// ------------------------------------------------- IID class boundaries

struct IidCase {
  std::uint64_t iid;
  analysis::IidClass expected;
};

class IidBoundary : public ::testing::TestWithParam<IidCase> {};

TEST_P(IidBoundary, ClassifiesExactly) {
  auto addr =
      net::Ipv6Address::from_halves(0x2400000100000000ULL, GetParam().iid);
  EXPECT_EQ(analysis::classify_iid(addr), GetParam().expected)
      << std::hex << GetParam().iid;
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, IidBoundary,
    ::testing::Values(
        IidCase{0x0, analysis::IidClass::kZero},
        IidCase{0x1, analysis::IidClass::kLastByte},
        IidCase{0xff, analysis::IidClass::kLastByte},
        IidCase{0x100, analysis::IidClass::kLastTwoBytes},
        IidCase{0xffff, analysis::IidClass::kLastTwoBytes},
        // 0x10000 is past the structured range: entropy path. Seven zero
        // bytes + one set byte -> low entropy.
        IidCase{0x10000, analysis::IidClass::kEntropyLow},
        // EUI-64 marker beats entropy regardless of surrounding bytes.
        IidCase{0x021a4ffffe000001ULL, analysis::IidClass::kEui64},
        IidCase{0xfffffffffe123456ULL, analysis::IidClass::kEui64},
        // Fully random-looking: all-distinct bytes -> high entropy.
        IidCase{0x0123456789abcdefULL, analysis::IidClass::kEntropyHigh}));

// -------------------------------------- Levenshtein threshold geometry

struct ThresholdCase {
  const char* a;
  const char* b;
  double threshold;
  bool within;
};

class LevenshteinThreshold
    : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(LevenshteinThreshold, MatchesExactComputation) {
  const auto& p = GetParam();
  EXPECT_EQ(util::within_normalized_distance(p.a, p.b, p.threshold),
            p.within)
      << p.a << " vs " << p.b;
  // The predicate must agree with the exact normalised distance.
  double exact = util::normalized_levenshtein(p.a, p.b);
  EXPECT_EQ(exact <= p.threshold + 1e-12 ||
                util::within_normalized_distance(p.a, p.b, p.threshold) ==
                    (exact <= p.threshold),
            true);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LevenshteinThreshold,
    ::testing::Values(
        // The paper's 0.25 threshold on typical title pairs.
        ThresholdCase{"FRITZ!Box 7590", "FRITZ!Box 7530", 0.25, true},
        ThresholdCase{"FRITZ!Box", "FRITZ!Repeater 6000", 0.25, false},
        ThresholdCase{"3CX Webclient", "3CX Phone System Mgmt.", 0.25,
                      false},
        ThresholdCase{"abcd", "abce", 0.25, true},   // 1/4 edit
        ThresholdCase{"abcd", "abef", 0.25, false},  // 2/4 edits
        ThresholdCase{"", "", 0.25, true},
        ThresholdCase{"x", "", 1.0, true},
        ThresholdCase{"x", "y", 0.99, false}));

// --------------------------------------- NTP timestamps across the window

class NtpTimestampSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(NtpTimestampSweep, RoundTripsWithinQuantum) {
  simnet::SimTime t = GetParam();
  auto ts = ntp::to_ntp_time(t);
  simnet::SimTime back = ntp::from_ntp_time(ts);
  EXPECT_NEAR(static_cast<double>(back), static_cast<double>(t), 1.0);
  // Monotonicity: one microsecond later never maps earlier.
  auto ts2 = ntp::to_ntp_time(t + 1);
  EXPECT_GE(ts2.to_u64(), ts.to_u64());
}

INSTANTIATE_TEST_SUITE_P(
    StudyWindow, NtpTimestampSweep,
    ::testing::Values(simnet::SimTime{0}, simnet::usec(1), simnet::sec(1),
                      simnet::minutes(90), simnet::hours(13),
                      simnet::days(1), simnet::days(7), simnet::days(28),
                      simnet::days(28) + simnet::usec(999999)));

// ----------------------------------- CoAP option length boundary encoding

class CoapSegmentLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CoapSegmentLength, RoundTripsAtBoundary) {
  // Option lengths 12/13/14 cross the extended-length encoding boundary.
  std::string segment(GetParam(), 's');
  proto::CoapMessage msg;
  msg.code = proto::kCoapGet;
  msg.message_id = 9;
  msg.uri_path = {segment, "x"};
  auto parsed = proto::CoapMessage::parse(msg.serialize());
  ASSERT_TRUE(parsed) << GetParam();
  ASSERT_EQ(parsed->uri_path.size(), 2u);
  EXPECT_EQ(parsed->uri_path[0], segment);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, CoapSegmentLength,
                         ::testing::Values(1, 11, 12, 13, 14, 20, 60));

// ----------------------------------------------- catalogue sanity sweeps

class CatalogueEntry : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CatalogueEntry, ProbabilitiesAndWeightsAreSane) {
  const auto& p = inet::device_catalogue().at(GetParam());
  SCOPED_TRACE(p.model);

  auto prob = [&](double v) { EXPECT_GE(v, 0.0); EXPECT_LE(v, 1.0); };
  EXPECT_GT(p.weight, 0.0);
  prob(p.http.enabled);
  prob(p.http.tls);
  prob(p.ssh.enabled);
  prob(p.ssh.outdated);
  prob(p.mqtt.enabled);
  prob(p.mqtt.tls);
  prob(p.mqtt.auth);
  prob(p.amqp.enabled);
  prob(p.amqp.tls);
  prob(p.amqp.auth);
  prob(p.coap.enabled);
  prob(p.ntp.uses_pool);
  prob(p.addr.vendor_mac);
  prob(p.addr.unlisted_oui);
  prob(p.addr.daily_prefix_change);
  prob(p.addr.daily_iid_change);
  prob(p.disc.dns);
  prob(p.disc.traceroute);
  EXPECT_GT(p.ntp.mean_interval_hours, 0.0);
  EXPECT_FALSE(p.model.empty());

  // EUI-64 devices that claim vendor MACs must offer candidate OUIs.
  if (p.addr.iid == inet::IidMode::kEui64 && p.addr.vendor_mac > 0 &&
      p.addr.unlisted_oui < 1.0) {
    EXPECT_FALSE(p.addr.ouis.empty());
  }
  // SSH-bearing profiles must reference a real lineage.
  if (p.ssh.enabled > 0) {
    EXPECT_FALSE(inet::ssh_version_lineage(p.ssh.os).empty());
  }
  // Country multipliers are non-negative.
  for (const auto& [code, mult] : p.country_mult) EXPECT_GE(mult, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, CatalogueEntry,
    ::testing::Range<std::size_t>(0, tts::inet::device_catalogue().size()));

// --------------------------------------- conservative barrier safety

// A randomized cross-domain message mesh on a raw sharded EventQueue.
// Chains of events hop between domains with latencies drawn from
// per-domain streams; every hop folds (domain clock, token, depth) into a
// per-domain accumulator. acc[d] and rngs[d] are touched only from events
// executing on domain d — domain-owned state, so the fold order is the
// domain's deterministic intra-domain execution order and the combined
// digest is a pure function of simulation content, never of thread
// interleaving or shard count.
constexpr simnet::SimDuration kMeshLookahead = simnet::msec(5);
constexpr simnet::DomainId kMeshDomains = 5;
constexpr int kMeshChains = 3;
constexpr int kMeshHops = 60;

struct MeshRun {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t windows = 0;
  std::uint64_t violations = 0;
};

MeshRun run_mesh(std::uint32_t shards, std::uint32_t workers,
                 simnet::SimDuration delay_floor, std::uint64_t seed) {
  simnet::EventQueue queue;
  simnet::ShardPlan plan;
  plan.shards = shards;
  plan.workers = workers;
  plan.lookahead = kMeshLookahead;
  queue.configure_shards(plan, kMeshDomains);

  std::vector<std::uint64_t> acc(kMeshDomains, 0);
  std::vector<util::Rng> rngs;
  for (simnet::DomainId d = 0; d < kMeshDomains; ++d)
    rngs.push_back(util::Rng(seed).stream("barrier-mesh").stream(d));

  std::function<void(simnet::DomainId, std::uint64_t, int)> hop =
      [&](simnet::DomainId d, std::uint64_t token, int depth) {
        simnet::SimTime now = queue.now();
        std::uint64_t& a = acc[d];
        a ^= token + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
        a = (a ^ (static_cast<std::uint64_t>(now) + depth)) *
            0x100000001b3ULL;
        if (depth >= kMeshHops) return;
        util::Rng& rng = rngs[d];
        auto next = static_cast<simnet::DomainId>(rng.below(kMeshDomains));
        auto jitter = static_cast<simnet::SimDuration>(
            rng.below(static_cast<std::uint64_t>(4 * kMeshLookahead)));
        std::uint64_t tok = token * 0xbf58476d1ce4e5b9ULL ^ next;
        queue.schedule_on(next, now + delay_floor + jitter, 0,
                          [&hop, next, tok, depth] {
                            hop(next, tok, depth + 1);
                          });
      };

  // Pre-run seeding (before the first window opens) is exempt from the
  // lookahead contract, so chains may start anywhere, on any domain.
  for (simnet::DomainId d = 0; d < kMeshDomains; ++d)
    for (int c = 0; c < kMeshChains; ++c)
      queue.schedule_on(d, /*at=*/c + 1, 0, [&hop, d, c, seed] {
        hop(d, seed ^ (d * 1000003ULL + c), 0);
      });
  queue.run();

  MeshRun out;
  for (simnet::DomainId d = 0; d < kMeshDomains; ++d)
    out.digest = (out.digest ^ acc[d]) * 0x100000001b3ULL;
  out.executed = queue.executed();
  out.windows = queue.shard_windows();
  out.violations = queue.shard_violations();
  return out;
}

// Every chain runs exactly kMeshHops + 1 events regardless of latencies.
constexpr std::uint64_t kMeshEvents =
    std::uint64_t{kMeshDomains} * kMeshChains * (kMeshHops + 1);

struct MeshConfig {
  std::uint32_t shards;
  std::uint32_t workers;
};

class BarrierMesh : public ::testing::TestWithParam<MeshConfig> {};

TEST_P(BarrierMesh, HonouredLookaheadMeansNoViolationsAndOneDigest) {
  const auto& p = GetParam();
  // Reference: the same mesh on a single windowed shard.
  MeshRun ref = run_mesh(1, 0, kMeshLookahead, 0xfeedULL);
  MeshRun run = run_mesh(p.shards, p.workers, kMeshLookahead, 0xfeedULL);

  EXPECT_EQ(run.executed, kMeshEvents);
  EXPECT_EQ(run.digest, ref.digest);
  EXPECT_EQ(run.windows, ref.windows);
  // Conservative safety: with every cross-domain delay >= the lookahead,
  // no event may ever land inside an already-committed window.
  EXPECT_EQ(run.violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(ShardSweep, BarrierMesh,
                         ::testing::Values(MeshConfig{1, 0},
                                           MeshConfig{2, 2},
                                           MeshConfig{3, 2},
                                           MeshConfig{4, 2},
                                           MeshConfig{5, 2}));

TEST(BarrierSafety, UndercutLookaheadIsCountedAndClamped) {
  // Latencies drawn below the configured lookahead: cross-domain events
  // land in committed windows. The queue must count every undercut and
  // clamp it forward — never drop it (all chains still run to depth).
  MeshRun run = run_mesh(4, 2, /*delay_floor=*/0, 0xfeedULL);
  EXPECT_GT(run.violations, 0u);
  EXPECT_EQ(run.executed, kMeshEvents);
}

// WILL_FAIL fixture (registered with --gtest_also_run_disabled_tests and
// WILL_FAIL TRUE in tests/CMakeLists.txt): asserts the *unsound* claim
// that an undercut lookahead is still violation-free. It must keep
// failing — if it ever passes, the violation detector has gone blind.
TEST(BarrierSafetyWillFail, DISABLED_ShortLookaheadHasNoViolations) {
  MeshRun run = run_mesh(4, 2, /*delay_floor=*/0, 0xfeedULL);
  EXPECT_EQ(run.violations, 0u);
}

}  // namespace
}  // namespace tts
