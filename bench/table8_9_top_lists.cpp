// Tables 8 and 9 (Appendix D): the extended top lists — HTML title groups
// by unique certificate and OS tokens from SSH banners by unique host key,
// with per-dataset shares, exactly as the appendix prints them.
#include <unordered_set>

#include "analysis/ssh_analysis.hpp"
#include "analysis/title_grouping.hpp"
#include "common.hpp"
#include "proto/sshwire.hpp"

using namespace tts;

namespace {

std::string share(std::uint64_t n, std::uint64_t total) {
  if (total == 0) return "0 (0.00 %)";
  return util::grouped(n) + " (" +
         util::percent(
             static_cast<double>(n) / static_cast<double>(total), 2) +
         ")";
}

}  // namespace

int main() {
  core::Study& study = bench::shared_study();
  const auto& results = study.results();

  // ---- Table 8: title groups by unique certificate fingerprint ----------
  std::vector<analysis::TitleObservation> obs;
  std::uint64_t ntp_total = 0, hit_total = 0;
  for (auto dataset : {scan::Dataset::kNtp, scan::Dataset::kHitlist}) {
    std::unordered_set<std::uint64_t> seen;
    for (const auto* r :
         results.successes(dataset, scan::Protocol::kHttps)) {
      if (r->http_status != 200 || !r->certificate) continue;
      if (!seen.insert(r->certificate->fingerprint).second) continue;
      obs.push_back({r->http_title, dataset, 1});
      (dataset == scan::Dataset::kNtp ? ntp_total : hit_total) += 1;
    }
  }
  auto groups = analysis::group_titles(obs);

  util::TextTable t8("Table 8: top extracted HTML title groups "
                     "(by unique certificate)");
  t8.set_header({"HTML title group", "Our Data", "TUM IPv6 Hitlist"});
  std::size_t shown = 0;
  for (const auto& g : groups) {
    if (shown++ >= 30) break;
    t8.add_row({g.representative.empty() ? "(empty)" : g.representative,
                share(g.ntp, ntp_total), share(g.hitlist, hit_total)});
  }
  t8.render(std::cout);
  std::cout << "\n";

  // ---- Table 9: OS tokens from SSH banners by unique host key ------------
  // The appendix extracts the raw token after the space (not just the four
  // distributions): tabulate every observed token.
  util::Counter<std::string> ntp_os, hit_os;
  for (auto dataset : {scan::Dataset::kNtp, scan::Dataset::kHitlist}) {
    auto hosts = analysis::dedup_ssh_hosts(results, dataset);
    for (const auto& h : hosts) {
      std::string software = proto::ssh_software(h.banner);
      std::size_t space = software.find(' ');
      std::string token = space == std::string::npos
                              ? "(empty)"
                              : software.substr(space + 1);
      std::size_t dash = token.find('-');
      if (dash != std::string::npos) token.resize(dash);
      (dataset == scan::Dataset::kNtp ? ntp_os : hit_os).add(token);
    }
  }

  util::TextTable t9("Table 9: top OS tokens from SSH server IDs "
                     "(by unique host key)");
  t9.set_header({"OS", "Our Data", "TUM IPv6 Hitlist"});
  std::unordered_set<std::string> printed;
  for (const auto& [token, n] : ntp_os.sorted_desc()) {
    t9.add_row({token, share(n, ntp_os.total()),
                share(hit_os.count(token), hit_os.total())});
    printed.insert(token);
  }
  for (const auto& [token, n] : hit_os.sorted_desc()) {
    if (printed.contains(token)) continue;
    t9.add_row({token, share(0, ntp_os.total()),
                share(n, hit_os.total())});
  }
  t9.add_note("Paper: Ubuntu 38.58 % / 45.99 %, (empty) 36.01 % / 30.58 %, "
              "Debian 18.71 % / 21.19 %, Raspbian 6.44 % / 0.08 %.");
  t9.render(std::cout);

  bool pass = !groups.empty() && ntp_os.total() > 0 && hit_os.total() > 0;
  std::cout << "\nShape check (tables populated): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
