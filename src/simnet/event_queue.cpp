#include "simnet/event_queue.hpp"

#include <cstdio>

namespace tts::simnet {

std::string format_duration(SimDuration d) {
  bool neg = d < 0;
  if (neg) d = -d;
  std::int64_t total_sec = d / 1000000;
  std::int64_t days = total_sec / 86400;
  int h = static_cast<int>(total_sec % 86400 / 3600);
  int m = static_cast<int>(total_sec % 3600 / 60);
  int s = static_cast<int>(total_sec % 60);
  char buf[64];
  if (days > 0)
    std::snprintf(buf, sizeof buf, "%s%lldd %02d:%02d:%02d", neg ? "-" : "",
                  static_cast<long long>(days), h, m, s);
  else
    std::snprintf(buf, sizeof buf, "%s%02d:%02d:%02d", neg ? "-" : "", h, m,
                  s);
  return buf;
}

void EventQueue::schedule_at(SimTime at, Callback fn) {
  if (at < now_) at = now_;
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(SimDuration delay, Callback fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the callback must be moved out, so pop
  // via const_cast-free copy of the small fields and move of the function.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = e.at;
  ++executed_;
  e.fn();
  return true;
}

std::uint64_t EventQueue::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t EventQueue::run_until(SimTime until) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace tts::simnet
