#include "ntp/ntp_packet.hpp"

#include "net/packet.hpp"

namespace tts::ntp {

NtpTimestamp to_ntp_time(simnet::SimTime t, std::uint64_t sim_epoch_unix) {
  // SimTime is microseconds; NTP fraction is 1/2^32 seconds.
  std::int64_t usec = t;
  std::int64_t whole = usec / 1000000;
  std::int64_t rem = usec % 1000000;
  if (rem < 0) {
    rem += 1000000;
    whole -= 1;
  }
  std::uint64_t ntp_sec = sim_epoch_unix + kNtpUnixOffset +
                          static_cast<std::uint64_t>(whole);
  auto frac = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(rem) << 32) / 1000000ULL);
  return {static_cast<std::uint32_t>(ntp_sec), frac};
}

simnet::SimTime from_ntp_time(const NtpTimestamp& ts,
                              std::uint64_t sim_epoch_unix) {
  auto epoch_ntp = static_cast<std::uint32_t>(sim_epoch_unix + kNtpUnixOffset);
  // Era-aware subtraction within one era window around the sim epoch.
  auto delta_sec =
      static_cast<std::int64_t>(static_cast<std::int32_t>(ts.seconds - epoch_ntp));
  auto frac_usec = static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(ts.fraction) * 1000000ULL) >> 32);
  return delta_sec * 1000000 + frac_usec;
}

std::vector<std::uint8_t> NtpPacket::serialize() const {
  net::PacketWriter w(kWireSize);
  w.u8(static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(leap) << 6) |
      ((version & 0x7) << 3) |
      (static_cast<std::uint8_t>(mode) & 0x7)));
  w.u8(stratum);
  w.u8(static_cast<std::uint8_t>(poll));
  w.u8(static_cast<std::uint8_t>(precision));
  w.u32(root_delay);
  w.u32(root_dispersion);
  w.u32(reference_id);
  w.u64(reference_time.to_u64());
  w.u64(origin_time.to_u64());
  w.u64(receive_time.to_u64());
  w.u64(transmit_time.to_u64());
  return w.take();
}

std::optional<NtpPacket> NtpPacket::parse(
    std::span<const std::uint8_t> wire) {
  if (wire.size() < kWireSize) return std::nullopt;
  net::PacketReader r(wire);
  NtpPacket p;
  std::uint8_t flags = r.u8();
  p.leap = static_cast<LeapIndicator>(flags >> 6);
  p.version = (flags >> 3) & 0x7;
  p.mode = static_cast<NtpMode>(flags & 0x7);
  if (p.version == 0) return std::nullopt;
  p.stratum = r.u8();
  p.poll = static_cast<std::int8_t>(r.u8());
  p.precision = static_cast<std::int8_t>(r.u8());
  p.root_delay = r.u32();
  p.root_dispersion = r.u32();
  p.reference_id = r.u32();
  p.reference_time = NtpTimestamp::from_u64(r.u64());
  p.origin_time = NtpTimestamp::from_u64(r.u64());
  p.receive_time = NtpTimestamp::from_u64(r.u64());
  p.transmit_time = NtpTimestamp::from_u64(r.u64());
  return p;
}

NtpPacket NtpPacket::client_request(simnet::SimTime t) {
  NtpPacket p;
  p.leap = LeapIndicator::kUnsynchronized;
  p.version = 4;
  p.mode = NtpMode::kClient;
  p.poll = 6;  // 64 s nominal
  p.precision = -20;
  p.transmit_time = to_ntp_time(t);
  return p;
}

NtpPacket NtpPacket::server_response(const NtpPacket& request,
                                     simnet::SimTime received_at,
                                     simnet::SimTime transmitted_at,
                                     std::uint8_t stratum,
                                     std::uint32_t reference_id) {
  NtpPacket p;
  p.leap = LeapIndicator::kNoWarning;
  p.version = request.version;
  p.mode = NtpMode::kServer;
  p.stratum = stratum;
  p.poll = request.poll;
  p.precision = -23;
  p.root_delay = 0x0001'0000 >> 4;       // ~4 ms in 16.16
  p.root_dispersion = 0x0000'4000;       // ~0.25 ms
  p.reference_id = reference_id;
  p.reference_time = to_ntp_time(received_at - simnet::sec(16));
  p.origin_time = request.transmit_time;  // echo T1
  p.receive_time = to_ntp_time(received_at);
  p.transmit_time = to_ntp_time(transmitted_at);
  return p;
}

bool NtpPacket::valid_response_to(const NtpPacket& request) const {
  if (mode != NtpMode::kServer) return false;
  if (stratum == 0 || stratum > 15) return false;  // kiss-o'-death or invalid
  if (origin_time != request.transmit_time) return false;  // anti-spoofing
  if (transmit_time.is_zero()) return false;
  return true;
}

}  // namespace tts::ntp
