// MQTT 3.1.1 CONNECT / CONNACK codec (the subset a broker access-control
// probe needs). Wire format per OASIS MQTT 3.1.1 sections 3.1 and 3.2,
// including the variable-length "remaining length" encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tts::proto {

enum class MqttConnectReturn : std::uint8_t {
  kAccepted = 0,
  kUnacceptableProtocol = 1,
  kIdentifierRejected = 2,
  kServerUnavailable = 3,
  kBadCredentials = 4,
  kNotAuthorized = 5,
};

struct MqttConnect {
  std::string client_id = "tts-scan";
  std::string username;  // empty = no credentials offered
  std::string password;
  std::uint16_t keep_alive = 60;

  std::vector<std::uint8_t> serialize() const;
  static std::optional<MqttConnect> parse(std::span<const std::uint8_t> wire);
};

struct MqttConnack {
  bool session_present = false;
  MqttConnectReturn code = MqttConnectReturn::kAccepted;

  std::vector<std::uint8_t> serialize() const;
  static std::optional<MqttConnack> parse(std::span<const std::uint8_t> wire);
};

/// Encode/decode the MQTT variable-length integer ("remaining length").
void mqtt_write_varint(std::vector<std::uint8_t>& out, std::uint32_t value);
std::optional<std::pair<std::uint32_t, std::size_t>> mqtt_read_varint(
    std::span<const std::uint8_t> wire);

}  // namespace tts::proto
