// Telescope walkthrough (Section 5): build a minimal pool, plant an overt
// research scanner and a covert actor, run the one-shot-address prober, and
// attribute every captured scan packet to the leaking NTP server.
#include <iostream>

#include "inet/as_registry.hpp"
#include "ntp/ntp_server.hpp"
#include "telescope/actors.hpp"
#include "telescope/classifier.hpp"
#include "telescope/prober.hpp"
#include "util/format.hpp"

using namespace tts;

int main() {
  simnet::EventQueue events;
  simnet::Network network(events);
  auto registry = inet::AsRegistry::generate({{}, 99});
  ntp::NtpPool pool;

  // A few honest third-party servers.
  std::vector<std::unique_ptr<ntp::NtpServer>> servers;
  for (int i = 0; i < 6; ++i) {
    ntp::NtpServerConfig config;
    config.address =
        net::Ipv6Address::from_halves(0x2400000100000000ULL, 0x100 + i);
    config.country = i % 2 ? "DE" : "US";
    config.capture = false;
    servers.push_back(
        std::make_unique<ntp::NtpServer>(network, config, nullptr));
    pool.add_server({config.address, config.country, 1000, 20, false, 0});
  }

  // The overt research scanner: 3 pool servers, many ports, fast, signed.
  telescope::ActorConfig research;
  research.name = "measurement-lab";
  research.identifies_itself = true;
  research.server_country = "US";
  for (int i = 0; i < 3; ++i)
    research.server_addresses.push_back(
        net::Ipv6Address::from_halves(0x2400000200000000ULL, 0x10 + i));
  research.scan_sources = {
      net::Ipv6Address::from_halves(0x2400000200000000ULL, 0x999)};
  research.ports = telescope::research_actor_ports();
  telescope::ScanningActor overt(network, pool, research);

  // The covert actor: separate clouds, few sensitive ports, days of delay.
  telescope::ActorConfig hidden;
  hidden.identifies_itself = false;
  hidden.server_country = "US";
  hidden.server_addresses = {
      net::Ipv6Address::from_halves(0x2400000300000000ULL, 0x20)};
  hidden.scan_sources = {
      net::Ipv6Address::from_halves(0x2400000400000000ULL, 0x21)};
  hidden.ports = telescope::covert_actor_ports();
  hidden.scan_delay_min = simnet::hours(12);
  hidden.scan_delay_max = simnet::hours(48);
  hidden.scan_spread = simnet::days(2);
  hidden.port_coverage = 0.6;
  telescope::ScanningActor covert(network, pool, hidden);

  // Our telescope.
  telescope::ProberConfig config;
  config.probe_prefix = *net::Ipv6Prefix::parse("3fff:909:aaaa::/48");
  config.monitor_prefix = *net::Ipv6Prefix::parse("3fff:909::/32");
  config.query_interval = simnet::minutes(15);
  config.duration = simnet::days(6);
  telescope::PoolProber prober(network, pool, config);
  prober.start();

  events.run_until(simnet::days(9));

  std::cout << "Probed the pool " << prober.probes().size()
            << " times (answered: "
            << util::percent(prober.answered_share()) << "), captured "
            << prober.captures().size() << " scan packets.\n\n";

  auto report = telescope::classify_actors(
      prober, registry, [&](const net::Ipv6Address& a) {
        return overt.owns_scan_source(a) ? std::string("measurement-lab.edu")
                                         : std::string();
      });
  std::cout << "Matched " << report.matched_captures << "/"
            << report.total_captures << " captures to an NTP query.\n\n";
  for (std::size_t i = 0; i < report.actors.size(); ++i) {
    const auto& a = report.actors[i];
    std::cout << "actor " << (i + 1) << ": "
              << to_string(a.classification) << "\n"
              << "  scan sources: " << a.scan_sources.size()
              << ", leaking servers: " << a.ntp_servers.size()
              << ", distinct ports: " << a.ports.size() << "\n"
              << "  median query->scan delay: "
              << simnet::format_duration(a.median_delay)
              << ", per-target span: "
              << simnet::format_duration(a.median_target_span) << "\n"
              << "  identified: " << (a.identified ? "yes" : "no") << "\n";
  }
  return 0;
}
