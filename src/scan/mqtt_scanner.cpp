// MQTT(S) access-control probe: CONNECT without credentials. CONNACK code 0
// means the broker is open; code 5 (not authorized) means access control is
// enforced — the distinction behind Figure 3.
#include "proto/mqtt.hpp"
#include "scan/probe_util.hpp"
#include "scan/tls.hpp"

namespace tts::scan {

namespace {

using detail::ProbeStatePtr;
using simnet::TcpConnection;

void record_connack(const ProbeStatePtr& state,
                    std::span<const std::uint8_t> wire) {
  auto ack = proto::MqttConnack::parse(wire);
  if (!ack) {
    state->finish(Outcome::kMalformed);
    return;
  }
  state->record.broker_auth_required =
      ack->code != proto::MqttConnectReturn::kAccepted;
  state->finish(Outcome::kSuccess);
}

class MqttScanner final : public ProtocolScanner {
 public:
  MqttScanner(bool tls, std::string sni) : tls_(tls), sni_(std::move(sni)) {}

  Protocol protocol() const override {
    return tls_ ? Protocol::kMqtts : Protocol::kMqtt;
  }

  void probe(simnet::Network& network, const simnet::Endpoint& src,
             ScanRecord base, DoneFn done) override {
    auto state = detail::make_probe_state(std::move(base), std::move(done));
    detail::arm_guard(network, state, probe_timeout_);

    simnet::Endpoint dst{state->record.target, port_of(protocol())};
    bool tls = tls_;
    std::string sni = sni_;
    network.connect_tcp(
        src, dst,
        [state, tls, sni](simnet::TcpConnectionPtr conn, bool refused) {
          if (!conn) {
            state->finish(refused ? Outcome::kRefused : Outcome::kTimeout);
            return;
          }
          state->conn = conn;
          conn->set_on_close(TcpConnection::Side::kClient, [state] {
            if (!state->finished) state->finish(Outcome::kMalformed);
          });

          proto::MqttConnect connect;  // anonymous: no username/password

          if (!tls) {
            conn->set_on_data(TcpConnection::Side::kClient,
                              [state](std::vector<std::uint8_t> data) {
                                record_connack(state, data);
                              });
            conn->send(TcpConnection::Side::kClient, connect.serialize());
            return;
          }

          auto session = TlsClientSession::create(conn, sni);
          session->set_on_app_data([state](std::vector<std::uint8_t> data) {
            record_connack(state, data);
          });
          session->handshake(
              [state, session, connect](TlsHandshakeResult result) {
                if (!result.ok) {
                  state->finish(Outcome::kTlsFailed);
                  return;
                }
                state->record.certificate = result.certificate;
                session->send(connect.serialize());
              });
          // Anchors the session to the probe AND breaks the closure
          // cycles (session callbacks capture state) at finish time.
          state->cleanup = [session] { session->drop_callbacks(); };
        },
        connect_timeout_);
  }

 private:
  bool tls_;
  std::string sni_;
};

}  // namespace

std::unique_ptr<ProtocolScanner> make_mqtt_scanner(bool tls,
                                                   std::string sni) {
  return std::make_unique<MqttScanner>(tls, std::move(sni));
}

}  // namespace tts::scan
