// A standalone one-shot NTP client (SNTP-style, RFC 5905 section 14).
//
// The population's devices embed their own polling loops; this client is
// the reusable building block for examples, tests, and the telescope's
// pool prober: send one mode-3 request, validate the response, compute
// offset/delay from the four timestamps.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/ipv6.hpp"
#include "ntp/ntp_packet.hpp"
#include "simnet/network.hpp"

namespace tts::ntp {

struct NtpQueryResult {
  NtpPacket response;
  simnet::SimTime sent_at = 0;
  simnet::SimTime received_at = 0;

  /// Clock offset theta = ((T2-T1) + (T3-T4)) / 2 in microseconds.
  simnet::SimDuration offset() const;
  /// Round-trip delay delta = (T4-T1) - (T3-T2).
  simnet::SimDuration delay() const;
};

class NtpClient {
 public:
  /// Called with the result, or nullopt on timeout / invalid response.
  using ResultFn = std::function<void(std::optional<NtpQueryResult>)>;

  explicit NtpClient(simnet::Network& network)
      : network_(network),
        category_(network.events().register_category("ntp_query")) {}

  /// Fire one query from (src, src_port) to the server; the callback runs
  /// when a valid response arrives or after `timeout`.
  void query(const net::Ipv6Address& src, std::uint16_t src_port,
             const net::Ipv6Address& server, ResultFn on_result,
             simnet::SimDuration timeout = simnet::sec(5));

  std::uint64_t queries_sent() const { return sent_; }

 private:
  simnet::Network& network_;
  simnet::EventQueue::CategoryId category_;
  std::uint64_t sent_ = 0;
};

}  // namespace tts::ntp
