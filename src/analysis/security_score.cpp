#include "analysis/security_score.hpp"

#include "analysis/broker_analysis.hpp"
#include "analysis/ssh_analysis.hpp"

namespace tts::analysis {

SecurityScore security_score(const scan::ResultStore& results,
                             scan::Dataset dataset) {
  SecurityScore score;

  auto ssh_hosts = dedup_ssh_hosts(results, dataset);
  score.ssh_hosts = ssh_hosts.size();
  for (const auto& h : ssh_hosts)
    if (assessable(h.banner) && banner_up_to_date(h.banner))
      ++score.ssh_secure;

  auto mqtt = access_control_by_certificate(results, dataset,
                                            BrokerKind::kMqtt);
  score.mqtt_hosts = mqtt.total;
  score.mqtt_secure = mqtt.with_auth;

  auto amqp = access_control_by_certificate(results, dataset,
                                            BrokerKind::kAmqp);
  score.amqp_hosts = amqp.total;
  score.amqp_secure = amqp.with_auth;

  return score;
}

}  // namespace tts::analysis
