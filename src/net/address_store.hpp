// Compact seen-store of IPv6 addresses, /64-structured, /32-bucketed.
//
// The collection pipeline's dedup sets used to hold every address as an
// individual 16-byte object inside an unordered_set node (plus a parallel
// first-seen-order vector), which costs ~70-90 bytes per address and caps
// population scale far below the paper's 3.04 B-address regime. This store
// exploits the structure of collected IPv6 space instead. Two levels of it,
// in fact: customer delegations rotate their /64 frequently (so a /64 often
// holds only a couple of addresses), but the rotation stays inside the
// provider's stable /32 allocation. Buckets are therefore keyed by the /32
// block — few and fat — and each entry inside a bucket is the remaining
// 96 bits, split into the low half of the network prefix (rem, 32 bits)
// and the IID (64 bits), plus a 32-bit first-seen sequence number, all in
// parallel arrays. Steady-state cost is 16 bytes per address; the per-/64
// cost of the old one-bucket-per-/64 layout (a heap vector pair per
// delegation) is gone.
//
// Entries are sorted by (rem, iid), so every /64's IIDs are contiguous and
// the /64-level API survives the bucketing change: for_each_prefix() walks
// full /64 prefixes in ascending order with a sorted iid span each, and
// prefix_count() is the number of distinct /64s.
//
// The sequence numbers are the determinism contract: snapshot() returns
// addresses in exact first-insertion order (a function of the event
// sequence only, never of hash or sort layout), so swapping this store
// under AddressCollector/HitlistBuilder leaves every same-seed report
// digest unchanged. They also give each address a dense 0..size-1 id that
// callers use to index side arrays (hitlist provenance).
//
// Buckets live in creation order; a separate index of bucket ids sorted by
// block key gives O(log B) lookup. Positional inserts into a bucket cost
// O(bucket size) moves — fine up to millions of addresses per /32; a
// merge-buffer layer would be the next step beyond that. Sequence numbers
// are 32-bit: the store caps at ~4.29 B addresses, which covers the
// paper's 3.04 B regime; insert() throws beyond that rather than wrapping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv6.hpp"

namespace tts::util {
class ByteWriter;
class ByteReader;
}  // namespace tts::util

namespace tts::net {

class AddressStore {
 public:
  /// Dense first-seen sequence number: the n-th distinct address inserted
  /// has seq n.
  using Seq = std::uint32_t;
  static constexpr Seq kNoSeq = ~Seq{0};

  struct Inserted {
    Seq seq;     // the address's first-seen sequence number
    bool fresh;  // true when this call inserted it
  };

  /// Insert one address; idempotent. Returns its (possibly pre-existing)
  /// sequence number. Throws std::length_error at the 2^32-1 address cap.
  Inserted insert(const Ipv6Address& addr);

  /// Insert a batch in order; exactly equivalent to insert() in a loop but
  /// amortizes the bucket lookup over runs of same-block addresses. Fresh
  /// addresses are appended to *fresh (in arrival order) when provided.
  /// Returns the number of addresses that were new.
  std::size_t insert_batch(std::span<const Ipv6Address> batch,
                           std::vector<Ipv6Address>* fresh = nullptr);

  bool contains(const Ipv6Address& addr) const {
    return seq_of(addr) != kNoSeq;
  }
  /// Sequence number of an address, or kNoSeq when absent.
  Seq seq_of(const Ipv6Address& addr) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of distinct /64 prefixes seen.
  std::size_t prefix_count() const { return prefix_count_; }

  /// All addresses in first-seen order (seq order). O(n) scatter.
  std::vector<Ipv6Address> snapshot() const;

  /// Visit /64 prefixes in ascending order: fn(prefix_hi64, iids) with
  /// iids sorted ascending. The traversal order is a total order on the
  /// keys, so it is safe for digested output.
  template <typename Fn>
  void for_each_prefix(Fn&& fn) const {
    for (std::uint32_t id : index_) {
      const Bucket& b = buckets_[id];
      for (std::size_t lo = 0, n = b.rems.size(); lo < n;) {
        std::size_t hi = lo + 1;
        while (hi < n && b.rems[hi] == b.rems[lo]) ++hi;
        fn((static_cast<std::uint64_t>(b.block) << 32) | b.rems[lo],
           std::span<const std::uint64_t>(b.iids.data() + lo, hi - lo));
        lo = hi;
      }
    }
  }

  /// Exact heap + object footprint of the store (capacities, not sizes):
  /// the bytes/address numerator the collection bench reports.
  std::size_t memory_bytes() const;

  void save(util::ByteWriter& w) const;
  static AddressStore load(util::ByteReader& r);

 private:
  struct Bucket {
    std::uint32_t block = 0;          // hi64 >> 32 of every member address
    // Parallel arrays sorted by (rem, iid): rem is the low half of the
    // network prefix, so equal-rem runs are whole /64s.
    std::vector<std::uint32_t> rems;
    std::vector<std::uint64_t> iids;
    std::vector<Seq> seqs;
  };

  /// Bucket holding `block`, or nullptr. Sets insert_pos_ to the index_
  /// position where a new id for this block would go.
  Bucket* find_bucket(std::uint32_t block);
  const Bucket* find_bucket(std::uint32_t block) const;
  Bucket& bucket_for(std::uint32_t block);

  Inserted insert_into(Bucket& b, std::uint32_t rem, std::uint64_t iid);

  std::vector<Bucket> buckets_;       // creation order
  std::vector<std::uint32_t> index_;  // bucket ids sorted by block key
  std::size_t size_ = 0;
  std::size_t prefix_count_ = 0;  // distinct /64s across all buckets
  std::size_t insert_pos_ = 0;    // scratch from the last find_bucket miss
};

}  // namespace tts::net
