// Exporters: turn registry snapshots, heartbeat timelines and tracer
// aggregates into a human-readable table (util::TextTable), a JSONL dump
// (one instrument per line, machine-parseable — parse_jsonl() reads it
// back) and a Prometheus-style text exposition.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace tts::obs {

/// Metrics table: one row per instrument; histograms show count, mean and
/// p50/p95/max read off the bucket edges.
util::TextTable to_table(const RegistrySnapshot& snapshot,
                         std::string title = "metrics");

/// Label-prefix aggregation for high-cardinality instruments: any series
/// family whose *name* is listed keeps only its `top_n` largest members
/// (counters/histograms by count, gauges by value) and folds the rest into
/// one "<name>{series=other}" row whose detail says how many series it
/// rolled up. A family small enough that rolling saves nothing
/// (<= top_n + 1 members) renders in full.
struct TableRollup {
  std::vector<std::string> names;
  std::size_t top_n = 5;
};

/// to_table() with per-name rollup: a study's final-metrics table stays
/// readable when pool_selections{server=...}-style families grow with the
/// population instead of the instrument count.
util::TextTable to_table(const RegistrySnapshot& snapshot, std::string title,
                         const TableRollup& rollup);

/// Apply a rollup to a snapshot: listed families keep their top_n largest
/// members plus one synthetic "<name>{series=other}" aggregate. The result
/// feeds any exporter (and keeps the snapshot's sorted-by-name family
/// grouping, so Prometheus "# TYPE" runs stay contiguous).
RegistrySnapshot apply_rollup(const RegistrySnapshot& snapshot,
                              const TableRollup& rollup);

/// One JSON object per line:
///   {"at":0,"name":"x","labels":{"a":"b"},"kind":"counter","value":7}
/// Histograms carry "count","sum","min","max","bounds","counts".
std::string to_jsonl(const RegistrySnapshot& snapshot);
/// to_jsonl() after apply_rollup(): bounded-cardinality machine output.
std::string to_jsonl(const RegistrySnapshot& snapshot,
                     const TableRollup& rollup);

/// Prometheus text format: "# TYPE" comments, name{labels} value lines;
/// histograms expand to _bucket{le=...}/_sum/_count series.
std::string to_prometheus(const RegistrySnapshot& snapshot);
/// to_prometheus() after apply_rollup(): bounded-cardinality exposition.
std::string to_prometheus(const RegistrySnapshot& snapshot,
                          const TableRollup& rollup);

/// Parse a to_jsonl() dump back into a snapshot (values sorted as emitted).
/// Returns nullopt on malformed input. Only the subset of JSON that
/// to_jsonl emits is understood.
std::optional<RegistrySnapshot> parse_jsonl(const std::string& text);

/// Presentation knobs for timeline_table().
struct TimelineOptions {
  /// Append a "Δ<col>" column after each counter column: the per-interval
  /// increment (first row "-", no prior snapshot to diff against). Gauges
  /// stay absolute — a delta of a level reading is noise.
  bool deltas = false;
  /// Append a "<col>/s" column after each counter (and its delta): the
  /// per-interval rate over virtual time, so the per-day table reads like
  /// the paper's collection-rate discussion directly.
  bool rates = false;
};

/// Heartbeat timeline as a table: one row per snapshot, one column per
/// requested instrument (matched by SnapshotValue::full_name()); missing
/// instruments render as "-".
util::TextTable timeline_table(const std::vector<RegistrySnapshot>& timeline,
                               const std::vector<std::string>& columns,
                               std::string title = "heartbeat timeline",
                               TimelineOptions options = {});

/// Tracer aggregates: per span name, count and total/mean/max in both the
/// virtual and the wall clock.
util::TextTable span_table(const Tracer& tracer,
                           std::string title = "spans");

/// Presentation knobs for to_chrome_trace().
struct ChromeTraceOptions {
  /// Attach each span's measured wall-clock duration as an argument.
  /// Off by default so same-seed runs export bit-identical traces (wall
  /// readings are the only nondeterministic field in a SpanRecord).
  bool include_wall = false;
};

/// Chrome trace-event JSON over the tracer's ring (load in Perfetto or
/// chrome://tracing). The time axis is *virtual* time: ts is the span's
/// sim time directly (SimTime is already in microseconds, the unit the
/// format expects). Trace-linked spans (SpanRecord::trace != 0) become
/// async "b"/"e" pairs keyed by the TraceId, so every stage of one probe
/// lifecycle lands on a single named track and nested stages stack;
/// trace-linked instants become async instants ("n") on the same track.
/// Untraced spans render as complete events ("X") and untraced instants
/// as thread instants ("i").
std::string to_chrome_trace(const Tracer& tracer,
                            const ChromeTraceOptions& options = {});

}  // namespace tts::obs
