// Plain-text table renderer used by the bench binaries to print
// paper-style tables (aligned columns, optional title and footnote rows).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tts::util {

enum class Align { kLeft, kRight };

class TextTable {
 public:
  explicit TextTable(std::string title = {});

  /// Define the header row. Alignment applies column-wise to all rows;
  /// missing alignments default to right (numbers dominate our tables).
  void set_header(std::vector<std::string> header,
                  std::vector<Align> align = {});

  void add_row(std::vector<std::string> cells);
  /// A horizontal rule between row groups.
  void add_rule();
  /// A full-width annotation line rendered below the table body.
  void add_note(std::string note);

  void render(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

}  // namespace tts::util
