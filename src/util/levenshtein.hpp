// Levenshtein edit distance, used by the HTTP title-grouping analysis
// (Section 4.3.1 groups HTML titles whose distance normalised to [0,1]
// is at most 0.25).
#pragma once

#include <cstddef>
#include <string_view>

namespace tts::util {

/// Plain Levenshtein (unit-cost insert/delete/substitute) distance.
std::size_t levenshtein(std::string_view a, std::string_view b);

/// Banded variant: returns a value > `bound` (not necessarily the exact
/// distance) as soon as the distance is known to exceed `bound`. O(bound·n).
std::size_t levenshtein_bounded(std::string_view a, std::string_view b,
                                std::size_t bound);

/// Distance normalised by the longer string's length, in [0, 1].
/// Two empty strings have distance 0.
double normalized_levenshtein(std::string_view a, std::string_view b);

/// True if normalized distance is <= threshold; uses the banded variant so
/// dissimilar long strings bail out early.
bool within_normalized_distance(std::string_view a, std::string_view b,
                                double threshold);

}  // namespace tts::util
