// Client-side TLS session used by the TLS-fronted protocol scanners.
//
// Wraps a TcpConnection: performs the ClientHello/ServerHello exchange
// (scans are by IP, so no SNI is offered unless configured — which is why
// SNI-requiring CDNs fail, Section 4.2), then transports application data.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "proto/tlslite.hpp"
#include "simnet/network.hpp"

namespace tts::scan {

struct TlsHandshakeResult {
  bool ok = false;
  proto::Certificate certificate;  // valid when ok
  std::uint8_t alert = 0;          // alert description when !ok
};

class TlsClientSession
    : public std::enable_shared_from_this<TlsClientSession> {
 public:
  using HandshakeFn = std::function<void(TlsHandshakeResult)>;
  using AppDataFn = std::function<void(std::vector<std::uint8_t>)>;

  static std::shared_ptr<TlsClientSession> create(
      simnet::TcpConnectionPtr conn, std::string sni = {});

  /// Send the ClientHello; `on_done` fires with the handshake outcome.
  void handshake(HandshakeFn on_done);

  /// Send application data (only after a successful handshake).
  void send(std::vector<std::uint8_t> data);

  /// Receive unwrapped application data.
  void set_on_app_data(AppDataFn fn) { on_app_data_ = std::move(fn); }

  /// Release both user callbacks. The scanners' closures capture the
  /// session (and the probe state) in shared_ptr cycles; the probe calls
  /// this from its finish path so a completed or timed-out session can
  /// actually be destroyed.
  void drop_callbacks() {
    on_handshake_ = nullptr;
    on_app_data_ = nullptr;
  }

 private:
  TlsClientSession(simnet::TcpConnectionPtr conn, std::string sni)
      : conn_(std::move(conn)), sni_(std::move(sni)) {}

  void on_record(std::vector<std::uint8_t> data);

  simnet::TcpConnectionPtr conn_;
  std::string sni_;
  bool established_ = false;
  HandshakeFn on_handshake_;
  AppDataFn on_app_data_;
};

}  // namespace tts::scan
