#include <gtest/gtest.h>

#include <unordered_set>

#include "inet/population.hpp"
#include "net/mac.hpp"
#include "net/oui_db.hpp"
#include "util/stats.hpp"

namespace tts::inet {
namespace {

class PopulationTest : public ::testing::Test {
 protected:
  static const AsRegistry& registry() {
    static const AsRegistry reg = AsRegistry::generate({{}, 1});
    return reg;
  }
  static const Population& population() {
    static Population pop = [] {
      PopulationConfig config;
      config.device_scale = 0.2;
      config.seed = 7;
      return Population::generate(registry(), config);
    }();
    return pop;
  }
};

TEST_F(PopulationTest, GeneratesDevices) {
  EXPECT_GT(population().devices().size(), 500u);
}

TEST_F(PopulationTest, EveryAddressRoutesToItsAs) {
  for (const auto& d : population().devices()) {
    auto asn = registry().routes().lookup(d.initial_address);
    ASSERT_TRUE(asn) << d.initial_address.to_string();
    EXPECT_EQ(*asn, d.asn);
    EXPECT_TRUE(d.delegation.contains(d.initial_address));
  }
}

TEST_F(PopulationTest, PlacementMatchesAsCategory) {
  for (const auto& d : population().devices()) {
    const AsInfo* as = registry().find(d.asn);
    ASSERT_NE(as, nullptr);
    switch (d.profile->placement) {
      case Placement::kEyeball:
        EXPECT_EQ(as->category, AsCategory::kCableDslIsp);
        break;
      case Placement::kHosting:
        if (d.profile->cls == DeviceClass::kCdnLoadBalancer)
          EXPECT_EQ(as->category, AsCategory::kContent);
        else
          EXPECT_EQ(as->category, AsCategory::kHosting);
        break;
      case Placement::kMobile:
        // Falls back to eyeball when the country has no mobile AS.
        EXPECT_TRUE(as->category == AsCategory::kMobile ||
                    as->category == AsCategory::kCableDslIsp);
        break;
      case Placement::kMixed:
        EXPECT_NE(as->category, AsCategory::kEducation);
        break;
    }
  }
}

TEST_F(PopulationTest, Eui64DevicesEmbedTheirMac) {
  std::uint64_t eui64_devices = 0;
  for (const auto& d : population().devices()) {
    if (d.profile->addr.iid != IidMode::kEui64) continue;
    ++eui64_devices;
    auto mac = net::extract_mac(d.initial_address);
    ASSERT_TRUE(mac) << d.initial_address.to_string();
    EXPECT_EQ(*mac, d.mac);
    EXPECT_EQ(!mac->locally_administered(), d.vendor_mac);
  }
  EXPECT_GT(eui64_devices, 100u);
}

TEST_F(PopulationTest, FritzBoxesCarryAvmOuis) {
  const auto& db = net::OuiDatabase::builtin();
  std::uint64_t fritz = 0, avm = 0;
  for (const auto& d : population().devices()) {
    if (d.profile->cls != DeviceClass::kFritzBox) continue;
    ++fritz;
    if (!d.vendor_mac) continue;
    auto vendor = db.lookup(d.mac);
    if (vendor && vendor->find("AVM") != std::string_view::npos) ++avm;
  }
  ASSERT_GT(fritz, 10u);
  EXPECT_GT(static_cast<double>(avm) / static_cast<double>(fritz), 0.8);
}

TEST_F(PopulationTest, StaticModesProduceStructuredIids) {
  for (const auto& d : population().devices()) {
    std::uint64_t iid = d.initial_address.iid();
    switch (d.profile->addr.iid) {
      case IidMode::kStaticZero:
        EXPECT_EQ(iid, 0u);
        break;
      case IidMode::kStaticLowByte:
        EXPECT_GT(iid, 0u);
        EXPECT_LT(iid, 0x100u);
        break;
      case IidMode::kStaticLowTwoBytes:
        EXPECT_GE(iid, 0x100u);
        EXPECT_LT(iid, 0x10000u);
        break;
      case IidMode::kPrivacyRandom:
      case IidMode::kDhcpRandomish:
        EXPECT_GE(iid, 0x10000u);
        EXPECT_FALSE(net::iid_looks_like_eui64(iid));
        break;
      case IidMode::kEui64:
        EXPECT_TRUE(net::iid_looks_like_eui64(iid));
        break;
    }
  }
}

TEST_F(PopulationTest, SshVersionsRespectLineage) {
  for (const auto& d : population().devices()) {
    if (!d.ssh_enabled) continue;
    const auto& lineage = ssh_version_lineage(d.ssh_os);
    EXPECT_LT(d.ssh_version_index, lineage.size());
    EXPECT_EQ(d.ssh_outdated(),
              d.ssh_version_index + 1 < lineage.size());
  }
}

TEST_F(PopulationTest, KeyProvisioningShapes) {
  // Unique-per-device keys never repeat; shared-pool keys do.
  std::unordered_set<KeyId> unique_keys;
  std::uint64_t unique_total = 0;
  util::Counter<KeyId> pool_keys;
  for (const auto& d : population().devices()) {
    if (d.ssh_enabled && d.profile->ssh.key == KeyProvisioning::kUniquePerDevice) {
      ++unique_total;
      unique_keys.insert(d.ssh_key);
    }
    if (d.mqtt_enabled && d.mqtt_cert != 0 &&
        d.profile->mqtt.cert == KeyProvisioning::kSharedPool)
      pool_keys.add(d.mqtt_cert);
  }
  EXPECT_EQ(unique_keys.size(), unique_total);
  if (pool_keys.total() > 20) {
    EXPECT_LT(pool_keys.distinct(), pool_keys.total());
  }
}

TEST_F(PopulationTest, DeterministicForSameSeed) {
  PopulationConfig config;
  config.device_scale = 0.05;
  config.seed = 99;
  Population a = Population::generate(registry(), config);
  Population b = Population::generate(registry(), config);
  ASSERT_EQ(a.devices().size(), b.devices().size());
  for (std::size_t i = 0; i < a.devices().size(); ++i) {
    EXPECT_EQ(a.devices()[i].initial_address, b.devices()[i].initial_address);
    EXPECT_EQ(a.devices()[i].asn, b.devices()[i].asn);
    EXPECT_EQ(a.devices()[i].ssh_key, b.devices()[i].ssh_key);
  }
}

TEST_F(PopulationTest, CountryMultipliers) {
  DeviceProfile p;
  p.country_mult = {{"DE", 2.5}, {"EU", 1.0}, {"*", 0.01}};
  EXPECT_DOUBLE_EQ(country_multiplier(p, "DE"), 2.5);
  EXPECT_DOUBLE_EQ(country_multiplier(p, "NL"), 1.0);   // EU group
  EXPECT_DOUBLE_EQ(country_multiplier(p, "IN"), 0.01);  // wildcard
  DeviceProfile q;  // no multipliers -> 1.0 everywhere
  EXPECT_DOUBLE_EQ(country_multiplier(q, "JP"), 1.0);
}

TEST_F(PopulationTest, CountryGroups) {
  EXPECT_TRUE(in_country_group("DE", "EU"));
  EXPECT_TRUE(in_country_group("PL", "EU"));
  EXPECT_FALSE(in_country_group("US", "EU"));
  EXPECT_TRUE(in_country_group("US", "US"));
}

TEST_F(PopulationTest, DlinkNeverUsesPool) {
  for (const auto& d : population().devices()) {
    if (d.profile->cls == DeviceClass::kDlinkCpe) {
      EXPECT_FALSE(d.uses_pool);
    }
    if (d.profile->cls == DeviceClass::kParkingPage) {
      EXPECT_FALSE(d.uses_pool);
    }
  }
}

TEST(AsRegistryTest, GeneratedShape) {
  AsRegistry reg = AsRegistry::generate({{}, 42});
  EXPECT_GT(reg.all().size(), 100u);
  EXPECT_GT(reg.cdn_alias_region().length(), 0u);
  EXPECT_NE(reg.cdn_asn(), 0u);
  // Alias region routes to the CDN AS.
  auto inside = net::Ipv6Address::from_halves(
      reg.cdn_alias_region().address().hi64() | 5, 77);
  const AsInfo* as = reg.origin(inside);
  ASSERT_NE(as, nullptr);
  EXPECT_EQ(as->number, reg.cdn_asn());
  // Prefixes are disjoint: each address has exactly one /32 owner, so a
  // random sample of AS prefixes must not repeat.
  std::unordered_set<std::uint64_t> tops;
  for (const auto& info : reg.all())
    for (const auto& p : info.prefixes)
      EXPECT_TRUE(tops.insert(p.address().hi64()).second);
}

TEST(AsRegistryTest, CategoryAndCountryQueries) {
  AsRegistry reg = AsRegistry::generate({{}, 42});
  auto eyeballs_de = reg.in_country("DE", AsCategory::kCableDslIsp);
  EXPECT_GE(eyeballs_de.size(), 1u);
  for (const auto* as : eyeballs_de) {
    EXPECT_EQ(as->country, "DE");
    EXPECT_EQ(as->category, AsCategory::kCableDslIsp);
  }
  EXPECT_GE(reg.by_category(AsCategory::kContent).size(), 3u);
  EXPECT_NE(reg.country("IN"), nullptr);
  EXPECT_EQ(reg.country("XX"), nullptr);
}

}  // namespace
}  // namespace tts::inet
