// tts::obs: counter/gauge/histogram semantics, label handling, span
// nesting, heartbeat snapshot ordering, exporter round-trips, and the
// registry-backed counters of the instrumented pipeline components.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "ntp/collector.hpp"
#include "obs/export.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scan/engine.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/network.hpp"

namespace tts::obs {
namespace {

net::Ipv6Address addr(std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x2400003000000000ULL, lo);
}

// ---------------------------------------------------------- instruments

TEST(Instruments, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(Instruments, HistogramBucketsAreInclusiveUpperEdges) {
  Histogram h({10, 100, 1000});
  h.record(10);    // fits bucket 0 (<= 10)
  h.record(11);    // bucket 1
  h.record(100);   // bucket 1
  h.record(999);   // bucket 2
  h.record(5000);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // implicit +inf bucket
  EXPECT_EQ(h.buckets(), 4u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 5000);
  EXPECT_EQ(h.sum(), 10 + 11 + 100 + 999 + 5000);
  EXPECT_DOUBLE_EQ(h.mean(), (10 + 11 + 100 + 999 + 5000) / 5.0);
}

TEST(Instruments, HistogramPercentileReadsBucketEdges) {
  Histogram h({10, 100, 1000});
  for (int i = 0; i < 50; ++i) h.record(5);     // bucket 0
  for (int i = 0; i < 49; ++i) h.record(50);    // bucket 1
  h.record(12345);                              // overflow
  EXPECT_EQ(h.percentile(0.5), 10);    // within the first 50 samples
  EXPECT_EQ(h.percentile(0.95), 100);  // inside bucket 1
  EXPECT_EQ(h.percentile(1.0), 12345);  // overflow bucket -> observed max
  EXPECT_EQ(Histogram({1, 2}).percentile(0.5), 0);  // empty histogram
}

TEST(Instruments, ExponentialBoundsAreStrictlyIncreasing) {
  auto bounds = Histogram::exponential(1, 1.3, 20);
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_GT(bounds[i], bounds[i - 1]);
}

// ------------------------------------------------------------- registry

TEST(Registry, LabelsDistinguishInstrumentsAndOrderDoesNotMatter) {
  Registry reg;
  Counter ssh, http;
  reg.enroll(ssh, "probes", {{"proto", "ssh"}, {"dataset", "ntp"}});
  reg.enroll(http, "probes", {{"proto", "http"}, {"dataset", "ntp"}});
  ssh.inc(3);
  http.inc(5);
  // Lookup labels in any order match the sorted enrolment.
  const Counter* found =
      reg.find_counter("probes", {{"dataset", "ntp"}, {"proto", "ssh"}});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &ssh);
  EXPECT_EQ(found->value(), 3u);
  EXPECT_EQ(reg.find_counter("probes", {{"proto", "smtp"}}), nullptr);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, DropOwnerRemovesOnlyThatOwnersInstruments) {
  Registry reg;
  Counter a, b;
  int owner_a = 0, owner_b = 0;
  reg.enroll(a, "a", {}, &owner_a);
  reg.enroll(b, "b", {}, &owner_b);
  reg.drop_owner(&owner_a);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.find_counter("a"), nullptr);
  EXPECT_NE(reg.find_counter("b"), nullptr);
}

TEST(Registry, SnapshotIsSortedByNameThenLabels) {
  Registry reg;
  Counter z, a1, a2;
  Gauge g;
  reg.enroll(z, "zz");
  reg.enroll(a2, "aa", {{"k", "2"}});
  reg.enroll(a1, "aa", {{"k", "1"}});
  reg.enroll(g, "mm");
  RegistrySnapshot snap = reg.snapshot(77);
  EXPECT_EQ(snap.at, 77);
  ASSERT_EQ(snap.values.size(), 4u);
  EXPECT_EQ(snap.values[0].full_name(), "aa{k=1}");
  EXPECT_EQ(snap.values[1].full_name(), "aa{k=2}");
  EXPECT_EQ(snap.values[2].full_name(), "mm");
  EXPECT_EQ(snap.values[3].full_name(), "zz");
  EXPECT_NE(snap.find("aa{k=2}"), nullptr);
  EXPECT_EQ(snap.find("aa{k=3}"), nullptr);
}

// --------------------------------------------------------------- tracer

TEST(Tracer, ScopedSpansNestAndRecordSimDurations) {
  simnet::EventQueue events;
  Tracer tracer(16);
  tracer.set_sim_clock(&events);
  events.schedule_at(simnet::sec(1), [] {});
  events.run();  // clock at 1 s

  {
    auto outer = tracer.span("outer");
    events.schedule_in(simnet::sec(2), [&tracer] {
      auto inner = tracer.span("inner");  // closes immediately
    });
    events.run();  // clock at 3 s
  }
  auto records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  // Inner closed first; spans land in completion order.
  EXPECT_EQ(records[0].name, "inner");
  EXPECT_EQ(records[0].depth, 1u);
  EXPECT_EQ(records[1].name, "outer");
  EXPECT_EQ(records[1].depth, 0u);
  EXPECT_EQ(records[1].sim_begin, simnet::sec(1));
  EXPECT_EQ(records[1].sim_end, simnet::sec(3));
  EXPECT_EQ(records[1].sim_duration(), simnet::sec(2));
  EXPECT_GE(records[1].wall_ns, 0);

  const auto& stats = tracer.stats();
  ASSERT_EQ(stats.count("outer"), 1u);
  EXPECT_EQ(stats.at("outer").count, 1u);
  EXPECT_EQ(stats.at("outer").total_sim, simnet::sec(2));
}

TEST(Tracer, RingIsBoundedButStatsAreComplete) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    auto s = tracer.span("loop");
  }
  EXPECT_EQ(tracer.records().size(), 4u);
  EXPECT_EQ(tracer.completed(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.stats().at("loop").count, 10u);
}

TEST(Tracer, DisabledTracerIsANoOp) {
  Tracer tracer(4);
  tracer.set_enabled(false);
  auto id = tracer.open("x");
  EXPECT_EQ(id, Tracer::kNoSpan);
  tracer.close(id);
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.completed(), 0u);
}

TEST(Tracer, InternIsIdempotentAndNamesAreStable) {
  Tracer tracer(8);
  Tracer::NameId http = tracer.intern("probe/http");
  Tracer::NameId ssh = tracer.intern("probe/ssh");
  EXPECT_NE(http, ssh);
  EXPECT_EQ(tracer.intern("probe/http"), http);
  EXPECT_EQ(tracer.name_of(http), "probe/http");
  EXPECT_EQ(tracer.name_of(ssh), "probe/ssh");
}

TEST(Tracer, OpenByIdAndByStringShareOneAggregate) {
  simnet::EventQueue events;
  Tracer tracer(8);
  tracer.set_sim_clock(&events);
  Tracer::NameId id = tracer.intern("probe/http");
  Tracer::SpanId span = tracer.open(id);
  events.schedule_at(simnet::sec(3), [&] { tracer.close(span); });
  events.run();
  EXPECT_EQ(tracer.stats_of(id).count, 1u);
  EXPECT_EQ(tracer.stats_of(id).total_sim, simnet::sec(3));
  {
    auto scope = tracer.span("probe/http");  // string path, same NameId
  }
  EXPECT_EQ(tracer.stats_of(id).count, 2u);
  EXPECT_EQ(tracer.stats().at("probe/http").count, 2u);
  // Records still carry the resolved name for human output.
  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].name, "probe/http");
}

TEST(Tracer, StatsSkipInternedButNeverOpenedNames) {
  Tracer tracer(8);
  tracer.intern("enrolled/unused");
  {
    auto scope = tracer.span("used");
  }
  auto stats = tracer.stats();
  EXPECT_EQ(stats.count("enrolled/unused"), 0u);
  EXPECT_EQ(stats.count("used"), 1u);
}

TEST(Tracer, SimDurationHistogramIsLogScale) {
  EXPECT_EQ(SpanStats::bucket_of(0), 0u);
  EXPECT_EQ(SpanStats::bucket_of(1), 1u);
  EXPECT_EQ(SpanStats::bucket_of(2), 2u);
  EXPECT_EQ(SpanStats::bucket_of(3), 2u);
  EXPECT_EQ(SpanStats::bucket_of(4), 3u);
  // The last bucket absorbs everything longer.
  EXPECT_EQ(SpanStats::bucket_of(std::int64_t{1} << 40),
            SpanStats::kHistBuckets - 1);

  simnet::EventQueue events;
  Tracer tracer(8);
  tracer.set_sim_clock(&events);
  Tracer::NameId id = tracer.intern("wait");
  Tracer::SpanId span = tracer.open(id);
  events.schedule_at(simnet::SimTime{4}, [&] { tracer.close(span); });
  events.run();
  const SpanStats& s = tracer.stats_of(id);
  EXPECT_EQ(s.sim_hist[SpanStats::bucket_of(4)], 1u);
  std::uint64_t total = 0;
  for (std::uint64_t c : s.sim_hist) total += c;
  EXPECT_EQ(total, s.count);
}

TEST(Tracer, OpenCloseSpansAsyncStages) {
  simnet::EventQueue events;
  Tracer tracer(16);
  tracer.set_sim_clock(&events);
  Tracer::SpanId id = tracer.open("async");
  events.schedule_at(simnet::minutes(5), [&] { tracer.close(id); });
  events.run();
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].sim_duration(), simnet::minutes(5));
  EXPECT_EQ(tracer.open_spans(), 0u);
}

// ------------------------------------------------------------ heartbeat

TEST(Heartbeat, SnapshotsEveryIntervalInOrder) {
  simnet::EventQueue events;
  Registry reg;
  Counter ticks;
  reg.enroll(ticks, "ticks");
  // One tick per virtual second feeds the counter.
  for (int i = 1; i <= 50; ++i)
    events.schedule_at(simnet::sec(i), [&ticks] { ticks.inc(); });

  HeartbeatConfig cfg;
  cfg.interval = simnet::sec(10);
  cfg.until = simnet::sec(45);
  Heartbeat hb(events, reg, cfg);
  hb.start();
  events.run_until(simnet::sec(60));

  const auto& timeline = hb.timeline();
  ASSERT_EQ(timeline.size(), 4u);  // 10,20,30,40 (50 > until)
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline[i].at, simnet::sec(10 * static_cast<int>(i + 1)));
    const SnapshotValue* v = timeline[i].find("ticks");
    ASSERT_NE(v, nullptr);
    // Ticks were scheduled before start(), so at equal instants the tick
    // fires first and each snapshot sees everything up to its own time.
    EXPECT_GE(v->count, prev);
    prev = v->count;
  }
  EXPECT_EQ(timeline.back().find("ticks")->count, 40u);
}

TEST(Heartbeat, SameInstantReadingReplacesInsteadOfDuplicating) {
  simnet::EventQueue events;
  Registry reg;
  Counter c;
  reg.enroll(c, "c");
  Heartbeat hb(events, reg, HeartbeatConfig{});
  hb.snap_now();
  c.inc(5);
  hb.snap_now();  // same virtual time -> replaces, with the fresher value
  ASSERT_EQ(hb.timeline().size(), 1u);
  EXPECT_EQ(hb.timeline()[0].find("c")->count, 5u);
}

TEST(Heartbeat, MaxSnapshotsStopsRescheduling) {
  simnet::EventQueue events;
  Registry reg;
  HeartbeatConfig cfg;
  cfg.interval = simnet::sec(1);
  cfg.max_snapshots = 3;
  Heartbeat hb(events, reg, cfg);
  hb.start();
  events.run();  // would loop forever without the cap
  EXPECT_EQ(hb.timeline().size(), 3u);
}

// ------------------------------------------------------------ exporters

TEST(Exporters, JsonlRoundTrip) {
  Registry reg;
  Counter c;
  Gauge g;
  Histogram h({10, 1000});
  reg.enroll(c, "requests", {{"zone", "DE"}, {"ours", "1"}});
  reg.enroll(g, "depth");
  reg.enroll(h, "wait_us");
  c.inc(12345);
  g.set(-42);
  h.record(7);
  h.record(500);
  h.record(99999);

  RegistrySnapshot snap = reg.snapshot(987654321);
  std::string jsonl = to_jsonl(snap);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);

  auto parsed = parse_jsonl(jsonl);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at, snap.at);
  ASSERT_EQ(parsed->values.size(), snap.values.size());
  for (std::size_t i = 0; i < snap.values.size(); ++i) {
    const SnapshotValue& want = snap.values[i];
    const SnapshotValue& got = parsed->values[i];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.labels, want.labels);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.full_name(), want.full_name());
    if (want.kind == Kind::kCounter) {
      EXPECT_EQ(got.count, want.count);
    }
    if (want.kind == Kind::kGauge) {
      EXPECT_EQ(got.value, want.value);
    }
    if (want.kind == Kind::kHistogram) {
      EXPECT_EQ(got.count, want.count);
      EXPECT_EQ(got.value, want.value);
      EXPECT_EQ(got.min, want.min);
      EXPECT_EQ(got.max, want.max);
      EXPECT_EQ(got.bounds, want.bounds);
      EXPECT_EQ(got.bucket_counts, want.bucket_counts);
    }
  }
}

TEST(Exporters, ParseJsonlRejectsGarbage) {
  EXPECT_FALSE(parse_jsonl("not json\n").has_value());
  EXPECT_FALSE(parse_jsonl("{\"name\":\"x\"}\n").has_value());  // no kind
  EXPECT_TRUE(parse_jsonl("").has_value());  // empty dump is an empty snap
}

TEST(Exporters, PrometheusTextFormat) {
  Registry reg;
  Counter c;
  Histogram h({5, 50});
  reg.enroll(c, "reqs", {{"zone", "IN"}});
  reg.enroll(h, "lat");
  c.inc(9);
  h.record(3);
  h.record(70);

  std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE reqs counter"), std::string::npos);
  EXPECT_NE(text.find("reqs{zone=\"IN\"} 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"5\"} 1"), std::string::npos);
  // Prometheus buckets are cumulative; the +Inf bucket equals the count.
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_count 2"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 73"), std::string::npos);
}

TEST(Exporters, TimelineTableShowsColumnsAndMissingDash) {
  simnet::EventQueue events;
  Registry reg;
  Counter c;
  reg.enroll(c, "seen");
  Heartbeat hb(events, reg, HeartbeatConfig{});
  c.inc(3);
  hb.snap_now();
  std::string text =
      timeline_table(hb.timeline(), {"seen", "missing"}).to_string();
  EXPECT_NE(text.find("seen"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);
  EXPECT_NE(text.find("-"), std::string::npos);
}

TEST(Exporters, TimelineDeltasAndRatesForCountersOnly) {
  simnet::EventQueue events;
  Registry reg;
  Counter c;
  Gauge g;
  reg.enroll(c, "reqs");
  reg.enroll(g, "depth");
  Heartbeat hb(events, reg, HeartbeatConfig{});

  c.inc(10);
  g.set(5);
  events.schedule_at(simnet::sec(0), [&] { hb.snap_now(); });
  events.schedule_at(simnet::sec(10), [&] {
    c.inc(30);
    g.set(7);
    hb.snap_now();
  });
  events.run_until(simnet::sec(11));

  std::string text = timeline_table(hb.timeline(), {"reqs", "depth"}, "t",
                                    {.deltas = true, .rates = true})
                         .to_string();
  // Counter columns grow a Δ and a /s view; the gauge stays absolute.
  EXPECT_NE(text.find("Δreqs"), std::string::npos);
  EXPECT_NE(text.find("reqs/s"), std::string::npos);
  EXPECT_EQ(text.find("Δdepth"), std::string::npos);
  EXPECT_EQ(text.find("depth/s"), std::string::npos);
  // First row has no predecessor: delta and rate render as "-". The second
  // row increments by 30 over 10 s.
  EXPECT_NE(text.find("30"), std::string::npos);
  EXPECT_NE(text.find("3.00"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(Exporters, MetricsTableListsEveryInstrument) {
  Registry reg;
  Counter c;
  Histogram h;
  reg.enroll(c, "alpha");
  reg.enroll(h, "beta");
  h.record(12);
  std::string text = to_table(reg.snapshot()).to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
}

TEST(Exporters, TableRollupFoldsTheLongTailIntoOther) {
  Registry reg;
  // A 6-series family: top-2 + "other" should fold the remaining 4.
  std::array<Counter, 6> picks;
  for (std::size_t i = 0; i < picks.size(); ++i) {
    picks[i].inc(100 * (i + 1));  // s5 (600) and s4 (500) are the top two
    reg.enroll(picks[i], "pool_selections",
               {{"server", "s" + std::to_string(i)}});
  }
  Counter untouched;
  reg.enroll(untouched, "scan_submitted", {{"dataset", "ntp"}});

  TableRollup rollup;
  rollup.names = {"pool_selections"};
  rollup.top_n = 2;
  std::string text = to_table(reg.snapshot(), "metrics", rollup).to_string();

  EXPECT_NE(text.find("pool_selections{server=s5}"), std::string::npos);
  EXPECT_NE(text.find("pool_selections{server=s4}"), std::string::npos);
  EXPECT_EQ(text.find("pool_selections{server=s0}"), std::string::npos);
  EXPECT_NE(text.find("pool_selections{series=other}"), std::string::npos);
  EXPECT_NE(text.find("rollup of 4 series"), std::string::npos);
  // The "other" value is the exact sum of the folded series (100..400).
  EXPECT_NE(text.find("1 000"), std::string::npos);
  // Unlisted families render in full.
  EXPECT_NE(text.find("scan_submitted{dataset=ntp}"), std::string::npos);
}

TEST(Exporters, TableRollupLeavesSmallFamiliesAlone) {
  Registry reg;
  std::array<Counter, 3> picks;
  for (std::size_t i = 0; i < picks.size(); ++i) {
    picks[i].inc(i + 1);
    reg.enroll(picks[i], "pool_selections",
               {{"server", "s" + std::to_string(i)}});
  }
  TableRollup rollup;
  rollup.names = {"pool_selections"};
  rollup.top_n = 2;  // 3 <= top_n + 1: rolling would save nothing
  std::string text = to_table(reg.snapshot(), "metrics", rollup).to_string();
  EXPECT_NE(text.find("pool_selections{server=s0}"), std::string::npos);
  EXPECT_EQ(text.find("series=other"), std::string::npos);
}

TEST(Exporters, RollupAppliesToJsonlAndPrometheus) {
  Registry reg;
  std::array<Counter, 6> picks;
  for (std::size_t i = 0; i < picks.size(); ++i) {
    picks[i].inc(100 * (i + 1));
    reg.enroll(picks[i], "pool_selections",
               {{"server", "s" + std::to_string(i)}});
  }
  Counter untouched;
  reg.enroll(untouched, "scan_submitted", {{"dataset", "ntp"}});
  TableRollup rollup;
  rollup.names = {"pool_selections"};
  rollup.top_n = 2;

  RegistrySnapshot rolled = apply_rollup(reg.snapshot(), rollup);
  ASSERT_EQ(rolled.values.size(), 4u);  // top-2 + other + untouched family
  EXPECT_EQ(rolled.values[0].full_name(), "pool_selections{server=s5}");
  EXPECT_EQ(rolled.values[1].full_name(), "pool_selections{server=s4}");
  EXPECT_EQ(rolled.values[2].full_name(), "pool_selections{series=other}");
  EXPECT_EQ(rolled.values[2].count, 1000u);  // 100+200+300+400
  EXPECT_EQ(rolled.values[3].full_name(), "scan_submitted{dataset=ntp}");

  // The JSONL overload emits the rolled set and still round-trips.
  std::string jsonl = to_jsonl(reg.snapshot(), rollup);
  auto parsed = parse_jsonl(jsonl);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->values.size(), 4u);
  EXPECT_EQ(parsed->values[2].full_name(), "pool_selections{series=other}");
  EXPECT_EQ(parsed->values[2].count, 1000u);

  // Prometheus: folded members gone, family stays one contiguous TYPE run.
  std::string prom = to_prometheus(reg.snapshot(), rollup);
  EXPECT_NE(prom.find("pool_selections{series=\"other\"} 1000"),
            std::string::npos);
  EXPECT_EQ(prom.find("server=\"s0\""), std::string::npos);
  std::size_t first = prom.find("# TYPE pool_selections");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(prom.find("# TYPE pool_selections", first + 1),
            std::string::npos);
}

// ------------------------------------------- instrumented components

TEST(Collector, ServerDistinctBoundsAndRegistryExport) {
  Registry reg;
  ntp::AddressCollector collector(&reg);
  EXPECT_EQ(collector.server_distinct(0), 0u);    // nothing recorded yet
  EXPECT_EQ(collector.server_distinct(999), 0u);  // unknown server id

  collector.record(addr(1), 0, simnet::sec(5));
  collector.record(addr(1), 7, simnet::sec(6));  // dup: not attributed to 7
  collector.record(addr(2), 7, simnet::sec(7));

  EXPECT_EQ(collector.total_requests(), 3u);
  EXPECT_EQ(collector.distinct_addresses(), 2u);
  EXPECT_EQ(collector.dedup_hits(), 1u);
  EXPECT_EQ(collector.server_distinct(0), 1u);
  EXPECT_EQ(collector.server_distinct(7), 1u);
  EXPECT_EQ(collector.server_distinct(8), 0u);

  // The accessors and the registry read the same cells.
  const Counter* exported =
      reg.find_counter("ntp_server_distinct", {{"server", "7"}});
  ASSERT_NE(exported, nullptr);
  EXPECT_EQ(exported->value(), collector.server_distinct(7));
  EXPECT_EQ(reg.find_counter("ntp_requests")->value(), 3u);
  EXPECT_EQ(reg.find_counter("ntp_dedup_hits")->value(), 1u);
}

TEST(Collector, DailyNewBucketingStableAcrossHeartbeatBoundary) {
  simnet::EventQueue events;
  Registry reg;
  ntp::AddressCollector collector(&reg);
  HeartbeatConfig cfg;
  cfg.interval = simnet::days(1);  // ticks exactly on the day boundaries
  cfg.until = simnet::days(3);
  Heartbeat hb(events, reg, cfg);
  hb.start();

  // Sightings straddling the day-1 boundary: one just before, one exactly
  // on it, one just after. The day bucket is floor(t / 1 day), so the
  // boundary sighting belongs to day 1, not day 0 — and heartbeat ticks on
  // the same instants must not disturb the bucketing.
  std::uint64_t n = 10;
  events.schedule_at(simnet::days(1) - 1,
                     [&] { collector.record(addr(n++), 0, events.now()); });
  events.schedule_at(simnet::days(1),
                     [&] { collector.record(addr(n++), 0, events.now()); });
  events.schedule_at(simnet::days(1) + 1,
                     [&] { collector.record(addr(n++), 0, events.now()); });
  events.schedule_at(simnet::days(2) + simnet::hours(3),
                     [&] { collector.record(addr(n++), 0, events.now()); });
  events.run_until(simnet::days(3));

  const auto& daily = collector.daily_new();
  ASSERT_EQ(daily.size(), 3u);
  EXPECT_EQ(daily.at(0), 1u);  // the t = 1d-1us sighting
  EXPECT_EQ(daily.at(1), 2u);  // boundary + just-after
  EXPECT_EQ(daily.at(2), 1u);

  // The day-boundary heartbeat snapshot (scheduled before that instant's
  // sighting) still sees the pre-boundary total; the final one sees all.
  ASSERT_EQ(hb.timeline().size(), 3u);
  EXPECT_EQ(hb.timeline()[0].find("ntp_distinct_addresses")->count, 1u);
  EXPECT_EQ(hb.timeline()[2].find("ntp_distinct_addresses")->count, 4u);
}

TEST(ScanEngine, AccessorsReadTheRegistryInstruments) {
  simnet::EventQueue events;
  simnet::Network network(events);
  scan::ResultStore results;
  Registry reg;
  Tracer tracer(64);
  tracer.set_sim_clock(&events);

  scan::ScanEngineConfig cfg;
  cfg.scanner_address = addr(0xbeef);
  cfg.min_protocol_delay = simnet::usec(10);
  cfg.max_protocol_delay = simnet::usec(20);
  cfg.max_pps = 100000;
  cfg.registry = &reg;
  cfg.tracer = &tracer;
  {
    scan::ScanEngine engine(network, results, cfg);
    engine.submit(addr(1));
    engine.submit(addr(2));
    engine.submit(addr(1));  // inside the blackout -> skipped
    events.run();

    obs::Labels ds{{"dataset", "ntp"}};
    EXPECT_EQ(engine.submitted(), 2u);
    EXPECT_EQ(engine.skipped_blackout(), 1u);
    EXPECT_EQ(reg.find_counter("scan_submitted", ds)->value(),
              engine.submitted());
    EXPECT_EQ(reg.find_counter("scan_skipped_blackout", ds)->value(),
              engine.skipped_blackout());
    EXPECT_EQ(engine.probes_launched(), 2 * scan::kProtocolCount);
    EXPECT_EQ(engine.probes_completed(), engine.probes_launched());

    // Per-protocol counters sum to the total.
    std::uint64_t launched = 0, completed = 0;
    for (std::size_t p = 0; p < scan::kProtocolCount; ++p) {
      auto proto = static_cast<scan::Protocol>(p);
      launched += engine.probes_launched(proto);
      completed += engine.probes_completed(proto);
      obs::Labels labeled = ds;
      labeled.emplace_back("proto", std::string(scan::label(proto)));
      EXPECT_EQ(reg.find_counter("scan_probes_launched", labeled)->value(),
                engine.probes_launched(proto));
    }
    EXPECT_EQ(launched, engine.probes_launched());
    EXPECT_EQ(completed, engine.probes_completed());

    // Token bucket recorded one wait per launched probe; RTT one per
    // completion; the tracer saw each probe's full lifecycle — stage span,
    // grant instant, launch span, record instant and lifecycle span.
    EXPECT_EQ(engine.token_wait().count(), engine.probes_launched());
    EXPECT_EQ(engine.probe_rtt().count(), engine.probes_completed());
    EXPECT_EQ(tracer.completed(), 5 * engine.probes_completed());
    EXPECT_EQ(tracer.open_spans(), 0u);
    EXPECT_GE(reg.size(), 7u + 2 * scan::kProtocolCount);
  }
  // Engine destruction dropped its instruments from the registry.
  EXPECT_EQ(reg.size(), 0u);
}

TEST(EventQueueMetrics, ExecutedAndPendingExported) {
  Registry reg;
  simnet::EventQueue events;
  events.attach_metrics(reg, {{"queue", "test"}});
  for (int i = 0; i < 5; ++i) events.schedule_at(simnet::sec(i + 1), [] {});
  EXPECT_EQ(reg.find_gauge("simnet_events_pending", {{"queue", "test"}})
                ->value(),
            5);
  events.run();
  EXPECT_EQ(events.executed(), 5u);
  EXPECT_EQ(reg.find_counter("simnet_events_executed", {{"queue", "test"}})
                ->value(),
            5u);
  const Histogram* h =
      reg.find_histogram("simnet_dispatch_wall_ns", {{"queue", "test"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 5u);  // dispatch timing on by default when attached
}

}  // namespace
}  // namespace tts::obs
