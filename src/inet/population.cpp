#include "inet/population.hpp"

#include <cassert>
#include <cmath>

#include "net/oui_db.hpp"
#include "util/format.hpp"

namespace tts::inet {

namespace {

/// Hosting abundance is not proportional to a country's NTP client volume;
/// mix a base per hosting AS with a small population term.
double hosting_units(const CountryParams& c) {
  return 90.0 * c.hosting_ases + 0.02 * c.client_weight;
}

net::MacAddress random_vendor_mac(const Addressing& addr, util::Rng& rng,
                                  bool& listed) {
  const auto& db = net::OuiDatabase::builtin();
  std::uint32_t oui;
  if (!addr.ouis.empty() && !rng.chance(addr.unlisted_oui)) {
    oui = addr.ouis[rng.below(addr.ouis.size())];
    listed = true;
  } else {
    // Draw an unregistered OUI with the universal/unicast bits clear.
    do {
      oui = static_cast<std::uint32_t>(rng.below(1 << 24)) & 0xfcffffu;
    } while (db.lookup(oui).has_value());
    listed = false;
  }
  std::uint64_t nic = rng.below(1 << 24);
  return net::MacAddress::from_u64(
      (static_cast<std::uint64_t>(oui) << 24) | nic);
}

net::MacAddress random_local_mac(util::Rng& rng) {
  std::uint64_t v = rng.below(1ULL << 48);
  auto mac = net::MacAddress::from_u64(v);
  auto bytes = mac.bytes();
  bytes[0] = static_cast<std::uint8_t>((bytes[0] | 0x02) & ~0x01);
  return net::MacAddress::from_bytes(bytes);
}

}  // namespace

KeyId Population::assign_key(KeyProvisioning mode, const std::string& model,
                             int pool_size, const char* kind,
                             util::Rng& rng) {
  switch (mode) {
    case KeyProvisioning::kUniquePerDevice:
      return next_unique_key_++;
    case KeyProvisioning::kVendorShared:
      return util::fnv1a(model + ":" + kind) | 0x8000000000000000ULL;
    case KeyProvisioning::kSharedPool: {
      std::uint64_t slot = rng.below(static_cast<std::uint64_t>(
          pool_size > 0 ? pool_size : 1));
      return util::fnv1a(model + ":" + kind + ":" + std::to_string(slot)) |
             0x8000000000000000ULL;
    }
  }
  return next_unique_key_++;
}

std::uint64_t Population::iid_for(Device& device, bool regenerate,
                                  util::Rng& rng) {
  const Addressing& a = device.profile->addr;
  switch (a.iid) {
    case IidMode::kEui64: {
      // Vendor MACs are burned in and survive every churn; locally
      // administered (randomised) MACs re-roll whenever the device
      // regenerates its identifier. Whether a device carries a vendor MAC
      // is decided once, at first assignment.
      if (device.mac == net::MacAddress{}) {
        if (rng.chance(a.vendor_mac)) {
          bool listed = false;
          device.mac = random_vendor_mac(a, rng, listed);
          device.vendor_mac = true;
        } else {
          device.mac = random_local_mac(rng);
          device.vendor_mac = false;
        }
      } else if (regenerate && !device.vendor_mac) {
        device.mac = random_local_mac(rng);
      }
      return net::eui64_iid_from_mac(device.mac);
    }
    case IidMode::kPrivacyRandom: {
      std::uint64_t iid;
      do {
        iid = rng.next();
      } while (net::iid_looks_like_eui64(iid) || iid < 0x10000);
      return iid;
    }
    case IidMode::kStaticZero:
      return 0;
    case IidMode::kStaticLowByte:
      if (device.current_iid != 0 && !regenerate) return device.current_iid;
      return 1 + rng.below(255);
    case IidMode::kStaticLowTwoBytes:
      if (device.current_iid != 0 && !regenerate) return device.current_iid;
      return 256 + rng.below(65536 - 256);
    case IidMode::kDhcpRandomish: {
      if (device.current_iid != 0 && !regenerate) return device.current_iid;
      std::uint64_t iid;
      do {
        iid = rng.next();
      } while (net::iid_looks_like_eui64(iid) || iid < 0x10000);
      return iid;
    }
  }
  return rng.next();
}

net::Ipv6Prefix Population::allocate_delegation(net::AsNumber asn,
                                                bool eyeball,
                                                util::Rng& rng) {
  const AsInfo* as = registry_->find(asn);
  assert(as && !as->prefixes.empty());
  std::uint64_t n = next_customer_[asn]++;

  // Spill across the AS's /32s when the first fills (64k /48s each).
  std::uint64_t per_prefix =
      65536ULL * static_cast<std::uint64_t>(config_.customers_per_48);
  std::size_t prefix_idx =
      static_cast<std::size_t>(n / per_prefix) % as->prefixes.size();
  std::uint64_t local = n % per_prefix;

  std::uint64_t idx48 =
      local / static_cast<std::uint64_t>(config_.customers_per_48);
  std::uint64_t base_hi = as->prefixes[prefix_idx].address().hi64();

  if (eyeball) {
    // A /56 customer delegation at a random slot inside the /48.
    std::uint64_t slot56 = rng.below(256);
    std::uint64_t hi = base_hi | (idx48 << 16) | (slot56 << 8);
    return net::Ipv6Prefix(net::Ipv6Address::from_halves(hi, 0), 56);
  }
  // Hosting: /64s packed two per /56 and ~512 per /48 (rack numbering) —
  // the density that makes hitlist endpoints collapse under network
  // aggregation (Table 5).
  std::uint64_t h48 = n / 512;
  std::uint64_t slot56 = (n / 2) % 256;
  std::uint64_t vlan = n % 2;
  std::uint64_t hi = base_hi | (h48 << 16) | (slot56 << 8) | vlan;
  return net::Ipv6Prefix(net::Ipv6Address::from_halves(hi, 0), 64);
}

net::Ipv6Prefix Population::rotate_delegation(net::AsNumber asn, bool eyeball,
                                              util::Rng& rng) {
  // ISP prefix rotation recycles delegations from the AS's active pool
  // instead of burning fresh /48s: a rotating customer lands in a /48 that
  // other customers already populate. This is what makes NTP-collected
  // /48s dense (Table 1's median-IPs-per-/48 of 5).
  // Pure read: rotation happens from concurrent churn events once the
  // population is built, and every AS with devices was populated during
  // build (so the operator[] insert path would only ever race, not help).
  auto it = next_customer_.find(asn);
  std::uint64_t n = it == next_customer_.end() ? 0 : it->second;
  if (n == 0) return allocate_delegation(asn, eyeball, rng);
  std::uint64_t pool =
      n * static_cast<std::uint64_t>(
              config_.rotation_pool_spread > 0 ? config_.rotation_pool_spread
                                               : 1);
  std::uint64_t local = rng.below(pool);
  const AsInfo* as = registry_->find(asn);
  assert(as && !as->prefixes.empty());
  std::uint64_t per_prefix =
      65536ULL * static_cast<std::uint64_t>(config_.customers_per_48);
  std::size_t prefix_idx =
      static_cast<std::size_t>(local / per_prefix) % as->prefixes.size();
  std::uint64_t in_prefix = local % per_prefix;
  std::uint64_t idx48 =
      in_prefix / static_cast<std::uint64_t>(config_.customers_per_48);
  std::uint64_t base_hi = as->prefixes[prefix_idx].address().hi64();
  if (eyeball) {
    std::uint64_t slot56 = rng.below(256);
    std::uint64_t hi = base_hi | (idx48 << 16) | (slot56 << 8);
    return net::Ipv6Prefix(net::Ipv6Address::from_halves(hi, 0), 56);
  }
  std::uint64_t hi = base_hi | (idx48 << 16) | (rng.below(256) << 8) |
                     rng.below(2);
  return net::Ipv6Prefix(net::Ipv6Address::from_halves(hi, 0), 64);
}

net::Ipv6Address Population::make_address(Device& device,
                                          const net::Ipv6Prefix& delegation,
                                          bool regenerate_iid,
                                          util::Rng& rng) {
  std::uint64_t hi = delegation.address().hi64();
  if (delegation.length() <= 56) {
    // Device picks (keeps) a /64 inside its /56 — home LAN segment 0.
    hi |= 0;
  }
  device.current_iid = iid_for(device, regenerate_iid, rng);
  return net::Ipv6Address::from_halves(hi, device.current_iid);
}

Population Population::generate(const AsRegistry& registry,
                                const PopulationConfig& config) {
  Population pop(registry, config);
  util::Rng root(config.seed);
  util::Rng count_rng = root.stream("population.counts");

  std::uint32_t next_id = 1;

  for (const auto& profile : device_catalogue()) {
    // CDN load balancers live in the global content ASes, not per country.
    if (profile.cls == DeviceClass::kCdnLoadBalancer) {
      auto content = registry.by_category(AsCategory::kContent);
      if (content.empty()) continue;
      double expected = profile.weight * 400.0 * config.device_scale;
      auto n = static_cast<std::uint64_t>(expected + count_rng.uniform());
      for (std::uint64_t i = 0; i < n; ++i) {
        util::Rng dev_rng = root.stream("device").stream(next_id);
        const AsInfo* as = content[dev_rng.below(content.size())];
        Device d;
        d.id = next_id++;
        d.profile = &profile;
        d.asn = as->number;
        d.country = "ZZ";
        d.delegation = pop.allocate_delegation(as->number, false, dev_rng);
        pop.instantiate_services(d, dev_rng);
        d.initial_address = pop.make_address(d, d.delegation, true, dev_rng);
        pop.devices_.push_back(std::move(d));
      }
      continue;
    }

    for (const auto& country : registry.countries()) {
      double mult = country_multiplier(profile, country.code);
      if (mult <= 0) continue;

      auto pick_category = [&](util::Rng& r) {
        switch (profile.placement) {
          case Placement::kEyeball: return AsCategory::kCableDslIsp;
          case Placement::kMobile: return AsCategory::kMobile;
          case Placement::kHosting: return AsCategory::kHosting;
          case Placement::kMixed: {
            double x = r.uniform();
            if (x < 0.60) return AsCategory::kCableDslIsp;
            if (x < 0.85) return AsCategory::kMobile;
            return AsCategory::kHosting;
          }
        }
        return AsCategory::kCableDslIsp;
      };

      double units = profile.placement == Placement::kHosting
                         ? hosting_units(country)
                         : country.client_weight;
      double expected = profile.weight * mult * units * config.device_scale;
      auto n = static_cast<std::uint64_t>(expected + count_rng.uniform());

      for (std::uint64_t i = 0; i < n; ++i) {
        util::Rng dev_rng = root.stream("device").stream(next_id);
        AsCategory cat = pick_category(dev_rng);
        auto candidates = registry.in_country(country.code, cat);
        if (candidates.empty())
          candidates = registry.in_country(country.code,
                                           AsCategory::kCableDslIsp);
        if (candidates.empty()) continue;
        std::vector<double> weights;
        weights.reserve(candidates.size());
        for (const auto* as : candidates) weights.push_back(as->size_weight);
        const AsInfo* as = candidates[dev_rng.pick_weighted(weights)];

        bool eyeball_numbering = cat != AsCategory::kHosting;
        Device d;
        d.id = next_id++;
        d.profile = &profile;
        d.asn = as->number;
        d.country = country.code;
        d.delegation =
            pop.allocate_delegation(as->number, eyeball_numbering, dev_rng);
        pop.instantiate_services(d, dev_rng);
        d.initial_address = pop.make_address(d, d.delegation, true, dev_rng);
        pop.devices_.push_back(std::move(d));
      }
    }
  }
  return pop;
}

void Population::instantiate_services(Device& d, util::Rng& rng) {
  const DeviceProfile& p = *d.profile;

  if (rng.chance(p.http.enabled)) {
    d.http_enabled = true;
    d.http_status = p.http.status;
    d.http_title = p.http.title;
    d.http_server_header = p.http.server_header;
    d.sni_required = p.http.sni_required;
    if (rng.chance(p.http.tls)) {
      d.http_tls = true;
      d.http_cert = assign_key(p.http.cert, p.model, p.http.shared_pool_size,
                               "https", rng);
    }
  }
  if (rng.chance(p.ssh.enabled)) {
    d.ssh_enabled = true;
    d.ssh_os = p.ssh.os;
    const auto& lineage = ssh_version_lineage(p.ssh.os);
    if (rng.chance(p.ssh.outdated) && lineage.size() > 1)
      d.ssh_version_index = rng.below(lineage.size() - 1);
    else
      d.ssh_version_index = lineage.size() - 1;
    d.ssh_key =
        assign_key(p.ssh.key, p.model, p.ssh.shared_pool_size, "ssh", rng);
  }
  if (rng.chance(p.mqtt.enabled)) {
    d.mqtt_enabled = true;
    d.mqtt_auth = rng.chance(p.mqtt.auth);
    if (rng.chance(p.mqtt.tls)) {
      d.mqtt_tls = true;
      d.mqtt_cert = assign_key(p.mqtt.cert, p.model, p.mqtt.shared_pool_size,
                               "mqtts", rng);
    }
  }
  if (rng.chance(p.amqp.enabled)) {
    d.amqp_enabled = true;
    d.amqp_auth = rng.chance(p.amqp.auth);
    if (rng.chance(p.amqp.tls)) {
      d.amqp_tls = true;
      d.amqp_cert = assign_key(p.amqp.cert, p.model, p.amqp.shared_pool_size,
                               "amqps", rng);
    }
  }
  if (rng.chance(p.coap.enabled)) d.coap_enabled = true;

  d.uses_pool = rng.chance(p.ntp.uses_pool);
  // Spread poll cadence log-normally around the profile mean.
  d.ntp_interval_hours =
      p.ntp.mean_interval_hours * rng.lognormal(0.0, 0.35);
  d.daily_prefix_change = p.addr.daily_prefix_change;
  d.daily_iid_change = p.addr.daily_iid_change;
  d.in_dns_sources = rng.chance(p.disc.dns);
  d.in_traceroute = rng.chance(p.disc.traceroute);
}

}  // namespace tts::inet
