#include <gtest/gtest.h>

#include "simnet/event_queue.hpp"
#include "simnet/network.hpp"

namespace tts::simnet {
namespace {

net::Ipv6Address addr(std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x2400000100000000ULL, lo);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(sec(3), [&] { order.push_back(3); });
  q.schedule_at(sec(1), [&] { order.push_back(1); });
  q.schedule_at(sec(2), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), sec(3));
}

TEST(EventQueue, TieBreakBySchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(sec(5), [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  q.schedule_at(sec(10), [] {});
  q.run();
  bool ran = false;
  q.schedule_at(sec(5), [&] { ran = true; });  // in the past now
  q.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), sec(10));
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  int count = 0;
  q.schedule_at(sec(1), [&] { ++count; });
  q.schedule_at(sec(5), [&] { ++count; });
  q.run_until(sec(3));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.now(), sec(3));
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(sec(10));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), sec(10));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(sec(1), recurse);
  };
  q.schedule_in(sec(1), recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueue, FormatDuration) {
  EXPECT_EQ(format_duration(sec(0)), "00:00:00");
  EXPECT_EQ(format_duration(hours(1) + minutes(2) + sec(3)), "01:02:03");
  EXPECT_EQ(format_duration(days(2) + hours(3)), "2d 03:00:00");
  EXPECT_EQ(format_duration(-sec(5)), "-00:00:05");
}

// ------------------------------------------------------------------- timer

TEST(Timer, FiresOnceAtDeadlineAndDisarms) {
  EventQueue q;
  int fired = 0;
  Timer t(q, [&] { ++fired; });
  t.arm(sec(2));
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(t.deadline(), sec(2));
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());  // one-shot: re-arm explicitly
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(Timer, ReArmEarlierSupersedesTheOldEntry) {
  EventQueue q;
  std::vector<SimTime> fires;
  Timer t(q, [&] { fires.push_back(q.now()); });
  t.arm(sec(10));
  t.arm(sec(3));  // moved earlier: new entry, old one goes inert
  q.run();
  EXPECT_EQ(fires, (std::vector<SimTime>{sec(3)}));
  EXPECT_EQ(q.now(), sec(10));  // the dead entry still sat in the heap
  EXPECT_EQ(t.entries_scheduled(), 2u);
}

TEST(Timer, ReArmLaterReusesTheEntryLazily) {
  EventQueue q;
  std::vector<SimTime> fires;
  Timer t(q, [&] { fires.push_back(q.now()); });
  t.arm(sec(1));
  t.arm(sec(5));  // moved later: NO new entry now...
  EXPECT_EQ(t.entries_scheduled(), 1u);
  q.run();
  // ...the t=1 entry fired early, noticed the move and chased the deadline.
  EXPECT_EQ(fires, (std::vector<SimTime>{sec(5)}));
  EXPECT_EQ(t.entries_scheduled(), 2u);
}

TEST(Timer, SameDeadlineReArmIsFree) {
  EventQueue q;
  int fired = 0;
  Timer t(q, [&] { ++fired; });
  for (int i = 0; i < 100; ++i) t.arm(sec(4));
  EXPECT_EQ(t.entries_scheduled(), 1u);  // the coalescing the pump relies on
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(Timer, CancelMakesPendingEntriesInert) {
  EventQueue q;
  int fired = 0;
  Timer t(q, [&] { ++fired; });
  t.arm(sec(2));
  t.cancel();
  EXPECT_FALSE(t.armed());
  q.run();
  EXPECT_EQ(fired, 0);
  // Cancel-then-re-arm still works.
  t.arm(sec(3));
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(Timer, CallbackMayReArmItself) {
  EventQueue q;
  int fired = 0;
  Timer t(q, [&] {
    if (++fired < 3) t.arm(q.now() + sec(1));
  });
  t.arm(sec(1));
  q.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), sec(3));
}

TEST(Timer, DestructionLeavesHeapEntriesInert) {
  EventQueue q;
  int fired = 0;
  {
    Timer t(q, [&] { ++fired; });
    t.arm(sec(1));
  }  // destroyed with a pending entry
  q.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CallbackMayDestroyItsOwnTimer) {
  EventQueue q;
  int fired = 0;
  std::unique_ptr<Timer> t;
  t = std::make_unique<Timer>(q, [&] {
    ++fired;
    t.reset();  // the copy-before-call in fire() keeps this safe
  });
  t->arm(sec(1));
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(t, nullptr);
}

// ------------------------------------------------------------------ network

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(events_, config()) {}
  static NetworkConfig config() {
    NetworkConfig c;
    c.min_latency = msec(10);
    c.max_latency = msec(20);
    c.jitter = 0;
    return c;
  }
  EventQueue events_;
  Network network_;
};

TEST_F(NetworkTest, UdpDeliversToBoundEndpoint) {
  Endpoint server{addr(1), 9000};
  Endpoint client{addr(2), 1234};
  std::vector<std::uint8_t> received;
  network_.bind_udp(server, [&](const Datagram& dg) {
    received = dg.payload;
    EXPECT_EQ(dg.src, client);
  });
  network_.send_udp(client, server, {1, 2, 3});
  events_.run();
  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(network_.udp_delivered(), 1u);
}

TEST_F(NetworkTest, UdpToUnboundIsSilent) {
  network_.send_udp({addr(2), 1}, {addr(1), 9000}, {1});
  events_.run();
  EXPECT_EQ(network_.udp_delivered(), 0u);
  EXPECT_EQ(network_.udp_sent(), 1u);
}

TEST_F(NetworkTest, UdpLoss) {
  NetworkConfig lossy = config();
  lossy.loss_rate = 1.0;
  Network drop_net(events_, lossy);
  bool got = false;
  drop_net.bind_udp({addr(1), 9000}, [&](const Datagram&) { got = true; });
  drop_net.send_udp({addr(2), 1}, {addr(1), 9000}, {1});
  events_.run();
  EXPECT_FALSE(got);
}

TEST_F(NetworkTest, TcpConnectRefusedWhenOnlineNoListener) {
  network_.attach(addr(1));
  bool called = false;
  network_.connect_tcp({addr(2), 1}, {addr(1), 22},
                       [&](TcpConnectionPtr conn, bool refused) {
                         called = true;
                         EXPECT_EQ(conn, nullptr);
                         EXPECT_TRUE(refused);
                       });
  events_.run();
  EXPECT_TRUE(called);
}

TEST_F(NetworkTest, TcpConnectTimesOutWhenOffline) {
  bool called = false;
  SimTime start = events_.now();
  network_.connect_tcp({addr(2), 1}, {addr(1), 22},
                       [&](TcpConnectionPtr conn, bool refused) {
                         called = true;
                         EXPECT_EQ(conn, nullptr);
                         EXPECT_FALSE(refused);
                       },
                       sec(5));
  events_.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(events_.now(), start + sec(5));
}

TEST_F(NetworkTest, TcpFullDuplexExchange) {
  Endpoint server{addr(1), 7}, client{addr(2), 40000};
  network_.attach(addr(1));
  network_.listen_tcp(server, [&](TcpConnectionPtr conn) {
    conn->set_on_data(TcpConnection::Side::kServer,
                      [conn](std::vector<std::uint8_t> data) {
                        data.push_back(0xFF);  // echo + marker
                        conn->send(TcpConnection::Side::kServer,
                                   std::move(data));
                      });
  });
  std::vector<std::uint8_t> reply;
  network_.connect_tcp(client, server,
                       [&](TcpConnectionPtr conn, bool refused) {
                         ASSERT_FALSE(refused);
                         ASSERT_NE(conn, nullptr);
                         conn->set_on_data(
                             TcpConnection::Side::kClient,
                             [&reply](std::vector<std::uint8_t> data) {
                               reply = std::move(data);
                             });
                         conn->send(TcpConnection::Side::kClient, {9, 8});
                       });
  events_.run();
  EXPECT_EQ(reply, (std::vector<std::uint8_t>{9, 8, 0xFF}));
  EXPECT_EQ(network_.tcp_established(), 1u);
}

TEST_F(NetworkTest, TcpDataQueuedBeforeCloseStillDelivered) {
  Endpoint server{addr(1), 80};
  network_.attach(addr(1));
  network_.listen_tcp(server, [&](TcpConnectionPtr conn) {
    conn->set_on_data(TcpConnection::Side::kServer,
                      [conn](std::vector<std::uint8_t>) {
                        conn->send(TcpConnection::Side::kServer, {42});
                        conn->close(TcpConnection::Side::kServer);
                      });
  });
  bool got_data = false, got_close = false;
  network_.connect_tcp({addr(2), 1}, server,
                       [&](TcpConnectionPtr conn, bool) {
                         ASSERT_NE(conn, nullptr);
                         conn->set_on_data(TcpConnection::Side::kClient,
                                           [&](std::vector<std::uint8_t> d) {
                                             got_data = (d[0] == 42);
                                             EXPECT_FALSE(got_close);
                                           });
                         conn->set_on_close(TcpConnection::Side::kClient,
                                            [&] { got_close = true; });
                         conn->send(TcpConnection::Side::kClient, {1});
                       });
  events_.run();
  EXPECT_TRUE(got_data);   // the response survived the server's close
  EXPECT_TRUE(got_close);  // and the close arrived afterwards
}

TEST_F(NetworkTest, DetachDropsBindingsAndRefcounts) {
  network_.attach(addr(1));
  network_.attach(addr(1));  // second claim
  network_.bind_udp({addr(1), 5}, [](const Datagram&) {});
  network_.detach(addr(1));
  EXPECT_TRUE(network_.online(addr(1)));  // still held once
  network_.detach(addr(1));
  EXPECT_FALSE(network_.online(addr(1)));
  // Binding gone: datagram is silent.
  network_.send_udp({addr(2), 1}, {addr(1), 5}, {1});
  events_.run();
  EXPECT_EQ(network_.udp_delivered(), 0u);
}

TEST_F(NetworkTest, WildcardPrefixListener) {
  auto region = *net::Ipv6Prefix::parse("2400:1::/32");
  int accepted = 0;
  network_.listen_tcp_prefix(region, 80,
                             [&](TcpConnectionPtr) { ++accepted; });
  // Any address in the region accepts, without attach or exact bind.
  for (std::uint64_t i = 0; i < 5; ++i) {
    network_.connect_tcp(
        {addr(900 + i), 1},
        {net::Ipv6Address::from_halves(0x2400000100000000ULL | i, i), 80},
        [&](TcpConnectionPtr conn, bool refused) {
          EXPECT_NE(conn, nullptr);
          EXPECT_FALSE(refused);
        });
  }
  events_.run();
  EXPECT_EQ(accepted, 5);
  // Different port still refused/blackholed.
  bool ok = false;
  network_.connect_tcp({addr(900), 1},
                       {net::Ipv6Address::from_halves(0x2400000100000000ULL, 7),
                        443},
                       [&](TcpConnectionPtr conn, bool) {
                         ok = (conn == nullptr);
                       });
  events_.run();
  EXPECT_TRUE(ok);
}

TEST_F(NetworkTest, TapsSeeTrafficToUnboundAddresses) {
  auto monitored = *net::Ipv6Prefix::parse("2400:1::/32");
  std::vector<TapEvent> events;
  network_.add_tap(monitored, [&](const TapEvent& ev) {
    events.push_back(ev);
  });
  // TCP connect attempt to a dark address.
  network_.connect_tcp({addr(5), 1}, {addr(6), 3389},
                       [](TcpConnectionPtr, bool) {}, sec(1));
  // UDP datagram to a dark address.
  network_.send_udp({addr(5), 1}, {addr(7), 5683}, {1, 2});
  events_.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].proto, TransportProto::kTcp);
  EXPECT_EQ(events[0].dst.port, 3389);
  EXPECT_EQ(events[1].proto, TransportProto::kUdp);
  EXPECT_EQ(events[1].payload_size, 2u);
}

TEST_F(NetworkTest, TapRemoval) {
  auto monitored = *net::Ipv6Prefix::parse("2400:1::/32");
  int count = 0;
  auto id = network_.add_tap(monitored, [&](const TapEvent&) { ++count; });
  network_.send_udp({addr(5), 1}, {addr(7), 1}, {1});
  events_.run();
  network_.remove_tap(id);
  network_.send_udp({addr(5), 1}, {addr(7), 1}, {1});
  events_.run();
  EXPECT_EQ(count, 1);
}

TEST_F(NetworkTest, TcpDoubleCloseAndSendAfterCloseAreSafe) {
  Endpoint server{addr(1), 80};
  network_.attach(addr(1));
  int server_closes = 0;
  network_.listen_tcp(server, [&](TcpConnectionPtr conn) {
    conn->set_on_close(TcpConnection::Side::kServer,
                       [&] { ++server_closes; });
  });
  TcpConnectionPtr client_conn;
  network_.connect_tcp({addr(2), 1}, server,
                       [&](TcpConnectionPtr conn, bool) {
                         client_conn = conn;
                       });
  events_.run();
  ASSERT_NE(client_conn, nullptr);
  client_conn->close(TcpConnection::Side::kClient);
  client_conn->close(TcpConnection::Side::kClient);  // second close: no-op
  client_conn->send(TcpConnection::Side::kClient, {1});  // dropped
  events_.run();
  EXPECT_EQ(server_closes, 1);
  EXPECT_FALSE(client_conn->open());
}

TEST_F(NetworkTest, SimultaneousConnectionsAreIndependent) {
  Endpoint server{addr(1), 7};
  network_.attach(addr(1));
  int served = 0;
  network_.listen_tcp(server, [&](TcpConnectionPtr conn) {
    conn->set_on_data(TcpConnection::Side::kServer,
                      [conn, &served](std::vector<std::uint8_t> d) {
                        ++served;
                        conn->send(TcpConnection::Side::kServer,
                                   std::move(d));
                      });
  });
  int replies = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    network_.connect_tcp(
        {addr(100 + i), static_cast<std::uint16_t>(1000 + i)}, server,
        [&replies, i](TcpConnectionPtr conn, bool) {
          ASSERT_NE(conn, nullptr);
          conn->set_on_data(TcpConnection::Side::kClient,
                            [&replies, i](std::vector<std::uint8_t> d) {
                              ASSERT_EQ(d.size(), 1u);
                              EXPECT_EQ(d[0], static_cast<std::uint8_t>(i));
                              ++replies;
                            });
          conn->send(TcpConnection::Side::kClient,
                     {static_cast<std::uint8_t>(i)});
        });
  }
  events_.run();
  EXPECT_EQ(served, 20);
  EXPECT_EQ(replies, 20);
}

TEST_F(NetworkTest, UnbindDuringDeliveryIsSafe) {
  // A UDP handler that unbinds itself while running must not invalidate
  // the in-flight dispatch.
  Endpoint ep{addr(3), 9};
  int received = 0;
  network_.bind_udp(ep, [&](const Datagram&) {
    ++received;
    network_.unbind_udp(ep);
  });
  network_.send_udp({addr(4), 1}, ep, {1});
  network_.send_udp({addr(4), 1}, ep, {2});  // after unbind: silent
  events_.run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, CloseBreaksHandlerCycleAndFreesConnection) {
  // Handlers routinely capture the TcpConnectionPtr they are set on; the
  // connection must still be freed once the close is delivered (the
  // handlers are dropped with it), or every scanned host leaks.
  Endpoint server{addr(1), 80};
  network_.attach(addr(1));
  std::weak_ptr<TcpConnection> server_side;
  network_.listen_tcp(server, [&](TcpConnectionPtr conn) {
    server_side = conn;
    conn->set_on_data(TcpConnection::Side::kServer,
                      [conn](std::vector<std::uint8_t>) {
                        conn->close(TcpConnection::Side::kServer);
                      });
  });
  std::weak_ptr<TcpConnection> client_side;
  network_.connect_tcp({addr(2), 1}, server,
                       [&](TcpConnectionPtr conn, bool) {
                         ASSERT_NE(conn, nullptr);
                         client_side = conn;
                         conn->set_on_close(TcpConnection::Side::kClient,
                                            [conn] { /* keeps the cycle */ });
                         conn->send(TcpConnection::Side::kClient, {1});
                       });
  events_.run();
  EXPECT_TRUE(server_side.expired());
  EXPECT_TRUE(client_side.expired());
}

TEST(NetworkLifecycle, DestructorBreaksCyclesOfNeverClosedConnections) {
  // run_until() can truncate a study before in-flight connections close;
  // Network teardown must still break their handler cycles.
  EventQueue events;
  std::weak_ptr<TcpConnection> leaked;
  {
    Network network(events);
    network.attach(addr(1));
    network.listen_tcp({addr(1), 80}, [](TcpConnectionPtr conn) {
      conn->set_on_data(TcpConnection::Side::kServer,
                        [conn](std::vector<std::uint8_t>) {});
    });
    network.connect_tcp({addr(2), 1}, {addr(1), 80},
                        [&](TcpConnectionPtr conn, bool) {
                          ASSERT_NE(conn, nullptr);
                          leaked = conn;
                          conn->set_on_data(TcpConnection::Side::kClient,
                                            [conn](std::vector<std::uint8_t>) {
                                            });
                        });
    events.run();  // established, never closed
    EXPECT_FALSE(leaked.expired());
  }
  EXPECT_TRUE(leaked.expired());
}

TEST_F(NetworkTest, LatencyIsDeterministicAndBounded) {
  auto a = addr(100), b = addr(200);
  SimDuration l1 = network_.base_latency(a, b);
  SimDuration l2 = network_.base_latency(b, a);
  EXPECT_EQ(l1, l2);  // symmetric
  EXPECT_GE(l1, msec(10));
  EXPECT_LT(l1, msec(20));
}

}  // namespace
}  // namespace tts::simnet
