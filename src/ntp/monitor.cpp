#include "ntp/monitor.hpp"

#include <algorithm>

#include "ntp/pool.hpp"

namespace tts::ntp {

PoolMonitor::PoolMonitor(simnet::Network& network, NtpPool& pool,
                         PoolMonitorConfig config)
    : network_(network),
      pool_(pool),
      config_(std::move(config)),
      client_(network),
      category_(network.events().register_category("pool_monitor")) {
  network_.subscribe_routes([this](const net::Ipv6Prefix& prefix,
                                   simnet::RouteOp op, simnet::SimTime) {
    on_route_transition(prefix, op);
  });
}

void PoolMonitor::on_route_transition(const net::Ipv6Prefix& prefix,
                                      simnet::RouteOp op) {
  if (op == simnet::RouteOp::kWithdraw) {
    for (const auto& entry : pool_.servers()) {
      if (!prefix.contains(entry.address)) continue;
      if (saved_scores_.contains(entry.address)) continue;  // nested withdraw
      saved_scores_[entry.address] = entry.monitor_score;
      if (entry.monitor_score >= NtpPool::kRotationThreshold)
        ++route_demotions_;
      // Running inside the route plane's barrier commit: no shard executes,
      // so the rotation-score write is already at its quiescent point.
      pool_.set_monitor_score(  // ttslint: allow(barrier-only) reason=runs inside the route plane's barrier commit
          entry.address,
          std::min(entry.monitor_score, NtpPool::kRotationThreshold - 1));
    }
    return;
  }
  for (const auto& entry : pool_.servers()) {
    if (!prefix.contains(entry.address)) continue;
    auto saved = saved_scores_.find(entry.address);
    if (saved == saved_scores_.end()) continue;
    if (saved->second >= NtpPool::kRotationThreshold &&
        entry.monitor_score < NtpPool::kRotationThreshold)
      ++route_promotions_;
    pool_.set_monitor_score(  // ttslint: allow(barrier-only) reason=runs inside the route plane's barrier commit
        entry.address, saved->second);
    saved_scores_.erase(saved);
  }
}

void PoolMonitor::start() {
  if (started_) return;
  started_ = true;
  network_.events().schedule_in(config_.check_interval, category_, [this] {
    run_round();
  });
}

void PoolMonitor::run_round() {
  // Snapshot addresses: servers may be added while queries are in flight.
  std::vector<net::Ipv6Address> servers;
  for (const auto& entry : pool_.servers()) servers.push_back(entry.address);

  for (const auto& addr : servers) {
    ++checks_;
    std::uint16_t port = next_port_++;
    if (next_port_ < 20000) next_port_ = 20000;
    client_.query(
        config_.vantage, port, addr,
        [this, addr](std::optional<NtpQueryResult> result) {
          bool hit = result.has_value();
          if (!hit) ++misses_;
          // Scores are read by every device's resolve(): commit the
          // read-modify-write at the next window barrier, when no shard
          // is executing (immediate on an unsharded queue).
          network_.events().run_at_barrier([this, addr, hit] {
            // Find the current score (servers() order may have changed).
            int score = 0;
            for (const auto& entry : pool_.servers())
              if (entry.address == addr) score = entry.monitor_score;
            score = hit
                ? std::min(config_.max_score, score + config_.on_success)
                : std::max(config_.min_score, score + config_.on_miss);
            pool_.set_monitor_score(addr, score);
          });
        },
        simnet::sec(3));
  }

  if (network_.now() < config_.duration) {
    network_.events().schedule_in(config_.check_interval, category_,
                                  [this] { run_round(); });
  }
}

}  // namespace tts::ntp
