#include "simnet/network.hpp"

#include <algorithm>
#include <cassert>

namespace tts::simnet {

// ---------------------------------------------------------------- TcpConnection

TcpConnection::TcpConnection(Network* net, Endpoint client, Endpoint server,
                             SimDuration latency)
    : net_(net),
      client_(std::move(client)),
      server_(std::move(server)),
      latency_(latency) {}

void TcpConnection::set_on_data(Side side, DataFn fn) {
  on_data_[static_cast<int>(side)] = std::move(fn);
}

void TcpConnection::set_on_close(Side side, CloseFn fn) {
  on_close_[static_cast<int>(side)] = std::move(fn);
}

void TcpConnection::send(Side from, std::vector<std::uint8_t> data) {
  if (!open_) return;
  if (stalled_) {
    // Fault-injected stall: the connection looks established, but payload
    // bytes silently vanish in both directions (counted by the plane).
    if (net_->fault_) net_->fault_->note_stalled_data();
    return;
  }
  int to = 1 - static_cast<int>(from);
  auto self = shared_from_this();
  // Data queued before a close is still delivered (TCP flushes the send
  // buffer before the FIN); the close notification is scheduled after it.
  net_->events_.schedule_in(
      latency_, net_->packet_cat_,
      [self, to, data = std::move(data)]() mutable {
        if (self->on_data_[to]) self->on_data_[to](std::move(data));
      });
}

void TcpConnection::close(Side from) {
  if (!open_) return;
  open_ = false;
  auto self = shared_from_this();
  if (stalled_) {
    // The FIN is swallowed like everything else: the peer never hears the
    // close. Still break the handler capture cycles (deferred one latency
    // so a close from inside a callback never drops the running closure's
    // own captures out from under it).
    net_->events_.schedule_in(latency_, net_->packet_cat_,
                              [self] { self->drop_handlers(); });
    return;
  }
  int to = 1 - static_cast<int>(from);
  net_->events_.schedule_in(latency_, net_->packet_cat_, [self, to] {
    // Move the peer's close handler out, then drop every handler before
    // invoking it: the handlers routinely capture the connection pointer,
    // and clearing them here breaks the shared_ptr cycle the moment the
    // close delivers. Data queued before the close was scheduled earlier
    // on the same event queue, so it has already been delivered.
    CloseFn fn = std::move(self->on_close_[to]);
    self->drop_handlers();
    if (fn) fn();
  });
}

void TcpConnection::drop_handlers() {
  for (auto& fn : on_data_) fn = nullptr;
  for (auto& fn : on_close_) fn = nullptr;
}

// --------------------------------------------------------------------- Network

Network::Network(EventQueue& events, NetworkConfig config)
    : events_(events),
      config_(config),
      rng_(config.seed),
      packet_cat_(events.register_category("packet")) {}

Network::~Network() {
  // Connections that never closed (in-flight probes at the simulation
  // horizon) still hold user callbacks capturing their own shared_ptr;
  // break those cycles so nothing outlives the teardown.
  for (const auto& weak : live_tcp_)
    if (auto conn = weak.lock()) conn->drop_handlers();
}

void Network::attach(const net::Ipv6Address& addr) { ++online_[addr]; }

void Network::detach(const net::Ipv6Address& addr) {
  auto it = online_.find(addr);
  if (it == online_.end()) return;
  if (--it->second > 0) return;
  online_.erase(it);
  // Drop every binding on this address.
  // ttslint: allow(unordered-iter) reason=erase-only sweep; which bindings remain does not depend on visit order
  for (auto b = udp_.begin(); b != udp_.end();) {
    if (b->first.addr == addr)
      b = udp_.erase(b);
    else
      ++b;
  }
  // ttslint: allow(unordered-iter) reason=erase-only sweep; which bindings remain does not depend on visit order
  for (auto b = tcp_.begin(); b != tcp_.end();) {
    if (b->first.addr == addr)
      b = tcp_.erase(b);
    else
      ++b;
  }
}

bool Network::online(const net::Ipv6Address& addr) const {
  return online_.contains(addr);
}

SimDuration Network::base_latency(const net::Ipv6Address& a,
                                  const net::Ipv6Address& b) const {
  // Deterministic symmetric function of the unordered pair.
  std::uint64_t ha = a.hi64() ^ (a.lo64() * 0x9e3779b97f4a7c15ULL);
  std::uint64_t hb = b.hi64() ^ (b.lo64() * 0x9e3779b97f4a7c15ULL);
  std::uint64_t mixed = (ha ^ hb) * 0xbf58476d1ce4e5b9ULL;
  mixed ^= mixed >> 31;
  SimDuration span = config_.max_latency - config_.min_latency;
  if (span <= 0) return config_.min_latency;
  return config_.min_latency +
         static_cast<SimDuration>(mixed % static_cast<std::uint64_t>(span));
}

SimDuration Network::sample_latency(const net::Ipv6Address& a,
                                    const net::Ipv6Address& b) {
  SimDuration lat = base_latency(a, b);
  if (config_.jitter > 0)
    lat += static_cast<SimDuration>(
        rng_.below(static_cast<std::uint64_t>(config_.jitter)));
  return lat;
}

void Network::run_taps(TransportProto proto, const Endpoint& src,
                       const Endpoint& dst, std::size_t payload_size) {
  if (taps_.empty()) return;
  TapEvent ev{events_.now(), proto, src, dst, payload_size};
  for (const auto& tap : taps_)
    if (tap.prefix.contains(dst.addr)) tap.fn(ev);
}

void Network::bind_udp(const Endpoint& ep, UdpHandler handler) {
  udp_[ep] = std::move(handler);
}

void Network::unbind_udp(const Endpoint& ep) { udp_.erase(ep); }

void Network::send_udp(const Endpoint& src, const Endpoint& dst,
                       std::vector<std::uint8_t> payload) {
  ++udp_sent_;
  run_taps(TransportProto::kUdp, src, dst, payload.size());
  if (config_.loss_rate > 0.0 && rng_.chance(config_.loss_rate)) return;
  SimDuration lat = sample_latency(src.addr, dst.addr);
  if (fault_) {
    FaultPlane::UdpVerdict verdict = fault_->on_udp(dst.addr, events_.now());
    if (verdict.drop) return;
    lat += verdict.extra_latency;
  }
  events_.schedule_in(lat, packet_cat_,
                      [this, src, dst, payload = std::move(payload)] {
    auto it = udp_.find(dst);
    if (it == udp_.end()) {
      // No exact binding: try wildcard prefix bindings (aliased regions).
      for (const auto& p : prefix_udp_) {
        if (p.port == dst.port && p.prefix.contains(dst.addr)) {
          ++udp_delivered_;
          UdpHandler handler = p.handler;
          handler(Datagram{src, dst, payload});
          return;
        }
      }
      return;  // blackholed or refused: UDP stays silent
    }
    ++udp_delivered_;
    // Copy the handler: it may unbind itself while running.
    UdpHandler handler = it->second;
    handler(Datagram{src, dst, payload});
  });
}

void Network::listen_tcp(const Endpoint& ep, TcpAcceptor acceptor) {
  tcp_[ep] = std::move(acceptor);
}

void Network::unlisten_tcp(const Endpoint& ep) { tcp_.erase(ep); }

void Network::connect_tcp(const Endpoint& src, const Endpoint& dst,
                          ConnectResult result,
                          std::optional<SimDuration> connect_timeout) {
  ++tcp_attempts_;
  run_taps(TransportProto::kTcp, src, dst, 0);

  SimDuration timeout = connect_timeout.value_or(config_.connect_timeout);
  SimDuration lat = sample_latency(src.addr, dst.addr);
  FaultPlane::TcpVerdict verdict;
  if (fault_) {
    verdict = fault_->on_tcp_connect(dst.addr, events_.now());
    lat += verdict.extra_latency;
    if (verdict.action == FaultPlane::TcpAction::kBlackhole) {
      events_.schedule_in(timeout, packet_cat_,
                          [result] { result(nullptr, /*refused=*/false); });
      return;
    }
    if (verdict.action == FaultPlane::TcpAction::kRst) {
      events_.schedule_in(2 * lat, packet_cat_,
                          [result] { result(nullptr, /*refused=*/true); });
      return;
    }
  }
  bool host_online = online(dst.addr);
  auto listener = tcp_.find(dst);
  bool has_listener = listener != tcp_.end();
  TcpAcceptor wildcard;
  if (!has_listener) {
    for (const auto& p : prefix_tcp_) {
      if (p.port == dst.port && p.prefix.contains(dst.addr)) {
        wildcard = p.acceptor;
        has_listener = true;
        host_online = true;
        break;
      }
    }
  }

  if (!host_online) {
    // Blackhole: the connect attempt times out.
    events_.schedule_in(timeout, packet_cat_,
                        [result] { result(nullptr, /*refused=*/false); });
    return;
  }
  if (!has_listener) {
    // RST after one RTT.
    events_.schedule_in(2 * lat, packet_cat_,
                        [result] { result(nullptr, /*refused=*/true); });
    return;
  }

  ++tcp_established_;
  bool stalled = verdict.action == FaultPlane::TcpAction::kStall;
  TcpAcceptor acceptor = wildcard ? wildcard : listener->second;
  events_.schedule_in(2 * lat, packet_cat_,
                      [this, src, dst, lat, stalled, result, acceptor] {
    auto conn = TcpConnectionPtr(new TcpConnection(this, src, dst, lat));
    conn->stalled_ = stalled;
    track_connection(conn);
    // Server learns of the connection first (it must install handlers
    // before any client data can arrive — data takes >= lat anyway).
    acceptor(conn);
    result(conn, false);
  });
}

void Network::install_faults(FaultScenario scenario, obs::Registry* registry,
                             obs::FlightRecorder* flight) {
  fault_ = std::make_unique<FaultPlane>(std::move(scenario), registry);
  if (flight) fault_->set_flight_recorder(flight);
}

void Network::track_connection(const TcpConnectionPtr& conn) {
  if (live_tcp_.size() >= live_tcp_prune_at_) {
    std::erase_if(live_tcp_,
                  [](const std::weak_ptr<TcpConnection>& w) {
                    return w.expired();
                  });
    live_tcp_prune_at_ = std::max<std::size_t>(64, 2 * live_tcp_.size());
  }
  live_tcp_.push_back(conn);
}

void Network::listen_tcp_prefix(const net::Ipv6Prefix& prefix,
                                std::uint16_t port, TcpAcceptor acceptor) {
  prefix_tcp_.push_back(PrefixTcp{prefix, port, std::move(acceptor)});
}

void Network::bind_udp_prefix(const net::Ipv6Prefix& prefix,
                              std::uint16_t port, UdpHandler handler) {
  prefix_udp_.push_back(PrefixUdp{prefix, port, std::move(handler)});
}

std::uint64_t Network::add_tap(const net::Ipv6Prefix& prefix, TapFn fn) {
  std::uint64_t id = next_tap_id_++;
  taps_.push_back(Tap{id, prefix, std::move(fn)});
  return id;
}

void Network::remove_tap(std::uint64_t id) {
  for (auto it = taps_.begin(); it != taps_.end(); ++it) {
    if (it->id == id) {
      taps_.erase(it);
      return;
    }
  }
}

}  // namespace tts::simnet
