#include "simnet/fault.hpp"

#include "obs/flight.hpp"
#include "simnet/event_queue.hpp"

namespace tts::simnet {

FaultPlane::FaultPlane(FaultScenario scenario, obs::Registry* registry)
    : scenario_(std::move(scenario)), registry_(registry) {
  rngs_.push_back(util::Rng(scenario_.seed).stream("faultplane"));
  if (!registry_) return;
  registry_->enroll(udp_dropped_, "fault_udp_dropped", {}, this);
  registry_->enroll(udp_host_down_, "fault_udp_host_down", {}, this);
  registry_->enroll(tcp_blackholed_, "fault_tcp_blackholed", {}, this);
  registry_->enroll(tcp_rst_, "fault_tcp_rst", {}, this);
  registry_->enroll(tcp_stalled_, "fault_tcp_stalled", {}, this);
  registry_->enroll(stall_data_dropped_, "fault_stall_data_dropped", {},
                    this);
  registry_->enroll(delays_injected_, "fault_delays_injected", {}, this);
  registry_->enroll(domain_fallback_, "fault_domain_fallback", {}, this);
}

void FaultPlane::configure_domains(DomainId domains) {
  util::Rng root(scenario_.seed);
  while (rngs_.size() < domains)
    rngs_.push_back(root.stream("faultplane-domain")
                        .stream(static_cast<std::uint64_t>(rngs_.size())));
}

FaultPlane::~FaultPlane() {
  if (registry_) registry_->drop_owner(this);
}

void FaultPlane::set_flight_recorder(obs::FlightRecorder* recorder) {
  flight_ = recorder;
  if (!flight_) return;
  fault_notes_[kNoteUdpDrop] = flight_->note("udp_drop");
  fault_notes_[kNoteUdpHostDown] = flight_->note("udp_host_down");
  fault_notes_[kNoteTcpBlackhole] = flight_->note("tcp_blackhole");
  fault_notes_[kNoteTcpRst] = flight_->note("tcp_rst");
  fault_notes_[kNoteTcpStall] = flight_->note("tcp_stall");
}

void FaultPlane::inject(InjectNote which) {
  if (flight_)
    flight_->record(obs::FlightKind::kFaultInjected, fault_notes_[which]);
}

void FaultPlane::arm_windows(EventQueue& events) {
  if (!flight_ || windows_armed_) return;
  windows_armed_ = true;
  EventQueue::CategoryId cat = events.register_category("fault_window");
  // The lambdas capture the recorder (which must outlive the scheduled
  // events), never the plane: a scenario re-install cannot dangle them.
  obs::FlightRecorder* flight = flight_;
  obs::FlightRecorder::NoteId rule_note = flight->note("rule_window");
  obs::FlightRecorder::NoteId outage_note = flight->note("outage_window");
  auto edge = [&](SimTime from, SimTime until,
                  obs::FlightRecorder::NoteId note, std::int64_t index,
                  std::int64_t scope) {
    if (from == until) return;  // zero-width: never fires, never logged
    events.schedule_on(0, from, cat, [flight, note, index, scope] {
      flight->record(obs::FlightKind::kFaultWindowOpen, note, /*trace=*/0,
                     index, scope);
    });
    if (until == kFaultForever) return;
    events.schedule_on(0, until, cat, [flight, note, index, scope] {
      flight->record(obs::FlightKind::kFaultWindowClose, note, /*trace=*/0,
                     index, scope);
    });
  };
  for (std::size_t i = 0; i < scenario_.rules.size(); ++i)
    edge(scenario_.rules[i].from, scenario_.rules[i].until, rule_note,
         static_cast<std::int64_t>(i),
         static_cast<std::int64_t>(
             scenario_.rules[i].prefix.address().hi64()));
  for (std::size_t i = 0; i < scenario_.outages.size(); ++i)
    edge(scenario_.outages[i].from, scenario_.outages[i].until, outage_note,
         static_cast<std::int64_t>(i),
         static_cast<std::int64_t>(scenario_.outages[i].host.hi64()));
}

bool FaultPlane::host_down(const net::Ipv6Address& host, SimTime now) const {
  for (const HostOutage& outage : scenario_.outages)
    if (outage.host == host && outage.active(now)) return true;
  return false;
}

FaultPlane::UdpVerdict FaultPlane::on_udp(const net::Ipv6Address& src,
                                          const net::Ipv6Address& dst,
                                          std::uint16_t dst_port, SimTime now,
                                          DomainId domain) {
  util::Rng& rng = domain_rng(domain);
  UdpVerdict verdict;
  if (host_down(dst, now)) {
    udp_host_down_.inc();
    inject(kNoteUdpHostDown);
    verdict.drop = true;
    return verdict;
  }
  for (const FaultRule& rule : scenario_.rules) {
    if (!rule.udp || !rule.active(now) || !rule.matches(src, dst, dst_port))
      continue;
    switch (rule.kind) {
      case FaultKind::kBlackhole:
        udp_dropped_.inc();
        inject(kNoteUdpDrop);
        verdict.drop = true;
        return verdict;
      case FaultKind::kLoss:
        if (rng.chance(rule.probability)) {
          udp_dropped_.inc();
          inject(kNoteUdpDrop);
          verdict.drop = true;
          return verdict;
        }
        break;
      case FaultKind::kDelay:
        verdict.extra_latency += rule.added_latency;
        if (rule.added_jitter > 0)
          verdict.extra_latency += static_cast<SimDuration>(
              rng.below(static_cast<std::uint64_t>(rule.added_jitter)));
        break;
      case FaultKind::kRst:
      case FaultKind::kStall:
        break;  // TCP-only semantics; no effect on datagrams
    }
  }
  if (verdict.extra_latency > 0) delays_injected_.inc();
  return verdict;
}

FaultPlane::TcpVerdict FaultPlane::on_tcp_connect(const net::Ipv6Address& src,
                                                  const net::Ipv6Address& dst,
                                                  std::uint16_t dst_port,
                                                  SimTime now,
                                                  DomainId domain) {
  util::Rng& rng = domain_rng(domain);
  TcpVerdict verdict;
  if (host_down(dst, now)) {
    tcp_blackholed_.inc();
    inject(kNoteTcpBlackhole);
    verdict.action = TcpAction::kBlackhole;
    return verdict;
  }
  for (const FaultRule& rule : scenario_.rules) {
    if (!rule.tcp || !rule.active(now) || !rule.matches(src, dst, dst_port))
      continue;
    switch (rule.kind) {
      case FaultKind::kBlackhole:
        tcp_blackholed_.inc();
        inject(kNoteTcpBlackhole);
        verdict.action = TcpAction::kBlackhole;
        return verdict;
      case FaultKind::kLoss:
        if (rng.chance(rule.probability)) {
          tcp_blackholed_.inc();  // a lost SYN looks like a blackhole
          inject(kNoteTcpBlackhole);
          verdict.action = TcpAction::kBlackhole;
          return verdict;
        }
        break;
      case FaultKind::kRst:
        tcp_rst_.inc();
        inject(kNoteTcpRst);
        verdict.action = TcpAction::kRst;
        return verdict;
      case FaultKind::kStall:
        tcp_stalled_.inc();
        inject(kNoteTcpStall);
        verdict.action = TcpAction::kStall;
        return verdict;
      case FaultKind::kDelay:
        verdict.extra_latency += rule.added_latency;
        if (rule.added_jitter > 0)
          verdict.extra_latency += static_cast<SimDuration>(
              rng.below(static_cast<std::uint64_t>(rule.added_jitter)));
        break;
    }
  }
  if (verdict.extra_latency > 0) delays_injected_.inc();
  return verdict;
}

}  // namespace tts::simnet
