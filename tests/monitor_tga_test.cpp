// Tests for the pool monitor and the NTP-seeded target generator.
#include <gtest/gtest.h>

#include <unordered_set>

#include "hitlist/ntp_tga.hpp"
#include "net/mac.hpp"
#include "ntp/monitor.hpp"
#include "ntp/ntp_server.hpp"

namespace tts {
namespace {

net::Ipv6Address addr(std::uint64_t lo) {
  return net::Ipv6Address::from_halves(0x2400005000000000ULL, lo);
}

TEST(PoolMonitor, DeadServerDropsOutOfRotation) {
  simnet::EventQueue events;
  simnet::Network network(events);
  ntp::NtpPool pool;

  // One live server, one registered address with nothing behind it.
  ntp::NtpServerConfig live;
  live.address = addr(1);
  live.country = "DE";
  ntp::NtpServer server(network, live, nullptr);
  pool.add_server({addr(1), "DE", 1000, 20, false, 0});
  pool.add_server({addr(2), "DE", 1000, 20, false, 0});  // dead

  ntp::PoolMonitorConfig config;
  config.vantage = addr(99);
  config.check_interval = simnet::minutes(10);
  config.duration = simnet::hours(6);
  ntp::PoolMonitor monitor(network, pool, config);
  monitor.start();
  events.run_until(simnet::hours(7));

  EXPECT_GT(monitor.checks_run(), 20u);
  EXPECT_GT(monitor.misses(), 5u);

  int live_score = 0, dead_score = 0;
  for (const auto& entry : pool.servers()) {
    if (entry.address == addr(1)) live_score = entry.monitor_score;
    if (entry.address == addr(2)) dead_score = entry.monitor_score;
  }
  EXPECT_EQ(live_score, 20);  // capped at max
  EXPECT_LT(dead_score, ntp::NtpPool::kRotationThreshold);

  // Resolution never returns the dead server any more.
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(*pool.resolve("DE", rng), addr(1));
}

TEST(PoolMonitor, RecoveringServerReturns) {
  simnet::EventQueue events;
  simnet::Network network(events);
  ntp::NtpPool pool;
  pool.add_server({addr(1), "DE", 1000, 4, false, 0});  // below threshold

  ntp::NtpServerConfig config_live;
  config_live.address = addr(1);
  config_live.country = "DE";
  ntp::NtpServer server(network, config_live, nullptr);

  ntp::PoolMonitorConfig config;
  config.vantage = addr(99);
  config.check_interval = simnet::minutes(10);
  config.duration = simnet::hours(2);
  ntp::PoolMonitor monitor(network, pool, config);
  monitor.start();
  events.run_until(simnet::hours(3));

  util::Rng rng(5);
  EXPECT_TRUE(pool.resolve("DE", rng).has_value());  // recovered
}

TEST(NtpSeededTga, LearnsHotNetworksAndMix) {
  std::vector<net::Ipv6Address> observed;
  // A dense /48 with EUI-64 sightings...
  for (std::uint64_t i = 0; i < 50; ++i) {
    auto mac = net::MacAddress::from_u64(0x001A4F000000ULL + i);
    observed.push_back(net::Ipv6Address::from_halves(
        0x2400007700000000ULL | (i << 8), net::eui64_iid_from_mac(mac)));
  }
  // ...and a singleton /48 below the density threshold.
  observed.push_back(addr(0x42));

  hitlist::NtpSeededTga tga;
  tga.train(observed);
  EXPECT_EQ(tga.hot_networks(), 2u);

  hitlist::NtpTgaConfig config;
  config.candidates = 500;
  config.min_sightings_per_48 = 2;
  auto candidates = tga.generate(config);
  ASSERT_EQ(candidates.size(), 500u);

  // All candidates land in the dense /48 (the singleton is filtered).
  auto hot = net::Ipv6Prefix(
      net::Ipv6Address::from_halves(0x2400007700000000ULL, 0), 48);
  std::uint64_t eui64 = 0;
  for (const auto& c : candidates) {
    EXPECT_TRUE(hot.contains(c)) << c.to_string();
    if (net::iid_looks_like_eui64(c.iid())) ++eui64;
  }
  // The learned IID mix is dominated by EUI-64 (50 of 51 sightings; the
  // singleton contributes a sliver of low-byte candidates).
  EXPECT_GT(eui64, candidates.size() * 9 / 10);
}

TEST(NtpSeededTga, EmptyTrainingYieldsNothing) {
  hitlist::NtpSeededTga tga;
  tga.train({});
  EXPECT_TRUE(tga.generate({}).empty());
}

TEST(NtpSeededTga, GenerationIsDeterministic) {
  std::vector<net::Ipv6Address> observed;
  for (std::uint64_t i = 0; i < 20; ++i)
    observed.push_back(addr(0x1000 + i));
  hitlist::NtpSeededTga tga;
  tga.train(observed);
  hitlist::NtpTgaConfig config;
  config.candidates = 100;
  config.min_sightings_per_48 = 1;
  EXPECT_EQ(tga.generate(config), tga.generate(config));
}

}  // namespace
}  // namespace tts
