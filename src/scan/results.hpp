// Scan results: one record per probe, tagged with the campaign (NTP-fed or
// hitlist) — the raw material every analysis consumes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv6.hpp"
#include "proto/tlslite.hpp"
#include "simnet/time.hpp"

namespace tts::util {
class ByteWriter;
class ByteReader;
}  // namespace tts::util

namespace tts::scan {

enum class Protocol : std::uint8_t {
  kHttp,   // TCP 80
  kHttps,  // TCP 443
  kSsh,    // TCP 22
  kMqtt,   // TCP 1883
  kMqtts,  // TCP 8883
  kAmqp,   // TCP 5672
  kAmqps,  // TCP 5671
  kCoap,   // UDP 5683
};
inline constexpr std::size_t kProtocolCount = 8;

std::string_view to_string(Protocol p);
/// Lowercase metric-label form ("proto=ssh"); to_string() is the display name.
std::string_view label(Protocol p);
std::uint16_t port_of(Protocol p);
bool is_tls(Protocol p);

/// Which address feed produced the target.
enum class Dataset : std::uint8_t { kNtp, kHitlist, kRyeLevin };
inline constexpr std::size_t kDatasetCount = 3;
std::string_view to_string(Dataset d);
/// Metric-label form ("dataset=ntp"); to_string() is the display name.
std::string_view label(Dataset d);

enum class Outcome : std::uint8_t {
  kSuccess,      // full protocol exchange completed
  kRefused,      // TCP RST / no listener
  kTimeout,      // no answer (blackholed / filtered / UDP silence)
  kTlsFailed,    // TCP connected but the TLS handshake was rejected
  kMalformed,    // peer answered with bytes the protocol parser rejected
};
std::string_view to_string(Outcome o);

struct ScanRecord {
  Dataset dataset = Dataset::kNtp;
  Protocol protocol = Protocol::kHttp;
  net::Ipv6Address target;
  simnet::SimTime at = 0;
  Outcome outcome = Outcome::kTimeout;

  // TLS (kHttps/kMqtts/kAmqps, filled on completed handshakes)
  std::optional<proto::Certificate> certificate;

  // HTTP
  int http_status = 0;
  std::string http_title;        // extracted <title> ("" = none present)
  bool http_has_title = false;
  std::string http_server;

  // SSH
  std::string ssh_banner;
  std::optional<std::uint64_t> ssh_hostkey;

  // Brokers
  std::optional<bool> broker_auth_required;

  // CoAP
  std::vector<std::string> coap_resources;
};

/// Stores full records for successful probes; failures are only tallied
/// (dataset x protocol x outcome), which keeps memory flat across the
/// millions of probes a sweep of mostly unresponsive space produces.
class ResultStore {
 public:
  void add(ScanRecord record);

  /// Successful records (the only ones kept in full).
  const std::vector<ScanRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// All successful records for a protocol within a dataset.
  std::vector<const ScanRecord*> successes(Dataset dataset,
                                           Protocol protocol) const;

  std::uint64_t count(Dataset dataset, Protocol protocol,
                      Outcome outcome) const;
  /// Probes of any outcome for (dataset, protocol).
  std::uint64_t total(Dataset dataset, Protocol protocol) const;
  /// Probes of any outcome and protocol for a dataset.
  std::uint64_t total(Dataset dataset) const;

  /// Serialize the outcome tensor and every kept success record into a
  /// snapshot section (all ScanRecord fields, including certificates).
  void save_state(util::ByteWriter& w) const;
  /// Decode a section written by save_state().
  static ResultStore decode_state(util::ByteReader& r);

 private:
  static constexpr std::size_t kOutcomeCount = 5;

  std::vector<ScanRecord> records_;
  std::uint64_t counts_[kDatasetCount][kProtocolCount][kOutcomeCount] = {};
};

}  // namespace tts::scan
