// CoAP (RFC 7252) message codec — real header layout: version/type/TKL,
// code, message id, token, options (delta-encoded; Uri-Path = 11,
// Content-Format = 12), payload marker 0xFF. The study's CoAP scan sends a
// confirmable GET /.well-known/core and groups the advertised resources
// from the RFC 6690 link-format payload (Section 4.3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tts::proto {

enum class CoapType : std::uint8_t {
  kConfirmable = 0,
  kNonConfirmable = 1,
  kAck = 2,
  kReset = 3,
};

/// CoAP codes are class.detail packed into a byte: GET = 0.01,
/// 2.05 Content = 0x45, 4.04 Not Found = 0x84.
inline constexpr std::uint8_t kCoapGet = 0x01;
inline constexpr std::uint8_t kCoapContent = 0x45;
inline constexpr std::uint8_t kCoapNotFound = 0x84;

inline constexpr std::uint16_t kOptionUriPath = 11;
inline constexpr std::uint16_t kOptionContentFormat = 12;
inline constexpr std::uint8_t kContentFormatLinkFormat = 40;

struct CoapMessage {
  CoapType type = CoapType::kConfirmable;
  std::uint8_t code = kCoapGet;
  std::uint16_t message_id = 0;
  std::vector<std::uint8_t> token;
  std::vector<std::string> uri_path;  // Uri-Path options, in order
  std::vector<std::uint8_t> payload;

  std::vector<std::uint8_t> serialize() const;
  static std::optional<CoapMessage> parse(std::span<const std::uint8_t> wire);

  /// GET /.well-known/core request.
  static CoapMessage well_known_core(std::uint16_t message_id,
                                     std::uint64_t token);
};

/// RFC 6690 link-format: "</res1>,</res2>" — build from resource paths and
/// parse back into paths.
std::string link_format(const std::vector<std::string>& resources);
std::vector<std::string> parse_link_format(std::string_view payload);

}  // namespace tts::proto
