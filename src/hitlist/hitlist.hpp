// Hitlist assembly: combine the source simulators, deduplicate, and derive
// the "public" (responsive-only) variant — mirroring the TUM IPv6 Hitlist's
// full and public lists compared in Table 1.
//
// Dedup runs through the compact net::AddressStore; its dense
// first-seen sequence numbers index the parallel `sources` vector, which
// replaces the old per-address provenance hash map (one byte per address
// instead of a 16-byte key plus node overhead).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hitlist/sources.hpp"
#include "inet/population.hpp"
#include "inet/services.hpp"
#include "net/address_store.hpp"

namespace tts::util {
class ByteWriter;
class ByteReader;
}  // namespace tts::util

namespace tts::hitlist {

struct Hitlist {
  /// Deduplicated full list (everything the sources produced), in
  /// first-contribution order; full[i] has sequence number i in `seen`.
  std::vector<net::Ipv6Address> full;
  /// Subset verified responsive at build time (ICMP/any-probe model):
  /// live service hosts, aliased-region addresses, and router interfaces.
  std::vector<net::Ipv6Address> public_list;
  /// Dedup store; seq_of(addr) indexes `sources` (and `full`).
  net::AddressStore seen;
  /// Provenance: sources[seen.seq_of(addr)] is the first source that
  /// contributed the address.
  std::vector<Source> sources;

  bool contains(const net::Ipv6Address& addr) const {
    return seen.contains(addr);
  }
  /// First source that contributed `addr` (nullopt when not listed).
  std::optional<Source> source_of(const net::Ipv6Address& addr) const;

  /// Ordered by source id so direct iteration renders deterministically.
  std::map<Source, std::uint64_t> counts_by_source() const;

  void save_state(util::ByteWriter& w) const;
  static Hitlist decode_state(util::ByteReader& r);
};

class HitlistBuilder {
 public:
  /// Build against the population *before* the runtime starts: addresses
  /// are the devices' initial ones, so entries for churning devices rot by
  /// the time the scan runs — the dynamic-address problem of Section 6.
  ///
  /// `runtime` is optional; when provided, responsiveness is evaluated
  /// against live ownership instead of initial addresses.
  static Hitlist build(const inet::Population& pop,
                       const inet::InternetRuntime* runtime,
                       const SourceConfig& config);
};

}  // namespace tts::hitlist
