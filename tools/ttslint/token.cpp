#include "token.hpp"

namespace ttslint {

namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }
bool digit(char c) { return c >= '0' && c <= '9'; }

// Multi-character operators the rules care about, longest first so the
// greedy match below picks ">>=" over ">>" over ">".
constexpr std::string_view kOps[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "<<", ">>", "==", "!=",
    "<=",  ">=",  "&&",  "||",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        col_ = 1;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        advance(1);
        continue;
      }
      int line = line_, col = col_;
      if (c == '#' && at_line_start(out)) {
        out.push_back({Tok::kPreproc, preproc(), line, col});
      } else if (c == '/' && peek(1) == '/') {
        out.push_back({Tok::kComment, line_comment(), line, col});
      } else if (c == '/' && peek(1) == '*') {
        out.push_back({Tok::kComment, block_comment(), line, col});
      } else if (c == 'R' && peek(1) == '"') {
        out.push_back({Tok::kString, raw_string(), line, col});
      } else if (c == '"') {
        out.push_back({Tok::kString, quoted('"'), line, col});
      } else if (c == '\'' && !(!out.empty() && out.back().kind == Tok::kNumber)) {
        // A ' directly after a number is a digit separator (1'000'000);
        // the number path consumes those itself.
        out.push_back({Tok::kChar, quoted('\''), line, col});
      } else if (ident_start(c)) {
        out.push_back({Tok::kIdent, identifier(), line, col});
      } else if (digit(c) || (c == '.' && digit(peek(1)))) {
        out.push_back({Tok::kNumber, number(), line, col});
      } else {
        out.push_back({Tok::kPunct, op(), line, col});
      }
    }
    return out;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void advance(std::size_t n) {
    for (std::size_t i = 0; i < n && pos_ < src_.size(); ++i, ++pos_) {
      if (src_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
    }
  }

  bool at_line_start(const std::vector<Token>& out) const {
    return out.empty() || out.back().line != line_ ||
           out.back().kind == Tok::kPreproc;
  }

  std::string take(std::size_t n) {
    std::string s(src_.substr(pos_, n));
    advance(n);
    return s;
  }

  std::string preproc() {
    std::string text;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && peek(1) == '\n') {
        advance(2);
        continue;
      }
      if (c == '\n') break;
      text += c;
      advance(1);
    }
    return text;
  }

  std::string line_comment() {
    advance(2);
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      text += src_[pos_];
      advance(1);
    }
    return text;
  }

  std::string block_comment() {
    advance(2);
    std::string text;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        advance(2);
        break;
      }
      text += src_[pos_];
      advance(1);
    }
    return text;
  }

  std::string quoted(char quote) {
    advance(1);
    std::string text;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        text += c;
        text += src_[pos_ + 1];
        advance(2);
        continue;
      }
      if (c == quote || c == '\n') {
        advance(1);
        break;
      }
      text += c;
      advance(1);
    }
    return text;
  }

  std::string raw_string() {
    advance(2);  // R"
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim += src_[pos_];
      advance(1);
    }
    advance(1);  // (
    std::string close = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size()) {
      if (src_.compare(pos_, close.size(), close) == 0) {
        advance(close.size());
        break;
      }
      text += src_[pos_];
      advance(1);
    }
    return text;
  }

  std::string identifier() {
    std::size_t n = 0;
    while (ident_char(peek(n))) ++n;
    return take(n);
  }

  std::string number() {
    std::size_t n = 0;
    // Loose pp-number-ish scan: digits, letters (hex/suffixes/exponents),
    // dots, digit separators, and a sign directly after an exponent marker.
    while (true) {
      char c = peek(n);
      if (ident_char(c) || c == '.' || c == '\'') {
        ++n;
        continue;
      }
      if ((c == '+' || c == '-') && n > 0) {
        char prev = src_[pos_ + n - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++n;
          continue;
        }
      }
      break;
    }
    return take(n);
  }

  std::string op() {
    for (std::string_view candidate : kOps)
      if (src_.compare(pos_, candidate.size(), candidate) == 0)
        return take(candidate.size());
    return take(1);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view src) { return Lexer(src).run(); }

}  // namespace ttslint
