// SSH transport-layer opening (RFC 4253): the identification-string
// exchange ("SSH-2.0-<software> <comments>") followed by a condensed key
// exchange that surfaces the server host-key fingerprint. The study's SSH
// analyses need exactly these two artefacts: the banner (OS extraction,
// patch level — Section 4.4.1) and the host key (deduplication — Table 2).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tts::proto {

/// Serialize an identification line with CRLF terminator.
std::vector<std::uint8_t> ssh_id_string(const std::string& banner);

/// Parse an identification line ("SSH-2.0-..."); strips the terminator.
std::optional<std::string> parse_ssh_id(std::span<const std::uint8_t> wire);

/// Extract the OS token from a version banner the way the paper does:
/// "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3" -> "Debian". Returns "" when no
/// OS hint is present ("other/unknown").
std::string ssh_os_from_banner(const std::string& banner);

/// Extract the full software+comment portion after "SSH-2.0-".
std::string ssh_software(const std::string& banner);

/// Condensed KEX reply carrying the host-key fingerprint:
///   u32 magic 'SSHK', u8 key type, u64 fingerprint.
std::vector<std::uint8_t> ssh_kex_reply(std::uint64_t host_key_fingerprint);
std::optional<std::uint64_t> parse_ssh_kex_reply(
    std::span<const std::uint8_t> wire);

}  // namespace tts::proto
