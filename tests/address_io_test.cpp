#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "net/address_io.hpp"
#include "util/rng.hpp"

namespace tts::net {
namespace {

TEST(AddressIo, ReadSkipsCommentsAndGarbage) {
  std::istringstream in(
      "# header comment\n"
      "2001:db8::1\n"
      "\n"
      "   2001:db8::2   \n"
      "2001:db8::3 # inline comment\n"
      "not an address\n"
      "2001:db8::zz\n");
  AddressReadStats stats;
  auto addrs = read_address_list(in, &stats);
  ASSERT_EQ(addrs.size(), 3u);
  EXPECT_EQ(addrs[0].to_string(), "2001:db8::1");
  EXPECT_EQ(addrs[1].to_string(), "2001:db8::2");
  EXPECT_EQ(addrs[2].to_string(), "2001:db8::3");
  EXPECT_EQ(stats.parsed, 3u);
  EXPECT_EQ(stats.skipped, 4u);
}

TEST(AddressIo, WriteReadRoundTrip) {
  util::Rng rng(4);
  std::vector<Ipv6Address> addrs;
  for (int i = 0; i < 500; ++i)
    addrs.push_back(Ipv6Address::from_halves(rng.next(), rng.next()));

  std::ostringstream out;
  write_address_list(out, addrs);
  std::istringstream in(out.str());
  auto back = read_address_list(in);
  EXPECT_EQ(back, addrs);
}

TEST(AddressIo, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/tts_addr_io_test.txt";
  std::vector<Ipv6Address> addrs = {*Ipv6Address::parse("2001:db8::1"),
                                    *Ipv6Address::parse("fe80::42")};
  save_address_file(path, addrs);
  auto back = load_address_file(path);
  EXPECT_EQ(back, addrs);
  std::remove(path.c_str());
}

TEST(AddressIo, MissingFileThrows) {
  EXPECT_THROW(load_address_file("/nonexistent/dir/file.txt"),
               std::runtime_error);
}

TEST(AddressIo, EmptyStream) {
  std::istringstream in("");
  AddressReadStats stats;
  EXPECT_TRUE(read_address_list(in, &stats).empty());
  EXPECT_EQ(stats.parsed, 0u);
}

}  // namespace
}  // namespace tts::net
