// C2 fixture: calls to a function declared under a barrier_only marker
// comment must sit lexically inside a run_at_barrier(...) callback or
// carry a reasoned allow(barrier-only) pragma. Declaration and
// definition sites are never findings.
struct Queue {
  template <class F>
  void run_at_barrier(F&& fn);
};

// Commits scores every shard reads: only sound between windows.
// ttslint: barrier_only
void commit_scores(int score);

// The definition of a marked function is not a call site.
void commit_scores(int score) { (void)score; }

void committed_at_barrier(Queue& q) {
  q.run_at_barrier([&] { commit_scores(1); });
}

void committed_mid_window() {
  commit_scores(2);  // FINDING(barrier-only)
}

void suppressed() {
  commit_scores(3);  // ttslint: allow(barrier-only) reason=fixture exercises the pragma escape
}

// Similar names are not confined: the marker binds one declaration.
void commit_scores_later();
void fine() { commit_scores_later(); }

// A marker that precedes no function declaration is a bad pragma. FINDING-NEXT(bad-pragma)
// ttslint: barrier_only
constexpr int not_a_function = 0;
