#include "telescope/actors.hpp"

namespace tts::telescope {

std::vector<std::uint16_t> research_actor_ports() {
  // Well-known service ports first (the paper names FTP, BGP, Postgres),
  // then registered ports up to a total of 1011.
  std::vector<std::uint16_t> ports = {
      21,   22,   23,   25,   53,   80,   110,  111,  123,  143,
      179,  389,  443,  445,  465,  587,  631,  636,  873,  993,
      995,  1433, 1521, 2049, 3306, 3389, 5432, 5672, 5900, 6379,
      8080, 8443, 9200, 11211, 27017,
  };
  std::uint16_t next = 1024;
  while (ports.size() < 1011) ports.push_back(next++);
  return ports;
}

std::vector<std::uint16_t> covert_actor_ports() {
  return {443, 8443, 3388, 3389, 5900, 5901, 6000, 6001, 9200, 27017};
}

ScanningActor::ScanningActor(simnet::Network& network, ntp::NtpPool& pool,
                             ActorConfig config)
    : network_(network),
      config_(std::move(config)),
      rng_(config_.seed),
      category_(network.events().register_category("telescope")) {
  collector_.subscribe(
      [this](const ntp::CollectedAddress& rec) { on_sighting(rec); });

  ntp::ServerId id = 0;
  for (const auto& addr : config_.server_addresses) {
    ntp::NtpServerConfig server_config;
    server_config.address = addr;
    server_config.country = config_.server_country;
    server_config.id = id++;
    server_config.capture = true;
    servers_.push_back(std::make_unique<ntp::NtpServer>(
        network_, server_config, &collector_));
    pool.add_server(ntp::PoolEntry{addr, config_.server_country,
                                   config_.server_netspeed, 20,
                                   /*ours=*/false, 0});
  }
  for (const auto& src : config_.scan_sources) network_.attach(src);
}

bool ScanningActor::owns_scan_source(const net::Ipv6Address& addr) const {
  for (const auto& src : config_.scan_sources)
    if (src == addr) return true;
  return false;
}

void ScanningActor::on_sighting(const ntp::CollectedAddress& rec) {
  if (config_.scan_sources.empty() || config_.ports.empty()) return;

  simnet::SimDuration delay =
      config_.scan_delay_min +
      static_cast<simnet::SimDuration>(rng_.below(static_cast<std::uint64_t>(
          config_.scan_delay_max - config_.scan_delay_min + 1)));

  net::Ipv6Address target = rec.addr;
  for (std::size_t i = 0; i < config_.ports.size(); ++i) {
    if (config_.port_coverage < 1.0 && !rng_.chance(config_.port_coverage))
      continue;
    std::uint16_t port = config_.ports[i];
    simnet::SimDuration offset =
        config_.scan_spread > 0
            ? static_cast<simnet::SimDuration>(
                  rng_.below(static_cast<std::uint64_t>(config_.scan_spread)))
            : 0;
    const net::Ipv6Address& source =
        config_.scan_sources[rng_.below(config_.scan_sources.size())];
    network_.events().schedule_in(delay + offset, category_,
                                  [this, source, target, port] {
      ++probes_sent_;
      network_.connect_tcp(
          {source, static_cast<std::uint16_t>(20000 + probes_sent_ % 40000)},
          {target, port},
          [](simnet::TcpConnectionPtr conn, bool) {
            if (conn) conn->close(simnet::TcpConnection::Side::kClient);
          },
          simnet::sec(3));
    });
  }
}

}  // namespace tts::telescope
