// Deterministic, scenario-scripted fault injection for the simulated
// data plane.
//
// A FaultScenario is a declarative script: prefix-scoped impairment rules
// with sim-time windows (extra loss, added latency/jitter, full blackhole,
// RST-on-connect, established-but-silent stall) plus host outages that take
// one address offline for a window (the pool-monitor demote/promote
// experiments schedule an NTP server outage this way). Rules additionally
// scope by direction (inbound into the prefix — the default —, outbound
// from it, or both) and by destination port, so asymmetric partial outages
// (a host that can send but not receive, a blackholed port 123) are
// expressible. Network consults the installed FaultPlane on every UDP send
// and TCP connect — after the RoutePlane, whose whole-prefix withdrawals
// take precedence (route -> outage -> rules); rules are
// evaluated in declaration order, delay rules accumulate, and the first
// matching terminal rule (loss hit, blackhole, RST, stall) decides the
// packet's fate — all draws come from one seeded stream, so the same
// scenario under the same seed perturbs a run bit-identically.
//
// Every injected fault is counted (fault_* instruments) so a chaos harness
// can prove conservation: nothing the plane swallows goes unaccounted.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "net/ipv6.hpp"
#include "obs/metrics.hpp"
#include "simnet/shard.hpp"
#include "simnet/time.hpp"
#include "util/rng.hpp"

namespace tts::obs {
class FlightRecorder;
}

namespace tts::simnet {

class EventQueue;

enum class FaultKind : std::uint8_t {
  kLoss,       ///< extra probabilistic loss (UDP drop / TCP SYN blackhole)
  kDelay,      ///< added one-way latency plus uniform jitter
  kBlackhole,  ///< every matching packet / connect vanishes
  kRst,        ///< TCP connects are refused after one RTT; UDP unaffected
  kStall,      ///< TCP establishes, then neither side's data ever arrives
};

/// Maximum representable sim time: an "until" of kFaultForever never expires.
inline constexpr SimTime kFaultForever =
    std::numeric_limits<SimTime>::max();

/// Which traffic direction a rule's prefix scopes.
enum class FaultDirection : std::uint8_t {
  kInbound,   ///< traffic *destined into* the prefix (the legacy semantic)
  kOutbound,  ///< traffic *originated from inside* the prefix
  kBoth,      ///< either direction matches
};

/// One impairment, scoped by `prefix` + `direction` (default: traffic
/// destined into `prefix`) and active while `from <= now < until`
/// (evaluated at send/connect time). A `from == until` window is
/// zero-width and never fires.
struct FaultRule {
  net::Ipv6Prefix prefix;
  FaultKind kind = FaultKind::kLoss;
  SimTime from = 0;
  SimTime until = kFaultForever;
  /// Per-packet / per-connect hit chance for kLoss (1.0 = drop everything).
  double probability = 1.0;
  /// kDelay: deterministic extra latency plus uniform jitter in [0, jitter).
  SimDuration added_latency = 0;
  SimDuration added_jitter = 0;
  /// Transport scoping: a rule may impair only UDP or only TCP.
  bool udp = true;
  bool tcp = true;
  /// Direction scoping: kOutbound models a host that can receive but whose
  /// own packets die in transit; kBoth impairs the prefix symmetrically.
  FaultDirection direction = FaultDirection::kInbound;
  /// Destination-port scoping: 0 matches any port; a nonzero value narrows
  /// the rule to traffic addressed to that port (e.g. 123 blackholes NTP
  /// while the rest of the prefix stays reachable).
  std::uint16_t dst_port = 0;

  bool active(SimTime now) const { return now >= from && now < until; }
  /// Does a packet src -> dst:port fall under this rule's scope? (Time and
  /// transport are checked separately.) An unknown source (::) never
  /// matches an outbound scope.
  bool matches(const net::Ipv6Address& src, const net::Ipv6Address& dst,
               std::uint16_t port) const {
    if (dst_port != 0 && port != dst_port) return false;
    switch (direction) {
      case FaultDirection::kInbound:
        return prefix.contains(dst);
      case FaultDirection::kOutbound:
        return prefix.contains(src);
      case FaultDirection::kBoth:
        return prefix.contains(dst) || prefix.contains(src);
    }
    return false;
  }
};

/// Take one host fully offline for a window: its inbound UDP blackholes and
/// TCP connects to it time out, exactly as if it had detached.
struct HostOutage {
  net::Ipv6Address host;
  SimTime from = 0;
  SimTime until = kFaultForever;

  bool active(SimTime now) const { return now >= from && now < until; }
};

struct FaultScenario {
  std::vector<FaultRule> rules;
  std::vector<HostOutage> outages;
  std::uint64_t seed = 0xfa017;

  bool empty() const { return rules.empty() && outages.empty(); }
};

class FaultPlane {
 public:
  struct UdpVerdict {
    bool drop = false;
    SimDuration extra_latency = 0;
  };

  enum class TcpAction : std::uint8_t {
    kNone,       ///< connect proceeds normally
    kBlackhole,  ///< SYN vanishes: caller times out after connect_timeout
    kRst,        ///< refused after one RTT
    kStall,      ///< establishes, but the connection is marked stalled
  };
  struct TcpVerdict {
    TcpAction action = TcpAction::kNone;
    SimDuration extra_latency = 0;
  };

  /// Instruments are enrolled into `registry` (may be null) under fault_*
  /// names; the registry must outlive the plane.
  FaultPlane(FaultScenario scenario, obs::Registry* registry);
  ~FaultPlane();
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  /// Verdict for one datagram src -> dst:dst_port sent at `now`. Draws
  /// from the sending domain's RNG stream; call exactly once per datagram.
  /// Domain 0 draws from the legacy single stream, so unsharded runs are
  /// unchanged.
  UdpVerdict on_udp(const net::Ipv6Address& src, const net::Ipv6Address& dst,
                    std::uint16_t dst_port, SimTime now, DomainId domain = 0);
  /// Convenience for scope-free evaluation: unknown source (::, which
  /// never matches an outbound scope) and wildcard port 0 (which never
  /// matches a port-scoped rule).
  UdpVerdict on_udp(const net::Ipv6Address& dst, SimTime now,
                    DomainId domain = 0) {
    return on_udp(net::Ipv6Address{}, dst, 0, now, domain);
  }
  /// Verdict for one TCP connect src -> dst:dst_port at `now` (one RNG
  /// draw per matching loss rule, as for UDP).
  TcpVerdict on_tcp_connect(const net::Ipv6Address& src,
                            const net::Ipv6Address& dst,
                            std::uint16_t dst_port, SimTime now,
                            DomainId domain = 0);
  /// Convenience overload mirroring the UDP one.
  TcpVerdict on_tcp_connect(const net::Ipv6Address& dst, SimTime now,
                            DomainId domain = 0) {
    return on_tcp_connect(net::Ipv6Address{}, dst, 0, now, domain);
  }
  /// Provision one independent RNG stream per event domain so concurrent
  /// shards never contend on (or reorder draws from) a shared generator.
  /// Stream d >= 1 is seeded from scenario seed + "faultplane-domain"/d,
  /// making each domain's draw sequence shard-count-invariant.
  void configure_domains(DomainId domains);
  /// True when `host` is inside a scripted outage window at `now`.
  bool host_down(const net::Ipv6Address& host, SimTime now) const;
  /// Count one data delivery swallowed by a stalled connection.
  void note_stalled_data() { stall_data_dropped_.inc(); }

  /// Report every terminal injection (drop, blackhole, RST, stall, outage
  /// hit) to `recorder` as FlightKind::kFaultInjected, detail = the
  /// injection kind; a burst trigger on the recorder then dumps context
  /// when a scenario window opens. nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder);

  /// Schedule one domain-0 event per rule/outage window edge that records
  /// the opening (FlightKind::kFaultWindowOpen) and closing
  /// (kFaultWindowClose) in the attached flight recorder, so a chaos dump
  /// shows *why* injections started, not just that they did. No-op without
  /// a recorder; zero-width (from == until) and never-closing
  /// (kFaultForever) edges schedule nothing. Call once, at install time;
  /// the recorder must outlive the scheduled events.
  void arm_windows(EventQueue& events);

  const FaultScenario& scenario() const { return scenario_; }

  std::uint64_t udp_dropped() const { return udp_dropped_.value(); }
  std::uint64_t udp_host_down() const { return udp_host_down_.value(); }
  std::uint64_t tcp_blackholed() const { return tcp_blackholed_.value(); }
  std::uint64_t tcp_rst() const { return tcp_rst_.value(); }
  std::uint64_t tcp_stalled() const { return tcp_stalled_.value(); }
  std::uint64_t stall_data_dropped() const {
    return stall_data_dropped_.value();
  }
  std::uint64_t delays_injected() const { return delays_injected_.value(); }
  /// Verdicts asked for a domain beyond the configured RNG streams (a
  /// missing configure_domains call): a shard-invariance bug. Asserts in
  /// debug builds; release builds count and fall back to stream 0.
  std::uint64_t domain_fallbacks() const {
    return domain_fallback_.value();
  }

 private:
  /// Injection kinds as flight-recorder details (indexes fault_notes_).
  enum InjectNote : std::size_t {
    kNoteUdpDrop,
    kNoteUdpHostDown,
    kNoteTcpBlackhole,
    kNoteTcpRst,
    kNoteTcpStall,
    kNoteCount,
  };
  void inject(InjectNote which);

  util::Rng& domain_rng(DomainId domain) {
    if (domain < rngs_.size()) return rngs_[domain];
    // A domain without its own stream would alias stream 0, silently
    // breaking shard-count invariance: loud in debug, counted in release.
    assert(!"fault verdict for a domain with no configured RNG stream");
    domain_fallback_.inc();
    return rngs_[0];
  }

  FaultScenario scenario_;
  std::vector<util::Rng> rngs_;  // [0] = legacy "faultplane" stream
  obs::Registry* registry_;
  obs::FlightRecorder* flight_ = nullptr;
  std::uint32_t fault_notes_[kNoteCount] = {};
  bool windows_armed_ = false;

  obs::Counter udp_dropped_;      // loss + blackhole rules on datagrams
  obs::Counter udp_host_down_;    // datagrams to a host in outage
  obs::Counter tcp_blackholed_;   // blackhole rules + outages on connects
  obs::Counter tcp_rst_;          // RST-on-connect injections
  obs::Counter tcp_stalled_;      // connections established then stalled
  obs::Counter stall_data_dropped_;
  obs::Counter delays_injected_;  // packets/connects given extra latency
  obs::Counter domain_fallback_;  // see domain_fallbacks()
};

}  // namespace tts::simnet
