// Section 5: NTP-sourcing by others — the telescope's scan-to-query
// matching and the characterisation of the observed actors.
#include "common.hpp"

using namespace tts;

int main() {
  core::Study& study = bench::shared_study();
  const auto* prober = study.prober();
  if (!prober) {
    std::cout << "telescope disabled in this configuration\n";
    return 1;
  }

  std::cout << "Telescope: " << prober->probes().size()
            << " NTP queries sent, "
            << util::percent(prober->answered_share())
            << " answered [paper: 86 % of responses], "
            << prober->captures().size() << " packets captured\n\n";

  auto report = study.telescope_report();
  std::cout << "Matched to an NTP query: " << report.matched_captures
            << " of " << report.total_captures
            << " captures [paper: all matched]; scattering hits outside the "
            << "probe prefix: " << report.scattering << "\n\n";

  util::TextTable t("Section 5: observed NTP-sourcing actors");
  t.set_header({"Actor", "class", "sources", "servers", "ports",
                "median delay", "median span/target", "identified"},
               {util::Align::kLeft});
  int research = 0, covert = 0;
  for (std::size_t i = 0; i < report.actors.size(); ++i) {
    const auto& a = report.actors[i];
    t.add_row({util::cat("actor ", i + 1),
               std::string(to_string(a.classification)),
               std::to_string(a.scan_sources.size()),
               std::to_string(a.ntp_servers.size()),
               std::to_string(a.ports.size()),
               simnet::format_duration(a.median_delay),
               simnet::format_duration(a.median_target_span),
               a.identified ? "yes" : "no"});
    if (a.classification == telescope::ActorClass::kResearch) ++research;
    if (a.classification == telescope::ActorClass::kCovert) ++covert;
  }
  t.add_note("Paper: a research actor (15 servers, 1011 ports, scans within "
             "the hour, no disguise) and a covert actor");
  t.add_note("(cloud servers+sources, 10 security-sensitive ports, multi-day "
             "spread, partial coverage).");
  t.render(std::cout);

  // Our own scan engines also hit the telescope (the paper identified its
  // own scans first) — so expect >= 2 overt actors and exactly 1 covert.
  bool pass = research >= 2 && covert >= 1 &&
              report.matched_captures == report.total_captures;
  std::cout << "\nShape check (own scans + research actor overt, covert "
               "actor detected, all matched): "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
