// Shared bench scaffolding: every table/figure binary runs one full study
// and prints a paper-vs-measured table. The scale defaults to kSmall
// (roughly 25k devices, ~30 s); set TTS_BENCH_SCALE=tiny|small|medium to
// trade statistics for time.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/study.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace tts::bench {

inline core::StudyScale bench_scale() {
  const char* env = std::getenv("TTS_BENCH_SCALE");
  if (!env) return core::StudyScale::kSmall;
  std::string v = env;
  if (v == "tiny") return core::StudyScale::kTiny;
  if (v == "medium") return core::StudyScale::kMedium;
  return core::StudyScale::kSmall;
}

inline std::string scale_label(core::StudyScale scale) {
  switch (scale) {
    case core::StudyScale::kTiny: return "tiny";
    case core::StudyScale::kMedium: return "medium";
    default: return "small";
  }
}

/// Metrics epilogue (heartbeat timeline + final metrics + spans) after the
/// shared study; set TTS_BENCH_METRICS=0 to suppress it.
inline bool bench_metrics_enabled() {
  const char* env = std::getenv("TTS_BENCH_METRICS");
  return !(env && std::string(env) == "0");
}

/// Wall-clock read for the perf-trajectory samples. Observational only:
/// nothing simulated may branch on it (ttslint enforces that elsewhere).
inline std::int64_t bench_wall_ns() {
  auto t =
      // ttslint: allow(wall-clock) reason=observational perf sampling for BENCH_*.json only
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

/// Peak resident set (VmHWM) in kB from /proc/self/status; 0 when the
/// field is unavailable (non-Linux).
inline std::int64_t bench_rss_peak_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    return std::strtoll(line.c_str() + 6, nullptr, 10);
  }
  return 0;
}

/// Emit one versioned perf-trajectory sample (schema v1, see DESIGN.md
/// "Perf trajectory") to the path in TTS_BENCH_JSON. No-op when the
/// variable is unset. The sim-deterministic counts (events, addresses,
/// probes, pending peak, token wait) are bit-stable for a given seed and
/// scale; the wall metrics (dispatch percentiles, wall_seconds,
/// throughput, RSS) vary with the machine — tools/benchdiff applies a
/// separate tolerance to them.
inline void emit_bench_json(const std::string& name,
                            const core::Study& study, double wall_seconds,
                            const std::string& scale) {
  const char* path = std::getenv("TTS_BENCH_JSON");
  if (!path || !*path) return;

  std::vector<std::pair<std::string, std::string>> metrics;
  auto add_u64 = [&metrics](const std::string& key, std::uint64_t v) {
    metrics.emplace_back(key, std::to_string(v));
  };
  auto add_i64 = [&metrics](const std::string& key, std::int64_t v) {
    metrics.emplace_back(key, std::to_string(v));
  };
  auto add_f = [&metrics](const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    metrics.emplace_back(key, buf);
  };

  std::uint64_t events = study.events_executed();
  std::uint64_t addresses = study.collector().distinct_addresses();
  std::uint64_t launched = 0, completed = 0;
  std::uint64_t pending_peak = 0;
  for (const scan::ScanEngine* engine :
       {study.ntp_engine(), study.hitlist_engine()}) {
    if (!engine) continue;
    launched += engine->probes_launched();
    completed += engine->probes_completed();
    pending_peak = std::max<std::uint64_t>(pending_peak,
                                           engine->pending_peak());
  }
  add_u64("events_executed", events);
  add_u64("addresses_collected", addresses);
  add_u64("probes_launched", launched);
  add_u64("probes_completed", completed);
  add_u64("scan_pending_peak", pending_peak);
  if (const scan::ScanEngine* ntp = study.ntp_engine())
    add_i64("token_wait_p95_us", ntp->token_wait().percentile(0.95));

  const obs::Histogram& dispatch =
      study.network().events().dispatch_wall_ns();
  if (dispatch.count() > 0) {
    add_i64("dispatch_p50_ns", dispatch.percentile(0.50));
    add_i64("dispatch_p95_ns", dispatch.percentile(0.95));
    add_i64("dispatch_max_ns", dispatch.max());
  }
  add_f("wall_seconds", wall_seconds);
  if (wall_seconds > 0) {
    add_f("events_per_sec_wall", static_cast<double>(events) / wall_seconds);
    add_f("addresses_per_sec_wall",
          static_cast<double>(addresses) / wall_seconds);
  }
  add_i64("rss_peak_kb", bench_rss_peak_kb());

  std::ofstream out(path);
  out << "{\n  \"schema\": 1,\n  \"name\": \"" << name << "\",\n"
      << "  \"scale\": \"" << scale << "\",\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out << "    \"" << metrics[i].first << "\": " << metrics[i].second
        << (i + 1 < metrics.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
  std::cerr << "[bench] wrote perf sample " << path << " (" << name
            << ")\n";
}

/// Run the standard study once (shared by the whole binary). When
/// TTS_BENCH_JSON is set, a perf sample is emitted right after the run
/// (name from TTS_BENCH_NAME, default "shared_study").
inline core::Study& shared_study() {
  // ttslint: allow(shared-state) reason=memoised bench fixture, initialised once in single-threaded main before any measurement
  static core::Study* study = [] {
    auto config = core::make_study_config(bench_scale());
    config.obs.enabled = bench_metrics_enabled();
    auto* s = new core::Study(std::move(config));
    std::cerr << "[bench] running study (scale=" << scale_label(bench_scale())
              << ")...\n";
    std::int64_t t0 = bench_wall_ns();
    s->run();
    double wall_seconds = static_cast<double>(bench_wall_ns() - t0) / 1e9;
    std::cerr << "[bench] study done: " << s->events_executed()
              << " events, "
              << s->collector().distinct_addresses()
              << " addresses collected\n";
    if (const auto* budget = s->scan_budget()) {
      std::cerr << "[bench] shared scan budget: " << budget->max_pps()
                << " pps cap";
      if (const auto* ntp = s->ntp_engine())
        std::cerr << ", ntp " << budget->grants(ntp->budget_client())
                  << " grants (" << budget->borrowed(ntp->budget_client())
                  << " borrowed, " << ntp->pump_wakes() << " pump wakes)";
      if (const auto* hit = s->hitlist_engine())
        std::cerr << ", hitlist " << budget->grants(hit->budget_client())
                  << " grants (" << budget->borrowed(hit->budget_client())
                  << " borrowed, " << hit->pump_wakes() << " pump wakes)";
      std::cerr << ", " << s->overflow_dropped() << " overflow drops\n";
    }
    const char* sample_name = std::getenv("TTS_BENCH_NAME");
    emit_bench_json(sample_name && *sample_name ? sample_name
                                                : "shared_study",
                    *s, wall_seconds, scale_label(bench_scale()));
    if (s->config().obs.enabled)
      std::cerr << "\n[bench] observability epilogue "
                   "(TTS_BENCH_METRICS=0 to silence)\n"
                << s->observability_report() << "\n";
    return s;
  }();
  return *study;
}

/// "measured (paper: X)" cell helper.
inline std::string vs_paper(const std::string& measured,
                            const std::string& paper) {
  return measured + "  [paper: " + paper + "]";
}

inline void print_scale_note(util::TextTable& table) {
  table.add_note(
      "Populations are scaled down by orders of magnitude vs the paper;");
  table.add_note(
      "compare shapes (ordering, ratios, crossovers), not absolute counts.");
}

}  // namespace tts::bench
