// Runtime side of the synthetic Internet: brings the population online.
//
// For every device, the InternetRuntime attaches its current address,
// binds byte-level protocol servers (HTTP/S, SSH, MQTT/S, AMQP/S, CoAP)
// matching the device's instantiated configuration, schedules daily
// address churn (ISP prefix rotation, privacy-IID regeneration), and
// drives its NTP pool polling. It also operates the fully aliased CDN
// region that answers HTTP on every address of the hyperscaler prefix.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "inet/population.hpp"
#include "ntp/pool.hpp"
#include "proto/tlslite.hpp"
#include "simnet/network.hpp"

namespace tts::inet {

struct RuntimeConfig {
  simnet::SimDuration duration = simnet::days(28);
  /// Certificate validity window relative to the simulation epoch.
  std::uint32_t cert_lifetime_days = 365;
  std::uint64_t seed = 0x5eed;
  /// Fraction of NTP polls suppressed (cuts event volume without changing
  /// address dynamics; 0 = every scheduled poll is sent).
  double poll_thinning = 0.0;
  /// Master switch for address churn (tests that probe devices at their
  /// initial addresses turn it off).
  bool enable_churn = true;
};

/// Builds the TLS certificate a device presents for `key` (deterministic:
/// same key id -> same certificate, which is what fingerprint dedup needs).
proto::Certificate make_certificate(KeyId key, const std::string& subject,
                                    bool self_signed,
                                    std::uint32_t lifetime_days);

class DeviceRuntime;

class InternetRuntime {
 public:
  InternetRuntime(simnet::Network& network, Population& population,
                  const ntp::NtpPool* pool, RuntimeConfig config = {});
  ~InternetRuntime();

  InternetRuntime(const InternetRuntime&) = delete;
  InternetRuntime& operator=(const InternetRuntime&) = delete;

  /// Attach devices, bind services, arm churn + NTP schedules, and start
  /// the CDN alias responder. Idempotent. On a sharded network each
  /// device's bring-up runs as a t=now event on its home domain, so churn
  /// and poll schedules live shard-locally from the first window.
  void start();

  /// Current primary address of a device (changes under churn).
  const net::Ipv6Address& address_of(std::uint32_t device_id) const;

  /// All addresses a device has held so far (ground truth for analyses).
  const std::vector<net::Ipv6Address>& address_history(
      std::uint32_t device_id) const;

  /// Device owning `addr` now, or nullptr.
  const Device* device_at(const net::Ipv6Address& addr) const;

  Population& population() { return population_; }
  simnet::Network& network() { return network_; }
  const RuntimeConfig& config() const { return config_; }

  std::uint64_t churn_events() const {
    return churn_events_.load(std::memory_order_relaxed);
  }
  std::uint64_t ntp_polls_sent() const {
    return ntp_polls_sent_.load(std::memory_order_relaxed);
  }

 private:
  friend class DeviceRuntime;

  simnet::Network& network_;
  Population& population_;
  const ntp::NtpPool* pool_;
  RuntimeConfig config_;
  util::Rng rng_;
  bool started_ = false;

  std::vector<std::unique_ptr<DeviceRuntime>> devices_;
  /// Guards address_owner_: devices on different shards claim and release
  /// addresses concurrently, and hitlist partials call device_at() from
  /// every domain.
  mutable std::mutex owner_mu_;  // ttslint: allow(thread-confine) reason=guards cross-shard address ownership (documented above)
  std::unordered_map<net::Ipv6Address, std::uint32_t, net::Ipv6AddressHash>
      address_owner_;
  // ttslint: allow(thread-confine) reason=relaxed study counter bumped on any domain, read at barriers
  std::atomic<std::uint64_t> churn_events_{0};
  // ttslint: allow(thread-confine) reason=relaxed study counter bumped on any domain, read at barriers
  std::atomic<std::uint64_t> ntp_polls_sent_{0};
  // Dispatch-profiler categories shared by every device agent.
  simnet::EventQueue::CategoryId start_cat_;
  simnet::EventQueue::CategoryId churn_cat_;
  simnet::EventQueue::CategoryId poll_cat_;
};

}  // namespace tts::inet
