#include <gtest/gtest.h>

#include "proto/amqp.hpp"
#include "proto/coap.hpp"
#include "proto/http.hpp"
#include "proto/mqtt.hpp"
#include "proto/sshwire.hpp"
#include "proto/tlslite.hpp"
#include "util/rng.hpp"

namespace tts::proto {
namespace {

// -------------------------------------------------------------------- HTTP

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.target = "/index.html";
  req.host = "example.com";
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->target, "/index.html");
  EXPECT_EQ(parsed->host, "example.com");
}

TEST(Http, RequestWithoutHostHeader) {
  HttpRequest req;  // host empty -> header omitted (IP-based scanning)
  auto wire = req.serialize();
  std::string text(wire.begin(), wire.end());
  EXPECT_EQ(text.find("Host:"), std::string::npos);
  auto parsed = HttpRequest::parse(wire);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->host.empty());
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 200;
  resp.server = "nginx";
  resp.body = html_page("FRITZ!Box");
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->server, "nginx");
  EXPECT_EQ(extract_title(parsed->body).value_or(""), "FRITZ!Box");
}

TEST(Http, ParseRejectsGarbage) {
  auto garbage = std::vector<std::uint8_t>{'x', 'y', 'z'};
  EXPECT_FALSE(HttpRequest::parse(garbage));
  EXPECT_FALSE(HttpResponse::parse(garbage));
  std::string no_version = "GET /\r\n\r\n";
  EXPECT_FALSE(HttpRequest::parse(
      std::vector<std::uint8_t>(no_version.begin(), no_version.end())));
}

TEST(Http, TitleExtraction) {
  EXPECT_EQ(extract_title("<html><title>Hi</title></html>").value_or(""),
            "Hi");
  EXPECT_EQ(extract_title("<TITLE>Case</TITLE>").value_or(""), "Case");
  EXPECT_FALSE(extract_title("<html><body>none</body></html>"));
  EXPECT_FALSE(extract_title("<title>unterminated"));
  EXPECT_FALSE(extract_title(html_page("")));  // empty title -> no element
}

// --------------------------------------------------------------------- TLS

TEST(Tls, HandshakeRoundTrip) {
  ClientHello hello;
  hello.sni = "example.com";
  auto msg = decode(encode(hello));
  ASSERT_TRUE(msg);
  ASSERT_EQ(msg->kind, TlsMessage::Kind::kClientHello);
  EXPECT_EQ(msg->client_hello.sni, "example.com");

  ServerHello server;
  server.cert.fingerprint = 0xabcdef;
  server.cert.subject = "CN=test";
  server.cert.self_signed = true;
  server.cert.not_before = 100;
  server.cert.not_after = 200;
  auto smsg = decode(encode(server));
  ASSERT_TRUE(smsg);
  ASSERT_EQ(smsg->kind, TlsMessage::Kind::kServerHello);
  EXPECT_EQ(smsg->server_hello.cert.fingerprint, 0xabcdefu);
  EXPECT_EQ(smsg->server_hello.cert.subject, "CN=test");
  EXPECT_TRUE(smsg->server_hello.cert.self_signed);

  auto amsg = decode(encode(Alert{2, kAlertUnrecognizedName}));
  ASSERT_TRUE(amsg);
  ASSERT_EQ(amsg->kind, TlsMessage::Kind::kAlert);
  EXPECT_EQ(amsg->alert.description, kAlertUnrecognizedName);
}

TEST(Tls, AppDataRoundTrip) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  auto msg = decode(encode_app_data(payload));
  ASSERT_TRUE(msg);
  ASSERT_EQ(msg->kind, TlsMessage::Kind::kAppData);
  EXPECT_EQ(msg->app_data, payload);
}

TEST(Tls, DecodeRejectsMalformed) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{}));
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{0x16}));
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{0x99, 0, 1, 0}));
  // Truncated body.
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{0x16, 0x00, 0x10, 0x01}));
}

TEST(Tls, CertificateValidity) {
  Certificate cert;
  cert.not_before = 100;
  cert.not_after = 200;
  EXPECT_FALSE(cert.valid_at(99));
  EXPECT_TRUE(cert.valid_at(100));
  EXPECT_TRUE(cert.valid_at(200));
  EXPECT_FALSE(cert.valid_at(201));
}

// -------------------------------------------------------------------- MQTT

TEST(Mqtt, ConnectRoundTrip) {
  MqttConnect connect;
  connect.client_id = "probe-1";
  connect.username = "user";
  connect.password = "pass";
  auto parsed = MqttConnect::parse(connect.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->client_id, "probe-1");
  EXPECT_EQ(parsed->username, "user");
  EXPECT_EQ(parsed->password, "pass");
}

TEST(Mqtt, AnonymousConnect) {
  MqttConnect connect;
  auto parsed = MqttConnect::parse(connect.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->username.empty());
  EXPECT_TRUE(parsed->password.empty());
}

TEST(Mqtt, ConnackRoundTrip) {
  for (auto code : {MqttConnectReturn::kAccepted,
                    MqttConnectReturn::kNotAuthorized}) {
    MqttConnack ack;
    ack.code = code;
    auto parsed = MqttConnack::parse(ack.serialize());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->code, code);
  }
}

TEST(Mqtt, VarintRoundTrip) {
  for (std::uint32_t v : {0u, 1u, 127u, 128u, 16383u, 16384u, 2097151u}) {
    std::vector<std::uint8_t> out;
    mqtt_write_varint(out, v);
    auto back = mqtt_read_varint(out);
    ASSERT_TRUE(back);
    EXPECT_EQ(back->first, v);
    EXPECT_EQ(back->second, out.size());
  }
}

TEST(Mqtt, ParseRejectsMalformed) {
  EXPECT_FALSE(MqttConnect::parse(std::vector<std::uint8_t>{}));
  EXPECT_FALSE(MqttConnect::parse(std::vector<std::uint8_t>{0x20, 0x02}));
  EXPECT_FALSE(MqttConnack::parse(std::vector<std::uint8_t>{0x20, 0x02, 0}));
  EXPECT_FALSE(MqttConnack::parse(
      std::vector<std::uint8_t>{0x20, 0x02, 0, 99}));  // bad return code
  // Wrong protocol name.
  MqttConnect c;
  auto wire = c.serialize();
  wire[4] = 'X';
  EXPECT_FALSE(MqttConnect::parse(wire));
}

// -------------------------------------------------------------------- AMQP

TEST(Amqp, ProtocolHeader) {
  auto header = amqp_protocol_header();
  EXPECT_TRUE(is_amqp_protocol_header(header));
  EXPECT_FALSE(is_amqp_protocol_header(std::vector<std::uint8_t>{'A', 'M'}));
  auto wrong = header;
  wrong[7] = 0;
  EXPECT_FALSE(is_amqp_protocol_header(wrong));
}

TEST(Amqp, FrameRoundTrip) {
  AmqpFrame close;
  close.method = AmqpMethod::kClose;
  close.close_code = 403;
  close.text = "ACCESS_REFUSED";
  auto parsed = AmqpFrame::parse(close.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->method, AmqpMethod::kClose);
  EXPECT_EQ(parsed->close_code, 403);
  EXPECT_EQ(parsed->text, "ACCESS_REFUSED");
}

TEST(Amqp, FrameRejectsCorruption) {
  AmqpFrame f;
  auto wire = f.serialize();
  auto bad_end = wire;
  bad_end.back() = 0x00;  // missing frame-end octet
  EXPECT_FALSE(AmqpFrame::parse(bad_end));
  auto bad_type = wire;
  bad_type[0] = 9;
  EXPECT_FALSE(AmqpFrame::parse(bad_type));
  EXPECT_FALSE(AmqpFrame::parse(std::vector<std::uint8_t>{1, 2}));
}

// -------------------------------------------------------------------- CoAP

TEST(Coap, WellKnownCoreRequest) {
  auto req = CoapMessage::well_known_core(42, 0xdeadbeef);
  auto parsed = CoapMessage::parse(req.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, CoapType::kConfirmable);
  EXPECT_EQ(parsed->code, kCoapGet);
  EXPECT_EQ(parsed->message_id, 42);
  ASSERT_EQ(parsed->uri_path.size(), 2u);
  EXPECT_EQ(parsed->uri_path[0], ".well-known");
  EXPECT_EQ(parsed->uri_path[1], "core");
  EXPECT_EQ(parsed->token.size(), 4u);
}

TEST(Coap, ResponseWithPayloadRoundTrip) {
  CoapMessage resp;
  resp.type = CoapType::kAck;
  resp.code = kCoapContent;
  resp.message_id = 7;
  resp.token = {1, 2, 3, 4};
  std::string links = link_format({"/castDeviceSearch", "/qlink/ping"});
  resp.payload.assign(links.begin(), links.end());
  auto parsed = CoapMessage::parse(resp.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->code, kCoapContent);
  EXPECT_EQ(parsed->token, resp.token);
  std::string payload(parsed->payload.begin(), parsed->payload.end());
  auto resources = parse_link_format(payload);
  ASSERT_EQ(resources.size(), 2u);
  EXPECT_EQ(resources[0], "/castDeviceSearch");
  EXPECT_EQ(resources[1], "/qlink/ping");
}

TEST(Coap, LongUriSegmentsUseExtendedLength) {
  CoapMessage msg;
  msg.code = kCoapGet;
  msg.uri_path = {"a-rather-long-uri-segment-over-13-bytes", "x"};
  auto parsed = CoapMessage::parse(msg.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->uri_path, msg.uri_path);
}

TEST(Coap, ParseRejectsMalformed) {
  EXPECT_FALSE(CoapMessage::parse(std::vector<std::uint8_t>{}));
  // Version 2 is invalid.
  EXPECT_FALSE(CoapMessage::parse(std::vector<std::uint8_t>{0x80, 1, 0, 0}));
  // Token length 15 is reserved.
  EXPECT_FALSE(CoapMessage::parse(std::vector<std::uint8_t>{0x4F, 1, 0, 0}));
}

TEST(Coap, LinkFormatEdgeCases) {
  EXPECT_EQ(link_format({}), "");
  EXPECT_TRUE(parse_link_format("").empty());
  EXPECT_TRUE(parse_link_format("not-a-link").empty());
  auto r = parse_link_format("</a>;rt=\"x\",</b>");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "/a");
  EXPECT_EQ(r[1], "/b");
}

// --------------------------------------------------------------------- SSH

TEST(Ssh, IdStringRoundTrip) {
  auto wire = ssh_id_string("SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3");
  auto parsed = parse_ssh_id(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3");
}

TEST(Ssh, ParseRejectsNonSsh) {
  auto http = std::vector<std::uint8_t>{'H', 'T', 'T', 'P', '\r', '\n'};
  EXPECT_FALSE(parse_ssh_id(http));
  std::string too_long = "SSH-2.0-" + std::string(300, 'x') + "\r\n";
  EXPECT_FALSE(parse_ssh_id(
      std::vector<std::uint8_t>(too_long.begin(), too_long.end())));
}

TEST(Ssh, OsExtractionMatchesPaperRules) {
  EXPECT_EQ(ssh_os_from_banner("SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3"),
            "Debian");
  EXPECT_EQ(ssh_os_from_banner("SSH-2.0-OpenSSH_8.9p1 Ubuntu-3ubuntu0.10"),
            "Ubuntu");
  EXPECT_EQ(ssh_os_from_banner("SSH-2.0-OpenSSH_9.2p1 Raspbian-2+deb12u1"),
            "Raspbian");
  EXPECT_EQ(ssh_os_from_banner("SSH-2.0-OpenSSH_9.6 FreeBSD-20240104"),
            "FreeBSD");
  // No OS hint -> other/unknown.
  EXPECT_EQ(ssh_os_from_banner("SSH-2.0-dropbear_2022.83"), "");
  EXPECT_EQ(ssh_os_from_banner("SSH-2.0-OpenSSH_9.7"), "");
  EXPECT_EQ(ssh_os_from_banner("garbage"), "");
}

TEST(Ssh, SoftwareExtraction) {
  EXPECT_EQ(ssh_software("SSH-2.0-OpenSSH_9.2p1 Debian-2"),
            "OpenSSH_9.2p1 Debian-2");
  EXPECT_EQ(ssh_software("SSH-2.0-dropbear_2022.83"), "dropbear_2022.83");
  EXPECT_EQ(ssh_software("nope"), "");
}

TEST(Ssh, KexReplyRoundTrip) {
  auto wire = ssh_kex_reply(0x1122334455667788ULL);
  auto key = parse_ssh_kex_reply(wire);
  ASSERT_TRUE(key);
  EXPECT_EQ(*key, 0x1122334455667788ULL);
  EXPECT_FALSE(parse_ssh_kex_reply(std::vector<std::uint8_t>{1, 2, 3}));
  wire[0] ^= 0xff;  // corrupt the magic
  EXPECT_FALSE(parse_ssh_kex_reply(wire));
}

}  // namespace
}  // namespace tts::proto
