#include "obs/trace.hpp"

#include <bit>
#include <chrono>

namespace tts::obs {

std::size_t SpanStats::bucket_of(simnet::SimDuration d) {
  if (d <= 0) return 0;
  auto width = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(d)));
  return width < kHistBuckets ? width : kHistBuckets - 1;
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
  ring_.reserve(capacity_);
}

std::int64_t Tracer::wall_clock_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::NameId Tracer::intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  stats_.emplace_back();
  ids_.emplace(names_.back(), id);
  return id;
}

Tracer::SpanId Tracer::open(NameId name, TraceId trace) {
  if (!enabled_) return kNoSpan;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Active& a = slots_[slot];
  a.name = name;
  a.sim_begin = sim_now();
  a.wall_begin_ns = wall_clock_ns();
  a.depth = static_cast<std::uint32_t>(open_count_++);
  a.trace = trace;
  a.in_use = true;
  ++a.gen;
  return (static_cast<SpanId>(a.gen) << 32) | (slot + 1);
}

void Tracer::close(SpanId id) {
  if (id == kNoSpan) return;
  std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  if (slot >= slots_.size()) return;
  Active& a = slots_[slot];
  if (!a.in_use || a.gen != static_cast<std::uint32_t>(id >> 32)) return;
  SpanRecord rec;
  rec.name = names_[a.name];
  rec.sim_begin = a.sim_begin;
  rec.sim_end = sim_now();
  rec.wall_ns = wall_clock_ns() - a.wall_begin_ns;
  rec.depth = a.depth;
  rec.trace = a.trace;
  a.in_use = false;
  free_slots_.push_back(slot);
  --open_count_;
  commit(std::move(rec), a.name);
}

void Tracer::instant(NameId name, TraceId trace) {
  if (!enabled_) return;
  SpanRecord rec;
  rec.name = names_[name];
  rec.sim_begin = rec.sim_end = sim_now();
  rec.depth = static_cast<std::uint32_t>(open_count_);
  rec.trace = trace;
  rec.instant = true;
  commit(std::move(rec), name);
}

void Tracer::commit(SpanRecord rec, NameId name) {
  SpanStats& s = stats_[name];
  ++s.count;
  s.total_sim += rec.sim_duration();
  if (rec.sim_duration() > s.max_sim) s.max_sim = rec.sim_duration();
  s.total_wall_ns += rec.wall_ns;
  if (rec.wall_ns > s.max_wall_ns) s.max_wall_ns = rec.wall_ns;
  ++s.sim_hist[SpanStats::bucket_of(rec.sim_duration())];

  ++completed_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[ring_next_] = std::move(rec);
    ++dropped_;
  }
  ring_next_ = (ring_next_ + 1) % capacity_;
}

std::map<std::string, SpanStats> Tracer::stats() const {
  std::map<std::string, SpanStats> out;
  for (NameId id = 0; id < names_.size(); ++id)
    if (stats_[id].count > 0) out.emplace(names_[id], stats_[id]);
  return out;
}

std::vector<SpanRecord> Tracer::records() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: oldest record sits at ring_next_.
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace tts::obs
